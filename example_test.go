package fargo_test

import (
	"fmt"

	"fargo"
)

// Note is a minimal anchor type for the examples below.
type Note struct {
	Text string
}

// Init is the constructor invoked by NewComplet.
func (n *Note) Init(text string) { n.Text = text }

// Read returns the note's text.
func (n *Note) Read() string { return n.Text }

// Example reproduces the paper's Figure 3 flow: instantiate a complet,
// move it, and keep invoking through the same reference.
func Example() {
	u, _ := fargo.NewUniverse(1)
	defer u.Close()
	_ = u.Register("Note", (*Note)(nil))
	home, _ := u.NewCore("home")
	_, _ = u.NewCore("accadia")

	note, _ := home.NewComplet("Note", "Hello World")
	out, _ := note.Invoke("Read")
	fmt.Println(out[0])

	_ = home.Move(note, "accadia")
	out, _ = note.Invoke("Read")
	loc, _ := note.Meta().Location()
	fmt.Println(out[0], "from", loc)
	// Output:
	// Hello World
	// Hello World from accadia
}

// ExampleMetaRef shows reference reflection (§3.2): inspecting and replacing
// a reference's relocation semantics at runtime.
func ExampleMetaRef() {
	u, _ := fargo.NewUniverse(1)
	defer u.Close()
	_ = u.Register("Note", (*Note)(nil))
	c, _ := u.NewCore("solo")
	note, _ := c.NewComplet("Note", "x")

	meta := note.Meta()
	fmt.Println(meta.Relocator().Kind())
	if _, isLink := meta.Relocator().(fargo.Link); isLink {
		_ = meta.SetRelocator(fargo.Pull{})
	}
	fmt.Println(meta.Relocator().Kind())
	// Output:
	// link
	// pull
}

// ExampleCore_Name shows the naming service: logical names keep resolving as
// their targets migrate.
func ExampleCore_Name() {
	u, _ := fargo.NewUniverse(1)
	defer u.Close()
	_ = u.Register("Note", (*Note)(nil))
	a, _ := u.NewCore("a")
	_, _ = u.NewCore("b")

	note, _ := a.NewComplet("Note", "named note")
	_ = a.Name("todo", note)
	_ = a.Move(note, "b")

	if found, ok := a.Lookup("todo"); ok {
		out, _ := found.Invoke("Read")
		loc, _ := found.Meta().Location()
		fmt.Println(out[0], "at", loc)
	}
	// Output:
	// named note at b
}
