package ref

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"fargo/internal/ids"
)

// ErrUnbound is returned when invoking through a reference that is not bound
// to a core (e.g. a freshly decoded reference before the runtime attaches it).
var ErrUnbound = errors.New("ref: reference not bound to a core")

// Binder is the part of the core a bound reference delegates to: invocation
// routing (the tracker machinery) and target location. It is an interface so
// that the ref package has no dependency on the core package.
type Binder interface {
	// InvokeRef routes an invocation to the reference's (possibly remote,
	// possibly moving) target anchor. The context bounds the whole call —
	// every tracker-chain hop deducts from the same deadline — and
	// cancelling it aborts the wait for a pending reply. opts carries
	// per-call tuning (timeout default, retry overrides).
	InvokeRef(ctx context.Context, r *Ref, method string, args []any, opts CallOptions) ([]any, error)
	// Locate returns the core currently hosting the reference's target,
	// bounded by the context.
	Locate(ctx context.Context, r *Ref) (ids.CoreID, error)
	// BinderCore identifies the core this binder belongs to.
	BinderCore() ids.CoreID
}

// Ref is the stub half of a complet reference (§3.1): the local handle that
// application code holds and invokes through. Its interface is the dynamic
// equivalent of the anchor's interface — Invoke(method, args…) replaces the
// compile-time generated stub methods of the Java system (see DESIGN.md
// substitutions). A Ref is safe for concurrent use.
type Ref struct {
	mu         sync.Mutex
	target     ids.CompletID
	anchorType string
	hint       ids.CoreID // last known location of the target
	meta       *MetaRef
	binder     Binder
	// owner identifies the complet this reference belongs to (set by the
	// runtime for references travelling inside complet closures). It
	// feeds the per-reference invocation-rate profiling (§4.1).
	owner ids.CompletID

	// decodedStamp / decodedDup carry the wire flags from GobDecode to
	// the runtime's binding pass.
	decodedStamp bool
	decodedDup   bool
}

// New returns a bound reference to the given target with the default link
// relocator.
func New(target ids.CompletID, anchorType string, hint ids.CoreID, b Binder) *Ref {
	r := &Ref{
		target:     target,
		anchorType: anchorType,
		hint:       hint,
		binder:     b,
	}
	r.meta = &MetaRef{ref: r, relocator: Link{}}
	return r
}

// Target returns the ID of the complet this reference points to.
func (r *Ref) Target() ids.CompletID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.target
}

// AnchorType returns the registered type name of the target's anchor.
func (r *Ref) AnchorType() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.anchorType
}

// Hint returns the last known location of the target. It may be stale; the
// tracker machinery corrects stale hints on use.
func (r *Ref) Hint() ids.CoreID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hint
}

// SetHint updates the last known location of the target.
func (r *Ref) SetHint(c ids.CoreID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hint = c
}

// Owner returns the complet this reference belongs to (zero if unowned, e.g.
// references held by non-complet application code).
func (r *Ref) Owner() ids.CompletID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.owner
}

// SetOwner records the complet this reference belongs to. The runtime calls
// it for references inside arriving complet closures; applications may call
// it for references they wire into complets by hand, enabling per-reference
// invocation profiling.
func (r *Ref) SetOwner(owner ids.CompletID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.owner = owner
}

// Bound reports whether the reference is attached to a core.
func (r *Ref) Bound() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.binder != nil
}

// Bind attaches the reference to a core. The runtime calls this for every
// reference that arrives in a parameter or in a moved complet's closure.
func (r *Ref) Bind(b Binder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.binder = b
}

// Retarget points the reference at a different complet. The movement
// protocol uses it to realize duplicate (bind to the fresh copy) and stamp
// (bind to an equivalent local complet) semantics.
func (r *Ref) Retarget(target ids.CompletID, anchorType string, hint ids.CoreID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.target = target
	r.anchorType = anchorType
	r.hint = hint
}

// Invoke calls the named method on the target anchor. Parameters are passed
// by value (deep copy) except complet references, which are passed by
// reference with their relocator degraded to link (§3.1). The call is
// bounded by the core's default request budget; use InvokeCtx to supply a
// deadline or cancellation of your own.
func (r *Ref) Invoke(method string, args ...any) ([]any, error) {
	return r.InvokeCtx(context.Background(), method, args...)
}

// InvokeCtx calls the named method on the target anchor under the caller's
// context. The context's deadline bounds the whole call end to end: it
// travels on the wire, so a multi-hop tracker chain deducts elapsed time at
// every hop instead of restarting the clock, and cancelling the context
// aborts the wait for an in-flight invocation or a concurrent relocation.
// Trailing InvokeOption values (WithTimeout, WithNoRetry, WithMaxAttempts)
// may be passed among args; they tune this call and are not transmitted.
func (r *Ref) InvokeCtx(ctx context.Context, method string, args ...any) ([]any, error) {
	r.mu.Lock()
	b := r.binder
	r.mu.Unlock()
	if b == nil {
		return nil, fmt.Errorf("invoke %s on %s: %w", method, r.target, ErrUnbound)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	callArgs, opts := SplitOptions(args)
	return b.InvokeRef(ctx, r, method, callArgs, opts)
}

// Meta returns the reference's meta-reference (§3.2), which reifies and
// allows changing the reference's relocation semantics.
func (r *Ref) Meta() *MetaRef { return r.meta }

// String renders the reference for diagnostics.
func (r *Ref) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("ref{%s %s @%s %s}", r.anchorType, r.target, r.hint, r.meta.Relocator().Kind())
}

// MetaRef reifies the relocation semantics of one complet reference (§3.2).
// It is obtained with Ref.Meta (the paper's Core.getMetaRef) and supports
// inspecting and replacing the relocator without disturbing the reference's
// invocation transparency.
type MetaRef struct {
	mu        sync.Mutex
	relocator Relocator
	ref       *Ref
}

// Relocator returns the current relocator object.
func (m *MetaRef) Relocator() Relocator {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.relocator
}

// SetRelocator replaces the reference's relocation semantics.
func (m *MetaRef) SetRelocator(r Relocator) error {
	if r == nil {
		return fmt.Errorf("set relocator: nil relocator")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.relocator = r
	return nil
}

// Target returns the ID of the referenced complet.
func (m *MetaRef) Target() ids.CompletID { return m.ref.Target() }

// Location resolves the current location of the referenced complet by asking
// the runtime (following tracker chains if necessary).
func (m *MetaRef) Location() (ids.CoreID, error) {
	return m.LocationCtx(context.Background())
}

// LocationCtx is Location bounded by the caller's context.
func (m *MetaRef) LocationCtx(ctx context.Context) (ids.CoreID, error) {
	m.ref.mu.Lock()
	b := m.ref.binder
	m.ref.mu.Unlock()
	if b == nil {
		return "", ErrUnbound
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return b.Locate(ctx, m.ref)
}

// Descriptor is the wire form of a complet reference: enough to rebuild a
// stub and (re)create a tracker at the receiving core.
type Descriptor struct {
	Target     ids.CompletID
	AnchorType string
	LastKnown  ids.CoreID
	Relocator  RelocDescriptor
	// Owner travels with move-mode encodings so a reference keeps feeding
	// the same per-reference profiling stream after its complet migrates.
	Owner ids.CompletID
	// Stamp marks a stamp-encoded reference: the target field is advisory
	// and the receiver must re-bind to a local complet of AnchorType.
	Stamp bool
	// Dup marks a reference whose target is being duplicated in the same
	// movement bundle: the receiver must re-bind it to the fresh copy.
	Dup bool
}

// Descriptor snapshots the reference's wire form with its current relocator.
func (r *Ref) Descriptor() (Descriptor, error) {
	r.mu.Lock()
	target, anchorType, hint, owner := r.target, r.anchorType, r.hint, r.owner
	r.mu.Unlock()
	rd, err := EncodeRelocator(r.meta.Relocator())
	if err != nil {
		return Descriptor{}, err
	}
	return Descriptor{
		Target:     target,
		AnchorType: anchorType,
		LastKnown:  hint,
		Relocator:  rd,
		Owner:      owner,
	}, nil
}

// FromDescriptor rebuilds an unbound reference from its wire form. The caller
// (the runtime) binds it and applies dup/stamp re-binding.
func FromDescriptor(d Descriptor) (*Ref, error) {
	reloc, err := DecodeRelocator(d.Relocator)
	if err != nil {
		return nil, err
	}
	r := &Ref{
		target:     d.Target,
		anchorType: d.AnchorType,
		hint:       d.LastKnown,
	}
	r.meta = &MetaRef{ref: r, relocator: reloc}
	return r, nil
}

// --- codec context -------------------------------------------------------

// Mode selects the marshaling semantics applied to references encountered
// while encoding an object graph.
type Mode int

const (
	// ModeParam encodes references for parameter passing: the descriptor
	// is degraded to the default link relocator (§3.1).
	ModeParam Mode = iota + 1
	// ModeMove encodes references for complet movement: each reference's
	// relocator decides its action and the collector records pull and
	// duplicate targets for the movement protocol (§3.3).
	ModeMove
	// ModeSnapshot encodes references verbatim — relocator and owner
	// preserved, no movement actions. Used by checkpoint/restore
	// persistence, where complets are serialized in place.
	ModeSnapshot
)

// Collector is the per-(un)marshal context. The movement and invocation units
// install one around gob encoding/decoding; Ref's GobEncode/GobDecode consult
// it. It realizes the paper's "special routine applied to each detected
// complet reference during graph traversal".
type Collector struct {
	Mode Mode
	// Move describes the ongoing move (ModeMove only). Source is updated
	// by the movement protocol before each complet's graph is encoded.
	Move MoveContext
	// TargetLocal tells the encoder whether a complet currently resides
	// on the encoding core (ModeMove only; may be nil).
	TargetLocal func(ids.CompletID) bool

	// Encountered collects every reference encoded.
	Encountered []*Ref
	// Pulls and Duplicates collect the targets that must travel along.
	Pulls      []ids.CompletID
	Duplicates []ids.CompletID
	// Decoded collects every reference materialized during decoding, so
	// the runtime can bind them afterwards.
	Decoded []*Ref
}

// codecMu serializes gob (en/de)coding that may touch references, because
// encoding/gob offers no way to thread a context into GobEncode/GobDecode.
// The collector for the current operation is published in current.
var (
	codecMu sync.Mutex
	current *Collector
)

// WithCollector runs fn with c installed as the active codec context. Calls
// are serialized process-wide; fn must not invoke WithCollector recursively.
func WithCollector(c *Collector, fn func() error) error {
	codecMu.Lock()
	defer codecMu.Unlock()
	current = c
	defer func() { current = nil }()
	return fn()
}

// GobEncode implements gob.GobEncoder. It encodes the reference as a
// Descriptor whose shape depends on the active collector's mode.
func (r *Ref) GobEncode() ([]byte, error) {
	c := current
	if c == nil {
		return nil, errors.New("ref: reference encoded outside a codec context")
	}
	d, err := r.Descriptor()
	if err != nil {
		return nil, err
	}
	c.Encountered = append(c.Encountered, r)

	switch c.Mode {
	case ModeParam:
		// Degrade: the reference joins a new containing complet, so the
		// old relocation semantics are not imposed on it (§3.1). The
		// owner is cleared for the same reason.
		d.Relocator = RelocDescriptor{Kind: Link{}.Kind()}
		d.Owner = ids.CompletID{}
	case ModeMove:
		ctx := c.Move
		ctx.Target = d.Target
		if c.TargetLocal != nil {
			ctx.TargetLocal = c.TargetLocal(d.Target)
		}
		switch action := r.meta.Relocator().Action(ctx); action {
		case ActionLink:
			// Keep as-is; the tracker machinery keeps it valid.
		case ActionPull:
			c.Pulls = append(c.Pulls, d.Target)
		case ActionDuplicate:
			c.Duplicates = append(c.Duplicates, d.Target)
			d.Dup = true
		case ActionStamp:
			d.Stamp = true
		default:
			return nil, fmt.Errorf("ref: relocator %q returned invalid action %d",
				r.meta.Relocator().Kind(), action)
		}
	case ModeSnapshot:
		// Verbatim: the complet is serialized in place; its references
		// keep their semantics for the restored instance.
	default:
		return nil, fmt.Errorf("ref: collector has invalid mode %d", c.Mode)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return nil, fmt.Errorf("ref: encode descriptor: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. The reference is rebuilt unbound and
// recorded in the active collector for the runtime to bind.
func (r *Ref) GobDecode(data []byte) error {
	c := current
	if c == nil {
		return errors.New("ref: reference decoded outside a codec context")
	}
	var d Descriptor
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&d); err != nil {
		return fmt.Errorf("ref: decode descriptor: %w", err)
	}
	reloc, err := DecodeRelocator(d.Relocator)
	if err != nil {
		return fmt.Errorf("ref: %w", err)
	}
	r.target = d.Target
	r.anchorType = d.AnchorType
	r.hint = d.LastKnown
	r.owner = d.Owner
	r.binder = nil
	r.meta = &MetaRef{ref: r, relocator: reloc}
	r.decodedStamp = d.Stamp
	r.decodedDup = d.Dup
	c.Decoded = append(c.Decoded, r)
	return nil
}

// DecodedStamp reports whether the reference arrived stamp-encoded.
func (r *Ref) DecodedStamp() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decodedStamp
}

// DecodedDup reports whether the reference's target was duplicated in the
// same movement bundle.
func (r *Ref) DecodedDup() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decodedDup
}
