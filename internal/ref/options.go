package ref

import "time"

// CallOptions collects per-call tuning for the context-first invocation
// entry points (Ref.InvokeCtx, Core.MoveCtx, …). The zero value means "use
// the core's defaults": the core's RequestTimeout as the end-to-end budget
// and its configured retry policy for idempotent request kinds.
type CallOptions struct {
	// Timeout is the end-to-end budget for the call. It is applied as a
	// context deadline, so it tightens (never extends) a deadline already
	// carried by the caller's context. Zero uses the core default.
	Timeout time.Duration
	// NoRetry disables transparent retries for this call even for
	// idempotent request kinds.
	NoRetry bool
	// MaxAttempts overrides the retry policy's attempt budget for this
	// call (0 = policy default). It only applies to idempotent kinds.
	MaxAttempts int
}

// InvokeOption tunes one context-first call.
type InvokeOption func(*CallOptions)

// WithTimeout bounds the whole call (all tracker-chain hops included) by d.
func WithTimeout(d time.Duration) InvokeOption {
	return func(o *CallOptions) { o.Timeout = d }
}

// WithNoRetry disables transparent retries for the call.
func WithNoRetry() InvokeOption {
	return func(o *CallOptions) { o.NoRetry = true }
}

// WithMaxAttempts overrides the retry attempt budget for the call.
func WithMaxAttempts(n int) InvokeOption {
	return func(o *CallOptions) { o.MaxAttempts = n }
}

// BuildCallOptions folds a list of options into a CallOptions value.
func BuildCallOptions(opts []InvokeOption) CallOptions {
	var o CallOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// SplitOptions peels InvokeOption values out of an invocation argument list,
// so options can ride the variadic args of InvokeCtx without a separate
// signature: r.InvokeCtx(ctx, "Print", fargo.WithTimeout(time.Second)).
// Options are never meaningful as invocation parameters (they cannot be
// encoded for the wire), so the split is unambiguous.
func SplitOptions(args []any) ([]any, CallOptions) {
	var o CallOptions
	kept := args
	copied := false
	for i := 0; i < len(kept); {
		opt, ok := kept[i].(InvokeOption)
		if !ok {
			i++
			continue
		}
		if opt != nil {
			opt(&o)
		}
		if !copied {
			kept = append([]any(nil), kept...)
			copied = true
		}
		kept = append(kept[:i], kept[i+1:]...)
	}
	return kept, o
}
