package ref

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"strings"
	"testing"

	"fargo/internal/ids"
)

// fakeBinder records invocations for stub-behaviour tests.
type fakeBinder struct {
	core    ids.CoreID
	invoked []string
	opts    []CallOptions
	locate  ids.CoreID
	err     error
}

func (f *fakeBinder) InvokeRef(ctx context.Context, r *Ref, method string, args []any, opts CallOptions) ([]any, error) {
	f.invoked = append(f.invoked, method)
	f.opts = append(f.opts, opts)
	if f.err != nil {
		return nil, f.err
	}
	return []any{"ok"}, nil
}

func (f *fakeBinder) Locate(ctx context.Context, r *Ref) (ids.CoreID, error) { return f.locate, f.err }
func (f *fakeBinder) BinderCore() ids.CoreID                                 { return f.core }

var _ Binder = (*fakeBinder)(nil)

func testID(seq uint64) ids.CompletID {
	return ids.CompletID{Birth: "core-a", Seq: seq}
}

func TestNewRefDefaults(t *testing.T) {
	b := &fakeBinder{core: "core-a"}
	r := New(testID(1), "Message", "core-a", b)
	if r.Target() != testID(1) {
		t.Errorf("Target = %v", r.Target())
	}
	if r.AnchorType() != "Message" {
		t.Errorf("AnchorType = %q", r.AnchorType())
	}
	if r.Hint() != "core-a" {
		t.Errorf("Hint = %q", r.Hint())
	}
	if !r.Bound() {
		t.Error("new ref should be bound")
	}
	if kind := r.Meta().Relocator().Kind(); kind != "link" {
		t.Errorf("default relocator = %q, want link", kind)
	}
}

func TestInvokeDelegatesToBinder(t *testing.T) {
	b := &fakeBinder{core: "core-a"}
	r := New(testID(1), "Message", "core-a", b)
	out, err := r.Invoke("Print", 1, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "ok" {
		t.Fatalf("out = %v", out)
	}
	if len(b.invoked) != 1 || b.invoked[0] != "Print" {
		t.Fatalf("binder saw %v", b.invoked)
	}
}

func TestInvokeUnbound(t *testing.T) {
	r, err := FromDescriptor(Descriptor{
		Target:     testID(1),
		AnchorType: "Message",
		Relocator:  RelocDescriptor{Kind: "link"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound() {
		t.Fatal("descriptor-built ref should be unbound")
	}
	if _, err := r.Invoke("Print"); !errors.Is(err, ErrUnbound) {
		t.Fatalf("Invoke on unbound ref: %v, want ErrUnbound", err)
	}
	r.Bind(&fakeBinder{core: "core-b"})
	if _, err := r.Invoke("Print"); err != nil {
		t.Fatalf("Invoke after Bind: %v", err)
	}
}

func TestMetaRefSetRelocator(t *testing.T) {
	r := New(testID(1), "Message", "core-a", &fakeBinder{})
	m := r.Meta()
	if _, ok := m.Relocator().(Link); !ok {
		t.Fatalf("default relocator %T, want Link", m.Relocator())
	}
	if err := m.SetRelocator(Pull{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Relocator().(Pull); !ok {
		t.Fatalf("relocator after set: %T, want Pull", m.Relocator())
	}
	if err := m.SetRelocator(nil); err == nil {
		t.Fatal("SetRelocator(nil) should fail")
	}
	if m.Target() != testID(1) {
		t.Fatalf("meta target = %v", m.Target())
	}
}

func TestMetaRefLocation(t *testing.T) {
	b := &fakeBinder{locate: "core-z"}
	r := New(testID(1), "Message", "core-a", b)
	loc, err := r.Meta().Location()
	if err != nil {
		t.Fatal(err)
	}
	if loc != "core-z" {
		t.Fatalf("Location = %q, want core-z", loc)
	}

	unbound, err := FromDescriptor(Descriptor{Target: testID(2), Relocator: RelocDescriptor{Kind: "link"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unbound.Meta().Location(); !errors.Is(err, ErrUnbound) {
		t.Fatalf("Location on unbound: %v, want ErrUnbound", err)
	}
}

func TestRelocatorActions(t *testing.T) {
	cases := []struct {
		r    Relocator
		want Action
		kind string
	}{
		{Link{}, ActionLink, "link"},
		{Pull{}, ActionPull, "pull"},
		{Duplicate{}, ActionDuplicate, "duplicate"},
		{Stamp{}, ActionStamp, "stamp"},
	}
	for _, c := range cases {
		if got := c.r.Action(MoveContext{}); got != c.want {
			t.Errorf("%s.Action = %v, want %v", c.kind, got, c.want)
		}
		if got := c.r.Kind(); got != c.kind {
			t.Errorf("Kind = %q, want %q", got, c.kind)
		}
	}
}

func TestActionString(t *testing.T) {
	if ActionPull.String() != "pull" || Action(99).String() != "Action(99)" {
		t.Error("Action.String misbehaves")
	}
}

func TestRelocatorRoundtrip(t *testing.T) {
	for _, r := range []Relocator{Link{}, Pull{}, Duplicate{}, Stamp{}} {
		d, err := EncodeRelocator(r)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeRelocator(d)
		if err != nil {
			t.Fatal(err)
		}
		if back.Kind() != r.Kind() {
			t.Errorf("roundtrip kind %q -> %q", r.Kind(), back.Kind())
		}
	}
}

func TestDecodeUnknownRelocator(t *testing.T) {
	if _, err := DecodeRelocator(RelocDescriptor{Kind: "no-such"}); err == nil {
		t.Fatal("decoding unknown kind should fail")
	}
}

func TestEncodeNilRelocator(t *testing.T) {
	if _, err := EncodeRelocator(nil); err == nil {
		t.Fatal("encoding nil relocator should fail")
	}
}

// tether is a custom stateful relocator: pull while the target is local,
// link otherwise.
type tether struct {
	MaxHops int
}

func (t tether) Kind() string { return "tether" }
func (t tether) Action(ctx MoveContext) Action {
	if ctx.TargetLocal {
		return ActionPull
	}
	return ActionLink
}
func (t tether) RelocatorState() any { return t }

func TestCustomRelocator(t *testing.T) {
	err := RegisterRelocator("tether", func(data []byte) (Relocator, error) {
		var s tether
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
			return nil, err
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := EncodeRelocator(tether{MaxHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRelocator(d)
	if err != nil {
		t.Fatal(err)
	}
	tt, ok := back.(tether)
	if !ok || tt.MaxHops != 3 {
		t.Fatalf("decoded %#v", back)
	}
	if got := tt.Action(MoveContext{TargetLocal: true}); got != ActionPull {
		t.Errorf("tether local action = %v, want pull", got)
	}
	if got := tt.Action(MoveContext{TargetLocal: false}); got != ActionLink {
		t.Errorf("tether remote action = %v, want link", got)
	}
}

func TestRegisterRelocatorValidation(t *testing.T) {
	if err := RegisterRelocator("", nil); err == nil {
		t.Error("empty registration should fail")
	}
	if err := RegisterRelocator("link", func([]byte) (Relocator, error) { return Link{}, nil }); err == nil {
		t.Error("overriding built-in should fail")
	}
	decode := func([]byte) (Relocator, error) { return Link{}, nil }
	if err := RegisterRelocator("once-only", decode); err != nil {
		t.Fatal(err)
	}
	if err := RegisterRelocator("once-only", decode); err == nil {
		t.Error("duplicate registration should fail")
	}
}

// carrier is a test struct with an embedded complet reference, standing in
// for an application object graph.
type carrier struct {
	Name string
	R    *Ref
}

func encodeWith(t *testing.T, c *Collector, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := WithCollector(c, func() error {
		return gob.NewEncoder(&buf).Encode(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeWith(t *testing.T, c *Collector, data []byte, into any) {
	t.Helper()
	err := WithCollector(c, func() error {
		return gob.NewDecoder(bytes.NewReader(data)).Decode(into)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeOutsideContextFails(t *testing.T) {
	r := New(testID(1), "Message", "core-a", &fakeBinder{})
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&carrier{Name: "x", R: r})
	if err == nil || !strings.Contains(err.Error(), "outside a codec context") {
		t.Fatalf("encode outside context: %v", err)
	}
}

func TestParamModeDegradesToLink(t *testing.T) {
	r := New(testID(1), "Message", "core-a", &fakeBinder{})
	if err := r.Meta().SetRelocator(Pull{}); err != nil {
		t.Fatal(err)
	}

	enc := &Collector{Mode: ModeParam}
	data := encodeWith(t, enc, &carrier{Name: "x", R: r})
	if len(enc.Encountered) != 1 || enc.Encountered[0] != r {
		t.Fatalf("Encountered = %v", enc.Encountered)
	}
	if len(enc.Pulls) != 0 {
		t.Fatal("param mode must not schedule pulls")
	}

	dec := &Collector{Mode: ModeParam}
	var out carrier
	decodeWith(t, dec, data, &out)
	if out.R == nil {
		t.Fatal("decoded ref is nil")
	}
	if out.R.Target() != testID(1) {
		t.Fatalf("decoded target %v", out.R.Target())
	}
	// Degraded: the receiving side sees a link relocator even though the
	// sender's reference was pull.
	if kind := out.R.Meta().Relocator().Kind(); kind != "link" {
		t.Fatalf("decoded relocator %q, want link (degraded)", kind)
	}
	if out.R.Bound() {
		t.Fatal("decoded ref must be unbound until the runtime binds it")
	}
	if len(dec.Decoded) != 1 || dec.Decoded[0] != out.R {
		t.Fatalf("Decoded = %v", dec.Decoded)
	}
	// The sender's reference keeps its original relocator.
	if kind := r.Meta().Relocator().Kind(); kind != "pull" {
		t.Fatalf("sender relocator %q, want pull", kind)
	}
}

func TestMoveModeCollectsPullsAndDuplicates(t *testing.T) {
	pullRef := New(testID(2), "Data", "core-a", &fakeBinder{})
	if err := pullRef.Meta().SetRelocator(Pull{}); err != nil {
		t.Fatal(err)
	}
	dupRef := New(testID(3), "Cache", "core-a", &fakeBinder{})
	if err := dupRef.Meta().SetRelocator(Duplicate{}); err != nil {
		t.Fatal(err)
	}
	linkRef := New(testID(4), "Svc", "core-b", &fakeBinder{})

	type anchor struct {
		P, D, L *Ref
	}
	enc := &Collector{
		Mode: ModeMove,
		Move: MoveContext{Source: testID(1), From: "core-a", To: "core-b"},
	}
	data := encodeWith(t, enc, &anchor{P: pullRef, D: dupRef, L: linkRef})

	if len(enc.Pulls) != 1 || enc.Pulls[0] != testID(2) {
		t.Fatalf("Pulls = %v", enc.Pulls)
	}
	if len(enc.Duplicates) != 1 || enc.Duplicates[0] != testID(3) {
		t.Fatalf("Duplicates = %v", enc.Duplicates)
	}
	if len(enc.Encountered) != 3 {
		t.Fatalf("Encountered %d refs, want 3", len(enc.Encountered))
	}

	dec := &Collector{Mode: ModeParam}
	var out anchor
	decodeWith(t, dec, data, &out)
	if !out.D.DecodedDup() {
		t.Error("duplicate ref should carry the Dup flag")
	}
	if out.P.DecodedDup() || out.L.DecodedDup() {
		t.Error("pull/link refs must not carry the Dup flag")
	}
	// Move mode preserves relocator kinds (no degrade).
	if kind := out.P.Meta().Relocator().Kind(); kind != "pull" {
		t.Errorf("moved pull ref decoded as %q", kind)
	}
}

func TestMoveModeStamp(t *testing.T) {
	stampRef := New(testID(5), "Printer", "core-a", &fakeBinder{})
	if err := stampRef.Meta().SetRelocator(Stamp{}); err != nil {
		t.Fatal(err)
	}
	type anchor struct{ S *Ref }
	enc := &Collector{Mode: ModeMove, Move: MoveContext{Source: testID(1), From: "core-a", To: "core-b"}}
	data := encodeWith(t, enc, &anchor{S: stampRef})
	if len(enc.Pulls)+len(enc.Duplicates) != 0 {
		t.Fatal("stamp must not schedule pulls or duplicates")
	}

	var out anchor
	decodeWith(t, &Collector{Mode: ModeParam}, data, &out)
	if !out.S.DecodedStamp() {
		t.Fatal("stamp ref should carry the Stamp flag")
	}
	if out.S.AnchorType() != "Printer" {
		t.Fatalf("stamp ref anchor type %q", out.S.AnchorType())
	}
}

func TestMoveModeTargetLocalPassedToRelocator(t *testing.T) {
	if err := RegisterRelocator("locality-probe", func([]byte) (Relocator, error) {
		return localityProbe{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	r := New(testID(7), "X", "core-a", &fakeBinder{})
	if err := r.Meta().SetRelocator(localityProbe{}); err != nil {
		t.Fatal(err)
	}
	type anchor struct{ R *Ref }
	enc := &Collector{
		Mode:        ModeMove,
		Move:        MoveContext{Source: testID(1), From: "core-a", To: "core-b"},
		TargetLocal: func(id ids.CompletID) bool { return id == testID(7) },
	}
	encodeWith(t, enc, &anchor{R: r})
	if len(enc.Pulls) != 1 {
		t.Fatalf("locality-aware relocator should have pulled: %v", enc.Pulls)
	}
}

// localityProbe pulls local targets, links remote ones (like tether, but
// registered under a separate kind to keep tests independent).
type localityProbe struct{}

func (localityProbe) Kind() string { return "locality-probe" }
func (localityProbe) Action(ctx MoveContext) Action {
	if ctx.TargetLocal {
		return ActionPull
	}
	return ActionLink
}

func TestNilRefFieldRoundtrip(t *testing.T) {
	data := encodeWith(t, &Collector{Mode: ModeParam}, &carrier{Name: "solo"})
	var out carrier
	decodeWith(t, &Collector{Mode: ModeParam}, data, &out)
	if out.R != nil {
		t.Fatalf("nil ref field decoded as %v", out.R)
	}
	if out.Name != "solo" {
		t.Fatalf("Name = %q", out.Name)
	}
}

func TestSharedRefEncodedOnce(t *testing.T) {
	// Two fields aliasing one Ref: gob preserves within-message structure
	// for pointers? It does not guarantee aliasing, but both decoded refs
	// must at least be semantically identical.
	r := New(testID(9), "Shared", "core-a", &fakeBinder{})
	type anchor struct{ A, B *Ref }
	enc := &Collector{Mode: ModeParam}
	data := encodeWith(t, enc, &anchor{A: r, B: r})
	var out anchor
	decodeWith(t, &Collector{Mode: ModeParam}, data, &out)
	if out.A.Target() != testID(9) || out.B.Target() != testID(9) {
		t.Fatal("shared ref lost its target")
	}
}

func TestRetarget(t *testing.T) {
	r := New(testID(1), "Old", "core-a", &fakeBinder{})
	r.Retarget(testID(2), "New", "core-b")
	if r.Target() != testID(2) || r.AnchorType() != "New" || r.Hint() != "core-b" {
		t.Fatalf("after retarget: %v %q %q", r.Target(), r.AnchorType(), r.Hint())
	}
}

func TestStringRendering(t *testing.T) {
	r := New(testID(1), "Message", "core-a", &fakeBinder{})
	s := r.String()
	for _, want := range []string{"Message", "core-a/#1", "link"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
