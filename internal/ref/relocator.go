// Package ref implements complet references — the paper's central
// abstraction. A complet reference is split into a stub (the Ref value held
// by application code), a meta-reference (reifying the reference's relocation
// semantics, §3.2), and a relocator (the object governing how the reference
// behaves when its source complet moves, §3.3). The trackers that realize
// location transparency live in the core package; a Ref addresses its target
// by CompletID and routes invocations through the core it is bound to.
package ref

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"fargo/internal/ids"
)

// Action is the movement behaviour a relocator selects for its reference when
// the source complet relocates (§2, §3.3 of the paper).
type Action int

const (
	// ActionLink keeps a tracked remote reference to the target, which
	// stays where it is. The default.
	ActionLink Action = iota + 1
	// ActionPull moves the target complet along with the source.
	ActionPull
	// ActionDuplicate moves a copy of the target along with the source;
	// the original stays.
	ActionDuplicate
	// ActionStamp drops the binding and re-binds, at the destination, to a
	// local complet of an equivalent type.
	ActionStamp
)

// String returns the lower-case action name.
func (a Action) String() string {
	switch a {
	case ActionLink:
		return "link"
	case ActionPull:
		return "pull"
	case ActionDuplicate:
		return "duplicate"
	case ActionStamp:
		return "stamp"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// MoveContext gives a relocator the facts it may use to decide its action.
type MoveContext struct {
	// Source is the complet being moved; Target is the complet the
	// reference points to.
	Source, Target ids.CompletID
	// From and To are the source and destination cores of the move.
	From, To ids.CoreID
	// TargetLocal reports whether the target currently resides on the
	// same core as the moving source.
	TargetLocal bool
}

// Relocator reifies the relocation semantics of one complet reference. The
// predefined relocators are Link, Pull, Duplicate and Stamp; applications may
// define their own (registering them with RegisterRelocator) and install them
// through the meta-reference, possibly deciding the action dynamically from
// the MoveContext.
type Relocator interface {
	// Kind is the registered name of the relocator type.
	Kind() string
	// Action picks the movement behaviour for this move.
	Action(ctx MoveContext) Action
}

// Link is the default relocator: a tracked remote reference (§2).
type Link struct{}

// Kind implements Relocator.
func (Link) Kind() string { return "link" }

// Action implements Relocator.
func (Link) Action(MoveContext) Action { return ActionLink }

// Pull moves the target along with the source (§2).
type Pull struct{}

// Kind implements Relocator.
func (Pull) Kind() string { return "pull" }

// Action implements Relocator.
func (Pull) Action(MoveContext) Action { return ActionPull }

// Duplicate moves a copy of the target along with the source (§2).
type Duplicate struct{}

// Kind implements Relocator.
func (Duplicate) Kind() string { return "duplicate" }

// Action implements Relocator.
func (Duplicate) Action(MoveContext) Action { return ActionDuplicate }

// Stamp re-binds to an equivalent-typed complet at the destination (§2).
type Stamp struct{}

// Kind implements Relocator.
func (Stamp) Kind() string { return "stamp" }

// Action implements Relocator.
func (Stamp) Action(MoveContext) Action { return ActionStamp }

// RelocDescriptor is the wire form of a relocator: its registered kind plus
// an opaque gob encoding of its state (empty for the stateless built-ins).
type RelocDescriptor struct {
	Kind string
	Data []byte
}

// relocRegistry maps relocator kinds to decode functions.
var relocRegistry = struct {
	sync.RWMutex
	m map[string]func(data []byte) (Relocator, error)
}{m: builtinRelocators()}

func builtinRelocators() map[string]func([]byte) (Relocator, error) {
	return map[string]func([]byte) (Relocator, error){
		"link":      func([]byte) (Relocator, error) { return Link{}, nil },
		"pull":      func([]byte) (Relocator, error) { return Pull{}, nil },
		"duplicate": func([]byte) (Relocator, error) { return Duplicate{}, nil },
		"stamp":     func([]byte) (Relocator, error) { return Stamp{}, nil },
	}
}

// RegisterRelocator registers a user-defined relocator kind. The decode
// function reconstructs a relocator from the Data produced by
// EncodeRelocator; kinds of the four built-ins cannot be overridden.
func RegisterRelocator(kind string, decode func(data []byte) (Relocator, error)) error {
	if kind == "" || decode == nil {
		return fmt.Errorf("register relocator: kind and decode func required")
	}
	relocRegistry.Lock()
	defer relocRegistry.Unlock()
	switch kind {
	case "link", "pull", "duplicate", "stamp":
		return fmt.Errorf("register relocator: %q is a built-in kind", kind)
	}
	if _, dup := relocRegistry.m[kind]; dup {
		return fmt.Errorf("register relocator: kind %q already registered", kind)
	}
	relocRegistry.m[kind] = decode
	return nil
}

// GobStater is implemented by custom relocators that carry state. Its
// RelocatorState is gob-encoded into the descriptor's Data; the registered
// decode function receives those bytes back.
type GobStater interface {
	RelocatorState() any
}

// EncodeRelocator produces the wire descriptor for a relocator.
func EncodeRelocator(r Relocator) (RelocDescriptor, error) {
	if r == nil {
		return RelocDescriptor{}, fmt.Errorf("encode relocator: nil relocator")
	}
	d := RelocDescriptor{Kind: r.Kind()}
	if s, ok := r.(GobStater); ok {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(s.RelocatorState()); err != nil {
			return RelocDescriptor{}, fmt.Errorf("encode relocator %q state: %w", r.Kind(), err)
		}
		d.Data = buf.Bytes()
	}
	return d, nil
}

// DecodeRelocator reconstructs a relocator from its wire descriptor.
func DecodeRelocator(d RelocDescriptor) (Relocator, error) {
	relocRegistry.RLock()
	decode, ok := relocRegistry.m[d.Kind]
	relocRegistry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("decode relocator: unknown kind %q", d.Kind)
	}
	r, err := decode(d.Data)
	if err != nil {
		return nil, fmt.Errorf("decode relocator %q: %w", d.Kind, err)
	}
	return r, nil
}
