package transport

import "fargo/internal/wire"

// Option configures a transport constructor (NewTCP, NewSim).
type Option func(*options)

type options struct {
	codec wire.Codec
}

// WithCodec selects the wire codec the transport serializes envelopes with.
// The default is wire.Gob. Every core of a deployment must have the codec
// registered (wire.RegisterCodec): TCP dialers advertise the codec's ID in
// the connection preamble and the accepting side resolves it by that ID, so
// mixed-codec deployments interoperate as long as both sides know both
// codecs. Passing nil keeps the default.
func WithCodec(c wire.Codec) Option {
	return func(o *options) {
		if c != nil {
			o.codec = c
		}
	}
}

func buildOptions(opts []Option) options {
	o := options{codec: wire.Gob}
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// CodecCarrier is implemented by transports that expose their wire codec
// (TCP and Sim directly; Faulty forwards to its inner transport, wrapping
// sessions transparently — fault injection operates on whole messages above
// the serialization layer).
type CodecCarrier interface {
	Codec() wire.Codec
}
