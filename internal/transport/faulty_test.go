package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fargo/internal/ids"
	"fargo/internal/metrics"
	"fargo/internal/netsim"
	"fargo/internal/wire"
)

// faultyPair wires two Sim endpoints over one network and wraps a's outbound
// side in the injector. b pongs every ping and counts deliveries.
func faultyPair(t *testing.T) (*Faulty, *uint64) {
	t.Helper()
	net := netsim.NewNetwork(7)
	t.Cleanup(net.Close)
	ta, err := NewSim(net, "a")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewSim(net, "b")
	if err != nil {
		t.Fatal(err)
	}
	var delivered uint64
	tb.SetHandler(func(_ context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
		atomic.AddUint64(&delivered, 1)
		return wire.KindPong, nil, nil
	})
	f := NewFaulty(ta, 42)
	t.Cleanup(func() { _ = f.Close(); _ = tb.Close() })
	return f, &delivered
}

func TestFaultyPartitionFailsImmediately(t *testing.T) {
	f, delivered := faultyPair(t)
	f.Partition("b", true)

	start := time.Now()
	_, err := f.Request(context.Background(), "b", wire.KindPing, nil)
	if !errors.Is(err, ErrInjectedPartition) {
		t.Fatalf("err = %v, want ErrInjectedPartition", err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("partitioned request did not fail immediately")
	}
	if err := f.Notify("b", wire.KindPing, nil); !errors.Is(err, ErrInjectedPartition) {
		t.Fatalf("notify err = %v, want ErrInjectedPartition", err)
	}
	if n := atomic.LoadUint64(delivered); n != 0 {
		t.Fatalf("%d envelopes leaked through the partition", n)
	}

	// Healing the partition restores normal delivery.
	f.Partition("b", false)
	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); err != nil {
		t.Fatalf("request after heal: %v", err)
	}
}

func TestFaultyDropBlackholesUntilDeadline(t *testing.T) {
	f, delivered := faultyPair(t)
	f.SetDrop("b", 1.0) // every send vanishes

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Request(ctx, "b", wire.KindPing, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded (a drop is silence, not a bounce)", err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("dropped request returned after %v; should hang to the deadline", elapsed)
	}
	if err := f.Notify("b", wire.KindPing, nil); err != nil {
		t.Fatalf("dropped notify must look like success, got %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := atomic.LoadUint64(delivered); n != 0 {
		t.Fatalf("%d dropped envelopes were delivered", n)
	}
}

func TestFaultyDelayAddsLatencyFloor(t *testing.T) {
	f, _ := faultyPair(t)
	f.SetDelay("b", 120*time.Millisecond)

	start := time.Now()
	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); err != nil {
		t.Fatalf("delayed request: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Fatalf("request completed in %v, below the injected 120ms floor", elapsed)
	}

	// A context shorter than the delay must abort the wait.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := f.Request(ctx, "b", wire.KindPing, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestFaultyDuplicateDeliversTwice(t *testing.T) {
	f, delivered := faultyPair(t)
	f.SetDuplicate("b", 1.0)

	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); err != nil {
		t.Fatalf("duplicated request: %v", err)
	}
	// The duplicate is delivered in the background; give it a beat.
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadUint64(delivered) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := atomic.LoadUint64(delivered); n != 2 {
		t.Fatalf("delivered %d times, want 2 (original + duplicate)", n)
	}

	atomic.StoreUint64(delivered, 0)
	if err := f.Notify("b", wire.KindPing, nil); err != nil {
		t.Fatalf("duplicated notify: %v", err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for atomic.LoadUint64(delivered) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := atomic.LoadUint64(delivered); n != 2 {
		t.Fatalf("notify delivered %d times, want 2", n)
	}
}

func TestFaultyClearRestoresCleanPath(t *testing.T) {
	f, _ := faultyPair(t)
	f.Partition("b", true)
	f.SetDrop("b", 1.0)
	f.Clear("b")
	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); err != nil {
		t.Fatalf("request after Clear: %v", err)
	}
	f.SetDrop("b", 1.0)
	f.ClearAll()
	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); err != nil {
		t.Fatalf("request after ClearAll: %v", err)
	}
}

func TestFaultyIsPerPeer(t *testing.T) {
	net := netsim.NewNetwork(7)
	t.Cleanup(net.Close)
	ta, err := NewSim(net, "a")
	if err != nil {
		t.Fatal(err)
	}
	pong := func(_ context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
		return wire.KindPong, nil, nil
	}
	for _, name := range []ids.CoreID{"b", "c"} {
		tr, err := NewSim(net, name)
		if err != nil {
			t.Fatal(err)
		}
		tr.SetHandler(pong)
		t.Cleanup(func() { _ = tr.Close() })
	}
	f := NewFaulty(ta, 1)
	t.Cleanup(func() { _ = f.Close() })

	f.Partition("b", true)
	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); !errors.Is(err, ErrInjectedPartition) {
		t.Fatalf("b err = %v, want ErrInjectedPartition", err)
	}
	if _, err := f.Request(context.Background(), "c", wire.KindPing, nil); err != nil {
		t.Fatalf("partition of b must not affect c: %v", err)
	}
}

func TestFaultyCountsInjections(t *testing.T) {
	f, _ := faultyPair(t)
	reg := metrics.NewRegistry()
	f.SetMetrics(reg)

	// Partition: refused outright.
	f.Partition("b", true)
	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); !errors.Is(err, ErrInjectedPartition) {
		t.Fatalf("err = %v, want ErrInjectedPartition", err)
	}
	f.Partition("b", false)

	// Drop: a notify vanishes silently but is still counted.
	f.SetDrop("b", 1.0)
	if err := f.Notify("b", wire.KindPing, nil); err != nil {
		t.Fatalf("dropped notify: %v", err)
	}
	f.Clear("b")

	// Delay: shipped late.
	f.SetDelay("b", 10*time.Millisecond)
	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); err != nil {
		t.Fatalf("delayed request: %v", err)
	}
	f.Clear("b")

	// Duplicate: delivered twice.
	f.SetDuplicate("b", 1.0)
	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); err != nil {
		t.Fatalf("duplicated request: %v", err)
	}

	got := f.Counts()
	want := FaultCounts{Dropped: 1, Delayed: 1, Duplicated: 1, Partitioned: 1}
	if got != want {
		t.Fatalf("Counts() = %+v, want %+v", got, want)
	}

	// The same totals must appear in the attached registry.
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"transport_fault_dropped_total":     1,
		"transport_fault_delayed_total":     1,
		"transport_fault_duplicated_total":  1,
		"transport_fault_partitioned_total": 1,
	} {
		if snap.Counters[name] != want {
			t.Errorf("registry counter %s = %d, want %d", name, snap.Counters[name], want)
		}
	}
}

func TestFaultyCountsBeforeSetMetrics(t *testing.T) {
	// Counters are always on: injections before (or without) SetMetrics are
	// still reported by Counts().
	f, _ := faultyPair(t)
	f.Partition("b", true)
	_, _ = f.Request(context.Background(), "b", wire.KindPing, nil)
	_ = f.Notify("b", wire.KindPing, nil)
	if got := f.Counts().Partitioned; got != 2 {
		t.Fatalf("Partitioned = %d, want 2", got)
	}
}

func TestFaultyOverTCP(t *testing.T) {
	// The injector is transport-agnostic: same faults over real sockets.
	book := NewAddrBook(nil)
	ta, err := NewTCP("a", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTCP("b", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	book.Set("a", ta.Addr())
	book.Set("b", tb.Addr())
	var delivered uint64
	tb.SetHandler(func(_ context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
		atomic.AddUint64(&delivered, 1)
		return wire.KindPong, nil, nil
	})
	f := NewFaulty(ta, 99)
	t.Cleanup(func() { _ = f.Close(); _ = tb.Close() })

	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); err != nil {
		t.Fatalf("clean TCP request through injector: %v", err)
	}
	f.Partition("b", true)
	if _, err := f.Request(context.Background(), "b", wire.KindPing, nil); !errors.Is(err, ErrInjectedPartition) {
		t.Fatalf("err = %v, want ErrInjectedPartition", err)
	}
	if n := atomic.LoadUint64(&delivered); n != 1 {
		t.Fatalf("b handled %d requests, want exactly the pre-partition one", n)
	}
}
