package transport

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fargo/internal/ids"
	"fargo/internal/metrics"
	"fargo/internal/stats"
	"fargo/internal/wire"
)

// ErrInjectedPartition is the failure delivered for requests and notifies to
// a peer the Faulty wrapper has hard-partitioned away. It models a connection
// refused / host unreachable error: the message never left this host.
var ErrInjectedPartition = errors.New("transport: injected partition")

// faultPlan is the per-peer fault configuration. The zero value injects
// nothing.
type faultPlan struct {
	// partition fails every send to the peer immediately.
	partition bool
	// drop is the probability (0..1) that a message is silently lost:
	// requests black-hole until their context expires (the peer never saw
	// them), notifies vanish without an error.
	drop float64
	// delay is added to every message before it is handed to the inner
	// transport.
	delay time.Duration
	// duplicate is the probability (0..1) that a message is delivered
	// twice, exercising the receiver's tolerance to redelivery.
	duplicate float64
}

// Faulty wraps any Transport — TCP included, not just the simulator — with
// per-peer fault injection: probabilistic message drop, added delay,
// duplication, and hard partitions. It is the harness chaos and
// failure-recovery tests run under; production code never constructs one.
//
// Faults apply to OUTBOUND traffic only (requests and notifies this side
// initiates). For a symmetric partition, wrap both peers' transports and cut
// both directions. All controls are safe for concurrent use and take effect
// for the next message.
type Faulty struct {
	inner Transport

	// Injection counters are always on (a chaos run must be able to report
	// what it actually injected) and mirrored into the core's metrics
	// registry when one is attached via SetMetrics.
	dropped     stats.Counter
	delayed     stats.Counter
	duplicated  stats.Counter
	partitioned stats.Counter
	met         atomic.Pointer[faultMetrics]

	mu    sync.Mutex
	rng   *rand.Rand
	plans map[ids.CoreID]faultPlan
	logf  func(format string, args ...any)
}

// faultMetrics caches the registry instruments mirroring the wrapper's own
// counters.
type faultMetrics struct {
	dropped     *stats.Counter
	delayed     *stats.Counter
	duplicated  *stats.Counter
	partitioned *stats.Counter
}

// FaultCounts reports how many faults the wrapper has injected since
// construction. Messages both delayed and duplicated count under each.
type FaultCounts struct {
	// Dropped messages were silently lost (requests black-holed, notifies
	// vanished).
	Dropped uint64
	// Delayed messages were shipped late by the configured per-peer delay.
	Delayed uint64
	// Duplicated messages were delivered twice.
	Duplicated uint64
	// Partitioned messages were refused outright (ErrInjectedPartition).
	Partitioned uint64
}

// Counts returns the injection totals. Chaos tests assert against these; the
// same numbers flow into the metrics registry as transport_fault_* counters.
func (f *Faulty) Counts() FaultCounts {
	return FaultCounts{
		Dropped:     f.dropped.Value(),
		Delayed:     f.delayed.Value(),
		Duplicated:  f.duplicated.Value(),
		Partitioned: f.partitioned.Value(),
	}
}

// SetMetrics implements MetricsSetter: injected faults become
// transport_fault_* counters, and the inner transport's traffic counters are
// wired up too.
func (f *Faulty) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		f.met.Store(nil)
	} else {
		f.met.Store(&faultMetrics{
			dropped:     reg.Counter("transport_fault_dropped_total"),
			delayed:     reg.Counter("transport_fault_delayed_total"),
			duplicated:  reg.Counter("transport_fault_duplicated_total"),
			partitioned: reg.Counter("transport_fault_partitioned_total"),
		})
	}
	if ms, ok := f.inner.(MetricsSetter); ok {
		ms.SetMetrics(reg)
	}
}

func (f *Faulty) countDrop() {
	f.dropped.Inc()
	if m := f.met.Load(); m != nil {
		m.dropped.Inc()
	}
}

func (f *Faulty) countDelay() {
	f.delayed.Inc()
	if m := f.met.Load(); m != nil {
		m.delayed.Inc()
	}
}

func (f *Faulty) countDup() {
	f.duplicated.Inc()
	if m := f.met.Load(); m != nil {
		m.duplicated.Inc()
	}
}

func (f *Faulty) countPartition() {
	f.partitioned.Inc()
	if m := f.met.Load(); m != nil {
		m.partitioned.Inc()
	}
}

var _ Transport = (*Faulty)(nil)

// NewFaulty wraps the inner transport. The seed drives the probabilistic
// faults, making chaos runs reproducible.
func NewFaulty(inner Transport, seed int64) *Faulty {
	return &Faulty{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		plans: make(map[ids.CoreID]faultPlan),
		logf:  log.Printf,
	}
}

// Inner returns the wrapped transport.
func (f *Faulty) Inner() Transport { return f.inner }

// Codec implements CodecCarrier by forwarding to the inner transport: the
// wrapper injects faults on whole messages above the serialization layer, so
// it wraps codec sessions transparently. Returns nil when the inner
// transport does not carry a codec.
func (f *Faulty) Codec() wire.Codec {
	if cc, ok := f.inner.(CodecCarrier); ok {
		return cc.Codec()
	}
	return nil
}

// SetLogf redirects the wrapper's fault diagnostics and threads the logger
// through to the inner transport when it supports redirection.
func (f *Faulty) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = log.Printf
	}
	f.mu.Lock()
	f.logf = logf
	f.mu.Unlock()
	if ls, ok := f.inner.(LogfSetter); ok {
		ls.SetLogf(logf)
	}
}

// Partition cuts (or heals) the outbound path to the peer.
func (f *Faulty) Partition(peer ids.CoreID, cut bool) {
	f.update(peer, func(p *faultPlan) { p.partition = cut })
}

// SetDrop sets the probability (0..1) that a message to the peer is lost.
func (f *Faulty) SetDrop(peer ids.CoreID, prob float64) {
	f.update(peer, func(p *faultPlan) { p.drop = clamp01(prob) })
}

// SetDelay adds a fixed delay to every message to the peer.
func (f *Faulty) SetDelay(peer ids.CoreID, d time.Duration) {
	f.update(peer, func(p *faultPlan) { p.delay = d })
}

// SetDuplicate sets the probability (0..1) that a message to the peer is
// delivered twice.
func (f *Faulty) SetDuplicate(peer ids.CoreID, prob float64) {
	f.update(peer, func(p *faultPlan) { p.duplicate = clamp01(prob) })
}

// Clear removes all injected faults for the peer.
func (f *Faulty) Clear(peer ids.CoreID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.plans, peer)
}

// ClearAll removes every injected fault.
func (f *Faulty) ClearAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plans = make(map[ids.CoreID]faultPlan)
}

func (f *Faulty) update(peer ids.CoreID, mut func(*faultPlan)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.plans[peer]
	mut(&p)
	f.plans[peer] = p
}

// decide reads the peer's plan and rolls the probabilistic faults once.
func (f *Faulty) decide(peer ids.CoreID) (p faultPlan, drop, dup bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = f.plans[peer]
	drop = p.drop > 0 && f.rng.Float64() < p.drop
	dup = p.duplicate > 0 && f.rng.Float64() < p.duplicate
	return p, drop, dup
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Self implements Transport.
func (f *Faulty) Self() ids.CoreID { return f.inner.Self() }

// SetHandler implements Transport.
func (f *Faulty) SetHandler(h Handler) { f.inner.SetHandler(h) }

// Close implements Transport.
func (f *Faulty) Close() error { return f.inner.Close() }

// Request implements Transport with fault injection. A partitioned peer fails
// immediately (the message never left); a dropped request black-holes until
// the caller's context expires, exactly like a request a dead peer swallowed;
// a duplicated request is delivered a second time in the background with its
// reply discarded, so the peer's handler runs twice.
func (f *Faulty) Request(ctx context.Context, to ids.CoreID, kind wire.Kind, payload []byte) (wire.Envelope, error) {
	plan, drop, dup := f.decide(to)
	if plan.partition {
		f.countPartition()
		return wire.Envelope{}, fmt.Errorf("faulty transport: request %s to %s: %w", kind, to, ErrInjectedPartition)
	}
	if plan.delay > 0 {
		f.countDelay()
		t := time.NewTimer(plan.delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return wire.Envelope{}, fmt.Errorf("faulty transport: request %s to %s: %w", kind, to, ctx.Err())
		}
	}
	if drop {
		f.countDrop()
		f.logfFn()("fargo faulty transport %s: dropping request %s to %s", f.Self(), kind, to)
		<-ctx.Done()
		return wire.Envelope{}, fmt.Errorf("faulty transport: request %s to %s dropped: %w", kind, to, ctx.Err())
	}
	if dup {
		f.countDup()
		f.logfFn()("fargo faulty transport %s: duplicating request %s to %s", f.Self(), kind, to)
		go func() {
			dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, _ = f.inner.Request(dctx, to, kind, payload)
		}()
	}
	return f.inner.Request(ctx, to, kind, payload)
}

// Notify implements Transport with fault injection. Dropped notifies vanish
// silently (one-way messages carry no delivery guarantee); delayed notifies
// are shipped from a background goroutine so the caller is not stalled.
func (f *Faulty) Notify(to ids.CoreID, kind wire.Kind, payload []byte) error {
	plan, drop, dup := f.decide(to)
	if plan.partition {
		f.countPartition()
		return fmt.Errorf("faulty transport: notify %s to %s: %w", kind, to, ErrInjectedPartition)
	}
	if drop {
		f.countDrop()
		f.logfFn()("fargo faulty transport %s: dropping notify %s to %s", f.Self(), kind, to)
		return nil
	}
	sends := 1
	if dup {
		f.countDup()
		sends = 2
	}
	if plan.delay > 0 {
		f.countDelay()
		go func() {
			time.Sleep(plan.delay)
			for i := 0; i < sends; i++ {
				if err := f.inner.Notify(to, kind, payload); err != nil {
					f.logfFn()("fargo faulty transport %s: delayed notify %s to %s: %v", f.Self(), kind, to, err)
					return
				}
			}
		}()
		return nil
	}
	for i := 0; i < sends; i++ {
		if err := f.inner.Notify(to, kind, payload); err != nil {
			return err
		}
	}
	return nil
}

func (f *Faulty) logfFn() func(format string, args ...any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.logf
}
