// Package transport implements the peer interface layer (§3, Figure 1): the
// low-level core-to-core communication that everything above it — invocation
// forwarding, movement bundles, distributed events — rides on.
//
// Two interchangeable implementations are provided:
//
//   - Sim: message-level transport over the netsim simulated network, used by
//     tests and the experiment harness (deterministic latency/bandwidth).
//   - TCP: length-framed gob envelopes over real TCP connections, used by the
//     fargo-core daemon.
//
// Both expose the same request/response surface with correlation IDs, so the
// core is oblivious to which one it runs on (the substitution for Java RMI;
// see DESIGN.md).
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fargo/internal/ids"
	"fargo/internal/metrics"
	"fargo/internal/stats"
	"fargo/internal/trace"
	"fargo/internal/wire"
)

var (
	// ErrClosed is returned when using a transport after Close.
	ErrClosed = errors.New("transport: closed")
	// ErrNoHandler is returned when a request arrives before SetHandler.
	ErrNoHandler = errors.New("transport: no handler installed")
)

// RemoteError carries an error message produced by a peer's handler.
type RemoteError struct {
	Peer ids.CoreID
	Msg  string
	// cause is the local sentinel the wire message maps back to (ErrConnLost,
	// ErrClosed), nil for application errors — it lets errors.Is see through
	// the string-typed wire crossing.
	cause error
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote error from %s: %s", e.Peer, e.Msg)
}

// Unwrap exposes the sentinel a transport-produced error reply maps to, so
// errors.Is(err, ErrConnLost) works across the wire crossing.
func (e *RemoteError) Unwrap() error { return e.cause }

// Handler processes one incoming request envelope and returns the reply
// payload kind and bytes. Handlers run on their own goroutines; returning an
// error sends a KindError reply to the requester. The context carries the
// request's remaining end-to-end budget (derived from the envelope's wire
// deadline), so handlers that issue further requests deduct elapsed time
// instead of resetting the clock.
type Handler func(ctx context.Context, env wire.Envelope) (wire.Kind, []byte, error)

// handlerContext derives the serving context for an incoming request from
// its wire deadline (context.Background when the request carries none) and
// its trace context, so spans the handler opens parent under the sender's.
func handlerContext(env wire.Envelope) (context.Context, context.CancelFunc) {
	ctx := context.Background()
	if env.TraceID != 0 && env.Sampled {
		ctx = trace.NewContext(ctx, trace.SpanContext{
			Trace:   trace.TraceID(env.TraceID),
			Span:    trace.SpanID(env.Span),
			Sampled: true,
		})
	}
	if env.Deadline > 0 {
		return context.WithDeadline(ctx, time.Unix(0, env.Deadline))
	}
	return context.WithCancel(ctx)
}

// stampDeadline records the context's deadline (if any) on an outgoing
// request envelope so it travels on the wire.
func stampDeadline(ctx context.Context, env *wire.Envelope) {
	if dl, ok := ctx.Deadline(); ok {
		env.Deadline = dl.UnixNano()
	}
}

// stampTrace records the context's sampled trace (if any) on an outgoing
// request envelope so the receiver joins the trace. Untraced contexts leave
// the envelope untouched — the common case costs one context lookup.
func stampTrace(ctx context.Context, env *wire.Envelope) {
	if sc, ok := trace.FromContext(ctx); ok && sc.Sampled {
		env.TraceID = uint64(sc.Trace)
		env.Span = uint64(sc.Span)
		env.Sampled = true
	}
}

// MetricsSetter is implemented by transports that can report traffic counters
// into a core's metrics registry. The core threads its registry through this
// hook at construction time, like Options.Logf via LogfSetter.
type MetricsSetter interface {
	SetMetrics(reg *metrics.Registry)
}

// txMetrics caches the registry's transport instruments so the per-message
// cost is an atomic pointer load plus counter bumps, never a map lookup.
type txMetrics struct {
	sentMsgs  *stats.Counter
	sentBytes *stats.Counter
	recvMsgs  *stats.Counter
	recvBytes *stats.Counter
}

func newTxMetrics(reg *metrics.Registry) *txMetrics {
	if reg == nil {
		return nil
	}
	return &txMetrics{
		sentMsgs:  reg.Counter("transport_sent_total"),
		sentBytes: reg.Counter("transport_sent_bytes_total"),
		recvMsgs:  reg.Counter("transport_recv_total"),
		recvBytes: reg.Counter("transport_recv_bytes_total"),
	}
}

func (m *txMetrics) sent(bytes int) {
	if m == nil {
		return
	}
	m.sentMsgs.Inc()
	m.sentBytes.Add(uint64(bytes))
}

func (m *txMetrics) recv(bytes int) {
	if m == nil {
		return
	}
	m.recvMsgs.Inc()
	m.recvBytes.Add(uint64(bytes))
}

// txMetricsHolder is the shared SetMetrics implementation embedded by Sim and
// TCP.
type txMetricsHolder struct {
	met atomic.Pointer[txMetrics]
}

// SetMetrics implements MetricsSetter.
func (h *txMetricsHolder) SetMetrics(reg *metrics.Registry) {
	h.met.Store(newTxMetrics(reg))
}

func (h *txMetricsHolder) metrics() *txMetrics { return h.met.Load() }

// LogfSetter is implemented by transports whose diagnostic output can be
// redirected. The core threads its Options.Logf through this hook at
// construction time so transport-level noise (undecodable envelopes, reply
// failures) lands in the same log as everything else. Passing nil restores
// the default standard-library logger.
type LogfSetter interface {
	SetLogf(logf func(format string, args ...any))
}

// Transport moves envelopes between cores.
type Transport interface {
	// Self returns the core ID this transport speaks for.
	Self() ids.CoreID
	// Request sends a request envelope and waits for the correlated reply.
	Request(ctx context.Context, to ids.CoreID, kind wire.Kind, payload []byte) (wire.Envelope, error)
	// Notify sends a one-way envelope (no reply expected).
	Notify(to ids.CoreID, kind wire.Kind, payload []byte) error
	// SetHandler installs the request handler. Must be called before the
	// first request arrives.
	SetHandler(h Handler)
	// Close shuts the transport down and waits for its goroutines.
	Close() error
}

// pending correlates outstanding requests with their replies.
type pending struct {
	mu   sync.Mutex
	seq  ids.Sequencer
	wait map[ids.RequestID]chan wire.Envelope
}

func newPending() *pending {
	return &pending{wait: make(map[ids.RequestID]chan wire.Envelope)}
}

// register allocates a request ID and a reply channel.
func (p *pending) register() (ids.RequestID, chan wire.Envelope) {
	id := ids.RequestID(p.seq.Next())
	ch := make(chan wire.Envelope, 1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wait[id] = ch
	return id, ch
}

// complete delivers a reply to its waiter, if any.
func (p *pending) complete(env wire.Envelope) {
	p.mu.Lock()
	ch, ok := p.wait[env.Req]
	if ok {
		delete(p.wait, env.Req)
	}
	p.mu.Unlock()
	if ok {
		ch <- env
	}
}

// cancel drops a waiter (request timed out or transport closing).
func (p *pending) cancel(id ids.RequestID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.wait, id)
}

// failAll unblocks every waiter with a closed-transport error envelope.
func (p *pending) failAll(self ids.CoreID) {
	p.mu.Lock()
	waiters := p.wait
	p.wait = make(map[ids.RequestID]chan wire.Envelope)
	p.mu.Unlock()
	if len(waiters) == 0 {
		return
	}
	payload, err := wire.EncodePayload(wire.ErrorReply{Msg: ErrClosed.Error()})
	if err != nil {
		payload = nil
	}
	for id, ch := range waiters {
		ch <- wire.Envelope{From: self, Req: id, IsReply: true, Kind: wire.KindError, Payload: payload}
	}
}

// decodeErrorReply turns a KindError envelope into a RemoteError. Messages
// the transport layer itself produces (a dropped connection, a closed
// transport) are mapped back to their sentinels so callers match them with
// errors.Is instead of string comparison.
func decodeErrorReply(env wire.Envelope) error {
	var er wire.ErrorReply
	if err := wire.DecodePayload(env.Payload, &er); err != nil {
		return &RemoteError{Peer: env.From, Msg: "undecodable error reply"}
	}
	re := &RemoteError{Peer: env.From, Msg: er.Msg}
	switch er.Msg {
	case ErrConnLost.Error():
		re.cause = ErrConnLost
	case ErrClosed.Error():
		re.cause = ErrClosed
	}
	return re
}

// CheckReply maps a reply envelope to an error when the peer's handler
// failed. Callers decode the payload only when CheckReply returns nil.
func CheckReply(env wire.Envelope) error {
	if env.Kind == wire.KindError {
		return decodeErrorReply(env)
	}
	return nil
}
