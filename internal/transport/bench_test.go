package transport

import (
	"context"
	"testing"

	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/wire"
)

// benchEcho answers every request with its own payload.
func benchEcho(_ context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
	return wire.KindPong, env.Payload, nil
}

// BenchmarkTCPRequestReply measures one full request/reply round trip over
// loopback TCP with streaming codec sessions.
func BenchmarkTCPRequestReply(b *testing.B) {
	book := NewAddrBook(nil)
	ta, err := NewTCP("core-a", "127.0.0.1:0", book)
	if err != nil {
		b.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewTCP("core-b", "127.0.0.1:0", book)
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	book.Set("core-a", ta.Addr())
	book.Set("core-b", tb.Addr())
	runRequestReply(b, ta, tb)
}

// BenchmarkSimRequestReply measures the same round trip over the simulated
// network's self-framed message path.
func BenchmarkSimRequestReply(b *testing.B) {
	net := netsim.NewNetwork(1)
	defer net.Close()
	sa, err := NewSim(net, "core-a")
	if err != nil {
		b.Fatal(err)
	}
	defer sa.Close()
	sb, err := NewSim(net, "core-b")
	if err != nil {
		b.Fatal(err)
	}
	defer sb.Close()
	runRequestReply(b, sa, sb)
}

func runRequestReply(b *testing.B, a, peer Transport) {
	b.Helper()
	a.SetHandler(benchEcho)
	peer.SetHandler(benchEcho)
	payload := make([]byte, 128)
	ctx := context.Background()
	// Warm the connection (and its codec session) outside the timed loop.
	if _, err := a.Request(ctx, ids.CoreID("core-b"), wire.KindPing, payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Request(ctx, ids.CoreID("core-b"), wire.KindPing, payload); err != nil {
			b.Fatal(err)
		}
	}
}
