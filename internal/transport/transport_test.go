package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/wire"
)

// pair builds two connected transports of the given flavor and returns them
// with a cleanup.
func pair(t *testing.T, flavor string) (a, b Transport) {
	t.Helper()
	switch flavor {
	case "sim":
		net := netsim.NewNetwork(1)
		t.Cleanup(net.Close)
		sa, err := NewSim(net, "core-a")
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewSim(net, "core-b")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sa.Close(); sb.Close() })
		return sa, sb
	case "tcp":
		book := NewAddrBook(nil)
		ta, err := NewTCP("core-a", "127.0.0.1:0", book)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := NewTCP("core-b", "127.0.0.1:0", book)
		if err != nil {
			t.Fatal(err)
		}
		book.Set("core-a", ta.Addr())
		book.Set("core-b", tb.Addr())
		t.Cleanup(func() { ta.Close(); tb.Close() })
		return ta, tb
	default:
		t.Fatalf("unknown flavor %q", flavor)
		return nil, nil
	}
}

func flavors(t *testing.T, fn func(t *testing.T, flavor string)) {
	for _, flavor := range []string{"sim", "tcp"} {
		t.Run(flavor, func(t *testing.T) { fn(t, flavor) })
	}
}

// echoHandler replies to pings with pongs and errors on anything else.
func echoHandler(_ context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
	switch env.Kind {
	case wire.KindPing:
		var p wire.Ping
		if err := wire.DecodePayload(env.Payload, &p); err != nil {
			return 0, nil, err
		}
		out, err := wire.EncodePayload(wire.Pong{Seq: p.Seq})
		if err != nil {
			return 0, nil, err
		}
		return wire.KindPong, out, nil
	default:
		return 0, nil, fmt.Errorf("unexpected kind %s", env.Kind)
	}
}

func TestRequestReply(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		b.SetHandler(echoHandler)

		payload, err := wire.EncodePayload(wire.Ping{Seq: 7})
		if err != nil {
			t.Fatal(err)
		}
		reply, err := a.Request(context.Background(), b.Self(), wire.KindPing, payload)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Kind != wire.KindPong {
			t.Fatalf("reply kind %s", reply.Kind)
		}
		var pong wire.Pong
		if err := wire.DecodePayload(reply.Payload, &pong); err != nil {
			t.Fatal(err)
		}
		if pong.Seq != 7 {
			t.Fatalf("pong seq %d", pong.Seq)
		}
		if reply.From != b.Self() {
			t.Fatalf("reply from %s", reply.From)
		}
	})
}

func TestConcurrentRequests(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		b.SetHandler(echoHandler)

		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					seq := uint64(g*1000 + i)
					payload, err := wire.EncodePayload(wire.Ping{Seq: seq})
					if err != nil {
						t.Error(err)
						return
					}
					reply, err := a.Request(context.Background(), b.Self(), wire.KindPing, payload)
					if err != nil {
						t.Error(err)
						return
					}
					var pong wire.Pong
					if err := wire.DecodePayload(reply.Payload, &pong); err != nil {
						t.Error(err)
						return
					}
					if pong.Seq != seq {
						t.Errorf("correlation broken: sent %d got %d", seq, pong.Seq)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

func TestBidirectional(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		a.SetHandler(echoHandler)
		b.SetHandler(echoHandler)

		payload, _ := wire.EncodePayload(wire.Ping{Seq: 1})
		if _, err := a.Request(context.Background(), b.Self(), wire.KindPing, payload); err != nil {
			t.Fatalf("a->b: %v", err)
		}
		if _, err := b.Request(context.Background(), a.Self(), wire.KindPing, payload); err != nil {
			t.Fatalf("b->a: %v", err)
		}
	})
}

func TestHandlerErrorBecomesRemoteError(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		b.SetHandler(func(_ context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
			return 0, nil, errors.New("kaboom")
		})
		_, err := a.Request(context.Background(), b.Self(), wire.KindPing, nil)
		var remote *RemoteError
		if !errors.As(err, &remote) {
			t.Fatalf("err = %v, want RemoteError", err)
		}
		if remote.Msg != "kaboom" || remote.Peer != b.Self() {
			t.Fatalf("remote = %+v", remote)
		}
	})
}

func TestNoHandler(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		_ = b // no handler installed on b
		_, err := a.Request(context.Background(), b.Self(), wire.KindPing, nil)
		var remote *RemoteError
		if !errors.As(err, &remote) {
			t.Fatalf("err = %v, want RemoteError about missing handler", err)
		}
	})
}

func TestNotifyOneWay(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		got := make(chan wire.Envelope, 1)
		b.SetHandler(func(_ context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
			select {
			case got <- env:
			default:
			}
			return wire.KindPong, nil, nil
		})
		if err := a.Notify(b.Self(), wire.KindShutdownNotice, nil); err != nil {
			t.Fatal(err)
		}
		select {
		case env := <-got:
			if env.Kind != wire.KindShutdownNotice || env.From != a.Self() {
				t.Fatalf("got %+v", env)
			}
			if env.Req != 0 {
				t.Fatal("notification should have no request ID")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("notification not delivered")
		}
	})
}

func TestRequestContextCancel(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		b.SetHandler(func(_ context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
			time.Sleep(time.Second) // never answers in time
			return wire.KindPong, nil, nil
		})
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, err := a.Request(ctx, b.Self(), wire.KindPing, nil)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		if time.Since(start) > time.Second {
			t.Fatal("cancel did not unblock promptly")
		}
	})
}

func TestRequestAfterClose(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Request(context.Background(), b.Self(), wire.KindPing, nil); !errors.Is(err, ErrClosed) {
			t.Fatalf("request after close: %v, want ErrClosed", err)
		}
		if err := a.Notify(b.Self(), wire.KindPing, nil); !errors.Is(err, ErrClosed) {
			t.Fatalf("notify after close: %v, want ErrClosed", err)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("double close: %v", err)
		}
	})
}

func TestRequestToUnknownPeer(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, _ := pair(t, flavor)
		_, err := a.Request(context.Background(), "nowhere", wire.KindPing, nil)
		if err == nil {
			t.Fatal("request to unknown peer should fail")
		}
	})
}

func TestSimRespectsSimulatedLatency(t *testing.T) {
	net := netsim.NewNetwork(1)
	defer net.Close()
	a, err := NewSim(net, "core-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewSim(net, "core-b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.SetHandler(echoHandler)

	const lat = 20 * time.Millisecond
	if err := net.SetLink("core-a", "core-b", netsim.LinkProfile{Latency: lat}); err != nil {
		t.Fatal(err)
	}
	payload, _ := wire.EncodePayload(wire.Ping{Seq: 1})
	start := time.Now()
	if _, err := a.Request(context.Background(), "core-b", wire.KindPing, payload); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 2*lat {
		t.Fatalf("rtt %v, want >= %v (latency both ways)", rtt, 2*lat)
	}
}

func TestTCPAddressLearning(t *testing.T) {
	// Only a's address book knows b; b learns a's address from the hello
	// frame and can reply (and later initiate) without prior seeding.
	bookA := NewAddrBook(nil)
	bookB := NewAddrBook(nil)
	a, err := NewTCP("core-a", "127.0.0.1:0", bookA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP("core-b", "127.0.0.1:0", bookB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bookA.Set("core-b", b.Addr())
	a.SetHandler(echoHandler)
	b.SetHandler(echoHandler)

	payload, _ := wire.EncodePayload(wire.Ping{Seq: 1})
	if _, err := a.Request(context.Background(), "core-b", wire.KindPing, payload); err != nil {
		t.Fatal(err)
	}
	// b must now know a.
	if _, ok := bookB.Get("core-a"); !ok {
		t.Fatal("b did not learn a's address from hello")
	}
	if _, err := b.Request(context.Background(), "core-a", wire.KindPing, payload); err != nil {
		t.Fatalf("b->a after learning: %v", err)
	}
}

func TestTCPRedialAfterPeerRestart(t *testing.T) {
	book := NewAddrBook(nil)
	a, err := NewTCP("core-a", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := NewTCP("core-b", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	book.Set("core-b", b1.Addr())
	b1.SetHandler(echoHandler)

	payload, _ := wire.EncodePayload(wire.Ping{Seq: 1})
	if _, err := a.Request(context.Background(), "core-b", wire.KindPing, payload); err != nil {
		t.Fatal(err)
	}

	// Restart b on the same port.
	addr := b1.Addr()
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	var b2 *TCP
	for i := 0; i < 50; i++ {
		b2, err = NewTCP("core-b", addr, book)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer b2.Close()
	b2.SetHandler(echoHandler)

	// The first request may race the death of the cached connection: the
	// frame can vanish into the dying socket. The transport fails such
	// requests fast (ErrConnLost) rather than hanging, so a retry loop
	// converges quickly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err = a.Request(ctx, "core-b", wire.KindPing, payload)
		cancel()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("request after peer restart: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAddrBook(t *testing.T) {
	b := NewAddrBook(map[ids.CoreID]string{"x": "1.2.3.4:5"})
	if got, ok := b.Get("x"); !ok || got != "1.2.3.4:5" {
		t.Fatalf("Get(x) = %q, %v", got, ok)
	}
	b.Set("y", "5.6.7.8:9")
	peers := b.Peers()
	if len(peers) != 2 {
		t.Fatalf("Peers = %v", peers)
	}
	if _, ok := b.Get("z"); ok {
		t.Fatal("unknown peer should miss")
	}
}

func TestLargePayload(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		b.SetHandler(func(_ context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
			var p wire.Ping
			if err := wire.DecodePayload(env.Payload, &p); err != nil {
				return 0, nil, err
			}
			out, err := wire.EncodePayload(wire.Pong{Seq: uint64(len(p.Payload))})
			return wire.KindPong, out, err
		})
		big := make([]byte, 4<<20) // 4 MiB
		payload, err := wire.EncodePayload(wire.Ping{Seq: 1, Payload: big})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		reply, err := a.Request(ctx, b.Self(), wire.KindPing, payload)
		if err != nil {
			t.Fatal(err)
		}
		var pong wire.Pong
		if err := wire.DecodePayload(reply.Payload, &pong); err != nil {
			t.Fatal(err)
		}
		if pong.Seq != uint64(len(big)) {
			t.Fatalf("peer saw %d bytes, want %d", pong.Seq, len(big))
		}
	})
}

func TestDeadlineTravelsToHandler(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		got := make(chan time.Duration, 1)
		b.SetHandler(func(ctx context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
			if dl, ok := ctx.Deadline(); ok {
				got <- time.Until(dl)
			} else {
				got <- -1
			}
			return wire.KindPong, nil, nil
		})
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if _, err := a.Request(ctx, b.Self(), wire.KindPing, nil); err != nil {
			t.Fatal(err)
		}
		// The handler must see the caller's remaining budget, not a fresh
		// clock: positive, but no more than what the caller started with.
		rem := <-got
		if rem <= 0 || rem > 2*time.Second {
			t.Fatalf("handler saw remaining budget %v, want within (0, 2s]", rem)
		}
	})
}

func TestNoCallerDeadlineMeansNoHandlerDeadline(t *testing.T) {
	flavors(t, func(t *testing.T, flavor string) {
		a, b := pair(t, flavor)
		got := make(chan bool, 1)
		b.SetHandler(func(ctx context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
			_, ok := ctx.Deadline()
			got <- ok
			return wire.KindPong, nil, nil
		})
		if _, err := a.Request(context.Background(), b.Self(), wire.KindPing, nil); err != nil {
			t.Fatal(err)
		}
		if <-got {
			t.Fatal("handler saw a deadline for a request that carried none")
		}
	})
}
