package transport

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/wire"
)

// Sim is a Transport over the netsim simulated network. One Sim wraps one
// netsim host; core IDs double as host names.
//
// Unlike TCP, Sim deliberately keeps SELF-FRAMED messages (each envelope
// carries its own codec state) instead of streaming sessions: netsim is
// message-granular, and hosts can be removed and re-added (core restarts)
// which would desync a streaming session's descriptor state. Send buffers
// come from the wire buffer pool — netsim copies payloads on Send, so the
// buffer is returned immediately and steady-state sends allocate nothing.
type Sim struct {
	txMetricsHolder

	self    ids.CoreID
	net     *netsim.Network
	host    *netsim.Host
	pending *pending
	codec   wire.Codec

	mu      sync.Mutex
	handler Handler
	closed  bool
	logf    func(format string, args ...any)

	quit chan struct{}
	done chan struct{}
	wg   sync.WaitGroup // handler goroutines
}

var _ Transport = (*Sim)(nil)

// NewSim attaches a transport for the named core to the simulated network,
// registering a host of the same name. Closing the transport unregisters the
// host, so a restarted core can reuse the name. Options select the wire
// codec (WithCodec; gob by default).
func NewSim(net *netsim.Network, self ids.CoreID, opts ...Option) (*Sim, error) {
	host, err := net.AddHost(self.String())
	if err != nil {
		return nil, fmt.Errorf("sim transport: %w", err)
	}
	cfg := buildOptions(opts)
	s := &Sim{
		self:    self,
		net:     net,
		host:    host,
		pending: newPending(),
		codec:   cfg.codec,
		logf:    log.Printf,
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.pump()
	return s, nil
}

// Codec implements CodecCarrier.
func (s *Sim) Codec() wire.Codec { return s.codec }

// sendEnv marshals the envelope self-framed into a pooled buffer and hands
// it to the simulated host. netsim copies the payload, so the buffer is
// recycled before returning; the bytes shipped are reported for metrics.
func (s *Sim) sendEnv(to ids.CoreID, env *wire.Envelope) (int, error) {
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	if err := s.codec.MarshalEnvelope(env, buf); err != nil {
		return 0, err
	}
	if err := s.host.Send(to.String(), buf.Bytes()); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}

// Self implements Transport.
func (s *Sim) Self() ids.CoreID { return s.self }

// SetHandler implements Transport.
func (s *Sim) SetHandler(h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

// SetLogf implements LogfSetter.
func (s *Sim) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = log.Printf
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logf = logf
}

func (s *Sim) logfFn() func(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logf
}

// Request implements Transport.
func (s *Sim) Request(ctx context.Context, to ids.CoreID, kind wire.Kind, payload []byte) (wire.Envelope, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return wire.Envelope{}, ErrClosed
	}
	id, ch := s.pending.register()
	env := wire.Envelope{From: s.self, Req: id, Kind: kind, Payload: payload}
	stampDeadline(ctx, &env)
	stampTrace(ctx, &env)
	n, err := s.sendEnv(to, &env)
	if err != nil {
		s.pending.cancel(id)
		return wire.Envelope{}, fmt.Errorf("sim transport: send to %s: %w", to, err)
	}
	s.metrics().sent(n)
	select {
	case reply := <-ch:
		if err := CheckReply(reply); err != nil {
			return wire.Envelope{}, err
		}
		return reply, nil
	case <-ctx.Done():
		s.pending.cancel(id)
		return wire.Envelope{}, fmt.Errorf("sim transport: request %s to %s: %w", kind, to, ctx.Err())
	case <-s.quit:
		s.pending.cancel(id)
		return wire.Envelope{}, ErrClosed
	}
}

// Notify implements Transport.
func (s *Sim) Notify(to ids.CoreID, kind wire.Kind, payload []byte) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	env := wire.Envelope{From: s.self, Kind: kind, Payload: payload}
	n, err := s.sendEnv(to, &env)
	if err != nil {
		return fmt.Errorf("sim transport: notify %s: %w", to, err)
	}
	s.metrics().sent(n)
	return nil
}

// pump reads raw messages from the simulated host and dispatches them.
func (s *Sim) pump() {
	defer close(s.done)
	for {
		select {
		case msg := <-s.host.Recv():
			s.metrics().recv(len(msg.Payload))
			env, err := s.codec.UnmarshalEnvelope(msg.Payload)
			if err != nil {
				s.logfFn()("fargo sim transport %s: dropping undecodable message from %s: %v", s.self, msg.From, err)
				continue
			}
			s.dispatch(env)
		case <-s.quit:
			return
		}
	}
}

func (s *Sim) dispatch(env wire.Envelope) {
	if env.IsReply {
		s.pending.complete(env)
		return
	}
	s.mu.Lock()
	h := s.handler
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serve(h, env)
	}()
}

// serve runs the handler for one request and sends the reply (for correlated
// requests only; notifications carry Req == 0).
func (s *Sim) serve(h Handler, env wire.Envelope) {
	var (
		kind    wire.Kind
		payload []byte
		err     error
	)
	if h == nil {
		err = ErrNoHandler
	} else {
		ctx, cancel := handlerContext(env)
		kind, payload, err = h(ctx, env)
		cancel()
	}
	if env.Req == 0 {
		return // notification: nothing to reply to
	}
	if err != nil {
		kind = wire.KindError
		payload, _ = wire.EncodePayload(wire.ErrorReply{Msg: err.Error()})
	}
	reply := wire.Envelope{From: s.self, Req: env.Req, IsReply: true, Kind: kind, Payload: payload}
	n, sendErr := s.sendEnv(env.From, &reply)
	if sendErr != nil {
		s.logfFn()("fargo sim transport %s: reply to %s: %v", s.self, env.From, sendErr)
		return
	}
	s.metrics().sent(n)
}

// Close implements Transport. It stops the pump, waits for in-flight handler
// goroutines, and fails any outstanding requests.
func (s *Sim) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.quit)
	<-s.done
	s.wg.Wait()
	s.pending.failAll(s.self)
	// Free the host name for a possible core restart.
	if err := s.net.RemoveHost(s.self.String()); err != nil && !errors.Is(err, netsim.ErrNoHost) {
		return err
	}
	return nil
}
