package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"fargo/internal/ids"
	"fargo/internal/wire"
)

// wireMagic opens every TCP connection, followed by the dialer's codec ID
// byte. The preamble is read from the raw socket before any codec session
// exists, so a peer speaking an unknown codec — or not speaking fargo at
// all — is rejected before the first frame is parsed.
var wireMagic = [4]byte{'F', 'G', 'W', '1'}

// ErrUnknownPeer is returned when sending to a core with no known address.
var ErrUnknownPeer = errors.New("transport: unknown peer address")

// AddrBook maps core IDs to TCP addresses. Safe for concurrent use.
type AddrBook struct {
	mu    sync.RWMutex
	addrs map[ids.CoreID]string
}

// NewAddrBook returns an address book seeded with the given entries.
func NewAddrBook(seed map[ids.CoreID]string) *AddrBook {
	b := &AddrBook{addrs: make(map[ids.CoreID]string, len(seed))}
	for k, v := range seed {
		b.addrs[k] = v
	}
	return b
}

// Set records the address of a core.
func (b *AddrBook) Set(core ids.CoreID, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[core] = addr
}

// Get looks up the address of a core.
func (b *AddrBook) Get(core ids.CoreID) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	a, ok := b.addrs[core]
	return a, ok
}

// Peers lists the cores with known addresses.
func (b *AddrBook) Peers() []ids.CoreID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]ids.CoreID, 0, len(b.addrs))
	for k := range b.addrs {
		out = append(out, k)
	}
	return out
}

// TCP is a Transport over real TCP connections with length-framed envelopes
// serialized by a streaming codec session per connection (wire.Codec; gob by
// default, so type descriptors cross the wire once per peer). Outbound
// connections are cached per peer; inbound connections open with a
// magic+codec preamble and a hello envelope identifying the dialer, and
// learned addresses populate the address book.
type TCP struct {
	txMetricsHolder

	self    ids.CoreID
	book    *AddrBook
	ln      net.Listener
	pending *pending
	codec   wire.Codec

	mu       sync.Mutex
	handler  Handler
	logf     func(format string, args ...any)
	conns    map[ids.CoreID]*tcpConn
	accepted map[net.Conn]struct{}
	// inflight tracks which connection each outstanding request was sent
	// on, so requests fail fast when that connection drops instead of
	// waiting for their context deadline.
	inflight map[*tcpConn]map[ids.RequestID]struct{}
	closed   bool

	wg sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// tcpConn is one outbound connection and its codec session, with a write
// lock (frames must not interleave).
type tcpConn struct {
	mu   sync.Mutex
	c    net.Conn
	sess wire.Session
}

// writeEnv appends one envelope to the connection's session stream and
// returns the bytes written.
func (c *tcpConn) writeEnv(env *wire.Envelope) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sess.EncodeEnvelope(env)
}

// NewTCP starts a TCP transport listening on listenAddr. The address peers
// should dial (the bound listen address) is sent in hello envelopes. Options
// select the wire codec (WithCodec; gob by default).
func NewTCP(self ids.CoreID, listenAddr string, book *AddrBook, opts ...Option) (*TCP, error) {
	if book == nil {
		book = NewAddrBook(nil)
	}
	cfg := buildOptions(opts)
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcp transport: listen %s: %w", listenAddr, err)
	}
	t := &TCP{
		self:     self,
		book:     book,
		ln:       ln,
		pending:  newPending(),
		codec:    cfg.codec,
		logf:     log.Printf,
		conns:    make(map[ids.CoreID]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
		inflight: make(map[*tcpConn]map[ids.RequestID]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Codec implements CodecCarrier.
func (t *TCP) Codec() wire.Codec { return t.codec }

// Addr returns the transport's listening address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Book returns the transport's address book.
func (t *TCP) Book() *AddrBook { return t.book }

// Self implements Transport.
func (t *TCP) Self() ids.CoreID { return t.self }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// SetLogf implements LogfSetter.
func (t *TCP) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = log.Printf
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.logf = logf
}

func (t *TCP) logfFn() func(format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.logf
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.accepted[c] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(c)
	}
}

// hello is the payload of the KindHello envelope opening every connection,
// identifying the dialer.
type hello struct {
	From ids.CoreID
	Addr string // dialer's advertised listen address ("" if unknown)
}

// readLoop consumes envelopes from one inbound connection: preamble
// (magic + codec ID), then a codec session whose first envelope must be the
// hello. The session's codec is the DIALER's choice, resolved from the
// registry — the accepting side does not need to share the dialer's default.
func (t *TCP) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.accepted, c)
		t.mu.Unlock()
	}()

	var pre [5]byte
	if _, err := io.ReadFull(c, pre[:]); err != nil {
		return
	}
	if !bytes.Equal(pre[:4], wireMagic[:]) {
		t.logfFn()("fargo tcp %s: bad preamble from %s", t.self, c.RemoteAddr())
		return
	}
	codec, ok := wire.CodecByID(pre[4])
	if !ok {
		t.logfFn()("fargo tcp %s: unknown codec %q from %s", t.self, pre[4], c.RemoteAddr())
		return
	}
	sess := codec.NewSession(c)

	var henv wire.Envelope
	if _, err := sess.DecodeEnvelope(&henv); err != nil {
		return
	}
	if henv.Kind != wire.KindHello {
		t.logfFn()("fargo tcp %s: expected hello from %s, got %s", t.self, c.RemoteAddr(), henv.Kind)
		return
	}
	var h hello
	if err := wire.DecodePayload(henv.Payload, &h); err != nil {
		t.logfFn()("fargo tcp %s: bad hello from %s: %v", t.self, c.RemoteAddr(), err)
		return
	}
	if h.Addr != "" {
		t.book.Set(h.From, h.Addr)
	}

	for {
		// Fresh envelope each message: gob does not clear fields absent
		// from the wire, so reuse would leak state across messages.
		var env wire.Envelope
		n, err := sess.DecodeEnvelope(&env)
		if err != nil {
			// A decode error leaves the session stream in an undefined
			// position, so the connection is dropped rather than resumed;
			// the dialer redials with a fresh session.
			if !errors.Is(err, io.EOF) && !t.isClosed() {
				t.logfFn()("fargo tcp %s: read from %s: %v", t.self, h.From, err)
			}
			return
		}
		t.metrics().recv(n)
		t.dispatch(env)
	}
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *TCP) dispatch(env wire.Envelope) {
	if env.IsReply {
		t.pending.complete(env)
		return
	}
	t.mu.Lock()
	h := t.handler
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.serve(h, env)
	}()
}

func (t *TCP) serve(h Handler, env wire.Envelope) {
	var (
		kind    wire.Kind
		payload []byte
		err     error
	)
	if h == nil {
		err = ErrNoHandler
	} else {
		ctx, cancel := handlerContext(env)
		kind, payload, err = h(ctx, env)
		cancel()
	}
	if env.Req == 0 {
		return
	}
	if err != nil {
		kind = wire.KindError
		payload, _ = wire.EncodePayload(wire.ErrorReply{Msg: err.Error()})
	}
	reply := wire.Envelope{From: t.self, Req: env.Req, IsReply: true, Kind: kind, Payload: payload}
	if _, err := t.send(env.From, reply); err != nil && !t.isClosed() {
		t.logfFn()("fargo tcp %s: reply to %s: %v", t.self, env.From, err)
	}
}

// ErrConnLost is delivered (wrapped in a *RemoteError, matched via
// errors.Is) to requests whose underlying connection dropped before a reply
// arrived. Callers may retry idempotent requests. Its message is what
// actually crosses the wire in the KindError payload; decodeErrorReply maps
// it back to this sentinel.
var ErrConnLost = errors.New("connection lost before reply")

// Request implements Transport.
func (t *TCP) Request(ctx context.Context, to ids.CoreID, kind wire.Kind, payload []byte) (wire.Envelope, error) {
	if t.isClosed() {
		return wire.Envelope{}, ErrClosed
	}
	id, ch := t.pending.register()
	env := wire.Envelope{From: t.self, Req: id, Kind: kind, Payload: payload}
	stampDeadline(ctx, &env)
	stampTrace(ctx, &env)
	conn, err := t.send(to, env)
	if err != nil {
		t.pending.cancel(id)
		return wire.Envelope{}, err
	}
	t.trackInflight(conn, id, true)
	defer t.trackInflight(conn, id, false)
	select {
	case reply := <-ch:
		if err := CheckReply(reply); err != nil {
			return wire.Envelope{}, err
		}
		return reply, nil
	case <-ctx.Done():
		t.pending.cancel(id)
		return wire.Envelope{}, fmt.Errorf("tcp transport: request %s to %s: %w", kind, to, ctx.Err())
	}
}

func (t *TCP) trackInflight(c *tcpConn, id ids.RequestID, add bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if add {
		set, ok := t.inflight[c]
		if !ok {
			set = make(map[ids.RequestID]struct{})
			t.inflight[c] = set
		}
		set[id] = struct{}{}
		return
	}
	if set, ok := t.inflight[c]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(t.inflight, c)
		}
	}
}

// Notify implements Transport.
func (t *TCP) Notify(to ids.CoreID, kind wire.Kind, payload []byte) error {
	if t.isClosed() {
		return ErrClosed
	}
	_, err := t.send(to, wire.Envelope{From: t.self, Kind: kind, Payload: payload})
	return err
}

// send writes an envelope to the peer over the cached (or freshly dialed)
// connection's session and returns the connection used. On a write error the
// connection is dropped and one redial is attempted (a fresh connection gets
// a fresh session), masking stale connections after a peer restart.
func (t *TCP) send(to ids.CoreID, env wire.Envelope) (*tcpConn, error) {
	conn, err := t.conn(to)
	if err != nil {
		return nil, err
	}
	n, werr := conn.writeEnv(&env)
	if werr != nil {
		t.dropConn(to, conn)
		conn, err2 := t.conn(to)
		if err2 != nil {
			return nil, fmt.Errorf("tcp transport: send to %s: %w", to, werr)
		}
		n, err2 = conn.writeEnv(&env)
		if err2 != nil {
			t.dropConn(to, conn)
			return nil, fmt.Errorf("tcp transport: send to %s after redial: %w", to, err2)
		}
		t.metrics().sent(n)
		return conn, nil
	}
	t.metrics().sent(n)
	return conn, nil
}

// conn returns the cached connection to the peer, dialing if needed.
func (t *TCP) conn(to ids.CoreID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	addr, ok := t.book.Get(to)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	raw, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("tcp transport: dial %s (%s): %w", to, addr, err)
	}

	// Preamble on the raw socket, then a codec session for everything else.
	pre := [5]byte{wireMagic[0], wireMagic[1], wireMagic[2], wireMagic[3], t.codec.ID()}
	if _, err := raw.Write(pre[:]); err != nil {
		raw.Close()
		return nil, fmt.Errorf("tcp transport: preamble to %s: %w", to, err)
	}
	c := &tcpConn{c: raw, sess: t.codec.NewSession(raw)}

	// Identify ourselves and read replies arriving on this connection.
	helloBytes, err := wire.EncodePayload(hello{From: t.self, Addr: t.ln.Addr().String()})
	if err != nil {
		raw.Close()
		return nil, err
	}
	henv := wire.Envelope{From: t.self, Kind: wire.KindHello, Payload: helloBytes}
	if _, err := c.writeEnv(&henv); err != nil {
		raw.Close()
		return nil, fmt.Errorf("tcp transport: hello to %s: %w", to, err)
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		raw.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		// Lost the dial race; use the winner.
		t.mu.Unlock()
		raw.Close()
		return existing, nil
	}
	t.conns[to] = c
	t.wg.Add(1)
	t.mu.Unlock()

	go func() {
		defer t.wg.Done()
		defer raw.Close()
		for {
			var env wire.Envelope
			n, err := c.sess.DecodeEnvelope(&env)
			if err != nil {
				// EOF or a desynced stream either way: drop the
				// connection and fail its in-flight requests fast.
				t.dropConn(to, c)
				return
			}
			t.metrics().recv(n)
			t.dispatch(env)
		}
	}()
	return c, nil
}

func (t *TCP) dropConn(to ids.CoreID, c *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	orphaned := t.inflight[c]
	delete(t.inflight, c)
	t.mu.Unlock()
	c.c.Close()
	// Fail requests that were awaiting replies on this connection so they
	// don't hang until their deadline.
	payload, err := wire.EncodePayload(wire.ErrorReply{Msg: ErrConnLost.Error()})
	if err != nil {
		payload = nil
	}
	for id := range orphaned {
		t.pending.complete(wire.Envelope{
			From: to, Req: id, IsReply: true, Kind: wire.KindError, Payload: payload,
		})
	}
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[ids.CoreID]*tcpConn)
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()

	t.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	t.wg.Wait()
	t.pending.failAll(t.self)
	return nil
}
