package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"fargo/internal/ids"
	"fargo/internal/wire"
)

// maxFrame bounds a single envelope frame (movement bundles can be large,
// but a corrupt length prefix must not allocate unbounded memory).
const maxFrame = 256 << 20 // 256 MiB

// ErrUnknownPeer is returned when sending to a core with no known address.
var ErrUnknownPeer = errors.New("transport: unknown peer address")

// AddrBook maps core IDs to TCP addresses. Safe for concurrent use.
type AddrBook struct {
	mu    sync.RWMutex
	addrs map[ids.CoreID]string
}

// NewAddrBook returns an address book seeded with the given entries.
func NewAddrBook(seed map[ids.CoreID]string) *AddrBook {
	b := &AddrBook{addrs: make(map[ids.CoreID]string, len(seed))}
	for k, v := range seed {
		b.addrs[k] = v
	}
	return b
}

// Set records the address of a core.
func (b *AddrBook) Set(core ids.CoreID, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[core] = addr
}

// Get looks up the address of a core.
func (b *AddrBook) Get(core ids.CoreID) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	a, ok := b.addrs[core]
	return a, ok
}

// Peers lists the cores with known addresses.
func (b *AddrBook) Peers() []ids.CoreID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]ids.CoreID, 0, len(b.addrs))
	for k := range b.addrs {
		out = append(out, k)
	}
	return out
}

// TCP is a Transport over real TCP connections with length-framed gob
// envelopes. Outbound connections are cached per peer; inbound connections
// carry a hello frame identifying the dialer, and learned addresses populate
// the address book.
type TCP struct {
	txMetricsHolder

	self    ids.CoreID
	book    *AddrBook
	ln      net.Listener
	pending *pending

	mu       sync.Mutex
	handler  Handler
	logf     func(format string, args ...any)
	conns    map[ids.CoreID]*tcpConn
	accepted map[net.Conn]struct{}
	// inflight tracks which connection each outstanding request was sent
	// on, so requests fail fast when that connection drops instead of
	// waiting for their context deadline.
	inflight map[*tcpConn]map[ids.RequestID]struct{}
	closed   bool

	wg sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// tcpConn is one outbound connection with a write lock (frames must not
// interleave).
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

// NewTCP starts a TCP transport listening on listenAddr. advertise is the
// address peers should dial (usually listenAddr with a resolvable host); it
// is sent in hello frames.
func NewTCP(self ids.CoreID, listenAddr string, book *AddrBook) (*TCP, error) {
	if book == nil {
		book = NewAddrBook(nil)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcp transport: listen %s: %w", listenAddr, err)
	}
	t := &TCP{
		self:     self,
		book:     book,
		ln:       ln,
		pending:  newPending(),
		logf:     log.Printf,
		conns:    make(map[ids.CoreID]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
		inflight: make(map[*tcpConn]map[ids.RequestID]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listening address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Book returns the transport's address book.
func (t *TCP) Book() *AddrBook { return t.book }

// Self implements Transport.
func (t *TCP) Self() ids.CoreID { return t.self }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// SetLogf implements LogfSetter.
func (t *TCP) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = log.Printf
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.logf = logf
}

func (t *TCP) logfFn() func(format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.logf
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.accepted[c] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(c)
	}
}

// hello is the first frame on every connection, identifying the dialer.
type hello struct {
	From ids.CoreID
	Addr string // dialer's advertised listen address ("" if unknown)
}

// readLoop consumes frames from one inbound connection.
func (t *TCP) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.accepted, c)
		t.mu.Unlock()
	}()
	r := bufio.NewReader(c)

	first, err := readFrame(r)
	if err != nil {
		return
	}
	var h hello
	if err := wire.DecodePayload(first, &h); err != nil {
		t.logfFn()("fargo tcp %s: bad hello from %s: %v", t.self, c.RemoteAddr(), err)
		return
	}
	if h.Addr != "" {
		t.book.Set(h.From, h.Addr)
	}

	for {
		frame, err := readFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !t.isClosed() {
				t.logfFn()("fargo tcp %s: read from %s: %v", t.self, h.From, err)
			}
			return
		}
		t.metrics().recv(len(frame))
		env, err := wire.DecodeEnvelope(frame)
		if err != nil {
			t.logfFn()("fargo tcp %s: undecodable envelope from %s: %v", t.self, h.From, err)
			continue
		}
		t.dispatch(env)
	}
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *TCP) dispatch(env wire.Envelope) {
	if env.IsReply {
		t.pending.complete(env)
		return
	}
	t.mu.Lock()
	h := t.handler
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.serve(h, env)
	}()
}

func (t *TCP) serve(h Handler, env wire.Envelope) {
	var (
		kind    wire.Kind
		payload []byte
		err     error
	)
	if h == nil {
		err = ErrNoHandler
	} else {
		ctx, cancel := handlerContext(env)
		kind, payload, err = h(ctx, env)
		cancel()
	}
	if env.Req == 0 {
		return
	}
	if err != nil {
		kind = wire.KindError
		payload, _ = wire.EncodePayload(wire.ErrorReply{Msg: err.Error()})
	}
	reply := wire.Envelope{From: t.self, Req: env.Req, IsReply: true, Kind: kind, Payload: payload}
	if _, err := t.send(env.From, reply); err != nil && !t.isClosed() {
		t.logfFn()("fargo tcp %s: reply to %s: %v", t.self, env.From, err)
	}
}

// ErrConnLost is the message of the RemoteError delivered to requests whose
// underlying connection dropped before a reply arrived. Callers may retry
// idempotent requests.
const ErrConnLost = "connection lost before reply"

// Request implements Transport.
func (t *TCP) Request(ctx context.Context, to ids.CoreID, kind wire.Kind, payload []byte) (wire.Envelope, error) {
	if t.isClosed() {
		return wire.Envelope{}, ErrClosed
	}
	id, ch := t.pending.register()
	env := wire.Envelope{From: t.self, Req: id, Kind: kind, Payload: payload}
	stampDeadline(ctx, &env)
	stampTrace(ctx, &env)
	conn, err := t.send(to, env)
	if err != nil {
		t.pending.cancel(id)
		return wire.Envelope{}, err
	}
	t.trackInflight(conn, id, true)
	defer t.trackInflight(conn, id, false)
	select {
	case reply := <-ch:
		if err := CheckReply(reply); err != nil {
			return wire.Envelope{}, err
		}
		return reply, nil
	case <-ctx.Done():
		t.pending.cancel(id)
		return wire.Envelope{}, fmt.Errorf("tcp transport: request %s to %s: %w", kind, to, ctx.Err())
	}
}

func (t *TCP) trackInflight(c *tcpConn, id ids.RequestID, add bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if add {
		set, ok := t.inflight[c]
		if !ok {
			set = make(map[ids.RequestID]struct{})
			t.inflight[c] = set
		}
		set[id] = struct{}{}
		return
	}
	if set, ok := t.inflight[c]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(t.inflight, c)
		}
	}
}

// Notify implements Transport.
func (t *TCP) Notify(to ids.CoreID, kind wire.Kind, payload []byte) error {
	if t.isClosed() {
		return ErrClosed
	}
	_, err := t.send(to, wire.Envelope{From: t.self, Kind: kind, Payload: payload})
	return err
}

// send writes an envelope to the peer over the cached (or freshly dialed)
// connection and returns the connection used. On a write error the connection
// is dropped and one redial is attempted, masking stale connections after a
// peer restart.
func (t *TCP) send(to ids.CoreID, env wire.Envelope) (*tcpConn, error) {
	data, err := wire.EncodeEnvelope(env)
	if err != nil {
		return nil, err
	}
	conn, err := t.conn(to)
	if err != nil {
		return nil, err
	}
	if err := conn.writeFrame(data); err != nil {
		t.dropConn(to, conn)
		conn, err2 := t.conn(to)
		if err2 != nil {
			return nil, fmt.Errorf("tcp transport: send to %s: %w", to, err)
		}
		if err2 := conn.writeFrame(data); err2 != nil {
			t.dropConn(to, conn)
			return nil, fmt.Errorf("tcp transport: send to %s after redial: %w", to, err2)
		}
		t.metrics().sent(len(data))
		return conn, nil
	}
	t.metrics().sent(len(data))
	return conn, nil
}

// conn returns the cached connection to the peer, dialing if needed.
func (t *TCP) conn(to ids.CoreID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	addr, ok := t.book.Get(to)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	raw, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("tcp transport: dial %s (%s): %w", to, addr, err)
	}
	c := &tcpConn{c: raw, w: bufio.NewWriter(raw)}

	// Identify ourselves and read replies arriving on this connection.
	helloBytes, err := wire.EncodePayload(hello{From: t.self, Addr: t.ln.Addr().String()})
	if err != nil {
		raw.Close()
		return nil, err
	}
	if err := c.writeFrame(helloBytes); err != nil {
		raw.Close()
		return nil, fmt.Errorf("tcp transport: hello to %s: %w", to, err)
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		raw.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		// Lost the dial race; use the winner.
		t.mu.Unlock()
		raw.Close()
		return existing, nil
	}
	t.conns[to] = c
	t.wg.Add(1)
	t.mu.Unlock()

	go func() {
		defer t.wg.Done()
		defer raw.Close()
		r := bufio.NewReader(raw)
		for {
			frame, err := readFrame(r)
			if err != nil {
				t.dropConn(to, c)
				return
			}
			t.metrics().recv(len(frame))
			env, err := wire.DecodeEnvelope(frame)
			if err != nil {
				continue
			}
			t.dispatch(env)
		}
	}()
	return c, nil
}

func (t *TCP) dropConn(to ids.CoreID, c *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	orphaned := t.inflight[c]
	delete(t.inflight, c)
	t.mu.Unlock()
	c.c.Close()
	// Fail requests that were awaiting replies on this connection so they
	// don't hang until their deadline.
	payload, err := wire.EncodePayload(wire.ErrorReply{Msg: ErrConnLost})
	if err != nil {
		payload = nil
	}
	for id := range orphaned {
		t.pending.complete(wire.Envelope{
			From: to, Req: id, IsReply: true, Kind: wire.KindError, Payload: payload,
		})
	}
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[ids.CoreID]*tcpConn)
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()

	t.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	t.wg.Wait()
	t.pending.failAll(t.self)
	return nil
}

// writeFrame writes one length-prefixed frame.
func (c *tcpConn) writeFrame(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(data); err != nil {
		return err
	}
	return c.w.Flush()
}

// readFrame reads one length-prefixed frame.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
