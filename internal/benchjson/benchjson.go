// Package benchjson parses the text output of `go test -bench` into a
// machine-readable form, so CI can persist benchmark results (BENCH_PR4.json)
// and later runs can diff them. It understands the standard benchmark result
// line — name, iteration count, then unit-tagged values — including the
// -benchmem columns and custom ReportMetric units.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including any -cpu suffix
	// (BenchmarkE1_InvocationDirect-8).
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op value.
	NsPerOp float64 `json:"ns_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns (0 when absent).
	BytesPerOp  int64 `json:"bytes_op,omitempty"`
	AllocsPerOp int64 `json:"allocs_op,omitempty"`
	// Extra holds any remaining unit-tagged values (MB/s, custom
	// ReportMetric units), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Parse reads `go test -bench` output and returns the benchmark results in
// input order. Non-benchmark lines (PASS, ok, goos, test logs) are skipped.
// A line starting with "Benchmark" that does not parse is an error — silent
// skips would make an empty result file look like a passing bench run.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line needs at least name, iterations, value, unit; the
		// bare "BenchmarkFoo" line ("--- BENCH:" headers land without the
		// prefix) is not one.
		if len(fields) < 4 {
			if len(fields) == 1 {
				continue // a benchmark name echoed alone (e.g. with -v)
			}
			return nil, fmt.Errorf("benchjson: malformed line %q", line)
		}
		res := Result{Name: fields[0]}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
		}
		res.Iterations = n
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value in %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
				sawNs = true
			case "B/op":
				res.BytesPerOp = int64(val)
			case "allocs/op":
				res.AllocsPerOp = int64(val)
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = val
			}
		}
		if !sawNs {
			return nil, fmt.Errorf("benchjson: no ns/op in %q", line)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Write renders results as indented JSON (an array, stable field order).
func Write(w io.Writer, results []Result) error {
	if results == nil {
		results = []Result{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
