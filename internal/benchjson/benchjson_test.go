package benchjson

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: fargo
cpu: Intel Xeon
BenchmarkE1_InvocationDirect-8      	  913846	      1269 ns/op	     312 B/op	       9 allocs/op
BenchmarkE1_InvocationRefRemote-8   	    8318	    143907 ns/op
BenchmarkE5_InstantCached-8         	 1000000	      51.5 ns/op	      87.1 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	fargo	12.3s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkE1_InvocationDirect-8" || r.Iterations != 913846 ||
		r.NsPerOp != 1269 || r.BytesPerOp != 312 || r.AllocsPerOp != 9 {
		t.Errorf("first result = %+v", r)
	}
	if r := results[1]; r.NsPerOp != 143907 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("benchmem-less result = %+v", r)
	}
	if r := results[2]; r.NsPerOp != 51.5 || r.Extra["MB/s"] != 87.1 {
		t.Errorf("fractional/extra result = %+v", r)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-8 notanumber 12 ns/op",
		"BenchmarkX-8 10 what ns/op",
		"BenchmarkX-8 10 12 B/op", // a result line without ns/op
	} {
		if _, err := Parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestParseSkipsNoise(t *testing.T) {
	results, err := Parse(strings.NewReader("PASS\nok fargo 1s\nBenchmarkAlone\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("results = %+v, want none", results)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := Write(&buf, results); err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, results) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, results)
	}

	// nil renders as an empty array, not JSON null.
	buf.Reset()
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("Write(nil) = %q", buf.String())
	}
}
