// Package chaos is the kill/restart harness for the crash-safe movement
// protocol (DESIGN.md §13). It runs a cluster of journal-enabled cores on a
// simulated network, crashes a chosen core at any step of the movement
// protocol (via core.SetMoveStepHook), restarts it from its journal and
// checkpoint, drives recovery, and asserts the protocol's convergence
// invariant: after recovery, exactly one live copy of each moved complet
// survives, reachable through tracker chains and the home-based location
// service.
//
// The harness is deliberately testing-free (methods return errors) so both
// the package's own tests and ad-hoc experiments can drive it.
package chaos

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"fargo/internal/core"
	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

// Ball is the complet type the harness moves around. Its state (a label and
// a poke counter) verifies that crash recovery preserves complet state, not
// just existence.
type Ball struct {
	Label string
	Pokes int
}

// Init is the constructor invoked by the registry.
func (b *Ball) Init(label string) { b.Label = label }

// Poke mutates and returns the counter (used to prove the survivor is live).
func (b *Ball) Poke() int { b.Pokes++; return b.Pokes }

// Get returns the label.
func (b *Ball) Get() string { return b.Label }

// requestTimeout keeps crash scenarios fast: a bundle whose acknowledgement
// died hits its unknown-outcome path after this budget, not after 30s.
const requestTimeout = 2 * time.Second

// Harness is one chaos cluster.
type Harness struct {
	Net *netsim.Network
	// Dir holds each core's journal (<name>.journal) and checkpoint
	// (<name>.ckpt).
	Dir   string
	Cores map[ids.CoreID]*core.Core
	// Faults, when fault injection was requested via NewWithFaults, maps
	// each core to its transport.Faulty wrapper.
	Faults map[ids.CoreID]*transport.Faulty
	seed   int64
	faulty bool
}

// New builds a cluster of journal-enabled cores with home tracking on a
// simulated network. dir must exist; seed drives the simulated network (and
// the fault wrappers, when enabled).
func New(dir string, seed int64, names ...string) (*Harness, error) {
	return build(dir, seed, false, names...)
}

// NewWithFaults is New with every core's transport wrapped in a
// transport.Faulty seeded deterministically, so tests can inject message
// duplication and partitions on top of crashes.
func NewWithFaults(dir string, seed int64, names ...string) (*Harness, error) {
	return build(dir, seed, true, names...)
}

func build(dir string, seed int64, faulty bool, names ...string) (*Harness, error) {
	h := &Harness{
		Net:    netsim.NewNetwork(seed),
		Dir:    dir,
		Cores:  make(map[ids.CoreID]*core.Core, len(names)),
		Faults: make(map[ids.CoreID]*transport.Faulty),
		seed:   seed,
		faulty: faulty,
	}
	for _, name := range names {
		if _, err := h.startCore(ids.CoreID(name)); err != nil {
			h.Close()
			return nil, err
		}
	}
	return h, nil
}

// registryFor builds the anchor registry every core (re)starts with.
func registryFor() (*registry.Registry, error) {
	reg := registry.New()
	if err := reg.Register("Ball", (*Ball)(nil)); err != nil {
		return nil, err
	}
	return reg, nil
}

// startCore attaches a fresh core under the given name: new sim transport
// (registering the host), journal replay from its journal file, home
// tracking on.
func (h *Harness) startCore(name ids.CoreID) (*core.Core, error) {
	var tr transport.Transport
	str, err := transport.NewSim(h.Net, name)
	if err != nil {
		return nil, err
	}
	tr = str
	if h.faulty {
		f := transport.NewFaulty(tr, h.seed+int64(len(name)))
		h.Faults[name] = f
		tr = f
	}
	reg, err := registryFor()
	if err != nil {
		return nil, err
	}
	c, err := core.New(tr, reg, core.Options{
		RequestTimeout: requestTimeout,
		Breaker:        core.BreakerPolicy{Disable: true},
		JournalPath:    h.JournalPath(name),
		Logf:           func(string, ...any) {}, // chaos runs are log-heavy by design
	})
	if err != nil {
		return nil, err
	}
	c.EnableHomeTracking()
	h.Cores[name] = c
	return c, nil
}

// JournalPath returns the core's journal file path.
func (h *Harness) JournalPath(name ids.CoreID) string {
	return filepath.Join(h.Dir, string(name)+".journal")
}

// CheckpointPath returns the core's checkpoint file path.
func (h *Harness) CheckpointPath(name ids.CoreID) string {
	return filepath.Join(h.Dir, string(name)+".ckpt")
}

// Core returns a running core by name.
func (h *Harness) Core(name ids.CoreID) *core.Core { return h.Cores[name] }

// Checkpoint persists the core's repository to its checkpoint file
// (atomically — see core.CheckpointFile).
func (h *Harness) Checkpoint(name ids.CoreID) error {
	return h.Cores[name].CheckpointFile(h.CheckpointPath(name))
}

// ArmCrash installs a crash hook on the victim: at the given protocol step
// (for the given root, or any root when root is zero) the victim's host is
// cut off the network — in-flight messages and replies die — and the core
// stops journaling, exactly as a killed process would. Returns a function
// reporting whether the crash fired.
func (h *Harness) ArmCrash(victim ids.CoreID, step core.MoveStep, root ids.CompletID) func() bool {
	// The hook runs on core-internal goroutines (destination-side steps fire
	// on the transport handler; duplicated deliveries can fire it twice).
	var fired atomic.Bool
	h.Cores[victim].SetMoveStepHook(func(s core.MoveStep, r ids.CompletID) bool {
		if s != step || (root != (ids.CompletID{}) && r != root) {
			return false
		}
		fired.Store(true)
		_ = h.Net.StopHost(victim.String())
		return true
	})
	return fired.Load
}

// Kill completes a crash: the victim's (already network-dead) core is torn
// down abruptly, as the process exiting would. The journal file survives
// with exactly the records that were fsync'd before the crash.
func (h *Harness) Kill(victim ids.CoreID) error {
	c := h.Cores[victim]
	if c == nil {
		return fmt.Errorf("chaos: no core %q", victim)
	}
	delete(h.Cores, victim)
	return c.ShutdownAbrupt()
}

// Restart brings a crashed core back: fresh transport and core under the
// same name, journal replayed at construction, checkpoint restored when one
// exists (which runs recovery automatically), explicit Recover otherwise.
func (h *Harness) Restart(name ids.CoreID) (*core.Core, error) {
	c, err := h.startCore(name)
	if err != nil {
		return nil, err
	}
	if _, statErr := os.Stat(h.CheckpointPath(name)); statErr == nil {
		if _, err := c.RestoreFile(h.CheckpointPath(name)); err != nil {
			return nil, fmt.Errorf("chaos: restore %s: %w", name, err)
		}
	} else {
		if _, err := c.Recover(context.Background()); err != nil {
			return nil, fmt.Errorf("chaos: recover %s: %w", name, err)
		}
	}
	return c, nil
}

// RecoverAll runs Recover on every live core (sources resolve their pending
// moves against restarted destinations) and returns the merged report.
func (h *Harness) RecoverAll(ctx context.Context) (core.RecoveryReport, error) {
	var merged core.RecoveryReport
	for _, c := range h.Cores {
		rep, err := c.Recover(ctx)
		if err != nil {
			return merged, err
		}
		merged.Completed = append(merged.Completed, rep.Completed...)
		merged.RolledBack = append(merged.RolledBack, rep.RolledBack...)
		merged.Released = append(merged.Released, rep.Released...)
		merged.Reinstalled = append(merged.Reinstalled, rep.Reinstalled...)
		merged.Unresolved = append(merged.Unresolved, rep.Unresolved...)
	}
	return merged, nil
}

// LiveCopies lists the cores currently hosting the complet (the convergence
// invariant wants exactly one).
func (h *Harness) LiveCopies(id ids.CompletID) []ids.CoreID {
	var out []ids.CoreID
	for name, c := range h.Cores {
		for _, info := range c.Complets() {
			if info.ID == id {
				out = append(out, name)
				break
			}
		}
	}
	return out
}

// AssertConverged checks the convergence invariant for one complet: exactly
// one live copy exists; every core's tracker chain resolves to it; the
// home-based location service agrees; and the survivor answers an
// invocation. Returns the hosting core on success.
func (h *Harness) AssertConverged(ctx context.Context, id ids.CompletID) (ids.CoreID, error) {
	copies := h.LiveCopies(id)
	if len(copies) != 1 {
		return "", fmt.Errorf("chaos: %s has %d live copies (%v), want exactly 1", id, len(copies), copies)
	}
	owner := copies[0]
	for name, c := range h.Cores {
		loc, err := c.LocateCompletCtx(ctx, id)
		if err != nil {
			return "", fmt.Errorf("chaos: locate %s from %s: %w", id, name, err)
		}
		if loc != owner {
			return "", fmt.Errorf("chaos: %s locates %s at %s, owner is %s", name, id, loc, owner)
		}
	}
	// Home-based naming: the birth core's home table must agree (it is
	// repaired by recovery, not just by happy-path moves).
	if home := h.Cores[id.Birth]; home != nil {
		loc, err := home.LocateViaHomeCtx(ctx, id)
		if err != nil {
			return "", fmt.Errorf("chaos: home locate %s: %w", id, err)
		}
		if loc != owner {
			return "", fmt.Errorf("chaos: home of %s says %s, owner is %s", id, loc, owner)
		}
	}
	// The survivor must be live, not a ghost entry: poke it.
	ownerCore := h.Cores[owner]
	r := ownerCore.NewRefTo(id, "Ball", owner)
	if _, err := r.InvokeCtx(ctx, "Poke"); err != nil {
		return "", fmt.Errorf("chaos: poke survivor %s at %s: %w", id, owner, err)
	}
	return owner, nil
}

// Close tears the cluster down.
func (h *Harness) Close() {
	for name, c := range h.Cores {
		_ = c.ShutdownAbrupt()
		delete(h.Cores, name)
	}
	h.Net.Close()
}
