package chaos

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"fargo/internal/core"
	"fargo/internal/ids"
)

// newHarness builds a cluster in a test temp dir and hooks teardown.
func newHarness(t *testing.T, seed int64, faulty bool, names ...string) *Harness {
	t.Helper()
	dir := t.TempDir()
	var (
		h   *Harness
		err error
	)
	if faulty {
		h, err = NewWithFaults(dir, seed, names...)
	} else {
		h, err = New(dir, seed, names...)
	}
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

// bornBall creates a Ball on the given core and returns its identity.
func bornBall(t *testing.T, h *Harness, at ids.CoreID, label string) ids.CompletID {
	t.Helper()
	r, err := h.Core(at).NewComplet("Ball", label)
	if err != nil {
		t.Fatalf("new ball: %v", err)
	}
	return r.Target()
}

// crashScenario runs the canonical kill/restart scenario for one protocol
// step: a ball born (and checkpointed) on core a, a move a→b armed to crash
// the victim at the step, kill + restart + recover, then the convergence
// invariant — exactly one live copy, at wantOwner, with its state intact.
func crashScenario(t *testing.T, step core.MoveStep, victim, wantOwner ids.CoreID) {
	t.Helper()
	h := newHarness(t, 42, false, "a", "b", "c")
	a := h.Core("a")
	id := bornBall(t, h, "a", "crash-"+string(step))
	if err := h.Checkpoint("a"); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	fired := h.ArmCrash(victim, step, id)
	// No deadline: the core's RequestTimeout (2s in the harness) bounds the
	// move, exercising the same budget a production caller would run under.
	r := a.NewRefTo(id, "Ball", "a")
	err := a.MoveCtx(context.Background(), r, "b")
	if err == nil {
		t.Fatalf("move survived a crash armed at %s", step)
	}
	if !fired() {
		t.Fatalf("crash at %s never fired (move error: %v)", step, err)
	}

	if err := h.Kill(victim); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}
	if _, err := h.Restart(victim); err != nil {
		t.Fatalf("restart %s: %v", victim, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := h.RecoverAll(ctx); err != nil {
		t.Fatalf("recover: %v", err)
	}
	owner, err := h.AssertConverged(ctx, id)
	if err != nil {
		t.Fatalf("after crash at %s: %v", step, err)
	}
	if owner != wantOwner {
		t.Fatalf("after crash at %s: ball at %s, want %s", step, owner, wantOwner)
	}

	// State must have survived the crash, not just identity.
	out, err := h.Core(owner).NewRefTo(id, "Ball", owner).InvokeCtx(ctx, "Get")
	if err != nil {
		t.Fatalf("get survivor: %v", err)
	}
	if got := out[0].(string); got != "crash-"+string(step) {
		t.Fatalf("survivor label = %q, want %q", got, "crash-"+string(step))
	}

	// And nothing may stay pending: a resolved cluster is ready again.
	for name, c := range h.Cores {
		hh := c.Health()
		if hh.PendingMoves != 0 {
			t.Errorf("%s still reports %d pending moves", name, hh.PendingMoves)
		}
		if !hh.JournalEnabled {
			t.Errorf("%s reports journal disabled", name)
		}
	}
}

// The five crash points of DESIGN.md §13's decision table. Crashing the
// source before PREPARE or after it must roll back (ball stays at a);
// crashing after the bundle was acknowledged or after COMMIT must complete
// (ball ends at b); crashing the destination after INSTALL must also
// complete — the journaled payload re-creates the ball on restart and the
// source's probe converts the unknown outcome into a commit.

func TestCrashBeforePrepare(t *testing.T) {
	crashScenario(t, core.StepBeforePrepare, "a", "a")
}

func TestCrashAfterPrepare(t *testing.T) {
	crashScenario(t, core.StepAfterPrepare, "a", "a")
}

func TestCrashAfterSend(t *testing.T) {
	crashScenario(t, core.StepAfterSend, "a", "b")
}

func TestCrashAfterInstall(t *testing.T) {
	crashScenario(t, core.StepAfterInstall, "b", "b")
}

func TestCrashAfterCommit(t *testing.T) {
	crashScenario(t, core.StepAfterCommit, "a", "b")
}

// TestCrashStorm moves one ball back and forth, crashing a core at a
// randomly chosen protocol step every iteration — with every inter-core
// message subject to seeded duplication on top — and demands convergence to
// exactly one live copy each time. The rng is seeded, so a failure
// reproduces.
func TestCrashStorm(t *testing.T) {
	iterations := 6
	if testing.Short() {
		iterations = 2
	}
	h := newHarness(t, 7, true, "a", "b")
	h.Faults["a"].SetDuplicate("b", 0.3)
	h.Faults["b"].SetDuplicate("a", 0.3)
	id := bornBall(t, h, "a", "storm")
	owner := ids.CoreID("a")
	if err := h.Checkpoint(owner); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	steps := []core.MoveStep{
		core.StepBeforePrepare,
		core.StepAfterPrepare,
		core.StepAfterSend,
		core.StepAfterInstall,
		core.StepAfterCommit,
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < iterations; i++ {
		dest := ids.CoreID("b")
		if owner == "b" {
			dest = "a"
		}
		step := steps[rng.Intn(len(steps))]
		victim := owner
		if step == core.StepAfterInstall {
			victim = dest
		}
		if err := h.Checkpoint(owner); err != nil {
			t.Fatalf("iter %d: checkpoint %s: %v", i, owner, err)
		}

		fired := h.ArmCrash(victim, step, id)
		err := h.Core(owner).MoveCtx(context.Background(), h.Core(owner).NewRefTo(id, "Ball", owner), dest)
		if err == nil {
			t.Fatalf("iter %d: move survived a crash armed at %s", i, step)
		}
		if !fired() {
			t.Fatalf("iter %d: crash at %s never fired (move error: %v)", i, step, err)
		}
		if err := h.Kill(victim); err != nil {
			t.Fatalf("iter %d: kill %s: %v", i, victim, err)
		}
		if _, err := h.Restart(victim); err != nil {
			t.Fatalf("iter %d: restart %s: %v", i, victim, err)
		}
		// The restarted core got a fresh fault wrapper; keep the weather bad.
		other := ids.CoreID("a")
		if victim == "a" {
			other = "b"
		}
		h.Faults[victim].SetDuplicate(other, 0.3)

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		rep, err := h.RecoverAll(ctx)
		if err != nil {
			cancel()
			t.Fatalf("iter %d: recover: %v", i, err)
		}
		t.Logf("iter %d: owner=%s dest=%s step=%s victim=%s recovery: %s", i, owner, dest, step, victim, rep.String())
		got, err := h.AssertConverged(ctx, id)
		cancel()
		if err != nil {
			t.Fatalf("iter %d (crash %s at %s): %v", i, victim, step, err)
		}
		owner = got
	}
}

// TestCleanMoveUnderDuplication moves without crashing but with every
// message from the source duplicated: the destination must suppress the
// second install via the move epoch and the cluster must still converge to
// one copy.
func TestCleanMoveUnderDuplication(t *testing.T) {
	h := newHarness(t, 11, true, "a", "b")
	a := h.Core("a")
	id := bornBall(t, h, "a", "dup")
	h.Faults["a"].SetDuplicate("b", 1.0)
	defer h.Faults["a"].ClearAll()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := a.MoveCtx(ctx, a.NewRefTo(id, "Ball", "a"), "b"); err != nil {
		t.Fatalf("move under duplication: %v", err)
	}
	owner, err := h.AssertConverged(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if owner != "b" {
		t.Fatalf("ball at %s, want b", owner)
	}
	if got := h.Faults["a"].Counts().Duplicated; got == 0 {
		t.Fatalf("fault injector duplicated nothing; test exercised no duplication")
	}
}

// TestRestartWithoutCheckpoint restarts a crashed destination that never
// checkpointed: the journaled INSTALL payload alone must re-create the
// complet.
func TestRestartWithoutCheckpoint(t *testing.T) {
	h := newHarness(t, 13, false, "a", "b")
	a := h.Core("a")
	id := bornBall(t, h, "a", "journal-only")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.MoveCtx(ctx, a.NewRefTo(id, "Ball", "a"), "b"); err != nil {
		t.Fatalf("move: %v", err)
	}
	// Hard-kill b with no checkpoint ever taken.
	if err := h.Kill("b"); err != nil {
		t.Fatalf("kill b: %v", err)
	}
	if _, err := h.Restart("b"); err != nil {
		t.Fatalf("restart b: %v", err)
	}
	if _, err := h.RecoverAll(ctx); err != nil {
		t.Fatalf("recover: %v", err)
	}
	owner, err := h.AssertConverged(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if owner != "b" {
		t.Fatalf("ball at %s, want b", owner)
	}
	out, err := h.Core("b").NewRefTo(id, "Ball", "b").InvokeCtx(ctx, "Get")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got := out[0].(string); got != "journal-only" {
		t.Fatalf("label = %q, want %q", got, "journal-only")
	}
}
