// Package obs implements the per-core ops plane: an optional embedded HTTP
// server exposing the observability surfaces the rest of the runtime already
// maintains — the metrics registry as a Prometheus scrape, liveness and
// readiness verdicts from the heartbeat/breaker state, Go's pprof profiles,
// a JSON layout snapshot, the Chrome trace download, and the layout flight
// recorder.
//
// The server is embedded, not built into the core: core.Options.HTTPAddr is
// only a request that the embedding layer (fargo.ListenTCP, cmd/fargo-core,
// tests) call Start. Simulated in-process cores therefore pay nothing, and
// the core package never imports net/http.
//
// Security note: the ops plane is unauthenticated and includes pprof, which
// can reveal memory contents. An address without a host ("":9120" style)
// binds to loopback, NOT to all interfaces — exposing the port beyond the
// host is an explicit opt-in ("0.0.0.0:9120") that should sit behind a
// firewall or proxy.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"fargo/internal/alert"
	"fargo/internal/core"
	"fargo/internal/flight"
	"fargo/internal/layoutview"
	"fargo/internal/metrics"
	"fargo/internal/observatory"
	"fargo/internal/plan"
	"fargo/internal/trace"
)

// Options configures an ops server.
type Options struct {
	// Addr is the listen address. An empty or missing host binds to
	// loopback (see the package security note). Empty Addr means
	// "127.0.0.1:0" — an ephemeral loopback port, Addr() reports it.
	Addr string
	// View, when non-nil, enriches /layout with the live multi-core layout
	// model (cmd/fargo-monitor attaches one).
	View *layoutview.View
	// Logf receives diagnostic output; nil discards it.
	Logf func(format string, args ...any)
}

// Server is a running ops plane for one core.
type Server struct {
	c    *core.Core
	opts Options
	ln   net.Listener
	srv  *http.Server
}

// Start begins serving the ops plane for c. The returned server is already
// listening; shut it down with Close (Start also registers Close as a core
// shutdown hook, so an ops server never outlives its core).
func Start(c *core.Core, opts Options) (*Server, error) {
	if c == nil {
		return nil, fmt.Errorf("obs: nil core")
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	addr, err := normalizeAddr(opts.Addr)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{c: c, opts: opts, ln: ln}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/layout", s.handleLayout)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/alerts", s.handleAlerts)
	mux.HandleFunc("/cluster/", s.handleCluster)
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.handleIndex)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			opts.Logf("fargo obs %s: serve: %v", c.ID(), err)
		}
	}()
	c.OnShutdown(func() { _ = s.Close() })
	opts.Logf("fargo obs %s: ops plane on http://%s", c.ID(), s.Addr())
	return s, nil
}

// normalizeAddr defaults the host part to loopback: ":9120" and "" must not
// silently bind every interface.
func normalizeAddr(addr string) (string, error) {
	if addr == "" {
		return "127.0.0.1:0", nil
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("obs: bad address %q: %w", addr, err)
	}
	if host == "" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port), nil
}

// Addr reports the bound listen address (useful with ephemeral ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server. Idempotent.
func (s *Server) Close() error { return s.srv.Close() }

// handleMetrics serves the Prometheus text exposition of the core's registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.PrometheusContentType)
	metrics.WritePrometheus(w, s.c.Metrics().Snapshot())
}

// healthBody is the JSON detail served by /healthz and /readyz.
type healthBody struct {
	Core          string           `json:"core"`
	Live          bool             `json:"live"`
	Ready         bool             `json:"ready"`
	Closed        bool             `json:"closed"`
	MovesInFlight int              `json:"moves_in_flight"`
	Complets      int              `json:"complets"`
	Peers         []peerHealthBody `json:"peers,omitempty"`
	// Journal/recovery state (crash-safe moves, DESIGN.md §13). A non-zero
	// pending_moves means journaled moves await resolution and blocks
	// readiness.
	JournalEnabled  bool   `json:"journal_enabled"`
	JournalRecords  uint64 `json:"journal_records"`
	PendingMoves    int    `json:"pending_moves"`
	MovesRecovered  uint64 `json:"moves_recovered"`
	MovesRolledBack uint64 `json:"moves_rolled_back"`
}

type peerHealthBody struct {
	Core    string `json:"core"`
	Breaker string `json:"breaker"`
	Suspect bool   `json:"suspect"`
}

func (s *Server) healthBody() (healthBody, core.Health) {
	h := s.c.Health()
	body := healthBody{
		Core:            h.Core.String(),
		Live:            h.Live,
		Ready:           h.Ready,
		Closed:          h.Closed,
		MovesInFlight:   h.MovesInFlight,
		Complets:        h.Complets,
		JournalEnabled:  h.JournalEnabled,
		JournalRecords:  h.JournalRecords,
		PendingMoves:    h.PendingMoves,
		MovesRecovered:  h.MovesRecovered,
		MovesRolledBack: h.MovesRolledBack,
	}
	for _, p := range h.Peers {
		body.Peers = append(body.Peers, peerHealthBody{
			Core:    p.Core.String(),
			Breaker: p.Breaker,
			Suspect: p.Suspect,
		})
	}
	return body, h
}

// handleHealthz serves the liveness verdict: 200 while the core is live, 503
// once it shut down or every heartbeat-monitored peer is suspect.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body, h := s.healthBody()
	writeJSONStatus(w, body, h.Live)
}

// handleReadyz serves the readiness verdict: 200 only while nothing is
// degraded (no suspect peer, no open breaker, no move in flight).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body, h := s.healthBody()
	writeJSONStatus(w, body, h.Ready)
}

// layoutBody is the JSON served by /layout: this core's repository and
// tracker table, and — when a layoutview is attached — the multi-core view.
type layoutBody struct {
	Core     string        `json:"core"`
	Complets []completBody `json:"complets"`
	Trackers []trackerBody `json:"trackers"`
	// ChainLocal/ChainForwarding summarize the tracker table: how many
	// entries resolve here vs. route onward (local chain-length signal).
	ChainLocal      int           `json:"chain_local"`
	ChainForwarding int           `json:"chain_forwarding"`
	Peers           []string      `json:"peers,omitempty"`
	View            []viewRowBody `json:"view,omitempty"`
}

type completBody struct {
	ID       string   `json:"id"`
	TypeName string   `json:"type"`
	Names    []string `json:"names,omitempty"`
}

type trackerBody struct {
	Complet string `json:"complet"`
	Local   bool   `json:"local"`
	Next    string `json:"next,omitempty"`
}

type viewRowBody struct {
	Core     string   `json:"core"`
	Complet  string   `json:"complet"`
	TypeName string   `json:"type,omitempty"`
	Names    []string `json:"names,omitempty"`
}

// handleLayout serves the layout snapshot.
func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	body := layoutBody{
		Core:     s.c.ID().String(),
		Complets: []completBody{},
		Trackers: []trackerBody{},
	}
	for _, ci := range s.c.Complets() {
		body.Complets = append(body.Complets, completBody{
			ID:       ci.ID.String(),
			TypeName: ci.TypeName,
			Names:    ci.Names,
		})
	}
	for _, t := range s.c.Trackers() {
		tb := trackerBody{Complet: t.Complet.String(), Local: t.Local}
		if t.Local {
			body.ChainLocal++
		} else {
			tb.Next = t.Next.String()
			body.ChainForwarding++
		}
		body.Trackers = append(body.Trackers, tb)
	}
	for _, p := range s.c.Peers() {
		body.Peers = append(body.Peers, p.String())
	}
	if s.opts.View != nil {
		snap := s.opts.View.Snapshot()
		cores := make([]string, 0, len(snap))
		byCore := make(map[string][]layoutview.Entry, len(snap))
		for c, entries := range snap {
			cores = append(cores, c.String())
			byCore[c.String()] = entries
		}
		sort.Strings(cores)
		for _, c := range cores {
			for _, e := range byCore[c] {
				body.View = append(body.View, viewRowBody{
					Core:     c,
					Complet:  e.ID.String(),
					TypeName: e.TypeName,
					Names:    e.Names,
				})
			}
		}
	}
	writeJSONStatus(w, body, true)
}

// handleTrace serves the retained spans as a Chrome trace_event download.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", "fargo-trace-"+s.c.ID().String()+".json"))
	spans := s.c.Tracer().Collector().Snapshot()
	if err := trace.WriteChromeJSON(w, spans); err != nil {
		s.opts.Logf("fargo obs %s: trace export: %v", s.c.ID(), err)
	}
}

// flightBody is the JSON served by /flight.
type flightBody struct {
	Core   string         `json:"core"`
	Total  uint64         `json:"total"`
	Events []flight.Event `json:"events"`
}

// handleFlight serves the flight-recorder ring (?n= limits to the newest n).
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	max := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		max = n
	}
	rec := s.c.Flight()
	body := flightBody{
		Core:   s.c.ID().String(),
		Total:  rec.Total(),
		Events: rec.Snapshot(max),
	}
	if body.Events == nil {
		body.Events = []flight.Event{}
	}
	writeJSONStatus(w, body, true)
}

// planBody is the JSON served by /plan.
type planBody struct {
	Core    string       `json:"core"`
	Enabled bool         `json:"enabled"`
	Status  *plan.Status `json:"status,omitempty"`
}

// handlePlan serves the autonomic layout planner's introspection snapshot:
// configuration, the last collected communication graph, the last proposal,
// and the recent decisions. Read-only; rounds are driven by the planner's
// loop, the shell, or scripts.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	body := planBody{Core: s.c.ID().String()}
	if p, ok := plan.For(s.c); ok {
		st := p.Status()
		body.Enabled = true
		body.Status = &st
	}
	writeJSONStatus(w, body, true)
}

// alertsBody is the JSON served by /alerts.
type alertsBody struct {
	Core    string             `json:"core"`
	Enabled bool               `json:"enabled"`
	Firing  []string           `json:"firing,omitempty"`
	Rules   []alert.RuleStatus `json:"rules,omitempty"`
}

// handleAlerts serves the local alert engine's rule states: configuration,
// current state machine position, last value, and firing counts. Cluster-wide
// alert history lives under /cluster/alerts (the observatory's merged view).
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	body := alertsBody{Core: s.c.ID().String()}
	if e, ok := alert.For(s.c); ok {
		body.Enabled = true
		body.Firing = e.Firing()
		body.Rules = e.Status()
	}
	writeJSONStatus(w, body, true)
}

// handleCluster routes /cluster/* to the deployment observatory attached to
// this core, when one is (observatory.Start, fargo.StartObservatory, the
// shell's `cluster` command, fargo-monitor -web). Resolution happens per
// request, so the observatory may start before or after the ops plane.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	o, ok := observatory.For(s.c)
	if !ok {
		http.Error(w, "no observatory on this core (start one with fargo.StartObservatory, core option Observatory, or the shell's `cluster` command)", http.StatusNotFound)
		return
	}
	o.ServeHTTP(w, r)
}

// handleIndex lists the endpoints (human convenience).
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, "fargo core %s ops plane\n\n", s.c.ID())
	for _, ep := range []string{
		"/metrics       Prometheus text exposition",
		"/healthz       liveness (JSON; 503 when not live)",
		"/readyz        readiness (JSON; 503 when degraded)",
		"/layout        layout snapshot (JSON)",
		"/trace         Chrome trace_event download",
		"/flight        flight recorder ring (JSON; ?n= newest n)",
		"/plan          layout planner status (JSON)",
		"/alerts        alert engine rule states (JSON)",
		"/cluster/      deployment observatory (HTML; /cluster/metrics, /cluster/timeline, /cluster/alerts, /cluster/trace/{id})",
		"/debug/pprof/  Go profiles",
	} {
		fmt.Fprintln(w, ep)
	}
}

// writeJSONStatus writes body as indented JSON, with 200 when ok and 503
// otherwise.
func writeJSONStatus(w http.ResponseWriter, body any, ok bool) {
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}
