package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"fargo/internal/core"
	"fargo/internal/demo"
	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/observatory"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

// cluster is the standard simulated deployment with home tracking enabled
// (the chain-repair scenario needs the home core to know the truth).
type cluster struct {
	t     *testing.T
	net   *netsim.Network
	cores map[ids.CoreID]*core.Core
}

func newCluster(t *testing.T, names ...string) *cluster {
	t.Helper()
	cl := &cluster{
		t:     t,
		net:   netsim.NewNetwork(9),
		cores: make(map[ids.CoreID]*core.Core, len(names)),
	}
	for _, name := range names {
		tr, err := transport.NewSim(cl.net, ids.CoreID(name))
		if err != nil {
			t.Fatal(err)
		}
		reg := registry.New()
		if err := demo.Register(reg); err != nil {
			t.Fatal(err)
		}
		c, err := core.New(tr, reg, core.Options{RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		c.EnableHomeTracking()
		cl.cores[ids.CoreID(name)] = c
	}
	t.Cleanup(func() {
		for _, c := range cl.cores {
			_ = c.Shutdown(0)
		}
		cl.net.Close()
	})
	return cl
}

func (cl *cluster) core(name string) *core.Core { return cl.cores[ids.CoreID(name)] }

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// get fetches a URL, returning status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// Prometheus text exposition grammar (the subset the 0.0.4 format allows):
// every non-empty line is a comment or a sample with a valid metric name and
// well-formed label set.
var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
)

// checkExposition validates every line of a scrape against the exposition
// grammar and returns the sample lines.
func checkExposition(t *testing.T, text string) []string {
	t.Helper()
	var samples []string
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if promComment.MatchString(line) {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("line violates Prometheus exposition grammar: %q", line)
			continue
		}
		samples = append(samples, line)
	}
	if len(samples) == 0 {
		t.Fatal("scrape contained no samples")
	}
	return samples
}

// TestOpsEndToEnd drives the acceptance scenario: a simulated core with an
// ops server, an invocation, a forced move, and a chain repair across a dead
// hop — then asserts the ops surfaces report all of it.
func TestOpsEndToEnd(t *testing.T) {
	cl := newCluster(t, "a", "b", "c")
	a := cl.core("a")

	srv, err := Start(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(srv.Addr(), "127.0.0.1:") {
		t.Fatalf("empty Addr must bind loopback, got %s", srv.Addr())
	}
	base := "http://" + srv.Addr()

	// A local invocation (records invoke latency at a), then the canonical
	// stale-chain scenario: the complet moves a→b→c with the second hop
	// driven by b, so a's tracker still points at b when b dies.
	r, err := a.NewComplet("Message", "survivor")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke("Print"); err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	if err := cl.core("b").MoveByID(r.Target(), "c"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		loc, err := a.LocateViaHome(r.Target())
		return err == nil && loc == "c"
	})
	if loc, ok := a.TrackerTarget(r.Target()); !ok || loc != "b" {
		t.Fatalf("precondition: a's tracker at %v (%v), want stale b", loc, ok)
	}
	if err := cl.net.StopHost("b"); err != nil {
		t.Fatal(err)
	}
	stale := a.NewRefTo(r.Target(), "Message", "b")
	res, err := stale.Invoke("Print")
	if err != nil {
		t.Fatalf("invoke through dead chain hop: %v", err)
	}
	if res[0] != "survivor" {
		t.Fatalf("result = %v, want survivor", res[0])
	}

	// /metrics parses under Prometheus rules and carries the invoke latency
	// histogram (cumulative buckets with the mandatory +Inf bound).
	status, body := get(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d", status)
	}
	samples := checkExposition(t, body)
	var sawInf, sawCount, sawMove, sawRepair bool
	for _, s := range samples {
		switch {
		case strings.HasPrefix(s, `invoke_latency_ns_bucket{le="+Inf"}`):
			sawInf = true
		case strings.HasPrefix(s, "invoke_latency_ns_count "):
			sawCount = true
		case strings.HasPrefix(s, "moves_total "):
			sawMove = true
		case strings.HasPrefix(s, "chain_repairs_total "):
			sawRepair = true
		}
	}
	if !sawInf || !sawCount {
		t.Errorf("invoke_latency_ns histogram incomplete (+Inf bucket %v, count %v):\n%s", sawInf, sawCount, body)
	}
	if !sawMove || !sawRepair {
		t.Errorf("move/repair counters missing (move %v, repair %v)", sawMove, sawRepair)
	}

	// /healthz is 200 while nothing is suspect.
	if status, _ := get(t, base+"/healthz"); status != http.StatusOK {
		t.Errorf("/healthz before faults: status %d", status)
	}

	// /flight carries the move and the repair, causally ordered.
	status, body = get(t, base+"/flight")
	if status != http.StatusOK {
		t.Fatalf("/flight: status %d", status)
	}
	var fl struct {
		Core   string `json:"core"`
		Total  uint64 `json:"total"`
		Events []struct {
			Seq  uint64    `json:"seq"`
			At   time.Time `json:"at"`
			Kind string    `json:"kind"`
			Peer string    `json:"peer"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &fl); err != nil {
		t.Fatalf("/flight: bad JSON: %v\n%s", err, body)
	}
	if fl.Core != "a" || fl.Total == 0 {
		t.Errorf("/flight header = %s/%d", fl.Core, fl.Total)
	}
	moveIdx, repairIdx := -1, -1
	for i, ev := range fl.Events {
		if i > 0 && fl.Events[i-1].Seq >= ev.Seq {
			t.Errorf("flight events out of causal order: seq %d then %d", fl.Events[i-1].Seq, ev.Seq)
		}
		if i > 0 && ev.At.Before(fl.Events[i-1].At) {
			t.Errorf("flight timestamps regress at seq %d", ev.Seq)
		}
		switch ev.Kind {
		case "move":
			if moveIdx == -1 {
				moveIdx = i
			}
		case "repair":
			repairIdx = i
		}
	}
	if moveIdx == -1 || repairIdx == -1 {
		t.Fatalf("/flight missing move (%d) or repair (%d):\n%s", moveIdx, repairIdx, body)
	}
	if fl.Events[moveIdx].Seq >= fl.Events[repairIdx].Seq {
		t.Errorf("move (seq %d) must precede the repair (seq %d)",
			fl.Events[moveIdx].Seq, fl.Events[repairIdx].Seq)
	}
	if fl.Events[moveIdx].Peer != "b" {
		t.Errorf("move event peer = %q, want b", fl.Events[moveIdx].Peer)
	}

	// ?n= limits to the newest n; bad values are a client error.
	if _, body := get(t, base+"/flight?n=1"); true {
		var one struct {
			Events []json.RawMessage `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &one); err != nil || len(one.Events) != 1 {
			t.Errorf("/flight?n=1: %v, %d events", err, len(one.Events))
		}
	}
	if status, _ := get(t, base+"/flight?n=bogus"); status != http.StatusBadRequest {
		t.Errorf("/flight?n=bogus: status %d, want 400", status)
	}

	// /layout shows the repaired tracker routing to c.
	status, body = get(t, base+"/layout")
	if status != http.StatusOK {
		t.Fatalf("/layout: status %d", status)
	}
	var lay struct {
		Core     string `json:"core"`
		Trackers []struct {
			Complet string `json:"complet"`
			Local   bool   `json:"local"`
			Next    string `json:"next"`
		} `json:"trackers"`
		ChainForwarding int `json:"chain_forwarding"`
	}
	if err := json.Unmarshal([]byte(body), &lay); err != nil {
		t.Fatalf("/layout: bad JSON: %v\n%s", err, body)
	}
	if lay.Core != "a" {
		t.Errorf("/layout core = %q", lay.Core)
	}
	found := false
	for _, tr := range lay.Trackers {
		if tr.Complet == r.Target().String() && !tr.Local && tr.Next == "c" {
			found = true
		}
	}
	if !found || lay.ChainForwarding == 0 {
		t.Errorf("/layout missing repaired tracker a->c (forwarding=%d):\n%s", lay.ChainForwarding, body)
	}

	// /trace answers with valid trace_event JSON; / lists the endpoints;
	// pprof is mounted.
	status, body = get(t, base+"/trace")
	if status != http.StatusOK {
		t.Fatalf("/trace: status %d", status)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Errorf("/trace: bad JSON: %v", err)
	}
	if status, body := get(t, base+"/"); status != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", status, body)
	}
	if status, _ := get(t, base+"/debug/pprof/cmdline"); status != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", status)
	}
	if status, _ := get(t, base+"/nosuch"); status != http.StatusNotFound {
		t.Errorf("/nosuch: status %d, want 404", status)
	}

	// Closing the core tears the ops server down (shutdown hook).
	if err := a.Shutdown(0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		_, err := http.Get(base + "/healthz")
		return err != nil
	})
}

// TestOpsHealthzFlipsOnIsolation starts a two-core deployment with a
// heartbeat probing the only peer; killing that peer must flip /healthz to
// 503 (total isolation) and /readyz along with it.
func TestOpsHealthzFlipsOnIsolation(t *testing.T) {
	cl := newCluster(t, "x", "y")
	x := cl.core("x")

	srv, err := Start(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	// Make y a known peer, then watch it.
	if _, err := x.NewCompletAt("y", "Message", "over there"); err != nil {
		t.Fatal(err)
	}
	hb, err := x.Monitor().StartHeartbeat([]ids.CoreID{"y"}, 10*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Stop()

	if status, _ := get(t, base+"/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz with live peer: status %d", status)
	}
	if status, _ := get(t, base+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz with live peer: status %d", status)
	}

	if err := cl.net.StopHost("y"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		status, _ := get(t, base+"/healthz")
		return status == http.StatusServiceUnavailable
	})
	status, body := get(t, base+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after isolation: status %d", status)
	}
	var h struct {
		Live  bool `json:"live"`
		Ready bool `json:"ready"`
		Peers []struct {
			Core    string `json:"core"`
			Suspect bool   `json:"suspect"`
		} `json:"peers"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz: bad JSON: %v\n%s", err, body)
	}
	if h.Live || h.Ready {
		t.Errorf("verdict after isolation = live=%v ready=%v", h.Live, h.Ready)
	}
	suspect := false
	for _, p := range h.Peers {
		if p.Core == "y" && p.Suspect {
			suspect = true
		}
	}
	if !suspect {
		t.Errorf("peer y not reported suspect:\n%s", body)
	}
	if status, _ := get(t, base+"/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("/readyz after isolation: status %d, want 503", status)
	}
}

// TestNormalizeAddr pins the loopback-by-default contract.
func TestNormalizeAddr(t *testing.T) {
	for in, want := range map[string]string{
		"":               "127.0.0.1:0",
		":9120":          "127.0.0.1:9120",
		"127.0.0.1:9120": "127.0.0.1:9120",
		"0.0.0.0:9120":   "0.0.0.0:9120",
	} {
		got, err := normalizeAddr(in)
		if err != nil || got != want {
			t.Errorf("normalizeAddr(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := normalizeAddr("no-port-here"); err == nil {
		t.Error("normalizeAddr without port: expected error")
	}
}

// TestStartRejectsNilCore pins the constructor contract.
func TestStartRejectsNilCore(t *testing.T) {
	if _, err := Start(nil, Options{}); err == nil {
		t.Fatal("Start(nil) must fail")
	}
}

// TestClusterRoutesThroughOps: the ops plane routes /cluster/* to the
// observatory attached to its core — 404 with a hint while none is attached,
// the full endpoint family once one is. The metrics page must satisfy the
// exposition grammar and carry per-core labels.
func TestClusterRoutesThroughOps(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	srv, err := Start(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	status, body := get(t, base+"/cluster/metrics")
	if status != http.StatusNotFound || !strings.Contains(body, "no observatory") {
		t.Fatalf("without observatory: status=%d body=%q, want 404 with hint", status, body)
	}

	o, err := observatory.Start(a, observatory.Options{Cores: []ids.CoreID{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()

	status, body = get(t, base+"/cluster/metrics")
	if status != http.StatusOK {
		t.Fatalf("/cluster/metrics status = %d, want 200: %s", status, body)
	}
	samples := checkExposition(t, body)
	var labeled bool
	for _, s := range samples {
		if strings.Contains(s, `core="a"`) || strings.Contains(s, `core="b"`) {
			labeled = true
		}
	}
	if !labeled {
		t.Fatalf("no per-core labeled sample in /cluster/metrics:\n%s", body)
	}
	if !strings.Contains(body, "cluster_members 2") {
		t.Fatalf("derived gauge cluster_members missing:\n%s", body)
	}

	status, body = get(t, base+"/cluster/status")
	if status != http.StatusOK {
		t.Fatalf("/cluster/status status = %d: %s", status, body)
	}
	var st struct {
		Partial bool   `json:"partial"`
		Core    string `json:"core"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/cluster/status not JSON: %v\n%s", err, body)
	}
	if st.Partial || st.Core != "a" {
		t.Fatalf("/cluster/status = %+v, want full view via a", st)
	}

	status, body = get(t, base+"/cluster/timeline?n=5")
	if status != http.StatusOK {
		t.Fatalf("/cluster/timeline status = %d: %s", status, body)
	}
	var tl struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatalf("/cluster/timeline not JSON: %v\n%s", err, body)
	}

	status, body = get(t, base+"/cluster/")
	if status != http.StatusOK || !strings.Contains(body, "EventSource") {
		t.Fatalf("/cluster/ page status=%d, want the self-contained HTML view", status)
	}
	status, body = get(t, base+"/")
	if status != http.StatusOK || !strings.Contains(body, "/cluster/") {
		t.Fatalf("index does not advertise /cluster/: %s", body)
	}
}
