package trace

import (
	"sort"
	"sync"
	"time"
)

// collectorShards keeps Finish contention low without per-CPU machinery:
// spans hash to a shard by span ID, each shard is an independent ring.
const collectorShards = 8

// Collector retains the most recently completed spans of one core in a
// sharded ring buffer. Recording is a shard-local mutex push; full snapshots
// are for queries and export, not hot paths.
type Collector struct {
	shards [collectorShards]collectorShard
}

type collectorShard struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

// NewCollector builds a collector retaining about `capacity` spans
// (DefaultBufferSize when <= 0; rounded up to a multiple of the shard count).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultBufferSize
	}
	per := (capacity + collectorShards - 1) / collectorShards
	c := &Collector{}
	for i := range c.shards {
		c.shards[i].buf = make([]Span, per)
	}
	return c
}

// Record stores one completed span, evicting the oldest in its shard when
// full.
func (c *Collector) Record(sp Span) {
	sh := &c.shards[uint64(sp.ID)%collectorShards]
	sh.mu.Lock()
	sh.buf[sh.next] = sp
	sh.next++
	if sh.next == len(sh.buf) {
		sh.next = 0
		sh.full = true
	}
	sh.mu.Unlock()
}

// Snapshot returns every retained span, oldest first.
func (c *Collector) Snapshot() []Span {
	var out []Span
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := sh.next
		if sh.full {
			n = len(sh.buf)
		}
		for j := 0; j < n; j++ {
			out = append(out, sh.buf[j])
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceSpans returns the retained spans of one trace, oldest first.
func (c *Collector) TraceSpans(id TraceID) []Span {
	var out []Span
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := sh.next
		if sh.full {
			n = len(sh.buf)
		}
		for j := 0; j < n; j++ {
			if sh.buf[j].Trace == id {
				out = append(out, sh.buf[j])
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Summary describes one trace as seen from a single core's collector.
type Summary struct {
	Trace TraceID
	// Root is the name of the trace's root span when this core holds it
	// ("" when the root ran elsewhere).
	Root     string
	Spans    int
	Start    time.Time
	Duration time.Duration
}

// Summarize groups spans by trace, newest trace first. Duration covers the
// earliest start to the latest end among the given spans (the full trace when
// spans from every core are merged, this core's share otherwise).
func Summarize(spans []Span, max int) []Summary {
	byTrace := make(map[TraceID]*Summary)
	latestEnd := make(map[TraceID]time.Time)
	var order []TraceID
	for _, sp := range spans {
		s, ok := byTrace[sp.Trace]
		if !ok {
			s = &Summary{Trace: sp.Trace, Start: sp.Start}
			byTrace[sp.Trace] = s
			order = append(order, sp.Trace)
		}
		s.Spans++
		if sp.Start.Before(s.Start) {
			s.Start = sp.Start
		}
		if end := sp.Start.Add(sp.Duration); end.After(latestEnd[sp.Trace]) {
			latestEnd[sp.Trace] = end
		}
		if sp.Parent == 0 {
			s.Root = sp.Name
		}
	}
	out := make([]Summary, 0, len(byTrace))
	for _, id := range order {
		s := *byTrace[id]
		s.Duration = latestEnd[id].Sub(s.Start)
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
