// Package trace implements the distributed tracing half of the observability
// subsystem: causally linked spans that follow one logical operation — an
// invocation routed along a tracker chain (§3.1), a movement bundle (§3.3), a
// chain repair — across every core it touches. Trace context (trace ID,
// parent span ID, sampled bit) rides on wire.Envelope next to the end-to-end
// deadline, so the receiving core parents its spans under the sender's
// without any extra messages.
//
// Sampling is decided once, at the operation's entry core, with probability
// Options.SampleRate; downstream cores honor the inbound sampled bit
// regardless of their own rate, so a trace is never truncated mid-chain.
// When an operation is not sampled every span helper returns a nil *Span
// whose methods no-op — the hot-path cost of disabled tracing is one atomic
// load plus one context lookup.
//
// Completed spans land in a per-core sharded ring buffer (Collector) that is
// queryable remotely (fargo-shell `trace`) and exportable as Chrome
// trace_event JSON (ExportChromeJSON).
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end trace; SpanID one span within it. Both
// are nonzero for sampled operations.
type (
	TraceID uint64
	SpanID  uint64
)

// String renders the ID the way the shell accepts it back (16 hex digits).
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// SpanContext is the portion of a trace that travels: on a context.Context
// within one core, and on wire.Envelope between cores.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID // the sender's current span = the receiver's parent
	Sampled bool
}

type ctxKey struct{}

// NewContext returns a context carrying the span context.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}

// Sampled reports whether ctx belongs to a sampled trace. Call sites use it
// to skip building span names for untraced operations.
func Sampled(ctx context.Context) bool {
	sc, ok := FromContext(ctx)
	return ok && sc.Sampled
}

// Options configures a Tracer.
type Options struct {
	// SampleRate is the probability (0..1) that an operation ENTERING the
	// pipeline at this core starts a new trace. Zero disables root
	// sampling; spans are still recorded for traces a peer sampled.
	SampleRate float64
	// BufferSize caps the completed spans retained per core (default
	// DefaultBufferSize; older spans are overwritten ring-style).
	BufferSize int
}

// DefaultBufferSize is the per-core completed-span retention when
// Options.BufferSize is zero.
const DefaultBufferSize = 4096

// Tracer makes sampling decisions, mints IDs, and owns the per-core span
// collector. A nil *Tracer is valid and records nothing.
type Tracer struct {
	core string
	// threshold is the sampling cut: a fresh pseudo-random uint64 below it
	// means "sample". 0 = never, MaxUint64 = always. One atomic load
	// gates the entire hot path when tracing is off.
	threshold atomic.Uint64
	rateBits  atomic.Uint64 // Float64bits of the configured rate, for SampleRate
	seq       atomic.Uint64 // splitmix64 state for IDs and sampling rolls
	col       *Collector
}

// New builds a tracer for the named core.
func New(core string, opts Options) *Tracer {
	t := &Tracer{core: core, col: NewCollector(opts.BufferSize)}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		t.seq.Store(binary.LittleEndian.Uint64(seed[:]))
	}
	t.SetSampleRate(opts.SampleRate)
	return t
}

// SetSampleRate changes the root-sampling probability (clamped to 0..1) for
// subsequent operations.
func (t *Tracer) SetSampleRate(rate float64) {
	if rate < 0 || math.IsNaN(rate) {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	t.rateBits.Store(math.Float64bits(rate))
	switch {
	case rate == 0:
		t.threshold.Store(0)
	case rate == 1:
		t.threshold.Store(math.MaxUint64)
	default:
		t.threshold.Store(uint64(rate * float64(math.MaxUint64)))
	}
}

// SampleRate returns the configured root-sampling probability.
func (t *Tracer) SampleRate() float64 { return math.Float64frombits(t.rateBits.Load()) }

// Collector returns the per-core completed-span store.
func (t *Tracer) Collector() *Collector { return t.col }

// Core returns the core name stamped on this tracer's spans.
func (t *Tracer) Core() string { return t.core }

// nextRand advances the tracer's splitmix64 stream. Lock-free (one atomic
// add), unlike the global math/rand source.
func (t *Tracer) nextRand() uint64 {
	x := t.seq.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (t *Tracer) nextID() uint64 {
	for {
		if v := t.nextRand(); v != 0 {
			return v
		}
	}
}

// StartSpan opens a span at a pipeline ENTRY point (InvokeCtx, MoveCtx, ...).
// If ctx already carries a sampled trace — an operation nested under another
// traced operation, or arriving from a peer — the span joins it as a child.
// Otherwise the tracer rolls its sample rate and either roots a new trace or
// returns (ctx, nil): a nil *Span is valid and all its methods no-op.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if sc, ok := FromContext(ctx); ok && sc.Sampled {
		return t.child(ctx, sc, name)
	}
	if t == nil {
		return ctx, nil
	}
	thr := t.threshold.Load()
	if thr == 0 {
		return ctx, nil
	}
	if thr != math.MaxUint64 && t.nextRand() >= thr {
		return ctx, nil
	}
	sp := &Span{
		Trace:  TraceID(t.nextID()),
		ID:     SpanID(t.nextID()),
		Name:   name,
		Core:   t.core,
		Start:  time.Now(),
		tracer: t,
	}
	return NewContext(ctx, SpanContext{Trace: sp.Trace, Span: sp.ID, Sampled: true}), sp
}

// ChildSpan opens a span under the trace already on ctx, or returns
// (ctx, nil) when the operation is untraced. Interior pipeline stages (serve,
// exec, bundle, install, repair) use this so an unsampled root decision never
// spawns orphan traces further down.
func (t *Tracer) ChildSpan(ctx context.Context, name string) (context.Context, *Span) {
	sc, ok := FromContext(ctx)
	if !ok || !sc.Sampled {
		return ctx, nil
	}
	return t.child(ctx, sc, name)
}

func (t *Tracer) child(ctx context.Context, sc SpanContext, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := &Span{
		Trace:  sc.Trace,
		ID:     SpanID(t.nextID()),
		Parent: sc.Span,
		Name:   name,
		Core:   t.core,
		Start:  time.Now(),
		tracer: t,
	}
	return NewContext(ctx, SpanContext{Trace: sp.Trace, Span: sp.ID, Sampled: true}), sp
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation within a trace. Spans are owned by the
// goroutine that started them until Finish, which copies them into the
// collector; a nil *Span no-ops every method.
type Span struct {
	Trace    TraceID
	ID       SpanID
	Parent   SpanID // zero for trace roots
	Name     string
	Core     string
	Start    time.Time
	Duration time.Duration
	Err      string
	Attrs    []Attr

	tracer *Tracer
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetError records the operation's failure on the span.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.Err = err.Error()
}

// Finish stamps the duration and hands the span to the collector. Safe to
// call on a nil span; calling twice records twice (don't).
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	if s.tracer != nil {
		s.tracer.col.Record(*s)
	}
}
