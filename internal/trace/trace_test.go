package trace

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilSpanAndNilTracer(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.SetError(context.Canceled)
	sp.Finish() // must not panic

	var tr *Tracer
	ctx, sp2 := tr.StartSpan(context.Background(), "op")
	if sp2 != nil {
		t.Fatalf("nil tracer produced a span")
	}
	if _, ok := FromContext(ctx); ok {
		t.Fatalf("nil tracer stamped a context")
	}
	if _, sp3 := tr.ChildSpan(context.Background(), "op"); sp3 != nil {
		t.Fatalf("nil tracer produced a child span")
	}
}

func TestSamplingOffProducesNothing(t *testing.T) {
	tr := New("a", Options{SampleRate: 0})
	for i := 0; i < 100; i++ {
		ctx, sp := tr.StartSpan(context.Background(), "op")
		if sp != nil {
			t.Fatalf("rate 0 sampled a span")
		}
		if _, inner := tr.ChildSpan(ctx, "inner"); inner != nil {
			t.Fatalf("rate 0 produced an interior span")
		}
	}
	if got := len(tr.Collector().Snapshot()); got != 0 {
		t.Fatalf("collector has %d spans, want 0", got)
	}
}

func TestSamplingAlwaysRootsAndLinks(t *testing.T) {
	tr := New("a", Options{SampleRate: 1})
	ctx, root := tr.StartSpan(context.Background(), "root")
	if root == nil {
		t.Fatalf("rate 1 did not sample")
	}
	if root.Trace == 0 || root.ID == 0 || root.Parent != 0 {
		t.Fatalf("bad root: %+v", root)
	}
	_, child := tr.ChildSpan(ctx, "child")
	if child == nil {
		t.Fatalf("no child under sampled root")
	}
	if child.Trace != root.Trace || child.Parent != root.ID {
		t.Fatalf("child not linked: root=%+v child=%+v", root, child)
	}
	child.SetAttr("k", "v")
	child.SetError(context.DeadlineExceeded)
	child.Finish()
	root.Finish()

	spans := tr.Collector().TraceSpans(root.Trace)
	if len(spans) != 2 {
		t.Fatalf("collector holds %d spans, want 2", len(spans))
	}
}

func TestSamplingRateApproximate(t *testing.T) {
	tr := New("a", Options{SampleRate: 0.2})
	hits := 0
	for i := 0; i < 5000; i++ {
		if _, sp := tr.StartSpan(context.Background(), "op"); sp != nil {
			hits++
			sp.Finish()
		}
	}
	if hits < 700 || hits > 1400 { // 0.2*5000 = 1000, generous bounds
		t.Fatalf("rate 0.2 sampled %d/5000", hits)
	}
}

func TestPeerSampledBitOverridesLocalRate(t *testing.T) {
	// A core with rate 0 must still record spans for traces a peer sampled.
	tr := New("b", Options{SampleRate: 0})
	inbound := NewContext(context.Background(), SpanContext{Trace: 7, Span: 9, Sampled: true})
	ctx, sp := tr.StartSpan(inbound, "serve")
	if sp == nil {
		t.Fatalf("inbound sampled trace ignored")
	}
	if sp.Trace != 7 || sp.Parent != 9 {
		t.Fatalf("span not parented to inbound context: %+v", sp)
	}
	if sc, ok := FromContext(ctx); !ok || sc.Span != sp.ID {
		t.Fatalf("ctx does not carry the new span")
	}
	sp.Finish()
	if got := len(tr.Collector().TraceSpans(7)); got != 1 {
		t.Fatalf("collector holds %d spans, want 1", got)
	}
}

func TestCollectorRingEviction(t *testing.T) {
	tr := New("a", Options{SampleRate: 1, BufferSize: collectorShards * 2})
	for i := 0; i < 100; i++ {
		_, sp := tr.StartSpan(context.Background(), "op")
		sp.Finish()
	}
	got := len(tr.Collector().Snapshot())
	if got == 0 || got > collectorShards*2 {
		t.Fatalf("ring holds %d spans, want (0, %d]", got, collectorShards*2)
	}
}

func TestSummarize(t *testing.T) {
	base := time.Unix(1000, 0)
	spans := []Span{
		{Trace: 1, ID: 10, Name: "root", Core: "a", Start: base, Duration: 5 * time.Millisecond},
		{Trace: 1, ID: 11, Parent: 10, Name: "serve", Core: "b", Start: base.Add(time.Millisecond), Duration: 2 * time.Millisecond},
		{Trace: 2, ID: 20, Name: "other", Core: "a", Start: base.Add(time.Second), Duration: time.Millisecond},
	}
	sums := Summarize(spans, 0)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if sums[0].Trace != 2 { // newest first
		t.Fatalf("summaries not newest-first: %+v", sums)
	}
	s1 := sums[1]
	if s1.Root != "root" || s1.Spans != 2 || s1.Duration != 5*time.Millisecond {
		t.Fatalf("bad summary: %+v", s1)
	}
	if got := Summarize(spans, 1); len(got) != 1 {
		t.Fatalf("max not applied: %d", len(got))
	}
}

func TestBuildTreeOrphansBecomeRoots(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 2, Parent: 99, Name: "orphan", Start: time.Unix(2, 0)},
		{Trace: 1, ID: 1, Name: "root", Start: time.Unix(1, 0)},
		{Trace: 1, ID: 3, Parent: 1, Name: "child", Start: time.Unix(3, 0)},
	}
	roots := BuildTree(spans)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (root + orphan)", len(roots))
	}
	if roots[0].Span.Name != "root" || len(roots[0].Children) != 1 {
		t.Fatalf("tree misbuilt: %+v", roots[0])
	}
}

func TestExportChromeJSONValid(t *testing.T) {
	tr := New("a", Options{SampleRate: 1})
	ctx, root := tr.StartSpan(context.Background(), "invoke X.Do")
	_, child := tr.ChildSpan(ctx, "exec X.Do")
	child.SetAttr("hops", "2")
	child.Finish()
	root.Finish()

	data, err := ExportChromeJSON(tr.Collector().Snapshot())
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, data)
	}
	var meta, complete int
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
		}
	}
	if meta != 1 || complete != 2 {
		t.Fatalf("got %d metadata + %d complete events, want 1 + 2\n%s", meta, complete, data)
	}
}

func TestFormatTree(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 1, Name: "invoke", Core: "a", Start: time.Unix(1, 0), Duration: time.Millisecond},
		{Trace: 1, ID: 2, Parent: 1, Name: "serve", Core: "b", Start: time.Unix(1, 1), Duration: time.Millisecond, Err: "boom"},
	}
	var b strings.Builder
	FormatTree(&b, spans)
	out := b.String()
	if !strings.Contains(out, "invoke @a") || !strings.Contains(out, "  serve @b") || !strings.Contains(out, "ERR=boom") {
		t.Fatalf("bad tree rendering:\n%s", out)
	}
}

func TestParseTraceIDRoundTrip(t *testing.T) {
	id := TraceID(0xdeadbeef12345678)
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("round trip: got %v err %v", got, err)
	}
	if _, err := ParseTraceID("zzz"); err == nil {
		t.Fatalf("bad id parsed")
	}
}

func TestSetSampleRateClamps(t *testing.T) {
	tr := New("a", Options{})
	tr.SetSampleRate(7)
	if tr.SampleRate() != 1 {
		t.Fatalf("rate = %v, want 1", tr.SampleRate())
	}
	tr.SetSampleRate(-3)
	if tr.SampleRate() != 0 {
		t.Fatalf("rate = %v, want 0", tr.SampleRate())
	}
}
