package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format ("Trace Event
// Format", the JSON chrome://tracing and Perfetto consume). We emit complete
// events (ph "X", microsecond ts/dur) plus process_name metadata mapping each
// core to a pid row.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ExportChromeJSON renders spans (from one collector or merged from several
// cores) as Chrome trace_event JSON. Each core becomes a pid with a
// process_name metadata record; within a core each trace gets its own tid row
// so overlapping requests don't nest into each other.
func ExportChromeJSON(spans []Span) ([]byte, error) {
	return json.MarshalIndent(chromeTraceOf(spans), "", " ")
}

// WriteChromeJSON streams the same Chrome trace_event JSON to w without
// buffering the whole document (the ops plane's /trace download uses it).
func WriteChromeJSON(w io.Writer, spans []Span) error {
	return json.NewEncoder(w).Encode(chromeTraceOf(spans))
}

// chromeTraceOf builds the trace_event document for a span set.
func chromeTraceOf(spans []Span) chromeTrace {
	// Stable pid per core name.
	cores := make(map[string]int)
	var names []string
	for _, sp := range spans {
		if _, ok := cores[sp.Core]; !ok {
			cores[sp.Core] = 0
			names = append(names, sp.Core)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		cores[n] = i + 1
	}

	out := chromeTrace{TraceEvents: []chromeEvent{}}
	for _, n := range names {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  cores[n],
			Args: map[string]any{"name": "core " + n},
		})
	}

	// tid per (core, trace), assigned in first-seen order within each core.
	type coreTrace struct {
		pid   int
		trace TraceID
	}
	tids := make(map[coreTrace]int)
	nextTid := make(map[int]int)
	for _, sp := range spans {
		pid := cores[sp.Core]
		key := coreTrace{pid, sp.Trace}
		tid, ok := tids[key]
		if !ok {
			nextTid[pid]++
			tid = nextTid[pid]
			tids[key] = tid
		}
		args := map[string]any{
			"trace": sp.Trace.String(),
			"span":  fmt.Sprintf("%016x", uint64(sp.ID)),
		}
		if sp.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", uint64(sp.Parent))
		}
		if sp.Err != "" {
			args["error"] = sp.Err
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  "fargo",
			Ph:   "X",
			Ts:   float64(sp.Start.UnixNano()) / 1e3,
			Dur:  float64(sp.Duration.Nanoseconds()) / 1e3,
			Pid:  pid,
			Tid:  tid,
			Args: args,
		})
	}
	return out
}

// Node is one span with its children resolved, for tree rendering.
type Node struct {
	Span     Span
	Children []*Node
}

// BuildTree links spans into parent/child trees. Spans whose parent is zero
// or absent from the slice become roots (a span can be absent when its core's
// ring evicted it or only some cores were queried). Children sort by start
// time.
func BuildTree(spans []Span) []*Node {
	nodes := make(map[SpanID]*Node, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &Node{Span: spans[i]}
	}
	var roots []*Node
	for _, n := range nodes {
		if n.Span.Parent != 0 {
			if p, ok := nodes[n.Span.Parent]; ok && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	var sortNodes func(ns []*Node)
	sortNodes = func(ns []*Node) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Span.Start.Before(ns[j].Span.Start) })
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

// Orphans returns the spans that claim a parent absent from the slice — the
// holes of a stitched cross-core trace. A non-empty result after merging
// every member's shards means either a core's ring evicted part of the trace
// or a member was unreachable during stitching; the observatory reports the
// count so a rendered tree's completeness is never silently ambiguous.
// BuildTree promotes these spans to roots, so they still render.
func Orphans(spans []Span) []Span {
	present := make(map[SpanID]struct{}, len(spans))
	for _, sp := range spans {
		present[sp.ID] = struct{}{}
	}
	var out []Span
	for _, sp := range spans {
		if sp.Parent == 0 {
			continue
		}
		if _, ok := present[sp.Parent]; !ok {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Dedupe collapses duplicate span records (same span observed via more than
// one member reply) keeping the first occurrence, preserving order.
func Dedupe(spans []Span) []Span {
	seen := make(map[SpanID]struct{}, len(spans))
	out := spans[:0:0]
	for _, sp := range spans {
		if _, ok := seen[sp.ID]; ok {
			continue
		}
		seen[sp.ID] = struct{}{}
		out = append(out, sp)
	}
	return out
}

// FormatTree writes an indented text rendering of the spans' trees — the
// fargo-shell `trace <core> <id>` output.
func FormatTree(w io.Writer, spans []Span) {
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		for i := 0; i < depth; i++ {
			fmt.Fprint(w, "  ")
		}
		sp := n.Span
		fmt.Fprintf(w, "%s @%s %v", sp.Name, sp.Core, sp.Duration.Round(1000))
		if sp.Err != "" {
			fmt.Fprintf(w, " ERR=%s", sp.Err)
		}
		for _, a := range sp.Attrs {
			fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintln(w)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range BuildTree(spans) {
		walk(r, 0)
	}
}
