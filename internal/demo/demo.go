// Package demo provides a standard set of complet types shared by the
// command-line tools, the examples and the experiment harness.
//
// The original FarGo loads complet classes dynamically into a running Core;
// Go binaries cannot load code at runtime, so every daemon compiles in this
// demo type set plus whatever application types it links (see DESIGN.md
// substitutions).
package demo

import (
	"fmt"
	"strings"
	"time"

	"fargo/internal/core"
	"fargo/internal/ref"
	"fargo/internal/registry"
)

// Message is the Figure 3 complet: a relocatable string holder.
type Message struct {
	Msg   string
	Calls int
}

// Init sets the message (constructor).
func (m *Message) Init(msg string) { m.Msg = msg }

// Print returns the message and counts the call.
func (m *Message) Print() string { m.Calls++; return m.Msg }

// Set replaces the message.
func (m *Message) Set(msg string) { m.Msg = msg }

// CallCount returns how many times Print ran.
func (m *Message) CallCount() int { return m.Calls }

// Counter is a complet with an integer register.
type Counter struct {
	N int64
}

// Add increments by delta and returns the new value.
func (c *Counter) Add(delta int64) int64 { c.N += delta; return c.N }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.N }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.N = 0 }

// KVStore is a small in-memory key-value store complet.
type KVStore struct {
	Data map[string]string
}

// Init prepares the store.
func (s *KVStore) Init() { s.Data = map[string]string{} }

// Put stores a value.
func (s *KVStore) Put(k, v string) {
	if s.Data == nil {
		s.Data = map[string]string{}
	}
	s.Data[k] = v
}

// Get loads a value ("" when absent).
func (s *KVStore) Get(k string) string { return s.Data[k] }

// Len returns the number of keys.
func (s *KVStore) Len() int { return len(s.Data) }

// Keys lists the stored keys.
func (s *KVStore) Keys() []string {
	out := make([]string, 0, len(s.Data))
	for k := range s.Data {
		out = append(out, k)
	}
	return out
}

// Printer is a per-site device complet (the paper's stamp-reference
// example).
type Printer struct {
	Site    string
	Printed []string
}

// Init names the printer's site.
func (p *Printer) Init(site string) { p.Site = site }

// PrintDoc "prints" a document at this site and returns a receipt.
func (p *Printer) PrintDoc(doc string) string {
	p.Printed = append(p.Printed, doc)
	return fmt.Sprintf("printed %q at %s", doc, p.Site)
}

// Where returns the printer's site.
func (p *Printer) Where() string { return p.Site }

// Blob is a complet with a payload of configurable size (movement-cost
// experiments).
type Blob struct {
	Payload []byte
}

// Init allocates the payload.
func (b *Blob) Init(size int) { b.Payload = make([]byte, size) }

// Size returns the payload size.
func (b *Blob) Size() int { return len(b.Payload) }

// Touch reads the payload (a minimal method for invocation benches).
func (b *Blob) Touch() int {
	if len(b.Payload) == 0 {
		return 0
	}
	return int(b.Payload[0])
}

// Echo is a complet whose methods bounce values back (invocation
// experiments).
type Echo struct{}

// Nop does nothing.
func (e *Echo) Nop() {}

// EchoInt returns its argument.
func (e *Echo) EchoInt(v int) int { return v }

// EchoString returns its argument.
func (e *Echo) EchoString(s string) string { return s }

// EchoBytes returns the length of its argument (payload-size benches pass
// big slices one way).
func (e *Echo) EchoBytes(b []byte) int { return len(b) }

// Join concatenates arguments (multi-arg dispatch coverage).
func (e *Echo) Join(parts []string, sep string) string { return strings.Join(parts, sep) }

// Slow sleeps for ms milliseconds and returns it — a dialable latency fault
// for SLO/alerting experiments (a burn-rate rule on invoke latency fires
// while a workload calls Slow and resolves once it stops).
func (e *Echo) Slow(ms int) int {
	if ms > 0 {
		time.Sleep(time.Duration(ms) * time.Millisecond)
	}
	return ms
}

// Hub is a complet that holds outgoing references with chosen relocation
// semantics — the wiring workhorse of the experiment harness and shell
// demos.
type Hub struct {
	Refs []*ref.Ref
	c    *core.Core
}

// SetCore gives the hub its hosting core (CoreAware) so attached
// references can be attributed to it.
func (h *Hub) SetCore(c *core.Core) { h.c = c }

// Attach stores a reference after installing the relocator of the given
// kind ("link", "pull", "duplicate", "stamp", or a registered custom kind).
// The hub claims ownership of the reference, so calls through it show up as
// (hub, target) edges in the communication graph the layout planner reads.
func (h *Hub) Attach(r *ref.Ref, kind string) error {
	if r == nil {
		return fmt.Errorf("hub: nil reference")
	}
	reloc, err := ref.DecodeRelocator(ref.RelocDescriptor{Kind: kind})
	if err != nil {
		return err
	}
	if err := r.Meta().SetRelocator(reloc); err != nil {
		return err
	}
	if h.c != nil {
		if self, err := h.c.RefOf(h); err == nil {
			r.SetOwner(self.Target())
		}
	}
	h.Refs = append(h.Refs, r)
	return nil
}

// CallAll invokes a no-argument method through every attached reference and
// returns how many calls succeeded.
func (h *Hub) CallAll(method string) (int, error) {
	okCount := 0
	var firstErr error
	for _, r := range h.Refs {
		if _, err := r.Invoke(method); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		okCount++
	}
	return okCount, firstErr
}

// Targets lists the attached reference targets (ID strings).
func (h *Hub) Targets() []string {
	out := make([]string, len(h.Refs))
	for i, r := range h.Refs {
		out[i] = r.Target().String()
	}
	return out
}

// Register installs the demo types into a registry.
func Register(reg *registry.Registry) error {
	for name, proto := range map[string]any{
		"Message": (*Message)(nil),
		"Counter": (*Counter)(nil),
		"KVStore": (*KVStore)(nil),
		"Printer": (*Printer)(nil),
		"Blob":    (*Blob)(nil),
		"Echo":    (*Echo)(nil),
		"Hub":     (*Hub)(nil),
	} {
		if err := reg.Register(name, proto); err != nil {
			return fmt.Errorf("demo: %w", err)
		}
	}
	return nil
}
