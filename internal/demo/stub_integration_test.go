package demo_test

import (
	"testing"
	"time"

	"fargo/internal/core"
	"fargo/internal/demo"
	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

// TestGeneratedStubEndToEnd exercises the fargo-stubgen output (the FarGo
// Compiler substitute): typed calls through MessageStub behave like the
// dynamic Invoke path, across cores and across movement.
func TestGeneratedStubEndToEnd(t *testing.T) {
	net := netsim.NewNetwork(9)
	defer net.Close()
	cores := map[string]*core.Core{}
	for _, name := range []string{"a", "b"} {
		tr, err := transport.NewSim(net, ids.CoreID(name))
		if err != nil {
			t.Fatal(err)
		}
		reg := registry.New()
		if err := demo.Register(reg); err != nil {
			t.Fatal(err)
		}
		c, err := core.New(tr, reg, core.Options{RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		cores[name] = c
		defer func() { _ = c.Shutdown(0) }()
	}

	r, err := cores["a"].NewComplet("Message", "typed hello")
	if err != nil {
		t.Fatal(err)
	}
	stub := demo.AsMessage(r)

	got, err := stub.Print()
	if err != nil {
		t.Fatal(err)
	}
	if got != "typed hello" {
		t.Fatalf("Print = %q", got)
	}
	if err := stub.Set("updated"); err != nil {
		t.Fatal(err)
	}
	if err := cores["a"].Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	got, err = stub.Print()
	if err != nil {
		t.Fatal(err)
	}
	if got != "updated" {
		t.Fatalf("Print after move = %q", got)
	}
	n, err := stub.CallCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("CallCount = %d, want 2", n)
	}
}
