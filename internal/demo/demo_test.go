package demo

import (
	"testing"

	"fargo/internal/registry"
)

func TestRegisterAll(t *testing.T) {
	reg := registry.New()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Message", "Counter", "KVStore", "Printer", "Blob", "Echo", "Hub"} {
		if _, ok := reg.Lookup(name); !ok {
			t.Errorf("type %q not registered", name)
		}
	}
	// Registering twice must be harmless.
	if err := Register(registry.New()); err != nil {
		t.Fatalf("second registry: %v", err)
	}
}

func TestMessage(t *testing.T) {
	m := &Message{}
	m.Init("hi")
	if m.Print() != "hi" || m.CallCount() != 1 {
		t.Fatalf("message misbehaves: %+v", m)
	}
	m.Set("bye")
	if m.Print() != "bye" {
		t.Fatal("Set failed")
	}
}

func TestCounter(t *testing.T) {
	c := &Counter{}
	if c.Add(5) != 5 || c.Add(-2) != 3 || c.Value() != 3 {
		t.Fatalf("counter = %+v", c)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestKVStore(t *testing.T) {
	s := &KVStore{}
	s.Init()
	s.Put("a", "1")
	s.Put("b", "2")
	if s.Get("a") != "1" || s.Get("nope") != "" || s.Len() != 2 {
		t.Fatalf("kvstore = %+v", s)
	}
	if len(s.Keys()) != 2 {
		t.Fatalf("keys = %v", s.Keys())
	}
	// Put on a zero-valued store (post-gob) must not panic.
	var zero KVStore
	zero.Put("x", "y")
	if zero.Get("x") != "y" {
		t.Fatal("zero-value Put failed")
	}
}

func TestPrinter(t *testing.T) {
	p := &Printer{}
	p.Init("haifa")
	receipt := p.PrintDoc("doc1")
	if p.Where() != "haifa" || len(p.Printed) != 1 || receipt == "" {
		t.Fatalf("printer = %+v", p)
	}
}

func TestBlobAndEcho(t *testing.T) {
	b := &Blob{}
	b.Init(128)
	if b.Size() != 128 || b.Touch() != 0 {
		t.Fatalf("blob = %d", b.Size())
	}
	e := &Echo{}
	e.Nop()
	if e.EchoInt(7) != 7 || e.EchoString("x") != "x" || e.EchoBytes([]byte{1, 2}) != 2 {
		t.Fatal("echo misbehaves")
	}
	if e.Join([]string{"a", "b"}, "-") != "a-b" {
		t.Fatal("join misbehaves")
	}
}

func TestHubAttachValidation(t *testing.T) {
	h := &Hub{}
	if err := h.Attach(nil, "link"); err == nil {
		t.Fatal("nil ref should fail")
	}
}
