// Package plan implements the autonomic layout planner: the closed loop the
// paper's monitoring chapter points at but leaves to the application (§4 —
// layout "driven automatically by monitoring data"). A planner attached to a
// core periodically collects the communication graph of a set of member cores
// (per-pair invocation meters keyed on complet identity, per-core load and
// free capacity), runs a greedy edge-contraction heuristic that co-locates
// chatty complets under capacity limits, and actuates the proposed moves
// through the journaled two-phase movement protocol — so a crash mid-plan is
// already safe. Hysteresis (per-complet cooldown) and a min-gain threshold
// damp oscillation; dry-run mode records proposals without acting.
//
// See DESIGN.md §14 for the graph model, cost function and decision table.
package plan

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"fargo/internal/core"
	"fargo/internal/flight"
	"fargo/internal/ids"
	"fargo/internal/script"
)

// Defaults for zero Options fields.
const (
	DefaultMinGain          = 0.1 // invocations/second
	DefaultCooldown         = 30 * time.Second
	DefaultMaxMovesPerRound = 4
	// defaultRoundBudget bounds one closed-loop round (collection plus
	// actuation) when Interval does not.
	defaultRoundBudget = 30 * time.Second
)

// Options configures a planner.
type Options struct {
	// Cores lists the member cores of the planning domain (the attached
	// core included, usually first). Empty means dynamic membership: the
	// attached core plus every peer it knows, re-resolved each round — so a
	// planner started before the deployment finished joining grows with it.
	Cores []ids.CoreID
	// Interval is the closed-loop period. Zero disables the background
	// loop; rounds then run only through RunOnce (tests, shell, scripts).
	Interval time.Duration
	// DryRun records proposals and decisions without moving anything.
	DryRun bool
	// MinGain is the minimum net cross-core invocations/second a move must
	// eliminate to be actuated (0 = DefaultMinGain; oscillation damping —
	// a complet ping-ponging between equally attractive cores never clears
	// a positive threshold twice).
	MinGain float64
	// Cooldown exempts a complet from further planning for this long after
	// the planner moved it (0 = DefaultCooldown; hysteresis).
	Cooldown time.Duration
	// MaxMovesPerRound caps actuations per round (0 = default; negative =
	// unlimited).
	MaxMovesPerRound int
	// Pinned complets never move (anchors of the deployment: complets
	// representing terminals, devices, or data that must stay put).
	Pinned []ids.CompletID
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Planner is one core's autonomic layout planner.
type Planner struct {
	c       *core.Core
	opts    Options
	dynamic bool // no explicit member list; follow the core's peer set

	runMu sync.Mutex // serializes rounds (loop, shell, script, tests)

	mu           sync.Mutex
	pinned       map[ids.CompletID]bool
	lastMoved    map[ids.CompletID]time.Time
	rounds       uint64
	applied      uint64
	skipped      uint64
	lastRun      time.Time
	lastErr      string
	lastGraph    *Graph
	lastProposal Proposal
	decisions    []Decision
	stopped      bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// decisionRing caps the retained decision history.
const decisionRing = 32

// Decision is one retained planner verdict (newest last in Status).
type Decision struct {
	At      time.Time `json:"at"`
	Complet string    `json:"complet"`
	From    string    `json:"from"`
	To      string    `json:"to"`
	Gain    float64   `json:"gain"`
	// Action is "applied", "dry-run" or "failed".
	Action string `json:"action"`
	Err    string `json:"err,omitempty"`
}

// planners maps cores to their planners, so layers that hold only a core
// (obs, shell, the script action) can reach its planner without the core
// importing this package.
var planners = struct {
	sync.Mutex
	m map[*core.Core]*Planner
}{m: make(map[*core.Core]*Planner)}

// Start attaches a planner to the core and, when opts.Interval > 0, starts
// its closed loop. The planner stops with the core. A core has at most one
// planner.
func Start(c *core.Core, opts Options) (*Planner, error) {
	if c == nil {
		return nil, fmt.Errorf("plan: nil core")
	}
	if opts.MinGain == 0 {
		opts.MinGain = DefaultMinGain
	}
	if opts.MinGain < 0 {
		opts.MinGain = 0
	}
	if opts.Cooldown == 0 {
		opts.Cooldown = DefaultCooldown
	}
	if opts.MaxMovesPerRound == 0 {
		opts.MaxMovesPerRound = DefaultMaxMovesPerRound
	}
	p := &Planner{
		c:         c,
		opts:      opts,
		dynamic:   len(opts.Cores) == 0,
		pinned:    make(map[ids.CompletID]bool, len(opts.Pinned)),
		lastMoved: make(map[ids.CompletID]time.Time),
		stop:      make(chan struct{}),
	}
	for _, id := range opts.Pinned {
		p.pinned[id] = true
	}

	planners.Lock()
	if _, dup := planners.m[c]; dup {
		planners.Unlock()
		return nil, fmt.Errorf("plan: core %s already has a planner", c.ID())
	}
	planners.m[c] = p
	planners.Unlock()
	c.OnShutdown(p.Stop)

	if opts.Interval > 0 {
		p.wg.Add(1)
		go p.loop()
	}
	return p, nil
}

// members resolves the planning domain for a round: the configured list, or
// — with dynamic membership — the attached core plus every peer it currently
// knows.
func (p *Planner) members() []ids.CoreID {
	if !p.dynamic {
		return p.opts.Cores
	}
	return append([]ids.CoreID{p.c.ID()}, p.c.Peers()...)
}

// For returns the planner attached to the core, if any.
func For(c *core.Core) (*Planner, bool) {
	planners.Lock()
	defer planners.Unlock()
	p, ok := planners.m[c]
	return p, ok
}

// Stop ends the closed loop and detaches the planner from its core (a new
// planner may then be attached). Idempotent; concurrent RunOnce calls finish
// normally.
func (p *Planner) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	planners.Lock()
	if planners.m[p.c] == p {
		delete(planners.m, p.c)
	}
	planners.Unlock()
}

// Pin marks a complet immovable for this planner.
func (p *Planner) Pin(id ids.CompletID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pinned[id] = true
}

func (p *Planner) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// loop is the closed loop: one planning round per interval until Stop.
func (p *Planner) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			budget := p.opts.Interval
			if budget < defaultRoundBudget {
				budget = defaultRoundBudget
			}
			ctx, cancel := context.WithTimeout(context.Background(), budget)
			if _, err := p.RunOnce(ctx); err != nil {
				p.logf("plan %s: round: %v", p.c.ID(), err)
			}
			cancel()
		}
	}
}

// Round is the outcome of one RunOnce.
type Round struct {
	Proposal Proposal
	// Applied and Failed count actuations; both stay zero in dry-run mode.
	Applied int
	Failed  int
	DryRun  bool
}

// Propose collects a fresh graph and runs the heuristic WITHOUT acting,
// regardless of the DryRun option — the read-only what-if used by the shell's
// `plan dry-run` and the ops endpoint.
func (p *Planner) Propose(ctx context.Context) (Proposal, error) {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	g, err := p.collect(ctx)
	if err != nil {
		return Proposal{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	prop := p.propose(g, time.Now())
	p.lastGraph = g
	p.lastProposal = prop
	return prop, nil
}

// RunOnce executes one planning round: collect, propose, actuate (or record,
// in dry-run mode). Rounds are serialized; the closed loop, the shell and
// scripts share one sequence.
func (p *Planner) RunOnce(ctx context.Context) (Round, error) {
	p.runMu.Lock()
	defer p.runMu.Unlock()

	now := time.Now()
	g, err := p.collect(ctx)
	if err != nil {
		p.mu.Lock()
		p.lastErr = err.Error()
		p.mu.Unlock()
		return Round{}, err
	}

	p.mu.Lock()
	prop := p.propose(g, now)
	p.rounds++
	p.lastRun = now
	p.lastErr = ""
	p.lastGraph = g
	p.lastProposal = prop
	dryRun := p.opts.DryRun
	p.mu.Unlock()

	round := Round{Proposal: prop, DryRun: dryRun}
	for _, m := range prop.Moves {
		if dryRun {
			p.record(Decision{At: time.Now(), Complet: m.Complet.String(), From: m.From.String(), To: m.To.String(), Gain: m.Gain, Action: "dry-run"}, flight.Event{
				Kind:    flight.KindPlanSkipped,
				Complet: m.Complet.String(),
				Peer:    m.To.String(),
				Detail:  fmt.Sprintf("dry-run: gain %.3g/s", m.Gain),
			})
			continue
		}
		start := time.Now()
		err := p.c.MoveByIDCtx(ctx, m.Complet, m.To)
		if err != nil {
			round.Failed++
			p.mu.Lock()
			p.skipped++
			p.mu.Unlock()
			p.record(Decision{At: time.Now(), Complet: m.Complet.String(), From: m.From.String(), To: m.To.String(), Gain: m.Gain, Action: "failed", Err: err.Error()}, flight.Event{
				Kind:          flight.KindPlanSkipped,
				Complet:       m.Complet.String(),
				Peer:          m.To.String(),
				DurationNanos: time.Since(start).Nanoseconds(),
				Detail:        fmt.Sprintf("actuation failed (gain %.3g/s)", m.Gain),
				Err:           err.Error(),
			})
			p.logf("plan %s: move %s %s -> %s: %v", p.c.ID(), m.Complet, m.From, m.To, err)
			continue
		}
		round.Applied++
		p.mu.Lock()
		p.applied++
		p.lastMoved[m.Complet] = time.Now()
		p.mu.Unlock()
		p.record(Decision{At: time.Now(), Complet: m.Complet.String(), From: m.From.String(), To: m.To.String(), Gain: m.Gain, Action: "applied"}, flight.Event{
			Kind:          flight.KindPlanApplied,
			Complet:       m.Complet.String(),
			Peer:          m.To.String(),
			DurationNanos: time.Since(start).Nanoseconds(),
			Detail:        fmt.Sprintf("gain %.3g/s", m.Gain),
		})
	}
	return round, nil
}

// record retains a decision and mirrors it to the flight recorder.
func (p *Planner) record(d Decision, ev flight.Event) {
	p.mu.Lock()
	p.decisions = append(p.decisions, d)
	if len(p.decisions) > decisionRing {
		p.decisions = p.decisions[len(p.decisions)-decisionRing:]
	}
	p.mu.Unlock()
	p.c.Flight().Record(ev)
}

// --- status -----------------------------------------------------------------

// EdgeView is one graph edge in a Status, string-rendered for JSON and
// shells.
type EdgeView struct {
	Src     string  `json:"src"`
	Dst     string  `json:"dst"`
	SrcCore string  `json:"srcCore,omitempty"`
	DstCore string  `json:"dstCore,omitempty"`
	Rate    float64 `json:"rate"`
	Count   uint64  `json:"count"`
	Bytes   uint64  `json:"bytes"`
	Cross   bool    `json:"cross"`
}

// MoveView is one proposed move in a Status.
type MoveView struct {
	Complet string  `json:"complet"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	Gain    float64 `json:"gain"`
}

// GraphStatus summarizes the last collected graph.
type GraphStatus struct {
	At        time.Time      `json:"at"`
	Complets  int            `json:"complets"`
	CrossRate float64        `json:"crossRate"`
	Load      map[string]int `json:"load"`
	Free      map[string]int `json:"free"`
	Edges     []EdgeView     `json:"edges"`
	Missing   []string       `json:"missing,omitempty"`
}

// Status is the planner's introspection snapshot (/plan, shell `plan
// status`).
type Status struct {
	Core             string       `json:"core"`
	Cores            []string     `json:"cores"`
	Running          bool         `json:"running"`
	Interval         string       `json:"interval"`
	DryRun           bool         `json:"dryRun"`
	MinGain          float64      `json:"minGain"`
	Cooldown         string       `json:"cooldown"`
	MaxMovesPerRound int          `json:"maxMovesPerRound"`
	Rounds           uint64       `json:"rounds"`
	Applied          uint64       `json:"applied"`
	Skipped          uint64       `json:"skipped"`
	LastRun          *time.Time   `json:"lastRun,omitempty"`
	LastErr          string       `json:"lastErr,omitempty"`
	Graph            *GraphStatus `json:"graph,omitempty"`
	Proposal         []MoveView   `json:"proposal,omitempty"`
	Decisions        []Decision   `json:"decisions,omitempty"`
}

// Status snapshots the planner.
func (p *Planner) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Status{
		Core:             p.c.ID().String(),
		Running:          !p.stopped && p.opts.Interval > 0,
		Interval:         p.opts.Interval.String(),
		DryRun:           p.opts.DryRun,
		MinGain:          p.opts.MinGain,
		Cooldown:         p.opts.Cooldown.String(),
		MaxMovesPerRound: p.opts.MaxMovesPerRound,
		Rounds:           p.rounds,
		Applied:          p.applied,
		Skipped:          p.skipped,
		LastErr:          p.lastErr,
		Decisions:        append([]Decision(nil), p.decisions...),
	}
	for _, c := range p.members() {
		st.Cores = append(st.Cores, c.String())
	}
	if !p.lastRun.IsZero() {
		t := p.lastRun
		st.LastRun = &t
	}
	if g := p.lastGraph; g != nil {
		gs := &GraphStatus{
			At:        g.At,
			Complets:  len(g.Placement),
			CrossRate: g.CrossRate(),
			Load:      make(map[string]int, len(g.Load)),
			Free:      make(map[string]int, len(g.Free)),
		}
		for c, l := range g.Load {
			gs.Load[c.String()] = l
		}
		for c, f := range g.Free {
			gs.Free[c.String()] = f
		}
		for _, m := range g.Missing {
			gs.Missing = append(gs.Missing, m.String())
		}
		for pr, e := range g.Edges {
			srcCore, dstCore := g.Placement[pr.src], g.Placement[pr.dst]
			gs.Edges = append(gs.Edges, EdgeView{
				Src:     pr.src.String(),
				Dst:     pr.dst.String(),
				SrcCore: srcCore.String(),
				DstCore: dstCore.String(),
				Rate:    e.Rate,
				Count:   e.Count,
				Bytes:   e.Bytes,
				Cross:   !srcCore.Nil() && !dstCore.Nil() && srcCore != dstCore,
			})
		}
		sort.Slice(gs.Edges, func(i, j int) bool {
			if gs.Edges[i].Rate != gs.Edges[j].Rate {
				return gs.Edges[i].Rate > gs.Edges[j].Rate
			}
			if gs.Edges[i].Src != gs.Edges[j].Src {
				return gs.Edges[i].Src < gs.Edges[j].Src
			}
			return gs.Edges[i].Dst < gs.Edges[j].Dst
		})
		st.Graph = gs
	}
	for _, m := range p.lastProposal.Moves {
		st.Proposal = append(st.Proposal, MoveView{Complet: m.Complet.String(), From: m.From.String(), To: m.To.String(), Gain: m.Gain})
	}
	return st
}

// --- script action ----------------------------------------------------------

// The `plan` script action drives the planner of the core a script runs on:
//
//	plan()            one planning round (collect, propose, actuate)
//	plan("run")       same
//	plan("dry-run")   propose and log, without acting
//	plan("status")    log a one-line summary
//
// Registered at package init; linking the planner (fargo does) makes the
// action available to every script.
func init() {
	if err := script.RegisterAction("plan", planAction); err != nil {
		panic(err)
	}
}

func planAction(rt script.Runtime, args []script.Value) error {
	mode := "run"
	if len(args) > 0 {
		s, ok := args[0].(string)
		if !ok {
			return fmt.Errorf("plan: argument must be \"run\", \"dry-run\" or \"status\"")
		}
		mode = s
	}
	cr, ok := rt.(interface{ Core() *core.Core })
	if !ok {
		return fmt.Errorf("plan: script runtime does not expose a core")
	}
	p, ok := For(cr.Core())
	if !ok {
		return fmt.Errorf("plan: no planner on core %s", rt.LocalCore())
	}
	switch mode {
	case "run":
		round, err := p.RunOnce(context.Background())
		if err != nil {
			return err
		}
		rt.Logf("plan: %d move(s) proposed, %d applied, %d failed (cross-rate %.3g/s, est. savings %.3g/s)",
			len(round.Proposal.Moves), round.Applied, round.Failed, round.Proposal.CrossRate, round.Proposal.Savings)
		return nil
	case "dry-run":
		prop, err := p.Propose(context.Background())
		if err != nil {
			return err
		}
		rt.Logf("plan: dry run — %d move(s) (cross-rate %.3g/s, est. savings %.3g/s)", len(prop.Moves), prop.CrossRate, prop.Savings)
		for _, m := range prop.Moves {
			rt.Logf("plan:   %s: %s -> %s (gain %.3g/s)", m.Complet, m.From, m.To, m.Gain)
		}
		return nil
	case "status":
		st := p.Status()
		rt.Logf("plan: core %s, %d member(s), rounds %d, applied %d, skipped %d, dry-run %v", st.Core, len(st.Cores), st.Rounds, st.Applied, st.Skipped, st.DryRun)
		return nil
	default:
		return fmt.Errorf("plan: unknown mode %q (want \"run\", \"dry-run\" or \"status\")", mode)
	}
}
