package plan

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fargo/internal/core"
	"fargo/internal/ids"
	"fargo/internal/netsim"
)

// newJournaledCluster is newCluster with durable move journals, disabled
// breakers and home tracking on every core — the crash-recovery substrate.
func newJournaledCluster(t testing.TB, names ...string) *cluster {
	t.Helper()
	cl := &cluster{
		t:       t,
		net:     netsim.NewNetwork(11),
		dir:     t.TempDir(),
		timeout: 2 * time.Second, // crashes make peers time out; keep rounds brisk
		cores:   make(map[ids.CoreID]*core.Core, len(names)),
	}
	for _, name := range names {
		cl.start(ids.CoreID(name))
	}
	t.Cleanup(func() { cl.close(true) })
	return cl
}

// kill tears a (network-dead) core down abruptly, as its process exiting
// would; restart brings a fresh core up under the same name and resolves its
// journal.
func (cl *cluster) kill(name string) {
	cl.t.Helper()
	id := ids.CoreID(name)
	c := cl.cores[id]
	delete(cl.cores, id)
	_ = c.ShutdownAbrupt()
}

func (cl *cluster) ckptPath(name string) string {
	return filepath.Join(cl.dir, name+".ckpt")
}

// restart brings a crashed core back: journal replayed at construction, then
// the checkpoint restored when one exists (which reconciles it against the
// journal), explicit recovery otherwise. The journal records only protocol
// state — source-side complet payloads are durable via checkpoints, as in the
// chaos harness.
func (cl *cluster) restart(name string) *core.Core {
	cl.t.Helper()
	c := cl.start(ids.CoreID(name))
	if _, err := os.Stat(cl.ckptPath(name)); err == nil {
		if _, err := c.RestoreFile(cl.ckptPath(name)); err != nil {
			cl.t.Fatalf("restore %s: %v", name, err)
		}
	} else if _, err := c.Recover(context.Background()); err != nil {
		cl.t.Fatalf("recover %s: %v", name, err)
	}
	return c
}

func (cl *cluster) liveCopies(id ids.CompletID) []ids.CoreID {
	var out []ids.CoreID
	for name, c := range cl.cores {
		for _, info := range c.Complets() {
			if info.ID == id {
				out = append(out, name)
				break
			}
		}
	}
	return out
}

// TestPlannerActuationCrashConverges: the move source crashes mid-actuation
// (after the destination installed, before COMMIT). After restart and
// recovery exactly one live copy of the moved complet exists, and the next
// planning round still reaches the co-located layout.
func TestPlannerActuationCrashConverges(t *testing.T) {
	for _, step := range []core.MoveStep{core.StepAfterPrepare, core.StepAfterSend} {
		t.Run(string(step), func(t *testing.T) {
			cl := newJournaledCluster(t, "c1", "c2")
			c1 := cl.core("c1")
			f, b := cl.pairUp(c1, "c1", "c2")
			drive(t, 30, f)

			p, err := Start(c1, Options{
				Cores:    []ids.CoreID{"c1", "c2"},
				Pinned:   []ids.CompletID{f.Target()},
				MinGain:  0.05,
				Cooldown: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Stop()

			// Durable state of the move source = journal + checkpoint; take
			// the checkpoint a real deployment's checkpoint policy would.
			if err := cl.core("c2").CheckpointFile(cl.ckptPath("c2")); err != nil {
				t.Fatal(err)
			}

			// Crash the move SOURCE (the back's host) at the given protocol
			// step: the host drops off the network and stops journaling.
			src := cl.core("c2")
			src.SetMoveStepHook(func(s core.MoveStep, root ids.CompletID) bool {
				if s != step || root != b.Target() {
					return false
				}
				_ = cl.net.StopHost("c2")
				return true
			})

			// The armed crash makes the actuation hang until its deadline;
			// a short round budget keeps the test brisk.
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			round, err := p.RunOnce(ctx)
			cancel()
			if err != nil {
				t.Fatalf("round with crash: %v", err)
			}
			if round.Applied != 0 || round.Failed == 0 {
				t.Fatalf("round = %+v, want a failed actuation", round)
			}

			cl.kill("c2")
			c2 := cl.restart("c2")
			c2.SetMoveStepHook(nil)
			// Sources resolve pending moves against the restarted world.
			for _, c := range cl.cores {
				if _, err := c.Recover(context.Background()); err != nil {
					t.Fatalf("recover: %v", err)
				}
			}

			copies := cl.liveCopies(b.Target())
			if len(copies) != 1 {
				t.Fatalf("after crash at %s: %d live copies (%v), want exactly 1", step, len(copies), copies)
			}

			// The loop keeps going: fresh traffic, next round, co-location.
			drive(t, 30, f)
			deadline := time.Now().Add(10 * time.Second)
			for locate(t, c1, b) != "c1" {
				if time.Now().After(deadline) {
					t.Fatalf("planner did not converge after recovery; status %+v", p.Status())
				}
				if _, err := p.RunOnce(context.Background()); err != nil {
					t.Fatalf("post-recovery round: %v", err)
				}
				drive(t, 5, f)
			}
			if n := len(cl.liveCopies(b.Target())); n != 1 {
				t.Fatalf("converged layout has %d live copies", n)
			}
		})
	}
}
