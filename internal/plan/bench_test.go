package plan

import (
	"context"
	"testing"

	"fargo/internal/ids"
	"fargo/internal/ref"
)

// benchCrossMessages runs the seeded 3-core chatty-pair workload — each core
// anchors a pinned front whose back starts on the WRONG core — and returns
// the simulated-network message count crossing core boundaries during the
// measured traffic phase. With planned=true the planner runs (non-dry-run)
// until the layout settles, at most 5 rounds, before measuring.
func benchCrossMessages(b *testing.B, planned bool) uint64 {
	b.Helper()
	names := []string{"c1", "c2", "c3"}
	cl := newCluster(b, names...)
	defer cl.close(false)
	c1 := cl.core("c1")

	var fronts []*ref.Ref
	var pinned []ids.CompletID
	for i, n := range names {
		f, _ := cl.pairUp(c1, n, names[(i+1)%len(names)])
		fronts = append(fronts, f)
		pinned = append(pinned, f.Target())
	}
	drive(b, 30, fronts...)

	if planned {
		p, err := Start(c1, Options{Cores: []ids.CoreID{"c1", "c2", "c3"}, Pinned: pinned, MinGain: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Stop()
		for i := 0; i < 5; i++ {
			round, err := p.RunOnce(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if len(round.Proposal.Moves) == 0 {
				break
			}
			drive(b, 5, fronts...)
		}
	}

	cl.net.ResetStats()
	drive(b, 50, fronts...)
	var cross uint64
	for _, from := range names {
		for _, to := range names {
			if from != to {
				cross += cl.net.Stats(from, to).Messages
			}
		}
	}
	return cross
}

// BenchmarkPlannerConvergence measures the autonomic loop end to end: the
// same seeded workload with the planner off and on. The planner must cut
// cross-core messages by at least half (the irreducible remainder is the
// driver's own calls to the pinned fronts). Reported metrics:
// cross-msgs/op (planner on), baseline-cross-msgs/op (planner off) and
// cross-reduction-% (averaged over iterations).
func BenchmarkPlannerConvergence(b *testing.B) {
	var on, off uint64
	for i := 0; i < b.N; i++ {
		off += benchCrossMessages(b, false)
		on += benchCrossMessages(b, true)
	}
	if on*2 > off {
		b.Fatalf("planner cut cross-core messages %d -> %d, want >= 50%% reduction", off, on)
	}
	n := float64(b.N)
	b.ReportMetric(float64(on)/n, "cross-msgs/op")
	b.ReportMetric(float64(off)/n, "baseline-cross-msgs/op")
	b.ReportMetric(100*(1-float64(on)/float64(off)), "cross-reduction-%")
}
