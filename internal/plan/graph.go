package plan

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fargo/internal/ids"
	"fargo/internal/wire"
)

// uncappedFloor treats any reported free capacity at or above this value as
// effectively unlimited (core.capacityFree reports 1<<30 for uncapped cores).
const uncappedFloor = 1 << 20

// pair identifies one directed communication edge.
type pair struct {
	src, dst ids.CompletID
}

// Edge is one aggregated communication-graph edge: invocations from Src to
// Dst, wherever the two happen to be hosted right now. Edges are keyed on
// complet identity, so they survive moves (the meters travel with the
// complets — see core.Monitor exportMeters/importMeters).
type Edge struct {
	Src   ids.CompletID
	Dst   ids.CompletID
	Rate  float64 // invocations/second over the sliding window
	Count uint64  // windowed invocation count
	Bytes uint64  // cumulative argument bytes
}

// Graph is one collected snapshot of the planning domain: where every complet
// lives, how the complets talk to each other, and how loaded each core is.
type Graph struct {
	At        time.Time
	Cores     []ids.CoreID
	Placement map[ids.CompletID]ids.CoreID
	Edges     map[pair]*Edge
	Load      map[ids.CoreID]int
	Free      map[ids.CoreID]int
	// Missing lists member cores that did not answer the collector (their
	// complets are invisible this round; the heuristic never moves anything
	// toward or away from them).
	Missing []ids.CoreID
}

// CrossRate sums the rates of edges whose endpoints live on different cores —
// the quantity the planner tries to minimize.
func (g *Graph) CrossRate() float64 {
	var total float64
	for pr, e := range g.Edges {
		a, aOK := g.Placement[pr.src]
		b, bOK := g.Placement[pr.dst]
		if aOK && bOK && a != b {
			total += e.Rate
		}
	}
	return total
}

// collect queries every member core for its planner snapshot and aggregates
// the answers into one graph. Pair edges are accepted only from the core that
// currently hosts the edge's destination (where they are recorded), which
// discards any stale meters a crash recovery may have left behind.
func (p *Planner) collect(ctx context.Context) (*Graph, error) {
	members := p.members()
	g := &Graph{
		At:        time.Now(),
		Cores:     members,
		Placement: make(map[ids.CompletID]ids.CoreID),
		Edges:     make(map[pair]*Edge),
		Load:      make(map[ids.CoreID]int),
		Free:      make(map[ids.CoreID]int),
	}
	replies := make([]wire.PlanStatsQueryReply, 0, len(members))
	for _, m := range members {
		rep, err := p.c.PlanStatsAtCtx(ctx, m)
		if err != nil {
			g.Missing = append(g.Missing, m)
			p.logf("plan %s: collect from %s: %v", p.c.ID(), m, err)
			continue
		}
		g.Load[rep.Core] = rep.Load
		g.Free[rep.Core] = rep.CapacityFree
		for _, id := range rep.Complets {
			g.Placement[id] = rep.Core
		}
		replies = append(replies, rep)
	}
	if len(replies) == 0 {
		return nil, fmt.Errorf("plan: no member core answered the collector (%d queried)", len(members))
	}
	// Second pass now that placement is complete: accept each edge from the
	// core hosting its destination.
	for _, rep := range replies {
		for _, ps := range rep.Pairs {
			if g.Placement[ps.Dst] != rep.Core {
				continue // stale meter from a pre-recovery host
			}
			if ps.Count == 0 && ps.Rate == 0 {
				continue
			}
			key := pair{src: ps.Src, dst: ps.Dst}
			e, ok := g.Edges[key]
			if !ok {
				e = &Edge{Src: ps.Src, Dst: ps.Dst}
				g.Edges[key] = e
			}
			e.Rate += ps.Rate
			e.Count += ps.Count
			e.Bytes += ps.Bytes
		}
	}
	return g, nil
}

// Move is one proposed relocation with its estimated savings: the net
// cross-core invocations/second eliminated by moving Complet from From to To,
// given the (tentatively updated) placement at proposal time.
type Move struct {
	Complet ids.CompletID
	From    ids.CoreID
	To      ids.CoreID
	Gain    float64
}

// Proposal is the outcome of one planning pass over a graph.
type Proposal struct {
	At    time.Time
	Moves []Move
	// CrossRate is the graph's cross-core rate before the proposal;
	// Savings the total estimated gain of the proposed moves.
	CrossRate float64
	Savings   float64
}

// propose runs the placement heuristic: greedy edge contraction. Cross-core
// edges are visited heaviest-first; for each, the endpoint whose relocation
// nets the larger reduction in cross-core traffic is tentatively moved next
// to the other — provided the destination has capacity, the complet is not
// pinned, was not moved within the cooldown, and the net gain clears the
// min-gain threshold. Later edges see the updated placement, so chains of
// chatty complets contract onto one core in a single pass (a practical
// min-cut-style partitioner; DESIGN.md §14).
//
// The caller must hold p.mu (propose reads the cooldown map).
func (p *Planner) propose(g *Graph, now time.Time) Proposal {
	prop := Proposal{At: now, CrossRate: g.CrossRate()}

	// Undirected attraction weights between placed complets. Rates in the
	// two directions add: what matters for co-location is total chatter.
	neighbors := make(map[ids.CompletID]map[ids.CompletID]float64)
	addWeight := func(a, b ids.CompletID, w float64) {
		if neighbors[a] == nil {
			neighbors[a] = make(map[ids.CompletID]float64)
		}
		neighbors[a][b] += w
	}
	type ekey struct{ a, b ids.CompletID }
	weight := make(map[ekey]float64)
	for pr, e := range g.Edges {
		if pr.src == pr.dst || e.Rate <= 0 {
			continue
		}
		if _, ok := g.Placement[pr.src]; !ok {
			continue // source not hosted by a member (or its host is missing)
		}
		if _, ok := g.Placement[pr.dst]; !ok {
			continue
		}
		a, b := pr.src, pr.dst
		if b.String() < a.String() {
			a, b = b, a
		}
		weight[ekey{a, b}] += e.Rate
		addWeight(pr.src, pr.dst, e.Rate)
		addWeight(pr.dst, pr.src, e.Rate)
	}

	type cand struct {
		a, b ids.CompletID
		w    float64
		// tie-break on bytes so the heavier data edge contracts first
		bytes uint64
	}
	cands := make([]cand, 0, len(weight))
	for k, w := range weight {
		c := cand{a: k.a, b: k.b, w: w}
		if e, ok := g.Edges[pair{src: k.a, dst: k.b}]; ok {
			c.bytes += e.Bytes
		}
		if e, ok := g.Edges[pair{src: k.b, dst: k.a}]; ok {
			c.bytes += e.Bytes
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		if cands[i].bytes != cands[j].bytes {
			return cands[i].bytes > cands[j].bytes
		}
		if cands[i].a != cands[j].a {
			return cands[i].a.String() < cands[j].a.String()
		}
		return cands[i].b.String() < cands[j].b.String()
	})

	// Working copies the contraction updates as moves are chosen.
	place := make(map[ids.CompletID]ids.CoreID, len(g.Placement))
	for id, core := range g.Placement {
		place[id] = core
	}
	free := make(map[ids.CoreID]int, len(g.Free))
	for core, f := range g.Free {
		free[core] = f
	}
	moved := make(map[ids.CompletID]bool)

	attraction := func(x ids.CompletID, k ids.CoreID) float64 {
		var s float64
		for n, w := range neighbors[x] {
			if place[n] == k {
				s += w
			}
		}
		return s
	}
	movable := func(x ids.CompletID, to ids.CoreID) bool {
		switch {
		case moved[x], p.pinned[x]:
			return false
		case !p.lastMoved[x].IsZero() && now.Sub(p.lastMoved[x]) < p.opts.Cooldown:
			return false // hysteresis: recently moved complets settle first
		case free[to] <= 0:
			return false // uncapped cores report a huge sentinel, never 0
		}
		return true
	}

	for _, cd := range cands {
		if p.opts.MaxMovesPerRound > 0 && len(prop.Moves) >= p.opts.MaxMovesPerRound {
			break
		}
		ca, cb := place[cd.a], place[cd.b]
		if ca == cb || ca.Nil() || cb.Nil() {
			continue
		}
		best := Move{Gain: p.opts.MinGain - 1} // below any acceptable gain
		for _, opt := range []Move{
			{Complet: cd.a, From: ca, To: cb},
			{Complet: cd.b, From: cb, To: ca},
		} {
			if !movable(opt.Complet, opt.To) {
				continue
			}
			opt.Gain = attraction(opt.Complet, opt.To) - attraction(opt.Complet, opt.From)
			if opt.Gain > best.Gain {
				best = opt
			}
		}
		if best.Complet.Nil() || best.Gain < p.opts.MinGain {
			continue
		}
		place[best.Complet] = best.To
		if free[best.To] < uncappedFloor {
			free[best.To]--
		}
		if free[best.From] < uncappedFloor {
			free[best.From]++
		}
		moved[best.Complet] = true
		prop.Moves = append(prop.Moves, best)
		prop.Savings += best.Gain
	}
	return prop
}
