package plan

import (
	"testing"
	"time"

	"fargo/internal/ids"
)

// Heuristic unit tests: propose() over hand-built graphs, no cores involved.

func cid(n uint64) ids.CompletID { return ids.CompletID{Birth: "t", Seq: n} }

func testPlanner(opts Options) *Planner {
	if opts.Cooldown == 0 {
		opts.Cooldown = DefaultCooldown
	}
	p := &Planner{
		opts:      opts,
		pinned:    make(map[ids.CompletID]bool),
		lastMoved: make(map[ids.CompletID]time.Time),
	}
	for _, id := range opts.Pinned {
		p.pinned[id] = true
	}
	return p
}

type tedge struct {
	src, dst uint64
	rate     float64
}

func testGraph(placement map[uint64]ids.CoreID, free map[ids.CoreID]int, edges ...tedge) *Graph {
	g := &Graph{
		At:        time.Unix(1000, 0),
		Placement: make(map[ids.CompletID]ids.CoreID),
		Edges:     make(map[pair]*Edge),
		Load:      make(map[ids.CoreID]int),
		Free:      free,
	}
	for n, c := range placement {
		g.Placement[cid(n)] = c
		g.Load[c]++
		g.Cores = append(g.Cores, c)
	}
	if g.Free == nil {
		g.Free = make(map[ids.CoreID]int)
	}
	for c := range g.Load {
		if _, ok := g.Free[c]; !ok {
			g.Free[c] = 1 << 30 // uncapped
		}
	}
	for _, e := range edges {
		key := pair{src: cid(e.src), dst: cid(e.dst)}
		g.Edges[key] = &Edge{Src: key.src, Dst: key.dst, Rate: e.rate, Count: uint64(e.rate * 10)}
	}
	return g
}

func moveOf(t *testing.T, prop Proposal, complet uint64) Move {
	t.Helper()
	for _, m := range prop.Moves {
		if m.Complet == cid(complet) {
			return m
		}
	}
	t.Fatalf("no proposed move for %s in %+v", cid(complet), prop.Moves)
	return Move{}
}

func TestProposeColocatesChattyPair(t *testing.T) {
	p := testPlanner(Options{MinGain: 0.1})
	// 1 on A talks hard to 2 on B; 2 also talks lightly to 3 on B.
	g := testGraph(map[uint64]ids.CoreID{1: "A", 2: "B", 3: "B"},
		nil,
		tedge{1, 2, 5},
		tedge{2, 3, 1},
	)
	prop := p.propose(g, g.At)
	if len(prop.Moves) != 1 {
		t.Fatalf("moves = %+v, want exactly 1", prop.Moves)
	}
	// Moving 1 to B gains 5; moving 2 to A gains 5-1=4. 1 must move.
	m := moveOf(t, prop, 1)
	if m.From != "A" || m.To != "B" || m.Gain != 5 {
		t.Fatalf("move = %+v, want 1: A->B gain 5", m)
	}
	if prop.CrossRate != 5 || prop.Savings != 5 {
		t.Fatalf("crossRate=%v savings=%v, want 5 and 5", prop.CrossRate, prop.Savings)
	}
}

func TestProposeRespectsPinning(t *testing.T) {
	p := testPlanner(Options{MinGain: 0.1, Pinned: []ids.CompletID{cid(1)}})
	g := testGraph(map[uint64]ids.CoreID{1: "A", 2: "B"}, nil, tedge{1, 2, 5})
	prop := p.propose(g, g.At)
	if len(prop.Moves) != 1 {
		t.Fatalf("moves = %+v, want 1", prop.Moves)
	}
	// 1 is pinned, so the OTHER endpoint comes to it.
	m := moveOf(t, prop, 2)
	if m.To != "A" {
		t.Fatalf("move = %+v, want 2 -> A", m)
	}
}

func TestProposeRespectsCapacity(t *testing.T) {
	p := testPlanner(Options{MinGain: 0.1, Pinned: []ids.CompletID{cid(1)}})
	// A is full: the only legal endpoint (2, since 1 is pinned) cannot land.
	g := testGraph(map[uint64]ids.CoreID{1: "A", 2: "B"},
		map[ids.CoreID]int{"A": 0, "B": 1 << 30},
		tedge{1, 2, 5})
	prop := p.propose(g, g.At)
	if len(prop.Moves) != 0 {
		t.Fatalf("moves = %+v, want none (destination full)", prop.Moves)
	}
	// Capacity is consumed by earlier moves in the same round: two chatty
	// pairs contend for one free slot on A.
	p2 := testPlanner(Options{MinGain: 0.1, Pinned: []ids.CompletID{cid(1), cid(3)}})
	g2 := testGraph(map[uint64]ids.CoreID{1: "A", 2: "B", 3: "A", 4: "B"},
		map[ids.CoreID]int{"A": 1, "B": 1 << 30},
		tedge{1, 2, 5}, tedge{3, 4, 4})
	prop2 := p2.propose(g2, g2.At)
	if len(prop2.Moves) != 1 {
		t.Fatalf("moves = %+v, want exactly 1 (one free slot)", prop2.Moves)
	}
	if m := moveOf(t, prop2, 2); m.To != "A" {
		t.Fatalf("move = %+v, want the heavier pair's endpoint 2 -> A", m)
	}
}

func TestProposeRespectsCooldown(t *testing.T) {
	p := testPlanner(Options{MinGain: 0.1, Pinned: []ids.CompletID{cid(1)}, Cooldown: time.Minute})
	now := time.Unix(2000, 0)
	p.lastMoved[cid(2)] = now.Add(-time.Second) // moved just now
	g := testGraph(map[uint64]ids.CoreID{1: "A", 2: "B"}, nil, tedge{1, 2, 5})
	if prop := p.propose(g, now); len(prop.Moves) != 0 {
		t.Fatalf("moves = %+v, want none during cooldown", prop.Moves)
	}
	// Past the cooldown the move is proposed again.
	if prop := p.propose(g, now.Add(2*time.Minute)); len(prop.Moves) != 1 {
		t.Fatalf("want the move after cooldown expiry")
	}
}

func TestProposeMinGainFiltersNoise(t *testing.T) {
	p := testPlanner(Options{MinGain: 2})
	g := testGraph(map[uint64]ids.CoreID{1: "A", 2: "B"}, nil, tedge{1, 2, 1.5})
	if prop := p.propose(g, g.At); len(prop.Moves) != 0 {
		t.Fatalf("moves = %+v, want none below min gain", prop.Moves)
	}
}

func TestProposeMaxMovesPerRound(t *testing.T) {
	p := testPlanner(Options{MinGain: 0.1, MaxMovesPerRound: 1,
		Pinned: []ids.CompletID{cid(1), cid(3)}})
	g := testGraph(map[uint64]ids.CoreID{1: "A", 2: "B", 3: "A", 4: "B"},
		nil, tedge{1, 2, 5}, tedge{3, 4, 4})
	prop := p.propose(g, g.At)
	if len(prop.Moves) != 1 {
		t.Fatalf("moves = %+v, want capped at 1", prop.Moves)
	}
	if m := moveOf(t, prop, 2); m.Gain != 5 {
		t.Fatalf("move = %+v, want the heaviest edge first", m)
	}
}

func TestProposeContractsChains(t *testing.T) {
	// 1 (pinned, A) — 2 (B) — 3 (C): a pipeline strung across three cores.
	// One pass should pull both movable stages onto A: after 2 -> A is
	// tentatively applied, 3's attraction to A includes the 2-3 edge.
	p := testPlanner(Options{MinGain: 0.1, Pinned: []ids.CompletID{cid(1)}})
	g := testGraph(map[uint64]ids.CoreID{1: "A", 2: "B", 3: "C"},
		nil, tedge{1, 2, 5}, tedge{2, 3, 3})
	prop := p.propose(g, g.At)
	if len(prop.Moves) != 2 {
		t.Fatalf("moves = %+v, want 2 (chain contraction)", prop.Moves)
	}
	if m := moveOf(t, prop, 2); m.To != "A" {
		t.Fatalf("stage 2: %+v, want -> A", m)
	}
	if m := moveOf(t, prop, 3); m.To != "A" {
		t.Fatalf("stage 3: %+v, want -> A (follows contracted neighbor)", m)
	}
	if prop.Savings != 8 {
		t.Fatalf("savings = %v, want 8 (both edges eliminated)", prop.Savings)
	}
}

func TestProposeIsDeterministic(t *testing.T) {
	p := testPlanner(Options{MinGain: 0.1})
	build := func() *Graph {
		return testGraph(map[uint64]ids.CoreID{1: "A", 2: "B", 3: "C", 4: "A", 5: "B"},
			nil, tedge{1, 2, 3}, tedge{3, 4, 3}, tedge{5, 1, 2}, tedge{2, 3, 1})
	}
	first := p.propose(build(), time.Unix(1000, 0))
	for i := 0; i < 10; i++ {
		q := testPlanner(Options{MinGain: 0.1})
		got := q.propose(build(), time.Unix(1000, 0))
		if len(got.Moves) != len(first.Moves) {
			t.Fatalf("run %d: %d moves, first had %d", i, len(got.Moves), len(first.Moves))
		}
		for j := range got.Moves {
			if got.Moves[j] != first.Moves[j] {
				t.Fatalf("run %d move %d: %+v != %+v (map iteration leaked in)", i, j, got.Moves[j], first.Moves[j])
			}
		}
	}
}
