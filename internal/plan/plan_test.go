package plan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fargo/internal/core"
	"fargo/internal/flight"
	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/ref"
	"fargo/internal/registry"
	"fargo/internal/script"
	"fargo/internal/transport"
)

// --- workload complets -------------------------------------------------------

// front is the anchored end of a chatty pair: it holds an owned reference to
// its back end, so invocations through it produce per-(front,back) meters at
// the back's hosting core — the planner's raw signal.
type front struct {
	Name string
	Out  *ref.Ref
	c    *core.Core
}

func (f *front) SetCore(c *core.Core) { f.c = c }
func (f *front) Init(name string)     { f.Name = name }

// Wire stores the outgoing reference and marks this complet as its owner (the
// runtime does that automatically for refs arriving in movement bundles;
// explicitly wired refs opt in here).
func (f *front) Wire(r *ref.Ref) error {
	self, err := f.c.RefOf(f)
	if err != nil {
		return err
	}
	r.SetOwner(self.Target())
	f.Out = r
	return nil
}

func (f *front) Call() (int, error) {
	if f.Out == nil {
		return 0, errors.New("front: not wired")
	}
	res, err := f.Out.Invoke("Pong")
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// back is the movable end of a chatty pair.
type back struct{ N int }

func (b *back) Init(string) {}
func (b *back) Pong() int   { b.N++; return b.N }

// --- cluster helper ----------------------------------------------------------

type cluster struct {
	t        testing.TB
	net      *netsim.Network
	dir      string        // journal dir; empty disables journaling
	timeout  time.Duration // per-request budget; zero means 10s
	cores    map[ids.CoreID]*core.Core
	shutOnce sync.Once
}

// close tears the cluster down; safe to call more than once (benchmarks close
// per iteration, the test Cleanup closes at the end regardless).
func (cl *cluster) close(abrupt bool) {
	cl.shutOnce.Do(func() {
		for _, c := range cl.cores {
			if abrupt {
				_ = c.ShutdownAbrupt()
			} else {
				_ = c.Shutdown(0)
			}
		}
		cl.net.Close()
	})
}

func newTestRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	reg := registry.New()
	for name, proto := range map[string]any{
		"Front": (*front)(nil),
		"Back":  (*back)(nil),
	} {
		if err := reg.Register(name, proto); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	return reg
}

func newCluster(t testing.TB, names ...string) *cluster {
	t.Helper()
	cl := &cluster{
		t:     t,
		net:   netsim.NewNetwork(11),
		cores: make(map[ids.CoreID]*core.Core, len(names)),
	}
	for _, name := range names {
		cl.start(ids.CoreID(name))
	}
	t.Cleanup(func() { cl.close(false) })
	return cl
}

func (cl *cluster) start(name ids.CoreID) *core.Core {
	cl.t.Helper()
	tr, err := transport.NewSim(cl.net, name)
	if err != nil {
		cl.t.Fatal(err)
	}
	timeout := cl.timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	opts := core.Options{RequestTimeout: timeout, Logf: func(string, ...any) {}}
	if cl.dir != "" {
		opts.JournalPath = fmt.Sprintf("%s/%s.journal", cl.dir, name)
		opts.Breaker = core.BreakerPolicy{Disable: true}
	}
	c, err := core.New(tr, newTestRegistry(cl.t), opts)
	if err != nil {
		cl.t.Fatal(err)
	}
	if cl.dir != "" {
		c.EnableHomeTracking()
	}
	cl.cores[name] = c
	return c
}

func (cl *cluster) core(name string) *core.Core { return cl.cores[ids.CoreID(name)] }

// pairUp creates a pinned front on frontCore and its movable back on
// backCore, wired with ownership, and returns both refs.
func (cl *cluster) pairUp(api *core.Core, frontCore, backCore string) (f, b *ref.Ref) {
	cl.t.Helper()
	f, err := api.NewCompletAt(ids.CoreID(frontCore), "Front", "f-"+frontCore)
	if err != nil {
		cl.t.Fatal(err)
	}
	b, err = api.NewCompletAt(ids.CoreID(backCore), "Back", "b-"+frontCore)
	if err != nil {
		cl.t.Fatal(err)
	}
	if _, err := f.Invoke("Wire", b); err != nil {
		cl.t.Fatal(err)
	}
	return f, b
}

func drive(t testing.TB, n int, fronts ...*ref.Ref) {
	t.Helper()
	for i := 0; i < n; i++ {
		for _, f := range fronts {
			if _, err := f.Invoke("Call"); err != nil {
				t.Fatalf("drive: %v", err)
			}
		}
	}
}

func locate(t testing.TB, c *core.Core, r *ref.Ref) ids.CoreID {
	t.Helper()
	loc, err := c.LocateComplet(r.Target())
	if err != nil {
		t.Fatal(err)
	}
	return loc
}

// --- closed-loop tests -------------------------------------------------------

// TestPlannerConvergesChattyPairs is the headline acceptance scenario: three
// cores, each with a pinned front whose chatty back was placed on the WRONG
// core; within 5 rounds the planner co-locates every pair.
func TestPlannerConvergesChattyPairs(t *testing.T) {
	cl := newCluster(t, "c1", "c2", "c3")
	c1 := cl.core("c1")
	names := []string{"c1", "c2", "c3"}

	var fronts, backs []*ref.Ref
	var pinned []ids.CompletID
	for i, n := range names {
		f, b := cl.pairUp(c1, n, names[(i+1)%len(names)])
		fronts, backs = append(fronts, f), append(backs, b)
		pinned = append(pinned, f.Target())
	}
	drive(t, 30, fronts...)

	p, err := Start(c1, Options{
		Cores:   []ids.CoreID{"c1", "c2", "c3"},
		Pinned:  pinned,
		MinGain: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	colocated := func() bool {
		for i := range fronts {
			if locate(t, c1, fronts[i]) != locate(t, c1, backs[i]) {
				return false
			}
		}
		return true
	}
	rounds := 0
	for ; rounds < 5 && !colocated(); rounds++ {
		if _, err := p.RunOnce(context.Background()); err != nil {
			t.Fatalf("round %d: %v", rounds+1, err)
		}
		drive(t, 5, fronts...)
	}
	if !colocated() {
		st := p.Status()
		t.Fatalf("not co-located after %d rounds; status: %+v", rounds, st)
	}
	t.Logf("converged in %d round(s)", rounds)

	// Fronts never moved: they are the deployment's anchors.
	for i, n := range names {
		if got := locate(t, c1, fronts[i]); got != ids.CoreID(n) {
			t.Fatalf("pinned front %d moved to %s", i, got)
		}
	}

	// The cross-core rate the planner sees must have collapsed.
	g, err := p.collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cross := g.CrossRate(); cross != 0 {
		t.Fatalf("cross rate after convergence = %v, want 0", cross)
	}

	// Applied moves were recorded in the flight ring.
	applied := 0
	for _, ev := range c1.Flight().Snapshot(0) {
		if ev.Kind == flight.KindPlanApplied {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("no planApplied flight events recorded")
	}
}

// TestPlannerDryRunProposesWithoutActing: dry-run mode records decisions and
// flight events but never moves a complet.
func TestPlannerDryRunProposesWithoutActing(t *testing.T) {
	cl := newCluster(t, "c1", "c2")
	c1 := cl.core("c1")
	f, b := cl.pairUp(c1, "c1", "c2")
	drive(t, 30, f)

	p, err := Start(c1, Options{
		Cores:   []ids.CoreID{"c1", "c2"},
		Pinned:  []ids.CompletID{f.Target()},
		MinGain: 0.05,
		DryRun:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	round, err := p.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Proposal.Moves) == 0 {
		t.Fatal("dry run proposed nothing for a chatty cross-core pair")
	}
	if round.Applied != 0 || !round.DryRun {
		t.Fatalf("round = %+v, want dry run with zero actuations", round)
	}
	if got := locate(t, c1, b); got != "c2" {
		t.Fatalf("back moved to %s in dry-run mode", got)
	}
	st := p.Status()
	if len(st.Decisions) == 0 || st.Decisions[0].Action != "dry-run" {
		t.Fatalf("decisions = %+v, want dry-run entries", st.Decisions)
	}
	skipped := 0
	for _, ev := range c1.Flight().Snapshot(0) {
		if ev.Kind == flight.KindPlanSkipped {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no planSkipped flight events for dry-run proposals")
	}
}

// TestPlannerHysteresisDamping: after the planner co-locates a pair, further
// rounds are quiescent — no oscillation even though the graph still has the
// (now intra-core) heavy edge.
func TestPlannerHysteresisDamping(t *testing.T) {
	cl := newCluster(t, "c1", "c2")
	c1 := cl.core("c1")
	f, b := cl.pairUp(c1, "c1", "c2")
	drive(t, 30, f)

	p, err := Start(c1, Options{
		Cores:   []ids.CoreID{"c1", "c2"},
		Pinned:  []ids.CompletID{f.Target()},
		MinGain: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	if _, err := p.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := locate(t, c1, b); got != "c1" {
		t.Fatalf("back at %s after round 1, want c1", got)
	}
	for i := 0; i < 3; i++ {
		drive(t, 5, f)
		round, err := p.RunOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(round.Proposal.Moves) != 0 {
			t.Fatalf("settled layout re-planned: %+v", round.Proposal.Moves)
		}
	}
	st := p.Status()
	if st.Applied != 1 {
		t.Fatalf("applied = %d, want exactly 1", st.Applied)
	}
}

// TestPlannerLifecycle covers the registry and the option plumbing.
func TestPlannerLifecycle(t *testing.T) {
	cl := newCluster(t, "c1", "c2")
	c1 := cl.core("c1")

	if _, ok := For(c1); ok {
		t.Fatal("For before Start should miss")
	}
	p, err := Start(c1, Options{Cores: []ids.CoreID{"c1", "c2"}})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := For(c1); !ok || got != p {
		t.Fatal("For should return the started planner")
	}
	if _, err := Start(c1, Options{}); err == nil {
		t.Fatal("second Start on the same core should fail")
	}
	st := p.Status()
	if st.MinGain != DefaultMinGain || st.Cooldown != DefaultCooldown.String() ||
		st.MaxMovesPerRound != DefaultMaxMovesPerRound {
		t.Fatalf("defaults not applied: %+v", st)
	}
	if st.Running {
		t.Fatal("planner with zero interval should not report running")
	}
	p.Stop()
	p.Stop() // idempotent
	if _, ok := For(c1); ok {
		t.Fatal("For after Stop should miss")
	}
	// A fresh planner can attach after the old one detached.
	p2, err := Start(c1, Options{Cores: []ids.CoreID{"c1"}})
	if err != nil {
		t.Fatal(err)
	}
	p2.Stop()
}

// TestPlannerClosedLoop: a background planner with a short interval converges
// without manual rounds.
func TestPlannerClosedLoop(t *testing.T) {
	cl := newCluster(t, "c1", "c2")
	c1 := cl.core("c1")
	f, b := cl.pairUp(c1, "c1", "c2")
	drive(t, 30, f)

	p, err := Start(c1, Options{
		Cores:    []ids.CoreID{"c1", "c2"},
		Pinned:   []ids.CompletID{f.Target()},
		MinGain:  0.05,
		Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for locate(t, c1, b) != "c1" {
		if time.Now().After(deadline) {
			t.Fatalf("closed loop did not converge; status %+v", p.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPlannerCollectorToleratesMissingCore: a dead member degrades the graph
// (reported in Missing) without failing the round.
func TestPlannerCollectorToleratesMissingCore(t *testing.T) {
	cl := newCluster(t, "c1", "c2")
	c1 := cl.core("c1")
	f, _ := cl.pairUp(c1, "c1", "c1")
	drive(t, 10, f)

	p, err := Start(c1, Options{Cores: []ids.CoreID{"c1", "c2", "ghost"}, MinGain: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	g, err := p.collect(ctx)
	if err != nil {
		t.Fatalf("collect with one dead member: %v", err)
	}
	if len(g.Missing) != 1 || g.Missing[0] != "ghost" {
		t.Fatalf("Missing = %v, want [ghost]", g.Missing)
	}
	if _, ok := g.Load["c2"]; !ok {
		t.Fatal("live member c2 not collected")
	}
}

// TestPlannerDynamicMembership: with no configured member list the domain
// follows the core's peer set round to round — a planner started before the
// deployment finished joining still converges over cores it met later.
func TestPlannerDynamicMembership(t *testing.T) {
	cl := newCluster(t, "c1", "c2")
	c1 := cl.core("c1")

	p, err := Start(c1, Options{MinGain: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if got := p.Status().Cores; len(got) != 1 || got[0] != "c1" {
		t.Fatalf("members before any contact = %v, want just [c1]", got)
	}

	// Meeting c2 (complet creation + traffic) grows the domain.
	f, b := cl.pairUp(c1, "c1", "c2")
	p.Pin(f.Target())
	drive(t, 30, f)
	if got := p.Status().Cores; len(got) != 2 {
		t.Fatalf("members after contact = %v, want [c1 c2]", got)
	}

	// And the planner acts across the discovered member.
	if _, err := p.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := locate(t, c1, b); got != "c1" {
		t.Fatalf("back at %s after dynamic-membership round, want c1", got)
	}
}

// TestPlanScriptAction drives the registered "plan" layout-script action
// against a live planner: dry-run proposes without acting, run actuates, and
// status/unknown modes behave.
func TestPlanScriptAction(t *testing.T) {
	cl := newCluster(t, "c1", "c2")
	c1 := cl.core("c1")
	f, b := cl.pairUp(c1, "c1", "c2")
	drive(t, 30, f)

	rt, err := script.NewCoreRuntime(c1, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := planAction(rt, nil); err == nil {
		t.Fatal("plan action without a planner should fail")
	}

	p, err := Start(c1, Options{
		Cores:   []ids.CoreID{"c1", "c2"},
		Pinned:  []ids.CompletID{f.Target()},
		MinGain: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	if err := planAction(rt, []script.Value{"dry-run"}); err != nil {
		t.Fatalf("dry-run action: %v", err)
	}
	if got := locate(t, c1, b); got != "c2" {
		t.Fatalf("dry-run action moved the back to %s", got)
	}
	if err := planAction(rt, []script.Value{"run"}); err != nil {
		t.Fatalf("run action: %v", err)
	}
	if got := locate(t, c1, b); got != "c1" {
		t.Fatalf("back at %s after run action, want c1", got)
	}
	if err := planAction(rt, []script.Value{"status"}); err != nil {
		t.Fatalf("status action: %v", err)
	}
	if err := planAction(rt, []script.Value{"bogus"}); err == nil {
		t.Fatal("unknown mode should fail")
	}
}
