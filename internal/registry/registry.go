// Package registry implements the anchor type registry and the reflective
// invocation dispatcher. The original FarGo ships a compiler that generates
// stub classes from anchor classes; in Go the equivalent contract is provided
// dynamically: anchor types register under a name, complets are instantiated
// from registered types (locally or remotely by name), and methods are
// dispatched by name via reflection (see DESIGN.md substitutions).
package registry

import (
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"runtime/debug"
	"sort"
	"sync"
)

var (
	// ErrUnknownType is returned when instantiating an unregistered type.
	ErrUnknownType = errors.New("registry: unknown complet type")
	// ErrNoMethod is returned when dispatching to a missing method.
	ErrNoMethod = errors.New("registry: no such method")
)

// InitMethod is the optional constructor method name: if a registered anchor
// type has a method Init(...), New invokes it with the instantiation
// arguments.
const InitMethod = "Init"

var errType = reflect.TypeOf((*error)(nil)).Elem()

// Registry maps complet type names to anchor types. Safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	types map[string]reflect.Type // element (struct) type, instantiated as pointer
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{types: make(map[string]reflect.Type)}
}

// Register records an anchor type under the given name. The prototype must
// be a (possibly nil) pointer to the anchor struct, e.g. (*Message)(nil).
// The type is also registered with gob so instances can travel in movement
// bundles. Registering the same name/type pair twice is a no-op; registering
// a different type under an existing name is an error.
func (r *Registry) Register(name string, prototype any) error {
	if name == "" {
		return fmt.Errorf("registry: empty type name")
	}
	t := reflect.TypeOf(prototype)
	if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("registry: prototype for %q must be a pointer to struct, got %T", name, prototype)
	}
	elem := t.Elem()

	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.types[name]; ok {
		if existing == elem {
			return nil
		}
		return fmt.Errorf("registry: type name %q already registered for %v", name, existing)
	}
	// gob allows exactly one wire name per Go type (its registry is
	// process-global), so aliasing one anchor type under several names is
	// rejected up front — across all Registry instances.
	gobNames.Lock()
	defer gobNames.Unlock()
	if existing, ok := gobNames.m[elem]; ok {
		if existing != name {
			return fmt.Errorf("registry: type %v already registered as %q", elem, existing)
		}
	} else {
		// Register the pointer form with gob under the type name so
		// closure payloads decode to the right dynamic type on any core.
		gob.RegisterName("fargo/"+name, reflect.New(elem).Interface())
		gobNames.m[elem] = name
	}
	r.types[name] = elem
	return nil
}

// gobNames guards the process-global gob registration of anchor types.
var gobNames = struct {
	sync.Mutex
	m map[reflect.Type]string
}{m: make(map[reflect.Type]string)}

// Lookup returns the anchor struct type registered under name.
func (r *Registry) Lookup(name string) (reflect.Type, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.types[name]
	return t, ok
}

// TypeNameOf returns the registered name for the dynamic type of anchor, if
// any.
func (r *Registry) TypeNameOf(anchor any) (string, bool) {
	t := reflect.TypeOf(anchor)
	if t == nil || t.Kind() != reflect.Pointer {
		return "", false
	}
	elem := t.Elem()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, typ := range r.types {
		if typ == elem {
			return name, true
		}
	}
	return "", false
}

// Names lists the registered type names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.types))
	for name := range r.types {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Instantiate creates a fresh anchor of the named type and runs its Init
// method with the given arguments, if one is declared. Passing arguments to a
// type without Init is an error.
func (r *Registry) Instantiate(name string, args []any) (any, error) {
	r.mu.RLock()
	t, ok := r.types[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, name)
	}
	anchor := reflect.New(t).Interface()
	if _, hasInit := reflect.TypeOf(anchor).MethodByName(InitMethod); hasInit {
		if _, err := Invoke(anchor, InitMethod, args); err != nil {
			return nil, fmt.Errorf("registry: init %q: %w", name, err)
		}
		return anchor, nil
	}
	if len(args) > 0 {
		return nil, fmt.Errorf("registry: type %q takes no constructor arguments (no %s method)", name, InitMethod)
	}
	return anchor, nil
}

// PanicError is returned by Invoke when the anchor method panicked. The
// dispatcher recovers the panic so a buggy complet fails one invocation with
// a diagnosable error instead of killing its whole hosting core; the stack
// trace of the panicking goroutine is embedded in the message.
type PanicError struct {
	Method string
	Value  any
	Stack  string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("registry: method %s panicked: %v\n%s", e.Method, e.Value, e.Stack)
}

// Invoke calls the named exported method on the anchor with the given
// arguments. A trailing error return value is split off and returned as the
// invocation error; all other return values are returned as the result
// vector. Numeric arguments are converted when the value is convertible to
// the parameter type (gob may widen integers across the wire). A panic in the
// method is recovered into a *PanicError.
func Invoke(anchor any, method string, args []any) (results []any, err error) {
	defer func() {
		if r := recover(); r != nil {
			results = nil
			err = &PanicError{
				Method: fmt.Sprintf("%T.%s", anchor, method),
				Value:  r,
				Stack:  string(debug.Stack()),
			}
		}
	}()
	return invoke(anchor, method, args)
}

func invoke(anchor any, method string, args []any) ([]any, error) {
	v := reflect.ValueOf(anchor)
	if !v.IsValid() {
		return nil, fmt.Errorf("registry: invoke %q on nil anchor", method)
	}
	m := v.MethodByName(method)
	if !m.IsValid() {
		return nil, fmt.Errorf("%w: %T.%s", ErrNoMethod, anchor, method)
	}
	mt := m.Type()
	if mt.IsVariadic() {
		return nil, fmt.Errorf("registry: method %T.%s is variadic; variadic anchor methods are not supported", anchor, method)
	}
	if mt.NumIn() != len(args) {
		return nil, fmt.Errorf("registry: method %T.%s takes %d arguments, got %d", anchor, method, mt.NumIn(), len(args))
	}
	in := make([]reflect.Value, len(args))
	for i, arg := range args {
		want := mt.In(i)
		converted, err := convertArg(arg, want)
		if err != nil {
			return nil, fmt.Errorf("registry: %T.%s argument %d: %w", anchor, method, i, err)
		}
		in[i] = converted
	}
	out := m.Call(in)

	// Split a trailing error return off the result vector.
	var invErr error
	if n := len(out); n > 0 && mt.Out(n-1) == errType {
		if !out[n-1].IsNil() {
			invErr, _ = out[n-1].Interface().(error)
		}
		out = out[:n-1]
	}
	results := make([]any, len(out))
	for i, o := range out {
		results[i] = o.Interface()
	}
	return results, invErr
}

// convertArg adapts one argument to the method's parameter type.
func convertArg(arg any, want reflect.Type) (reflect.Value, error) {
	if arg == nil {
		switch want.Kind() {
		case reflect.Pointer, reflect.Interface, reflect.Slice, reflect.Map, reflect.Chan, reflect.Func:
			return reflect.Zero(want), nil
		default:
			return reflect.Value{}, fmt.Errorf("nil is not a valid %v", want)
		}
	}
	v := reflect.ValueOf(arg)
	if v.Type() == want {
		return v, nil
	}
	if v.Type().AssignableTo(want) {
		return v, nil
	}
	if isNumeric(v.Kind()) && isNumeric(want.Kind()) && v.Type().ConvertibleTo(want) {
		return v.Convert(want), nil
	}
	return reflect.Value{}, fmt.Errorf("cannot use %T as %v", arg, want)
}

func isNumeric(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return true
	default:
		return false
	}
}

// Methods lists the exported method names of the anchor's dynamic type, in
// sorted order (used by the administration shell for introspection).
func Methods(anchor any) []string {
	t := reflect.TypeOf(anchor)
	if t == nil {
		return nil
	}
	out := make([]string, 0, t.NumMethod())
	for i := 0; i < t.NumMethod(); i++ {
		out = append(out, t.Method(i).Name)
	}
	sort.Strings(out)
	return out
}
