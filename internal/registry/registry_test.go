package registry

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// message mirrors the paper's Figure 3 Message complet.
type message struct {
	Msg   string
	Calls int
}

func (m *message) Init(msg string) { m.Msg = msg }

func (m *message) Print() string {
	m.Calls++
	return m.Msg
}

func (m *message) Set(msg string) { m.Msg = msg }

func (m *message) Both() (string, int) { return m.Msg, m.Calls }

func (m *message) Fail() error { return errors.New("deliberate") }

func (m *message) Div(a, b int) (int, error) {
	if b == 0 {
		return 0, errors.New("division by zero")
	}
	return a / b, nil
}

// plain has no Init.
type plain struct {
	N int
}

func (p *plain) Bump(by int64) int64 {
	p.N += int(by)
	return int64(p.N)
}

func TestRegisterAndInstantiate(t *testing.T) {
	r := New()
	if err := r.Register("Message", (*message)(nil)); err != nil {
		t.Fatal(err)
	}
	a, err := r.Instantiate("Message", []any{"hello"})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := a.(*message)
	if !ok {
		t.Fatalf("instantiated %T", a)
	}
	if m.Msg != "hello" {
		t.Fatalf("Init not applied: %+v", m)
	}
}

func TestInstantiateUnknown(t *testing.T) {
	r := New()
	if _, err := r.Instantiate("Ghost", nil); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestInstantiateNoInitRejectsArgs(t *testing.T) {
	r := New()
	if err := r.Register("Plain", (*plain)(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Instantiate("Plain", []any{1}); err == nil {
		t.Fatal("args without Init should fail")
	}
	a, err := r.Instantiate("Plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(*plain); !ok {
		t.Fatalf("type %T", a)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	if err := r.Register("", (*plain)(nil)); err == nil {
		t.Error("empty name should fail")
	}
	if err := r.Register("X", plain{}); err == nil {
		t.Error("non-pointer prototype should fail")
	}
	if err := r.Register("X", 42); err == nil {
		t.Error("non-struct prototype should fail")
	}
	type validationOnly struct{ V int }
	if err := r.Register("ValOnly", (*validationOnly)(nil)); err != nil {
		t.Fatal(err)
	}
	// Idempotent for the same pair.
	if err := r.Register("ValOnly", (*validationOnly)(nil)); err != nil {
		t.Errorf("re-register same pair: %v", err)
	}
	// Conflicting type under same name fails.
	if err := r.Register("ValOnly", (*message)(nil)); err == nil {
		t.Error("conflicting registration should fail")
	}
}

func TestTypeNameOf(t *testing.T) {
	r := New()
	if err := r.Register("Message", (*message)(nil)); err != nil {
		t.Fatal(err)
	}
	name, ok := r.TypeNameOf(&message{})
	if !ok || name != "Message" {
		t.Fatalf("TypeNameOf = %q, %v", name, ok)
	}
	if _, ok := r.TypeNameOf(&plain{}); ok {
		t.Fatal("unregistered type should not resolve")
	}
	if _, ok := r.TypeNameOf(nil); ok {
		t.Fatal("nil should not resolve")
	}
}

type zetaT struct{ A int }
type alphaT struct{ B int }
type midT struct{ C int }

func TestNames(t *testing.T) {
	r := New()
	if err := r.Register("Zeta", (*zetaT)(nil)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("Alpha", (*alphaT)(nil)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("Mid", (*midT)(nil)); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if fmt.Sprint(names) != "[Alpha Mid Zeta]" {
		t.Fatalf("Names = %v", names)
	}
}

func TestAliasRejected(t *testing.T) {
	r := New()
	type aliased struct{ X int }
	if err := r.Register("First", (*aliased)(nil)); err != nil {
		t.Fatal(err)
	}
	err := r.Register("Second", (*aliased)(nil))
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("aliasing one type under two names: err = %v", err)
	}
}

func TestInvokeBasics(t *testing.T) {
	m := &message{Msg: "hi"}
	out, err := Invoke(m, "Print", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "hi" {
		t.Fatalf("out = %v", out)
	}
	if m.Calls != 1 {
		t.Fatal("method did not run on the receiver")
	}
}

func TestInvokeWithArgs(t *testing.T) {
	m := &message{}
	if _, err := Invoke(m, "Set", []any{"new"}); err != nil {
		t.Fatal(err)
	}
	if m.Msg != "new" {
		t.Fatalf("Msg = %q", m.Msg)
	}
}

func TestInvokeMultipleResults(t *testing.T) {
	m := &message{Msg: "x", Calls: 3}
	out, err := Invoke(m, "Both", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != "x" || out[1] != 3 {
		t.Fatalf("out = %v", out)
	}
}

func TestInvokeTrailingError(t *testing.T) {
	m := &message{}
	if _, err := Invoke(m, "Fail", nil); err == nil || err.Error() != "deliberate" {
		t.Fatalf("err = %v", err)
	}
	out, err := Invoke(m, "Div", []any{10, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 5 {
		t.Fatalf("out = %v", out)
	}
	if _, err := Invoke(m, "Div", []any{1, 0}); err == nil {
		t.Fatal("Div by zero should surface the error")
	}
}

func TestInvokeNumericConversion(t *testing.T) {
	p := &plain{}
	// Bump takes int64; pass an int (as gob might widen/narrow).
	out, err := Invoke(p, "Bump", []any{int(5)})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != int64(5) {
		t.Fatalf("out = %v", out)
	}
}

func TestInvokeErrors(t *testing.T) {
	m := &message{}
	if _, err := Invoke(m, "NoSuch", nil); !errors.Is(err, ErrNoMethod) {
		t.Fatalf("missing method: %v", err)
	}
	if _, err := Invoke(m, "Set", nil); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := Invoke(m, "Set", []any{42}); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := Invoke(nil, "X", nil); err == nil {
		t.Fatal("nil anchor should fail")
	}
}

func TestInvokeNilArg(t *testing.T) {
	s := &sink{}
	if _, err := Invoke(s, "TakePtr", []any{nil}); err != nil {
		t.Fatalf("nil for pointer param: %v", err)
	}
	if !s.sawNil {
		t.Fatal("method did not observe nil")
	}
	if _, err := Invoke(s, "TakeInt", []any{nil}); err == nil {
		t.Fatal("nil for int param should fail")
	}
}

type sink struct{ sawNil bool }

func (s *sink) TakePtr(p *plain) { s.sawNil = p == nil }
func (s *sink) TakeInt(int)      {}

type variadicAnchor struct{}

func (variadicAnchor) Sum(xs ...int) int { return len(xs) }

func TestInvokeVariadicRejected(t *testing.T) {
	if _, err := Invoke(&variadicAnchor{}, "Sum", []any{1, 2}); err == nil {
		t.Fatal("variadic methods must be rejected with a clear error")
	}
}

func TestMethodsListing(t *testing.T) {
	ms := Methods(&message{})
	want := []string{"Both", "Div", "Fail", "Init", "Print", "Set"}
	if fmt.Sprint(ms) != fmt.Sprint(want) {
		t.Fatalf("Methods = %v, want %v", ms, want)
	}
	if Methods(nil) != nil {
		t.Fatal("Methods(nil) should be nil")
	}
}

type bomb struct{}

func (b *bomb) Explode() string { panic("registry test explosion") }
func (b *bomb) Calm() string    { return "calm" }

func TestInvokePanicRecovered(t *testing.T) {
	results, err := Invoke(&bomb{}, "Explode", nil)
	if results != nil {
		t.Fatalf("results = %v, want nil after a panic", results)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "registry test explosion" {
		t.Fatalf("recovered value = %v", pe.Value)
	}
	if !strings.Contains(pe.Stack, "Explode") {
		t.Fatal("stack trace does not mention the panicking method")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error message lacks panic diagnosis: %v", err)
	}
	// The dispatcher (and the anchor) keep working after a recovered panic.
	results, err = Invoke(&bomb{}, "Calm", nil)
	if err != nil || len(results) != 1 || results[0] != "calm" {
		t.Fatalf("Invoke after panic = %v, %v", results, err)
	}
}
