// Package stubgen generates typed stub wrappers for complet anchor types —
// the Go counterpart of the FarGo Compiler (§3.1, §5), which "accepts as
// input the anchor class" and emits a stub class "with identical signatures
// of methods and constructors".
//
// Given Go source declaring an anchor struct, stubgen emits, into the same
// package, a value type wrapping *ref.Ref with one typed method per exported
// anchor method:
//
//	type MessageStub struct{ Ref *ref.Ref }
//	func (s MessageStub) Print() (string, error) { ... }
//	func (s MessageStub) PrintCtx(ctx context.Context, opts ...ref.InvokeOption) (string, error) { ... }
//
// plus a typed spawn function when the anchor declares an Init constructor.
// Every method comes in two flavors: the plain one runs under the core's
// default request budget, while the Ctx variant threads the caller's
// context (deadline, cancellation) and per-call options end to end.
// Dynamic Invoke remains available for tooling; generated stubs restore the
// paper's syntactic transparency for application code.
package stubgen

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// Method describes one generatable anchor method.
type Method struct {
	Name    string
	Params  []Param
	Results []string // rendered result types, excluding a trailing error
	// HasError reports whether the anchor method's last result is error.
	HasError bool
}

// Param is one method parameter.
type Param struct {
	Name string
	Type string
}

// Anchor describes a parsed anchor type.
type Anchor struct {
	Package string
	Name    string
	Init    *Method // nil when the anchor has no Init constructor
	Methods []Method
	Skipped []string // exported methods skipped (unsupported signatures)
}

// Parse extracts the anchor description for typeName from Go source files
// (filename → contents). All files must belong to one package.
func Parse(files map[string][]byte, typeName string) (*Anchor, error) {
	if typeName == "" {
		return nil, fmt.Errorf("stubgen: type name required")
	}
	fset := token.NewFileSet()
	var (
		pkgName   string
		typeFound bool
		methods   []Method
		skipped   []string
		initM     *Method
	)
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("stubgen: parse %s: %w", name, err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if pkgName != f.Name.Name {
			return nil, fmt.Errorf("stubgen: mixed packages %q and %q", pkgName, f.Name.Name)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if ts.Name.Name == typeName {
						if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
							return nil, fmt.Errorf("stubgen: type %s is not a struct", typeName)
						}
						typeFound = true
					}
				}
			case *ast.FuncDecl:
				if d.Recv == nil || len(d.Recv.List) != 1 {
					continue
				}
				if recvTypeName(d.Recv.List[0].Type) != typeName {
					continue
				}
				if !d.Name.IsExported() && d.Name.Name != "Init" {
					continue
				}
				m, err := methodFromDecl(fset, d)
				if err != nil {
					skipped = append(skipped, fmt.Sprintf("%s (%v)", d.Name.Name, err))
					continue
				}
				if m.Name == "Init" {
					initCopy := *m
					initM = &initCopy
					continue
				}
				methods = append(methods, *m)
			}
		}
	}
	if pkgName == "" {
		return nil, fmt.Errorf("stubgen: no Go source given")
	}
	if !typeFound {
		return nil, fmt.Errorf("stubgen: type %s not found in package %s", typeName, pkgName)
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i].Name < methods[j].Name })
	sort.Strings(skipped)
	return &Anchor{
		Package: pkgName,
		Name:    typeName,
		Init:    initM,
		Methods: methods,
		Skipped: skipped,
	}, nil
}

// recvTypeName unwraps *T / T receivers.
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	default:
		return ""
	}
}

func methodFromDecl(fset *token.FileSet, d *ast.FuncDecl) (*Method, error) {
	ft := d.Type
	m := &Method{Name: d.Name.Name}
	if ft.Params != nil {
		n := 0
		for _, field := range ft.Params.List {
			if _, variadic := field.Type.(*ast.Ellipsis); variadic {
				return nil, fmt.Errorf("variadic parameters are not invocable")
			}
			typ, err := renderType(fset, field.Type)
			if err != nil {
				return nil, err
			}
			if len(field.Names) == 0 {
				m.Params = append(m.Params, Param{Name: fmt.Sprintf("a%d", n), Type: typ})
				n++
				continue
			}
			for _, name := range field.Names {
				pname := name.Name
				if pname == "_" || pname == "" {
					pname = fmt.Sprintf("a%d", n)
				}
				m.Params = append(m.Params, Param{Name: pname, Type: typ})
				n++
			}
		}
	}
	if ft.Results != nil {
		var rendered []string
		for _, field := range ft.Results.List {
			typ, err := renderType(fset, field.Type)
			if err != nil {
				return nil, err
			}
			count := len(field.Names)
			if count == 0 {
				count = 1
			}
			for i := 0; i < count; i++ {
				rendered = append(rendered, typ)
			}
		}
		if len(rendered) > 0 && rendered[len(rendered)-1] == "error" {
			m.HasError = true
			rendered = rendered[:len(rendered)-1]
		}
		for _, r := range rendered {
			if r == "error" {
				return nil, fmt.Errorf("error result in non-trailing position")
			}
		}
		m.Results = rendered
	}
	return m, nil
}

func renderType(fset *token.FileSet, expr ast.Expr) (string, error) {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, expr); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// Generate renders the stub source for an anchor. The output belongs to the
// anchor's own package and imports fargo/internal/ref (or the public module
// path given in refImport).
func Generate(a *Anchor, refImport string) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("stubgen: nil anchor")
	}
	if refImport == "" {
		refImport = "fargo/internal/ref"
	}
	stubName := a.Name + "Stub"
	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated by fargo-stubgen from anchor type %s. DO NOT EDIT.\n", a.Name)
	fmt.Fprintf(&b, "//\n// The stub has the anchor's method signatures (plus an error result per\n")
	fmt.Fprintf(&b, "// method, since every invocation may cross the network) and delegates to\n")
	fmt.Fprintf(&b, "// the tracked complet reference — the paper's compiler-generated stub.\n")
	fmt.Fprintf(&b, "package %s\n\n", a.Package)
	fmt.Fprintf(&b, "import (\n\t\"context\"\n\t\"fmt\"\n\n\tref %q\n)\n\n", refImport)

	fmt.Fprintf(&b, "// %s is a typed stub for %s complets.\n", stubName, a.Name)
	fmt.Fprintf(&b, "type %s struct {\n\tRef *ref.Ref\n}\n\n", stubName)
	fmt.Fprintf(&b, "// As%s wraps a complet reference in the typed stub.\n", a.Name)
	fmt.Fprintf(&b, "func As%s(r *ref.Ref) %s { return %s{Ref: r} }\n\n", a.Name, stubName, stubName)

	for _, skip := range a.Skipped {
		fmt.Fprintf(&b, "// NOTE: anchor method %s was skipped by stubgen.\n", skip)
	}
	if len(a.Skipped) > 0 {
		fmt.Fprintln(&b)
	}

	for _, m := range a.Methods {
		params := make([]string, len(m.Params))
		argNames := make([]string, len(m.Params))
		for i, p := range m.Params {
			params[i] = p.Name + " " + p.Type
			argNames[i] = p.Name
		}
		rets := append([]string{}, m.Results...)
		rets = append(rets, "error")
		retList := strings.Join(rets, ", ")
		zeroReturns := func(errExpr string) string {
			outs := make([]string, 0, len(m.Results)+1)
			for i := range m.Results {
				outs = append(outs, fmt.Sprintf("r%d", i))
			}
			outs = append(outs, errExpr)
			return strings.Join(outs, ", ")
		}

		// Plain variant: runs under the core's default request budget.
		fmt.Fprintf(&b, "// %s invokes %s.%s through the reference under the core's\n// default request budget.\n", m.Name, a.Name, m.Name)
		fmt.Fprintf(&b, "func (s %s) %s(%s) (%s) {\n", stubName, m.Name, strings.Join(params, ", "), retList)
		delegate := "s." + m.Name + "Ctx(context.Background()"
		if len(argNames) > 0 {
			delegate += ", " + strings.Join(argNames, ", ")
		}
		delegate += ")"
		fmt.Fprintf(&b, "\treturn %s\n}\n\n", delegate)

		// Ctx variant: the caller's deadline/cancellation and per-call
		// options travel with the invocation.
		ctxParams := append([]string{"ctx context.Context"}, params...)
		ctxParams = append(ctxParams, "opts ...ref.InvokeOption")
		fmt.Fprintf(&b, "// %sCtx invokes %s.%s under the caller's context: its deadline\n// and cancellation bound the whole invocation, including forwarding hops.\n", m.Name, a.Name, m.Name)
		fmt.Fprintf(&b, "func (s %s) %sCtx(%s) (%s) {\n",
			stubName, m.Name, strings.Join(ctxParams, ", "), retList)
		for i, r := range m.Results {
			fmt.Fprintf(&b, "\tvar r%d %s\n", i, r)
		}
		fmt.Fprintf(&b, "\tcallArgs := make([]any, 0, %d+len(opts))\n", len(argNames))
		for _, n := range argNames {
			fmt.Fprintf(&b, "\tcallArgs = append(callArgs, %s)\n", n)
		}
		fmt.Fprintf(&b, "\tfor _, o := range opts {\n\t\tcallArgs = append(callArgs, o)\n\t}\n")
		call := fmt.Sprintf("s.Ref.InvokeCtx(ctx, %q, callArgs...)", m.Name)
		if len(m.Results) == 0 {
			fmt.Fprintf(&b, "\t_, err := %s\n\treturn %s\n}\n\n", call, zeroReturns("err"))
			continue
		}
		fmt.Fprintf(&b, "\tres, err := %s\n", call)
		fmt.Fprintf(&b, "\tif err != nil {\n\t\treturn %s\n\t}\n", zeroReturns("err"))
		fmt.Fprintf(&b, "\tif len(res) != %d {\n\t\treturn %s\n\t}\n",
			len(m.Results),
			zeroReturns(fmt.Sprintf("fmt.Errorf(\"%s.%s: %%d results, want %d\", len(res))", stubName, m.Name, len(m.Results))))
		for i, r := range m.Results {
			fmt.Fprintf(&b, "\tv%d, ok%d := res[%d].(%s)\n", i, i, i, r)
			fmt.Fprintf(&b, "\tif !ok%d {\n\t\treturn %s\n\t}\n\tr%d = v%d\n",
				i,
				zeroReturns(fmt.Sprintf("fmt.Errorf(\"%s.%s: result %d is %%T, want %s\", res[%d])", stubName, m.Name, i, escapeType(r), i)),
				i, i)
		}
		fmt.Fprintf(&b, "\treturn %s\n}\n\n", zeroReturns("nil"))
	}

	out, err := format.Source([]byte(b.String()))
	if err != nil {
		return nil, fmt.Errorf("stubgen: generated code does not format (bug): %w\n%s", err, b.String())
	}
	return out, nil
}

// escapeType makes a type string safe inside a quoted format string.
func escapeType(t string) string {
	t = strings.ReplaceAll(t, `"`, `\"`)
	return strings.ReplaceAll(t, "%", "%%")
}
