package stubgen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const sampleSrc = `package sample

type Message struct {
	Msg string
}

func (m *Message) Init(msg string) { m.Msg = msg }

func (m *Message) Print() string { return m.Msg }

func (m *Message) Set(msg string) { m.Msg = msg }

func (m *Message) Both() (string, int) { return m.Msg, 1 }

func (m *Message) Div(a, b int) (int, error) {
	return a / b, nil
}

func (m *Message) Sum(xs ...int) int { return len(xs) } // variadic: skipped

func (m *Message) unexported() {} // skipped silently

type Other struct{}

func (o *Other) NotMine() {}
`

func parseSample(t *testing.T) *Anchor {
	t.Helper()
	a, err := Parse(map[string][]byte{"sample.go": []byte(sampleSrc)}, "Message")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestParseAnchor(t *testing.T) {
	a := parseSample(t)
	if a.Package != "sample" || a.Name != "Message" {
		t.Fatalf("anchor = %+v", a)
	}
	if a.Init == nil || len(a.Init.Params) != 1 || a.Init.Params[0].Type != "string" {
		t.Fatalf("init = %+v", a.Init)
	}
	names := make([]string, len(a.Methods))
	for i, m := range a.Methods {
		names[i] = m.Name
	}
	if got, want := strings.Join(names, ","), "Both,Div,Print,Set"; got != want {
		t.Fatalf("methods = %s, want %s", got, want)
	}
	if len(a.Skipped) != 1 || !strings.Contains(a.Skipped[0], "Sum") {
		t.Fatalf("skipped = %v", a.Skipped)
	}
	// Div: trailing error folded.
	for _, m := range a.Methods {
		if m.Name == "Div" {
			if !m.HasError || len(m.Results) != 1 || m.Results[0] != "int" {
				t.Fatalf("Div = %+v", m)
			}
			if len(m.Params) != 2 || m.Params[0].Name != "a" || m.Params[1].Name != "b" {
				t.Fatalf("Div params = %+v", m.Params)
			}
		}
		if m.Name == "Both" {
			if m.HasError || len(m.Results) != 2 {
				t.Fatalf("Both = %+v", m)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil, "X"); err == nil {
		t.Error("no files should fail")
	}
	if _, err := Parse(map[string][]byte{"a.go": []byte("package p")}, "Ghost"); err == nil {
		t.Error("missing type should fail")
	}
	if _, err := Parse(map[string][]byte{"a.go": []byte("not go")}, "X"); err == nil {
		t.Error("bad source should fail")
	}
	if _, err := Parse(map[string][]byte{"a.go": []byte("package p\ntype X int")}, "X"); err == nil {
		t.Error("non-struct anchor should fail")
	}
	if _, err := Parse(map[string][]byte{
		"a.go": []byte("package p\ntype X struct{}"),
		"b.go": []byte("package q"),
	}, "X"); err == nil {
		t.Error("mixed packages should fail")
	}
}

func TestGenerateCompilesSyntactically(t *testing.T) {
	a := parseSample(t)
	out, err := Generate(a, "")
	if err != nil {
		t.Fatal(err)
	}
	src := string(out)
	for _, want := range []string{
		"package sample",
		"type MessageStub struct",
		"func AsMessage(r *ref.Ref) MessageStub",
		"func (s MessageStub) Print() (string, error)",
		"func (s MessageStub) Set(msg string) error",
		"func (s MessageStub) Both() (string, int, error)",
		"func (s MessageStub) Div(a int, b int) (int, error)",
		"func (s MessageStub) PrintCtx(ctx context.Context, opts ...ref.InvokeOption) (string, error)",
		"func (s MessageStub) SetCtx(ctx context.Context, msg string, opts ...ref.InvokeOption) error",
		"func (s MessageStub) DivCtx(ctx context.Context, a int, b int, opts ...ref.InvokeOption) (int, error)",
		"s.Ref.InvokeCtx(ctx, \"Print\", callArgs...)",
		"NOTE: anchor method Sum",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated stub missing %q\n%s", want, src)
		}
	}
	// The generated file must parse as Go.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "stub.go", out, 0); err != nil {
		t.Fatalf("generated stub does not parse: %v\n%s", err, src)
	}
}

func TestGenerateNilAnchor(t *testing.T) {
	if _, err := Generate(nil, ""); err == nil {
		t.Fatal("nil anchor should fail")
	}
}

func TestParamlessNamelessParams(t *testing.T) {
	src := `package p
type T struct{}
func (t *T) F(int, string) {}`
	a, err := Parse(map[string][]byte{"p.go": []byte(src)}, "T")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Methods) != 1 || len(a.Methods[0].Params) != 2 {
		t.Fatalf("methods = %+v", a.Methods)
	}
	if a.Methods[0].Params[0].Name != "a0" || a.Methods[0].Params[1].Name != "a1" {
		t.Fatalf("params = %+v", a.Methods[0].Params)
	}
	if _, err := Generate(a, ""); err != nil {
		t.Fatal(err)
	}
}

func TestNonTrailingErrorSkipped(t *testing.T) {
	src := `package p
type T struct{}
func (t *T) Bad() (error, int) { return nil, 0 }`
	a, err := Parse(map[string][]byte{"p.go": []byte(src)}, "T")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Methods) != 0 || len(a.Skipped) != 1 {
		t.Fatalf("anchor = %+v", a)
	}
}
