// Package layoutview maintains a live model of which complets reside on
// which cores — the data behind the paper's graphical monitor (Figure 4).
// The view seeds itself with CoreInfo snapshots and then stays current by
// subscribing to completArrived/completDeparted events on every watched
// core, exactly like the original viewer ("a movement of a complet is
// tracked by the viewer, who listens for such events at the inspected
// cores"). cmd/fargo-monitor renders it in a terminal; experiment E10
// measures its event-to-view latency.
package layoutview

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fargo/internal/core"
	"fargo/internal/ids"
	"fargo/internal/wire"
)

// Entry is one complet in the view.
type Entry struct {
	ID       ids.CompletID
	TypeName string
	Names    []string
	Core     ids.CoreID
	// Seen is when the entry last changed.
	Seen time.Time
}

// View is a live layout model. Safe for concurrent use.
type View struct {
	c     *core.Core
	cores []ids.CoreID

	mu      sync.Mutex
	entries map[ids.CompletID]Entry
	events  uint64
	updated time.Time
	cancels []func()
	closed  bool

	// OnChange, if set before Start, runs after every view mutation
	// (rendering hooks, experiment probes).
	OnChange func()
}

// New builds a view that watches the given cores through the observer core
// obs (which may itself be one of them).
func New(obs *core.Core, cores []ids.CoreID) *View {
	return &View{
		c:       obs,
		cores:   append([]ids.CoreID(nil), cores...),
		entries: make(map[ids.CompletID]Entry),
	}
}

// Start subscribes to layout events on every watched core and seeds the view
// with snapshots.
func (v *View) Start() error {
	for _, watched := range v.cores {
		w := watched
		arr, err := v.c.Monitor().SubscribeAt(w, core.SubscribeOptions{Service: core.EventCompletArrived}, func(ev core.Event) {
			v.onArrived(w, ev)
		})
		if err != nil {
			v.Close()
			return fmt.Errorf("layoutview: subscribe arrivals at %s: %w", w, err)
		}
		v.addCancel(func() { _ = v.c.Monitor().UnsubscribeAt(w, arr) })

		dep, err := v.c.Monitor().SubscribeAt(w, core.SubscribeOptions{Service: core.EventCompletDeparted}, func(ev core.Event) {
			v.onDeparted(w, ev)
		})
		if err != nil {
			v.Close()
			return fmt.Errorf("layoutview: subscribe departures at %s: %w", w, err)
		}
		v.addCancel(func() { _ = v.c.Monitor().UnsubscribeAt(w, dep) })
	}
	return v.Refresh()
}

// Refresh re-seeds the view with CoreInfo snapshots (also used by --once
// rendering without subscriptions).
func (v *View) Refresh() error {
	var firstErr error
	for _, watched := range v.cores {
		info, err := v.c.CoreInfo(watched)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("layoutview: snapshot of %s: %w", watched, err)
			}
			continue
		}
		v.applySnapshot(info.Core, info.Complets)
	}
	return firstErr
}

func (v *View) applySnapshot(coreID ids.CoreID, complets []wire.CompletInfo) {
	now := time.Now()
	v.mu.Lock()
	// Remove stale entries previously attributed to this core.
	for id, e := range v.entries {
		if e.Core == coreID {
			found := false
			for _, ci := range complets {
				if ci.ID == id {
					found = true
					break
				}
			}
			if !found {
				delete(v.entries, id)
			}
		}
	}
	for _, ci := range complets {
		v.entries[ci.ID] = Entry{
			ID:       ci.ID,
			TypeName: ci.TypeName,
			Names:    ci.Names,
			Core:     coreID,
			Seen:     now,
		}
	}
	v.updated = now
	cb := v.OnChange
	v.mu.Unlock()
	if cb != nil {
		cb()
	}
}

func (v *View) onArrived(at ids.CoreID, ev core.Event) {
	v.mu.Lock()
	e := v.entries[ev.Complet]
	e.ID = ev.Complet
	e.Core = at
	e.Seen = time.Now()
	if e.TypeName == "" {
		e.TypeName = "?"
	}
	v.entries[ev.Complet] = e
	v.events++
	v.updated = e.Seen
	cb := v.OnChange
	v.mu.Unlock()
	if cb != nil {
		cb()
	}
	// Arrival events carry no type name; enrich lazily from a snapshot.
	if e.TypeName == "?" {
		if info, err := v.c.CoreInfo(at); err == nil {
			v.applySnapshot(info.Core, info.Complets)
		}
	}
}

func (v *View) onDeparted(at ids.CoreID, ev core.Event) {
	v.mu.Lock()
	// Only remove if we still attribute the complet to the departing
	// core; an arrival event for the new core may have come first.
	if e, ok := v.entries[ev.Complet]; ok && e.Core == at {
		if dest := ids.CoreID(ev.Detail); !dest.Nil() {
			e.Core = dest
			e.Seen = time.Now()
			v.entries[ev.Complet] = e
		} else {
			delete(v.entries, ev.Complet)
		}
	}
	v.events++
	v.updated = time.Now()
	cb := v.OnChange
	v.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// Where reports the core currently shown for a complet.
func (v *View) Where(id ids.CompletID) (ids.CoreID, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e, ok := v.entries[id]
	return e.Core, ok
}

// Events returns how many layout events the view has consumed.
func (v *View) Events() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.events
}

// Snapshot returns the entries grouped by core, sorted for stable rendering.
func (v *View) Snapshot() map[ids.CoreID][]Entry {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[ids.CoreID][]Entry)
	for _, e := range v.entries {
		out[e.Core] = append(out[e.Core], e)
	}
	for _, list := range out {
		sort.Slice(list, func(i, j int) bool { return list[i].ID.String() < list[j].ID.String() })
	}
	return out
}

// Row is one core's slice of a JSON layout rendering — the shared shape of
// the ops plane's /layout view block and the observatory's /cluster/layout,
// so scrapers and the cluster web page read one format.
type Row struct {
	Core      string    `json:"core"`
	Reachable bool      `json:"reachable"`
	Complets  []Complet `json:"complets"`
}

// Complet is one complet inside a Row.
type Complet struct {
	ID       string   `json:"id"`
	TypeName string   `json:"type"`
	Names    []string `json:"names,omitempty"`
}

// Rows renders the view as per-core rows, sorted by core, watched-but-empty
// cores included. The view only models cores it could reach, so Reachable is
// always true here; aggregators that track reachability themselves (the
// observatory) build Rows directly.
func (v *View) Rows() []Row {
	snap := v.Snapshot()
	cores := append([]ids.CoreID(nil), v.cores...)
	seen := map[ids.CoreID]bool{}
	for _, c := range cores {
		seen[c] = true
	}
	for c := range snap {
		if !seen[c] {
			cores = append(cores, c)
		}
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i] < cores[j] })
	rows := make([]Row, 0, len(cores))
	for _, c := range cores {
		row := Row{Core: c.String(), Reachable: true, Complets: []Complet{}}
		for _, e := range snap[c] {
			row.Complets = append(row.Complets, Complet{ID: e.ID.String(), TypeName: e.TypeName, Names: e.Names})
		}
		rows = append(rows, row)
	}
	return rows
}

// Render formats the layout as a text table (the terminal stand-in for
// Figure 4).
func (v *View) Render() string {
	snap := v.Snapshot()
	cores := append([]ids.CoreID(nil), v.cores...)
	// Include cores that appear only in entries (e.g. learned
	// destinations).
	seen := map[ids.CoreID]bool{}
	for _, c := range cores {
		seen[c] = true
	}
	for c := range snap {
		if !seen[c] {
			cores = append(cores, c)
		}
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i] < cores[j] })

	var sb strings.Builder
	fmt.Fprintf(&sb, "FarGo layout (%d complets, %d events)\n", v.count(), v.Events())
	for _, c := range cores {
		fmt.Fprintf(&sb, "core %s\n", c)
		entries := snap[c]
		if len(entries) == 0 {
			sb.WriteString("  (empty)\n")
			continue
		}
		for _, e := range entries {
			names := ""
			if len(e.Names) > 0 {
				names = " [" + strings.Join(e.Names, ",") + "]"
			}
			fmt.Fprintf(&sb, "  %-24s %-12s%s\n", e.ID, e.TypeName, names)
		}
	}
	return sb.String()
}

func (v *View) count() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.entries)
}

func (v *View) addCancel(c func()) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		c()
		return
	}
	v.cancels = append(v.cancels, c)
}

// Close cancels all subscriptions.
func (v *View) Close() {
	v.mu.Lock()
	cancels := v.cancels
	v.cancels = nil
	v.closed = true
	v.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}
