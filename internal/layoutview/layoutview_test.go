package layoutview

import (
	"strings"
	"testing"
	"time"

	"fargo/internal/core"
	"fargo/internal/demo"
	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

func testCluster(t *testing.T, names ...string) map[string]*core.Core {
	t.Helper()
	net := netsim.NewNetwork(3)
	cores := make(map[string]*core.Core, len(names))
	for _, name := range names {
		tr, err := transport.NewSim(net, ids.CoreID(name))
		if err != nil {
			t.Fatal(err)
		}
		reg := registry.New()
		if err := demo.Register(reg); err != nil {
			t.Fatal(err)
		}
		c, err := core.New(tr, reg, core.Options{RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		cores[name] = c
	}
	t.Cleanup(func() {
		for _, c := range cores {
			_ = c.Shutdown(0)
		}
		net.Close()
	})
	return cores
}

func TestSnapshotSeeding(t *testing.T) {
	cores := testCluster(t, "a", "b", "viewer")
	viewer := cores["viewer"]
	r, err := viewer.NewCompletAt("a", "Message", "x")
	if err != nil {
		t.Fatal(err)
	}
	v := New(viewer, []ids.CoreID{"a", "b"})
	if err := v.Refresh(); err != nil {
		t.Fatal(err)
	}
	where, ok := v.Where(r.Target())
	if !ok || where != "a" {
		t.Fatalf("Where = %v, %v", where, ok)
	}
}

func TestEventDrivenTracking(t *testing.T) {
	cores := testCluster(t, "a", "b", "viewer")
	viewer := cores["viewer"]
	v := New(viewer, []ids.CoreID{"a", "b"})
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	r, err := viewer.NewCompletAt("a", "Message", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := viewer.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if where, ok := v.Where(r.Target()); ok && where == "b" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("view never tracked the move to b")
		}
		time.Sleep(time.Millisecond)
	}
	if v.Events() == 0 {
		t.Fatal("view consumed no events")
	}
	// Move back: the view must follow without another Refresh.
	if err := viewer.Move(r, "a"); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		if where, ok := v.Where(r.Target()); ok && where == "a" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("view never tracked the move back to a")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRenderContainsLayout(t *testing.T) {
	cores := testCluster(t, "a", "b", "viewer")
	viewer := cores["viewer"]
	r, err := viewer.NewCompletAt("a", "Message", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := viewer.NameAt("a", "greeting", r); err != nil {
		t.Fatal(err)
	}
	v := New(viewer, []ids.CoreID{"a", "b"})
	if err := v.Refresh(); err != nil {
		t.Fatal(err)
	}
	out := v.Render()
	for _, want := range []string{"core a", "core b", "Message", "greeting", "(empty)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestOnChangeFires(t *testing.T) {
	cores := testCluster(t, "a", "viewer")
	viewer := cores["viewer"]
	v := New(viewer, []ids.CoreID{"a"})
	changes := make(chan struct{}, 16)
	v.OnChange = func() {
		select {
		case changes <- struct{}{}:
		default:
		}
	}
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	select {
	case <-changes:
	case <-time.After(2 * time.Second):
		t.Fatal("OnChange never fired for the seeding refresh")
	}
}

func TestCloseIdempotent(t *testing.T) {
	cores := testCluster(t, "a", "viewer")
	v := New(cores["viewer"], []ids.CoreID{"a"})
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	v.Close()
	v.Close()
}

func TestRefreshUnreachableCore(t *testing.T) {
	cores := testCluster(t, "a", "viewer")
	v := New(cores["viewer"], []ids.CoreID{"a", "ghost"})
	if err := v.Refresh(); err == nil {
		t.Fatal("refresh with unreachable core should report an error")
	}
	// The reachable core's snapshot still landed.
	if _, err := cores["viewer"].NewCompletAt("a", "Message", "x"); err != nil {
		t.Fatal(err)
	}
	_ = v.Refresh() // ghost still errors, but "a" updates
	snap := v.Snapshot()
	if len(snap["a"]) != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}
