package layoutview

import (
	"strings"
	"testing"
	"time"

	"fargo/internal/core"
	"fargo/internal/demo"
	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

func testCluster(t *testing.T, names ...string) map[string]*core.Core {
	t.Helper()
	net := netsim.NewNetwork(3)
	cores := make(map[string]*core.Core, len(names))
	for _, name := range names {
		tr, err := transport.NewSim(net, ids.CoreID(name))
		if err != nil {
			t.Fatal(err)
		}
		reg := registry.New()
		if err := demo.Register(reg); err != nil {
			t.Fatal(err)
		}
		c, err := core.New(tr, reg, core.Options{RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		cores[name] = c
	}
	t.Cleanup(func() {
		for _, c := range cores {
			_ = c.Shutdown(0)
		}
		net.Close()
	})
	return cores
}

func TestSnapshotSeeding(t *testing.T) {
	cores := testCluster(t, "a", "b", "viewer")
	viewer := cores["viewer"]
	r, err := viewer.NewCompletAt("a", "Message", "x")
	if err != nil {
		t.Fatal(err)
	}
	v := New(viewer, []ids.CoreID{"a", "b"})
	if err := v.Refresh(); err != nil {
		t.Fatal(err)
	}
	where, ok := v.Where(r.Target())
	if !ok || where != "a" {
		t.Fatalf("Where = %v, %v", where, ok)
	}
}

func TestEventDrivenTracking(t *testing.T) {
	cores := testCluster(t, "a", "b", "viewer")
	viewer := cores["viewer"]
	v := New(viewer, []ids.CoreID{"a", "b"})
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	r, err := viewer.NewCompletAt("a", "Message", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := viewer.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if where, ok := v.Where(r.Target()); ok && where == "b" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("view never tracked the move to b")
		}
		time.Sleep(time.Millisecond)
	}
	if v.Events() == 0 {
		t.Fatal("view consumed no events")
	}
	// Move back: the view must follow without another Refresh.
	if err := viewer.Move(r, "a"); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		if where, ok := v.Where(r.Target()); ok && where == "a" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("view never tracked the move back to a")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRenderContainsLayout(t *testing.T) {
	cores := testCluster(t, "a", "b", "viewer")
	viewer := cores["viewer"]
	r, err := viewer.NewCompletAt("a", "Message", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := viewer.NameAt("a", "greeting", r); err != nil {
		t.Fatal(err)
	}
	v := New(viewer, []ids.CoreID{"a", "b"})
	if err := v.Refresh(); err != nil {
		t.Fatal(err)
	}
	out := v.Render()
	for _, want := range []string{"core a", "core b", "Message", "greeting", "(empty)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestOnChangeFires(t *testing.T) {
	cores := testCluster(t, "a", "viewer")
	viewer := cores["viewer"]
	v := New(viewer, []ids.CoreID{"a"})
	changes := make(chan struct{}, 16)
	v.OnChange = func() {
		select {
		case changes <- struct{}{}:
		default:
		}
	}
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	select {
	case <-changes:
	case <-time.After(2 * time.Second):
		t.Fatal("OnChange never fired for the seeding refresh")
	}
}

func TestCloseIdempotent(t *testing.T) {
	cores := testCluster(t, "a", "viewer")
	v := New(cores["viewer"], []ids.CoreID{"a"})
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	v.Close()
	v.Close()
}

// TestViewUnderFaultyTransport subjects the event path to chaos: the watched
// cores' outbound messages to the viewer are randomly dropped and duplicated,
// so the view sees an arbitrary subset of arrival/departure events, some
// twice. The view must never corrupt — duplicated events are idempotent, and
// one Refresh after the faults clear reconciles it exactly with the ground
// truth.
func TestViewUnderFaultyTransport(t *testing.T) {
	net := netsim.NewNetwork(21)
	mk := func(name string, seed int64) (*core.Core, *transport.Faulty) {
		tr, err := transport.NewSim(net, ids.CoreID(name))
		if err != nil {
			t.Fatal(err)
		}
		faulty := transport.NewFaulty(tr, seed)
		reg := registry.New()
		if err := demo.Register(reg); err != nil {
			t.Fatal(err)
		}
		c, err := core.New(faulty, reg, core.Options{RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return c, faulty
	}
	a, fa := mk("a", 31)
	b, fb := mk("b", 32)
	viewerTr, err := transport.NewSim(net, "viewer")
	if err != nil {
		t.Fatal(err)
	}
	viewerReg := registry.New()
	if err := demo.Register(viewerReg); err != nil {
		t.Fatal(err)
	}
	viewer, err := core.New(viewerTr, viewerReg, core.Options{RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = a.Shutdown(0)
		_ = b.Shutdown(0)
		_ = viewer.Shutdown(0)
		net.Close()
	})

	v := New(viewer, []ids.CoreID{"a", "b"})
	if err := v.Start(); err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// Only the event path (watched core -> viewer) is faulted; the a<->b
	// move traffic stays clean so the ground truth keeps evolving.
	fa.SetDrop("viewer", 0.4)
	fa.SetDuplicate("viewer", 0.4)
	fb.SetDrop("viewer", 0.4)
	fb.SetDuplicate("viewer", 0.4)

	// Churn: complets born on a, bounced between a and b.
	var complets []ids.CompletID
	for i := 0; i < 6; i++ {
		r, err := a.NewComplet("Message", "chaos")
		if err != nil {
			t.Fatal(err)
		}
		complets = append(complets, r.Target())
	}
	for round := 0; round < 3; round++ {
		for i, id := range complets {
			from, to := a, ids.CoreID("b")
			if (i+round)%2 == 1 {
				from, to = b, "a"
			}
			// Some moves are no-ops when the complet is already at the
			// destination after an odd number of bounces; ignore errors —
			// the final Complets() calls are the ground truth.
			_ = from.MoveByID(id, to)
		}
	}

	// The chaos must actually have fired for the test to mean anything.
	ca, cb := fa.Counts(), fb.Counts()
	if ca.Dropped+cb.Dropped == 0 || ca.Duplicated+cb.Duplicated == 0 {
		t.Fatalf("fault injection inert: a=%+v b=%+v", ca, cb)
	}

	// Heal and reconcile.
	fa.ClearAll()
	fb.ClearAll()
	if err := v.Refresh(); err != nil {
		t.Fatal(err)
	}

	truth := make(map[ids.CompletID]ids.CoreID)
	for _, c := range []*core.Core{a, b} {
		for _, ci := range c.Complets() {
			if prev, dup := truth[ci.ID]; dup {
				t.Fatalf("complet %s hosted by both %s and %s", ci.ID, prev, c.ID())
			}
			truth[ci.ID] = c.ID()
		}
	}
	if len(truth) != len(complets) {
		t.Fatalf("ground truth lost complets: %d of %d", len(truth), len(complets))
	}

	snap := v.Snapshot()
	seen := make(map[ids.CompletID]ids.CoreID)
	for coreID, entries := range snap {
		for _, e := range entries {
			if prev, dup := seen[e.ID]; dup {
				t.Errorf("view lists %s on both %s and %s", e.ID, prev, coreID)
			}
			seen[e.ID] = coreID
		}
	}
	if len(seen) != len(truth) {
		t.Errorf("view has %d entries, ground truth %d: view=%v truth=%v",
			len(seen), len(truth), seen, truth)
	}
	for id, want := range truth {
		if got, ok := seen[id]; !ok || got != want {
			t.Errorf("view places %s at %v (%v), ground truth %s", id, got, ok, want)
		}
	}
}

func TestRefreshUnreachableCore(t *testing.T) {
	cores := testCluster(t, "a", "viewer")
	v := New(cores["viewer"], []ids.CoreID{"a", "ghost"})
	if err := v.Refresh(); err == nil {
		t.Fatal("refresh with unreachable core should report an error")
	}
	// The reachable core's snapshot still landed.
	if _, err := cores["viewer"].NewCompletAt("a", "Message", "x"); err != nil {
		t.Fatal(err)
	}
	_ = v.Refresh() // ghost still errors, but "a" updates
	snap := v.Snapshot()
	if len(snap["a"]) != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}
