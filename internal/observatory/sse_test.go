package observatory

// HTTP streaming behaviour of /cluster/timeline and /cluster/alerts: backlog
// replay bounds, keepalive ticks, the alert-kind filter, and the guarantee
// that a slow (or dead) subscriber never stalls the merge path.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fargo/internal/flight"
)

// collectSSE consumes an SSE stream until done reports satisfaction, failing
// the test if the stream ends or the deadline passes first. It returns the
// decoded timeline events and the number of keepalive tick comments seen.
func collectSSE(t *testing.T, url string, deadline time.Duration, done func(events []Event, ticks int) bool) ([]Event, int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	var events []Event
	ticks := 0
	buf := make([]byte, 4096)
	var pending string
	for {
		if done(events, ticks) {
			return events, ticks
		}
		n, err := resp.Body.Read(buf)
		if n == 0 && err != nil {
			t.Fatalf("sse stream ended (%v) before condition: %d event(s), %d tick(s)", err, len(events), ticks)
		}
		pending += string(buf[:n])
		for {
			nl := strings.IndexByte(pending, '\n')
			if nl < 0 {
				break
			}
			line := strings.TrimRight(pending[:nl], "\r")
			pending = pending[nl+1:]
			switch {
			case strings.HasPrefix(line, "data: "):
				var ev Event
				if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
					t.Fatalf("bad SSE data line %q: %v", line, err)
				}
				events = append(events, ev)
			case strings.HasPrefix(line, ": tick"):
				ticks++
			}
		}
	}
}

// recordN stamps n note events on the core's flight recorder with
// recognizable details ("note-0" .. "note-{n-1}").
func recordN(cl *cluster, core string, n int) {
	fr := cl.core(core).Flight()
	for i := 0; i < n; i++ {
		fr.Record(flight.Event{Kind: "note", Detail: fmt.Sprintf("note-%d", i)})
	}
}

// The backlog replayed to a late SSE viewer is bounded: default 64 newest
// events, ?replay= overrides, and the bound counts events AFTER any kind
// filter (an alerts viewer is never starved because moves dominated the
// retained window).
func TestTimelineSSEReplayBound(t *testing.T) {
	cl := newCluster(t, 0, "a")
	o, err := Start(cl.core("a"), Options{Cores: coreIDs("a")})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()

	recordN(cl, "a", 80)
	if err := o.Refresh(ctxFor(t)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(o)
	defer srv.Close()

	last := func(events []Event, _ int) bool {
		return len(events) > 0 && events[len(events)-1].Detail == "note-79"
	}

	events, _ := collectSSE(t, srv.URL+"/cluster/timeline?follow=1&replay=5", 10*time.Second, last)
	if len(events) != 5 || events[0].Detail != "note-75" {
		t.Fatalf("replay=5 delivered %d event(s) starting at %q, want the newest 5 from note-75", len(events), events[0].Detail)
	}

	events, _ = collectSSE(t, srv.URL+"/cluster/timeline?follow=1", 10*time.Second, last)
	if len(events) != 64 || events[0].Detail != "note-16" {
		t.Fatalf("default replay delivered %d event(s) starting at %q, want 64 from note-16", len(events), events[0].Detail)
	}
}

// An idle SSE connection receives comment keepalives on the StaleAfter
// cadence — proxies don't cut the stream, and the handler's own
// RefreshIfStale keeps the model live without a background loop.
func TestTimelineSSEKeepalive(t *testing.T) {
	cl := newCluster(t, 0, "a")
	o, err := Start(cl.core("a"), Options{Cores: coreIDs("a"), StaleAfter: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()
	srv := httptest.NewServer(o)
	defer srv.Close()

	_, ticks := collectSSE(t, srv.URL+"/cluster/timeline?follow=1", 10*time.Second,
		func(_ []Event, ticks int) bool { return ticks >= 2 })
	if ticks < 2 {
		t.Fatalf("ticks = %d, want >= 2", ticks)
	}
}

// /cluster/alerts?follow=1 streams ONLY alert transitions: backlog and live
// events of other kinds are filtered out.
func TestAlertsSSEFiltersKinds(t *testing.T) {
	cl := newCluster(t, 0, "a")
	a := cl.core("a")
	ctx := ctxFor(t)
	o, err := Start(a, Options{Cores: coreIDs("a")})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()

	a.Flight().Record(flight.Event{Kind: "note", Detail: "noise-before"})
	a.Flight().Record(flight.Event{Kind: flight.KindAlertFiring, Detail: "slow-echo: p95 over bound"})
	a.Flight().Record(flight.Event{Kind: "note", Detail: "noise-between"})
	if err := o.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(o)
	defer srv.Close()

	got := make(chan []Event, 1)
	go func() {
		events, _ := collectSSE(t, srv.URL+"/cluster/alerts?follow=1", 15*time.Second,
			func(events []Event, _ int) bool {
				return len(events) > 0 && events[len(events)-1].Kind == flight.KindAlertResolved
			})
		got <- events
	}()

	// Let the viewer attach, then emit more noise and the resolution.
	time.Sleep(100 * time.Millisecond)
	a.Flight().Record(flight.Event{Kind: "note", Detail: "noise-after"})
	a.Flight().Record(flight.Event{Kind: flight.KindAlertResolved, Detail: "slow-echo: resolved"})
	if err := o.Refresh(ctx); err != nil {
		t.Fatal(err)
	}

	select {
	case events := <-got:
		if len(events) != 2 {
			t.Fatalf("alerts stream delivered %d event(s), want exactly the 2 alert transitions: %+v", len(events), events)
		}
		if events[0].Kind != flight.KindAlertFiring || events[1].Kind != flight.KindAlertResolved {
			t.Fatalf("alerts stream kinds = %s, %s", events[0].Kind, events[1].Kind)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("alerts SSE viewer never saw the resolution")
	}
}

// A subscriber that never drains its channel loses events but NEVER stalls a
// refresh — delivery is non-blocking by contract.
func TestSlowSubscriberDoesNotBlockMerge(t *testing.T) {
	cl := newCluster(t, 0, "a")
	o, err := Start(cl.core("a"), Options{Cores: coreIDs("a")})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()

	_, ch, cancel := o.Subscribe(1)
	defer cancel()

	recordN(cl, "a", 50)
	doneRefresh := make(chan error, 1)
	go func() { doneRefresh <- o.Refresh(ctxFor(t)) }()
	select {
	case err := <-doneRefresh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("refresh blocked on an undrained subscriber")
	}

	notes := 0
	for _, ev := range o.Timeline(0) {
		if ev.Kind == "note" {
			notes++
		}
	}
	if notes != 50 {
		t.Fatalf("merged timeline has %d note(s), want all 50 despite the stuck subscriber", notes)
	}
	if buffered := len(ch); buffered > 1 {
		t.Fatalf("stuck subscriber buffered %d event(s), channel capacity is 1", buffered)
	}
}
