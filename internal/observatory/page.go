package observatory

import "net/http"

// servePage serves the cluster view: the stand-in for the paper's Figure 4
// graphical monitor, rendered deployment-wide. One self-contained HTML
// document — styles and script inline, no external assets, so it works on an
// air-gapped operations host — showing the layout graph (one box per member
// core, complet chips inside, unreachable members flagged) above a scrolling
// live timeline fed by the /cluster/timeline SSE stream.
func (o *Observatory) servePage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(clusterPage))
}

const clusterPage = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>fargo cluster observatory</title>
<style>
  body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 0; background: #10141a; color: #d7dde6; }
  header { padding: 10px 16px; background: #161c26; border-bottom: 1px solid #2a3342;
           display: flex; gap: 16px; align-items: baseline; }
  header h1 { font-size: 15px; margin: 0; color: #7fd1b9; }
  header .meta { font-size: 12px; color: #8b97a8; }
  header .partial { color: #e8a640; font-weight: bold; }
  #layout { display: flex; flex-wrap: wrap; gap: 12px; padding: 14px 16px; }
  .corebox { min-width: 180px; border: 1px solid #2a3342; border-radius: 6px;
             background: #161c26; }
  .corebox.down { border-color: #a84848; opacity: 0.75; }
  .corebox h2 { font-size: 13px; margin: 0; padding: 6px 10px;
                border-bottom: 1px solid #2a3342; color: #9ec1e8; }
  .corebox.down h2::after { content: " (unreachable)"; color: #e07a7a; font-size: 11px; }
  .chips { padding: 8px 10px; display: flex; flex-wrap: wrap; gap: 6px; min-height: 18px; }
  .chip { font-size: 11px; padding: 2px 8px; border-radius: 10px;
          background: #233048; color: #cfe3ff; border: 1px solid #33476b; }
  .chip .t { color: #7fd1b9; }
  #tl-wrap { border-top: 1px solid #2a3342; }
  #tl-wrap h2 { font-size: 13px; margin: 0; padding: 8px 16px; color: #9ec1e8; }
  #timeline { list-style: none; margin: 0; padding: 0 16px 16px;
              max-height: 45vh; overflow-y: auto; font-size: 12px; }
  #timeline li { padding: 2px 0; border-bottom: 1px solid #1b2230; white-space: nowrap; }
  .merge { color: #5c6b80; }
  .core { color: #9ec1e8; }
  .kind { font-weight: bold; }
  .kind.planApplied { color: #7fd1b9; }
  .kind.planSkipped { color: #8b97a8; }
  .kind.move, .kind.moveRecovered { color: #c7a3e8; }
  .kind.moveFailed, .kind.repairFailed, .kind.breakerOpen { color: #e07a7a; }
  .kind.repair, .kind.breakerClosed { color: #e8d27a; }
  .kind.alertFiring { color: #e07a7a; }
  .kind.alertResolved { color: #7fd1b9; }
  .detail { color: #8b97a8; }
  #alerts { padding: 0 16px 8px; }
  #alerts h2 { font-size: 13px; margin: 0 0 6px; color: #9ec1e8; }
  #alerts .none { font-size: 12px; color: #5c6b80; }
  .alertchip { display: inline-block; font-size: 12px; padding: 2px 10px; margin: 0 6px 6px 0;
               border-radius: 10px; background: #3a2026; color: #f0b0b0;
               border: 1px solid #a84848; font-weight: bold; }
  .alertchip .c { color: #9ec1e8; font-weight: normal; }
</style>
</head>
<body>
<header>
  <h1>fargo cluster observatory</h1>
  <span class="meta" id="meta">connecting&hellip;</span>
  <span class="partial" id="partial"></span>
</header>
<div id="layout"></div>
<div id="alerts">
  <h2>alerts</h2>
  <div id="alert-chips"><span class="none">none firing</span></div>
</div>
<div id="tl-wrap">
  <h2>timeline</h2>
  <ul id="timeline"></ul>
</div>
<script>
(function () {
  "use strict";
  var MAXROWS = 300;
  var tl = document.getElementById("timeline");

  function esc(s) {
    return String(s == null ? "" : s).replace(/[&<>"]/g, function (c) {
      return { "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;" }[c];
    });
  }

  function renderLayout(body) {
    var root = document.getElementById("layout");
    root.innerHTML = "";
    (body.cores || []).forEach(function (row) {
      var box = document.createElement("div");
      box.className = "corebox" + (row.reachable ? "" : " down");
      var chips = (row.complets || []).map(function (c) {
        var label = (c.names && c.names.length) ? c.names.join(",") : c.id;
        return '<span class="chip" title="' + esc(c.id) + '">' +
               esc(label) + ' <span class="t">' + esc(c.type) + "</span></span>";
      }).join("");
      box.innerHTML = "<h2>" + esc(row.core) + "</h2><div class=\"chips\">" +
                      (chips || "&nbsp;") + "</div>";
      root.appendChild(box);
    });
  }

  function renderStatus(st) {
    var up = (st.members || []).filter(function (m) { return m.reachable; }).length;
    document.getElementById("meta").textContent =
      "via " + st.core + " · " + up + "/" + (st.members || []).length +
      " member(s) up · merge clock " + st.mergeClock +
      " · cross-rate " + (st.crossCoreInvokeRate || 0).toFixed(2) + "/s";
    document.getElementById("partial").textContent =
      st.partial ? "PARTIAL VIEW: " + (st.unreachable || []).join(", ") + " unreachable" : "";
  }

  function renderAlerts(body) {
    var root = document.getElementById("alert-chips");
    var firing = body.firing || [];
    if (!firing.length) {
      root.innerHTML = '<span class="none">none firing</span>';
      return;
    }
    root.innerHTML = firing.map(function (f) {
      return '<span class="alertchip">' + esc(f.rule) +
             ' <span class="c">@ ' + esc(f.core) + "</span></span>";
    }).join("");
  }

  function poll() {
    fetch("/cluster/layout").then(function (r) { return r.json(); })
      .then(renderLayout).catch(function () {});
    fetch("/cluster/status").then(function (r) { return r.json(); })
      .then(renderStatus).catch(function () {});
  }
  function pollAlerts() {
    fetch("/cluster/alerts").then(function (r) { return r.json(); })
      .then(renderAlerts).catch(function () {});
  }
  poll();
  pollAlerts();
  setInterval(poll, 2000);

  function addEvent(ev) {
    // Alert transitions refresh the firing chips immediately instead of
    // waiting for the next poll.
    if (ev.kind === "alertFiring" || ev.kind === "alertResolved") pollAlerts();
    var li = document.createElement("li");
    var when = new Date(ev.at).toISOString().substr(11, 12);
    li.innerHTML = '<span class="merge">#' + ev.merge + "</span> " + when +
      ' <span class="core">' + esc(ev.core) + "</span>" +
      ' <span class="kind ' + esc(ev.kind) + '">' + esc(ev.kind) + "</span> " +
      esc(ev.complet || "") + (ev.peer ? " &rarr; " + esc(ev.peer) : "") +
      ' <span class="detail">' + esc(ev.detail || ev.err || "") + "</span>";
    tl.insertBefore(li, tl.firstChild);
    while (tl.children.length > MAXROWS) tl.removeChild(tl.lastChild);
  }

  var es = new EventSource("/cluster/timeline?follow=1");
  es.addEventListener("timeline", function (msg) {
    try { addEvent(JSON.parse(msg.data)); } catch (e) {}
  });
})();
</script>
</body>
</html>
`
