// Package observatory implements the deployment observatory: the
// cluster-wide aggregation layer behind the paper's monitoring story (§4.1
// profiling, §4.3's graphical monitor of Figure 4), which is deployment-wide
// where the per-core ops plane (internal/obs) is strictly local. An
// observatory attached to any core — a working core, a dedicated monitor, or
// fargo-monitor's embedded core — periodically refreshes a global model of
// the running system with ONE batched wire query per member core
// (wire.ObsQuery), and derives three deployment-level views from it:
//
//   - federated metrics: every member's counters, gauges and histograms,
//     re-exposed under a core="<id>" label next to cluster_<name> families
//     merged across cores (histograms merge bucket-wise — quantiles do not
//     compose, log-bucket counts do) plus derived deployment gauges;
//   - stitched traces: span shards collected from every member and linked by
//     TraceID/parent-span into one causal tree, even when the trace crossed
//     moves and chain repairs, with orphaned spans reported instead of
//     silently dropped;
//   - a merged timeline: every member's flight recorder (planner decisions
//     included) woven into one globally-ordered feed — per-core Seq order is
//     never violated, and a Lamport-style merge clock stamps the total order
//     chosen at ingest.
//
// Unreachable members degrade the model to a flagged partial view, never an
// error: the operator sees which slice of the deployment is stale and since
// when (DESIGN.md §15).
package observatory

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"fargo/internal/core"
	"fargo/internal/ids"
	"fargo/internal/wire"
)

// Defaults for zero Options fields.
const (
	// DefaultRefreshTimeout bounds one refresh fan-out.
	DefaultRefreshTimeout = 5 * time.Second
	// DefaultFlightMax caps flight events fetched from one member per
	// refresh.
	DefaultFlightMax = 512
	// DefaultTimelineCap bounds the merged timeline ring.
	DefaultTimelineCap = 4096
	// DefaultStaleAfter is how old the model may grow before an HTTP read
	// triggers an inline refresh (when no background loop keeps it fresh).
	DefaultStaleAfter = time.Second
)

// Options configures an observatory.
type Options struct {
	// Cores lists the member cores to aggregate (the attached core usually
	// included). Empty means dynamic membership: the attached core plus
	// every peer it knows, re-resolved each refresh, so the observatory
	// grows with the deployment. Members that become unreachable stay in
	// the model, flagged, until the observatory stops.
	Cores []ids.CoreID
	// Interval is the background refresh period. Zero disables the loop;
	// the model then refreshes on demand (HTTP reads and SSE streams
	// trigger refreshes when the model is older than StaleAfter).
	Interval time.Duration
	// RefreshTimeout bounds one refresh fan-out (0 = DefaultRefreshTimeout).
	RefreshTimeout time.Duration
	// FlightMax caps flight events fetched from one member per refresh
	// (0 = DefaultFlightMax).
	FlightMax int
	// TimelineCap bounds the merged timeline ring (0 = DefaultTimelineCap).
	TimelineCap int
	// StaleAfter is the on-demand refresh threshold (0 = DefaultStaleAfter).
	StaleAfter time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// member is the retained per-member state.
type member struct {
	id        ids.CoreID
	reachable bool
	err       string
	lastOK    time.Time
	lastSeq   uint64 // high-water flight Seq already merged into the timeline
	stats     *wire.StatsQueryReply
	health    *wire.HealthQueryReply
	info      *wire.CoreInfoReply
}

// Observatory is one deployment-wide aggregation point.
type Observatory struct {
	c       *core.Core
	opts    Options
	dynamic bool

	refreshMu sync.Mutex // serializes refresh fan-outs

	mu          sync.Mutex
	members     map[ids.CoreID]*member
	clock       uint64 // Lamport-style merge clock (total order of ingested events)
	timeline    []Event
	subs        map[*subscriber]struct{}
	refreshes   uint64
	lastRefresh time.Time
	// cross-rate derivation state: forwarded-invocation total and stamp of
	// the previous refresh.
	prevFwd   float64
	prevFwdAt time.Time
	crossRate float64
	stopped   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// observatories maps cores to their observatories, so layers that hold only
// a core (obs, shell) reach the aggregation point without the core importing
// this package — the same pattern as plan.For.
var observatories = struct {
	sync.Mutex
	m map[*core.Core]*Observatory
}{m: make(map[*core.Core]*Observatory)}

// Start attaches an observatory to the core and, when opts.Interval > 0,
// starts its background refresh loop. The observatory stops with the core. A
// core has at most one observatory.
func Start(c *core.Core, opts Options) (*Observatory, error) {
	if c == nil {
		return nil, fmt.Errorf("observatory: nil core")
	}
	if opts.RefreshTimeout <= 0 {
		opts.RefreshTimeout = DefaultRefreshTimeout
	}
	if opts.FlightMax <= 0 {
		opts.FlightMax = DefaultFlightMax
	}
	if opts.TimelineCap <= 0 {
		opts.TimelineCap = DefaultTimelineCap
	}
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = DefaultStaleAfter
	}
	o := &Observatory{
		c:       c,
		opts:    opts,
		dynamic: len(opts.Cores) == 0,
		members: make(map[ids.CoreID]*member),
		subs:    make(map[*subscriber]struct{}),
		stop:    make(chan struct{}),
	}
	observatories.Lock()
	if _, dup := observatories.m[c]; dup {
		observatories.Unlock()
		return nil, fmt.Errorf("observatory: core %s already has an observatory", c.ID())
	}
	observatories.m[c] = o
	observatories.Unlock()
	c.OnShutdown(o.Stop)

	if opts.Interval > 0 {
		o.wg.Add(1)
		go o.loop()
	}
	return o, nil
}

// For returns the observatory attached to the core, if any.
func For(c *core.Core) (*Observatory, bool) {
	observatories.Lock()
	defer observatories.Unlock()
	o, ok := observatories.m[c]
	return o, ok
}

// Stop ends the refresh loop, closes every SSE subscription, and detaches
// the observatory from its core. Idempotent.
func (o *Observatory) Stop() {
	o.mu.Lock()
	if o.stopped {
		o.mu.Unlock()
		return
	}
	o.stopped = true
	subs := make([]*subscriber, 0, len(o.subs))
	for s := range o.subs {
		subs = append(subs, s)
	}
	o.subs = make(map[*subscriber]struct{})
	o.mu.Unlock()
	close(o.stop)
	o.wg.Wait()
	// An HTTP-driven Refresh may still hold a pre-Stop snapshot of these
	// subscribers; subscriber.close/send are mutually excluded per-sub, so
	// closing here can never race a send into a panic.
	for _, s := range subs {
		s.close()
	}
	observatories.Lock()
	if observatories.m[o.c] == o {
		delete(observatories.m, o.c)
	}
	observatories.Unlock()
}

// Core returns the attached core.
func (o *Observatory) Core() *core.Core { return o.c }

func (o *Observatory) logf(format string, args ...any) {
	if o.opts.Logf != nil {
		o.opts.Logf(format, args...)
	}
}

// loop is the background refresher.
func (o *Observatory) loop() {
	defer o.wg.Done()
	t := time.NewTicker(o.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-o.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), o.opts.RefreshTimeout)
			if err := o.Refresh(ctx); err != nil {
				o.logf("observatory %s: refresh: %v", o.c.ID(), err)
			}
			cancel()
		}
	}
}

// memberList resolves the current membership: the configured list, or — with
// dynamic membership — the attached core plus every peer it knows, unioned
// with every member ever seen (an unreachable core must stay in the model as
// a flagged gap, not vanish from it).
func (o *Observatory) memberList() []ids.CoreID {
	var base []ids.CoreID
	if o.dynamic {
		base = append([]ids.CoreID{o.c.ID()}, o.c.Peers()...)
	} else {
		base = o.opts.Cores
	}
	seen := make(map[ids.CoreID]bool, len(base))
	out := make([]ids.CoreID, 0, len(base))
	for _, m := range base {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	o.mu.Lock()
	for id := range o.members {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	o.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Refresh runs one fan-out: every member answers one batched ObsQuery
// (stats + health + info + fresh flight events), and the answers update the
// model. Unreachable members are flagged, not fatal; Refresh errors only
// when it cannot run at all (the attached core is closed).
func (o *Observatory) Refresh(ctx context.Context) error {
	o.refreshMu.Lock()
	defer o.refreshMu.Unlock()

	members := o.memberList()
	type answer struct {
		id    ids.CoreID
		reply wire.ObsQueryReply
		err   error
	}
	answers := make([]answer, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		o.mu.Lock()
		var after uint64
		if st, ok := o.members[m]; ok {
			after = st.lastSeq
		}
		o.mu.Unlock()
		wg.Add(1)
		go func(i int, m ids.CoreID, after uint64) {
			defer wg.Done()
			reply, err := o.c.ObsAtCtx(ctx, m, wire.ObsQuery{
				Stats:          true,
				Health:         true,
				Info:           true,
				Flight:         true,
				FlightMax:      o.opts.FlightMax,
				FlightAfterSeq: after,
			})
			answers[i] = answer{id: m, reply: reply, err: err}
		}(i, m, after)
	}
	wg.Wait()

	now := time.Now()
	var fresh [][]Event // per-member fresh flight events, Seq-ascending
	o.mu.Lock()
	for _, a := range answers {
		st, ok := o.members[a.id]
		if !ok {
			st = &member{id: a.id}
			o.members[a.id] = st
		}
		if a.err != nil {
			st.reachable = false
			st.err = a.err.Error()
			continue
		}
		st.reachable = true
		st.err = ""
		st.lastOK = now
		st.stats = a.reply.Stats
		st.health = a.reply.Health
		st.info = a.reply.Info
		if f := a.reply.Flight; f != nil && f.Total < st.lastSeq {
			// Seq regression: the member's recorder restarted (Total counts
			// every occurrence ever recorded there, so it can only shrink
			// across a core restart). The events it DID record were filtered
			// out on the wire by the stale FlightAfterSeq high-water; reset
			// it so the next refresh picks the restarted member's timeline
			// back up instead of dropping it forever.
			st.lastSeq = 0
		}
		if f := a.reply.Flight; f != nil && len(f.Events) > 0 {
			batch := make([]Event, 0, len(f.Events))
			for _, ev := range f.Events {
				if ev.Seq <= st.lastSeq {
					continue // paranoia: the wire filter already skipped these
				}
				st.lastSeq = ev.Seq
				batch = append(batch, Event{
					Core:          a.id.String(),
					Seq:           ev.Seq,
					At:            time.Unix(0, ev.UnixNanos),
					Kind:          ev.Kind,
					Complet:       ev.Complet,
					Peer:          ev.Peer,
					Detail:        ev.Detail,
					DurationNanos: ev.DurationNanos,
					Bytes:         ev.Bytes,
					Err:           ev.Err,
				})
			}
			if len(batch) > 0 {
				fresh = append(fresh, batch)
			}
		}
	}
	merged := mergeBatches(fresh)
	var delivered []Event
	for i := range merged {
		o.clock++
		merged[i].Merge = o.clock
		o.timeline = append(o.timeline, merged[i])
		delivered = append(delivered, merged[i])
	}
	if over := len(o.timeline) - o.opts.TimelineCap; over > 0 {
		o.timeline = append([]Event(nil), o.timeline[over:]...)
	}
	o.refreshes++
	o.lastRefresh = now
	o.deriveCrossRate(now)
	subs := make([]*subscriber, 0, len(o.subs))
	for s := range o.subs {
		subs = append(subs, s)
	}
	o.mu.Unlock()

	// Fan out to SSE subscribers outside the lock; a slow subscriber drops
	// events from its own channel, never stalls the refresh. The snapshot
	// may be stale — a subscriber canceled (or Stop ran) since o.mu was
	// released — but subscriber.send checks the closed flag under the
	// per-sub mutex, so it never sends on a closed channel.
	for _, ev := range delivered {
		for _, s := range subs {
			s.send(ev)
		}
	}
	return nil
}

// RefreshIfStale refreshes when the model is older than the configured
// staleness threshold — the on-demand path behind HTTP reads when no
// background loop runs.
func (o *Observatory) RefreshIfStale(ctx context.Context) error {
	o.mu.Lock()
	fresh := time.Since(o.lastRefresh) < o.opts.StaleAfter
	o.mu.Unlock()
	if fresh {
		return nil
	}
	return o.Refresh(ctx)
}

// deriveCrossRate updates the derived cross-core invocation rate from the
// deployment-wide forwarded-invocation total. Caller holds o.mu.
func (o *Observatory) deriveCrossRate(now time.Time) {
	var fwd float64
	for _, st := range o.members {
		if st.stats == nil {
			continue
		}
		for name, v := range st.stats.Counters {
			if name == "invoke_forwarded_total" {
				fwd += float64(v)
			}
		}
	}
	if !o.prevFwdAt.IsZero() {
		dt := now.Sub(o.prevFwdAt).Seconds()
		if dt > 0 && fwd >= o.prevFwd {
			o.crossRate = (fwd - o.prevFwd) / dt
		}
	}
	o.prevFwd = fwd
	o.prevFwdAt = now
}

// --- status ------------------------------------------------------------------

// MemberView is one member in a Status.
type MemberView struct {
	Core      string     `json:"core"`
	Reachable bool       `json:"reachable"`
	Err       string     `json:"err,omitempty"`
	LastOK    *time.Time `json:"lastOK,omitempty"`
	Live      bool       `json:"live"`
	Ready     bool       `json:"ready"`
	Complets  int        `json:"complets"`
	Moves     int        `json:"movesInFlight"`
	Suspects  int        `json:"suspects"`
}

// Status is the observatory's introspection snapshot. Partial is the flag
// the acceptance semantics hinge on: true whenever at least one member did
// not answer the latest refresh, so every consumer knows the model has a
// stale slice.
type Status struct {
	Core        string       `json:"core"`
	Members     []MemberView `json:"members"`
	Partial     bool         `json:"partial"`
	Unreachable []string     `json:"unreachable,omitempty"`
	Refreshes   uint64       `json:"refreshes"`
	LastRefresh *time.Time   `json:"lastRefresh,omitempty"`
	TimelineLen int          `json:"timelineLen"`
	MergeClock  uint64       `json:"mergeClock"`
	CrossRate   float64      `json:"crossCoreInvokeRate"`
}

// Status snapshots the observatory.
func (o *Observatory) Status() Status {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := Status{
		Core:        o.c.ID().String(),
		Refreshes:   o.refreshes,
		TimelineLen: len(o.timeline),
		MergeClock:  o.clock,
		CrossRate:   o.crossRate,
	}
	if !o.lastRefresh.IsZero() {
		t := o.lastRefresh
		st.LastRefresh = &t
	}
	keys := make([]ids.CoreID, 0, len(o.members))
	for id := range o.members {
		keys = append(keys, id)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, id := range keys {
		m := o.members[id]
		mv := MemberView{
			Core:      id.String(),
			Reachable: m.reachable,
			Err:       m.err,
		}
		if !m.lastOK.IsZero() {
			t := m.lastOK
			mv.LastOK = &t
		}
		if h := m.health; h != nil {
			mv.Live = h.Live
			mv.Ready = h.Ready
			mv.Complets = h.Complets
			mv.Moves = h.MovesInFlight
			for _, p := range h.Peers {
				if p.Suspect {
					mv.Suspects++
				}
			}
		}
		if !m.reachable {
			st.Partial = true
			st.Unreachable = append(st.Unreachable, id.String())
		}
		st.Members = append(st.Members, mv)
	}
	return st
}
