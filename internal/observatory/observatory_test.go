package observatory

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"fargo/internal/core"
	"fargo/internal/flight"
	"fargo/internal/ids"
	"fargo/internal/metrics"
	"fargo/internal/netsim"
	"fargo/internal/plan"
	"fargo/internal/ref"
	"fargo/internal/registry"
	"fargo/internal/trace"
	"fargo/internal/transport"
)

// --- workload complets -------------------------------------------------------

type msg struct {
	Text string
}

func (m *msg) Init(text string) { m.Text = text }
func (m *msg) Print() string    { return m.Text }

// front/back form a chatty pair for the planner interplay test (same shape as
// the planner's own harness: invocations through front meter the pair at
// back's hosting core).
type front struct {
	Name string
	Out  *ref.Ref
	c    *core.Core
}

func (f *front) SetCore(c *core.Core) { f.c = c }
func (f *front) Init(name string)     { f.Name = name }

func (f *front) Wire(r *ref.Ref) error {
	self, err := f.c.RefOf(f)
	if err != nil {
		return err
	}
	r.SetOwner(self.Target())
	f.Out = r
	return nil
}

func (f *front) Call() (int, error) {
	if f.Out == nil {
		return 0, errors.New("front: not wired")
	}
	res, err := f.Out.Invoke("Pong")
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

type back struct{ N int }

func (b *back) Init(string) {}
func (b *back) Pong() int   { b.N++; return b.N }

// --- cluster helper ----------------------------------------------------------

type cluster struct {
	t        testing.TB
	net      *netsim.Network
	cores    map[ids.CoreID]*core.Core
	shutOnce sync.Once
}

func (cl *cluster) close() {
	cl.shutOnce.Do(func() {
		for _, c := range cl.cores {
			_ = c.Shutdown(0)
		}
		cl.net.Close()
	})
}

func newTestRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	reg := registry.New()
	for name, proto := range map[string]any{
		"Msg":   (*msg)(nil),
		"Front": (*front)(nil),
		"Back":  (*back)(nil),
	} {
		if err := reg.Register(name, proto); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	return reg
}

// newCluster builds named cores over one simulated network; sample is the
// trace sampling rate (1 for trace tests, 0 elsewhere).
func newCluster(t testing.TB, sample float64, names ...string) *cluster {
	t.Helper()
	cl := &cluster{
		t:     t,
		net:   netsim.NewNetwork(11),
		cores: make(map[ids.CoreID]*core.Core, len(names)),
	}
	for _, name := range names {
		id := ids.CoreID(name)
		tr, err := transport.NewSim(cl.net, id)
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.New(tr, newTestRegistry(t), core.Options{
			RequestTimeout:  10 * time.Second,
			TraceSampleRate: sample,
			Logf:            func(string, ...any) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.cores[id] = c
	}
	t.Cleanup(cl.close)
	return cl
}

func (cl *cluster) core(name string) *core.Core { return cl.cores[ids.CoreID(name)] }

func coreIDs(names ...string) []ids.CoreID {
	out := make([]ids.CoreID, len(names))
	for i, n := range names {
		out[i] = ids.CoreID(n)
	}
	return out
}

func ctxFor(t testing.TB) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// --- trace stitching ---------------------------------------------------------

// TestStitchCrossCoreTrace is the headline acceptance scenario: a complet
// born on a and moved a→b→c leaves a two-hop tracker chain; a traced
// invocation from a then traverses all three cores, and the observatory
// stitches the shards each core retained into ONE causal tree.
func TestStitchCrossCoreTrace(t *testing.T) {
	cl := newCluster(t, 1, "a", "b", "c")
	a := cl.core("a")
	ctx := ctxFor(t)

	r, err := a.NewComplet("Msg", "chained")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	// b drives the second hop so a's tracker stays stale at b — the
	// invocation must then cross a → b → c.
	if err := cl.core("b").MoveByID(r.Target(), "c"); err != nil {
		t.Fatal(err)
	}
	stale := a.NewRefTo(r.Target(), "Msg", "b")
	res, err := stale.InvokeCtx(ctx, "Print")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "chained" {
		t.Fatalf("result = %v", res[0])
	}

	o, err := Start(a, Options{Cores: coreIDs("a", "b", "c")})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()

	// Discover the invocation trace through the merged listing.
	entries, unreachable, err := o.Traces(ctx, 0)
	if err != nil {
		t.Fatalf("Traces: %v", err)
	}
	if len(unreachable) != 0 {
		t.Fatalf("unreachable = %v, want none", unreachable)
	}
	var entry *TraceEntry
	for i := range entries {
		if entries[i].Root == "invoke Msg.Print" {
			entry = &entries[i]
			break
		}
	}
	if entry == nil {
		t.Fatalf("no invoke trace in listing: %+v", entries)
	}
	if len(entry.Cores) != 3 {
		t.Fatalf("listing cores = %v, want shards on all of a, b, c", entry.Cores)
	}

	// The merged entry's bounds are the union of the per-core shards —
	// earliest start to latest end — regardless of merge order.
	var wantStart, wantEnd time.Time
	for _, name := range []string{"a", "b", "c"} {
		sums, err := a.TracesAtCtx(ctx, ids.CoreID(name), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sums {
			if trace.TraceID(s.Trace) != entry.Trace {
				continue
			}
			start := time.Unix(0, s.StartUnixNanos)
			end := start.Add(time.Duration(s.DurationNanos))
			if wantStart.IsZero() || start.Before(wantStart) {
				wantStart = start
			}
			if end.After(wantEnd) {
				wantEnd = end
			}
		}
	}
	if !entry.Start.Equal(wantStart) {
		t.Fatalf("listing Start = %v, want earliest shard start %v", entry.Start, wantStart)
	}
	if want := wantEnd.Sub(wantStart).Nanoseconds(); entry.DurationNanos != want {
		t.Fatalf("listing DurationNanos = %d, want maxEnd-minStart = %d", entry.DurationNanos, want)
	}

	st, err := o.Stitch(ctx, entry.Trace)
	if err != nil {
		t.Fatalf("Stitch: %v", err)
	}
	if got := strings.Join(st.Cores, ","); got != "a,b,c" {
		t.Fatalf("stitched cores = %q, want a,b,c", got)
	}
	if len(st.Unreachable) != 0 {
		t.Fatalf("stitched Unreachable = %v, want none", st.Unreachable)
	}
	if len(st.Orphans) != 0 {
		t.Fatalf("stitched Orphans = %d, want none (every parent present)", len(st.Orphans))
	}
	roots := 0
	for _, sp := range st.Spans {
		if sp.Trace != entry.Trace {
			t.Fatalf("span %q carries trace %s, want %s", sp.Name, sp.Trace, entry.Trace)
		}
		if sp.Parent == 0 {
			roots++
			if sp.Core != "a" || sp.Name != "invoke Msg.Print" {
				t.Fatalf("root = %q on %s, want invoke Msg.Print on a", sp.Name, sp.Core)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("stitched tree has %d roots, want exactly 1", roots)
	}
	// The serve hop on every chain core made it into the tree.
	for _, want := range []string{"b", "c"} {
		found := false
		for _, sp := range st.Spans {
			if sp.Core == want && sp.Name == "serve invoke Print" {
				found = true
			}
		}
		if !found {
			t.Fatalf("no serve span from %s in stitched tree", want)
		}
	}
}

// --- partial views -----------------------------------------------------------

// TestPartialViewUnreachableMember pins the degradation contract: a member
// that answers nothing yields a flagged partial view, never an error.
func TestPartialViewUnreachableMember(t *testing.T) {
	cl := newCluster(t, 0, "a", "b")
	ctx := ctxFor(t)
	o, err := Start(cl.core("a"), Options{
		Cores:          coreIDs("a", "b", "ghost"),
		RefreshTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()

	if err := o.Refresh(ctx); err != nil {
		t.Fatalf("Refresh with unreachable member errored: %v", err)
	}
	st := o.Status()
	if !st.Partial {
		t.Fatal("Status.Partial = false, want true")
	}
	if len(st.Unreachable) != 1 || st.Unreachable[0] != "ghost" {
		t.Fatalf("Unreachable = %v, want [ghost]", st.Unreachable)
	}
	for _, m := range st.Members {
		wantUp := m.Core != "ghost"
		if m.Reachable != wantUp {
			t.Fatalf("member %s reachable = %v, want %v", m.Core, m.Reachable, wantUp)
		}
	}

	snap := o.ClusterSnapshot()
	upOf := func(core string) float64 {
		name, err := metrics.WithLabel("cluster_member_up", "core", core)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := snap.Gauges[name]
		if !ok {
			t.Fatalf("no cluster_member_up gauge for %s", core)
		}
		return v
	}
	if upOf("a") != 1 || upOf("b") != 1 || upOf("ghost") != 0 {
		t.Fatalf("member_up gauges = a:%v b:%v ghost:%v", upOf("a"), upOf("b"), upOf("ghost"))
	}
	if snap.Gauges["cluster_members"] != 3 || snap.Gauges["cluster_members_up"] != 2 {
		t.Fatalf("members=%v up=%v, want 3/2", snap.Gauges["cluster_members"], snap.Gauges["cluster_members_up"])
	}

	// Fan-out reads degrade the same way: answers from the live members, the
	// dead one listed, no error.
	_, unreachable, err := o.Traces(ctx, 0)
	if err != nil {
		t.Fatalf("Traces with unreachable member errored: %v", err)
	}
	if len(unreachable) != 1 || unreachable[0] != "ghost" {
		t.Fatalf("Traces unreachable = %v, want [ghost]", unreachable)
	}
}

// --- metrics federation ------------------------------------------------------

// TestClusterSnapshotFederation checks the three strata of /cluster/metrics:
// per-core labeled series, summed cluster_ families, and derived gauges.
func TestClusterSnapshotFederation(t *testing.T) {
	cl := newCluster(t, 0, "a", "b")
	a := cl.core("a")
	ctx := ctxFor(t)

	r, err := a.NewCompletAt("b", "Msg", "fed")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.InvokeCtx(ctx, "Print"); err != nil {
			t.Fatal(err)
		}
	}

	o, err := Start(a, Options{Cores: coreIDs("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()
	if err := o.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	snap := o.ClusterSnapshot()

	// Every cluster_ counter equals the sum of its per-core labeled series.
	perCore := make(map[string]uint64) // merged name -> sum of labeled series
	var labeledSeen int
	for name, v := range snap.Counters {
		base, labels, err := metrics.SplitName(name)
		if err != nil {
			t.Fatalf("unparseable counter name %q: %v", name, err)
		}
		if strings.HasPrefix(base, "cluster_") {
			continue
		}
		core, ok := labels["core"]
		if !ok {
			t.Fatalf("per-core counter %q lacks a core label", name)
		}
		if core != "a" && core != "b" {
			t.Fatalf("counter %q has unexpected core label %q", name, core)
		}
		labeledSeen++
		delete(labels, "core")
		perCore[metrics.JoinLabels("cluster_"+base, labels)] += v
	}
	if labeledSeen == 0 {
		t.Fatal("no per-core labeled counters in the federated snapshot")
	}
	for merged, want := range perCore {
		if got := snap.Counters[merged]; got != want {
			t.Fatalf("merged counter %q = %d, want sum of per-core series %d", merged, got, want)
		}
	}

	// Histograms merge bucket-wise: merged Count is the sum, the bucket
	// layout survives, and bucket counts account for every observation.
	var histChecked bool
	for name, h := range snap.Histograms {
		base, labels, err := metrics.SplitName(name)
		if err != nil {
			t.Fatalf("unparseable histogram name %q: %v", name, err)
		}
		if !strings.HasPrefix(base, "cluster_") || h.Count == 0 {
			continue
		}
		histChecked = true
		var sum uint64
		for coreName := range map[string]bool{"a": true, "b": true} {
			l := make(metrics.Labels, len(labels)+1)
			for k, v := range labels {
				l[k] = v
			}
			l["core"] = coreName
			if ph, ok := snap.Histograms[metrics.JoinLabels(strings.TrimPrefix(base, "cluster_"), l)]; ok {
				sum += ph.Count
			}
		}
		if h.Count != sum {
			t.Fatalf("merged histogram %q Count = %d, want %d (sum of members)", name, h.Count, sum)
		}
		if len(h.Bounds) == 0 || len(h.Bounds) != len(h.Buckets) {
			t.Fatalf("merged histogram %q lost its bucket layout (%d bounds, %d buckets)", name, len(h.Bounds), len(h.Buckets))
		}
		var inBuckets uint64
		for _, c := range h.Buckets {
			inBuckets += c
		}
		if inBuckets != h.Count {
			t.Fatalf("merged histogram %q buckets hold %d observations, Count says %d", name, inBuckets, h.Count)
		}
	}
	if !histChecked {
		t.Fatal("no populated merged histogram to check")
	}

	// The exposition page renders and carries the per-core labels.
	var buf bytes.Buffer
	metrics.WritePrometheus(&buf, snap)
	page := buf.String()
	for _, want := range []string{`core="a"`, `core="b"`, "cluster_members 2", "cluster_member_up"} {
		if !strings.Contains(page, want) {
			t.Fatalf("exposition page lacks %q:\n%s", want, page)
		}
	}
}

// --- timeline ----------------------------------------------------------------

func at(ms int) time.Time { return time.Unix(0, int64(ms)*int64(time.Millisecond)) }

// TestMergeBatchesOrdering: the k-way merge orders by time across batches but
// NEVER reorders within one batch (a core's Seq order is causal truth even
// when its clock jumps).
func TestMergeBatchesOrdering(t *testing.T) {
	batchA := []Event{
		{Core: "a", Seq: 1, At: at(0)},
		{Core: "a", Seq: 2, At: at(20)},
		{Core: "a", Seq: 3, At: at(40)},
	}
	batchB := []Event{
		{Core: "b", Seq: 1, At: at(10)},
		{Core: "b", Seq: 2, At: at(30)},
	}
	merged := mergeBatches([][]Event{batchA, batchB})
	var got []string
	for _, ev := range merged {
		got = append(got, fmt.Sprintf("%s%d", ev.Core, ev.Seq))
	}
	want := "a1 b1 a2 b2 a3"
	if strings.Join(got, " ") != want {
		t.Fatalf("merged order = %v, want %s", got, want)
	}

	// A batch with an inverted clock still comes out in Seq order.
	skewed := []Event{
		{Core: "s", Seq: 1, At: at(50)},
		{Core: "s", Seq: 2, At: at(5)}, // clock jumped backwards
	}
	merged = mergeBatches([][]Event{skewed, batchB})
	pos := map[string]int{}
	for i, ev := range merged {
		pos[fmt.Sprintf("%s%d", ev.Core, ev.Seq)] = i
	}
	if pos["s1"] > pos["s2"] {
		t.Fatalf("merge reordered within a batch: %v", merged)
	}
	if pos["b1"] > pos["b2"] {
		t.Fatalf("merge reordered within a batch: %v", merged)
	}
}

// TestTimelineMergeAndSubscribe runs the e2e path: flight events recorded on
// two cores surface in one merged timeline with a strictly increasing merge
// clock and per-core Seq order intact, and subscribers see fresh events live.
func TestTimelineMergeAndSubscribe(t *testing.T) {
	cl := newCluster(t, 0, "a", "b")
	a := cl.core("a")
	ctx := ctxFor(t)

	o, err := Start(a, Options{Cores: coreIDs("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()

	r, err := a.NewComplet("Msg", "mover")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	if err := o.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	events := o.Timeline(0)
	if len(events) == 0 {
		t.Fatal("timeline empty after a move")
	}
	foundMove := false
	lastMerge := uint64(0)
	lastSeq := map[string]uint64{}
	for _, ev := range events {
		if ev.Merge <= lastMerge {
			t.Fatalf("merge clock not strictly increasing: %d after %d", ev.Merge, lastMerge)
		}
		lastMerge = ev.Merge
		if ev.Seq <= lastSeq[ev.Core] {
			t.Fatalf("per-core Seq order violated for %s: %d after %d", ev.Core, ev.Seq, lastSeq[ev.Core])
		}
		lastSeq[ev.Core] = ev.Seq
		if ev.Kind == flight.KindMove {
			foundMove = true
		}
	}
	if !foundMove {
		t.Fatalf("no %s event in merged timeline: %+v", flight.KindMove, events)
	}

	backlog, ch, cancel := o.Subscribe(16)
	defer cancel()
	if len(backlog) != len(events) {
		t.Fatalf("backlog = %d events, want the full retained timeline (%d)", len(backlog), len(events))
	}

	// A fresh move on b must arrive through the live channel.
	if err := cl.core("b").MoveByID(r.Target(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := o.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-ch:
			if ev.Kind == flight.KindMove && ev.Core == "b" {
				return // delivered
			}
		case <-deadline:
			t.Fatal("no live move event delivered to the subscriber")
		}
	}
}

// TestPlanAppliedReachesTimeline: planner decisions are flight events on the
// planning core, so an actuated move surfaces in the merged timeline as
// planApplied — the interleaving the acceptance criteria call for.
func TestPlanAppliedReachesTimeline(t *testing.T) {
	cl := newCluster(t, 0, "c1", "c2")
	c1 := cl.core("c1")
	ctx := ctxFor(t)

	f, err := c1.NewCompletAt("c1", "Front", "f")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c1.NewCompletAt("c2", "Back", "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Invoke("Wire", b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := f.Invoke("Call"); err != nil {
			t.Fatal(err)
		}
	}

	p, err := plan.Start(c1, plan.Options{
		Cores:   coreIDs("c1", "c2"),
		Pinned:  []ids.CompletID{f.Target()},
		MinGain: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	round, err := p.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if round.Applied == 0 {
		t.Fatalf("planner applied no moves: %+v", round)
	}

	o, err := Start(c1, Options{Cores: coreIDs("c1", "c2")})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()
	if err := o.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	for _, ev := range o.Timeline(0) {
		if ev.Kind == flight.KindPlanApplied {
			return
		}
	}
	t.Fatalf("no %s event in merged timeline", flight.KindPlanApplied)
}

// TestStatusAndDynamicMembership: an observatory with no configured members
// observes itself plus its peers, and members once seen stay in the model.
func TestStatusAndDynamicMembership(t *testing.T) {
	cl := newCluster(t, 0, "a", "b")
	a := cl.core("a")
	a.SeedPeers("b")
	ctx := ctxFor(t)

	o, err := Start(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()
	if _, dup := For(a); !dup {
		t.Fatal("For did not find the started observatory")
	}
	if _, err := Start(a, Options{}); err == nil {
		t.Fatal("second Start on the same core did not error")
	}
	if err := o.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	st := o.Status()
	var names []string
	for _, m := range st.Members {
		names = append(names, m.Core)
	}
	sort.Strings(names)
	if strings.Join(names, ",") != "a,b" {
		t.Fatalf("dynamic members = %v, want [a b]", names)
	}
	if st.Partial {
		t.Fatalf("Partial = true with all members up: %+v", st)
	}
}

// --- subscriber lifecycle ----------------------------------------------------

// TestSubscribeCancelIdempotent: cancel is documented safe; calling it twice,
// after Stop, or on a subscription taken from a stopped observatory must all
// be no-ops, never a close-of-closed panic.
func TestSubscribeCancelIdempotent(t *testing.T) {
	cl := newCluster(t, 0, "a")
	o, err := Start(cl.core("a"), Options{Cores: coreIDs("a")})
	if err != nil {
		t.Fatal(err)
	}
	_, ch, cancel := o.Subscribe(4)
	cancel()
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel delivered after cancel")
	}
	_, ch2, cancel2 := o.Subscribe(4)
	o.Stop()
	if _, ok := <-ch2; ok {
		t.Fatal("channel delivered after Stop")
	}
	cancel2() // Stop already closed the channel
	cancel2()
	_, ch3, cancel3 := o.Subscribe(4)
	if _, ok := <-ch3; ok {
		t.Fatal("subscription on a stopped observatory delivered an event")
	}
	cancel3()
}

// TestSubscribeRefreshStopRace hammers the subscriber lifecycle against
// refresh fan-outs: cancels (and double-cancels) race live deliveries, and
// Stop races an in-flight Refresh — the send-on-closed-channel window the
// per-subscriber closed flag removes. Run under -race.
func TestSubscribeRefreshStopRace(t *testing.T) {
	cl := newCluster(t, 0, "a", "b")
	a := cl.core("a")
	ctx := ctxFor(t)
	o, err := Start(a, Options{Cores: coreIDs("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.NewComplet("Msg", "racer")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Workload: keep the flight recorders busy so refreshes deliver events.
	wg.Add(1)
	go func() {
		defer wg.Done()
		loc := ids.CoreID("a")
		next := map[ids.CoreID]ids.CoreID{"a": "b", "b": "a"}
		for {
			select {
			case <-stop:
				return
			default:
			}
			dst := next[loc]
			if err := cl.cores[loc].MoveByID(r.Target(), dst); err != nil {
				return
			}
			loc = dst
		}
	}()
	// Refresher: keeps fanning out past Stop, like an HTTP-driven refresh.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = o.Refresh(ctx)
		}
	}()
	// Churning subscribers: subscribe, maybe drain one event, cancel twice.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, ch, cancel := o.Subscribe(1)
				select {
				case <-ch:
				default:
				}
				cancel()
				cancel()
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	o.Stop() // races the still-running refresher and subscriber churn
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestMemberRestartResetsSeqHighWater: a member whose flight recorder
// restarted (Seq counter reset) must not be filtered out forever by the
// observatory's stale per-member high-water mark — the Total regression in
// its reply resets the mark, and the following refresh merges its events
// again.
func TestMemberRestartResetsSeqHighWater(t *testing.T) {
	cl := newCluster(t, 0, "a", "b")
	a := cl.core("a")
	ctx := ctxFor(t)
	o, err := Start(a, Options{Cores: coreIDs("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()
	r, err := a.NewComplet("Msg", "phoenix")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	// b initiates a move so ITS flight recorder holds events.
	if err := cl.core("b").MoveByID(r.Target(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := o.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	bID := ids.CoreID("b")
	o.mu.Lock()
	mb := o.members[bID]
	if mb == nil || mb.lastSeq == 0 {
		o.mu.Unlock()
		t.Fatal("no flight events merged from b before the simulated restart")
	}
	// Simulate b having restarted: its recorder's Seq space is reset, so the
	// retained high water is far beyond anything b will ever report again.
	mb.lastSeq = 1 << 40
	o.mu.Unlock()

	// The next refresh sees Total < lastSeq and resets the high water (the
	// reply's events were filtered by the stale mark, so none merge yet).
	if err := o.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	o.mu.Lock()
	got := o.members[bID].lastSeq
	o.mu.Unlock()
	if got >= 1<<40 {
		t.Fatalf("lastSeq = %d after Seq regression, want reset", got)
	}
	// The refresh after that pulls b's events from the reset mark.
	countB := func() int {
		n := 0
		for _, ev := range o.Timeline(0) {
			if ev.Core == "b" {
				n++
			}
		}
		return n
	}
	before := countB()
	if err := o.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if after := countB(); after <= before {
		t.Fatalf("timeline holds %d events from b after restart recovery, want > %d", after, before)
	}
}

// --- benchmark (E15: scrape latency vs. member count) ------------------------

func BenchmarkObservatoryRefresh(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			names := make([]string, n)
			for i := range names {
				names[i] = fmt.Sprintf("m%d", i)
			}
			cl := newCluster(b, 0, names...)
			api := cl.core(names[0])
			// Some layout churn so every refresh carries real payloads.
			for i := 0; i < n; i++ {
				r, err := api.NewCompletAt(ids.CoreID(names[i]), "Msg", fmt.Sprintf("w%d", i))
				if err != nil {
					b.Fatal(err)
				}
				if err := api.MoveByID(r.Target(), ids.CoreID(names[(i+1)%n])); err != nil {
					b.Fatal(err)
				}
			}
			o, err := Start(api, Options{Cores: coreIDs(names...)})
			if err != nil {
				b.Fatal(err)
			}
			defer o.Stop()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := o.Refresh(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
