package observatory

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"fargo/internal/core"
	"fargo/internal/ids"
	"fargo/internal/trace"
	"fargo/internal/wire"
)

// Trace assembly. Each core's collector only retains the spans recorded
// THERE: a cross-core invocation leaves its root at the caller, serve/exec
// spans at every chain hop, and move/repair spans wherever those ran. The
// observatory stitches a deployment-wide view: fan out a single-trace fetch
// to every member, dedupe spans observed through more than one member,
// rebuild the causal tree by parent-span links, and report spans whose
// parent is missing (evicted ring, unreachable member) as orphans — they
// render as extra roots rather than vanishing. Stitching rules: a span
// belongs to the tree iff it carries the TraceID; parent links are trusted
// (IDs are random 64-bit, collisions negligible); missing parents promote,
// never drop.

// TraceEntry is one trace in the merged cluster listing.
type TraceEntry struct {
	Trace trace.TraceID `json:"-"`
	ID    string        `json:"id"`
	// Root is the root span's name, known when some member holds the root.
	Root string `json:"root,omitempty"`
	// Spans is the total span count across members; Cores lists the members
	// holding shards of this trace.
	Spans int       `json:"spans"`
	Cores []string  `json:"cores"`
	Start time.Time `json:"start"`
	// DurationNanos spans the earliest start to the latest known end.
	DurationNanos int64 `json:"duration_ns"`
}

// Stitched is one assembled cross-core trace.
type Stitched struct {
	Trace trace.TraceID
	// Spans is the deduped union of every member's shard.
	Spans []trace.Span
	// Cores lists the members contributing spans, sorted.
	Cores []string
	// Orphans are non-root spans whose parent is missing from Spans.
	Orphans []trace.Span
	// Unreachable lists members that did not answer the fan-out; a
	// non-empty list means the tree may be missing shards.
	Unreachable []ids.CoreID
}

// obsFanOut sends one ObsQuery to every member concurrently and returns the
// answers plus the members that failed.
func (o *Observatory) obsFanOut(ctx context.Context, req wire.ObsQuery) (map[ids.CoreID]wire.ObsQueryReply, []ids.CoreID) {
	members := o.memberList()
	type answer struct {
		id    ids.CoreID
		reply wire.ObsQueryReply
		err   error
	}
	answers := make([]answer, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m ids.CoreID) {
			defer wg.Done()
			reply, err := o.c.ObsAtCtx(ctx, m, req)
			answers[i] = answer{id: m, reply: reply, err: err}
		}(i, m)
	}
	wg.Wait()
	out := make(map[ids.CoreID]wire.ObsQueryReply, len(members))
	var unreachable []ids.CoreID
	for _, a := range answers {
		if a.err != nil {
			unreachable = append(unreachable, a.id)
			continue
		}
		out[a.id] = a.reply
	}
	return out, unreachable
}

// Traces lists the traces retained anywhere in the deployment, merged by
// TraceID (newest first), plus the members that did not answer. It errors
// only when no member answered at all.
func (o *Observatory) Traces(ctx context.Context, max int) ([]TraceEntry, []ids.CoreID, error) {
	replies, unreachable := o.obsFanOut(ctx, wire.ObsQuery{Traces: true, TraceMax: max})
	if len(replies) == 0 {
		return nil, unreachable, fmt.Errorf("observatory: no member answered the trace listing (%d unreachable)", len(unreachable))
	}
	byID := make(map[trace.TraceID]*TraceEntry)
	// The merged duration must be order-independent (replies is a map):
	// track the max end per trace separately and derive DurationNanos only
	// once every shard has widened both bounds. Iterate members in sorted
	// order anyway so the whole merge is deterministic across identical
	// inputs.
	maxEnd := make(map[trace.TraceID]time.Time)
	memberIDs := make([]ids.CoreID, 0, len(replies))
	for id := range replies {
		memberIDs = append(memberIDs, id)
	}
	sort.Slice(memberIDs, func(i, j int) bool { return memberIDs[i] < memberIDs[j] })
	for _, id := range memberIDs {
		reply := replies[id]
		if reply.Traces == nil {
			continue
		}
		for _, s := range reply.Traces.Summaries {
			tid := trace.TraceID(s.Trace)
			e, ok := byID[tid]
			if !ok {
				e = &TraceEntry{Trace: tid, ID: tid.String(), Start: time.Unix(0, s.StartUnixNanos)}
				byID[tid] = e
			}
			e.Spans += s.Spans
			e.Cores = append(e.Cores, id.String())
			if s.Root != "" {
				e.Root = s.Root
			}
			start := time.Unix(0, s.StartUnixNanos)
			end := start.Add(time.Duration(s.DurationNanos))
			if start.Before(e.Start) {
				e.Start = start
			}
			if end.After(maxEnd[tid]) {
				maxEnd[tid] = end
			}
		}
	}
	out := make([]TraceEntry, 0, len(byID))
	for id, e := range byID {
		if d := maxEnd[id].Sub(e.Start).Nanoseconds(); d > 0 {
			e.DurationNanos = d
		}
		sort.Strings(e.Cores)
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out, unreachable, nil
}

// Stitch assembles one trace from every member's shard. It errors only when
// no member answered; an incomplete answer set comes back as a flagged
// partial tree (Unreachable non-empty).
func (o *Observatory) Stitch(ctx context.Context, id trace.TraceID) (Stitched, error) {
	replies, unreachable := o.obsFanOut(ctx, wire.ObsQuery{Trace: uint64(id)})
	if len(replies) == 0 {
		return Stitched{}, fmt.Errorf("observatory: no member answered the span fetch for %s (%d unreachable)", id, len(unreachable))
	}
	st := Stitched{Trace: id, Unreachable: unreachable}
	coreSet := make(map[string]bool)
	var all []trace.Span
	for _, reply := range replies {
		spans := core.SpansFromWire(reply.Spans)
		for _, sp := range spans {
			coreSet[sp.Core] = true
		}
		all = append(all, spans...)
	}
	st.Spans = trace.Dedupe(all)
	sort.SliceStable(st.Spans, func(i, j int) bool { return st.Spans[i].Start.Before(st.Spans[j].Start) })
	st.Orphans = trace.Orphans(st.Spans)
	for c := range coreSet {
		st.Cores = append(st.Cores, c)
	}
	sort.Strings(st.Cores)
	sort.Slice(st.Unreachable, func(i, j int) bool { return st.Unreachable[i] < st.Unreachable[j] })
	return st, nil
}
