package observatory

import (
	"sort"
	"time"

	"fargo/internal/core"
	"fargo/internal/ids"
	"fargo/internal/metrics"
	"fargo/internal/stats"
)

// Metrics federation. One /cluster/metrics page carries three strata:
//
//  1. per-core series: every member series re-exposed under its original
//     family name with a core="<id>" label added (existing labels kept);
//  2. merged families: cluster_<name> series summed across members —
//     counters and gauges add, histograms merge bucket-wise via
//     stats.MergeHistogramSnapshots (same log-bucket layout on every core);
//  3. derived deployment gauges: membership and reachability
//     (cluster_members, cluster_member_up{core=...}), the cross-core
//     invocation rate derived from successive refreshes of the summed
//     forwarded-invocation counter, moves in flight, and the suspect count.
//
// Everything is computed from the model of the last refresh — a scrape never
// fans out on its own, so a slow member cannot slow Prometheus down.

// ClusterSnapshot renders the federated model as one metrics.Snapshot
// (WritePrometheus turns it into the exposition page).
func (o *Observatory) ClusterSnapshot() metrics.Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()

	out := metrics.Snapshot{
		At:         o.lastRefresh,
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]stats.HistogramSnapshot),
	}
	if out.At.IsZero() {
		out.At = time.Now()
	}

	mergedCounters := make(map[string]uint64)
	mergedGauges := make(map[string]float64)
	mergedHists := make(map[string][]stats.HistogramSnapshot)

	var members, up, complets int
	var movesInFlight, suspects int

	keys := memberKeys(o.members)
	for _, id := range keys {
		m := o.members[id]
		members++
		coreLabel := id.String()
		if m.reachable {
			up++
		}
		upv := 0.0
		if m.reachable {
			upv = 1.0
		}
		if labeled, err := metrics.WithLabel("cluster_member_up", "core", coreLabel); err == nil {
			out.Gauges[labeled] = upv
		}
		if h := m.health; h != nil {
			complets += h.Complets
			movesInFlight += h.MovesInFlight
			for _, p := range h.Peers {
				if p.Suspect {
					suspects++
				}
			}
		}
		if m.stats == nil {
			continue
		}
		for name, v := range m.stats.Counters {
			if labeled, err := metrics.WithLabel(name, "core", coreLabel); err == nil {
				out.Counters[labeled] = v
			}
			if merged, err := mergedName(name); err == nil {
				mergedCounters[merged] += v
			}
		}
		for name, v := range m.stats.Gauges {
			if labeled, err := metrics.WithLabel(name, "core", coreLabel); err == nil {
				out.Gauges[labeled] = v
			}
			if merged, err := mergedName(name); err == nil {
				mergedGauges[merged] += v
			}
		}
		for name, h := range m.stats.Histograms {
			// Exemplars ride along (core.HistStatToSnapshot restores them),
			// so a federated bucket still points at a trace some member can
			// resolve via /cluster/trace/{id}.
			snap := core.HistStatToSnapshot(h)
			if labeled, err := metrics.WithLabel(name, "core", coreLabel); err == nil {
				out.Histograms[labeled] = snap
			}
			if merged, err := mergedName(name); err == nil {
				mergedHists[merged] = append(mergedHists[merged], snap)
			}
		}
	}

	for name, v := range mergedCounters {
		out.Counters[name] = v
	}
	for name, v := range mergedGauges {
		out.Gauges[name] = v
	}
	for name, parts := range mergedHists {
		out.Histograms[name] = stats.MergeHistogramSnapshots(parts)
	}

	out.Gauges["cluster_members"] = float64(members)
	out.Gauges["cluster_members_up"] = float64(up)
	out.Gauges["cluster_complets"] = float64(complets)
	out.Gauges["cluster_moves_in_flight"] = float64(movesInFlight)
	out.Gauges["cluster_suspects"] = float64(suspects)
	out.Gauges["cluster_cross_core_invoke_rate"] = o.crossRate
	return out
}

// mergedName maps a member series name to its cluster_ family: the base name
// gains the prefix, original labels are kept (so per-label series of one
// family merge label-set-wise across cores).
func mergedName(full string) (string, error) {
	base, labels, err := metrics.SplitName(full)
	if err != nil {
		return "", err
	}
	return metrics.JoinLabels("cluster_"+base, labels), nil
}

// memberKeys returns the member IDs sorted for deterministic iteration.
func memberKeys(m map[ids.CoreID]*member) []ids.CoreID {
	keys := make([]ids.CoreID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
