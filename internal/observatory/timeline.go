package observatory

import (
	"sync"
	"time"
)

// The merged timeline. Each member's flight recorder already carries a
// per-core causal order (strictly monotonic Seq, stamped under the same lock
// as the wall clock, so At never regresses along Seq). A refresh pulls each
// member's unseen suffix and weaves the batches into one total order with a
// k-way merge: the earliest wall-clock head wins, ties break on core name,
// and events of one core are NEVER reordered relative to each other — the
// merge consumes each batch strictly in Seq order. The chosen total order is
// then stamped with a Lamport-style merge clock (Event.Merge), so consumers
// can refer to "the timeline as of merge N" stably even though wall clocks
// across machines are only loosely synchronized (the paper's LAN setting).
//
// Planner decisions interleave for free: the planner mirrors every verdict
// into its core's flight recorder (planApplied/planSkipped), which is just
// another member feed here.

// Event is one merged timeline entry: a flight-recorder event plus its
// origin core and merge stamp.
type Event struct {
	// Merge is the Lamport-style merge clock: the position of this event in
	// the observatory's total order (1-based, strictly monotonic).
	Merge uint64 `json:"merge"`
	// Core is the member the event happened on; Seq its per-core causal
	// sequence number.
	Core string `json:"core"`
	Seq  uint64 `json:"seq"`
	// At is the wall-clock record time at the origin core.
	At time.Time `json:"at"`
	// Kind and the remaining fields mirror flight.Event.
	Kind          string `json:"kind"`
	Complet       string `json:"complet,omitempty"`
	Peer          string `json:"peer,omitempty"`
	Detail        string `json:"detail,omitempty"`
	DurationNanos int64  `json:"duration_ns,omitempty"`
	Bytes         int    `json:"bytes,omitempty"`
	Err           string `json:"err,omitempty"`
}

// mergeBatches k-way merges per-member event batches (each Seq-ascending)
// into one slice ordered by (At, Core) without ever reordering a single
// member's events.
func mergeBatches(batches [][]Event) []Event {
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	if total == 0 {
		return nil
	}
	out := make([]Event, 0, total)
	heads := make([]int, len(batches))
	for len(out) < total {
		best := -1
		for i, b := range batches {
			if heads[i] >= len(b) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			h, bh := b[heads[i]], batches[best][heads[best]]
			if h.At.Before(bh.At) || (h.At.Equal(bh.At) && h.Core < bh.Core) {
				best = i
			}
		}
		out = append(out, batches[best][heads[best]])
		heads[best]++
	}
	return out
}

// Timeline returns the retained merged timeline, oldest first. max > 0
// limits the result to the newest max events.
func (o *Observatory) Timeline(max int) []Event {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := len(o.timeline)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Event, n)
	copy(out, o.timeline[len(o.timeline)-n:])
	return out
}

// subscriber is one live timeline consumer. A Refresh fans out to a snapshot
// of the subs map taken under o.mu, so by the time it sends, a concurrent
// cancel (client disconnect) or Stop may already have removed the
// subscriber; the per-subscriber mutex and closed flag make that safe —
// every send and the (single) close happen under mu, so a send can never hit
// a closed channel.
type subscriber struct {
	mu     sync.Mutex
	ch     chan Event
	closed bool
}

// send delivers ev without blocking; a full buffer drops the event, a closed
// subscriber ignores it.
func (s *subscriber) send(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.ch <- ev:
	default:
	}
}

// close closes the channel exactly once; extra calls are no-ops.
func (s *subscriber) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// Subscribe registers a live timeline consumer: backlog is the retained
// timeline at subscription time (replayed so a late consumer sees history),
// and ch delivers every event merged afterwards. A consumer that falls
// behind its channel buffer loses events (delivery never blocks a refresh).
// cancel unregisters and closes ch; it is idempotent and safe to call
// concurrently with refreshes and Stop. The channel also closes when the
// observatory stops.
func (o *Observatory) Subscribe(buf int) (backlog []Event, ch <-chan Event, cancel func()) {
	if buf <= 0 {
		buf = 256
	}
	s := &subscriber{ch: make(chan Event, buf)}
	cancel = func() {
		o.mu.Lock()
		delete(o.subs, s)
		o.mu.Unlock()
		s.close()
	}
	o.mu.Lock()
	backlog = make([]Event, len(o.timeline))
	copy(backlog, o.timeline)
	if o.stopped {
		o.mu.Unlock()
		s.close()
		return backlog, s.ch, cancel
	}
	o.subs[s] = struct{}{}
	o.mu.Unlock()
	return backlog, s.ch, cancel
}
