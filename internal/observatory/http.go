package observatory

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"fargo/internal/flight"
	"fargo/internal/layoutview"
	"fargo/internal/metrics"
	"fargo/internal/trace"
)

// HTTP surface. The observatory does not listen on its own: the per-core ops
// plane (internal/obs) routes every /cluster/* request to the observatory
// attached to its core, so any core that hosts both automatically grows the
// cluster endpoints, and fargo-monitor -web serves the same handlers from
// its embedded core.
//
//	/cluster/           self-contained HTML page (layout graph + live timeline)
//	/cluster/status     membership and staleness (JSON; partial view flag)
//	/cluster/metrics    federated Prometheus exposition
//	/cluster/timeline   merged timeline (JSON; ?n= newest n; ?follow=1 = SSE)
//	/cluster/alerts     alert transitions across the deployment (JSON; ?follow=1 = SSE)
//	/cluster/traces     merged trace listing (JSON)
//	/cluster/trace/{id} stitched trace (text tree; ?format=chrome|json)
//	/cluster/layout     per-member complet placement (JSON)
//
// Every read serves the model of the last refresh after RefreshIfStale, so
// an observatory without a background loop still answers with bounded
// staleness and an idle one costs nothing.

// ServeHTTP implements the /cluster/* endpoint family.
func (o *Observatory) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/cluster")
	switch {
	case path == "" || path == "/":
		o.servePage(w, r)
	case path == "/status":
		o.serveStatus(w, r)
	case path == "/metrics":
		o.serveMetrics(w, r)
	case path == "/timeline":
		o.serveTimeline(w, r)
	case path == "/alerts":
		o.serveAlerts(w, r)
	case path == "/traces":
		o.serveTraces(w, r)
	case strings.HasPrefix(path, "/trace/"):
		o.serveTrace(w, r, strings.TrimPrefix(path, "/trace/"))
	case path == "/layout":
		o.serveLayout(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (o *Observatory) refreshForRead(r *http.Request) {
	ctx, cancel := contextTimeout(r, o.opts.RefreshTimeout)
	defer cancel()
	if err := o.RefreshIfStale(ctx); err != nil {
		o.logf("observatory %s: read refresh: %v", o.c.ID(), err)
	}
}

// contextTimeout bounds request-driven work by both the client connection
// and the observatory's refresh budget.
func contextTimeout(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), d)
}

func (o *Observatory) serveStatus(w http.ResponseWriter, r *http.Request) {
	o.refreshForRead(r)
	writeJSON(w, o.Status())
}

func (o *Observatory) serveMetrics(w http.ResponseWriter, r *http.Request) {
	o.refreshForRead(r)
	w.Header().Set("Content-Type", metrics.PrometheusContentType)
	metrics.WritePrometheus(w, o.ClusterSnapshot())
}

// timelineBody is the JSON served by /cluster/timeline.
type timelineBody struct {
	Core    string   `json:"core"`
	Partial bool     `json:"partial"`
	Events  []Event  `json:"events"`
	Members []string `json:"unreachable,omitempty"`
}

func (o *Observatory) serveTimeline(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("follow") != "" || r.Header.Get("Accept") == "text/event-stream" {
		o.serveTimelineSSE(w, r, nil)
		return
	}
	o.refreshForRead(r)
	max := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		max = n
	}
	st := o.Status()
	body := timelineBody{Core: st.Core, Partial: st.Partial, Members: st.Unreachable, Events: o.Timeline(max)}
	if body.Events == nil {
		body.Events = []Event{}
	}
	writeJSON(w, body)
}

// serveTimelineSSE streams the merged timeline as text/event-stream: the
// retained backlog first (so a late viewer sees history), then every event
// as it merges. A non-nil keep predicate narrows the stream (the /cluster/
// alerts feed keeps only alert transitions); the backlog replay bound and
// the keepalive ticks apply either way. While the stream is open the handler
// keeps the model fresh itself, so SSE works with or without a background
// refresh loop.
func (o *Observatory) serveTimelineSSE(w http.ResponseWriter, r *http.Request, keep func(Event) bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	backlog, ch, cancel := o.Subscribe(256)
	defer cancel()

	replay := 64
	if q := r.URL.Query().Get("replay"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n >= 0 {
			replay = n
		}
	}
	if keep != nil {
		kept := backlog[:0:0]
		for _, ev := range backlog {
			if keep(ev) {
				kept = append(kept, ev)
			}
		}
		backlog = kept
	}
	if len(backlog) > replay {
		backlog = backlog[len(backlog)-replay:]
	}
	for _, ev := range backlog {
		writeSSE(w, ev)
	}
	fl.Flush()

	tick := time.NewTicker(o.opts.StaleAfter)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return // observatory stopped
			}
			if keep != nil && !keep(ev) {
				continue
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-tick.C:
			ctx, cancelRefresh := contextTimeout(r, o.opts.RefreshTimeout)
			err := o.RefreshIfStale(ctx)
			cancelRefresh()
			if err != nil {
				o.logf("observatory %s: sse refresh: %v", o.c.ID(), err)
			}
			// Comment line: keeps idle connections alive and flushes
			// intermediaries.
			fmt.Fprint(w, ": tick\n\n")
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: timeline\ndata: %s\n\n", data)
}

// isAlertEvent keeps the alert transitions out of the merged timeline. The
// observatory deliberately does not import the alert engine (the engine sits
// above the observatory and reads its federated model): alert state travels
// the same path as every other layout event — a flight record at the member,
// merged here — so /cluster/alerts works for rules evaluated on ANY member,
// not just on the observatory's own core.
func isAlertEvent(ev Event) bool {
	return ev.Kind == flight.KindAlertFiring || ev.Kind == flight.KindAlertResolved
}

// alertsBody is the JSON served by /cluster/alerts.
type alertsBody struct {
	Core        string   `json:"core"`
	Partial     bool     `json:"partial"`
	Unreachable []string `json:"unreachable,omitempty"`
	// Firing lists the rules currently firing deployment-wide, derived by
	// replaying the retained alert transitions per (core, rule).
	Firing []FiringAlert `json:"firing"`
	// Events is the alert slice of the merged timeline, oldest first.
	Events []Event `json:"events"`
}

// FiringAlert is one currently-firing rule in an alertsBody.
type FiringAlert struct {
	Core  string    `json:"core"`
	Rule  string    `json:"rule"`
	Since time.Time `json:"since"`
}

func (o *Observatory) serveAlerts(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("follow") != "" || r.Header.Get("Accept") == "text/event-stream" {
		o.serveTimelineSSE(w, r, isAlertEvent)
		return
	}
	o.refreshForRead(r)
	max := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		max = n
	}
	st := o.Status()
	body := alertsBody{
		Core:        st.Core,
		Partial:     st.Partial,
		Unreachable: st.Unreachable,
		Firing:      []FiringAlert{},
		Events:      []Event{},
	}
	firing := make(map[string]FiringAlert) // key: core + "\x00" + rule
	for _, ev := range o.Timeline(0) {
		if !isAlertEvent(ev) {
			continue
		}
		body.Events = append(body.Events, ev)
		rule := ev.Detail
		if i := strings.Index(rule, ":"); i >= 0 {
			rule = rule[:i]
		}
		key := ev.Core + "\x00" + rule
		if ev.Kind == flight.KindAlertFiring {
			firing[key] = FiringAlert{Core: ev.Core, Rule: rule, Since: ev.At}
		} else {
			delete(firing, key)
		}
	}
	if max > 0 && len(body.Events) > max {
		body.Events = body.Events[len(body.Events)-max:]
	}
	for _, f := range firing {
		body.Firing = append(body.Firing, f)
	}
	sort.Slice(body.Firing, func(i, j int) bool {
		if body.Firing[i].Core != body.Firing[j].Core {
			return body.Firing[i].Core < body.Firing[j].Core
		}
		return body.Firing[i].Rule < body.Firing[j].Rule
	})
	writeJSON(w, body)
}

// tracesBody is the JSON served by /cluster/traces.
type tracesBody struct {
	Core        string       `json:"core"`
	Partial     bool         `json:"partial"`
	Unreachable []string     `json:"unreachable,omitempty"`
	Traces      []TraceEntry `json:"traces"`
}

func (o *Observatory) serveTraces(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := contextTimeout(r, o.opts.RefreshTimeout)
	defer cancel()
	entries, unreachable, err := o.Traces(ctx, 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	body := tracesBody{Core: o.c.ID().String(), Partial: len(unreachable) > 0, Traces: entries}
	if body.Traces == nil {
		body.Traces = []TraceEntry{}
	}
	for _, u := range unreachable {
		body.Unreachable = append(body.Unreachable, u.String())
	}
	writeJSON(w, body)
}

func (o *Observatory) serveTrace(w http.ResponseWriter, r *http.Request, rawID string) {
	id, err := trace.ParseTraceID(rawID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := contextTimeout(r, o.opts.RefreshTimeout)
	defer cancel()
	st, err := o.Stitch(ctx, id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	switch r.URL.Query().Get("format") {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", "fargo-cluster-trace-"+id.String()+".json"))
		if err := trace.WriteChromeJSON(w, st.Spans); err != nil {
			o.logf("observatory %s: chrome export: %v", o.c.ID(), err)
		}
	case "json":
		writeJSON(w, stitchedBody(st))
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace %s: %d span(s) across %s\n", id, len(st.Spans), strings.Join(st.Cores, ", "))
		if len(st.Unreachable) > 0 {
			fmt.Fprintf(w, "PARTIAL: %d member(s) unreachable:", len(st.Unreachable))
			for _, u := range st.Unreachable {
				fmt.Fprintf(w, " %s", u)
			}
			fmt.Fprintln(w)
		}
		if len(st.Orphans) > 0 {
			fmt.Fprintf(w, "%d orphaned span(s) (parent missing; promoted to roots)\n", len(st.Orphans))
		}
		fmt.Fprintln(w)
		trace.FormatTree(w, st.Spans)
	}
}

// stitchedJSON is the ?format=json rendering of a stitched trace.
type stitchedJSON struct {
	Trace       string     `json:"trace"`
	Cores       []string   `json:"cores"`
	Spans       []spanJSON `json:"spans"`
	Orphans     []string   `json:"orphans,omitempty"`
	Unreachable []string   `json:"unreachable,omitempty"`
	Partial     bool       `json:"partial"`
}

type spanJSON struct {
	ID       string `json:"id"`
	Parent   string `json:"parent,omitempty"`
	Name     string `json:"name"`
	Core     string `json:"core"`
	Start    int64  `json:"start_unix_ns"`
	Duration int64  `json:"duration_ns"`
	Err      string `json:"err,omitempty"`
}

func stitchedBody(st Stitched) stitchedJSON {
	body := stitchedJSON{
		Trace:   st.Trace.String(),
		Cores:   st.Cores,
		Partial: len(st.Unreachable) > 0,
		Spans:   make([]spanJSON, 0, len(st.Spans)),
	}
	for _, sp := range st.Spans {
		sj := spanJSON{
			ID:       fmt.Sprintf("%016x", uint64(sp.ID)),
			Name:     sp.Name,
			Core:     sp.Core,
			Start:    sp.Start.UnixNano(),
			Duration: sp.Duration.Nanoseconds(),
			Err:      sp.Err,
		}
		if sp.Parent != 0 {
			sj.Parent = fmt.Sprintf("%016x", uint64(sp.Parent))
		}
		body.Spans = append(body.Spans, sj)
	}
	for _, sp := range st.Orphans {
		body.Orphans = append(body.Orphans, fmt.Sprintf("%016x", uint64(sp.ID)))
	}
	for _, u := range st.Unreachable {
		body.Unreachable = append(body.Unreachable, u.String())
	}
	return body
}

// layoutBody is the JSON served by /cluster/layout: complet placement per
// member from the last refresh, rows in the shared layoutview.Row shape.
type layoutBody struct {
	Core    string           `json:"core"`
	Partial bool             `json:"partial"`
	Cores   []layoutview.Row `json:"cores"`
}

func (o *Observatory) serveLayout(w http.ResponseWriter, r *http.Request) {
	o.refreshForRead(r)
	o.mu.Lock()
	body := layoutBody{Core: o.c.ID().String(), Cores: []layoutview.Row{}}
	for _, id := range memberKeys(o.members) {
		m := o.members[id]
		row := layoutview.Row{Core: id.String(), Reachable: m.reachable, Complets: []layoutview.Complet{}}
		if !m.reachable {
			body.Partial = true
		}
		if m.info != nil {
			for _, ci := range m.info.Complets {
				row.Complets = append(row.Complets, layoutview.Complet{ID: ci.ID.String(), TypeName: ci.TypeName, Names: ci.Names})
			}
		}
		body.Cores = append(body.Cores, row)
	}
	o.mu.Unlock()
	writeJSON(w, body)
}

func writeJSON(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}
