// Package cliutil holds small helpers shared by the fargo command-line
// binaries: repeatable -peer name=addr flags and script-argument parsing.
package cliutil

import (
	"fmt"
	"sort"
	"strings"
)

// PeerFlags accumulates repeated `-peer name=host:port` flags. It implements
// flag.Value.
type PeerFlags map[string]string

// String implements flag.Value.
func (p PeerFlags) String() string {
	parts := make([]string, 0, len(p))
	for k, v := range p {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (p PeerFlags) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("peer must be name=host:port, got %q", v)
	}
	p[name] = addr
	return nil
}

// SplitListArg turns a comma-separated CLI word into a script value: a
// single string, or a list of trimmed strings when commas are present.
func SplitListArg(arg string) any {
	if !strings.Contains(arg, ",") {
		return arg
	}
	parts := strings.Split(arg, ",")
	out := make([]any, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	return out
}
