package cliutil

import (
	"fmt"
	"testing"
)

func TestPeerFlags(t *testing.T) {
	p := PeerFlags{}
	if err := p.Set("a=host1:1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("b=host2:2"); err != nil {
		t.Fatal(err)
	}
	if p["a"] != "host1:1" || p["b"] != "host2:2" {
		t.Fatalf("peers = %v", p)
	}
	if got := p.String(); got != "a=host1:1,b=host2:2" {
		t.Fatalf("String = %q", got)
	}
	for _, bad := range []string{"", "x", "=addr", "name="} {
		if err := p.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestSplitListArg(t *testing.T) {
	if got := SplitListArg("solo"); got != "solo" {
		t.Fatalf("solo = %v", got)
	}
	got, ok := SplitListArg("a, b,c").([]any)
	if !ok || fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("list = %v", got)
	}
}
