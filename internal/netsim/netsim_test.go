package netsim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func mustHost(t *testing.T, n *Network, name string) *Host {
	t.Helper()
	h, err := n.AddHost(name)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func recvWithin(t *testing.T, h *Host, d time.Duration) Message {
	t.Helper()
	select {
	case m := <-h.Recv():
		return m
	case <-time.After(d):
		t.Fatalf("host %s: no message within %v", h.Name(), d)
		return Message{}
	}
}

func TestDelivery(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	b := mustHost(t, n, "b")

	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m := recvWithin(t, b, time.Second)
	if m.From != "a" || string(m.Payload) != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestPayloadCopied(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	b := mustHost(t, n, "b")

	buf := []byte("abc")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // mutate after send
	m := recvWithin(t, b, time.Second)
	if string(m.Payload) != "abc" {
		t.Fatalf("payload aliased sender buffer: %q", m.Payload)
	}
}

func TestFIFOOrdering(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	b := mustHost(t, n, "b")
	// Jitter tempts reordering; FIFO must still hold.
	if err := n.SetLink("a", "b", LinkProfile{Latency: time.Millisecond, Jitter: 3 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	const k = 50
	for i := 0; i < k; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		m := recvWithin(t, b, time.Second)
		if m.Payload[0] != byte(i) {
			t.Fatalf("message %d arrived out of order (got seq %d)", i, m.Payload[0])
		}
	}
}

func TestLatencyApplied(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	b := mustHost(t, n, "b")
	const lat = 30 * time.Millisecond
	if err := n.SetLink("a", "b", LinkProfile{Latency: lat}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("delivered in %v, want >= %v", elapsed, lat)
	}
}

func TestBandwidthApplied(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	b := mustHost(t, n, "b")
	// 1 MiB payload over 16 MiB/s should take ~62ms.
	if err := n.SetLink("a", "b", LinkProfile{Latency: 0, Bandwidth: 16 << 20}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	start := time.Now()
	if err := a.Send("b", payload); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b, 2*time.Second)
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("1MiB over 16MiB/s delivered in %v, want >= 50ms", elapsed)
	}
}

func TestPartition(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	b := mustHost(t, n, "b")

	if err := n.SetPartition("a", "b", true); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("send across partition: %v, want ErrPartitioned", err)
	}
	if err := b.Send("a", []byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("reverse send across partition: %v, want ErrPartitioned", err)
	}
	if err := n.SetPartition("a", "b", false); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	recvWithin(t, b, time.Second)
}

func TestHostDown(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	mustHost(t, n, "b")

	if err := n.StopHost("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrHostDown) {
		t.Fatalf("send to down host: %v, want ErrHostDown", err)
	}
	if err := n.StartHost("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatalf("send after restart: %v", err)
	}

	if err := n.StopHost("a"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrHostDown) {
		t.Fatalf("send from down host: %v, want ErrHostDown", err)
	}
}

func TestInFlightDroppedWhenHostStops(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	b := mustHost(t, n, "b")
	if err := n.SetLink("a", "b", LinkProfile{Latency: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := n.StopHost("b"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Recv():
		t.Fatalf("down host received %+v", m)
	case <-time.After(120 * time.Millisecond):
	}
}

func TestRemoveHostFreesName(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	mustHost(t, n, "b")

	if err := n.RemoveHost("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrNoHost) {
		t.Fatalf("send to removed host: %v, want ErrNoHost", err)
	}
	// The name is free again: a restarted process can claim it.
	b2 := mustHost(t, n, "b")
	if err := a.Send("b", []byte("again")); err != nil {
		t.Fatal(err)
	}
	m := recvWithin(t, b2, time.Second)
	if string(m.Payload) != "again" {
		t.Fatalf("payload = %q", m.Payload)
	}
	if err := n.RemoveHost("ghost"); !errors.Is(err, ErrNoHost) {
		t.Fatalf("remove unknown host: %v", err)
	}
}

func TestUnknownHost(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrNoHost) {
		t.Fatalf("send to unknown host: %v, want ErrNoHost", err)
	}
	if err := n.SetLink("a", "ghost", LinkProfile{}); !errors.Is(err, ErrNoHost) {
		t.Fatalf("SetLink to unknown host: %v, want ErrNoHost", err)
	}
	if err := n.StopHost("ghost"); !errors.Is(err, ErrNoHost) {
		t.Fatalf("StopHost unknown: %v, want ErrNoHost", err)
	}
}

func TestDuplicateHost(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	mustHost(t, n, "a")
	if _, err := n.AddHost("a"); err == nil {
		t.Fatal("duplicate AddHost should fail")
	}
	if _, err := n.AddHost(""); err == nil {
		t.Fatal("empty host name should fail")
	}
}

func TestStats(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	b := mustHost(t, n, "b")

	for i := 0; i < 3; i++ {
		if err := a.Send("b", make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		recvWithin(t, b, time.Second)
	}
	s := n.Stats("a", "b")
	if s.Messages != 3 || s.Bytes != 300 {
		t.Fatalf("stats = %+v, want 3 msgs / 300 bytes", s)
	}
	if rev := n.Stats("b", "a"); rev.Messages != 0 {
		t.Fatalf("reverse stats = %+v, want zero", rev)
	}
	n.ResetStats()
	if s := n.Stats("a", "b"); s.Messages != 0 || s.Bytes != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestProfileQuery(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	mustHost(t, n, "a")
	mustHost(t, n, "b")
	want := LinkProfile{Latency: 5 * time.Millisecond, Bandwidth: 1 << 20}
	if err := n.SetLink("a", "b", want); err != nil {
		t.Fatal(err)
	}
	if got := n.Profile("a", "b"); got != want {
		t.Fatalf("profile = %+v, want %+v", got, want)
	}
	// Unset links report defaults.
	got := n.Profile("b", "a") // set symmetrically by SetLink
	if got != want {
		t.Fatalf("reverse profile = %+v, want %+v", got, want)
	}
}

func TestReprofileMidStream(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := mustHost(t, n, "a")
	b := mustHost(t, n, "b")

	if err := n.SetLink("a", "b", LinkProfile{Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("fast")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b, time.Second)

	// Degrade the link; the next message must observe the new latency.
	const slow = 40 * time.Millisecond
	if err := n.SetLink("a", "b", LinkProfile{Latency: slow}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := a.Send("b", []byte("slow")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < slow {
		t.Fatalf("reprofiled message took %v, want >= %v", elapsed, slow)
	}
}

func TestCloseUnblocksAndRejects(t *testing.T) {
	n := NewNetwork(1)
	a := mustHost(t, n, "a")
	mustHost(t, n, "b")
	if err := n.SetLink("a", "b", LinkProfile{Latency: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("stuck")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		n.Close() // must not hang on the in-flight hour-long delivery
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung on in-flight delivery")
	}
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
	if _, err := n.AddHost("c"); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddHost after close: %v, want ErrClosed", err)
	}
	n.Close() // idempotent
}

func TestManyHostsPairwise(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	const k = 5
	hosts := make([]*Host, k)
	for i := range hosts {
		hosts[i] = mustHost(t, n, fmt.Sprintf("h%d", i))
	}
	for i := range hosts {
		for j := range hosts {
			if i == j {
				continue
			}
			if err := hosts[i].Send(hosts[j].Name(), []byte{byte(i), byte(j)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for j := range hosts {
		for c := 0; c < k-1; c++ {
			m := recvWithin(t, hosts[j], time.Second)
			if int(m.Payload[1]) != j {
				t.Fatalf("host %d got message for %d", j, m.Payload[1])
			}
		}
	}
}

func TestJitterReproducible(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		n := NewNetwork(seed)
		defer n.Close()
		a := mustHost(t, n, "a")
		b := mustHost(t, n, "b")
		if err := n.SetLink("a", "b", LinkProfile{Latency: 0, Jitter: 10 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		var out []time.Duration
		for i := 0; i < 5; i++ {
			start := time.Now()
			if err := a.Send("b", []byte("x")); err != nil {
				t.Fatal(err)
			}
			recvWithin(t, b, time.Second)
			out = append(out, time.Since(start))
		}
		return out
	}
	// With the same seed the jitter draws are identical; measured wall
	// times differ, so compare only coarsely: both runs should produce
	// the same count and stay within the jitter bound + slack.
	d1 := delays(42)
	d2 := delays(42)
	if len(d1) != len(d2) {
		t.Fatalf("runs differ in length: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] > 200*time.Millisecond || d2[i] > 200*time.Millisecond {
			t.Fatalf("jittered delay out of bound: %v / %v", d1[i], d2[i])
		}
	}
}
