// Package netsim provides a deterministic in-process network simulator used
// as the substrate for experiments. The paper motivates dynamic layout with
// wide-area links whose latency and bandwidth differ and change over time;
// netsim reproduces those conditions reproducibly on one machine.
//
// A Network is a set of named hosts connected by directed links. Each link
// has a latency, a bandwidth and an optional jitter; delivering a message of
// size s over a link takes latency + s/bandwidth (+ jitter). Links deliver
// messages reliably and in FIFO order, mirroring what a TCP connection gives
// the real transport. Hosts can be stopped (simulating a process crash or
// core shutdown) and links can be partitioned or re-profiled while traffic
// flows, which is exactly the environmental change relocation policies react
// to.
//
// The simulator also keeps per-link delivery statistics (message and byte
// counts), which experiment E3 uses to verify the single-message group-move
// property.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Default link parameters, used when a link has no explicit profile.
const (
	DefaultLatency   = 1 * time.Millisecond
	DefaultBandwidth = 100 << 20 // 100 MiB/s
)

var (
	// ErrHostDown is returned when sending to or from a stopped host.
	ErrHostDown = errors.New("netsim: host is down")
	// ErrPartitioned is returned when the link between two hosts is cut.
	ErrPartitioned = errors.New("netsim: link partitioned")
	// ErrNoHost is returned when addressing an unknown host.
	ErrNoHost = errors.New("netsim: no such host")
	// ErrClosed is returned after the network has been closed.
	ErrClosed = errors.New("netsim: network closed")
)

// LinkProfile describes the performance characteristics of one link
// direction.
type LinkProfile struct {
	// Latency is the propagation delay applied to every message.
	Latency time.Duration
	// Bandwidth is the link throughput in bytes per second. Zero means
	// DefaultBandwidth.
	Bandwidth int64
	// Jitter, if positive, adds a uniformly random extra delay in
	// [0, Jitter) to each message.
	Jitter time.Duration
}

func (p LinkProfile) normalized() LinkProfile {
	if p.Bandwidth <= 0 {
		p.Bandwidth = DefaultBandwidth
	}
	if p.Latency < 0 {
		p.Latency = 0
	}
	return p
}

// transmission time for a message of n bytes.
func (p LinkProfile) delay(n int, jitter func(time.Duration) time.Duration) time.Duration {
	d := p.Latency + time.Duration(float64(n)/float64(p.Bandwidth)*float64(time.Second))
	if p.Jitter > 0 && jitter != nil {
		d += jitter(p.Jitter)
	}
	return d
}

// LinkStats counts traffic delivered over one link direction.
type LinkStats struct {
	Messages uint64
	Bytes    uint64
}

// Message is a payload delivered to a host, tagged with its origin.
type Message struct {
	From    string
	Payload []byte
}

type linkKey struct{ from, to string }

type link struct {
	profile     LinkProfile
	partitioned bool
	stats       LinkStats
	// lastArrival enforces that a message never arrives before one sent
	// earlier on the same link.
	lastArrival time.Time
	// lastDone is closed when the most recently sent message on this link
	// has been delivered (or dropped); the next delivery waits on it so
	// FIFO order holds even under goroutine scheduling races.
	lastDone chan struct{}
}

// Network is a simulated network. Construct with NewNetwork; safe for
// concurrent use.
type Network struct {
	mu     sync.Mutex
	hosts  map[string]*Host
	links  map[linkKey]*link
	rng    *rand.Rand
	closed bool
	wg     sync.WaitGroup
	quit   chan struct{}
}

// NewNetwork returns an empty network. Jitter, when configured, is drawn from
// a PRNG seeded with seed so runs are reproducible.
func NewNetwork(seed int64) *Network {
	return &Network{
		hosts: make(map[string]*Host),
		links: make(map[linkKey]*link),
		rng:   rand.New(rand.NewSource(seed)),
		quit:  make(chan struct{}),
	}
}

// Host is an endpoint on the network. Messages addressed to the host are read
// from Recv.
type Host struct {
	name string
	net  *Network
	// recv is buffered so that in-flight timer deliveries do not block
	// network-wide; the capacity bound models finite receive queues.
	recv chan Message
	down bool
}

// AddHost registers a host. The returned Host receives messages on Recv().
func (n *Network) AddHost(name string) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if name == "" {
		return nil, fmt.Errorf("netsim: empty host name")
	}
	if _, dup := n.hosts[name]; dup {
		return nil, fmt.Errorf("netsim: host %q already exists", name)
	}
	h := &Host{name: name, net: n, recv: make(chan Message, 1024)}
	n.hosts[name] = h
	return h, nil
}

// SetLink sets the profile of both directions of the link between a and b.
func (n *Network) SetLink(a, b string, p LinkProfile) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[a]; !ok {
		return fmt.Errorf("%w: %q", ErrNoHost, a)
	}
	if _, ok := n.hosts[b]; !ok {
		return fmt.Errorf("%w: %q", ErrNoHost, b)
	}
	n.linkLocked(a, b).profile = p.normalized()
	n.linkLocked(b, a).profile = p.normalized()
	return nil
}

// SetPartition cuts (or heals) both directions of the link between a and b.
func (n *Network) SetPartition(a, b string, partitioned bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[a]; !ok {
		return fmt.Errorf("%w: %q", ErrNoHost, a)
	}
	if _, ok := n.hosts[b]; !ok {
		return fmt.Errorf("%w: %q", ErrNoHost, b)
	}
	n.linkLocked(a, b).partitioned = partitioned
	n.linkLocked(b, a).partitioned = partitioned
	return nil
}

// StopHost marks a host as down. Sends to and from it fail until StartHost.
func (n *Network) StopHost(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoHost, name)
	}
	h.down = true
	return nil
}

// RemoveHost unregisters a host entirely, freeing its name for a later
// AddHost (process restart simulation). In-flight messages to it are
// dropped.
func (n *Network) RemoveHost(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoHost, name)
	}
	h.down = true
	delete(n.hosts, name)
	return nil
}

// StartHost brings a stopped host back up.
func (n *Network) StartHost(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoHost, name)
	}
	h.down = false
	return nil
}

// Stats returns the delivery statistics of the link from a to b.
func (n *Network) Stats(from, to string) LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[linkKey{from, to}]; ok {
		return l.stats
	}
	return LinkStats{}
}

// ResetStats zeroes the statistics on every link.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		l.stats = LinkStats{}
	}
}

// Profile returns the current profile of the link from a to b.
func (n *Network) Profile(from, to string) LinkProfile {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.linkLocked(from, to).profile
}

// Close shuts the network down and waits for all in-flight deliveries to
// settle (they are dropped).
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.quit)
	n.mu.Unlock()
	n.wg.Wait()
}

// linkLocked returns the link record for from→to, creating it with defaults
// if needed. Caller holds n.mu.
func (n *Network) linkLocked(from, to string) *link {
	k := linkKey{from, to}
	l, ok := n.links[k]
	if !ok {
		l = &link{profile: LinkProfile{Latency: DefaultLatency, Bandwidth: DefaultBandwidth}}
		n.links[k] = l
	}
	return l
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Recv returns the channel on which the host receives messages.
func (h *Host) Recv() <-chan Message { return h.recv }

// Send delivers payload to the named host after the link's simulated delay.
// The payload is copied, so the caller may reuse the buffer. Send fails
// immediately when either endpoint is down, the link is partitioned, or the
// destination is unknown — modelling a connection error the real transport
// would surface.
func (h *Host) Send(to string, payload []byte) error {
	n := h.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if h.down {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q (sender)", ErrHostDown, h.name)
	}
	dst, ok := n.hosts[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoHost, to)
	}
	if dst.down {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrHostDown, to)
	}
	l := n.linkLocked(h.name, to)
	if l.partitioned {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s -> %s", ErrPartitioned, h.name, to)
	}

	var jitterFn func(time.Duration) time.Duration
	if l.profile.Jitter > 0 {
		jitterFn = func(max time.Duration) time.Duration {
			return time.Duration(n.rng.Int63n(int64(max)))
		}
	}
	now := time.Now()
	arrival := now.Add(l.profile.delay(len(payload), jitterFn))
	// FIFO per link: never deliver before an earlier message on this link.
	if arrival.Before(l.lastArrival) {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival
	l.stats.Messages++
	l.stats.Bytes += uint64(len(payload))
	prev := l.lastDone
	done := make(chan struct{})
	l.lastDone = done

	msg := Message{From: h.name, Payload: append([]byte(nil), payload...)}
	wait := time.Until(arrival)
	n.wg.Add(1)
	n.mu.Unlock()

	go func() {
		defer n.wg.Done()
		defer close(done)
		if wait > 0 {
			timer := time.NewTimer(wait)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-n.quit:
				return
			}
		}
		// FIFO: the previous message on this link must land first.
		if prev != nil {
			select {
			case <-prev:
			case <-n.quit:
				return
			}
		}
		n.mu.Lock()
		dead := dst.down || n.closed
		n.mu.Unlock()
		if dead {
			return
		}
		select {
		case dst.recv <- msg:
		case <-n.quit:
		}
	}()
	return nil
}
