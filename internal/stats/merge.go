package stats

// Cross-core aggregation helpers for the deployment observatory
// (internal/observatory, DESIGN.md §15). Log-bucket histograms merge exactly
// when their layouts agree: bucket counts add, and quantiles are re-estimated
// from the merged distribution. Averaging per-core quantiles would be wrong
// (quantiles do not compose); merging buckets is.

// MergeHistogramSnapshots merges per-core snapshots of the same logical
// histogram into one deployment-wide snapshot.
//
// Count and Sum always add. When every non-empty part carries the same bucket
// layout (identical Bounds — true for all registry histograms, which share
// NewLatencyHistogram's shape), the buckets add element-wise and the
// quantiles are re-estimated from the merged distribution. When layouts
// disagree or a part lacks buckets (a reply from a core predating bucket
// shipping), the merged snapshot keeps no buckets and falls back to
// count-weighted quantile averages — approximate, and flagged as such by the
// nil Bounds.
func MergeHistogramSnapshots(parts []HistogramSnapshot) HistogramSnapshot {
	var out HistogramSnapshot
	bucketsOK := true
	for _, p := range parts {
		out.Count += p.Count
		out.Sum += p.Sum
		if p.Count == 0 && len(p.Buckets) == 0 {
			continue // empty part constrains nothing
		}
		switch {
		case len(p.Bounds) == 0 || len(p.Bounds) != len(p.Buckets):
			bucketsOK = false
		case out.Bounds == nil:
			out.Bounds = append([]float64(nil), p.Bounds...)
			out.Buckets = append([]uint64(nil), p.Buckets...)
			out.Exemplars = mergeExemplars(nil, p.Exemplars, len(p.Buckets))
		case !sameBounds(out.Bounds, p.Bounds):
			bucketsOK = false
		default:
			for i, c := range p.Buckets {
				out.Buckets[i] += c
			}
			out.Exemplars = mergeExemplars(out.Exemplars, p.Exemplars, len(out.Buckets))
		}
	}
	if bucketsOK && len(out.Bounds) > 0 {
		out.P50 = quantile(out.Bounds, out.Buckets, out.Count, 0.50)
		out.P95 = quantile(out.Bounds, out.Buckets, out.Count, 0.95)
		out.P99 = quantile(out.Bounds, out.Buckets, out.Count, 0.99)
		return out
	}
	out.Bounds, out.Buckets, out.Exemplars = nil, nil, nil
	if out.Count > 0 {
		for _, p := range parts {
			w := float64(p.Count) / float64(out.Count)
			out.P50 += w * p.P50
			out.P95 += w * p.P95
			out.P99 += w * p.P99
		}
	}
	return out
}

// mergeExemplars folds a part's per-bucket exemplars into the accumulated
// slice: the newest traced sample (largest UnixNanos) wins each bucket, so
// federation keeps pointing at a trace some member can still resolve. Returns
// acc unchanged when the part carries no exemplars of the expected length.
func mergeExemplars(acc, part []Exemplar, n int) []Exemplar {
	if len(part) != n {
		return acc
	}
	for i, e := range part {
		if e.TraceID == "" {
			continue
		}
		if acc == nil {
			acc = make([]Exemplar, n)
		}
		if acc[i].TraceID == "" || acc[i].UnixNanos < e.UnixNanos {
			acc[i] = e
		}
	}
	return acc
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
