package stats

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter. The zero value is
// ready to use and safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge holds the most recent value of a measurement. The zero value is ready
// to use and safe for concurrent use.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	at  time.Time
	set bool
}

// Set records a value at the current time.
func (g *Gauge) Set(v float64) { g.SetAt(v, time.Now()) }

// SetAt records a value observed at the given time.
func (g *Gauge) SetAt(v float64, at time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v, g.at, g.set = v, at, true
}

// Add adjusts the gauge by delta at the current time and returns the new
// value — the in-flight style of gauge (concurrent invocations of one
// method), where Set from racing goroutines would lose updates.
func (g *Gauge) Add(delta float64) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v += delta
	g.at = time.Now()
	g.set = true
	return g.v
}

// Value returns the most recent value, when it was set, and whether any value
// has been set.
func (g *Gauge) Value() (v float64, at time.Time, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v, g.at, g.set
}

// Age returns how long ago the gauge was last set, or false if never.
func (g *Gauge) Age(now time.Time) (time.Duration, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.set {
		return 0, false
	}
	return now.Sub(g.at), true
}
