package stats

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed log-bucket histogram for latency-like measurements:
// bucket upper bounds grow geometrically from Start by Factor, so a handful of
// buckets covers microseconds through minutes with bounded relative error.
// Observations land in lock-free atomic buckets; quantiles are estimated at
// snapshot time by linear interpolation inside the bucket holding the target
// rank. The zero value is NOT ready to use — construct with NewHistogram or
// NewLatencyHistogram. Safe for concurrent use.
type Histogram struct {
	bounds []float64 // ascending upper bounds; values above the last clamp into it
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits, updated by CAS
	// exemplars holds at most one recent traced sample per bucket
	// (last-writer-wins), linking the aggregate to a concrete trace.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one recorded observation to the trace that produced it, so a
// histogram bucket on /metrics can point at a concrete slow request instead of
// only an aggregate. UnixNanos orders exemplars when snapshots merge: the
// newest sample wins per bucket.
type Exemplar struct {
	Value     float64
	TraceID   string
	UnixNanos int64
}

// NewHistogram builds a histogram whose first bucket covers (0, start] and
// whose bounds grow by factor until n buckets exist. start must be positive,
// factor > 1, and n >= 2.
func NewHistogram(start, factor float64, n int) (*Histogram, error) {
	if start <= 0 || factor <= 1 || n < 2 {
		return nil, fmt.Errorf("stats: bad histogram shape (start=%v factor=%v n=%d)", start, factor, n)
	}
	h := &Histogram{
		bounds:    make([]float64, n),
		counts:    make([]atomic.Uint64, n),
		exemplars: make([]atomic.Pointer[Exemplar], n),
	}
	b := start
	for i := 0; i < n; i++ {
		h.bounds[i] = b
		b *= factor
	}
	return h, nil
}

// NewLatencyHistogram returns the standard latency histogram used by the
// metrics registry: values in nanoseconds, first bucket 1µs, doubling bounds,
// 36 buckets (top bound ≈ 9.5 hours — everything slower overflows).
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram(1e3, 2, 36)
	if err != nil {
		panic(err) // unreachable: constants satisfy NewHistogram
	}
	return h
}

// Observe records one measurement. Negative values clamp to zero (first
// bucket).
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration as nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d.Nanoseconds())) }

// ObserveExemplar records one measurement and, when traceID is non-empty,
// stamps the sample's bucket with an exemplar pointing at that trace. The slot
// is last-writer-wins: a bucket remembers its most recent traced sample, which
// is exactly what an operator chasing "what was slow just now?" wants.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := h.bucket(v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, UnixNanos: time.Now().UnixNano()})
	}
}

// bucket returns the index of the bucket v falls in; values above the last
// bound clamp into the last bucket.
func (h *Histogram) bucket(v float64) int {
	// Binary search over ~36 bounds; cheaper than log() and allocation-free.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(h.bounds) {
		return len(h.bounds) - 1
	}
	return lo
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count uint64
	Sum   float64
	P50   float64
	P95   float64
	P99   float64
	// Bounds are the ascending bucket upper bounds and Buckets the
	// per-bucket (non-cumulative) counts, parallel slices. They feed
	// exporters that need the full distribution (Prometheus _bucket
	// series); renderers that only want percentiles may ignore them, and
	// snapshots reconstructed from wire replies leave them nil.
	Bounds  []float64
	Buckets []uint64
	// Exemplars is parallel to Buckets when present: slot i is the most
	// recent traced sample that landed in bucket i (zero Exemplar — empty
	// TraceID — when the bucket has none). Nil when the histogram carries no
	// exemplars at all.
	Exemplars []Exemplar
}

// HasExemplars reports whether any bucket carries a traced sample.
func (s HistogramSnapshot) HasExemplars() bool {
	for _, e := range s.Exemplars {
		if e.TraceID != "" {
			return true
		}
	}
	return false
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot reads the histogram. Under concurrent writes the quantiles are
// approximate (buckets are read one by one), which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count:   total,
		Sum:     math.Float64frombits(h.sum.Load()),
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: counts,
	}
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]Exemplar, len(h.counts))
			}
			s.Exemplars[i] = *e
		}
	}
	s.P50 = quantile(h.bounds, counts, total, 0.50)
	s.P95 = quantile(h.bounds, counts, total, 0.95)
	s.P99 = quantile(h.bounds, counts, total, 0.99)
	return s
}

// AddSnapshot folds a snapshot of another histogram with the same bucket
// layout into this one: bucket counts and the running sum add, and any newer
// exemplars replace the local ones. It is how per-method meters travel with a
// complet across a move — the destination imports the departed history into
// its live instruments. Returns false (and changes nothing) when the snapshot
// carries a different layout or no buckets at all.
func (h *Histogram) AddSnapshot(s HistogramSnapshot) bool {
	if len(s.Buckets) != len(h.counts) || !sameBounds(s.Bounds, h.bounds) {
		return false
	}
	var total uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		h.counts[i].Add(c)
		total += c
	}
	h.count.Add(total)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+s.Sum)) {
			break
		}
	}
	for i := range s.Exemplars {
		e := s.Exemplars[i]
		if e.TraceID == "" {
			continue
		}
		if cur := h.exemplars[i].Load(); cur == nil || cur.UnixNanos < e.UnixNanos {
			h.exemplars[i].Store(&e)
		}
	}
	return true
}

// Quantile estimates a single quantile q in [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return quantile(h.bounds, counts, total, q)
}

// quantile walks the cumulative distribution to the bucket holding rank
// q*total and interpolates linearly between the bucket's bounds.
func quantile(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lower + frac*(bounds[i]-lower)
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}
