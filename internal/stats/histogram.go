package stats

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed log-bucket histogram for latency-like measurements:
// bucket upper bounds grow geometrically from Start by Factor, so a handful of
// buckets covers microseconds through minutes with bounded relative error.
// Observations land in lock-free atomic buckets; quantiles are estimated at
// snapshot time by linear interpolation inside the bucket holding the target
// rank. The zero value is NOT ready to use — construct with NewHistogram or
// NewLatencyHistogram. Safe for concurrent use.
type Histogram struct {
	bounds []float64 // ascending upper bounds; values above the last clamp into it
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits, updated by CAS
}

// NewHistogram builds a histogram whose first bucket covers (0, start] and
// whose bounds grow by factor until n buckets exist. start must be positive,
// factor > 1, and n >= 2.
func NewHistogram(start, factor float64, n int) (*Histogram, error) {
	if start <= 0 || factor <= 1 || n < 2 {
		return nil, fmt.Errorf("stats: bad histogram shape (start=%v factor=%v n=%d)", start, factor, n)
	}
	h := &Histogram{bounds: make([]float64, n), counts: make([]atomic.Uint64, n)}
	b := start
	for i := 0; i < n; i++ {
		h.bounds[i] = b
		b *= factor
	}
	return h, nil
}

// NewLatencyHistogram returns the standard latency histogram used by the
// metrics registry: values in nanoseconds, first bucket 1µs, doubling bounds,
// 36 buckets (top bound ≈ 9.5 hours — everything slower overflows).
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram(1e3, 2, 36)
	if err != nil {
		panic(err) // unreachable: constants satisfy NewHistogram
	}
	return h
}

// Observe records one measurement. Negative values clamp to zero (first
// bucket).
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration as nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d.Nanoseconds())) }

// bucket returns the index of the bucket v falls in; values above the last
// bound clamp into the last bucket.
func (h *Histogram) bucket(v float64) int {
	// Binary search over ~36 bounds; cheaper than log() and allocation-free.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(h.bounds) {
		return len(h.bounds) - 1
	}
	return lo
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count uint64
	Sum   float64
	P50   float64
	P95   float64
	P99   float64
	// Bounds are the ascending bucket upper bounds and Buckets the
	// per-bucket (non-cumulative) counts, parallel slices. They feed
	// exporters that need the full distribution (Prometheus _bucket
	// series); renderers that only want percentiles may ignore them, and
	// snapshots reconstructed from wire replies leave them nil.
	Bounds  []float64
	Buckets []uint64
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot reads the histogram. Under concurrent writes the quantiles are
// approximate (buckets are read one by one), which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count:   total,
		Sum:     math.Float64frombits(h.sum.Load()),
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: counts,
	}
	s.P50 = quantile(h.bounds, counts, total, 0.50)
	s.P95 = quantile(h.bounds, counts, total, 0.95)
	s.P99 = quantile(h.bounds, counts, total, 0.99)
	return s
}

// Quantile estimates a single quantile q in [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return quantile(h.bounds, counts, total, q)
}

// quantile walks the cumulative distribution to the bucket holding rank
// q*total and interpolates linearly between the bucket's bounds.
func quantile(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lower + frac*(bounds[i]-lower)
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}
