package stats

import (
	"fmt"
	"sync"
	"time"
)

// SampleFunc produces one measurement of some resource. It is called
// periodically by a Sampler; errors are counted but do not stop sampling.
type SampleFunc func() (float64, error)

// Sampler periodically evaluates a SampleFunc and folds the results into an
// EWMA. It implements the paper's "continuous" profiling interface: start
// begins periodic measurement at a given interval, get returns the current
// exponential average, and stop terminates measurement.
//
// A Sampler owns one goroutine between Start and Stop. Stop blocks until the
// goroutine has exited, so a stopped Sampler leaks nothing.
type Sampler struct {
	sample SampleFunc
	avg    *EWMA

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	errs    Counter
	running bool
}

// NewSampler returns a sampler that smooths samples with the given alpha.
func NewSampler(sample SampleFunc, alpha float64) (*Sampler, error) {
	if sample == nil {
		return nil, fmt.Errorf("sampler: nil sample func")
	}
	avg, err := NewEWMA(alpha)
	if err != nil {
		return nil, fmt.Errorf("sampler: %w", err)
	}
	return &Sampler{sample: sample, avg: avg}, nil
}

// Start begins periodic sampling. Starting an already running sampler is an
// error. An immediate first sample is taken synchronously so that Value has
// data as soon as Start returns successfully.
func (s *Sampler) Start(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("sampler: interval %v must be positive", interval)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return fmt.Errorf("sampler: already running")
	}
	s.takeSample()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.running = true
	go s.loop(interval, s.stop, s.done)
	return nil
}

func (s *Sampler) loop(interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.takeSample()
		case <-stop:
			return
		}
	}
}

func (s *Sampler) takeSample() {
	v, err := s.sample()
	if err != nil {
		s.errs.Inc()
		return
	}
	s.avg.Record(v)
}

// Stop terminates sampling and waits for the sampling goroutine to exit.
// Stopping a sampler that is not running is a no-op.
func (s *Sampler) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	stop, done := s.stop, s.done
	s.running = false
	s.mu.Unlock()

	close(stop)
	<-done
}

// Running reports whether the sampler is currently sampling.
func (s *Sampler) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Value returns the current exponential average and whether any sample has
// been recorded.
func (s *Sampler) Value() (float64, bool) { return s.avg.Value() }

// Errors returns how many sample attempts failed.
func (s *Sampler) Errors() uint64 { return s.errs.Value() }
