package stats

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramShapeValidation(t *testing.T) {
	cases := []struct {
		start, factor float64
		n             int
	}{
		{0, 2, 10},
		{-1, 2, 10},
		{1, 1, 10},
		{1, 0.5, 10},
		{1, 2, 1},
	}
	for _, c := range cases {
		if _, err := NewHistogram(c.start, c.factor, c.n); err == nil {
			t.Errorf("NewHistogram(%v, %v, %d): want error", c.start, c.factor, c.n)
		}
	}
	if _, err := NewHistogram(1e3, 2, 36); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty mean = %v, want 0", s.Mean())
	}
}

func TestHistogramCountSumMean(t *testing.T) {
	h, _ := NewHistogram(1, 2, 20)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Sum != 5050 {
		t.Fatalf("sum = %v, want 5050", s.Sum)
	}
	if s.Mean() != 50.5 {
		t.Fatalf("mean = %v, want 50.5", s.Mean())
	}
}

func TestHistogramQuantilesBounded(t *testing.T) {
	// With log buckets the quantile estimate must land within the bucket of
	// the true value: for factor 2, within 2x of the exact quantile.
	h, _ := NewHistogram(1, 2, 24)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	checks := []struct {
		name      string
		got, want float64
	}{
		{"p50", s.P50, 500},
		{"p95", s.P95, 950},
		{"p99", s.P99, 990},
	}
	for _, c := range checks {
		if c.got < c.want/2 || c.got > c.want*2 {
			t.Errorf("%s = %v, want within 2x of %v", c.name, c.got, c.want)
		}
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
}

func TestHistogramSingleBucketInterpolation(t *testing.T) {
	// All mass in one bucket: quantiles interpolate inside its bounds.
	h, _ := NewHistogram(1, 2, 10)
	for i := 0; i < 100; i++ {
		h.Observe(3) // bucket (2,4]
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < 2 || v > 4 {
			t.Errorf("q%v = %v, want within (2,4]", q, v)
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	h, _ := NewHistogram(1, 2, 4) // bounds 1,2,4,8
	h.Observe(-5)                 // clamps to first bucket
	h.Observe(1e9)                // clamps to last bucket
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if p := h.Quantile(1); p > 8 {
		t.Fatalf("q1 = %v, want <= last bound 8", p)
	}
	if p := h.Quantile(0); p < 0 || math.IsNaN(p) {
		t.Fatalf("q0 = %v", p)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewLatencyHistogram()
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 3e6 {
		t.Fatalf("snapshot = %+v, want count 1 sum 3e6", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(1000 + g*i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	if s.Sum <= 0 {
		t.Fatalf("sum = %v, want > 0", s.Sum)
	}
}
