package stats

import (
	"testing"
)

func TestObserveExemplarStampsBucket(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(1500) // untraced sample, no exemplar
	h.ObserveExemplar(1500, "00000000000000aa")
	h.ObserveExemplar(3e6, "00000000000000bb")

	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if !s.HasExemplars() {
		t.Fatalf("snapshot has no exemplars")
	}
	if len(s.Exemplars) != len(s.Buckets) {
		t.Fatalf("exemplars not parallel to buckets: %d vs %d", len(s.Exemplars), len(s.Buckets))
	}
	var got []Exemplar
	for _, e := range s.Exemplars {
		if e.TraceID != "" {
			got = append(got, e)
		}
	}
	if len(got) != 2 {
		t.Fatalf("want 2 stamped buckets, got %+v", got)
	}
	if got[0].TraceID != "00000000000000aa" || got[0].Value != 1500 {
		t.Fatalf("fast bucket exemplar wrong: %+v", got[0])
	}
	if got[1].TraceID != "00000000000000bb" || got[1].Value != 3e6 {
		t.Fatalf("slow bucket exemplar wrong: %+v", got[1])
	}
}

func TestObserveExemplarLastWriterWinsPerBucket(t *testing.T) {
	h := NewLatencyHistogram()
	h.ObserveExemplar(2000, "old")
	h.ObserveExemplar(2000, "new")
	s := h.Snapshot()
	for _, e := range s.Exemplars {
		if e.TraceID == "old" {
			t.Fatalf("stale exemplar survived: %+v", s.Exemplars)
		}
	}
}

func TestObserveExemplarEmptyTraceActsLikeObserve(t *testing.T) {
	h := NewLatencyHistogram()
	h.ObserveExemplar(2000, "")
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if s.Exemplars != nil {
		t.Fatalf("empty trace ID must not stamp a bucket: %+v", s.Exemplars)
	}
}

func TestAddSnapshotMergesCountsAndExemplars(t *testing.T) {
	src := NewLatencyHistogram()
	src.ObserveExemplar(2000, "moved")
	src.Observe(5000)
	snap := src.Snapshot()

	dst := NewLatencyHistogram()
	dst.Observe(9000)
	if !dst.AddSnapshot(snap) {
		t.Fatalf("AddSnapshot rejected a same-layout snapshot")
	}
	out := dst.Snapshot()
	if out.Count != 3 {
		t.Fatalf("merged count = %d, want 3", out.Count)
	}
	if want := 2000.0 + 5000 + 9000; out.Sum != want {
		t.Fatalf("merged sum = %v, want %v", out.Sum, want)
	}
	found := false
	for _, e := range out.Exemplars {
		if e.TraceID == "moved" {
			found = true
		}
	}
	if !found {
		t.Fatalf("imported exemplar lost: %+v", out.Exemplars)
	}

	// A foreign layout must be refused untouched.
	other, err := NewHistogram(10, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	other.Observe(20)
	if dst.AddSnapshot(other.Snapshot()) {
		t.Fatalf("AddSnapshot accepted a mismatched layout")
	}
	if got := dst.Snapshot().Count; got != 3 {
		t.Fatalf("rejected AddSnapshot still mutated: count = %d", got)
	}
}

func TestMergeHistogramSnapshotsKeepsNewestExemplar(t *testing.T) {
	a := NewLatencyHistogram()
	a.ObserveExemplar(2000, "a-trace")
	sa := a.Snapshot()
	sa.Exemplars[findStamped(t, sa)].UnixNanos = 100

	b := NewLatencyHistogram()
	b.ObserveExemplar(2000, "b-trace")
	sb := b.Snapshot()
	sb.Exemplars[findStamped(t, sb)].UnixNanos = 200

	merged := MergeHistogramSnapshots([]HistogramSnapshot{sa, sb})
	if merged.Count != 2 {
		t.Fatalf("merged count = %d, want 2", merged.Count)
	}
	i := findStamped(t, merged)
	if merged.Exemplars[i].TraceID != "b-trace" {
		t.Fatalf("merge kept %q, want the newer b-trace", merged.Exemplars[i].TraceID)
	}

	// Parts without exemplars still merge, and must not invent any.
	c := NewLatencyHistogram()
	c.Observe(2000)
	merged = MergeHistogramSnapshots([]HistogramSnapshot{c.Snapshot(), sa})
	if got := merged.Exemplars[findStamped(t, merged)].TraceID; got != "a-trace" {
		t.Fatalf("exemplar lost merging with an exemplar-free part: %q", got)
	}
}

func TestMergeFallbackDropsExemplars(t *testing.T) {
	a := NewLatencyHistogram()
	a.ObserveExemplar(2000, "a-trace")
	other, err := NewHistogram(10, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	other.Observe(20)
	merged := MergeHistogramSnapshots([]HistogramSnapshot{a.Snapshot(), other.Snapshot()})
	if merged.Bounds != nil || merged.Exemplars != nil {
		t.Fatalf("layout-mismatch fallback must drop buckets and exemplars: %+v", merged)
	}
}

func findStamped(t *testing.T, s HistogramSnapshot) int {
	t.Helper()
	for i, e := range s.Exemplars {
		if e.TraceID != "" {
			return i
		}
	}
	t.Fatalf("no stamped exemplar in snapshot")
	return -1
}
