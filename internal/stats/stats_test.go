package stats

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEWMAFirstSampleInitializes(t *testing.T) {
	e := MustEWMA(0.5)
	if _, ok := e.Value(); ok {
		t.Fatal("empty EWMA should report no value")
	}
	e.Record(10)
	v, ok := e.Value()
	if !ok || v != 10 {
		t.Fatalf("Value() = %v, %v; want 10, true", v, ok)
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := MustEWMA(0.5)
	e.Record(0)
	e.Record(10) // 0.5*10 + 0.5*0 = 5
	v, _ := e.Value()
	if v != 5 {
		t.Fatalf("after 0,10 with alpha 0.5: %v, want 5", v)
	}
	e.Record(10) // 0.5*10 + 0.5*5 = 7.5
	v, _ = e.Value()
	if v != 7.5 {
		t.Fatalf("after third sample: %v, want 7.5", v)
	}
}

func TestEWMAAlphaOneTracksLastSample(t *testing.T) {
	e := MustEWMA(1)
	for _, s := range []float64{3, 9, -4, 0.5} {
		e.Record(s)
		v, _ := e.Value()
		if v != s {
			t.Fatalf("alpha=1: value %v, want %v", v, s)
		}
	}
}

func TestEWMAInvalidAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5, math.NaN()} {
		if _, err := NewEWMA(alpha); err == nil {
			t.Errorf("NewEWMA(%v): expected error", alpha)
		}
	}
}

// Property: an EWMA of samples within [lo, hi] stays within [lo, hi].
func TestEWMABoundedByInputs(t *testing.T) {
	prop := func(raw []float64, alphaSeed uint8) bool {
		alpha := (float64(alphaSeed%100) + 1) / 101 // in (0,1)
		e := MustEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		any := false
		for _, s := range raw {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			any = true
			lo, hi = math.Min(lo, s), math.Max(hi, s)
			e.Record(s)
		}
		if !any {
			return true
		}
		v, ok := e.Value()
		const eps = 1e-9
		return ok && v >= lo-eps-math.Abs(lo)*1e-12 && v <= hi+eps+math.Abs(hi)*1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEWMAReset(t *testing.T) {
	e := MustEWMA(0.5)
	e.Record(5)
	e.Reset()
	if _, ok := e.Value(); ok {
		t.Fatal("after Reset, EWMA should report no value")
	}
	if e.Samples() != 0 {
		t.Fatal("after Reset, Samples should be 0")
	}
}

func TestEWMAConcurrent(t *testing.T) {
	e := MustEWMA(0.1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e.Record(1)
				e.Value()
			}
		}()
	}
	wg.Wait()
	v, ok := e.Value()
	if !ok || v != 1 {
		t.Fatalf("all-ones EWMA = %v, %v; want 1, true", v, ok)
	}
	if e.Samples() != 8000 {
		t.Fatalf("Samples() = %d, want 8000", e.Samples())
	}
}

func TestRateMeterBasic(t *testing.T) {
	m := MustRateMeter(time.Second, 10)
	now := time.Unix(1000, 0)
	m.SetClock(func() time.Time { return now })

	for i := 0; i < 50; i++ {
		m.Mark(1)
	}
	if got := m.Rate(); got != 50 {
		t.Fatalf("rate = %v, want 50 events/s", got)
	}
	if got := m.Count(); got != 50 {
		t.Fatalf("count = %v, want 50", got)
	}
}

func TestRateMeterDecay(t *testing.T) {
	m := MustRateMeter(time.Second, 10)
	now := time.Unix(1000, 0)
	m.SetClock(func() time.Time { return now })

	m.Mark(100)
	// Half a window later, the events are still inside the window.
	now = now.Add(500 * time.Millisecond)
	if got := m.Count(); got != 100 {
		t.Fatalf("count after 0.5s = %v, want 100", got)
	}
	// Far beyond the window, everything decays.
	now = now.Add(2 * time.Second)
	if got := m.Count(); got != 0 {
		t.Fatalf("count after 2.5s = %v, want 0", got)
	}
}

func TestRateMeterPartialDecay(t *testing.T) {
	m := MustRateMeter(time.Second, 10)
	now := time.Unix(1000, 0)
	m.SetClock(func() time.Time { return now })

	m.Mark(10) // lands in bucket 0
	now = now.Add(600 * time.Millisecond)
	m.Mark(20) // lands 6 buckets later
	now = now.Add(600 * time.Millisecond)
	// Bucket 0 is now >1s old and must be gone; the 20 marks remain.
	if got := m.Count(); got != 20 {
		t.Fatalf("count = %v, want 20", got)
	}
}

func TestRateMeterInvalidArgs(t *testing.T) {
	if _, err := NewRateMeter(0, 10); err == nil {
		t.Error("zero window: expected error")
	}
	if _, err := NewRateMeter(time.Second, 0); err == nil {
		t.Error("zero buckets: expected error")
	}
}

// Property: Count never exceeds the total marked, and equals it while the
// clock has not advanced.
func TestRateMeterCountProperty(t *testing.T) {
	prop := func(marks []uint8) bool {
		m := MustRateMeter(time.Second, 4)
		now := time.Unix(0, 0)
		m.SetClock(func() time.Time { return now })
		var total uint64
		for _, n := range marks {
			m.Mark(uint64(n))
			total += uint64(n)
		}
		return m.Count() == total
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var (
		c  Counter
		wg sync.WaitGroup
	)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if _, _, ok := g.Value(); ok {
		t.Fatal("unset gauge should report ok=false")
	}
	at := time.Unix(500, 0)
	g.SetAt(3.14, at)
	v, gotAt, ok := g.Value()
	if !ok || v != 3.14 || !gotAt.Equal(at) {
		t.Fatalf("Value() = %v, %v, %v", v, gotAt, ok)
	}
	age, ok := g.Age(at.Add(time.Minute))
	if !ok || age != time.Minute {
		t.Fatalf("Age() = %v, %v; want 1m, true", age, ok)
	}
}

func TestSamplerLifecycle(t *testing.T) {
	var (
		mu sync.Mutex
		n  int
	)
	s, err := NewSampler(func() (float64, error) {
		mu.Lock()
		defer mu.Unlock()
		n++
		return float64(n), nil
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Running() {
		t.Fatal("new sampler should not be running")
	}
	if err := s.Start(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !s.Running() {
		t.Fatal("started sampler should be running")
	}
	// The synchronous first sample guarantees a value immediately.
	if _, ok := s.Value(); !ok {
		t.Fatal("sampler should have a value right after Start")
	}
	if err := s.Start(time.Millisecond); err == nil {
		t.Fatal("double Start should fail")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		count := n
		mu.Unlock()
		if count >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampler took too long: %d samples", count)
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if s.Running() {
		t.Fatal("stopped sampler should not be running")
	}
	s.Stop() // double Stop is a no-op
}

func TestSamplerRestart(t *testing.T) {
	s, err := NewSampler(func() (float64, error) { return 1, nil }, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Start(time.Millisecond); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
		s.Stop()
	}
}

func TestSamplerErrors(t *testing.T) {
	s, err := NewSampler(func() (float64, error) { return 0, errors.New("boom") }, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for s.Errors() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("expected sampling errors, got %d", s.Errors())
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := s.Value(); ok {
		t.Fatal("failing sampler should have no value")
	}
}

func TestSamplerInvalidArgs(t *testing.T) {
	if _, err := NewSampler(nil, 0.5); err == nil {
		t.Error("nil sample func: expected error")
	}
	if _, err := NewSampler(func() (float64, error) { return 0, nil }, 0); err == nil {
		t.Error("invalid alpha: expected error")
	}
	s, err := NewSampler(func() (float64, error) { return 0, nil }, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(0); err == nil {
		t.Error("zero interval: expected error")
	}
}
