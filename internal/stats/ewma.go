// Package stats provides the statistical kernels used by the monitoring
// layer: exponentially weighted moving averages (the paper's "exponential
// average" for continuous profiling), sliding-window rate estimators (for
// invocation rates along complet references), and lock-free counters.
package stats

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// EWMA is an exponentially weighted moving average. Each recorded sample
// replaces a fraction alpha of the current average:
//
//	avg ← alpha·sample + (1−alpha)·avg
//
// The first sample initializes the average directly. The zero value is not
// ready to use; construct with NewEWMA. EWMA is safe for concurrent use.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	avg   float64
	n     uint64
}

// NewEWMA returns an EWMA with the given smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("ewma: alpha %v out of range (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// MustEWMA is like NewEWMA but panics on an invalid alpha. It is intended for
// package-level defaults with constant arguments.
func MustEWMA(alpha float64) *EWMA {
	e, err := NewEWMA(alpha)
	if err != nil {
		panic(err)
	}
	return e
}

// Record folds a sample into the average.
func (e *EWMA) Record(sample float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.avg = sample
	} else {
		e.avg = e.alpha*sample + (1-e.alpha)*e.avg
	}
	e.n++
}

// Value returns the current average, and false if no sample was recorded yet.
func (e *EWMA) Value() (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.avg, e.n > 0
}

// Samples returns how many samples have been recorded.
func (e *EWMA) Samples() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Reset discards all recorded samples.
func (e *EWMA) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.avg, e.n = 0, 0
}

// RateMeter estimates an event rate (events per second) over a sliding
// window. It divides the window into fixed buckets and sums whole buckets,
// giving a bounded-memory estimate that decays stale activity. The zero value
// is not ready to use; construct with NewRateMeter. RateMeter is safe for
// concurrent use.
type RateMeter struct {
	mu      sync.Mutex
	bucket  time.Duration
	buckets []uint64
	head    int       // index of the bucket containing "now"
	headAt  time.Time // start time of the head bucket
	now     func() time.Time
}

// NewRateMeter returns a meter measuring over the given window using n
// buckets. Larger n gives finer resolution at slightly more memory.
func NewRateMeter(window time.Duration, n int) (*RateMeter, error) {
	if window <= 0 || n <= 0 {
		return nil, fmt.Errorf("rate meter: window %v and buckets %d must be positive", window, n)
	}
	return &RateMeter{
		bucket:  window / time.Duration(n),
		buckets: make([]uint64, n),
		now:     time.Now,
	}, nil
}

// MustRateMeter is like NewRateMeter but panics on invalid arguments.
func MustRateMeter(window time.Duration, n int) *RateMeter {
	m, err := NewRateMeter(window, n)
	if err != nil {
		panic(err)
	}
	return m
}

// SetClock replaces the time source (for tests).
func (m *RateMeter) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

// Mark records n events at the current time.
func (m *RateMeter) Mark(n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advance()
	m.buckets[m.head] += n
}

// Rate returns the estimated events per second over the window.
func (m *RateMeter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advance()
	var total uint64
	for _, b := range m.buckets {
		total += b
	}
	window := m.bucket * time.Duration(len(m.buckets))
	return float64(total) / window.Seconds()
}

// Count returns the raw event count within the window.
func (m *RateMeter) Count() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advance()
	var total uint64
	for _, b := range m.buckets {
		total += b
	}
	return total
}

// advance rotates the ring so that the head bucket covers "now". Must be
// called with the mutex held.
func (m *RateMeter) advance() {
	now := m.now()
	if m.headAt.IsZero() {
		m.headAt = now
		return
	}
	elapsed := now.Sub(m.headAt)
	steps := int(elapsed / m.bucket)
	if steps <= 0 {
		return
	}
	if steps >= len(m.buckets) {
		for i := range m.buckets {
			m.buckets[i] = 0
		}
		m.head = 0
		m.headAt = now
		return
	}
	for i := 0; i < steps; i++ {
		m.head = (m.head + 1) % len(m.buckets)
		m.buckets[m.head] = 0
	}
	m.headAt = m.headAt.Add(time.Duration(steps) * m.bucket)
}
