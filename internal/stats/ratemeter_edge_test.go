package stats

import (
	"testing"
	"time"
)

// Edge cases of the sliding-window rate estimator under a controlled clock:
// zero-duration ticks, sub-bucket ticks, idle gaps longer than the window,
// and ring wrap-around.

func meterAt(t *testing.T, window time.Duration, n int) (*RateMeter, *time.Time) {
	t.Helper()
	m := MustRateMeter(window, n)
	now := time.Unix(100, 0)
	m.SetClock(func() time.Time { return now })
	return m, &now
}

func TestRateMeterZeroDurationTicks(t *testing.T) {
	// Marks landing at the exact same instant must accumulate, not rotate
	// the ring: advance() with zero elapsed time is a no-op.
	m, _ := meterAt(t, 10*time.Second, 20)
	for i := 0; i < 50; i++ {
		m.Mark(1)
	}
	if got := m.Count(); got != 50 {
		t.Fatalf("Count after 50 zero-duration marks = %d, want 50", got)
	}
	if got, want := m.Rate(), 5.0; got != want {
		t.Fatalf("Rate = %v, want %v (50 events / 10s window)", got, want)
	}
}

func TestRateMeterSubBucketTicksStayInOneBucket(t *testing.T) {
	// Ticks smaller than one bucket (10s/20 = 500ms) never rotate; nothing
	// is dropped and nothing double-counts.
	m, now := meterAt(t, 10*time.Second, 20)
	for i := 0; i < 10; i++ {
		m.Mark(1)
		*now = now.Add(49 * time.Millisecond)
	}
	if got := m.Count(); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
}

func TestRateMeterResetAfterIdleWindow(t *testing.T) {
	// An idle gap of at least one full window clears every bucket: stale
	// activity must not leak into the fresh epoch.
	m, now := meterAt(t, 10*time.Second, 20)
	m.Mark(100)
	if got := m.Count(); got != 100 {
		t.Fatalf("Count before idle = %d, want 100", got)
	}
	*now = now.Add(10 * time.Second) // exactly one window
	if got := m.Count(); got != 0 {
		t.Fatalf("Count after idle >= window = %d, want 0", got)
	}
	if got := m.Rate(); got != 0 {
		t.Fatalf("Rate after idle = %v, want 0", got)
	}
	// The meter keeps working after the reset.
	m.Mark(7)
	if got := m.Count(); got != 7 {
		t.Fatalf("Count after restart = %d, want 7", got)
	}
}

func TestRateMeterGradualDecay(t *testing.T) {
	// Events age out bucket by bucket as the window slides.
	m, now := meterAt(t, 10*time.Second, 10) // 1s buckets
	m.Mark(10)
	*now = now.Add(5 * time.Second)
	m.Mark(5)
	if got := m.Count(); got != 15 {
		t.Fatalf("Count mid-window = %d, want 15", got)
	}
	// 6 more seconds: the first batch (age 11s) is out, the second (6s) in.
	*now = now.Add(6 * time.Second)
	if got := m.Count(); got != 5 {
		t.Fatalf("Count after first batch aged out = %d, want 5", got)
	}
	// 5 more: everything has aged out.
	*now = now.Add(5 * time.Second)
	if got := m.Count(); got != 0 {
		t.Fatalf("Count after all aged out = %d, want 0", got)
	}
}

func TestRateMeterWrapAround(t *testing.T) {
	// Rotations crossing the ring boundary clear exactly the skipped
	// buckets, not the surviving ones.
	m, now := meterAt(t, 10*time.Second, 10)
	m.Mark(3)
	*now = now.Add(7 * time.Second)
	m.Mark(4) // head at bucket 7
	*now = now.Add(7 * time.Second)
	// 14s after the first mark (gone), 7s after the second (still in).
	if got := m.Count(); got != 4 {
		t.Fatalf("Count across wrap = %d, want 4", got)
	}
}

func TestEWMAResetForgetsHistory(t *testing.T) {
	e := MustEWMA(0.25)
	e.Record(100)
	e.Record(100)
	e.Reset()
	if _, ok := e.Value(); ok {
		t.Fatal("Value after Reset should report no samples")
	}
	if got := e.Samples(); got != 0 {
		t.Fatalf("Samples after Reset = %d, want 0", got)
	}
	// The next sample initializes directly, unbiased by pre-reset history.
	e.Record(4)
	if v, ok := e.Value(); !ok || v != 4 {
		t.Fatalf("first post-reset sample: %v, %v; want 4, true", v, ok)
	}
}
