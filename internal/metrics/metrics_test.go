package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGetOrCreateStable(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Fatalf("same name returned different counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatalf("same name returned different gauges")
	}
	if r.Histogram("h_ns") != r.Histogram("h_ns") {
		t.Fatalf("same name returned different histograms")
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c_ns").Observe(1)
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("invoke_local_total").Add(3)
	r.Gauge("peers_down").Set(2)
	r.Histogram("invoke_latency_ns").ObserveDuration(5 * time.Millisecond)
	r.Histogram("plain").Observe(7)

	s := r.Snapshot()
	if s.Counters["invoke_local_total"] != 3 {
		t.Fatalf("counter missing from snapshot: %+v", s.Counters)
	}
	if s.Gauges["peers_down"] != 2 {
		t.Fatalf("gauge missing from snapshot: %+v", s.Gauges)
	}
	if s.Histograms["invoke_latency_ns"].Count != 1 {
		t.Fatalf("histogram missing from snapshot: %+v", s.Histograms)
	}

	var b strings.Builder
	s.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"counter invoke_local_total", "3",
		"gauge   peers_down", "2",
		"hist    invoke_latency_ns", "count=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
	// Duration rendering for _ns histograms.
	if !strings.Contains(out, "5ms") {
		t.Fatalf("_ns histogram not rendered as duration:\n%s", out)
	}
}

func TestUnsetGaugeOmitted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("never_set")
	if s := r.Snapshot(); len(s.Gauges) != 0 {
		t.Fatalf("unset gauge leaked into snapshot: %+v", s.Gauges)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Histogram("h_ns").Observe(float64(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Counters["c"]; got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
}
