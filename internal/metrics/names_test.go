package metrics

import (
	"strings"
	"testing"
)

func TestValidateName(t *testing.T) {
	valid := []string{
		"invoke_local_total",
		"transport_fault_dropped_total",
		"transport_fault_delayed_total",
		"transport_fault_duplicated_total",
		"transport_fault_partitioned_total",
		"invoke_latency_ns",
		"peers_down",
		"fargo:custom:metric",
		"_leading_underscore",
		"dotted.name.total", // normalizes, does not reject
		`labeled_total{peer="b",kind="invoke"}`,
	}
	for _, name := range valid {
		if err := ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", name, err)
		}
	}
	invalid := []string{
		"",
		"has space",
		"9starts_with_digit",
		"bad-dash",
		"emoji_☃",
		"unterminated{a=\"b\"",
		`bad_label{9k="v"}`,
		`bad_label{k-x="v"}`,
	}
	for _, name := range invalid {
		if err := ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", name)
		}
	}
}

func TestCanonicalNameNormalizesDots(t *testing.T) {
	got, err := canonicalName("fargo.invoke.total")
	if err != nil {
		t.Fatal(err)
	}
	if got != "fargo_invoke_total" {
		t.Fatalf("canonicalName = %q, want fargo_invoke_total", got)
	}
	got, err = canonicalName(`fargo.moves{src.core="a"}`)
	if err != nil {
		t.Fatal(err)
	}
	if got != `fargo_moves{src_core="a"}` {
		t.Fatalf("canonicalName = %q", got)
	}
}

func TestFaultCounterNamesRoundTrip(t *testing.T) {
	// The transport fault-injection counters must survive validation
	// unchanged and appear in the scrape under their exact names.
	names := []string{
		"transport_fault_dropped_total",
		"transport_fault_delayed_total",
		"transport_fault_duplicated_total",
		"transport_fault_partitioned_total",
	}
	r := NewRegistry()
	for _, n := range names {
		canon, err := canonicalName(n)
		if err != nil {
			t.Fatalf("canonicalName(%q) = %v", n, err)
		}
		if canon != n {
			t.Fatalf("canonicalName(%q) = %q, want unchanged", n, canon)
		}
		r.Counter(n).Inc()
	}
	snap := r.Snapshot()
	var b strings.Builder
	WritePrometheus(&b, snap)
	for _, n := range names {
		if snap.Counters[n] != 1 {
			t.Fatalf("counter %q missing from snapshot", n)
		}
		if !strings.Contains(b.String(), n+" 1\n") {
			t.Fatalf("counter %q missing from exposition:\n%s", n, b.String())
		}
	}
}

func TestInvalidNamesExcludedFromRegistry(t *testing.T) {
	r := NewRegistry()
	bad := r.Counter("has space")
	bad.Add(7) // usable locally, but detached
	r.Counter("9digits").Inc()
	r.Gauge("also bad").Set(1)
	r.Histogram("nope nope").Observe(1)
	r.Counter("good_total").Inc()

	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters["good_total"] != 1 {
		t.Fatalf("registry polluted by invalid names: %v", snap.Counters)
	}
	if len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("invalid gauge/histogram entered registry: %v %v", snap.Gauges, snap.Histograms)
	}
	if bad.Value() != 7 {
		t.Fatalf("detached counter not usable: %d", bad.Value())
	}
	// Two lookups of the same invalid name are distinct throwaways.
	if r.Counter("has space") == bad {
		t.Fatal("invalid name unexpectedly cached")
	}
}

func TestJoinSplitLabelsRoundTrip(t *testing.T) {
	full := JoinLabels("m_total", Labels{"b": `va"l`, "a": `x\y`})
	base, labels, err := splitLabels(full)
	if err != nil {
		t.Fatal(err)
	}
	if base != "m_total" {
		t.Fatalf("base = %q", base)
	}
	if labels["a"] != `x\y` || labels["b"] != `va"l` {
		t.Fatalf("labels did not round-trip: %#v", labels)
	}
}
