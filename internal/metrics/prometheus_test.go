package metrics

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// expositionSample matches one sample line of the text exposition format:
// name, optional {labels}, a value.
var expositionSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

var expositionType = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)

// parseExposition validates every line and returns sample name -> value.
func parseExposition(t *testing.T, out string) map[string]string {
	t.Helper()
	samples := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !expositionType.MatchString(line) {
				t.Fatalf("bad comment line %q", line)
			}
			continue
		}
		if !expositionSample.MatchString(line) {
			t.Fatalf("bad sample line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		samples[line[:sp]] = line[sp+1:]
	}
	return samples
}

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("invoke_local_total").Add(3)
	r.Counter("transport_fault_dropped_total").Add(2)
	r.Gauge("peers_down").Set(1)
	r.Histogram("invoke_latency_ns").ObserveDuration(5 * time.Millisecond)
	r.Histogram("invoke_latency_ns").ObserveDuration(20 * time.Microsecond)

	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	out := b.String()
	samples := parseExposition(t, out)

	if samples["invoke_local_total"] != "3" {
		t.Fatalf("counter sample = %q", samples["invoke_local_total"])
	}
	if samples["transport_fault_dropped_total"] != "2" {
		t.Fatalf("fault counter did not round-trip: %q", samples["transport_fault_dropped_total"])
	}
	if samples["peers_down"] != "1" {
		t.Fatalf("gauge sample = %q", samples["peers_down"])
	}
	if samples["invoke_latency_ns_count"] != "2" {
		t.Fatalf("histogram count = %q", samples["invoke_latency_ns_count"])
	}
	if !strings.Contains(out, "# TYPE invoke_latency_ns histogram") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `invoke_latency_ns_bucket{le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}

	// Buckets must be cumulative and non-decreasing, ending at count.
	var prev uint64
	buckets := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "invoke_latency_ns_bucket{") {
			continue
		}
		buckets++
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket value in %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket series not cumulative at %q", line)
		}
		prev = v
	}
	if buckets < 3 {
		t.Fatalf("expected full bucket series, got %d bucket lines", buckets)
	}
	if prev != 2 {
		t.Fatalf("+Inf bucket = %d, want 2", prev)
	}
}

func TestWritePrometheusLabels(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("requests_total", Labels{"peer": "b", "kind": "invoke"}).Add(4)
	r.CounterWith("requests_total", Labels{"kind": "invoke", "peer": "b"}).Add(1)
	r.CounterWith("requests_total", Labels{"peer": "c", "kind": "move"}).Inc()

	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	out := b.String()
	samples := parseExposition(t, out)

	// Same label set in any order shares one series.
	if got := samples[`requests_total{kind="invoke",peer="b"}`]; got != "5" {
		t.Fatalf("labeled series = %q, want 5\n%s", got, out)
	}
	if got := samples[`requests_total{kind="move",peer="c"}`]; got != "1" {
		t.Fatalf("labeled series = %q, want 1\n%s", got, out)
	}
	// One TYPE line per family, not per series.
	if n := strings.Count(out, "# TYPE requests_total counter"); n != 1 {
		t.Fatalf("TYPE lines for family = %d, want 1\n%s", n, out)
	}
}

func TestPrometheusDeterministicOrder(t *testing.T) {
	render := func() string {
		r := NewRegistry()
		for i := 0; i < 20; i++ {
			r.Counter(fmt.Sprintf("c%02d_total", i)).Inc()
			r.Gauge(fmt.Sprintf("g%02d", i)).Set(float64(i))
		}
		r.CounterWith("lbl_total", Labels{"a": "1"}).Inc()
		r.CounterWith("lbl_total", Labels{"a": "2"}).Inc()
		r.Histogram("h_ns").Observe(1500)
		var b strings.Builder
		WritePrometheus(&b, r.Snapshot())
		return b.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("exposition not deterministic:\n--- first ---\n%s\n--- run %d ---\n%s", first, i, got)
		}
	}
	// Within each type section, family TYPE lines must appear sorted.
	sections := map[string][]string{}
	for _, line := range strings.Split(first, "\n") {
		var base, typ string
		if n, _ := fmt.Sscanf(line, "# TYPE %s %s", &base, &typ); n == 2 {
			sections[typ] = append(sections[typ], base)
		}
	}
	for typ, fams := range sections {
		if !sort.StringsAreSorted(fams) {
			t.Fatalf("%s families not sorted: %v", typ, fams)
		}
	}
	if len(sections["counter"]) != 21 || len(sections["gauge"]) != 20 || len(sections["histogram"]) != 1 {
		t.Fatalf("unexpected family counts: %v", sections)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Counter(fmt.Sprintf("c%02d_total", 15-i)).Inc()
		r.Gauge(fmt.Sprintf("g%02d", 15-i)).Set(1)
		r.Histogram(fmt.Sprintf("h%02d_ns", 15-i)).Observe(2000)
	}
	s := r.Snapshot()
	var first strings.Builder
	s.WriteText(&first)
	for i := 0; i < 5; i++ {
		var again strings.Builder
		s.WriteText(&again)
		if again.String() != first.String() {
			t.Fatalf("text dump not deterministic")
		}
	}
	// Lines within each section must be sorted by instrument name.
	var counters []string
	for _, line := range strings.Split(first.String(), "\n") {
		if strings.HasPrefix(line, "counter ") {
			counters = append(counters, line)
		}
	}
	if len(counters) != 16 || !sort.StringsAreSorted(counters) {
		t.Fatalf("counter section unsorted or incomplete: %v", counters)
	}
}
