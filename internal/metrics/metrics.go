// Package metrics implements the per-core metrics registry of the
// observability subsystem: named counters, gauges, and latency histograms
// built on the internal/stats kernels, with a consistent snapshot for remote
// queries (fargo-shell `stats`, the monitor's metrics pane) and a plain-text
// dump for humans.
//
// Instruments are get-or-create by name; hot paths fetch their instruments
// once at construction and then touch only the lock-free stats kernels, so
// the registry map lock never appears on a request path.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"fargo/internal/stats"
)

// DefaultMaxLabeledSeries bounds how many distinct labeled series one
// registry will hold. Labels multiply: per-method instruments mint a series
// per (complet, method) pair, and a buggy or adversarial label value would
// otherwise grow the registry — and every scrape and ObsQuery reply — without
// bound. Unlabeled series are never capped; they come from a fixed set of
// instrumentation sites.
const DefaultMaxLabeledSeries = 2048

// DroppedSeriesName is the counter that records labeled series rejected by
// the cardinality cap. It registers on the first drop, so the very scrape
// that is missing a capped series also shows why.
const DroppedSeriesName = "metrics_dropped_series_total"

// Registry holds one core's named instruments.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*stats.Counter
	gauges     map[string]*stats.Gauge
	hists      map[string]*stats.Histogram
	labeled    int // live labeled series across all three maps
	maxLabeled int
	dropped    *stats.Counter // the DroppedSeriesName counter (also in counters)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*stats.Counter),
		gauges:     make(map[string]*stats.Gauge),
		hists:      make(map[string]*stats.Histogram),
		maxLabeled: DefaultMaxLabeledSeries,
		dropped:    &stats.Counter{},
	}
}

// SetLabeledSeriesLimit replaces the labeled-series cardinality cap. n <= 0
// restores the default. Already-registered series stay; the cap gates only
// new registrations.
func (r *Registry) SetLabeledSeriesLimit(n int) {
	if r == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxLabeledSeries
	}
	r.mu.Lock()
	r.maxLabeled = n
	r.mu.Unlock()
}

// isLabeled reports whether a canonical name carries a label set.
func isLabeled(name string) bool { return strings.IndexByte(name, '{') >= 0 }

// admit decides (under r.mu) whether a new labeled series may register.
// Rejections bump the dropped-series counter; the caller hands the
// instrumented code a detached throwaway instead.
func (r *Registry) admit(name string) bool {
	if !isLabeled(name) {
		return true
	}
	if r.labeled >= r.maxLabeled {
		r.counters[DroppedSeriesName] = r.dropped
		r.dropped.Inc()
		return false
	}
	r.labeled++
	return true
}

// Remove unregisters a series by name (canonicalized like registration), so
// instruments scoped to a departed complet stop scraping here — the history
// travels to the new host in the movement bundle instead of double-counting
// in federation. Instruments already fetched keep working; they are simply
// detached. Unknown names are a no-op.
func (r *Registry) Remove(name string) {
	if r == nil {
		return
	}
	var err error
	if name, err = canonicalName(name); err != nil {
		return
	}
	if name == DroppedSeriesName {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	if _, ok := r.counters[name]; ok {
		delete(r.counters, name)
		n++
	}
	if _, ok := r.gauges[name]; ok {
		delete(r.gauges, name)
		n++
	}
	if _, ok := r.hists[name]; ok {
		delete(r.hists, name)
		n++
	}
	if isLabeled(name) {
		r.labeled -= n
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe: a
// nil registry returns a throwaway counter so instrumented code never has to
// branch. Names are validated against the Prometheus rules at registration
// time (see names.go): dotted names are normalized ('.' -> '_'); invalid
// names — spaces, leading digits — are rejected by returning a detached
// throwaway that never enters the registry or a scrape.
func (r *Registry) Counter(name string) *stats.Counter {
	if r == nil {
		return &stats.Counter{}
	}
	var err error
	if name, err = canonicalName(name); err != nil {
		return &stats.Counter{}
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &stats.Counter{}
	if !r.admit(name) {
		return c
	}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Naming follows
// the same validation/normalization rules as Counter.
func (r *Registry) Gauge(name string) *stats.Gauge {
	if r == nil {
		return &stats.Gauge{}
	}
	var err error
	if name, err = canonicalName(name); err != nil {
		return &stats.Gauge{}
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &stats.Gauge{}
	if !r.admit(name) {
		return g
	}
	r.gauges[name] = g
	return g
}

// Histogram returns the named latency histogram (nanosecond domain, standard
// log buckets), creating it on first use. By convention histogram names end
// in "_ns" so renderers know the unit. Naming follows the same
// validation/normalization rules as Counter.
func (r *Registry) Histogram(name string) *stats.Histogram {
	if r == nil {
		return stats.NewLatencyHistogram()
	}
	var err error
	if name, err = canonicalName(name); err != nil {
		return stats.NewLatencyHistogram()
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = stats.NewLatencyHistogram()
	if !r.admit(name) {
		return h
	}
	r.hists[name] = h
	return h
}

// CounterWith returns the counter for (name, labels) — the labeled series
// name{k="v",...}. Callers on hot paths should fetch the instrument once and
// hold it, exactly as with Counter.
func (r *Registry) CounterWith(name string, labels Labels) *stats.Counter {
	return r.Counter(JoinLabels(name, labels))
}

// GaugeWith returns the gauge for (name, labels).
func (r *Registry) GaugeWith(name string, labels Labels) *stats.Gauge {
	return r.Gauge(JoinLabels(name, labels))
}

// HistogramWith returns the histogram for (name, labels).
func (r *Registry) HistogramWith(name string, labels Labels) *stats.Histogram {
	return r.Histogram(JoinLabels(name, labels))
}

// Snapshot is a point-in-time view of every instrument.
type Snapshot struct {
	At         time.Time
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]stats.HistogramSnapshot
}

// Snapshot reads every instrument. Instruments are read one by one, so the
// view is consistent per instrument, not across them — fine for monitoring.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		At:         time.Now(),
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]stats.HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*stats.Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*stats.Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*stats.Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		if val, _, ok := v.Value(); ok {
			s.Gauges[k] = val
		}
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// WriteText renders the snapshot as a sorted plain-text dump, one instrument
// per line. Histogram names ending in "_ns" render as durations.
func (s Snapshot) WriteText(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "counter %-32s %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "gauge   %-32s %g\n", k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		if strings.HasSuffix(k, "_ns") {
			fmt.Fprintf(w, "hist    %-32s count=%d mean=%v p50=%v p95=%v p99=%v\n",
				k, h.Count, ns(h.Mean()), ns(h.P50), ns(h.P95), ns(h.P99))
			continue
		}
		fmt.Fprintf(w, "hist    %-32s count=%d mean=%g p50=%g p95=%g p99=%g\n",
			k, h.Count, h.Mean(), h.P50, h.P95, h.P99)
	}
}

// ns renders a nanosecond quantity as a rounded duration.
func ns(v float64) time.Duration {
	return time.Duration(v).Round(time.Microsecond)
}
