package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4): the encoding the
// /metrics endpoint serves. Counters and gauges render one sample per
// series; histograms expand into the conventional cumulative _bucket series
// plus _sum and _count. Output is deterministically ordered — families
// sorted by base name, series sorted by their canonical label strings,
// buckets ascending — so scrape diffs and golden tests are stable.

// PrometheusContentType is the Content-Type of the exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format.
func WritePrometheus(w io.Writer, s Snapshot) {
	type series struct {
		full string // canonical series name including labels
		base string
		// key is the parsed, flattened label list (k1, v1, k2, v2, ...;
		// keys ascending). Sorting on the decoded pairs rather than the raw
		// quoted string keeps the order stable under value escaping: the
		// rendering of `\"` or `\\` must not decide where a series lands.
		key []string
	}
	group := func(names map[string]struct{}) (bases []string, byBase map[string][]series) {
		byBase = make(map[string][]series)
		for full := range names {
			base, labels, err := splitLabels(full)
			if err != nil {
				base, labels = full, nil
			}
			keys := make([]string, 0, len(labels))
			for k := range labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			flat := make([]string, 0, 2*len(keys))
			for _, k := range keys {
				flat = append(flat, k, labels[k])
			}
			byBase[base] = append(byBase[base], series{full: full, base: base, key: flat})
		}
		for _, list := range byBase {
			sort.Slice(list, func(i, j int) bool {
				a, b := list[i].key, list[j].key
				for n := 0; n < len(a) && n < len(b); n++ {
					if a[n] != b[n] {
						return a[n] < b[n]
					}
				}
				if len(a) != len(b) {
					return len(a) < len(b)
				}
				return list[i].full < list[j].full
			})
		}
		bases = make([]string, 0, len(byBase))
		for b := range byBase {
			bases = append(bases, b)
		}
		sort.Strings(bases)
		return bases, byBase
	}

	counterNames := make(map[string]struct{}, len(s.Counters))
	for name := range s.Counters {
		counterNames[name] = struct{}{}
	}
	bases, byBase := group(counterNames)
	for _, base := range bases {
		fmt.Fprintf(w, "# TYPE %s counter\n", base)
		for _, ser := range byBase[base] {
			fmt.Fprintf(w, "%s %d\n", ser.full, s.Counters[ser.full])
		}
	}

	gaugeNames := make(map[string]struct{}, len(s.Gauges))
	for name := range s.Gauges {
		gaugeNames[name] = struct{}{}
	}
	bases, byBase = group(gaugeNames)
	for _, base := range bases {
		fmt.Fprintf(w, "# TYPE %s gauge\n", base)
		for _, ser := range byBase[base] {
			fmt.Fprintf(w, "%s %s\n", ser.full, formatFloat(s.Gauges[ser.full]))
		}
	}

	histNames := make(map[string]struct{}, len(s.Histograms))
	for name := range s.Histograms {
		histNames[name] = struct{}{}
	}
	bases, byBase = group(histNames)
	for _, base := range bases {
		fmt.Fprintf(w, "# TYPE %s histogram\n", base)
		for _, ser := range byBase[base] {
			writePrometheusHistogram(w, ser.full, s)
		}
	}
}

// writePrometheusHistogram expands one histogram series into cumulative
// _bucket samples (le-labeled), _sum, and _count. Snapshots without bucket
// data (e.g. reconstructed from wire replies) emit only _sum and _count.
func writePrometheusHistogram(w io.Writer, full string, s Snapshot) {
	h := s.Histograms[full]
	base, labels, err := splitLabels(full)
	if err != nil {
		base, labels = full, nil
	}
	withLe := func(le string) string {
		merged := Labels{"le": le}
		for k, v := range labels {
			merged[k] = v
		}
		return JoinLabels(base+"_bucket", merged)
	}
	if len(h.Bounds) == len(h.Buckets) {
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(w, "%s %d\n", withLe(formatFloat(bound)), cum)
			// Exemplars ride as OpenMetrics-style annotations on comment
			// lines directly under their bucket. A 0.0.4 text parser skips
			// every '#' line it does not understand, so the exposition stays
			// valid for plain Prometheus scrapers while carrying the
			// metric→trace link for anything that looks.
			if i < len(h.Exemplars) && h.Exemplars[i].TraceID != "" {
				e := h.Exemplars[i]
				fmt.Fprintf(w, "# EXEMPLAR %s {trace_id=%q} %s %d\n",
					withLe(formatFloat(bound)), e.TraceID, formatFloat(e.Value), e.UnixNanos)
			}
		}
	}
	fmt.Fprintf(w, "%s %d\n", withLe("+Inf"), h.Count)
	fmt.Fprintf(w, "%s %s\n", JoinLabels(base+"_sum", labels), formatFloat(h.Sum))
	fmt.Fprintf(w, "%s %d\n", JoinLabels(base+"_count", labels), h.Count)
}

// formatFloat renders a sample value per the exposition format: shortest
// round-trip representation, with Inf/NaN spelled the Prometheus way.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
