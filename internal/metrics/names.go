package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Metric naming. Instrument names follow the Prometheus data model so the
// registry can be scraped without renaming: a base name matching
// [a-zA-Z_:][a-zA-Z0-9_:]* optionally followed by a {k="v",...} label suffix
// whose keys match [a-zA-Z_][a-zA-Z0-9_]*. Registration normalizes the
// legacy dotted style ('.' becomes '_') and REJECTS names that cannot be
// made valid — spaces, leading digits, exotic characters. Rejected
// instruments are detached throwaways: they count locally for the caller
// but never enter the registry, never appear in snapshots, and never reach
// an exporter, so one bad name cannot corrupt the whole scrape.

// ValidateName checks a metric name (base name plus optional label suffix)
// against the Prometheus naming rules, after normalization. It returns nil
// for names the registry accepts.
func ValidateName(name string) error {
	_, err := canonicalName(name)
	return err
}

// canonicalName normalizes a name ('.' -> '_' in the base name and label
// keys) and validates the result. The returned name is what the registry
// stores under.
func canonicalName(name string) (string, error) {
	base, labels, err := splitLabels(name)
	if err != nil {
		return "", err
	}
	base = strings.ReplaceAll(base, ".", "_")
	if err := validateBase(base); err != nil {
		return "", err
	}
	if len(labels) == 0 {
		return base, nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i, k := range keys {
		ck := strings.ReplaceAll(k, ".", "_")
		if err := validateLabelKey(ck); err != nil {
			return "", err
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", ck, labels[k])
	}
	sb.WriteByte('}')
	return sb.String(), nil
}

func validateBase(base string) error {
	if base == "" {
		return fmt.Errorf("metrics: empty metric name")
	}
	for i, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return fmt.Errorf("metrics: name %q starts with a digit", base)
			}
		default:
			return fmt.Errorf("metrics: name %q contains invalid character %q", base, r)
		}
	}
	return nil
}

func validateLabelKey(k string) error {
	if k == "" {
		return fmt.Errorf("metrics: empty label key")
	}
	for i, r := range k {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return fmt.Errorf("metrics: label key %q starts with a digit", k)
			}
		default:
			return fmt.Errorf("metrics: label key %q contains invalid character %q", k, r)
		}
	}
	return nil
}

// Labels is a label set attached to an instrument. The registry renders a
// (name, Labels) pair into one canonical string key, so two callers using
// the same set share the instrument regardless of map iteration order.
type Labels map[string]string

// JoinLabels renders name plus labels in the canonical form the registry
// and the Prometheus encoder use: base{k1="v1",k2="v2"} with keys sorted
// and values quote-escaped. Empty labels return the name unchanged.
func JoinLabels(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// SplitName separates a canonical series name into its base name and parsed
// label set (nil labels when the name has no suffix). Aggregators use it to
// group per-core series of the same family.
func SplitName(full string) (base string, labels Labels, err error) {
	return splitLabels(full)
}

// WithLabel returns the canonical series name with one more label attached —
// how the observatory stamps every federated series with its origin core.
// An existing label under the same key is overwritten.
func WithLabel(full, key, value string) (string, error) {
	base, labels, err := splitLabels(full)
	if err != nil {
		return "", err
	}
	if labels == nil {
		labels = Labels{}
	}
	labels[key] = value
	return canonicalName(JoinLabels(base, labels))
}

// splitLabels separates a canonical or caller-supplied name into its base
// and parsed label set. Names without a suffix return nil labels.
func splitLabels(full string) (base string, labels Labels, err error) {
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return full, nil, nil
	}
	if !strings.HasSuffix(full, "}") {
		return "", nil, fmt.Errorf("metrics: name %q has an unterminated label suffix", full)
	}
	base = full[:i]
	inner := full[i+1 : len(full)-1]
	labels = Labels{}
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("metrics: name %q has a malformed label suffix", full)
		}
		key := inner[:eq]
		rest := inner[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return "", nil, fmt.Errorf("metrics: label value in %q is not quoted", full)
		}
		// Find the closing quote, honoring backslash escapes.
		end := -1
		for j := 1; j < len(rest); j++ {
			if rest[j] == '\\' {
				j++
				continue
			}
			if rest[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return "", nil, fmt.Errorf("metrics: label value in %q is unterminated", full)
		}
		var val string
		if _, err := fmt.Sscanf(rest[:end+1], "%q", &val); err != nil {
			val = rest[1:end]
		}
		labels[key] = val
		inner = rest[end+1:]
		if strings.HasPrefix(inner, ",") {
			inner = inner[1:]
		} else if len(inner) > 0 {
			return "", nil, fmt.Errorf("metrics: name %q has a malformed label suffix", full)
		}
	}
	return base, labels, nil
}
