package metrics

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"fargo/internal/stats"
)

// Exposition edge cases: escaping, empty registries, zero-observation
// histograms, and the cumulative-bucket invariants of merged histograms (the
// observatory's /cluster/metrics renders merged snapshots through this same
// encoder).

// TestPrometheusLabelValueEscaping: label values containing quotes,
// backslashes and newlines must render escaped and round-trip through
// SplitName unchanged.
func TestPrometheusLabelValueEscaping(t *testing.T) {
	hostile := `quote " backslash \ newline` + "\n" + `end`
	full := JoinLabels("edge_total", Labels{"detail": hostile})
	if strings.ContainsRune(full, '\n') {
		t.Fatalf("canonical name %q carries a raw newline", full)
	}
	base, labels, err := SplitName(full)
	if err != nil {
		t.Fatalf("SplitName(%q): %v", full, err)
	}
	if base != "edge_total" || labels["detail"] != hostile {
		t.Fatalf("round-trip lost the value: base=%q detail=%q", base, labels["detail"])
	}

	var buf bytes.Buffer
	WritePrometheus(&buf, Snapshot{Counters: map[string]uint64{full: 7}})
	page := buf.String()
	if !strings.Contains(page, `\"`) || !strings.Contains(page, `\\`) || !strings.Contains(page, `\n`) {
		t.Fatalf("exposition did not escape the label value:\n%s", page)
	}
	// One sample line, and it parses back.
	for _, line := range strings.Split(strings.TrimSpace(page), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.LastIndexByte(line, ' ')]
		if _, _, err := SplitName(name); err != nil {
			t.Fatalf("emitted series %q does not re-parse: %v", name, err)
		}
	}
}

// TestPrometheusRejectsHostileNames: names that cannot be made valid are
// refused at registration, so they can never corrupt a scrape.
func TestPrometheusRejectsHostileNames(t *testing.T) {
	for _, name := range []string{
		"", "7starts_with_digit", "has space", "emoji_☃", `inject{a="b"} 1` + "\nevil 2",
	} {
		if err := ValidateName(name); err == nil {
			t.Fatalf("ValidateName(%q) accepted a hostile name", name)
		}
	}
	// The legacy dotted style is normalized, not rejected.
	if err := ValidateName("fargo.moves.total"); err != nil {
		t.Fatalf("dotted name rejected: %v", err)
	}
}

// TestPrometheusEmptyRegistry: a registry with no instruments produces an
// empty page, not a malformed one.
func TestPrometheusEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, NewRegistry().Snapshot())
	if got := buf.String(); got != "" {
		t.Fatalf("empty registry rendered %q, want empty output", got)
	}
}

// TestPrometheusZeroObservationHistogram: a registered histogram nobody has
// observed still renders a full, consistent family — every bucket 0, +Inf 0,
// sum 0, count 0.
func TestPrometheusZeroObservationHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("idle_latency_ns") // registered, never observed
	var buf bytes.Buffer
	WritePrometheus(&buf, reg.Snapshot())
	page := buf.String()

	if !strings.Contains(page, "# TYPE idle_latency_ns histogram") {
		t.Fatalf("no histogram family emitted:\n%s", page)
	}
	buckets := parseBuckets(t, page, "idle_latency_ns")
	if len(buckets) == 0 {
		t.Fatal("zero-observation histogram emitted no _bucket series")
	}
	for _, c := range buckets {
		if c != 0 {
			t.Fatalf("zero-observation histogram has non-zero bucket: %v", buckets)
		}
	}
	if !strings.Contains(page, "idle_latency_ns_sum 0\n") || !strings.Contains(page, "idle_latency_ns_count 0\n") {
		t.Fatalf("sum/count not zero:\n%s", page)
	}
}

// TestPrometheusMergedHistogramInvariants: a histogram merged across members
// (the observatory's cluster_ families) must render cumulative bucket counts
// that are monotone non-decreasing and end at the total count.
func TestPrometheusMergedHistogramInvariants(t *testing.T) {
	h1 := stats.NewLatencyHistogram()
	h2 := stats.NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		h1.Observe(float64(1000 * (i + 1)))  // 1µs..100µs
		h2.Observe(float64(50000 * (i + 1))) // 50µs..5ms
	}
	merged := stats.MergeHistogramSnapshots([]stats.HistogramSnapshot{h1.Snapshot(), h2.Snapshot()})
	if merged.Count != 200 {
		t.Fatalf("merged Count = %d, want 200", merged.Count)
	}

	var buf bytes.Buffer
	WritePrometheus(&buf, Snapshot{Histograms: map[string]stats.HistogramSnapshot{
		"cluster_invoke_latency_ns": merged,
	}})
	page := buf.String()
	buckets := parseBuckets(t, page, "cluster_invoke_latency_ns")
	if len(buckets) < 2 {
		t.Fatalf("merged histogram emitted %d buckets:\n%s", len(buckets), page)
	}
	var prev uint64
	for i, c := range buckets {
		if c < prev {
			t.Fatalf("cumulative bucket %d decreased: %d after %d\n%s", i, c, prev, page)
		}
		prev = c
	}
	if last := buckets[len(buckets)-1]; last != merged.Count {
		t.Fatalf("+Inf bucket = %d, want total count %d", last, merged.Count)
	}
}

// parseBuckets extracts the cumulative _bucket sample values of one histogram
// family, in emission (ascending-le) order.
func parseBuckets(t *testing.T, page, family string) []uint64 {
	t.Helper()
	var out []uint64
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, family+"_bucket{") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseUint(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		out = append(out, v)
	}
	return out
}
