package metrics

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// The labeled-series cardinality cap: registrations beyond the cap get a
// detached throwaway and bump metrics_dropped_series_total; unlabeled series
// are never capped.
func TestLabeledSeriesCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetLabeledSeriesLimit(4)
	for i := 0; i < 8; i++ {
		r.CounterWith("calls_total", Labels{"m": fmt.Sprintf("m%d", i)}).Inc()
	}
	s := r.Snapshot()
	labeled := 0
	for name := range s.Counters {
		if strings.Contains(name, "{") {
			labeled++
		}
	}
	if labeled != 4 {
		t.Fatalf("cap not enforced: %d labeled series live, want 4", labeled)
	}
	if got := s.Counters[DroppedSeriesName]; got != 4 {
		t.Fatalf("%s = %d, want 4", DroppedSeriesName, got)
	}
	// Unlabeled registration is still open.
	r.Counter("plain_total").Inc()
	if _, ok := r.Snapshot().Counters["plain_total"]; !ok {
		t.Fatalf("cap wrongly applied to an unlabeled series")
	}
	// Re-fetching an admitted series must not count against anything.
	r.CounterWith("calls_total", Labels{"m": "m0"}).Inc()
	if got := r.Snapshot().Counters[DroppedSeriesName]; got != 4 {
		t.Fatalf("re-fetch of a live series dropped: counter = %d", got)
	}
}

func TestRemoveFreesCardinality(t *testing.T) {
	r := NewRegistry()
	r.SetLabeledSeriesLimit(2)
	r.HistogramWith("lat_ns", Labels{"m": "a"}).Observe(2000)
	r.GaugeWith("inflight", Labels{"m": "a"}).Set(1)
	// Cap is now full; a third labeled series is dropped.
	r.CounterWith("calls_total", Labels{"m": "a"}).Inc()
	if _, ok := r.Snapshot().Counters[JoinLabels("calls_total", Labels{"m": "a"})]; ok {
		t.Fatalf("series admitted past the cap")
	}
	// Removing one frees a slot.
	r.Remove(JoinLabels("lat_ns", Labels{"m": "a"}))
	if _, ok := r.Snapshot().Histograms[JoinLabels("lat_ns", Labels{"m": "a"})]; ok {
		t.Fatalf("Remove left the histogram registered")
	}
	r.CounterWith("calls_total", Labels{"m": "b"}).Inc()
	if _, ok := r.Snapshot().Counters[JoinLabels("calls_total", Labels{"m": "b"})]; !ok {
		t.Fatalf("slot not freed by Remove")
	}
}

func TestRemoveNilAndUnknownSafe(t *testing.T) {
	var r *Registry
	r.Remove("anything")
	r2 := NewRegistry()
	r2.Remove("never_registered")
	r2.Remove("not a valid name {")
}

// Label values must survive the join → exposition → split round trip even
// with quotes, backslashes, newlines, and UTF-8 in them.
func TestLabelValueEscapingRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`with space`,
		`quote"inside`,
		`back\slash`,
		"new\nline",
		`both"\and`,
		`utf8 π complet→core`,
		`trailing\`,
		`{curly,braces}`,
		`a="b"`,
	}
	for _, v := range values {
		full := JoinLabels("m_total", Labels{"val": v, "k": "x"})
		base, labels, err := splitLabels(full)
		if err != nil {
			t.Fatalf("splitLabels(%q): %v", full, err)
		}
		if base != "m_total" || labels["val"] != v || labels["k"] != "x" {
			t.Fatalf("round trip mangled %q: base=%q labels=%v", v, base, labels)
		}
	}
}

// Exposition order for labeled series must be decided by decoded label pairs,
// not by the escaped byte string, and must be deterministic.
func TestPrometheusLabeledSeriesOrder(t *testing.T) {
	r := NewRegistry()
	// Escaped forms would sort `\"` (0x5c) after most printables even though
	// the decoded value `"a` sorts first.
	r.CounterWith("ord_total", Labels{"v": `"a`}).Inc()
	r.CounterWith("ord_total", Labels{"v": `b`}).Inc()
	r.CounterWith("ord_total", Labels{"v": `a`}).Inc()
	r.Counter("ord_total").Inc() // no labels sorts before any labeled series
	s := r.Snapshot()

	var first strings.Builder
	WritePrometheus(&first, s)
	for i := 0; i < 5; i++ {
		var again strings.Builder
		WritePrometheus(&again, s)
		if again.String() != first.String() {
			t.Fatalf("exposition not deterministic")
		}
	}
	var got []string
	for _, line := range strings.Split(first.String(), "\n") {
		if strings.HasPrefix(line, "ord_total") {
			got = append(got, line[:strings.LastIndex(line, " ")])
		}
	}
	want := []string{
		`ord_total`,
		`ord_total{v="\"a"}`,
		`ord_total{v="a"}`,
		`ord_total{v="b"}`,
	}
	if len(got) != len(want) {
		t.Fatalf("series lines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	if !sort.StringsAreSorted([]string{got[2], got[3]}) {
		t.Fatalf("labeled series unsorted: %v", got)
	}
}

// Exemplars surface as '# EXEMPLAR' annotation lines directly under their
// bucket, and only for stamped buckets.
func TestPrometheusExemplarAnnotations(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("lat_ns", Labels{"method": "Work"})
	h.Observe(1500)
	h.ObserveExemplar(3e6, "00000000000000ab")
	var buf strings.Builder
	WritePrometheus(&buf, r.Snapshot())
	out := buf.String()

	var ex []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# EXEMPLAR ") {
			ex = append(ex, line)
		}
	}
	if len(ex) != 1 {
		t.Fatalf("want exactly 1 exemplar line, got %v\nfull:\n%s", ex, out)
	}
	if !strings.Contains(ex[0], `trace_id="00000000000000ab"`) {
		t.Fatalf("exemplar line missing trace ID: %q", ex[0])
	}
	if !strings.Contains(ex[0], `lat_ns_bucket{`) || !strings.Contains(ex[0], `method="Work"`) {
		t.Fatalf("exemplar line not tied to its labeled bucket series: %q", ex[0])
	}
	if !strings.Contains(ex[0], " 3e+06 ") {
		t.Fatalf("exemplar line missing sample value: %q", ex[0])
	}
	// The annotation must sit immediately after the bucket it describes, and
	// every non-comment line must still parse as exposition format.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "# EXEMPLAR ") {
			if i == 0 || !strings.HasPrefix(lines[i-1], "lat_ns_bucket{") {
				t.Fatalf("exemplar annotation not adjacent to its bucket:\n%s", out)
			}
			bucket := lines[i-1][:strings.LastIndex(lines[i-1], " ")]
			if !strings.Contains(line, bucket) {
				t.Fatalf("exemplar names %q, bucket above is %q", line, bucket)
			}
		}
	}
}
