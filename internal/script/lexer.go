// Package script implements the FarGo layout scripting language (§4.3): an
// event-driven language of event–action rules that administrators attach to
// running applications, decoupling relocation policy from application code.
//
// The concrete syntax follows the paper's example script:
//
//	$coreList = %1
//	$targetCore = %2
//	$comps = %3
//	on shutdown firedby $core listenAt $coreList do
//	    move completsIn $core to $targetCore
//	end
//	on methodInvokeRate(3) from $comps[0] to $comps[1] do
//	    move $comps[0] to coreOf $comps[1]
//	end
//
// Statements are variable assignments ($x = expr) and rules. A rule names an
// event (a built-in event such as shutdown, or a profiled measure such as
// methodInvokeRate with a threshold), optional event qualifiers (firedby
// binds the firing core to a variable; from/to select a reference; listenAt
// selects the cores to subscribe at; every sets the measurement interval),
// and a body of actions. Built-in actions are move and log; applications
// extend the action vocabulary with RegisterAction (the Go equivalent of the
// paper's dynamically loaded action classes).
package script

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind discriminates tokens.
type TokKind int

// Token kinds.
const (
	TokIdent    TokKind = iota + 1
	TokVar              // $name
	TokArg              // %1
	TokNumber           // 3 or 3.5
	TokString           // "text"
	TokEquals           // =
	TokLParen           // (
	TokRParen           // )
	TokLBracket         // [
	TokRBracket         // ]
	TokComma            // ,
	TokOp               // < <= > >=
	TokEOF
)

func (k TokKind) String() string {
	switch k {
	case TokIdent:
		return "identifier"
	case TokVar:
		return "variable"
	case TokArg:
		return "argument"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokEquals:
		return "'='"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokComma:
		return "','"
	case TokOp:
		return "comparison operator"
	case TokEOF:
		return "end of script"
	default:
		return fmt.Sprintf("TokKind(%d)", int(k))
	}
}

// Token is one lexical unit with its source line (1-based) for diagnostics.
type Token struct {
	Kind TokKind
	Text string
	Line int
}

// SyntaxError reports a lexical or parse failure with its line.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("script: line %d: %s", e.Line, e.Msg)
}

// lex tokenizes a script. Newlines are insignificant (the grammar is
// self-delimiting); comments run from '#' to end of line.
func lex(src string) ([]Token, error) {
	var (
		toks []Token
		line = 1
		i    = 0
	)
	runes := []rune(src)
	for i < len(runes) {
		r := runes[i]
		switch {
		case r == '\n':
			line++
			i++
		case unicode.IsSpace(r):
			i++
		case r == '#':
			for i < len(runes) && runes[i] != '\n' {
				i++
			}
		case r == '=':
			toks = append(toks, Token{TokEquals, "=", line})
			i++
		case r == '(':
			toks = append(toks, Token{TokLParen, "(", line})
			i++
		case r == ')':
			toks = append(toks, Token{TokRParen, ")", line})
			i++
		case r == '[':
			toks = append(toks, Token{TokLBracket, "[", line})
			i++
		case r == ']':
			toks = append(toks, Token{TokRBracket, "]", line})
			i++
		case r == ',':
			toks = append(toks, Token{TokComma, ",", line})
			i++
		case r == '<' || r == '>':
			op := string(r)
			if i+1 < len(runes) && runes[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, Token{TokOp, op, line})
			i++
		case r == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(runes) && runes[j] != '"' {
				if runes[j] == '\n' {
					return nil, &SyntaxError{line, "unterminated string"}
				}
				if runes[j] == '\\' && j+1 < len(runes) {
					j++
					switch runes[j] {
					case 'n':
						sb.WriteRune('\n')
					case 't':
						sb.WriteRune('\t')
					default:
						sb.WriteRune(runes[j])
					}
				} else {
					sb.WriteRune(runes[j])
				}
				j++
			}
			if j >= len(runes) {
				return nil, &SyntaxError{line, "unterminated string"}
			}
			toks = append(toks, Token{TokString, sb.String(), line})
			i = j + 1
		case r == '$':
			j := i + 1
			for j < len(runes) && isIdentRune(runes[j]) {
				j++
			}
			if j == i+1 {
				return nil, &SyntaxError{line, "'$' must be followed by a variable name"}
			}
			toks = append(toks, Token{TokVar, string(runes[i+1 : j]), line})
			i = j
		case r == '%':
			j := i + 1
			for j < len(runes) && unicode.IsDigit(runes[j]) {
				j++
			}
			if j == i+1 {
				return nil, &SyntaxError{line, "'%' must be followed by an argument number"}
			}
			toks = append(toks, Token{TokArg, string(runes[i+1 : j]), line})
			i = j
		case unicode.IsDigit(r):
			j := i
			seenDot := false
			for j < len(runes) && (unicode.IsDigit(runes[j]) || (runes[j] == '.' && !seenDot)) {
				if runes[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, Token{TokNumber, string(runes[i:j]), line})
			i = j
		case isIdentStart(r):
			j := i
			for j < len(runes) && isIdentRune(runes[j]) {
				j++
			}
			toks = append(toks, Token{TokIdent, string(runes[i:j]), line})
			i = j
		default:
			return nil, &SyntaxError{line, fmt.Sprintf("unexpected character %q", r)}
		}
	}
	toks = append(toks, Token{TokEOF, "", line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' || r == '/' || r == '#'
}
