package script

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fargo/internal/core"
	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

// pingAnchor is a minimal complet for end-to-end script tests.
type pingAnchor struct {
	N int
}

func (p *pingAnchor) Ping() int { p.N++; return p.N }

// e2eCluster builds real cores over a simulated network.
func e2eCluster(t *testing.T, names ...string) map[string]*core.Core {
	t.Helper()
	net := netsim.NewNetwork(11)
	cores := make(map[string]*core.Core, len(names))
	for _, name := range names {
		tr, err := transport.NewSim(net, ids.CoreID(name))
		if err != nil {
			t.Fatal(err)
		}
		reg := registry.New()
		if err := reg.Register("PingAnchor", (*pingAnchor)(nil)); err != nil {
			t.Fatal(err)
		}
		c, err := core.New(tr, reg, core.Options{RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		cores[name] = c
	}
	t.Cleanup(func() {
		for _, c := range cores {
			_ = c.Shutdown(0)
		}
		net.Close()
	})
	return cores
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestE7PaperScriptEndToEnd runs the paper's example script verbatim against
// live cores: the reliability rule evacuates a dying core's complets, and
// the performance rule co-locates two complets when the invocation rate
// between them exceeds 3/s (E7 in EXPERIMENTS.md).
func TestE7PaperScriptEndToEnd(t *testing.T) {
	cores := e2eCluster(t, "north", "south", "safe", "admin")
	admin := cores["admin"]

	// Deploy: a caller on north, a target on south, a bystander on north.
	caller, err := admin.NewCompletAt("north", "PingAnchor")
	if err != nil {
		t.Fatal(err)
	}
	target, err := admin.NewCompletAt("south", "PingAnchor")
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := admin.NewCompletAt("north", "PingAnchor")
	if err != nil {
		t.Fatal(err)
	}
	_ = bystander

	rt, err := NewCoreRuntime(admin, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Run(paperScript, rt,
		[]Value{"north", "south"}, // %1 coreList (shutdown watch)
		"safe",                    // %2 targetCore
		[]Value{caller.Target().String(), target.Target().String()}, // %3 comps
	)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	// --- performance rule -------------------------------------------------
	// Drive invocations from caller to target above 3/s. The rate is
	// profiled per (source, target) reference at the hosting core, so the
	// invocations must carry the caller as source: invoke through a ref
	// owned by the caller complet.
	ownedRef := target // the admin stub; set owner to attribute traffic
	ownedRef.SetOwner(caller.Target())
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_, _ = ownedRef.Invoke("Ping")
			case <-stop:
				return
			}
		}
	}()
	// The rule should move the CALLER to the core of the TARGET (south).
	waitUntil(t, 10*time.Second, "performance rule to co-locate caller with target", func() bool {
		loc, err := admin.LocateComplet(caller.Target())
		return err == nil && loc == "south"
	})
	close(stop)

	// --- reliability rule -------------------------------------------------
	// Make north known to admin's script subscription (it already is) and
	// shut it down; its complets must evacuate to "safe" during grace.
	waitUntil(t, 5*time.Second, "bystander on north", func() bool {
		loc, err := admin.LocateComplet(bystander.Target())
		return err == nil && loc == "north"
	})
	go func() {
		_ = cores["north"].Shutdown(2 * time.Second)
	}()
	waitUntil(t, 10*time.Second, "reliability rule to evacuate north", func() bool {
		loc, err := admin.LocateComplet(bystander.Target())
		return err == nil && loc == "safe"
	})
	if got := inst.Fired(); got < 2 {
		t.Fatalf("rules fired %d times, want >= 2", got)
	}
}

// TestUnreachableRuleEndToEnd exercises the crash-detection extension: an
// `on unreachable` rule probes cores with heartbeats and reacts to a crash
// (host down, no shutdown protocol) by logging the dead core.
func TestUnreachableRuleEndToEnd(t *testing.T) {
	cores := e2eCluster(t, "frag", "admin")
	admin := cores["admin"]
	// Seed connectivity so probing starts from a live link.
	if _, err := admin.NewCompletAt("frag", "PingAnchor"); err != nil {
		t.Fatal(err)
	}

	var (
		mu   sync.Mutex
		dead []string
	)
	rt, err := NewCoreRuntime(admin, func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		dead = append(dead, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Run(`
$watch = %1
on unreachable firedby $core listenAt $watch do
  log $core
end`, rt, []Value{"frag"})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	// Crash the fragile core: no shutdown notice is sent.
	if err := cores["frag"].ShutdownAbrupt(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "unreachable rule to fire", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range dead {
			if strings.Contains(d, "frag") {
				return true
			}
		}
		return false
	})
}
