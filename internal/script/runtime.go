package script

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fargo/internal/core"
	"fargo/internal/ids"
)

// CoreRuntime adapts a live Core to the script Runtime interface, letting
// administrators attach layout scripts to a running deployment (§4.3).
type CoreRuntime struct {
	c    *core.Core
	logf func(format string, args ...any)
}

var (
	_ Runtime    = (*CoreRuntime)(nil)
	_ CtxRuntime = (*CoreRuntime)(nil)
)

// NewCoreRuntime wraps a core. logf receives log-action output (nil uses the
// core's logger configuration via fmt to standard log).
func NewCoreRuntime(c *core.Core, logf func(format string, args ...any)) (*CoreRuntime, error) {
	if c == nil {
		return nil, fmt.Errorf("script: nil core")
	}
	if logf == nil {
		logf = func(format string, args ...any) {} // discard by default
	}
	return &CoreRuntime{c: c, logf: logf}, nil
}

// LocalCore implements Runtime.
func (r *CoreRuntime) LocalCore() string { return r.c.ID().String() }

// Core exposes the wrapped core. Registered actions that integrate deeper
// than the Runtime surface (e.g. the planner's `plan` action) type-assert
// their Runtime to interface{ Core() *core.Core } to reach it.
func (r *CoreRuntime) Core() *core.Core { return r.c }

// Logf implements Runtime.
func (r *CoreRuntime) Logf(format string, args ...any) { r.logf(format, args...) }

// Heartbeat parameters backing `on unreachable` rules.
const (
	unreachableProbeInterval = 100 * time.Millisecond
	unreachableProbeMisses   = 3
)

// SubscribeBuiltin implements Runtime. Subscriptions at remote cores ride
// the distributed event mechanism (§4.2), so e.g. `on shutdown listenAt
// $coreList` hears every listed core. The coreUnreachable event is special:
// listenAt names the cores to PROBE — the script daemon runs the heartbeat
// itself (a crashed core cannot announce anything).
func (r *CoreRuntime) SubscribeBuiltin(event string, atCores []string, fn func(source string)) (func(), error) {
	// Registered event sources (e.g. the alert engine's "alert" event) take
	// precedence: they tap runtime-local feeds rather than the distributed
	// event mechanism.
	if src, ok := lookupEventSource(event); ok {
		return src(r, atCores, fn)
	}
	if event == core.EventCoreUnreachable {
		if len(atCores) == 0 {
			return nil, fmt.Errorf("script: `on unreachable` needs listenAt with the cores to probe")
		}
		probe := make([]ids.CoreID, len(atCores))
		for i, a := range atCores {
			probe[i] = ids.CoreID(a)
		}
		token, err := r.c.Monitor().SubscribeBuiltin(core.EventCoreUnreachable, func(ev core.Event) {
			fn(ev.Source.String())
		})
		if err != nil {
			return nil, err
		}
		hb, err := r.c.Monitor().StartHeartbeat(probe, unreachableProbeInterval, unreachableProbeMisses)
		if err != nil {
			r.c.Monitor().Unsubscribe(token)
			return nil, err
		}
		return func() {
			hb.Stop()
			r.c.Monitor().Unsubscribe(token)
		}, nil
	}
	if len(atCores) == 0 {
		atCores = []string{r.LocalCore()}
	}
	listener := func(ev core.Event) { fn(ev.Source.String()) }
	var cancels []func()
	for _, at := range atCores {
		atCore := ids.CoreID(at)
		token, err := r.c.Monitor().SubscribeAt(atCore, core.SubscribeOptions{Service: event}, listener)
		if err != nil {
			for _, c := range cancels {
				c()
			}
			return nil, err
		}
		tok := token
		cancels = append(cancels, func() {
			if err := r.c.Monitor().UnsubscribeAt(atCore, tok); err != nil {
				r.logf("script: unsubscribe %s at %s: %v", event, atCore, err)
			}
		})
	}
	return func() {
		for _, c := range cancels {
			c()
		}
	}, nil
}

// SubscribeThreshold implements Runtime.
func (r *CoreRuntime) SubscribeThreshold(atCore, service string, args []string, threshold float64, interval time.Duration, fn func(source string, value float64)) (func(), error) {
	at := ids.CoreID(atCore)
	if at.Nil() {
		at = r.c.ID()
	}
	// Complet arguments may be logical names; resolve them to IDs.
	resolved := make([]string, len(args))
	for i, a := range args {
		id, err := r.resolveComplet(a)
		if err != nil {
			// Not a complet: pass through (e.g. a core name for
			// latency/bandwidth services).
			resolved[i] = a
			continue
		}
		resolved[i] = id.String()
	}
	token, err := r.c.Monitor().SubscribeAt(at, core.SubscribeOptions{
		Service:   service,
		Args:      resolved,
		Threshold: threshold,
		Above:     true,
		Interval:  interval,
	}, func(ev core.Event) { fn(ev.Source.String(), ev.Value) })
	if err != nil {
		return nil, err
	}
	return func() {
		if err := r.c.Monitor().UnsubscribeAt(at, token); err != nil {
			r.logf("script: unsubscribe %s at %s: %v", service, at, err)
		}
	}, nil
}

// MoveComplet implements Runtime.
func (r *CoreRuntime) MoveComplet(target, dest string) error {
	id, err := r.resolveComplet(target)
	if err != nil {
		return err
	}
	return r.c.MoveByID(id, ids.CoreID(dest))
}

// MoveCompletCtx implements CtxRuntime: the move is abandoned (sender keeps
// the complet) once ctx ends.
func (r *CoreRuntime) MoveCompletCtx(ctx context.Context, target, dest string) error {
	id, err := r.resolveComplet(target)
	if err != nil {
		return err
	}
	return r.c.MoveByIDCtx(ctx, id, ids.CoreID(dest))
}

// Measure implements Runtime: one instant profiling measurement, with
// complet-name arguments resolved to IDs.
func (r *CoreRuntime) Measure(atCore, service string, args []string) (float64, error) {
	at := ids.CoreID(atCore)
	if at.Nil() {
		at = r.c.ID()
	}
	resolved := make([]string, len(args))
	for i, a := range args {
		if id, err := r.resolveComplet(a); err == nil {
			resolved[i] = id.String()
		} else {
			resolved[i] = a
		}
	}
	return r.c.Monitor().InstantAt(at, service, resolved...)
}

// CompletsIn implements Runtime.
func (r *CoreRuntime) CompletsIn(coreName string) ([]string, error) {
	info, err := r.c.CoreInfo(ids.CoreID(coreName))
	if err != nil {
		return nil, err
	}
	out := make([]string, len(info.Complets))
	for i, ci := range info.Complets {
		out[i] = ci.ID.String()
	}
	return out, nil
}

// CoreOf implements Runtime.
func (r *CoreRuntime) CoreOf(target string) (string, error) {
	id, err := r.resolveComplet(target)
	if err != nil {
		return "", err
	}
	loc, err := r.c.LocateComplet(id)
	if err != nil {
		return "", err
	}
	return loc.String(), nil
}

// resolveComplet turns a script-level complet designator — an ID string
// ("core/#7") or a logical name in the local naming service — into a
// CompletID.
func (r *CoreRuntime) resolveComplet(s string) (ids.CompletID, error) {
	if id, ok := parseCompletID(s); ok {
		return id, nil
	}
	if ref, ok := r.c.Lookup(s); ok {
		return ref.Target(), nil
	}
	return ids.CompletID{}, fmt.Errorf("script: unknown complet %q (neither an ID nor a registered name)", s)
}

// parseCompletID parses CompletID.String output ("birth/#seq").
func parseCompletID(s string) (ids.CompletID, bool) {
	i := strings.LastIndex(s, "/#")
	if i <= 0 {
		return ids.CompletID{}, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(s[i+2:], "%d", &seq); err != nil || seq == 0 {
		return ids.CompletID{}, false
	}
	return ids.CompletID{Birth: ids.CoreID(s[:i]), Seq: seq}, true
}
