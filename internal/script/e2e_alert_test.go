package script_test

// The `on alert` trigger needs the alert engine, which the script package's
// internal tests cannot import (alert itself imports script to register the
// event source) — hence the external test package.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fargo/internal/alert"
	"fargo/internal/core"
	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/registry"
	"fargo/internal/script"
	"fargo/internal/transport"
)

func newAlertTestCore(t *testing.T) *core.Core {
	t.Helper()
	net := netsim.NewNetwork(3)
	tr, err := transport.NewSim(net, ids.CoreID("a"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(tr, registry.New(), core.Options{RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = c.Shutdown(0)
		net.Close()
	})
	return c
}

// A firing alert rule triggers `on alert` script rules with the alert's name
// as the source — the §4.3 loop closed: SLO breach in, layout action out.
func TestOnAlertRuleFires(t *testing.T) {
	c := newAlertTestCore(t)
	e, err := alert.Start(c, alert.Options{
		Interval: 10 * time.Millisecond,
		Rules: []alert.Rule{
			{Name: "hot-shard", Cond: alert.CondThreshold, Series: "shard_load", Op: ">", Value: 100},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	var mu sync.Mutex
	var logs []string
	rt, err := script.NewCoreRuntime(c, func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		logs = append(logs, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := script.Run(`on alert firedby $rule do log $rule end`, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	c.Metrics().Gauge("shard_load").Set(500)
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		hit := false
		for _, l := range logs {
			if strings.Contains(l, "hot-shard") {
				hit = true
			}
		}
		mu.Unlock()
		if hit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("`on alert` never fired; logs = %v", logs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Arming `on alert` without an engine attached is a configuration error, not
// a silent no-op.
func TestOnAlertWithoutEngine(t *testing.T) {
	c := newAlertTestCore(t)
	rt, err := script.NewCoreRuntime(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := script.Run(`on alert do log "x" end`, rt); err == nil || !strings.Contains(err.Error(), "alert engine") {
		t.Fatalf("Run without engine: err = %v, want alert-engine error", err)
	}
}
