package script

import (
	"fmt"
	"strconv"
)

// Keywords of the rule grammar. They are contextual: outside their position
// they are ordinary identifiers (so a complet may be named "move").
const (
	kwOn         = "on"
	kwFiredBy    = "firedby"
	kwFrom       = "from"
	kwTo         = "to"
	kwListenAt   = "listenAt"
	kwEvery      = "every"
	kwDo         = "do"
	kwEnd        = "end"
	kwMove       = "move"
	kwLog        = "log"
	kwCompletsIn = "completsIn"
	kwCoreOf     = "coreOf"
	kwWhen       = "when"
	kwAt         = "at"
	kwTimeout    = "timeout"
)

// Parse turns script source into an AST.
func Parse(src string) (*Script, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseScript()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t Token, format string, args ...any) error {
	return &SyntaxError{Line: t.Line, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind TokKind) (Token, error) {
	t := p.next()
	if t.Kind != kind {
		return t, p.errf(t, "expected %s, got %s %q", kind, t.Kind, t.Text)
	}
	return t, nil
}

// expectIdent consumes a specific identifier or fails.
func (p *parser) expectIdent(word string) error {
	t := p.next()
	if t.Kind != TokIdent || t.Text != word {
		return p.errf(t, "expected %q, got %q", word, t.Text)
	}
	return nil
}

func (p *parser) parseScript() (*Script, error) {
	s := &Script{}
	for {
		t := p.peek()
		switch {
		case t.Kind == TokEOF:
			return s, nil
		case t.Kind == TokVar:
			a, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			s.Stmts = append(s.Stmts, a)
		case t.Kind == TokIdent && t.Text == kwOn:
			r, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			s.Stmts = append(s.Stmts, r)
		default:
			return nil, p.errf(t, "expected assignment or rule, got %q", t.Text)
		}
	}
}

func (p *parser) parseAssign() (*Assign, error) {
	v, err := p.expect(TokVar)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEquals); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Assign{Line: v.Line, Var: v.Text, Val: val}, nil
}

func (p *parser) parseRule() (*Rule, error) {
	onTok := p.next() // consume "on"
	evt, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	r := &Rule{Line: onTok.Line, Event: evt.Text}

	if p.peek().Kind == TokLParen {
		p.next()
		num, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		th, err := strconv.ParseFloat(num.Text, 64)
		if err != nil {
			return nil, p.errf(num, "bad threshold %q", num.Text)
		}
		r.Threshold = &th
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}

	// Qualifiers in any order until "do".
	for {
		t := p.peek()
		if t.Kind != TokIdent {
			return nil, p.errf(t, "expected rule qualifier or %q, got %q", kwDo, t.Text)
		}
		switch t.Text {
		case kwDo:
			p.next()
			goto body
		case kwFiredBy:
			p.next()
			v, err := p.expect(TokVar)
			if err != nil {
				return nil, err
			}
			r.FiredBy = v.Text
		case kwFrom:
			p.next()
			from, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectIdent(kwTo); err != nil {
				return nil, err
			}
			to, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.From, r.To = from, to
		case kwListenAt:
			p.next()
			at, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.ListenAt = at
		case kwEvery:
			p.next()
			num, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			ms, err := strconv.ParseFloat(num.Text, 64)
			if err != nil || ms <= 0 {
				return nil, p.errf(num, "bad interval %q (milliseconds)", num.Text)
			}
			r.EveryMillis = ms
		case kwWhen:
			g, err := p.parseGuard()
			if err != nil {
				return nil, err
			}
			r.Guards = append(r.Guards, *g)
		default:
			return nil, p.errf(t, "unknown rule qualifier %q", t.Text)
		}
	}

body:
	for {
		t := p.peek()
		if t.Kind == TokIdent && t.Text == kwEnd {
			p.next()
			break
		}
		if t.Kind == TokEOF {
			return nil, p.errf(t, "rule body not closed with %q", kwEnd)
		}
		a, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		r.Actions = append(r.Actions, a)
	}
	if len(r.Actions) == 0 {
		return nil, p.errf(onTok, "rule has no actions")
	}
	return r, nil
}

// parseGuard parses `when service(args...) op number [at expr]`. The leading
// "when" token has already been peeked by the caller.
func (p *parser) parseGuard() (*Guard, error) {
	whenTok := p.next() // consume "when"
	svc, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	g := &Guard{Line: whenTok.Line, Service: svc.Text}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for p.peek().Kind != TokRParen {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		g.Args = append(g.Args, arg)
		if p.peek().Kind == TokComma {
			p.next()
		}
	}
	p.next() // ')'
	op, err := p.expect(TokOp)
	if err != nil {
		return nil, err
	}
	g.Op = op.Text
	num, err := p.expect(TokNumber)
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseFloat(num.Text, 64)
	if err != nil {
		return nil, p.errf(num, "bad guard bound %q", num.Text)
	}
	g.Value = v
	if t := p.peek(); t.Kind == TokIdent && t.Text == kwAt {
		p.next()
		at, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		g.At = at
	}
	return g, nil
}

func (p *parser) parseAction() (Action, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errf(t, "expected action, got %q", t.Text)
	}
	switch t.Text {
	case kwMove:
		return p.parseMove()
	case kwTimeout:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		num, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		ms, err := strconv.ParseFloat(num.Text, 64)
		if err != nil || ms <= 0 {
			return nil, p.errf(num, "bad timeout %q (milliseconds)", num.Text)
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &TimeoutAction{Line: t.Line, Millis: ms}, nil
	case kwLog:
		p.next()
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &LogAction{Line: t.Line, Val: val}, nil
	default:
		// Extension action: name(args...).
		p.next()
		call := &CallAction{Line: t.Line, Name: t.Text}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, p.errf(t, "unknown action %q (extension actions use %s(...))", t.Text, t.Text)
		}
		for p.peek().Kind != TokRParen {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.peek().Kind == TokComma {
				p.next()
			}
		}
		p.next() // ')'
		return call, nil
	}
}

func (p *parser) parseMove() (Action, error) {
	moveTok := p.next() // "move"
	m := &MoveAction{Line: moveTok.Line}
	if t := p.peek(); t.Kind == TokIdent && t.Text == kwCompletsIn {
		p.next()
		m.AllIn = true
	}
	what, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	m.What = what
	if err := p.expectIdent(kwTo); err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind == TokIdent && t.Text == kwCoreOf {
		p.next()
		m.DestCoreOf = true
	}
	dest, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	m.Dest = dest
	return m, nil
}

// parseExpr parses a primary expression: variable (with optional index),
// argument, number, string, or bare word (treated as a string literal, e.g. a
// core name).
func (p *parser) parseExpr() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokVar:
		v := &VarRef{Line: t.Line, Name: t.Text}
		if p.peek().Kind == TokLBracket {
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			v.Index = idx
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
		}
		return v, nil
	case TokArg:
		n, err := strconv.Atoi(t.Text)
		if err != nil || n <= 0 {
			return nil, p.errf(t, "bad argument reference %%%s", t.Text)
		}
		return &ArgRef{Line: t.Line, N: n}, nil
	case TokNumber:
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q", t.Text)
		}
		return &NumberLit{Line: t.Line, Val: f}, nil
	case TokString:
		return &StringLit{Line: t.Line, Val: t.Text}, nil
	case TokIdent:
		// Bare word: a literal core/complet name.
		return &StringLit{Line: t.Line, Val: t.Text}, nil
	default:
		return nil, p.errf(t, "expected expression, got %s %q", t.Kind, t.Text)
	}
}
