package script

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeRuntime records interpreter activity and lets tests fire events.
type fakeRuntime struct {
	mu         sync.Mutex
	moves      []string // "target->dest"
	logs       []string
	complets   map[string][]string // core -> complet IDs
	locations  map[string]string   // complet -> core
	builtins   map[string][]func(source string)
	thresholds map[string][]func(source string, value float64)
	measures   map[string]float64 // "service@core" -> value
	subErr     error
	cancels    int
}

func newFakeRuntime() *fakeRuntime {
	return &fakeRuntime{
		complets:   map[string][]string{},
		locations:  map[string]string{},
		builtins:   map[string][]func(string){},
		thresholds: map[string][]func(string, float64){},
	}
}

func (f *fakeRuntime) LocalCore() string { return "local" }

func (f *fakeRuntime) Logf(format string, args ...any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.logs = append(f.logs, fmt.Sprintf(format, args...))
}

func (f *fakeRuntime) SubscribeBuiltin(event string, atCores []string, fn func(string)) (func(), error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.subErr != nil {
		return nil, f.subErr
	}
	if len(atCores) == 0 {
		atCores = []string{"local"}
	}
	for _, at := range atCores {
		key := event + "@" + at
		f.builtins[key] = append(f.builtins[key], fn)
	}
	return func() { f.mu.Lock(); f.cancels++; f.mu.Unlock() }, nil
}

func (f *fakeRuntime) SubscribeThreshold(atCore, service string, args []string, threshold float64, interval time.Duration, fn func(string, float64)) (func(), error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.subErr != nil {
		return nil, f.subErr
	}
	if atCore == "" {
		atCore = "local"
	}
	key := fmt.Sprintf("%s(%v)@%s[%s]", service, threshold, atCore, strings.Join(args, ","))
	f.thresholds[key] = append(f.thresholds[key], fn)
	return func() { f.mu.Lock(); f.cancels++; f.mu.Unlock() }, nil
}

func (f *fakeRuntime) MoveComplet(target, dest string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.moves = append(f.moves, target+"->"+dest)
	f.locations[target] = dest
	return nil
}

func (f *fakeRuntime) CompletsIn(core string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.complets[core]...), nil
}

func (f *fakeRuntime) CoreOf(target string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if loc, ok := f.locations[target]; ok {
		return loc, nil
	}
	return "", fmt.Errorf("no such complet %q", target)
}

// measures maps "service@core" to the value Measure returns.
func (f *fakeRuntime) Measure(atCore, service string, args []string) (float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.measures == nil {
		return 0, fmt.Errorf("no measurement for %s", service)
	}
	if atCore == "" {
		atCore = "local"
	}
	v, ok := f.measures[service+"@"+atCore]
	if !ok {
		return 0, fmt.Errorf("no measurement for %s at %s", service, atCore)
	}
	return v, nil
}

func (f *fakeRuntime) fireBuiltin(event, at, source string) {
	f.mu.Lock()
	fns := append([]func(string){}, f.builtins[event+"@"+at]...)
	f.mu.Unlock()
	for _, fn := range fns {
		fn(source)
	}
}

func (f *fakeRuntime) fireThreshold(key, source string, v float64) {
	f.mu.Lock()
	fns := append([]func(string, float64){}, f.thresholds[key]...)
	f.mu.Unlock()
	for _, fn := range fns {
		fn(source, v)
	}
}

func (f *fakeRuntime) movesSnapshot() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.moves...)
}

func TestRunPaperScriptAgainstFake(t *testing.T) {
	rt := newFakeRuntime()
	rt.complets["dying"] = []string{"dying/#1", "dying/#2"}
	rt.locations["app/#1"] = "north"
	rt.locations["app/#2"] = "south"

	inst, err := Run(paperScript, rt,
		[]Value{"core-x", "core-y", "dying"}, // %1: coreList
		"safe",                               // %2: targetCore
		[]Value{"app/#1", "app/#2"},          // %3: comps
	)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	// Reliability rule: shutdown of "dying" evacuates its complets.
	rt.fireBuiltin("coreShutdown", "dying", "dying")
	moves := rt.movesSnapshot()
	if len(moves) != 2 || moves[0] != "dying/#1->safe" || moves[1] != "dying/#2->safe" {
		t.Fatalf("moves = %v", moves)
	}
	if inst.Fired() != 1 {
		t.Fatalf("Fired = %d", inst.Fired())
	}

	// Performance rule: invocation rate above 3 co-locates the source
	// with the target. The subscription was placed at app/#2's core
	// ("south") on service invocationRate(app/#1, app/#2).
	key := "invocationRate(3)@south[app/#1,app/#2]"
	rt.fireThreshold(key, "south", 4.2)
	moves = rt.movesSnapshot()
	if len(moves) != 3 || moves[2] != "app/#1->south" {
		t.Fatalf("moves after rate event = %v", moves)
	}
}

func TestAssignAndIndexing(t *testing.T) {
	rt := newFakeRuntime()
	inst, err := Run(`
$list = %1
$second = $list[1]
on shutdown do move $second to elsewhere end
`, rt, []Value{"a/#1", "a/#2", "a/#3"})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rt.fireBuiltin("coreShutdown", "local", "local")
	moves := rt.movesSnapshot()
	if len(moves) != 1 || moves[0] != "a/#2->elsewhere" {
		t.Fatalf("moves = %v", moves)
	}
}

func TestLogAction(t *testing.T) {
	rt := newFakeRuntime()
	inst, err := Run(`on shutdown firedby $c do log $c end`, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rt.fireBuiltin("coreShutdown", "local", "the-source")
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.logs) != 1 || !strings.Contains(rt.logs[0], "the-source") {
		t.Fatalf("logs = %v", rt.logs)
	}
}

func TestExtensionAction(t *testing.T) {
	var (
		mu   sync.Mutex
		seen []Value
	)
	if err := RegisterAction("testNotify", func(rt Runtime, args []Value) error {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, args...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rt := newFakeRuntime()
	inst, err := Run(`on shutdown firedby $c do testNotify("ops", $c, 7) end`, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rt.fireBuiltin("coreShutdown", "local", "src")
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 || seen[0] != "ops" || seen[1] != "src" || seen[2] != 7.0 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestRegisterActionValidation(t *testing.T) {
	if err := RegisterAction("", nil); err == nil {
		t.Error("empty registration should fail")
	}
	if err := RegisterAction("move", func(Runtime, []Value) error { return nil }); err == nil {
		t.Error("reserved name should fail")
	}
	if err := RegisterAction("dupAction", func(Runtime, []Value) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := RegisterAction("dupAction", func(Runtime, []Value) error { return nil }); err == nil {
		t.Error("duplicate should fail")
	}
}

func TestUnknownActionReported(t *testing.T) {
	rt := newFakeRuntime()
	inst, err := Run(`on shutdown do neverRegistered($core) end`, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rt.fireBuiltin("coreShutdown", "local", "src")
	rt.mu.Lock()
	defer rt.mu.Unlock()
	found := false
	for _, l := range rt.logs {
		if strings.Contains(l, "neverRegistered") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unknown action not reported: %v", rt.logs)
	}
}

func TestUndefinedVariableFailsAtRunTime(t *testing.T) {
	rt := newFakeRuntime()
	if _, err := Run(`on shutdown listenAt $nope do log "x" end`, rt); err == nil {
		t.Fatal("undefined variable should fail Run")
	}
}

func TestCloseCancels(t *testing.T) {
	rt := newFakeRuntime()
	inst, err := Run(`
$l = core-a
on shutdown listenAt $l do log "x" end
on completLoad(5) do log "y" end
`, rt)
	if err != nil {
		t.Fatal(err)
	}
	inst.Close()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.cancels != 2 {
		t.Fatalf("cancels = %d, want 2", rt.cancels)
	}
}

func TestMissingArgumentFails(t *testing.T) {
	rt := newFakeRuntime()
	if _, err := Run(`$x = %2`, rt, "only-one"); err == nil {
		t.Fatal("missing %2 should fail")
	}
}

func TestIndexOutOfRangeFails(t *testing.T) {
	rt := newFakeRuntime()
	if _, err := Run("$l = %1\n$x = $l[5]", rt, []Value{"a"}); err == nil {
		t.Fatal("out-of-range index should fail")
	}
}

func TestThresholdRuleRequiresThreshold(t *testing.T) {
	rt := newFakeRuntime()
	if _, err := Run(`on completLoad do log "x" end`, rt); err == nil {
		t.Fatal("profiled rule without threshold should fail")
	}
}

func TestMethodInvokeRateRequiresFromTo(t *testing.T) {
	rt := newFakeRuntime()
	if _, err := Run(`on methodInvokeRate(3) do log "x" end`, rt); err == nil {
		t.Fatal("methodInvokeRate without from/to should fail")
	}
}

func TestEveryControlsInterval(t *testing.T) {
	rt := newFakeRuntime()
	var got time.Duration
	// Use a wrapper runtime capturing the interval.
	wrapped := &intervalCapture{fakeRuntime: rt, interval: &got}
	inst, err := Run(`on completLoad(5) every 123 do log "x" end`, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if got != 123*time.Millisecond {
		t.Fatalf("interval = %v", got)
	}
}

type intervalCapture struct {
	*fakeRuntime
	interval *time.Duration
}

func (c *intervalCapture) SubscribeThreshold(atCore, service string, args []string, threshold float64, interval time.Duration, fn func(string, float64)) (func(), error) {
	*c.interval = interval
	return c.fakeRuntime.SubscribeThreshold(atCore, service, args, threshold, interval, fn)
}

func TestWhenGuardConjunction(t *testing.T) {
	// §4.1's compound policy: co-locate only when the rate is high AND
	// the bandwidth is low. The guard measures at the firing core by
	// default; an `at` clause overrides.
	rt := newFakeRuntime()
	rt.locations["a/#1"] = "north"
	rt.locations["a/#2"] = "south"
	rt.measures = map[string]float64{
		"bandwidth@south": 100, // high bandwidth: guard blocks
	}
	inst, err := Run(`
$comps = %1
on methodInvokeRate(3) from $comps[0] to $comps[1]
  when bandwidth("north") < 50
do
  move $comps[0] to coreOf $comps[1]
end`, rt, []Value{"a/#1", "a/#2"})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	key := "invocationRate(3)@south[a/#1,a/#2]"
	rt.fireThreshold(key, "south", 5)
	if len(rt.movesSnapshot()) != 0 {
		t.Fatalf("guard failed to block: moves = %v", rt.movesSnapshot())
	}
	if inst.Fired() != 0 {
		t.Fatal("guarded-out firing counted as fired")
	}
	// Degrade the bandwidth: now the guard passes.
	rt.mu.Lock()
	rt.measures["bandwidth@south"] = 10
	rt.mu.Unlock()
	rt.fireThreshold(key, "south", 5)
	moves := rt.movesSnapshot()
	if len(moves) != 1 || moves[0] != "a/#1->south" {
		t.Fatalf("guard failed to admit: moves = %v", moves)
	}
}

func TestWhenGuardAtClause(t *testing.T) {
	rt := newFakeRuntime()
	rt.measures = map[string]float64{"completLoad@elsewhere": 2}
	inst, err := Run(`
on shutdown when completLoad() < 5 at elsewhere do
  log "ok"
end`, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rt.fireBuiltin("coreShutdown", "local", "local")
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.logs) != 1 {
		t.Fatalf("logs = %v", rt.logs)
	}
}

func TestWhenGuardParses(t *testing.T) {
	ast, err := Parse(`on methodInvokeRate(3) from $a to $b when bandwidth($x) <= 4.5 do log "y" end`)
	if err != nil {
		t.Fatal(err)
	}
	r := ast.Stmts[0].(*Rule)
	if len(r.Guards) != 1 {
		t.Fatalf("guards = %+v", r.Guards)
	}
	g := r.Guards[0]
	if g.Service != "bandwidth" || g.Op != "<=" || g.Value != 4.5 || len(g.Args) != 1 {
		t.Fatalf("guard = %+v", g)
	}
	// Print/re-parse fixed point.
	if _, err := Parse(ast.String()); err != nil {
		t.Fatalf("printed guard does not re-parse: %v\n%s", err, ast.String())
	}
}

func TestFormatValue(t *testing.T) {
	if FormatValue("x") != "x" {
		t.Error("string formatting")
	}
	if FormatValue(3.5) != "3.5" {
		t.Error("number formatting")
	}
	if FormatValue([]Value{"a", "b"}) != "[a, b]" {
		t.Errorf("list formatting = %q", FormatValue([]Value{"a", "b"}))
	}
}

// ctxFakeRuntime adds the CtxRuntime capability to fakeRuntime, recording
// the deadline each bounded move carried.
type ctxFakeRuntime struct {
	*fakeRuntime
	ctxMoves     []string
	hadDeadlines []bool
	budgets      []time.Duration
}

func (f *ctxFakeRuntime) MoveCompletCtx(ctx context.Context, target, dest string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ctxMoves = append(f.ctxMoves, target+"->"+dest)
	dl, ok := ctx.Deadline()
	f.hadDeadlines = append(f.hadDeadlines, ok)
	if ok {
		f.budgets = append(f.budgets, time.Until(dl))
	}
	return nil
}

func TestTimeoutActionParsesAndRoundtrips(t *testing.T) {
	src := `on shutdown firedby $c do
    timeout(250)
    move app to backup
end`
	ast, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rule := ast.Stmts[0].(*Rule)
	if len(rule.Actions) != 2 {
		t.Fatalf("actions = %d, want 2", len(rule.Actions))
	}
	ta, ok := rule.Actions[0].(*TimeoutAction)
	if !ok {
		t.Fatalf("first action is %T, want *TimeoutAction", rule.Actions[0])
	}
	if ta.Millis != 250 {
		t.Fatalf("timeout = %g ms, want 250", ta.Millis)
	}
	printed := ast.String()
	ast2, err := Parse(printed)
	if err != nil {
		t.Fatalf("printed script does not re-parse: %v\n%s", err, printed)
	}
	if ast2.String() != printed {
		t.Fatalf("not a fixed point:\n%s\n---\n%s", printed, ast2.String())
	}
}

func TestTimeoutParseErrors(t *testing.T) {
	for _, src := range []string{
		`on shutdown do timeout() move a to b end`,
		`on shutdown do timeout(-5) move a to b end`,
		`on shutdown do timeout(0) move a to b end`,
		`on shutdown do timeout move a to b end`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestTimeoutIsReservedActionName(t *testing.T) {
	if err := RegisterAction("timeout", func(Runtime, []Value) error { return nil }); err == nil {
		t.Fatal("registering an extension action named timeout must fail")
	}
}

func TestTimeoutBoundsSubsequentMoves(t *testing.T) {
	rt := &ctxFakeRuntime{fakeRuntime: newFakeRuntime()}
	inst, err := Run(`on shutdown firedby $c do
    move a/#1 to north
    timeout(250)
    move a/#2 to south
end`, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rt.fireBuiltin("coreShutdown", "local", "east")

	rt.mu.Lock()
	defer rt.mu.Unlock()
	// The pre-timeout move takes the unbounded path.
	if len(rt.moves) != 1 || rt.moves[0] != "a/#1->north" {
		t.Fatalf("unbounded moves = %v", rt.moves)
	}
	// The post-timeout move goes through MoveCompletCtx with ~250ms left.
	if len(rt.ctxMoves) != 1 || rt.ctxMoves[0] != "a/#2->south" {
		t.Fatalf("bounded moves = %v", rt.ctxMoves)
	}
	if !rt.hadDeadlines[0] {
		t.Fatal("bounded move carried no deadline")
	}
	if b := rt.budgets[0]; b <= 0 || b > 250*time.Millisecond {
		t.Fatalf("deadline budget = %v, want within (0, 250ms]", b)
	}
}

func TestTimeoutFallsBackWithoutCtxRuntime(t *testing.T) {
	// A runtime without the CtxRuntime capability still executes the move,
	// just unbounded.
	rt := newFakeRuntime()
	inst, err := Run(`on shutdown do
    timeout(100)
    move a/#1 to north
end`, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rt.fireBuiltin("coreShutdown", "local", "east")
	if moves := rt.movesSnapshot(); len(moves) != 1 || moves[0] != "a/#1->north" {
		t.Fatalf("moves = %v", moves)
	}
}

func TestTimeoutResetsPerFiring(t *testing.T) {
	rt := &ctxFakeRuntime{fakeRuntime: newFakeRuntime()}
	inst, err := Run(`on shutdown do
    timeout(50)
    move a/#1 to north
end`, rt)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rt.fireBuiltin("coreShutdown", "local", "east")
	rt.fireBuiltin("coreShutdown", "local", "east")
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.ctxMoves) != 2 {
		t.Fatalf("bounded moves = %v", rt.ctxMoves)
	}
	for i, had := range rt.hadDeadlines {
		if !had {
			t.Fatalf("firing %d: move carried no deadline", i)
		}
	}
}
