package script

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShippedScriptsParse keeps the example .fgs files in examples/scripts
// valid: every file must parse and survive a print/re-parse roundtrip.
func TestShippedScriptsParse(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scripts")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("examples/scripts missing: %v", err)
	}
	found := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".fgs") {
			continue
		}
		found++
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		ast, err := Parse(string(src))
		if err != nil {
			t.Errorf("%s does not parse: %v", e.Name(), err)
			continue
		}
		if len(ast.Stmts) == 0 {
			t.Errorf("%s parses to an empty script", e.Name())
		}
		if _, err := Parse(ast.String()); err != nil {
			t.Errorf("%s: printed form does not re-parse: %v", e.Name(), err)
		}
	}
	if found < 3 {
		t.Fatalf("only %d example scripts found, want >= 3", found)
	}
}
