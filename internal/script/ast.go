package script

import (
	"fmt"
	"strings"
)

// Script is a parsed layout script: assignments followed by rules, in source
// order.
type Script struct {
	Stmts []Stmt
}

// Stmt is a top-level statement.
type Stmt interface {
	stmt()
	String() string
}

// Assign binds a script variable: `$x = expr`.
type Assign struct {
	Line int
	Var  string
	Val  Expr
}

func (*Assign) stmt() {}

// String renders the assignment in source syntax.
func (a *Assign) String() string { return fmt.Sprintf("$%s = %s", a.Var, a.Val) }

// Rule is an event–action pair:
//
//	on <event>[(threshold)] [firedby $var] [from expr to expr]
//	   [listenAt expr] [every number] do <actions> end
type Rule struct {
	Line int
	// Event is the event name ("shutdown", "methodInvokeRate", or any
	// profiling service name).
	Event string
	// Threshold is the parenthesized trigger level; nil for built-in
	// events.
	Threshold *float64
	// FiredBy names the variable bound to the firing core in the action
	// scope ("" if absent).
	FiredBy string
	// From/To select the complet reference a profiled measure applies to.
	From, To Expr
	// ListenAt lists the cores to subscribe at (nil = the local core).
	ListenAt Expr
	// EveryMillis overrides the measurement interval (0 = default).
	EveryMillis float64
	// Guards are additional conditions evaluated (as instant profiling
	// measurements) when the event fires; all must hold for the actions
	// to run. They express §4.1's compound policies, e.g. "co-locate only
	// if the invocation rate is high AND the bandwidth is low".
	Guards []Guard
	// Actions run, in order, each time the event fires.
	Actions []Action
}

// Guard is one `when service(args...) op number` clause.
type Guard struct {
	Line int
	// Service is the profiling service to measure.
	Service string
	// Args parameterize the service.
	Args []Expr
	// At names the core to measure at (nil = the firing core).
	At Expr
	// Op is one of "<", "<=", ">", ">=".
	Op string
	// Value is the comparison bound.
	Value float64
}

// String renders the guard in source syntax.
func (g Guard) String() string {
	args := make([]string, len(g.Args))
	for i, a := range g.Args {
		args[i] = a.String()
	}
	s := fmt.Sprintf("when %s(%s) %s %g", g.Service, strings.Join(args, ", "), g.Op, g.Value)
	if g.At != nil {
		s += " at " + g.At.String()
	}
	return s
}

func (*Rule) stmt() {}

// String renders the rule in source syntax.
func (r *Rule) String() string {
	var sb strings.Builder
	sb.WriteString("on " + r.Event)
	if r.Threshold != nil {
		fmt.Fprintf(&sb, "(%g)", *r.Threshold)
	}
	if r.FiredBy != "" {
		sb.WriteString(" firedby $" + r.FiredBy)
	}
	if r.From != nil {
		fmt.Fprintf(&sb, " from %s to %s", r.From, r.To)
	}
	if r.ListenAt != nil {
		fmt.Fprintf(&sb, " listenAt %s", r.ListenAt)
	}
	if r.EveryMillis > 0 {
		fmt.Fprintf(&sb, " every %g", r.EveryMillis)
	}
	for _, g := range r.Guards {
		sb.WriteString(" " + g.String())
	}
	sb.WriteString(" do\n")
	for _, a := range r.Actions {
		sb.WriteString("    " + a.String() + "\n")
	}
	sb.WriteString("end")
	return sb.String()
}

// Action is one rule-body command.
type Action interface {
	action()
	String() string
}

// MoveAction relocates complets: `move <target> to <dest>`.
type MoveAction struct {
	Line int
	// What selects the complets: an expression naming one complet, or
	// CompletsIn for all complets of a core.
	What Expr
	// AllIn is set when the target is `completsIn <core>`.
	AllIn bool
	// Dest selects the destination core: an expression, or CoreOf.
	Dest Expr
	// DestCoreOf is set when the destination is `coreOf <complet>`.
	DestCoreOf bool
}

func (*MoveAction) action() {}

// String renders the action in source syntax.
func (m *MoveAction) String() string {
	what := m.What.String()
	if m.AllIn {
		what = "completsIn " + what
	}
	dest := m.Dest.String()
	if m.DestCoreOf {
		dest = "coreOf " + dest
	}
	return fmt.Sprintf("move %s to %s", what, dest)
}

// TimeoutAction bounds the remaining actions of the current rule firing:
// `timeout(250)` gives each subsequent move in this firing at most 250 ms
// before it is cancelled. The budget applies per action, not cumulatively,
// and resets at the next firing. Runtimes that do not implement CtxRuntime
// ignore it.
type TimeoutAction struct {
	Line   int
	Millis float64
}

func (*TimeoutAction) action() {}

// String renders the action in source syntax.
func (t *TimeoutAction) String() string { return fmt.Sprintf("timeout(%g)", t.Millis) }

// LogAction prints a value through the runtime: `log expr`.
type LogAction struct {
	Line int
	Val  Expr
}

func (*LogAction) action() {}

// String renders the action in source syntax.
func (l *LogAction) String() string { return "log " + l.Val.String() }

// CallAction invokes a user-registered extension action: `name(arg, ...)`.
type CallAction struct {
	Line int
	Name string
	Args []Expr
}

func (*CallAction) action() {}

// String renders the action in source syntax.
func (c *CallAction) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(args, ", "))
}

// Expr is an evaluatable expression.
type Expr interface {
	expr()
	String() string
}

// VarRef reads a variable, optionally indexing into a list: `$x` / `$x[0]`.
type VarRef struct {
	Line  int
	Name  string
	Index Expr // nil when not indexed
}

func (*VarRef) expr() {}

// String renders the expression in source syntax.
func (v *VarRef) String() string {
	if v.Index != nil {
		return fmt.Sprintf("$%s[%s]", v.Name, v.Index)
	}
	return "$" + v.Name
}

// ArgRef reads a positional script argument: `%1` (1-based).
type ArgRef struct {
	Line int
	N    int
}

func (*ArgRef) expr() {}

// String renders the expression in source syntax.
func (a *ArgRef) String() string { return fmt.Sprintf("%%%d", a.N) }

// StringLit is a quoted or bare-word string.
type StringLit struct {
	Line int
	Val  string
}

func (*StringLit) expr() {}

// String renders the expression in source syntax.
func (s *StringLit) String() string { return fmt.Sprintf("%q", s.Val) }

// NumberLit is a numeric literal.
type NumberLit struct {
	Line int
	Val  float64
}

func (*NumberLit) expr() {}

// String renders the expression in source syntax.
func (n *NumberLit) String() string { return fmt.Sprintf("%g", n.Val) }

// String renders the script in source syntax (parse(print(ast)) == ast).
func (s *Script) String() string {
	parts := make([]string, len(s.Stmts))
	for i, st := range s.Stmts {
		parts[i] = st.String()
	}
	return strings.Join(parts, "\n")
}
