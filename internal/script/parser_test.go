package script

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex(`$x = %1 # comment
on shutdown firedby $core do move completsIn $core to "target" end`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokKind{
		TokVar, TokEquals, TokArg,
		TokIdent, TokIdent, TokIdent, TokVar, TokIdent,
		TokIdent, TokIdent, TokVar, TokIdent, TokString, TokIdent,
		TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (%q)", i, kinds[i], want[i], toks[i].Text)
		}
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := lex("$a = 1\n\n$b = 2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[3].Line != 3 {
		t.Fatalf("lines: %d, %d", toks[0].Line, toks[3].Line)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex(`$s = "a\nb\"c"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Text != "a\nb\"c" {
		t.Fatalf("string = %q", toks[2].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`$`, `%x`, `"unterminated`, "\"multi\nline\"", `@`,
	} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q): expected error", src)
		}
	}
}

// paperScript is the verbatim example from §4.3 of the paper.
const paperScript = `
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
`

func TestParsePaperScript(t *testing.T) {
	ast, err := Parse(paperScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(ast.Stmts) != 5 {
		t.Fatalf("%d statements, want 5", len(ast.Stmts))
	}
	r1, ok := ast.Stmts[3].(*Rule)
	if !ok {
		t.Fatalf("stmt 3 is %T", ast.Stmts[3])
	}
	if r1.Event != "shutdown" || r1.FiredBy != "core" || r1.ListenAt == nil || r1.Threshold != nil {
		t.Fatalf("reliability rule = %+v", r1)
	}
	mv, ok := r1.Actions[0].(*MoveAction)
	if !ok || !mv.AllIn || mv.DestCoreOf {
		t.Fatalf("reliability action = %+v", r1.Actions[0])
	}
	r2, ok := ast.Stmts[4].(*Rule)
	if !ok {
		t.Fatalf("stmt 4 is %T", ast.Stmts[4])
	}
	if r2.Event != "methodInvokeRate" || r2.Threshold == nil || *r2.Threshold != 3 {
		t.Fatalf("performance rule = %+v", r2)
	}
	if r2.From == nil || r2.To == nil {
		t.Fatal("performance rule lost from/to")
	}
	mv2 := r2.Actions[0].(*MoveAction)
	if mv2.AllIn || !mv2.DestCoreOf {
		t.Fatalf("performance action = %+v", mv2)
	}
}

func TestParsePrintRoundtrip(t *testing.T) {
	// parse(print(parse(src))) must equal parse(src) structurally; we
	// compare printed forms (a fixed point after one roundtrip).
	ast1, err := Parse(paperScript)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast1.String()
	ast2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse printed script: %v\n%s", err, printed)
	}
	if ast2.String() != printed {
		t.Fatalf("not a fixed point:\n--- first print\n%s\n--- second print\n%s", printed, ast2.String())
	}
}

func TestParseQualifiersAnyOrder(t *testing.T) {
	for _, src := range []string{
		`on shutdown listenAt $l firedby $c do log $c end`,
		`on shutdown firedby $c listenAt $l do log $c end`,
	} {
		ast, err := Parse("$l = core-a\n" + src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		r := ast.Stmts[1].(*Rule)
		if r.FiredBy != "c" || r.ListenAt == nil {
			t.Fatalf("%q: %+v", src, r)
		}
	}
}

func TestParseEveryQualifier(t *testing.T) {
	ast, err := Parse(`on completLoad(5) every 100 do log "high" end`)
	if err != nil {
		t.Fatal(err)
	}
	r := ast.Stmts[0].(*Rule)
	if r.EveryMillis != 100 {
		t.Fatalf("EveryMillis = %v", r.EveryMillis)
	}
}

func TestParseExtensionAction(t *testing.T) {
	ast, err := Parse(`on shutdown do notify("ops", $core, 3) end`)
	if err != nil {
		t.Fatal(err)
	}
	r := ast.Stmts[0].(*Rule)
	call, ok := r.Actions[0].(*CallAction)
	if !ok || call.Name != "notify" || len(call.Args) != 3 {
		t.Fatalf("action = %+v", r.Actions[0])
	}
}

func TestParseMultipleActions(t *testing.T) {
	ast, err := Parse(`on shutdown do
		log "evacuating"
		move completsIn $core to safe
		log "done"
	end`)
	if err != nil {
		t.Fatal(err)
	}
	r := ast.Stmts[0].(*Rule)
	if len(r.Actions) != 3 {
		t.Fatalf("%d actions", len(r.Actions))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                   // fine actually: empty script -> below filters
		`on`,                                 // missing event
		`on shutdown`,                        // missing do
		`on shutdown do`,                     // missing end
		`on shutdown do end`,                 // no actions
		`$x`,                                 // missing =
		`$x =`,                               // missing expr
		`on foo(abc) do log 1 end`,           // bad threshold
		`on shutdown bogusqual do log 1 end`, // unknown qualifier
		`move $x to y`,                       // action outside rule
		`on shutdown do move $x end`,         // move without to
	}
	for _, src := range cases[1:] {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
	if _, err := Parse(""); err != nil {
		t.Errorf("empty script should parse: %v", err)
	}
}

func TestParseErrorsAreSyntaxErrors(t *testing.T) {
	_, err := Parse("on shutdown\ndo")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if se.Line < 1 {
		t.Fatalf("line = %d", se.Line)
	}
	if !strings.Contains(se.Error(), "line") {
		t.Fatalf("message = %q", se.Error())
	}
}

// Property: any script assembled from printable assignments parses and its
// printed form is a fixed point.
func TestParseAssignProperty(t *testing.T) {
	prop := func(names []string, vals []uint8) bool {
		var sb strings.Builder
		n := len(names)
		if len(vals) < n {
			n = len(vals)
		}
		count := 0
		for i := 0; i < n; i++ {
			name := sanitizeIdent(names[i])
			if name == "" {
				continue
			}
			sb.WriteString("$" + name + " = " + FormatValue(float64(vals[i])) + "\n")
			count++
		}
		ast, err := Parse(sb.String())
		if err != nil {
			return false
		}
		if len(ast.Stmts) != count {
			return false
		}
		_, err = Parse(ast.String())
		return err == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func sanitizeIdent(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
