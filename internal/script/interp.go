package script

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Value is a script runtime value: string, float64, []Value, or nil.
type Value any

// Runtime is the surface the interpreter drives. It is implemented over a
// live core by CoreRuntime; tests may substitute fakes.
type Runtime interface {
	// LocalCore names the core the script runs on.
	LocalCore() string
	// SubscribeBuiltin registers for a built-in event (e.g. coreShutdown)
	// at each of the given cores (empty = local core). fn receives the
	// firing core. It returns a cancel function.
	SubscribeBuiltin(event string, atCores []string, fn func(source string)) (func(), error)
	// SubscribeThreshold registers for a profiled measure crossing a
	// threshold. The measure is identified by service + args; the
	// subscription is placed at the named core ("" = local). fn receives
	// the firing core and the measured value.
	SubscribeThreshold(atCore, service string, args []string, threshold float64, interval time.Duration, fn func(source string, value float64)) (func(), error)
	// MoveComplet relocates the complet (named by ID string or logical
	// name) to the destination core.
	MoveComplet(target, dest string) error
	// CompletsIn lists the complet IDs hosted by a core.
	CompletsIn(core string) ([]string, error)
	// CoreOf resolves the core currently hosting a complet.
	CoreOf(target string) (string, error)
	// Measure takes one instant profiling measurement at the named core
	// ("" = local), for `when` guard evaluation.
	Measure(atCore, service string, args []string) (float64, error)
	// Logf receives log-action output and interpreter diagnostics.
	Logf(format string, args ...any)
}

// CtxRuntime is an optional capability interface: runtimes that support
// deadline-bounded relocation implement it alongside Runtime. When a rule
// firing executes a `timeout(ms)` action, subsequent moves in that firing go
// through MoveCompletCtx with a context carrying the deadline. Runtimes
// without the capability fall back to the unbounded MoveComplet, so existing
// Runtime implementations keep working unchanged.
type CtxRuntime interface {
	// MoveCompletCtx relocates the complet like Runtime.MoveComplet, but
	// gives up (and reports why) once ctx ends.
	MoveCompletCtx(ctx context.Context, target, dest string) error
}

// ActionFunc is a user-registered extension action (§4.3: "the action part
// can be extended with any user-defined class").
type ActionFunc func(rt Runtime, args []Value) error

var actionRegistry = struct {
	sync.RWMutex
	m map[string]ActionFunc
}{m: make(map[string]ActionFunc)}

// RegisterAction registers an extension action under the given name,
// callable from scripts as name(args...). Built-in action names are
// reserved.
func RegisterAction(name string, fn ActionFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("script: action name and func required")
	}
	switch name {
	case kwMove, kwLog, kwOn, kwEnd, kwDo, kwTimeout:
		return fmt.Errorf("script: %q is reserved", name)
	}
	actionRegistry.Lock()
	defer actionRegistry.Unlock()
	if _, dup := actionRegistry.m[name]; dup {
		return fmt.Errorf("script: action %q already registered", name)
	}
	actionRegistry.m[name] = fn
	return nil
}

func lookupAction(name string) (ActionFunc, bool) {
	actionRegistry.RLock()
	defer actionRegistry.RUnlock()
	fn, ok := actionRegistry.m[name]
	return fn, ok
}

// EventSourceFunc is a registered extension event source: it arms one rule
// subscription against a runtime-local feed (the alert engine registers
// "alert" this way) and returns the cancel func. Mirrors RegisterAction on
// the event side of a rule, so subsystems above the interpreter can add `on
// <event>` triggers without the interpreter importing them.
type EventSourceFunc func(rt Runtime, atCores []string, fire func(source string)) (func(), error)

var eventSourceRegistry = struct {
	sync.RWMutex
	m map[string]EventSourceFunc
}{m: make(map[string]EventSourceFunc)}

// RegisterEventSource registers an extension event source under the given
// event name, usable in scripts as `on name(...)`. Built-in event names are
// reserved.
func RegisterEventSource(name string, fn EventSourceFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("script: event source name and func required")
	}
	if isBuiltinRuleEvent(name) {
		return fmt.Errorf("script: event %q is reserved", name)
	}
	eventSourceRegistry.Lock()
	defer eventSourceRegistry.Unlock()
	if _, dup := eventSourceRegistry.m[name]; dup {
		return fmt.Errorf("script: event source %q already registered", name)
	}
	eventSourceRegistry.m[name] = fn
	return nil
}

func lookupEventSource(name string) (EventSourceFunc, bool) {
	eventSourceRegistry.RLock()
	defer eventSourceRegistry.RUnlock()
	fn, ok := eventSourceRegistry.m[name]
	return fn, ok
}

// defaultInterval is the measurement period of profiled rules without an
// `every` qualifier.
const defaultInterval = 250 * time.Millisecond

// Instance is a running script: its rules stay armed until Close.
type Instance struct {
	rt      Runtime
	mu      sync.Mutex
	cancels []func()
	closed  bool
	// FiredCount counts rule firings (test/observability support).
	fired int
}

// Run parses and activates a script against the runtime with the given
// positional arguments (%1 = args[0], ...). The returned Instance keeps the
// rules armed until Close.
func Run(src string, rt Runtime, args ...Value) (*Instance, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return RunAST(ast, rt, args...)
}

// RunAST activates a parsed script.
func RunAST(ast *Script, rt Runtime, args ...Value) (*Instance, error) {
	if rt == nil {
		return nil, fmt.Errorf("script: nil runtime")
	}
	inst := &Instance{rt: rt}
	env := &environment{rt: rt, args: args, vars: map[string]Value{}}

	for _, st := range ast.Stmts {
		switch s := st.(type) {
		case *Assign:
			v, err := env.eval(s.Val)
			if err != nil {
				inst.Close()
				return nil, err
			}
			env.vars[s.Var] = v
		case *Rule:
			if err := inst.armRule(env, s); err != nil {
				inst.Close()
				return nil, err
			}
		}
	}
	return inst, nil
}

// Close cancels every armed rule.
func (i *Instance) Close() {
	i.mu.Lock()
	cancels := i.cancels
	i.cancels = nil
	i.closed = true
	i.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Fired returns how many times any rule of this instance has fired.
func (i *Instance) Fired() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired
}

func (i *Instance) addCancel(c func()) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.closed {
		c()
		return
	}
	i.cancels = append(i.cancels, c)
}

// environment holds script variables during evaluation. Rule firings get a
// child scope for firedby bindings.
type environment struct {
	rt     Runtime
	args   []Value
	vars   map[string]Value
	parent *environment
}

func (e *environment) child() *environment {
	return &environment{rt: e.rt, args: e.args, vars: map[string]Value{}, parent: e}
}

func (e *environment) get(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *environment) eval(x Expr) (Value, error) {
	switch v := x.(type) {
	case *StringLit:
		return v.Val, nil
	case *NumberLit:
		return v.Val, nil
	case *ArgRef:
		if v.N > len(e.args) {
			return nil, &SyntaxError{v.Line, fmt.Sprintf("script argument %%%d not supplied (%d given)", v.N, len(e.args))}
		}
		return e.args[v.N-1], nil
	case *VarRef:
		val, ok := e.get(v.Name)
		if !ok {
			return nil, &SyntaxError{v.Line, fmt.Sprintf("undefined variable $%s", v.Name)}
		}
		if v.Index == nil {
			return val, nil
		}
		idxVal, err := e.eval(v.Index)
		if err != nil {
			return nil, err
		}
		idx, err := toIndex(idxVal)
		if err != nil {
			return nil, &SyntaxError{v.Line, fmt.Sprintf("$%s[...]: %v", v.Name, err)}
		}
		list, err := toList(val)
		if err != nil {
			return nil, &SyntaxError{v.Line, fmt.Sprintf("$%s is not a list: %v", v.Name, err)}
		}
		if idx < 0 || idx >= len(list) {
			return nil, &SyntaxError{v.Line, fmt.Sprintf("$%s[%d] out of range (len %d)", v.Name, idx, len(list))}
		}
		return list[idx], nil
	default:
		return nil, fmt.Errorf("script: unknown expression %T", x)
	}
}

// evalString evaluates an expression to a string value.
func (e *environment) evalString(x Expr) (string, error) {
	v, err := e.eval(x)
	if err != nil {
		return "", err
	}
	return toString(v)
}

func toString(v Value) (string, error) {
	switch s := v.(type) {
	case string:
		return s, nil
	case float64:
		return strconv.FormatFloat(s, 'g', -1, 64), nil
	case fmt.Stringer:
		return s.String(), nil
	default:
		return "", fmt.Errorf("value %v (%T) is not a string", v, v)
	}
}

func toIndex(v Value) (int, error) {
	switch n := v.(type) {
	case float64:
		return int(n), nil
	case int:
		return n, nil
	case string:
		return strconv.Atoi(n)
	default:
		return 0, fmt.Errorf("value %v (%T) is not an index", v, v)
	}
}

// toList adapts []Value, []string and []any to a value list.
func toList(v Value) ([]Value, error) {
	switch l := v.(type) {
	case []Value:
		return l, nil
	case []string:
		out := make([]Value, len(l))
		for i, s := range l {
			out[i] = s
		}
		return out, nil
	default:
		return nil, fmt.Errorf("value %v (%T) is not a list", v, v)
	}
}

// toStringList evaluates an expression to a list of strings; a single string
// becomes a one-element list.
func (e *environment) toStringList(x Expr) ([]string, error) {
	v, err := e.eval(x)
	if err != nil {
		return nil, err
	}
	if s, ok := v.(string); ok {
		return []string{s}, nil
	}
	list, err := toList(v)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(list))
	for i, item := range list {
		s, err := toString(item)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// armRule turns one rule into live subscriptions.
func (i *Instance) armRule(env *environment, r *Rule) error {
	interval := defaultInterval
	if r.EveryMillis > 0 {
		interval = time.Duration(r.EveryMillis * float64(time.Millisecond))
	}

	fire := func(source string, value float64) {
		scope := env.child()
		if r.FiredBy != "" {
			scope.vars[r.FiredBy] = source
		}
		// Compound policies (§4.1): every `when` guard must hold.
		for _, g := range r.Guards {
			ok, err := i.evalGuard(scope, g, source)
			if err != nil {
				env.rt.Logf("script: rule %q (line %d) guard: %v", r.Event, r.Line, err)
				return
			}
			if !ok {
				return
			}
		}
		i.mu.Lock()
		i.fired++
		i.mu.Unlock()
		// Action budget is per firing: a timeout(ms) action bounds the
		// moves that follow it in this firing only.
		st := &fireState{}
		for _, a := range r.Actions {
			if err := i.execAction(scope, a, st); err != nil {
				env.rt.Logf("script: rule %q (line %d): %v", r.Event, r.Line, err)
			}
		}
	}

	if isBuiltinRuleEvent(r.Event) {
		var atCores []string
		if r.ListenAt != nil {
			list, err := env.toStringList(r.ListenAt)
			if err != nil {
				return err
			}
			atCores = list
		}
		cancel, err := env.rt.SubscribeBuiltin(canonicalEvent(r.Event), atCores, func(source string) {
			fire(source, 0)
		})
		if err != nil {
			return err
		}
		i.addCancel(cancel)
		return nil
	}

	// Profiled rule.
	if r.Threshold == nil {
		return &SyntaxError{r.Line, fmt.Sprintf("profiled event %q needs a threshold, e.g. %s(3)", r.Event, r.Event)}
	}
	service, args, atCore, err := i.resolveMeasure(env, r)
	if err != nil {
		return err
	}
	cancel, err := env.rt.SubscribeThreshold(atCore, service, args, *r.Threshold, interval, fire)
	if err != nil {
		return err
	}
	i.addCancel(cancel)
	return nil
}

// isBuiltinRuleEvent recognizes event names that map to built-in runtime
// events rather than profiled measures.
func isBuiltinRuleEvent(event string) bool {
	switch event {
	case "shutdown", "coreShutdown", "completArrived", "completDeparted",
		"unreachable", "coreUnreachable":
		return true
	}
	_, ok := lookupEventSource(event)
	return ok
}

// canonicalEvent maps script event names to runtime event names.
func canonicalEvent(event string) string {
	switch event {
	case "shutdown":
		return "coreShutdown"
	case "unreachable":
		return "coreUnreachable"
	default:
		return event
	}
}

// resolveMeasure maps a profiled rule to (service, args, subscription core).
// methodInvokeRate from A to B measures invocationRate(A, B) at the core
// hosting B; bare service names measure locally with listenAt overriding the
// subscription core.
func (i *Instance) resolveMeasure(env *environment, r *Rule) (service string, args []string, atCore string, err error) {
	switch r.Event {
	case "methodInvokeRate", "invocationRate":
		if r.From == nil || r.To == nil {
			return "", nil, "", &SyntaxError{r.Line, r.Event + " needs `from <complet> to <complet>`"}
		}
		from, err := env.evalString(r.From)
		if err != nil {
			return "", nil, "", err
		}
		to, err := env.evalString(r.To)
		if err != nil {
			return "", nil, "", err
		}
		// Subscribe where the target complet lives: that core observes
		// the invocations.
		atCore, err = env.rt.CoreOf(to)
		if err != nil {
			return "", nil, "", fmt.Errorf("script: locate %q: %w", to, err)
		}
		return "invocationRate", []string{from, to}, atCore, nil
	default:
		var svcArgs []string
		if r.From != nil {
			from, err := env.evalString(r.From)
			if err != nil {
				return "", nil, "", err
			}
			to, err := env.evalString(r.To)
			if err != nil {
				return "", nil, "", err
			}
			svcArgs = []string{from, to}
		}
		at := ""
		if r.ListenAt != nil {
			cores, err := env.toStringList(r.ListenAt)
			if err != nil {
				return "", nil, "", err
			}
			if len(cores) != 1 {
				return "", nil, "", &SyntaxError{r.Line, "profiled rules subscribe at exactly one core"}
			}
			at = cores[0]
		}
		return r.Event, svcArgs, at, nil
	}
}

// evalGuard measures one `when` clause and compares against its bound. The
// measurement happens at the guard's `at` core, defaulting to the core that
// fired the event.
func (i *Instance) evalGuard(env *environment, g Guard, source string) (bool, error) {
	args := make([]string, len(g.Args))
	for idx, x := range g.Args {
		s, err := env.evalString(x)
		if err != nil {
			return false, err
		}
		args[idx] = s
	}
	at := source
	if g.At != nil {
		s, err := env.evalString(g.At)
		if err != nil {
			return false, err
		}
		at = s
	}
	v, err := env.rt.Measure(at, g.Service, args)
	if err != nil {
		return false, fmt.Errorf("measure %s at %s: %w", g.Service, at, err)
	}
	switch g.Op {
	case "<":
		return v < g.Value, nil
	case "<=":
		return v <= g.Value, nil
	case ">":
		return v > g.Value, nil
	case ">=":
		return v >= g.Value, nil
	default:
		return false, fmt.Errorf("unknown guard operator %q", g.Op)
	}
}

// fireState carries per-firing action state: the move deadline set by a
// preceding timeout(ms) action (0 = unbounded).
type fireState struct {
	timeout time.Duration
}

// moveWith runs one relocation, bounded by the firing's timeout when the
// runtime supports deadline-aware moves.
func (st *fireState) moveWith(rt Runtime, target, dest string) error {
	if st.timeout > 0 {
		if cr, ok := rt.(CtxRuntime); ok {
			ctx, cancel := context.WithTimeout(context.Background(), st.timeout)
			defer cancel()
			return cr.MoveCompletCtx(ctx, target, dest)
		}
	}
	return rt.MoveComplet(target, dest)
}

func (i *Instance) execAction(env *environment, a Action, st *fireState) error {
	switch act := a.(type) {
	case *LogAction:
		v, err := env.eval(act.Val)
		if err != nil {
			return err
		}
		env.rt.Logf("script: %v", v)
		return nil
	case *TimeoutAction:
		st.timeout = time.Duration(act.Millis * float64(time.Millisecond))
		return nil
	case *MoveAction:
		dest, err := env.evalString(act.Dest)
		if err != nil {
			return err
		}
		if act.DestCoreOf {
			dest, err = env.rt.CoreOf(dest)
			if err != nil {
				return err
			}
		}
		if act.AllIn {
			coreName, err := env.evalString(act.What)
			if err != nil {
				return err
			}
			targets, err := env.rt.CompletsIn(coreName)
			if err != nil {
				return err
			}
			var firstErr error
			for _, t := range targets {
				if err := st.moveWith(env.rt, t, dest); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			return firstErr
		}
		target, err := env.evalString(act.What)
		if err != nil {
			return err
		}
		return st.moveWith(env.rt, target, dest)
	case *CallAction:
		fn, ok := lookupAction(act.Name)
		if !ok {
			return fmt.Errorf("script: unknown action %q", act.Name)
		}
		args := make([]Value, len(act.Args))
		for idx, x := range act.Args {
			v, err := env.eval(x)
			if err != nil {
				return err
			}
			args[idx] = v
		}
		return fn(env.rt, args)
	default:
		return fmt.Errorf("script: unknown action %T", a)
	}
}

// FormatValue renders a script value for logs.
func FormatValue(v Value) string {
	if s, err := toString(v); err == nil {
		return s
	}
	if l, err := toList(v); err == nil {
		parts := make([]string, len(l))
		for i, item := range l {
			parts[i] = FormatValue(item)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	return fmt.Sprint(v)
}
