package shell

import (
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"fargo/internal/alert"
	"fargo/internal/core"
	"fargo/internal/demo"
	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

func testDeployment(t *testing.T, names ...string) map[string]*core.Core {
	t.Helper()
	net := netsim.NewNetwork(5)
	cores := make(map[string]*core.Core, len(names))
	for _, name := range names {
		tr, err := transport.NewSim(net, ids.CoreID(name))
		if err != nil {
			t.Fatal(err)
		}
		reg := registry.New()
		if err := demo.Register(reg); err != nil {
			t.Fatal(err)
		}
		c, err := core.New(tr, reg, core.Options{RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		cores[name] = c
	}
	t.Cleanup(func() {
		for _, c := range cores {
			_ = c.Shutdown(0)
		}
		net.Close()
	})
	return cores
}

// execLines runs commands, returning accumulated output.
func execLines(t *testing.T, s *Shell, lines ...string) string {
	t.Helper()
	for _, line := range lines {
		if err := s.Exec(line); err != nil {
			t.Fatalf("exec %q: %v", line, err)
		}
	}
	return ""
}

// syncBuffer is a goroutine-safe output sink: watch listeners write from
// event-delivery goroutines while tests read.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newShell(t *testing.T, c *core.Core) (*Shell, *syncBuffer) {
	t.Helper()
	var out syncBuffer
	s, err := New(c, &out)
	if err != nil {
		t.Fatal(err)
	}
	return s, &out
}

func TestShellLifecycleCommands(t *testing.T) {
	cores := testDeployment(t, "admin", "worker")
	s, out := newShell(t, cores["admin"])

	execLines(t, s,
		"help",
		"new worker Message hello",
		"info worker",
	)
	text := out.String()
	for _, want := range []string{"commands:", "created worker/#1 (Message) at worker", "core worker: 1 complet(s)"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestShellInvokeMoveWhere(t *testing.T) {
	cores := testDeployment(t, "admin", "worker", "other")
	s, out := newShell(t, cores["admin"])

	execLines(t, s,
		"new worker Message greetings",
		"invoke worker/#1 Print",
		"move worker/#1 other",
		"where worker/#1",
		"invoke worker/#1 Print",
	)
	text := out.String()
	if !strings.Contains(text, "-> [greetings]") {
		t.Errorf("invoke output missing:\n%s", text)
	}
	if !strings.Contains(text, "moved worker/#1 to other") {
		t.Errorf("move output missing:\n%s", text)
	}
	if !strings.Contains(text, "worker/#1 is at other") {
		t.Errorf("where output missing:\n%s", text)
	}
}

func TestShellNamingAndLookup(t *testing.T) {
	cores := testDeployment(t, "admin", "worker")
	s, out := newShell(t, cores["admin"])
	execLines(t, s,
		"new worker Message x",
		"name worker svc worker/#1",
		"lookup worker svc",
		"lookup worker missing",
	)
	text := out.String()
	if !strings.Contains(text, `svc -> worker/#1 (Message)`) {
		t.Errorf("lookup output missing:\n%s", text)
	}
	if !strings.Contains(text, `no binding for "missing"`) {
		t.Errorf("missing-lookup output missing:\n%s", text)
	}
}

func TestShellSetref(t *testing.T) {
	cores := testDeployment(t, "admin", "worker")
	s, out := newShell(t, cores["admin"])
	execLines(t, s,
		"new worker Hub",
		"new worker Counter",
		"setref worker/#1 worker/#2 pull",
		"invoke worker/#1 Targets",
	)
	text := out.String()
	if !strings.Contains(text, "attached worker/#2 to worker/#1 as pull") {
		t.Errorf("setref output missing:\n%s", text)
	}
	if !strings.Contains(text, "worker/#2") {
		t.Errorf("targets output missing:\n%s", text)
	}
}

func TestShellProfile(t *testing.T) {
	cores := testDeployment(t, "admin", "worker")
	s, out := newShell(t, cores["admin"])
	execLines(t, s,
		"new worker Message x",
		"profile worker completLoad",
	)
	if !strings.Contains(out.String(), "completLoad() = 1") {
		t.Errorf("profile output:\n%s", out.String())
	}
}

func TestShellStatsAndTrace(t *testing.T) {
	cores := testDeployment(t, "admin", "worker")
	for _, c := range cores {
		c.Tracer().SetSampleRate(1)
	}
	s, out := newShell(t, cores["admin"])
	execLines(t, s,
		"new worker Message traced",
		"invoke worker/#1 Print",
		"stats admin",
		"stats worker",
		"trace admin",
	)
	text := out.String()
	for _, want := range []string{
		"invoke_forwarded_total", // admin routed the invocation out
		"invoke_local_total",     // worker executed it
		"invoke_latency_ns",
		"invoke worker/#1.Print", // the trace listing names the root by ID
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	// The listing's first column is the trace ID; the span-tree form must
	// merge admin's root with worker's serve/exec spans.
	var id string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "invoke worker/#1.Print") {
			id = strings.Fields(line)[0]
			break
		}
	}
	if id == "" {
		t.Fatalf("no trace listing line found:\n%s", text)
	}
	s2, out2 := newShell(t, cores["admin"])
	execLines(t, s2, "trace admin "+id+" worker")
	tree := out2.String()
	for _, want := range []string{"invoke worker/#1.Print", "serve invoke Print", "exec Message.Print"} {
		if !strings.Contains(tree, want) {
			t.Errorf("span tree missing %q:\n%s", want, tree)
		}
	}
}

func TestShellHealthAndFlight(t *testing.T) {
	cores := testDeployment(t, "admin", "worker", "other")
	s, out := newShell(t, cores["admin"])
	execLines(t, s,
		"new worker Message hi",
		"move worker/#1 other",
		"health worker",
		"recovery worker",
		"flight worker",
		"flight worker 1",
	)
	text := out.String()
	for _, want := range []string{
		"core worker: live=ok ready=ok",
		"core worker: journal=off pending-moves=0",
		"event(s) recorded",
		"move", // the forced move must appear in worker's flight ring
		"peer=other",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	// Bad arguments are reported, not executed.
	for _, line := range []string{"health", "recovery", "flight", "flight worker -1", "flight worker x"} {
		if err := s.Exec(line); err == nil {
			t.Errorf("Exec(%q): expected error", line)
		}
	}
}

func TestShellArgParsing(t *testing.T) {
	args := ParseArgs([]string{"42", "3.5", "true", "false", `"quoted"`, "bare"})
	if args[0] != 42 || args[1] != 3.5 || args[2] != true || args[3] != false ||
		args[4] != "quoted" || args[5] != "bare" {
		t.Fatalf("ParseArgs = %#v", args)
	}
}

func TestShellCompletIDParsing(t *testing.T) {
	id, ok := ParseCompletID("core-1/#42")
	if !ok || id.Birth != "core-1" || id.Seq != 42 {
		t.Fatalf("ParseCompletID = %v, %v", id, ok)
	}
	for _, bad := range []string{"", "x", "/#1", "a/#0", "a/#x"} {
		if _, ok := ParseCompletID(bad); ok {
			t.Errorf("ParseCompletID(%q) accepted", bad)
		}
	}
}

func TestShellErrors(t *testing.T) {
	cores := testDeployment(t, "admin")
	s, _ := newShell(t, cores["admin"])
	for _, line := range []string{
		"bogus",
		"info",
		"new",
		"invoke onearg",
		"move x",
		"where not-an-id",
		"name a b",
		"lookup a",
		"profile x",
		"watch",
	} {
		if err := s.Exec(line); err == nil {
			t.Errorf("Exec(%q): expected error", line)
		}
	}
	if err := s.Exec(""); err != nil {
		t.Errorf("empty line: %v", err)
	}
	if err := s.Exec("quit"); !errors.Is(err, io.EOF) {
		t.Errorf("quit: %v, want io.EOF", err)
	}
}

func TestShellWatch(t *testing.T) {
	cores := testDeployment(t, "admin", "a", "b")
	s, out := newShell(t, cores["admin"])
	execLines(t, s,
		"watch a b",
		"new a Message x",
		"move a/#1 b",
	)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out.String(), "completArrived") {
		if time.Now().After(deadline) {
			t.Fatalf("no arrival event in output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShellTopAndAlerts(t *testing.T) {
	cores := testDeployment(t, "admin", "worker")
	s, out := newShell(t, cores["admin"])
	execLines(t, s,
		"new worker Message greetings",
		"invoke worker/#1 Print",
		"invoke worker/#1 Print",
		"top worker",
	)
	got := out.String()
	if !strings.Contains(got, "Print") || !strings.Contains(got, "Message") {
		t.Fatalf("top worker output missing Print row:\n%s", got)
	}

	// Without an engine, `alerts` points at how to start one.
	execLines(t, s, "alerts")
	if !strings.Contains(out.String(), "no alert engine") {
		t.Fatalf("alerts without engine:\n%s", out.String())
	}

	if _, err := alert.Start(cores["admin"], alert.Options{
		Interval: -1, // shell drives nothing; Status is read from rule state
		Rules: []alert.Rule{
			{Name: "hot-shard", Cond: alert.CondThreshold, Series: "shard_load", Op: ">", Value: 100},
		},
	}); err != nil {
		t.Fatal(err)
	}
	execLines(t, s, "alerts")
	got = out.String()
	if !strings.Contains(got, "hot-shard") || !strings.Contains(got, "inactive") {
		t.Fatalf("alerts with engine missing rule row:\n%s", got)
	}
}
