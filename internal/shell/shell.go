// Package shell implements the administration shell's command interpreter
// (§3 of the paper lists a shell complet among the system components). The
// fargo-shell binary wires it to stdin/stdout; tests drive it directly.
package shell

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"fargo/internal/alert"
	"fargo/internal/core"
	"fargo/internal/ids"
	"fargo/internal/metrics"
	"fargo/internal/observatory"
	"fargo/internal/plan"
	"fargo/internal/ref"
	"fargo/internal/trace"
)

// Shell interprets administration commands against a live core.
type Shell struct {
	c   *core.Core
	out io.Writer
}

// New returns a shell bound to the given core, writing output to out.
func New(c *core.Core, out io.Writer) (*Shell, error) {
	if c == nil || out == nil {
		return nil, fmt.Errorf("shell: core and output required")
	}
	return &Shell{c: c, out: out}, nil
}

// Help is the command summary printed by the help command.
const Help = `commands:
  cores                          list peer cores seen so far
  info <core>                    complets and names hosted by a core
  new <core> <type> [args...]    instantiate a complet remotely
  invoke <id|name> <m> [args...] invoke a method through a tracked reference
  move <id|name> <core>          relocate a complet
  where <id|name>                locate a complet
  setref <hub> <target> <kind>   attach a reference (link|pull|duplicate|stamp)
  name <core> <name> <id>        bind a logical name
  lookup <core> <name>           resolve a logical name
  profile <core> <svc> [args...] instant profiling measurement
  stats <core>                   metrics snapshot (counters, gauges, latency histograms)
  top <core> [n]                 hottest (complet, method) telemetry rows by call count
  alerts                         alert engine rule states on this shell's core
  health <core>                  liveness/readiness verdict and per-peer breaker state
  recovery <core>                move-journal and crash-recovery state (pending moves)
  plan status|run|dry-run        layout planner: status, one round, or a what-if proposal
  cluster status                 deployment observatory: membership, staleness, partial flag
  cluster metrics                federated Prometheus exposition across every member
  cluster timeline [n]           globally ordered layout timeline (newest n)
  cluster traces                 merged trace listing across the deployment
  cluster trace <id>             stitch one trace into its cross-core causal tree
  flight <core> [n]              flight recorder ring (newest n; default all retained)
  trace <core>                   list recent traces retained at a core
  trace <core> <id> [core...]    span tree of one trace, merged across the given cores
  checkpoint <core> <path>       persist a core's complets to a file (on its host)
  watch <core...>                stream layout events
  help | quit`

// Exec runs one command line. It returns io.EOF for quit/exit.
func (s *Shell) Exec(line string) error {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "quit", "exit":
		return io.EOF
	case "help":
		fmt.Fprintln(s.out, Help)
		return nil
	case "cores":
		peers := s.c.Peers()
		if len(peers) == 0 {
			fmt.Fprintln(s.out, "(no peers seen yet)")
			return nil
		}
		for _, p := range peers {
			fmt.Fprintln(s.out, p)
		}
		return nil
	case "info":
		if len(args) != 1 {
			return fmt.Errorf("usage: info <core>")
		}
		info, err := s.c.CoreInfo(ids.CoreID(args[0]))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "core %s: %d complet(s)\n", info.Core, len(info.Complets))
		for _, ci := range info.Complets {
			names := ""
			if len(ci.Names) > 0 {
				names = " [" + strings.Join(ci.Names, ",") + "]"
			}
			fmt.Fprintf(s.out, "  %-24s %s%s\n", ci.ID, ci.TypeName, names)
		}
		return nil
	case "new":
		if len(args) < 2 {
			return fmt.Errorf("usage: new <core> <type> [args...]")
		}
		r, err := s.c.NewCompletAt(ids.CoreID(args[0]), args[1], ParseArgs(args[2:])...)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "created %s (%s) at %s\n", r.Target(), args[1], args[0])
		return nil
	case "invoke":
		if len(args) < 2 {
			return fmt.Errorf("usage: invoke <id|name> <method> [args...]")
		}
		r, err := s.RefFor(args[0])
		if err != nil {
			return err
		}
		res, err := r.Invoke(args[1], ParseArgs(args[2:])...)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "-> %v\n", res)
		return nil
	case "move":
		if len(args) != 2 {
			return fmt.Errorf("usage: move <id|name> <core>")
		}
		r, err := s.RefFor(args[0])
		if err != nil {
			return err
		}
		if err := s.c.Move(r, ids.CoreID(args[1])); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "moved %s to %s\n", r.Target(), args[1])
		return nil
	case "where":
		if len(args) != 1 {
			return fmt.Errorf("usage: where <id|name>")
		}
		r, err := s.RefFor(args[0])
		if err != nil {
			return err
		}
		loc, err := r.Meta().Location()
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%s is at %s\n", r.Target(), loc)
		return nil
	case "setref":
		if len(args) != 3 {
			return fmt.Errorf("usage: setref <hub> <target> <link|pull|duplicate|stamp>")
		}
		hub, err := s.RefFor(args[0])
		if err != nil {
			return err
		}
		target, err := s.RefFor(args[1])
		if err != nil {
			return err
		}
		if _, err := hub.Invoke("Attach", target, args[2]); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "attached %s to %s as %s\n", target.Target(), hub.Target(), args[2])
		return nil
	case "name":
		if len(args) != 3 {
			return fmt.Errorf("usage: name <core> <name> <id>")
		}
		r, err := s.RefFor(args[2])
		if err != nil {
			return err
		}
		if err := s.c.NameAt(ids.CoreID(args[0]), args[1], r); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "named %s %q at %s\n", r.Target(), args[1], args[0])
		return nil
	case "lookup":
		if len(args) != 2 {
			return fmt.Errorf("usage: lookup <core> <name>")
		}
		r, ok, err := s.c.LookupAt(ids.CoreID(args[0]), args[1])
		if err != nil {
			return err
		}
		if !ok {
			fmt.Fprintf(s.out, "no binding for %q at %s\n", args[1], args[0])
			return nil
		}
		fmt.Fprintf(s.out, "%s -> %s (%s)\n", args[1], r.Target(), r.AnchorType())
		return nil
	case "profile":
		if len(args) < 2 {
			return fmt.Errorf("usage: profile <core> <service> [args...]")
		}
		v, err := s.c.Monitor().InstantAt(ids.CoreID(args[0]), args[1], args[2:]...)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%s(%s) = %g\n", args[1], strings.Join(args[2:], ","), v)
		return nil
	case "stats":
		if len(args) != 1 {
			return fmt.Errorf("usage: stats <core>")
		}
		reply, err := s.c.StatsAt(ids.CoreID(args[0]))
		if err != nil {
			return err
		}
		core.FormatStats(s.out, reply)
		return nil
	case "top":
		if len(args) < 1 || len(args) > 2 {
			return fmt.Errorf("usage: top <core> [n]")
		}
		max := 0
		if len(args) == 2 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 0 {
				return fmt.Errorf("usage: top <core> [n]")
			}
			max = n
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rows, err := s.c.MethodStatsAt(ctx, ids.CoreID(args[0]))
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			fmt.Fprintf(s.out, "core %s: no per-method telemetry (no invocations yet, or DisablePerMethodStats)\n", args[0])
			return nil
		}
		core.FormatMethodStats(s.out, rows, max)
		return nil
	case "alerts":
		if len(args) != 0 {
			return fmt.Errorf("usage: alerts")
		}
		e, ok := alert.For(s.c)
		if !ok {
			fmt.Fprintln(s.out, "no alert engine on this core (start one with fargo.StartAlerts or -alerts)")
			return nil
		}
		statuses := e.Status()
		if len(statuses) == 0 {
			fmt.Fprintln(s.out, "alert engine running with no rules")
			return nil
		}
		for _, st := range statuses {
			marker := " "
			if st.State == alert.StateFiring || st.State == alert.StateResolving {
				marker = "!"
			}
			presence := ""
			if !st.Present {
				presence = " (series absent)"
			}
			fmt.Fprintf(s.out, "%s %-20s %-10s value=%.4g firings=%d%s\n",
				marker, st.Rule.Name, st.State, st.Value, st.Firings, presence)
		}
		return nil
	case "health":
		if len(args) != 1 {
			return fmt.Errorf("usage: health <core>")
		}
		reply, err := s.c.HealthAt(ids.CoreID(args[0]))
		if err != nil {
			return err
		}
		verdict := func(ok bool) string {
			if ok {
				return "ok"
			}
			return "NOT ok"
		}
		fmt.Fprintf(s.out, "core %s: live=%s ready=%s closed=%v moves-in-flight=%d complets=%d\n",
			reply.Core, verdict(reply.Live), verdict(reply.Ready),
			reply.Closed, reply.MovesInFlight, reply.Complets)
		for _, p := range reply.Peers {
			suspect := ""
			if p.Suspect {
				suspect = " SUSPECT"
			}
			fmt.Fprintf(s.out, "  peer %-12s breaker=%s%s\n", p.Core, p.Breaker, suspect)
		}
		return nil
	case "recovery":
		if len(args) != 1 {
			return fmt.Errorf("usage: recovery <core>")
		}
		reply, err := s.c.HealthAt(ids.CoreID(args[0]))
		if err != nil {
			return err
		}
		journal := "off"
		if reply.JournalEnabled {
			journal = fmt.Sprintf("on (%d records)", reply.JournalRecords)
		}
		fmt.Fprintf(s.out, "core %s: journal=%s pending-moves=%d recovered=%d rolled-back=%d\n",
			reply.Core, journal, reply.PendingMoves, reply.MovesRecovered, reply.MovesRolledBack)
		if reply.PendingMoves > 0 {
			fmt.Fprintf(s.out, "  %d journaled move(s) await resolution; the core is not ready until they resolve\n", reply.PendingMoves)
		}
		return nil
	case "plan":
		if len(args) != 1 {
			return fmt.Errorf("usage: plan status|run|dry-run")
		}
		p, ok := plan.For(s.c)
		if !ok {
			// The shell core hosts no planner of its own: start an ad-hoc
			// one spanning the seeded peers (manual rounds only). The shell
			// core is excluded so nothing is ever attracted onto it.
			peers := s.c.Peers()
			if len(peers) == 0 {
				fmt.Fprintln(s.out, "no planner and no peer cores to plan over")
				return nil
			}
			var err error
			p, err = plan.Start(s.c, plan.Options{Cores: peers})
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "started ad-hoc planner over %d peer core(s)\n", len(peers))
		}
		switch args[0] {
		case "status":
			st := p.Status()
			fmt.Fprintf(s.out, "planner on %s: running=%v dry-run=%v interval=%s min-gain=%g/s cooldown=%s max-moves=%d\n",
				st.Core, st.Running, st.DryRun, st.Interval, st.MinGain, st.Cooldown, st.MaxMovesPerRound)
			fmt.Fprintf(s.out, "  members: %s\n", strings.Join(st.Cores, ", "))
			fmt.Fprintf(s.out, "  rounds=%d applied=%d skipped=%d", st.Rounds, st.Applied, st.Skipped)
			if st.LastErr != "" {
				fmt.Fprintf(s.out, " last-err=%q", st.LastErr)
			}
			fmt.Fprintln(s.out)
			if st.Graph != nil {
				fmt.Fprintf(s.out, "  graph: %d complet(s), %d edge(s), cross-rate %.3g/s\n",
					st.Graph.Complets, len(st.Graph.Edges), st.Graph.CrossRate)
				for _, e := range st.Graph.Edges {
					marker := ""
					if e.Cross {
						marker = " CROSS"
					}
					fmt.Fprintf(s.out, "    %s@%s -> %s@%s  %.3g/s (%d in window, %d bytes)%s\n",
						e.Src, e.SrcCore, e.Dst, e.DstCore, e.Rate, e.Count, e.Bytes, marker)
				}
			}
			for _, d := range st.Decisions {
				suffix := ""
				if d.Err != "" {
					suffix = " ERR=" + d.Err
				}
				fmt.Fprintf(s.out, "  %s %-8s %s: %s -> %s (gain %.3g/s)%s\n",
					d.At.Format("15:04:05.000"), d.Action, d.Complet, d.From, d.To, d.Gain, suffix)
			}
			return nil
		case "run":
			round, err := p.RunOnce(context.Background())
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "round: %d move(s) proposed, %d applied, %d failed (cross-rate %.3g/s, est. savings %.3g/s)\n",
				len(round.Proposal.Moves), round.Applied, round.Failed, round.Proposal.CrossRate, round.Proposal.Savings)
			for _, m := range round.Proposal.Moves {
				fmt.Fprintf(s.out, "  %s: %s -> %s (gain %.3g/s)\n", m.Complet, m.From, m.To, m.Gain)
			}
			return nil
		case "dry-run":
			prop, err := p.Propose(context.Background())
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "dry run: %d move(s) (cross-rate %.3g/s, est. savings %.3g/s)\n",
				len(prop.Moves), prop.CrossRate, prop.Savings)
			for _, m := range prop.Moves {
				fmt.Fprintf(s.out, "  %s: %s -> %s (gain %.3g/s)\n", m.Complet, m.From, m.To, m.Gain)
			}
			return nil
		default:
			return fmt.Errorf("usage: plan status|run|dry-run")
		}
	case "cluster":
		if len(args) == 0 {
			return fmt.Errorf("usage: cluster status|metrics|timeline [n]|traces|trace <id>")
		}
		o, ok := observatory.For(s.c)
		if !ok {
			// The shell core hosts no observatory of its own: start an ad-hoc
			// one with dynamic membership (this core plus every peer it
			// knows), refresh-on-demand only.
			var err error
			o, err = observatory.Start(s.c, observatory.Options{})
			if err != nil {
				return err
			}
			fmt.Fprintln(s.out, "started ad-hoc observatory (this core + known peers)")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		switch args[0] {
		case "status":
			if err := o.Refresh(ctx); err != nil {
				return err
			}
			st := o.Status()
			fmt.Fprintf(s.out, "observatory on %s: %d member(s), refreshes=%d merge-clock=%d cross-rate=%.3g/s\n",
				st.Core, len(st.Members), st.Refreshes, st.MergeClock, st.CrossRate)
			if st.Partial {
				fmt.Fprintf(s.out, "  PARTIAL VIEW: unreachable: %s\n", strings.Join(st.Unreachable, ", "))
			}
			for _, m := range st.Members {
				mark := "up"
				if !m.Reachable {
					mark = "DOWN"
				}
				fmt.Fprintf(s.out, "  %-12s %-4s live=%v ready=%v complets=%d moves=%d suspects=%d",
					m.Core, mark, m.Live, m.Ready, m.Complets, m.Moves, m.Suspects)
				if m.Err != "" {
					fmt.Fprintf(s.out, " err=%q", m.Err)
				}
				fmt.Fprintln(s.out)
			}
			return nil
		case "metrics":
			if err := o.Refresh(ctx); err != nil {
				return err
			}
			metrics.WritePrometheus(s.out, o.ClusterSnapshot())
			return nil
		case "timeline":
			max := 0
			if len(args) == 2 {
				n, err := strconv.Atoi(args[1])
				if err != nil || n < 0 {
					return fmt.Errorf("usage: cluster timeline [n] (n must be a non-negative integer)")
				}
				max = n
			}
			if err := o.Refresh(ctx); err != nil {
				return err
			}
			events := o.Timeline(max)
			if len(events) == 0 {
				fmt.Fprintln(s.out, "(timeline empty)")
				return nil
			}
			for _, ev := range events {
				fmt.Fprintf(s.out, "#%-5d %s %-12s %-14s", ev.Merge, ev.At.Format("15:04:05.000"), ev.Core, ev.Kind)
				if ev.Complet != "" {
					fmt.Fprintf(s.out, " %s", ev.Complet)
				}
				if ev.Peer != "" {
					fmt.Fprintf(s.out, " -> %s", ev.Peer)
				}
				if ev.Detail != "" {
					fmt.Fprintf(s.out, " %s", ev.Detail)
				}
				if ev.Err != "" {
					fmt.Fprintf(s.out, " ERR=%s", ev.Err)
				}
				fmt.Fprintln(s.out)
			}
			return nil
		case "traces":
			entries, unreachable, err := o.Traces(ctx, 0)
			if err != nil {
				return err
			}
			if len(unreachable) > 0 {
				fmt.Fprintf(s.out, "PARTIAL: %d member(s) unreachable\n", len(unreachable))
			}
			if len(entries) == 0 {
				fmt.Fprintln(s.out, "(no traces retained anywhere)")
				return nil
			}
			for _, e := range entries {
				fmt.Fprintf(s.out, "%s  %4d span(s)  cores=%s  %s  %s\n",
					e.ID, e.Spans, strings.Join(e.Cores, ","), e.Start.Format("15:04:05.000"), e.Root)
			}
			return nil
		case "trace":
			if len(args) != 2 {
				return fmt.Errorf("usage: cluster trace <id>")
			}
			id, err := trace.ParseTraceID(args[1])
			if err != nil {
				return err
			}
			st, err := o.Stitch(ctx, id)
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "trace %s: %d span(s) across %s\n", id, len(st.Spans), strings.Join(st.Cores, ", "))
			if len(st.Unreachable) > 0 {
				fmt.Fprintf(s.out, "PARTIAL: %d member(s) unreachable\n", len(st.Unreachable))
			}
			if len(st.Orphans) > 0 {
				fmt.Fprintf(s.out, "%d orphaned span(s) (parent missing; promoted to roots)\n", len(st.Orphans))
			}
			trace.FormatTree(s.out, st.Spans)
			return nil
		default:
			return fmt.Errorf("usage: cluster status|metrics|timeline [n]|traces|trace <id>")
		}
	case "flight":
		if len(args) < 1 || len(args) > 2 {
			return fmt.Errorf("usage: flight <core> [n]")
		}
		max := 0
		if len(args) == 2 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 0 {
				return fmt.Errorf("usage: flight <core> [n] (n must be a non-negative integer)")
			}
			max = n
		}
		reply, err := s.c.FlightAt(ids.CoreID(args[0]), max)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "core %s: %d event(s) recorded, showing %d\n",
			reply.Core, reply.Total, len(reply.Events))
		for _, ev := range reply.Events {
			fmt.Fprintf(s.out, "  #%-5d %s %-13s", ev.Seq,
				time.Unix(0, ev.UnixNanos).Format("15:04:05.000"), ev.Kind)
			if ev.Complet != "" {
				fmt.Fprintf(s.out, " %s", ev.Complet)
			}
			if ev.Peer != "" {
				fmt.Fprintf(s.out, " peer=%s", ev.Peer)
			}
			if ev.Detail != "" {
				fmt.Fprintf(s.out, " %s", ev.Detail)
			}
			if ev.DurationNanos > 0 {
				fmt.Fprintf(s.out, " took=%v", time.Duration(ev.DurationNanos).Round(time.Microsecond))
			}
			if ev.Bytes > 0 {
				fmt.Fprintf(s.out, " bytes=%d", ev.Bytes)
			}
			if ev.Err != "" {
				fmt.Fprintf(s.out, " ERR=%s", ev.Err)
			}
			fmt.Fprintln(s.out)
		}
		return nil
	case "trace":
		if len(args) == 0 {
			return fmt.Errorf("usage: trace <core> [id [core...]]")
		}
		if len(args) == 1 {
			sums, err := s.c.TracesAt(ids.CoreID(args[0]), 0)
			if err != nil {
				return err
			}
			if len(sums) == 0 {
				fmt.Fprintln(s.out, "(no traces retained; is sampling enabled?)")
				return nil
			}
			core.FormatTraceSummaries(s.out, sums)
			return nil
		}
		id, err := trace.ParseTraceID(args[1])
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		// Merge the trace's spans from the named core plus any extra cores:
		// each collector only retains the spans recorded locally, so the
		// cross-core tree needs every involved core queried.
		var spans []trace.Span
		for _, coreName := range append([]string{args[0]}, args[2:]...) {
			wireSpans, err := s.c.TraceAt(ids.CoreID(coreName), id)
			if err != nil {
				return err
			}
			spans = append(spans, core.SpansFromWire(wireSpans)...)
		}
		if len(spans) == 0 {
			fmt.Fprintf(s.out, "no spans for trace %s at the queried core(s)\n", id)
			return nil
		}
		trace.FormatTree(s.out, spans)
		return nil
	case "checkpoint":
		if len(args) != 2 {
			return fmt.Errorf("usage: checkpoint <core> <path>")
		}
		n, err := s.c.CheckpointRemote(ids.CoreID(args[0]), args[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "checkpointed %d complet(s) of %s to %s\n", n, args[0], args[1])
		return nil
	case "watch":
		if len(args) == 0 {
			return fmt.Errorf("usage: watch <core...>")
		}
		for _, coreName := range args {
			at := ids.CoreID(coreName)
			for _, event := range []string{core.EventCompletArrived, core.EventCompletDeparted, core.EventCoreShutdown} {
				if _, err := s.c.Monitor().SubscribeAt(at, core.SubscribeOptions{Service: event}, func(e core.Event) {
					fmt.Fprintf(s.out, "[event] %s at %s complet=%s detail=%s\n", e.Name, e.Source, e.Complet, e.Detail)
				}); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(s.out, "watching %s\n", strings.Join(args, ", "))
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

// RefFor resolves an ID string ("birth/#seq") or a local logical name to a
// tracked reference.
func (s *Shell) RefFor(designator string) (*ref.Ref, error) {
	if r, ok := s.c.Lookup(designator); ok {
		return r, nil
	}
	if id, ok := ParseCompletID(designator); ok {
		return s.c.NewRefTo(id, "", id.Birth), nil
	}
	return nil, fmt.Errorf("%q is neither a local name nor a complet ID (birth/#seq)", designator)
}

// ParseCompletID parses CompletID.String output ("birth/#seq").
func ParseCompletID(s string) (ids.CompletID, bool) {
	i := strings.LastIndex(s, "/#")
	if i <= 0 {
		return ids.CompletID{}, false
	}
	seq, err := strconv.ParseUint(s[i+2:], 10, 64)
	if err != nil || seq == 0 {
		return ids.CompletID{}, false
	}
	return ids.CompletID{Birth: ids.CoreID(s[:i]), Seq: seq}, true
}

// ParseArgs converts shell words to typed invocation arguments: integers and
// floats become numbers, true/false become bools, everything else remains a
// string (surrounding double quotes stripped).
func ParseArgs(words []string) []any {
	out := make([]any, len(words))
	for i, w := range words {
		switch {
		case isInt(w):
			n, _ := strconv.Atoi(w)
			out[i] = n
		case isFloat(w):
			f, _ := strconv.ParseFloat(w, 64)
			out[i] = f
		case w == "true", w == "false":
			out[i] = w == "true"
		default:
			out[i] = strings.Trim(w, `"`)
		}
	}
	return out
}

func isInt(s string) bool {
	_, err := strconv.Atoi(s)
	return err == nil
}

func isFloat(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
