// Package alert implements the cluster alert engine: declarative SLO rules
// evaluated against the core's own metrics registry AND against the
// cluster_-federated series of its observatory, with firing/resolution
// hysteresis, flight-recorder events that interleave with moves and repairs
// on the merged timeline, and subscriptions that let §4.3 layout scripts
// react to alerts (`on alert(...)`) the way they react to core failures.
//
// The engine is deliberately a consumer of the existing observability
// stack, not a new collection path: local rules read metrics.Registry
// snapshots, cluster_ rules read the observatory's federated model (one
// batched ObsQuery per member, already bounded and partial-tolerant), and
// alert transitions are ordinary flight events — so /cluster/timeline shows
// "latency alert fired, planner moved the complet, alert resolved" as one
// causally ordered story.
package alert

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"fargo/internal/core"
	"fargo/internal/flight"
	"fargo/internal/metrics"
	"fargo/internal/observatory"
	"fargo/internal/stats"
)

// Defaults for zero Options fields.
const (
	// DefaultInterval is the evaluation period when Options.Interval is 0.
	DefaultInterval = time.Second
	// DefaultWindow is the burn-rate window when a rule leaves Window 0.
	DefaultWindow = time.Minute
)

// Options configures an engine.
type Options struct {
	// Rules is the rule set (see ParseRules for the file grammar).
	Rules []Rule
	// Interval is the evaluation period: 0 means DefaultInterval, negative
	// disables the loop entirely (tests drive the engine with EvalOnce).
	Interval time.Duration
	// EvalTimeout bounds one evaluation's observatory refresh (0 = the
	// observatory's own refresh timeout governs).
	EvalTimeout time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Event is one alert transition delivered to subscribers.
type Event struct {
	// Rule is the rule name.
	Rule string `json:"rule"`
	// Firing is true when the rule fired, false when it resolved.
	Firing bool `json:"firing"`
	// Value is the evaluated value at the transition.
	Value float64 `json:"value"`
	// At is the transition time.
	At time.Time `json:"at"`
	// Detail is the human-readable transition summary (also the flight
	// event detail).
	Detail string `json:"detail"`
}

// Rule states.
const (
	StateInactive  = "inactive"
	StatePending   = "pending" // condition true, waiting out For
	StateFiring    = "firing"
	StateResolving = "resolving" // firing, resolve condition true, waiting out ResolveFor
)

// burnObs is one cumulative burn-rate observation.
type burnObs struct {
	at    time.Time
	above float64
	total float64
}

// ruleState is the mutable evaluation state of one rule.
type ruleState struct {
	rule    Rule
	state   string
	since   time.Time // entry time of the current state
	value   float64
	present bool
	firedAt time.Time
	firings uint64
	// :rate derivation state.
	prevRaw  float64
	prevAt   time.Time
	havePrev bool
	// burn-rate ring: cumulative (above, total) observations, newest last.
	burn []burnObs
}

// RuleStatus is one rule's introspection row.
type RuleStatus struct {
	Rule    Rule       `json:"rule"`
	State   string     `json:"state"`
	Value   float64    `json:"value"`
	Present bool       `json:"present"`
	Since   *time.Time `json:"since,omitempty"`
	FiredAt *time.Time `json:"firedAt,omitempty"`
	Firings uint64     `json:"firings"`
}

// Engine evaluates a rule set against one core.
type Engine struct {
	c    *core.Core
	opts Options

	mu      sync.Mutex
	rules   []*ruleState
	subs    map[int]func(Event)
	nextSub int
	evals   uint64
	lastAt  time.Time
	stopped bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// engines maps cores to their alert engines, so layers that hold only a core
// (obs, shell, the script runtime) reach the engine without the core
// importing this package — the same pattern as plan.For and observatory.For.
var engines = struct {
	sync.Mutex
	m map[*core.Core]*Engine
}{m: make(map[*core.Core]*Engine)}

// Start attaches an engine to the core and starts its evaluation loop
// (unless opts.Interval < 0). The engine stops with the core. A core has at
// most one engine.
func Start(c *core.Core, opts Options) (*Engine, error) {
	if c == nil {
		return nil, fmt.Errorf("alert: nil core")
	}
	if opts.Interval == 0 {
		opts.Interval = DefaultInterval
	}
	e := &Engine{
		c:    c,
		opts: opts,
		subs: make(map[int]func(Event)),
		stop: make(chan struct{}),
	}
	for i := range opts.Rules {
		r := opts.Rules[i]
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if r.Cond == CondBurnRate && r.Window == 0 {
			r.Window = DefaultWindow
		}
		e.rules = append(e.rules, &ruleState{rule: r, state: StateInactive})
	}
	engines.Lock()
	if _, dup := engines.m[c]; dup {
		engines.Unlock()
		return nil, fmt.Errorf("alert: core %s already has an alert engine", c.ID())
	}
	engines.m[c] = e
	engines.Unlock()
	c.OnShutdown(e.Stop)

	if opts.Interval > 0 {
		e.wg.Add(1)
		go e.loop()
	}
	return e, nil
}

// For returns the engine attached to the core, if any.
func For(c *core.Core) (*Engine, bool) {
	engines.Lock()
	defer engines.Unlock()
	e, ok := engines.m[c]
	return e, ok
}

// Stop ends the loop and detaches the engine from its core. Idempotent.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.mu.Unlock()
	close(e.stop)
	e.wg.Wait()
	engines.Lock()
	if engines.m[e.c] == e {
		delete(engines.m, e.c)
	}
	engines.Unlock()
}

// Core returns the attached core.
func (e *Engine) Core() *core.Core { return e.c }

// Rules returns the configured rules.
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, len(e.rules))
	for i, rs := range e.rules {
		out[i] = rs.rule
	}
	return out
}

// Subscribe registers fn for every alert transition. The returned cancel
// func unregisters it. fn runs on the evaluation goroutine — keep it cheap
// (the script runtime hands off to its own event queue).
func (e *Engine) Subscribe(fn func(Event)) func() {
	e.mu.Lock()
	id := e.nextSub
	e.nextSub++
	e.subs[id] = fn
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		delete(e.subs, id)
		e.mu.Unlock()
	}
}

// Status snapshots every rule's evaluation state, rules-file order.
func (e *Engine) Status() []RuleStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RuleStatus, 0, len(e.rules))
	for _, rs := range e.rules {
		st := RuleStatus{
			Rule:    rs.rule,
			State:   rs.state,
			Value:   rs.value,
			Present: rs.present,
			Firings: rs.firings,
		}
		if !rs.since.IsZero() {
			t := rs.since
			st.Since = &t
		}
		if !rs.firedAt.IsZero() {
			t := rs.firedAt
			st.FiredAt = &t
		}
		out = append(out, st)
	}
	return out
}

// Firing returns the names of currently firing rules (resolving counts as
// still firing), rules-file order.
func (e *Engine) Firing() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, rs := range e.rules {
		if rs.state == StateFiring || rs.state == StateResolving {
			out = append(out, rs.rule.Name)
		}
	}
	return out
}

func (e *Engine) logf(format string, args ...any) {
	if e.opts.Logf != nil {
		e.opts.Logf(format, args...)
	}
}

// loop is the background evaluator.
func (e *Engine) loop() {
	defer e.wg.Done()
	t := time.NewTicker(e.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			ctx := context.Background()
			if e.opts.EvalTimeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, e.opts.EvalTimeout)
				e.EvalOnce(ctx)
				cancel()
			} else {
				e.EvalOnce(ctx)
			}
		}
	}
}

// EvalOnce runs one evaluation pass at the current time. Exported so tests
// (and one-shot tooling) can drive the engine without a loop.
func (e *Engine) EvalOnce(ctx context.Context) {
	e.evalAt(ctx, time.Now())
}

// evalAt is the evaluation pass: collect the local registry snapshot (and,
// when any rule needs one, the observatory's federated snapshot), evaluate
// every rule, run its state machine, and emit transitions — as flight
// events (so they interleave on /cluster/timeline) and to subscribers.
func (e *Engine) evalAt(ctx context.Context, now time.Time) {
	local := e.c.Metrics().Snapshot()
	var cluster metrics.Snapshot
	if e.needsCluster() {
		if o, ok := observatory.For(e.c); ok {
			if err := o.RefreshIfStale(ctx); err != nil {
				e.logf("alert %s: observatory refresh: %v", e.c.ID(), err)
			}
			cluster = o.ClusterSnapshot()
		} else {
			e.logf("alert %s: cluster_ rules configured but the core has no observatory", e.c.ID())
		}
	}

	var events []Event
	e.mu.Lock()
	for _, rs := range e.rules {
		snap := &local
		if strings.HasPrefix(rs.rule.Series, "cluster_") {
			snap = &cluster
		}
		e.observe(rs, snap, now)
		if ev, ok := step(rs, now); ok {
			events = append(events, ev)
		}
	}
	e.evals++
	e.lastAt = now
	subs := make([]func(Event), 0, len(e.subs))
	for _, fn := range e.subs {
		subs = append(subs, fn)
	}
	e.mu.Unlock()

	for _, ev := range events {
		kind := flight.KindAlertFiring
		if !ev.Firing {
			kind = flight.KindAlertResolved
		}
		e.c.Flight().Record(flight.Event{Kind: kind, At: ev.At, Detail: ev.Detail})
		e.logf("alert %s: %s", e.c.ID(), ev.Detail)
		for _, fn := range subs {
			fn(ev)
		}
	}
}

// needsCluster reports whether any rule reads a federated series.
func (e *Engine) needsCluster() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.rules {
		if strings.HasPrefix(rs.rule.Series, "cluster_") {
			return true
		}
	}
	return false
}

// observe evaluates the rule's selector against the snapshot, updating
// rs.value and rs.present. Caller holds e.mu.
func (e *Engine) observe(rs *ruleState, snap *metrics.Snapshot, now time.Time) {
	if rs.rule.Cond == CondBurnRate {
		e.observeBurnRate(rs, snap, now)
		return
	}
	name := rs.rule.Series
	field := rs.rule.Field
	if h, ok := snap.Histograms[name]; ok {
		rs.present = true
		switch field {
		case "p50":
			rs.value = h.P50
		case "p99":
			rs.value = h.P99
		case "mean":
			rs.value = h.Mean()
		case "count":
			rs.value = float64(h.Count)
		case "sum":
			rs.value = h.Sum
		case "rate":
			rs.value = rs.ratePerSec(float64(h.Count), now)
		default: // "", "p95", "value"
			rs.value = h.P95
		}
		return
	}
	if v, ok := snap.Counters[name]; ok {
		rs.present = true
		if field == "rate" {
			rs.value = rs.ratePerSec(float64(v), now)
		} else {
			rs.value = float64(v)
		}
		return
	}
	if v, ok := snap.Gauges[name]; ok {
		rs.present = true
		if field == "rate" {
			rs.value = rs.ratePerSec(v, now)
		} else {
			rs.value = v
		}
		return
	}
	rs.present = false
	rs.value = 0
}

// ratePerSec turns successive cumulative observations into a per-second
// rate. The first observation (and any counter regression, e.g. a restarted
// member) yields 0.
func (rs *ruleState) ratePerSec(raw float64, now time.Time) float64 {
	defer func() { rs.prevRaw, rs.prevAt, rs.havePrev = raw, now, true }()
	if !rs.havePrev || raw < rs.prevRaw {
		return 0
	}
	dt := now.Sub(rs.prevAt).Seconds()
	if dt <= 0 {
		return 0
	}
	return (raw - rs.prevRaw) / dt
}

// observeBurnRate computes the windowed fraction of histogram samples above
// the rule's Bound from cumulative bucket-count deltas. Lifetime quantiles
// never decay — a burst of slowness raises p95 forever under light traffic —
// but the burn rate is a delta over Window, so it returns to zero once the
// slowness stops, which is what lets burn-rate alerts resolve.
func (e *Engine) observeBurnRate(rs *ruleState, snap *metrics.Snapshot, now time.Time) {
	h, ok := snap.Histograms[rs.rule.Series]
	if !ok {
		rs.present = false
		rs.value = 0
		return
	}
	rs.present = true
	obs := burnObs{at: now, above: countAbove(h, rs.rule.Bound), total: float64(h.Count)}
	if n := len(rs.burn); n > 0 && (obs.total < rs.burn[n-1].total || obs.above < rs.burn[n-1].above) {
		// Cumulative regression: the underlying histogram restarted (member
		// churn in a federated series). Start the window over.
		rs.burn = rs.burn[:0]
	}
	rs.burn = append(rs.burn, obs)
	// Evict down to one baseline observation at or beyond the window edge.
	cutoff := now.Add(-rs.rule.Window)
	for len(rs.burn) >= 2 && !rs.burn[1].at.After(cutoff) {
		rs.burn = rs.burn[1:]
	}
	first, last := rs.burn[0], rs.burn[len(rs.burn)-1]
	dTotal := last.total - first.total
	if dTotal <= 0 {
		rs.value = 0
		return
	}
	rs.value = (last.above - first.above) / dTotal
}

// countAbove estimates how many of the snapshot's samples exceeded bound,
// interpolating linearly inside the straddling bucket (the same assumption
// the quantile estimator makes).
func countAbove(h stats.HistogramSnapshot, bound float64) float64 {
	var above float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = h.Bounds[i-1]
		}
		upper := h.Bounds[i]
		switch {
		case lower >= bound:
			above += float64(c)
		case upper > bound:
			above += float64(c) * (upper - bound) / (upper - lower)
		}
	}
	return above
}

// step runs one rule's state machine and returns the transition event, if
// the rule fired or resolved this pass. Caller holds e.mu.
func step(rs *ruleState, now time.Time) (Event, bool) {
	cond := condTrue(rs)
	resolve := resolveTrue(rs, cond)
	switch rs.state {
	case StateInactive:
		if cond {
			rs.state, rs.since = StatePending, now
		}
	case StatePending:
		if !cond {
			rs.state, rs.since = StateInactive, now
		}
	case StateFiring:
		if resolve {
			rs.state, rs.since = StateResolving, now
		}
	case StateResolving:
		if !resolve {
			rs.state, rs.since = StateFiring, now
		}
	}
	switch rs.state {
	case StatePending:
		if now.Sub(rs.since) >= rs.rule.For {
			rs.state, rs.since = StateFiring, now
			rs.firedAt = now
			rs.firings++
			return Event{
				Rule:   rs.rule.Name,
				Firing: true,
				Value:  rs.value,
				At:     now,
				Detail: fmt.Sprintf("%s: %s (value %.4g)", rs.rule.Name, condDescription(rs.rule), rs.value),
			}, true
		}
	case StateResolving:
		if now.Sub(rs.since) >= rs.rule.ResolveFor {
			rs.state, rs.since = StateInactive, now
			return Event{
				Rule:   rs.rule.Name,
				Firing: false,
				Value:  rs.value,
				At:     now,
				Detail: fmt.Sprintf("%s: resolved (value %.4g)", rs.rule.Name, rs.value),
			}, true
		}
	}
	return Event{}, false
}

// condTrue evaluates the firing condition against the last observation.
func condTrue(rs *ruleState) bool {
	r := rs.rule
	if r.Cond == CondAbsence {
		return !rs.present
	}
	return rs.present && cmp(rs.value, r.Op, r.Value)
}

// resolveTrue evaluates the resolve condition: the explicit hysteresis
// condition when the rule has one, otherwise simply "no longer firing".
func resolveTrue(rs *ruleState, cond bool) bool {
	r := rs.rule
	if r.Cond == CondAbsence {
		return rs.present
	}
	if r.ResolveValue != nil {
		return rs.present && cmp(rs.value, r.ResolveOp, *r.ResolveValue)
	}
	return !cond
}

func cmp(v float64, op string, threshold float64) bool {
	switch op {
	case ">":
		return v > threshold
	case ">=":
		return v >= threshold
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	}
	return false
}

// condDescription renders the firing condition for event details.
func condDescription(r Rule) string {
	sel := r.Series
	if r.Field != "" {
		sel += ":" + r.Field
	}
	switch r.Cond {
	case CondAbsence:
		return fmt.Sprintf("%s absent", sel)
	case CondBurnRate:
		return fmt.Sprintf("burnrate(%s above %.4g) %s %.4g over %s", sel, r.Bound, r.Op, r.Value, r.Window)
	default:
		return fmt.Sprintf("%s %s %.4g", sel, r.Op, r.Value)
	}
}
