// Rule types and the declarative rules grammar. A rules file is line
// oriented, whitespace tokenized, '#' to end of line is a comment:
//
//	alert <name> on <selector> <op> <value> [for <dur>] [resolve <op> <value>] [resolveFor <dur>]
//	alert <name> absent <selector> [for <dur>]
//	alert <name> burnrate <selector> [above <bound>] <op> <value> [window <dur>] [for <dur>] [resolveFor <dur>]
//
// A selector names one series — local (`invoke_latency_ns`) or federated
// (`cluster_invoke_latency_ns`, resolved through the core's observatory) —
// optionally with labels (`method_latency_ns{method="Print"}`) and an
// optional field suffix (`:p50 :p95 :p99 :mean :count :sum :rate :value`).
// Histogram selectors default to :p95, counters and gauges to :value.
// Because lines are whitespace tokenized, a selector must be a single token:
// label values containing spaces are not expressible in a rules file (build
// such rules programmatically instead).
//
// Values parse as plain floats or as Go durations ("50ms" means 5e7 — the
// nanosecond scale every fargo latency series uses).
package alert

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"fargo/internal/metrics"
)

// Condition kinds.
const (
	// CondThreshold fires while `series <op> value` holds.
	CondThreshold = "threshold"
	// CondAbsence fires while the series does not exist (a core that stopped
	// scraping, a complet whose meters vanished).
	CondAbsence = "absence"
	// CondBurnRate fires while the windowed fraction of histogram samples
	// above Bound satisfies `<op> value`. Unlike lifetime quantiles (which
	// never decay), the burn rate is computed from bucket-count deltas over
	// Window, so it falls back to zero when the slowness stops — the
	// condition that makes alerts resolvable.
	CondBurnRate = "burnrate"
)

// Field suffixes a selector may carry.
var validFields = map[string]bool{
	"p50": true, "p95": true, "p99": true, "mean": true,
	"count": true, "sum": true, "rate": true, "value": true,
}

// Rule is one declarative alert rule.
type Rule struct {
	// Name identifies the rule in events, status, and script triggers.
	Name string `json:"name"`
	// Cond is one of the Cond* kinds.
	Cond string `json:"cond"`
	// Series is the canonicalized selector (base name plus sorted labels,
	// without the field suffix).
	Series string `json:"series"`
	// Field picks the series facet: p50/p95/p99/mean/count/sum for
	// histograms, value/rate for counters and gauges. Empty means the
	// type-dependent default (histogram p95, otherwise value).
	Field string `json:"field,omitempty"`
	// Op compares the evaluated value against Value: > >= < <=.
	Op string `json:"op,omitempty"`
	// Value is the firing threshold (for burnrate: a fraction in [0,1]).
	Value float64 `json:"value,omitempty"`
	// For is how long the condition must hold before the rule fires.
	For time.Duration `json:"for,omitempty"`
	// ResolveOp/ResolveValue, when set, replace "condition false" as the
	// resolve condition — hysteresis, so a value oscillating around the
	// firing threshold does not flap the alert.
	ResolveOp    string   `json:"resolveOp,omitempty"`
	ResolveValue *float64 `json:"resolveValue,omitempty"`
	// ResolveFor is how long the resolve condition must hold before a firing
	// rule resolves.
	ResolveFor time.Duration `json:"resolveFor,omitempty"`
	// Window is the burn-rate observation window (default DefaultWindow).
	Window time.Duration `json:"window,omitempty"`
	// Bound is the burn-rate latency bound: a sample counts as "bad" when it
	// lands above Bound (nanoseconds for fargo latency series).
	Bound float64 `json:"bound,omitempty"`
}

// Validate normalizes the rule and reports grammar-level errors.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("alert: rule without a name")
	}
	switch r.Cond {
	case CondThreshold, CondBurnRate:
		if !validOp(r.Op) {
			return fmt.Errorf("alert %s: bad op %q (want > >= < <=)", r.Name, r.Op)
		}
	case CondAbsence:
		// No op.
	default:
		return fmt.Errorf("alert %s: unknown condition %q", r.Name, r.Cond)
	}
	if r.ResolveValue != nil && !validOp(r.ResolveOp) {
		return fmt.Errorf("alert %s: bad resolve op %q", r.Name, r.ResolveOp)
	}
	series, field, err := splitSelector(r.Series)
	if err != nil {
		return fmt.Errorf("alert %s: %v", r.Name, err)
	}
	r.Series = series
	if field != "" {
		if r.Field != "" && r.Field != field {
			return fmt.Errorf("alert %s: field given twice (%q and %q)", r.Name, r.Field, field)
		}
		r.Field = field
	}
	if r.Field != "" && !validFields[r.Field] {
		return fmt.Errorf("alert %s: unknown field %q", r.Name, r.Field)
	}
	return nil
}

func validOp(op string) bool {
	switch op {
	case ">", ">=", "<", "<=":
		return true
	}
	return false
}

// splitSelector strips a trailing :field suffix (only when it is a known
// field keyword — label values keep their colons) and canonicalizes the
// series name through the metrics name grammar, so a rule matches the
// registry's own spelling regardless of label order in the rules file.
func splitSelector(sel string) (series, field string, err error) {
	if sel == "" {
		return "", "", fmt.Errorf("empty selector")
	}
	if i := strings.LastIndex(sel, ":"); i >= 0 && !strings.Contains(sel[i:], "}") {
		if suffix := sel[i+1:]; validFields[suffix] {
			field = suffix
			sel = sel[:i]
		}
	}
	base, labels, err := metrics.SplitName(sel)
	if err != nil {
		return "", "", fmt.Errorf("bad selector %q: %v", sel, err)
	}
	series = metrics.JoinLabels(base, labels)
	if err := metrics.ValidateName(series); err != nil {
		return "", "", fmt.Errorf("bad selector %q: %v", sel, err)
	}
	return series, field, nil
}

// ParseRules parses a rules file. Line errors carry the 1-based line number.
func ParseRules(src string) ([]Rule, error) {
	var rules []Rule
	seen := make(map[string]bool)
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		rule, err := parseRuleLine(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		if seen[rule.Name] {
			return nil, fmt.Errorf("line %d: duplicate rule %q", ln+1, rule.Name)
		}
		seen[rule.Name] = true
		rules = append(rules, rule)
	}
	return rules, nil
}

// parseRuleLine parses one tokenized rule line.
func parseRuleLine(f []string) (Rule, error) {
	if f[0] != "alert" || len(f) < 4 {
		return Rule{}, fmt.Errorf("want `alert <name> on|absent|burnrate <selector> ...`, got %q", strings.Join(f, " "))
	}
	r := Rule{Name: f[1]}
	rest := f[3:]
	switch f[2] {
	case "on":
		r.Cond = CondThreshold
		r.Series = rest[0]
		rest = rest[1:]
		var err error
		if rest, err = parseCmp(&r.Op, &r.Value, rest); err != nil {
			return Rule{}, fmt.Errorf("rule %s: %v", r.Name, err)
		}
	case "absent":
		r.Cond = CondAbsence
		r.Series = rest[0]
		rest = rest[1:]
	case "burnrate":
		r.Cond = CondBurnRate
		r.Series = rest[0]
		rest = rest[1:]
		if len(rest) >= 2 && rest[0] == "above" {
			v, err := parseValue(rest[1])
			if err != nil {
				return Rule{}, fmt.Errorf("rule %s: bad bound %q: %v", r.Name, rest[1], err)
			}
			r.Bound = v
			rest = rest[2:]
		}
		var err error
		if rest, err = parseCmp(&r.Op, &r.Value, rest); err != nil {
			return Rule{}, fmt.Errorf("rule %s: %v", r.Name, err)
		}
	default:
		return Rule{}, fmt.Errorf("rule %s: unknown condition %q (want on, absent or burnrate)", r.Name, f[2])
	}

	// Trailing clauses, any order.
	for len(rest) > 0 {
		switch rest[0] {
		case "for", "resolveFor", "window":
			if len(rest) < 2 {
				return Rule{}, fmt.Errorf("rule %s: %s needs a duration", r.Name, rest[0])
			}
			d, err := time.ParseDuration(rest[1])
			if err != nil {
				return Rule{}, fmt.Errorf("rule %s: bad %s duration %q: %v", r.Name, rest[0], rest[1], err)
			}
			switch rest[0] {
			case "for":
				r.For = d
			case "resolveFor":
				r.ResolveFor = d
			case "window":
				r.Window = d
			}
			rest = rest[2:]
		case "resolve":
			rest = rest[1:]
			var v float64
			var err error
			if rest, err = parseCmp(&r.ResolveOp, &v, rest); err != nil {
				return Rule{}, fmt.Errorf("rule %s: resolve: %v", r.Name, err)
			}
			r.ResolveValue = &v
		default:
			return Rule{}, fmt.Errorf("rule %s: unexpected token %q", r.Name, rest[0])
		}
	}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// parseCmp consumes `<op> <value>` from the token stream.
func parseCmp(op *string, value *float64, rest []string) ([]string, error) {
	if len(rest) < 2 || !validOp(rest[0]) {
		return nil, fmt.Errorf("want `<op> <value>` (op: > >= < <=), got %q", strings.Join(rest, " "))
	}
	v, err := parseValue(rest[1])
	if err != nil {
		return nil, fmt.Errorf("bad value %q: %v", rest[1], err)
	}
	*op = rest[0]
	*value = v
	return rest[2:], nil
}

// parseValue accepts a float or a Go duration (durations become nanoseconds,
// the scale of every fargo latency series).
func parseValue(s string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		return float64(d.Nanoseconds()), nil
	}
	return 0, fmt.Errorf("neither a number nor a duration")
}
