package alert

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"fargo/internal/core"
	"fargo/internal/flight"
	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/observatory"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

// --- harness -----------------------------------------------------------------

type msg struct{ Text string }

func (m *msg) Init(text string) { m.Text = text }
func (m *msg) Print() string    { return m.Text }

type cluster struct {
	t        testing.TB
	net      *netsim.Network
	cores    map[ids.CoreID]*core.Core
	faults   map[ids.CoreID]*transport.Faulty
	shutOnce sync.Once
}

func (cl *cluster) close() {
	cl.shutOnce.Do(func() {
		for _, c := range cl.cores {
			_ = c.Shutdown(0)
		}
		cl.net.Close()
	})
}

// newCluster builds named cores over one simulated network, each behind a
// fault-injecting transport wrapper so latency tests can slow peers down.
func newCluster(t testing.TB, names ...string) *cluster {
	t.Helper()
	cl := &cluster{
		t:      t,
		net:    netsim.NewNetwork(7),
		cores:  make(map[ids.CoreID]*core.Core, len(names)),
		faults: make(map[ids.CoreID]*transport.Faulty, len(names)),
	}
	for _, name := range names {
		id := ids.CoreID(name)
		reg := registry.New()
		if err := reg.Register("Msg", (*msg)(nil)); err != nil {
			t.Fatal(err)
		}
		tr, err := transport.NewSim(cl.net, id)
		if err != nil {
			t.Fatal(err)
		}
		faulty := transport.NewFaulty(tr, 1)
		faulty.SetLogf(func(string, ...any) {})
		c, err := core.New(faulty, reg, core.Options{
			RequestTimeout: 10 * time.Second,
			Logf:           func(string, ...any) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.cores[id] = c
		cl.faults[id] = faulty
	}
	t.Cleanup(cl.close)
	return cl
}

func (cl *cluster) core(name string) *core.Core { return cl.cores[ids.CoreID(name)] }

// manualEngine starts a loop-less engine (tests drive evalAt directly).
func manualEngine(t *testing.T, c *core.Core, rules ...Rule) *Engine {
	t.Helper()
	e, err := Start(c, Options{Rules: rules, Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

// collect subscribes and returns a pointer to the growing transition log.
func collect(e *Engine) *[]Event {
	var mu sync.Mutex
	var events []Event
	e.Subscribe(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	return &events
}

func flightKinds(c *core.Core) []string {
	var kinds []string
	for _, ev := range c.Flight().Snapshot(0) {
		if ev.Kind == flight.KindAlertFiring || ev.Kind == flight.KindAlertResolved {
			kinds = append(kinds, ev.Kind)
		}
	}
	return kinds
}

// --- grammar -----------------------------------------------------------------

func TestParseRules(t *testing.T) {
	src := `
# SLO rules for the demo deployment.
alert slow-print on method_latency_ns{method="Print",type="Msg"}:p99 > 50ms for 10s resolve < 10ms resolveFor 30s
alert no-scrapes absent cluster_invoke_latency_ns for 1m
alert burn burnrate cluster_method_latency_ns above 5ms > 0.25 window 2m for 5s
alert plain on queue_depth >= 100
`
	rules, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}

	r := rules[0]
	if r.Cond != CondThreshold || r.Field != "p99" || r.Op != ">" || r.Value != 50e6 {
		t.Fatalf("slow-print = %+v", r)
	}
	if r.Series != `method_latency_ns{method="Print",type="Msg"}` {
		t.Fatalf("slow-print series = %q", r.Series)
	}
	if r.For != 10*time.Second || r.ResolveFor != 30*time.Second {
		t.Fatalf("slow-print holds = %v / %v", r.For, r.ResolveFor)
	}
	if r.ResolveValue == nil || *r.ResolveValue != 10e6 || r.ResolveOp != "<" {
		t.Fatalf("slow-print resolve = %v %v", r.ResolveOp, r.ResolveValue)
	}

	if r := rules[1]; r.Cond != CondAbsence || r.Series != "cluster_invoke_latency_ns" || r.For != time.Minute {
		t.Fatalf("no-scrapes = %+v", r)
	}
	if r := rules[2]; r.Cond != CondBurnRate || r.Bound != 5e6 || r.Value != 0.25 || r.Window != 2*time.Minute {
		t.Fatalf("burn = %+v", r)
	}
	if r := rules[3]; r.Cond != CondThreshold || r.Op != ">=" || r.Value != 100 || r.Field != "" {
		t.Fatalf("plain = %+v", r)
	}
}

func TestParseRulesErrors(t *testing.T) {
	for _, bad := range []string{
		"alert",                                  // truncated
		"alert x maybe foo > 1",                  // unknown condition
		"alert x on foo ~ 1",                     // bad op
		"alert x on foo > banana",                // bad value
		"alert x on foo > 1 whenever 3s",         // unknown clause
		"alert x on foo > 1 for soon",            // bad duration
		"alert x on foo{bad > 1",                 // malformed selector
		"alert x on 9foo > 1",                    // invalid metric name
		"alert a on foo > 1\nalert a on bar > 2", // duplicate name
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}
}

func TestSelectorCanonicalization(t *testing.T) {
	// Label order in the rules file is irrelevant: both spellings canonicalize
	// to the registry's own sorted form.
	a, err := ParseRules(`alert x on m{b="2",a="1"}:p50 > 1`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseRules(`alert x on m{a="1",b="2"}:p50 > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Series != b[0].Series || a[0].Series != `m{a="1",b="2"}` {
		t.Fatalf("series = %q vs %q", a[0].Series, b[0].Series)
	}
}

// --- state machine -----------------------------------------------------------

// Threshold rule with For-hold and resolve hysteresis: fires only after the
// condition held for For, resolves only after the resolve condition held for
// ResolveFor, and oscillation between the two thresholds does not flap.
func TestThresholdHoldAndHysteresis(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	resolveBelow := 5.0
	e := manualEngine(t, a, Rule{
		Name:         "depth",
		Cond:         CondThreshold,
		Series:       "queue_depth",
		Op:           ">",
		Value:        10,
		For:          10 * time.Second,
		ResolveOp:    "<",
		ResolveValue: &resolveBelow,
		ResolveFor:   10 * time.Second,
	})
	events := collect(e)
	g := a.Metrics().Gauge("queue_depth")
	ctx := context.Background()
	t0 := time.Now()

	g.Set(20)
	e.evalAt(ctx, t0)
	if st := e.Status()[0]; st.State != StatePending {
		t.Fatalf("after first breach: state = %s, want pending", st.State)
	}
	// A dip before For elapses cancels the pending alert.
	g.Set(1)
	e.evalAt(ctx, t0.Add(5*time.Second))
	if st := e.Status()[0]; st.State != StateInactive {
		t.Fatalf("after dip: state = %s, want inactive", st.State)
	}
	// Breach again and hold it out.
	g.Set(20)
	e.evalAt(ctx, t0.Add(6*time.Second))
	e.evalAt(ctx, t0.Add(17*time.Second))
	if st := e.Status()[0]; st.State != StateFiring {
		t.Fatalf("after hold: state = %s, want firing", st.State)
	}
	if len(*events) != 1 || !(*events)[0].Firing || (*events)[0].Rule != "depth" {
		t.Fatalf("events = %+v, want one firing", *events)
	}
	if got := e.Firing(); len(got) != 1 || got[0] != "depth" {
		t.Fatalf("Firing() = %v", got)
	}

	// Hysteresis: dropping below the firing threshold but above the resolve
	// threshold keeps the alert firing.
	g.Set(7)
	e.evalAt(ctx, t0.Add(18*time.Second))
	e.evalAt(ctx, t0.Add(40*time.Second))
	if st := e.Status()[0]; st.State != StateFiring {
		t.Fatalf("between thresholds: state = %s, want firing", st.State)
	}
	// Below the resolve threshold, but bouncing back resets the resolve hold.
	g.Set(1)
	e.evalAt(ctx, t0.Add(41*time.Second))
	g.Set(7)
	e.evalAt(ctx, t0.Add(45*time.Second))
	g.Set(1)
	e.evalAt(ctx, t0.Add(46*time.Second))
	e.evalAt(ctx, t0.Add(50*time.Second))
	if st := e.Status()[0]; st.State != StateResolving {
		t.Fatalf("resolve hold reset: state = %s, want resolving (reset at 46s)", st.State)
	}
	e.evalAt(ctx, t0.Add(57*time.Second))
	if st := e.Status()[0]; st.State != StateInactive {
		t.Fatalf("after resolve hold: state = %s, want inactive", st.State)
	}
	if len(*events) != 2 || (*events)[1].Firing {
		t.Fatalf("events = %+v, want firing then resolved", *events)
	}

	// Both transitions are flight events, so they interleave with moves and
	// repairs on the merged timeline.
	kinds := flightKinds(a)
	if len(kinds) != 2 || kinds[0] != flight.KindAlertFiring || kinds[1] != flight.KindAlertResolved {
		t.Fatalf("flight kinds = %v", kinds)
	}
}

// Absence rules fire while the series does not exist and resolve once it
// appears.
func TestAbsenceRule(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	e := manualEngine(t, a, Rule{Name: "gone", Cond: CondAbsence, Series: "heartbeat_total"})
	ctx := context.Background()
	t0 := time.Now()

	e.evalAt(ctx, t0)
	if st := e.Status()[0]; st.State != StateFiring {
		t.Fatalf("absent series: state = %s, want firing (For 0)", st.State)
	}
	a.Metrics().Counter("heartbeat_total").Inc()
	e.evalAt(ctx, t0.Add(time.Second))
	if st := e.Status()[0]; st.State != StateInactive {
		t.Fatalf("series appeared: state = %s, want inactive", st.State)
	}
}

// :rate turns a cumulative counter into a per-second rate between passes.
func TestCounterRateField(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	e := manualEngine(t, a, Rule{
		Name: "hot", Cond: CondThreshold, Series: "ticks_total", Field: "rate", Op: ">", Value: 50,
	})
	ctx := context.Background()
	t0 := time.Now()
	c := a.Metrics().Counter("ticks_total")

	c.Add(1000)
	e.evalAt(ctx, t0) // first pass: no previous observation, rate 0
	if st := e.Status()[0]; st.State != StateInactive {
		t.Fatalf("first pass: state = %s, want inactive", st.State)
	}
	c.Add(1000) // 1000 in 10s = 100/s
	e.evalAt(ctx, t0.Add(10*time.Second))
	if st := e.Status()[0]; st.State != StateFiring || st.Value != 100 {
		t.Fatalf("second pass: state = %s value = %v, want firing at 100", st.State, st.Value)
	}
	e.evalAt(ctx, t0.Add(20*time.Second)) // no new ticks: rate 0, resolves
	if st := e.Status()[0]; st.State != StateInactive {
		t.Fatalf("idle pass: state = %s, want inactive", st.State)
	}
}

// --- burn rate under injected latency ----------------------------------------

// The headline resolvability scenario: latency injected at the transport
// drives the burn rate over threshold and the alert fires; clearing the fault
// lets fresh fast traffic push the windowed burn rate back down, and the
// alert resolves — something a lifetime-quantile threshold can never do.
func TestBurnRateFiresAndResolvesUnderFaultyTransport(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "hi")
	if err != nil {
		t.Fatal(err)
	}
	e := manualEngine(t, a, Rule{
		Name:   "slow-invokes",
		Cond:   CondBurnRate,
		Series: "invoke_latency_ns",
		Bound:  10e6, // 10ms
		Op:     ">",
		Value:  0.5,
		Window: 5 * time.Second,
	})
	events := collect(e)
	ctx := context.Background()
	t0 := time.Now()
	e.evalAt(ctx, t0) // baseline observation

	cl.faults["a"].SetDelay("b", 30*time.Millisecond)
	for i := 0; i < 5; i++ {
		if _, err := r.Invoke("Print"); err != nil {
			t.Fatal(err)
		}
	}
	e.evalAt(ctx, t0.Add(time.Second))
	st := e.Status()[0]
	if st.State != StateFiring {
		t.Fatalf("slow traffic: state = %s value = %v, want firing", st.State, st.Value)
	}
	if st.Value <= 0.5 {
		t.Fatalf("burn rate = %v, want > 0.5", st.Value)
	}

	// Heal the transport; fast traffic in a fresh window dilutes the burn
	// rate to ~0 even though the lifetime p95 stays stuck at ~30ms.
	cl.faults["a"].Clear("b")
	for i := 0; i < 40; i++ {
		if _, err := r.Invoke("Print"); err != nil {
			t.Fatal(err)
		}
	}
	e.evalAt(ctx, t0.Add(30*time.Second)) // old window evicted: delta covers only fast traffic
	if st := e.Status()[0]; st.State != StateInactive {
		t.Fatalf("after recovery: state = %s value = %v, want inactive", st.State, st.Value)
	}
	if len(*events) != 2 || !(*events)[0].Firing || (*events)[1].Firing {
		t.Fatalf("events = %+v, want fire then resolve", *events)
	}
	kinds := flightKinds(a)
	if len(kinds) != 2 || kinds[0] != flight.KindAlertFiring || kinds[1] != flight.KindAlertResolved {
		t.Fatalf("flight kinds = %v", kinds)
	}
}

// --- cluster_ selectors ------------------------------------------------------

// cluster_ selectors resolve through the core's observatory: the rule reads
// the federated model, not any local series.
func TestClusterSelectorThroughObservatory(t *testing.T) {
	cl := newCluster(t, "a", "b", "c")
	a := cl.core("a")
	o, err := observatory.Start(a, observatory.Options{
		Cores: []ids.CoreID{"a", "b", "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Stop()
	e := manualEngine(t, a, Rule{
		Name: "quorum", Cond: CondThreshold, Series: "cluster_members_up", Op: "<", Value: 3,
	})
	ctx := context.Background()
	t0 := time.Now()

	e.evalAt(ctx, t0)
	if st := e.Status()[0]; st.State != StateInactive {
		t.Fatalf("full membership: state = %s (value %v, present %v), want inactive", st.State, st.Value, st.Present)
	}
	// Kill c; the next refresh flags it unreachable and the rule fires.
	_ = cl.core("c").Shutdown(0)
	waitFor(t, 5*time.Second, func() bool {
		_ = o.Refresh(ctx)
		e.evalAt(ctx, time.Now())
		return e.Status()[0].State == StateFiring
	})
}

// A cluster_ rule on a core with no observatory sees an absent series — it
// must not panic, and an absence rule catches the misconfiguration.
func TestClusterSelectorWithoutObservatory(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	e := manualEngine(t, a, Rule{
		Name: "blind", Cond: CondAbsence, Series: "cluster_members",
	})
	e.evalAt(context.Background(), time.Now())
	if st := e.Status()[0]; st.State != StateFiring || st.Present {
		t.Fatalf("no observatory: state = %s present = %v, want firing/absent", st.State, st.Present)
	}
}

// --- engine lifecycle --------------------------------------------------------

func TestEngineRegistryAndLifecycle(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	e, err := Start(a, Options{Interval: -1, Rules: []Rule{
		{Name: "x", Cond: CondThreshold, Series: "foo", Op: ">", Value: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := For(a); !ok || got != e {
		t.Fatalf("For = %v, %v", got, ok)
	}
	if _, err := Start(a, Options{Interval: -1}); err == nil {
		t.Fatal("second engine on the same core accepted")
	}
	e.Stop()
	if _, ok := For(a); ok {
		t.Fatal("engine still registered after Stop")
	}
	if _, err := Start(a, Options{Interval: -1}); err != nil {
		t.Fatalf("re-attach after Stop: %v", err)
	}
}

func TestStartRejectsBadRule(t *testing.T) {
	cl := newCluster(t, "a")
	if _, err := Start(cl.core("a"), Options{Interval: -1, Rules: []Rule{
		{Name: "bad", Cond: CondThreshold, Series: "foo", Op: "~", Value: 1},
	}}); err == nil || !strings.Contains(err.Error(), "bad op") {
		t.Fatalf("bad rule accepted: %v", err)
	}
}

// The background loop evaluates without manual driving.
func TestEngineLoop(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	a.Metrics().Gauge("pressure").Set(9)
	e, err := Start(a, Options{Interval: 10 * time.Millisecond, Rules: []Rule{
		{Name: "pressure", Cond: CondThreshold, Series: "pressure", Op: ">", Value: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	waitFor(t, 5*time.Second, func() bool {
		return len(e.Firing()) == 1
	})
	a.Metrics().Gauge("pressure").Set(1)
	waitFor(t, 5*time.Second, func() bool {
		return len(e.Firing()) == 0
	})
}

func waitFor(t testing.TB, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
