package alert

import (
	"fmt"

	"fargo/internal/core"
	"fargo/internal/script"
)

// Script integration: `on alert as $rule do ... end` (§4.3). The engine
// registers itself as a script event source, so a layout rule can react to a
// firing alert — typically by moving the implicated complet or invoking the
// planner — the same way it reacts to a core failure. The source bound by
// `as` is the alert rule's name; resolutions do not fire script rules (a
// layout reaction to "back to normal" is rarely meaningful, and scripts that
// need it can watch /cluster/alerts).
//
// Registration follows the planner's RegisterAction pattern: alert imports
// script, never the reverse, so linking the alert engine into a binary is
// what makes `on alert` available there.
func init() {
	err := script.RegisterEventSource("alert", func(rt script.Runtime, atCores []string, fire func(source string)) (func(), error) {
		if len(atCores) > 0 {
			return nil, fmt.Errorf("script: `on alert` listens to this core's alert engine; listenAt is not supported")
		}
		cp, ok := rt.(interface{ Core() *core.Core })
		if !ok {
			return nil, fmt.Errorf("script: `on alert` needs a core-backed runtime")
		}
		e, ok := For(cp.Core())
		if !ok {
			return nil, fmt.Errorf("script: `on alert` needs an alert engine on core %s (start one with fargo.StartAlerts or -alerts)", cp.Core().ID())
		}
		return e.Subscribe(func(ev Event) {
			if ev.Firing {
				fire(ev.Rule)
			}
		}), nil
	})
	if err != nil {
		panic(err)
	}
}
