// Package flight implements the layout flight recorder: a bounded,
// lock-cheap ring of the last N layout-relevant occurrences at one core —
// movements (with duration and bundle size), tracker-chain repairs, circuit
// breaker transitions, transparent retries, hop-budget trips, and
// subscription firings. It answers the post-mortem question the live metrics
// cannot: not "how many moves happened" but "which moves, in what order, and
// why does the layout look the way it does now".
//
// The recorder is always on (recording is a mutex-guarded slice store, far
// off any hot path's critical section) and strictly bounded, so it is safe
// to leave enabled in production. Sequence numbers are per-recorder and
// strictly monotonic: two events from the same core are causally ordered by
// Seq even when their wall-clock timestamps collide.
package flight

import (
	"sync"
	"time"
)

// Event kinds recorded by the core.
const (
	// KindMove records one outgoing movement bundle: Complet is the moved
	// root, Peer the destination, Bytes the bundle size, Duration the
	// owner-side protocol time, Detail the complet count.
	KindMove = "move"
	// KindMoveFailed records a movement bundle that did not install.
	KindMoveFailed = "moveFailed"
	// KindRepair records a successful tracker-chain repair: Detail is
	// "<dead hop> -> <new location>".
	KindRepair = "repair"
	// KindRepairFailed records a repair attempt that could not route around
	// the dead hop.
	KindRepairFailed = "repairFailed"
	// KindBreakerOpen records a peer circuit opening (Peer names the
	// suspected core).
	KindBreakerOpen = "breakerOpen"
	// KindBreakerClosed records a peer circuit closing again.
	KindBreakerClosed = "breakerClosed"
	// KindRetry records one transparent retry of an idempotent request
	// (Peer is the destination, Detail the request kind and attempt).
	KindRetry = "retry"
	// KindHopBudget records a tracker-chain hop budget trip (Detail is the
	// operation that exhausted it).
	KindHopBudget = "hopBudget"
	// KindSubscription records one monitoring-event delivery to a
	// subscriber (Detail is the event name).
	KindSubscription = "subscription"
	// KindMoveRecovered records a move the recovery manager completed after
	// a crash: the destination had installed, so the local copy was
	// released and trackers repointed (Peer is the destination).
	KindMoveRecovered = "moveRecovered"
	// KindMoveRolledBack records a move the recovery manager rolled back:
	// the destination durably refused the epoch, so the local copy stays
	// authoritative.
	KindMoveRolledBack = "moveRolledBack"
	// KindPlanApplied records one planner-actuated move: Complet is the
	// moved complet, Peer the destination, Detail the estimated gain.
	KindPlanApplied = "planApplied"
	// KindPlanSkipped records a planner decision not to act — dry-run,
	// below the min-gain threshold, cooldown, capacity, or a failed
	// actuation (Detail carries the reason).
	KindPlanSkipped = "planSkipped"
	// KindAlertFiring records an alert rule entering the firing state
	// (Complet is the rule name, Detail the observed value and condition).
	KindAlertFiring = "alertFiring"
	// KindAlertResolved records a firing alert rule returning to normal.
	KindAlertResolved = "alertResolved"
)

// Event is one recorded occurrence.
type Event struct {
	// Seq is the per-recorder causal sequence number: strictly monotonic,
	// starting at 1, so zero unambiguously means "no event" and "everything
	// after Seq s" filters need no sentinel.
	Seq uint64 `json:"seq"`
	// At is the wall-clock record time.
	At time.Time `json:"at"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Complet names the involved complet, when any.
	Complet string `json:"complet,omitempty"`
	// Peer names the involved peer core, when any.
	Peer string `json:"peer,omitempty"`
	// Detail carries kind-specific context.
	Detail string `json:"detail,omitempty"`
	// DurationNanos is the operation duration, when measured.
	DurationNanos int64 `json:"duration_ns,omitempty"`
	// Bytes is the payload size, when known (move bundles).
	Bytes int `json:"bytes,omitempty"`
	// Err is the failure message for *Failed kinds.
	Err string `json:"err,omitempty"`
}

// DefaultCapacity is the ring size used when a Recorder is constructed with
// a non-positive capacity.
const DefaultCapacity = 512

// Recorder is a bounded ring of Events. The zero value is not ready; use
// New. All methods are nil-safe so instrumented code never branches.
type Recorder struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // last assigned sequence number (also the count of events ever seen)
	head int    // index of the oldest retained event
	n    int    // retained count
}

// New returns a recorder retaining the last capacity events
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record stores one event, stamping Seq and (when zero) At. Oldest events
// are evicted once the ring is full. At is stamped under the same lock that
// assigns Seq, so for runtime-stamped events Seq order and At order agree —
// a merged cross-core timeline can sort by time without reordering any one
// core's causal sequence. (Callers that pass their own At keep it and forgo
// that guarantee.)
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	r.next++
	ev.Seq = r.next
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = ev
		r.n++
		return
	}
	r.buf[r.head] = ev
	r.head = (r.head + 1) % len(r.buf)
}

// Snapshot returns the retained events oldest-first. max > 0 limits the
// result to the newest max events.
func (r *Recorder) Snapshot(max int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]Event, n)
	// The newest n events end at head+r.n-1.
	start := r.head + r.n - n
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// Len reports how many events are retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Total reports how many events were ever recorded (retained or evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}
