package flight

import (
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshotOrder(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindMove, Detail: string(rune('a' + i))})
	}
	evs := r.Snapshot(0)
	if len(evs) != 5 {
		t.Fatalf("len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("seq[%d] = %d", i, ev.Seq)
		}
		if ev.At.IsZero() {
			t.Fatalf("event %d has zero timestamp", i)
		}
		if i > 0 && evs[i].At.Before(evs[i-1].At) {
			t.Fatalf("timestamps out of order at %d", i)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindRetry})
	}
	evs := r.Snapshot(0)
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("retained seqs %d..%d, want 6..9", evs[0].Seq, evs[3].Seq)
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
}

func TestSnapshotMax(t *testing.T) {
	r := New(16)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindMove})
	}
	evs := r.Snapshot(3)
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	if evs[0].Seq != 7 || evs[2].Seq != 9 {
		t.Fatalf("newest-3 seqs = %d..%d, want 7..9", evs[0].Seq, evs[2].Seq)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindMove}) // must not panic
	if got := r.Snapshot(0); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("nil recorder reports events")
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := New(0)
	for i := 0; i < DefaultCapacity+10; i++ {
		r.Record(Event{Kind: KindMove})
	}
	if r.Len() != DefaultCapacity {
		t.Fatalf("Len = %d, want %d", r.Len(), DefaultCapacity)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindRetry, At: time.Now()})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
	evs := r.Snapshot(0)
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d -> %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
