package flight

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshotOrder(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindMove, Detail: string(rune('a' + i))})
	}
	evs := r.Snapshot(0)
	if len(evs) != 5 {
		t.Fatalf("len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i)+1 {
			t.Fatalf("seq[%d] = %d", i, ev.Seq)
		}
		if ev.At.IsZero() {
			t.Fatalf("event %d has zero timestamp", i)
		}
		if i > 0 && evs[i].At.Before(evs[i-1].At) {
			t.Fatalf("timestamps out of order at %d", i)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindRetry})
	}
	evs := r.Snapshot(0)
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("retained seqs %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
}

func TestSnapshotMax(t *testing.T) {
	r := New(16)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindMove})
	}
	evs := r.Snapshot(3)
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	if evs[0].Seq != 8 || evs[2].Seq != 10 {
		t.Fatalf("newest-3 seqs = %d..%d, want 8..10", evs[0].Seq, evs[2].Seq)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindMove}) // must not panic
	if got := r.Snapshot(0); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("nil recorder reports events")
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := New(0)
	for i := 0; i < DefaultCapacity+10; i++ {
		r.Record(Event{Kind: KindMove})
	}
	if r.Len() != DefaultCapacity {
		t.Fatalf("Len = %d, want %d", r.Len(), DefaultCapacity)
	}
}

// TestConcurrentSnapshotDuringRecord hammers Record from several goroutines
// while continuously snapshotting, and checks every snapshot for the ring's
// read invariants: strictly ascending contiguous Seq (no duplicates, no torn
// or half-evicted entries), non-decreasing At alongside Seq (Record stamps
// both under one critical section), and internally consistent events (Detail
// must match the Seq it was recorded with — a torn read would pair one
// event's Seq with another's payload). Run with -race.
func TestConcurrentSnapshotDuringRecord(t *testing.T) {
	r := New(128)
	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	recorded := make(map[string]bool) // Detail strings handed to Record
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := fmt.Sprintf("w%d-%d", g, i)
				mu.Lock()
				recorded[d] = true
				mu.Unlock()
				r.Record(Event{Kind: KindRetry, Detail: d})
			}
		}(g)
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	snaps := 0
	for time.Now().Before(deadline) {
		evs := r.Snapshot(0)
		snaps++
		for i, ev := range evs {
			if ev.Seq == 0 {
				t.Fatalf("snapshot %d: event %d has unassigned Seq (torn entry): %+v", snaps, i, ev)
			}
			if i > 0 {
				prev := evs[i-1]
				if ev.Seq != prev.Seq+1 {
					t.Fatalf("snapshot %d: seq %d -> %d (not contiguous)", snaps, prev.Seq, ev.Seq)
				}
				if ev.At.Before(prev.At) {
					t.Fatalf("snapshot %d: At regresses between seq %d and %d", snaps, prev.Seq, ev.Seq)
				}
			}
			if ev.Kind != KindRetry || ev.Detail == "" {
				t.Fatalf("snapshot %d: torn event payload: %+v", snaps, ev)
			}
			mu.Lock()
			ok := recorded[ev.Detail]
			mu.Unlock()
			if !ok {
				t.Fatalf("snapshot %d: event carries a Detail never recorded: %q", snaps, ev.Detail)
			}
		}
	}
	close(stop)
	wg.Wait()
	if snaps < 10 {
		t.Fatalf("only %d snapshots taken; hammer did not overlap appends", snaps)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindRetry, At: time.Now()})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
	evs := r.Snapshot(0)
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d -> %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
