package ids

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCompletIDsUnique(t *testing.T) {
	m := NewCompletIDs("alpha")
	seen := make(map[CompletID]bool)
	for i := 0; i < 1000; i++ {
		id := m.Next()
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
		if id.Birth != "alpha" {
			t.Fatalf("birth core = %q, want alpha", id.Birth)
		}
	}
}

func TestCompletIDsConcurrent(t *testing.T) {
	m := NewCompletIDs("alpha")
	const (
		goroutines = 8
		perG       = 500
	)
	var (
		mu   sync.Mutex
		seen = make(map[CompletID]bool, goroutines*perG)
		wg   sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]CompletID, 0, perG)
			for i := 0; i < perG; i++ {
				local = append(local, m.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate id %v", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d unique ids, want %d", len(seen), goroutines*perG)
	}
}

func TestSequencerStartsAtOne(t *testing.T) {
	var s Sequencer
	if got := s.Next(); got != 1 {
		t.Fatalf("first Next() = %d, want 1", got)
	}
	if got := s.Next(); got != 2 {
		t.Fatalf("second Next() = %d, want 2", got)
	}
}

func TestSequencerAdvance(t *testing.T) {
	var s Sequencer
	s.Advance(10)
	if got := s.Next(); got != 11 {
		t.Fatalf("Next after Advance(10) = %d, want 11", got)
	}
	s.Advance(5) // never goes backwards
	if got := s.Next(); got != 12 {
		t.Fatalf("Next after backwards Advance = %d, want 12", got)
	}
	if got := s.Current(); got != 12 {
		t.Fatalf("Current = %d, want 12", got)
	}
}

func TestCompletIDsAdvance(t *testing.T) {
	m := NewCompletIDs("core")
	m.Advance(7)
	if got := m.Next(); got.Seq != 8 {
		t.Fatalf("Seq after Advance(7) = %d, want 8", got.Seq)
	}
	if m.Current() != 8 {
		t.Fatalf("Current = %d", m.Current())
	}
}

func TestCompletIDString(t *testing.T) {
	id := CompletID{Birth: "core-1", Seq: 42}
	if got, want := id.String(), "core-1/#42"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestNil(t *testing.T) {
	if !(CompletID{}).Nil() {
		t.Error("zero CompletID should be Nil")
	}
	if (CompletID{Birth: "x"}).Nil() {
		t.Error("non-zero CompletID should not be Nil")
	}
	if !CoreID("").Nil() {
		t.Error("empty CoreID should be Nil")
	}
	if CoreID("a").Nil() {
		t.Error("non-empty CoreID should not be Nil")
	}
}

func TestEncodeDecodeCompletID(t *testing.T) {
	roundtrip := func(name string, seq uint64) bool {
		id := CompletID{Birth: CoreID(name), Seq: seq}
		got, err := DecodeCompletID(EncodeCompletID(id))
		return err == nil && got == id
	}
	if err := quick.Check(roundtrip, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCompletIDErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{0, 5, 'a'},                            // claims 5-byte name, truncated
		{0, 1, 'a', 0, 0, 0, 0, 0, 0, 0},       // 7-byte seq
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xf}, // trailing garbage
	}
	for i, b := range cases {
		if _, err := DecodeCompletID(b); err == nil {
			t.Errorf("case %d: expected error for %v", i, b)
		}
	}
}

func TestRandomToken(t *testing.T) {
	a, err := RandomToken(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomToken(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("token lengths = %d, %d; want 32", len(a), len(b))
	}
	if a == b {
		t.Fatal("two random tokens collided")
	}
}
