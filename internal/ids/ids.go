// Package ids provides unique identifiers for cores, complets, references
// and requests. Identifiers are small, comparable values suitable for use as
// map keys and for transmission on the wire.
//
// A CompletID embeds the ID of the core that created the complet together
// with a per-core sequence number, so IDs are globally unique without any
// coordination between cores, and remain stable as the complet migrates.
package ids

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// CoreID identifies a core (a stationary runtime instance). Cores are named
// by the administrator (e.g. "accadia" in the paper); the name doubles as the
// identifier because cores are stationary.
type CoreID string

// Nil reports whether the CoreID is the zero value.
func (c CoreID) Nil() bool { return c == "" }

// String returns the core name.
func (c CoreID) String() string { return string(c) }

// CompletID uniquely identifies a complet instance across the whole
// deployment. The Birth core is where the complet was instantiated; it never
// changes as the complet moves.
type CompletID struct {
	Birth CoreID
	Seq   uint64
}

// Nil reports whether the CompletID is the zero value.
func (c CompletID) Nil() bool { return c.Birth.Nil() && c.Seq == 0 }

// String renders the ID as "<birth-core>/#<seq>".
func (c CompletID) String() string {
	return fmt.Sprintf("%s/#%d", c.Birth, c.Seq)
}

// RequestID correlates an RPC request with its response.
type RequestID uint64

// Sequencer produces monotonically increasing sequence numbers. The zero
// value is ready to use and safe for concurrent use.
type Sequencer struct {
	n atomic.Uint64
}

// Next returns the next sequence number, starting at 1.
func (s *Sequencer) Next() uint64 { return s.n.Add(1) }

// Current returns the most recently issued sequence number (0 if none).
func (s *Sequencer) Current() uint64 { return s.n.Load() }

// Advance raises the sequence so that future Next calls return numbers
// strictly greater than to. Used when restoring persisted identities.
func (s *Sequencer) Advance(to uint64) {
	for {
		cur := s.n.Load()
		if cur >= to {
			return
		}
		if s.n.CompareAndSwap(cur, to) {
			return
		}
	}
}

// CompletIDs mints CompletIDs for a single core.
type CompletIDs struct {
	core CoreID
	seq  Sequencer
}

// NewCompletIDs returns a minter for complets born on the given core.
func NewCompletIDs(core CoreID) *CompletIDs {
	return &CompletIDs{core: core}
}

// Next mints a fresh CompletID.
func (m *CompletIDs) Next() CompletID {
	return CompletID{Birth: m.core, Seq: m.seq.Next()}
}

// Current returns the most recently minted sequence number (0 if none).
func (m *CompletIDs) Current() uint64 { return m.seq.Current() }

// Advance ensures future IDs use sequence numbers beyond to (restore
// support: never re-issue a persisted identity).
func (m *CompletIDs) Advance(to uint64) { m.seq.Advance(to) }

// RandomToken returns a hex-encoded random token of 2n characters. It is used
// where an unguessable identifier is preferable to a sequential one (e.g.
// listener registrations that outlive reconnects).
func RandomToken(n int) (string, error) {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		return "", fmt.Errorf("random token: %w", err)
	}
	return hex.EncodeToString(buf), nil
}

// EncodeCompletID packs a CompletID into a byte slice (for wire use where a
// fixed binary form is convenient). The layout is:
//
//	[2-byte big-endian name length][name bytes][8-byte big-endian seq]
func EncodeCompletID(id CompletID) []byte {
	name := []byte(id.Birth)
	out := make([]byte, 2+len(name)+8)
	binary.BigEndian.PutUint16(out, uint16(len(name)))
	copy(out[2:], name)
	binary.BigEndian.PutUint64(out[2+len(name):], id.Seq)
	return out
}

// DecodeCompletID unpacks a CompletID encoded by EncodeCompletID.
func DecodeCompletID(b []byte) (CompletID, error) {
	if len(b) < 2 {
		return CompletID{}, fmt.Errorf("decode complet id: short buffer (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) != 2+n+8 {
		return CompletID{}, fmt.Errorf("decode complet id: want %d bytes, have %d", 2+n+8, len(b))
	}
	return CompletID{
		Birth: CoreID(b[2 : 2+n]),
		Seq:   binary.BigEndian.Uint64(b[2+n:]),
	}, nil
}
