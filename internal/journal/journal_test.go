package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fargo/internal/ids"
)

func testRecords() []Record {
	root := ids.CompletID{Birth: "a", Seq: 1}
	other := ids.CompletID{Birth: "a", Seq: 2}
	return []Record{
		{Op: OpPrepare, Epoch: 1, Source: "a", Dest: "b", Root: root, Complets: []ids.CompletID{root, other}},
		{Op: OpInstall, Epoch: 1, Source: "a", Dest: "b", Root: root, Complets: []ids.CompletID{root, other}, Payload: []byte("bundle-bytes")},
		{Op: OpCommit, Epoch: 1, Source: "a", Dest: "b", Root: root, Complets: []ids.CompletID{root, other}},
		{Op: OpAbort, Epoch: 2, Source: "a", Dest: "c", Root: other, Complets: []ids.CompletID{other}},
		{Op: OpRefuse, Epoch: 7, Source: "c", Root: root},
	}
}

func writeJournal(t *testing.T, path string, recs []Record) {
	t.Helper()
	j, replayed, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(replayed))
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "move.journal")
	want := testRecords()
	writeJournal(t, path, want)

	j, got, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Epoch != want[i].Epoch ||
			got[i].Source != want[i].Source || got[i].Dest != want[i].Dest ||
			got[i].Root != want[i].Root || len(got[i].Complets) != len(want[i].Complets) ||
			!bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
		if got[i].UnixNanos == 0 {
			t.Errorf("record %d: append did not stamp UnixNanos", i)
		}
	}
	if j.Records() != uint64(len(want)) {
		t.Errorf("Records() = %d, want %d", j.Records(), len(want))
	}

	// Appending after a reopen must extend the log.
	if err := j.Append(Record{Op: OpCommit, Epoch: 9, Source: "a", Dest: "b"}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	j.Close()
	_, got2, err := Open(path)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	if len(got2) != len(want)+1 {
		t.Fatalf("after extra append: %d records, want %d", len(got2), len(want)+1)
	}
}

// TestTruncatedTail simulates a crash mid-append: every prefix of the file
// must replay to some prefix of the record sequence, and Open must truncate
// the torn bytes so the journal stays appendable.
func TestTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	want := testRecords()
	writeJournal(t, full, want)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for cut := len(Magic); cut < len(data); cut += 7 {
		recs, err := Replay(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) > len(want) {
			t.Fatalf("cut %d: %d records from a prefix of %d", cut, len(recs), len(want))
		}
		for i, r := range recs {
			if r.Op != want[i].Op || r.Epoch != want[i].Epoch {
				t.Fatalf("cut %d: record %d decoded as %+v", cut, i, r)
			}
		}
	}

	// Open on a torn file truncates and appends cleanly.
	torn := filepath.Join(dir, "torn.journal")
	if err := os.WriteFile(torn, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := Open(torn)
	if err != nil {
		t.Fatalf("Open torn: %v", err)
	}
	if len(recs) != len(want)-1 {
		t.Fatalf("torn journal replayed %d records, want %d", len(recs), len(want)-1)
	}
	if err := j.Append(Record{Op: OpAbort, Epoch: 11, Source: "a"}); err != nil {
		t.Fatalf("append after torn open: %v", err)
	}
	j.Close()
	_, recs, err = Open(torn)
	if err != nil {
		t.Fatalf("reopen repaired: %v", err)
	}
	if len(recs) != len(want) {
		t.Fatalf("repaired journal replayed %d records, want %d", len(recs), len(want))
	}
	if last := recs[len(recs)-1]; last.Op != OpAbort || last.Epoch != 11 {
		t.Fatalf("last record = %+v, want the post-repair abort", last)
	}
}

// TestCorruptRecord flips bytes inside a record body: replay must stop at the
// last record before the corruption, never decode garbage.
func TestCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.journal")
	want := testRecords()
	writeJournal(t, path, want)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte somewhere in the middle of the file (past the magic
	// and the first record's frame, so at least one record survives).
	pos := len(data) / 2
	data[pos] ^= 0xff
	recs, err := Replay(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Replay corrupt: %v", err)
	}
	if len(recs) >= len(want) {
		t.Fatalf("corruption at %d went undetected: %d records", pos, len(recs))
	}
	for i, r := range recs {
		if r.Op != want[i].Op || r.Epoch != want[i].Epoch {
			t.Fatalf("record %d decoded as %+v after corruption later in file", i, r)
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Replay(bytes.NewReader([]byte("not a journal at all"))); !errors.Is(err, ErrNotJournal) {
		t.Fatalf("Replay of garbage: err = %v, want ErrNotJournal", err)
	}
	if _, err := Replay(bytes.NewReader(nil)); !errors.Is(err, ErrNotJournal) {
		t.Fatalf("Replay of empty input: err = %v, want ErrNotJournal", err)
	}
}

// FuzzJournalReplay feeds arbitrary bytes to Replay: it must never panic, and
// replay must be deterministic — the same input always yields the same record
// count.
func FuzzJournalReplay(f *testing.F) {
	path := filepath.Join(f.TempDir(), "seed.journal")
	j, _, err := Open(path)
	if err != nil {
		f.Fatal(err)
	}
	root := ids.CompletID{Birth: "a", Seq: 1}
	for _, rec := range []Record{
		{Op: OpPrepare, Epoch: 1, Source: "a", Dest: "b", Root: root, Complets: []ids.CompletID{root}},
		{Op: OpInstall, Epoch: 1, Source: "a", Root: root, Payload: bytes.Repeat([]byte{0xab}, 64)},
		{Op: OpCommit, Epoch: 1, Source: "a", Dest: "b", Root: root},
	} {
		if err := j.Append(rec); err != nil {
			f.Fatal(err)
		}
	}
	j.Close()
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])     // torn tail
	f.Add(seed[:len(Magic)])      // header only
	f.Add([]byte(Magic + "junk")) // torn frame header
	f.Add([]byte("random rubbish"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Replay(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrNotJournal) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		again, err2 := Replay(bytes.NewReader(data))
		if err2 != nil || len(again) != len(recs) {
			t.Fatalf("replay not deterministic: %d/%v then %d/%v", len(recs), err, len(again), err2)
		}
	})
}
