// Package journal implements the per-core write-ahead move journal: an
// append-only, fsync'd log of movement-protocol records that makes complet
// relocation crash-safe. The source core journals PREPARE before shipping a
// bundle and COMMIT (or ABORT) after the outcome is known; the destination
// journals INSTALL — carrying the full bundle payload — before activating the
// arrivals, and REFUSE when it promises a recovering source that an epoch
// will never install. Replaying the journal on restart reconstructs exactly
// which moves were in flight, so the recovery manager (internal/core) can
// converge every complet back to one live copy.
//
// On-disk format: a fixed magic header followed by length-prefixed records —
// 4-byte big-endian body length, 4-byte IEEE CRC32 of the body, then the
// gob-encoded Record (internal/wire encoding). A torn or corrupt tail — the
// expected state after a crash mid-append — is detected by the length/CRC
// and replay stops cleanly at the last valid record; Open then truncates the
// tail so subsequent appends extend a well-formed log.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"fargo/internal/ids"
	"fargo/internal/wire"
)

// Magic identifies a fargo move journal.
const Magic = "fargo-movejournal-1\n"

// MaxRecord bounds one record body, guarding replay against a corrupt length
// prefix claiming gigabytes. Matches the wire layer's frame bound.
const MaxRecord = 256 << 20

// ErrNotJournal is returned when a file does not start with the journal
// magic.
var ErrNotJournal = errors.New("journal: bad magic")

// Op discriminates journal records — the states of the two-phase movement
// protocol (DESIGN.md §13).
type Op uint8

const (
	// OpPrepare: source side, appended before the bundle ships. The move
	// (Epoch, Dest, Complets) is now in flight until a COMMIT or ABORT with
	// the same epoch.
	OpPrepare Op = iota + 1
	// OpCommit: source side, appended after the destination acknowledged
	// installation. The complets now live at Dest.
	OpCommit
	// OpAbort: source side, appended when the move definitively did not
	// install (destination refused, or a recovery probe said so). The
	// complets stay here.
	OpAbort
	// OpInstall: destination side, appended before the arrivals activate.
	// Payload carries the raw encoded wire.MoveRequest so recovery can
	// re-install the complets even when the last checkpoint predates the
	// arrival.
	OpInstall
	// OpRefuse: destination side, a durable promise that the (Source,
	// Epoch) move will never install here — made when a recovery probe asks
	// about an epoch that has not installed, so a late bundle cannot
	// resurrect a move the source already rolled back.
	OpRefuse
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpPrepare:
		return "prepare"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpInstall:
		return "install"
	case OpRefuse:
		return "refuse"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Record is one journal entry.
type Record struct {
	Op Op
	// Epoch is the move epoch, minted by the source core; (Source, Epoch)
	// identifies one movement attempt globally.
	Epoch uint64
	// Source is the core that initiated the move (the journal owner for
	// source-side records, the peer for destination-side ones).
	Source ids.CoreID
	// Dest is the destination core (source-side records).
	Dest ids.CoreID
	// Root is the complet whose move was requested.
	Root ids.CompletID
	// Complets lists every complet travelling in the bundle (the root plus
	// pulled co-movers; duplicates are excluded — copies get fresh
	// identities and are never the last live copy).
	Complets []ids.CompletID
	// Payload is the raw encoded wire.MoveRequest (OpInstall only).
	Payload []byte
	// UnixNanos is the append time.
	UnixNanos int64
}

// Journal is an open, appendable move journal. Safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	n    uint64 // records in the file (replayed + appended)
}

// Open opens (creating if absent) the journal at path, replays every valid
// record, truncates any torn tail, and returns the journal positioned for
// appending along with the replayed records.
func Open(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: stat: %w", err)
	}
	if info.Size() == 0 {
		if _, err := f.WriteString(Magic); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: write magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: sync magic: %w", err)
		}
		return &Journal{f: f, path: path}, nil, nil
	}

	records, valid, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// A crash mid-append leaves a torn tail; cut it so new appends extend a
	// well-formed log.
	if valid < info.Size() {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seek: %w", err)
	}
	return &Journal{f: f, path: path, n: uint64(len(records))}, records, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Records reports how many records the journal holds.
func (j *Journal) Records() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Append durably appends one record: the frame is written and fsync'd before
// Append returns, so a record the caller has seen succeed survives a crash.
// A zero UnixNanos is stamped with the current time.
func (j *Journal) Append(rec Record) error {
	if j == nil {
		return nil
	}
	if rec.UnixNanos == 0 {
		rec.UnixNanos = time.Now().UnixNano()
	}
	body, err := wire.EncodePayload(rec)
	if err != nil {
		return fmt.Errorf("journal: encode %s record: %w", rec.Op, err)
	}
	frame := make([]byte, 8+len(body))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append %s record: %w", rec.Op, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s record: %w", rec.Op, err)
	}
	j.n++
	return nil
}

// Close closes the journal file. Further appends fail.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Replay decodes every valid record from r. A truncated or corrupt tail ends
// the replay cleanly — the records before it are returned with a nil error.
// Only a missing/incorrect magic header is an error.
func Replay(r io.Reader) ([]Record, error) {
	records, _, err := replay(r)
	return records, err
}

// replay reads records from r, returning them along with the byte offset of
// the end of the last valid record.
func replay(r io.Reader) ([]Record, int64, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrNotJournal, err)
	}
	if string(magic) != Magic {
		return nil, 0, ErrNotJournal
	}
	var (
		records []Record
		valid   = int64(len(Magic))
		header  [8]byte
	)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return records, valid, nil // clean end or torn header
		}
		size := binary.BigEndian.Uint32(header[0:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if size == 0 || size > MaxRecord {
			return records, valid, nil // corrupt length
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(r, body); err != nil {
			return records, valid, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != sum {
			return records, valid, nil // corrupt body
		}
		var rec Record
		if err := wire.DecodePayload(body, &rec); err != nil {
			return records, valid, nil // corrupt encoding with a lucky CRC
		}
		records = append(records, rec)
		valid += int64(8 + len(body))
	}
}
