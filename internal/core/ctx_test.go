package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fargo/internal/netsim"
	"fargo/internal/ref"
)

// --- cancellation -------------------------------------------------------------

func TestInvokeCtxCancelAbortsPendingInvoke(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "slow")
	if err != nil {
		t.Fatal(err)
	}
	// Make the link slow enough that the invocation is still in flight when
	// the caller cancels.
	if err := cl.net.SetLink("a", "b", netsim.LinkProfile{Latency: 400 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = r.InvokeCtx(ctx, "Print")
	elapsed := time.Since(start)
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InvokeError", err, err)
	}
	if ie.Cause != CauseCanceled {
		t.Fatalf("cause = %v, want canceled", ie.Cause)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("errors.Is(err, context.Canceled) should hold")
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("cancel did not abort the pending invoke (took %v)", elapsed)
	}
}

func TestMoveCtxCancelAbortsPendingMove(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "anchored")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.net.SetLink("a", "b", netsim.LinkProfile{Latency: 400 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = a.MoveCtx(ctx, r, "b")
	elapsed := time.Since(start)
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InvokeError", err, err)
	}
	if ie.Cause != CauseCanceled {
		t.Fatalf("cause = %v, want canceled", ie.Cause)
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("cancel did not abort the pending move (took %v)", elapsed)
	}
	// The sender keeps the complet when the move gives up: it must remain
	// installed and invocable on a.
	if a.CompletCount() != 1 {
		t.Fatalf("complet count on a = %d after abandoned move", a.CompletCount())
	}
	if _, ok := a.lookup(r.Target()); !ok {
		t.Fatal("complet left a despite the canceled move")
	}
}

// --- deadlines ----------------------------------------------------------------

func TestInvokeDeadlineShorterThanLinkLatency(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "far")
	if err != nil {
		t.Fatal(err)
	}
	const latency = 300 * time.Millisecond
	if err := cl.net.SetLink("a", "b", netsim.LinkProfile{Latency: latency}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = r.InvokeCtx(context.Background(), "Print", ref.WithTimeout(50*time.Millisecond))
	elapsed := time.Since(start)
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InvokeError", err, err)
	}
	if ie.Cause != CauseTimeout || !ie.Timeout() {
		t.Fatalf("cause = %v, want timeout", ie.Cause)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("errors.Is(err, context.DeadlineExceeded) should hold")
	}
	// The caller must give up at its deadline, well before the message
	// could even arrive.
	if elapsed >= latency {
		t.Fatalf("deadline did not bound the invoke (took %v, link latency %v)", elapsed, latency)
	}
}

func TestEndToEndDeadlineAcrossTrackerChain(t *testing.T) {
	// Complet born on a, moved a→b→c, leaving trackers a→b and b→c. The
	// caller on o still hints a, so its invocation traverses o→a→b→c. With
	// 50ms per link one way, the full path costs ~150ms before the method
	// even runs.
	const linkLatency = 50 * time.Millisecond
	build := func(t *testing.T) (*cluster, *ref.Ref) {
		cl := newCluster(t, "o", "a", "b", "c")
		o := cl.core("o")
		r, err := o.NewCompletAtCtx(context.Background(), "a", "Msg", "chained")
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.core("a").MoveByID(r.Target(), "b"); err != nil {
			t.Fatal(err)
		}
		if err := cl.core("b").MoveByID(r.Target(), "c"); err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]string{{"o", "a"}, {"a", "b"}, {"b", "c"}} {
			if err := cl.net.SetLink(pair[0], pair[1], netsim.LinkProfile{Latency: linkLatency}); err != nil {
				t.Fatal(err)
			}
		}
		return cl, r
	}

	t.Run("budget covers the chain", func(t *testing.T) {
		_, r := build(t)
		start := time.Now()
		res, err := r.InvokeCtx(context.Background(), "Print", ref.WithTimeout(2*time.Second))
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("chained invoke: %v", err)
		}
		if len(res) != 1 || res[0] != "chained" {
			t.Fatalf("results = %v", res)
		}
		if elapsed >= 2*time.Second {
			t.Fatalf("invoke took %v, exceeding its own budget", elapsed)
		}
		// Chain shortening: the stub now hints the executing core.
		if r.Hint() != "c" {
			t.Fatalf("hint after chained invoke = %v, want c", r.Hint())
		}
	})

	t.Run("budget shorter than the chain", func(t *testing.T) {
		// A 120ms budget cannot cover the ~150ms one-way path. Were the
		// clock reset per hop (120ms each), the call would succeed; with
		// one end-to-end deadline it must fail at ~120ms.
		_, r := build(t)
		const budget = 120 * time.Millisecond
		start := time.Now()
		_, err := r.InvokeCtx(context.Background(), "Print", ref.WithTimeout(budget))
		elapsed := time.Since(start)
		var ie *InvokeError
		if !errors.As(err, &ie) {
			t.Fatalf("err = %v (%T), want *InvokeError", err, err)
		}
		if ie.Cause != CauseTimeout {
			t.Fatalf("cause = %v, want timeout", ie.Cause)
		}
		if elapsed < budget {
			t.Fatalf("failed before the budget expired (%v < %v)", elapsed, budget)
		}
		// The caller must give up within one link latency of the budget
		// (plus scheduling slack), not after retrying hop by hop.
		if limit := budget + linkLatency + 150*time.Millisecond; elapsed > limit {
			t.Fatalf("gave up after %v, want within %v", elapsed, limit)
		}
	})
}

func TestMoveCtxDeadline(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "stuck")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.net.SetLink("a", "b", netsim.LinkProfile{Latency: 300 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	err = a.MoveCtx(context.Background(), r, "b", ref.WithTimeout(40*time.Millisecond))
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InvokeError", err, err)
	}
	if ie.Cause != CauseTimeout {
		t.Fatalf("cause = %v, want timeout", ie.Cause)
	}
	if a.CompletCount() != 1 {
		t.Fatal("sender must keep the complet after a timed-out move")
	}
}

// --- retry / backoff ----------------------------------------------------------

func TestLocateRetriesThroughFlappingPartition(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "flappy")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.net.SetPartition("a", "b", true); err != nil {
		t.Fatal(err)
	}
	var healOnce sync.Once
	go func() {
		time.Sleep(60 * time.Millisecond)
		healOnce.Do(func() {
			if err := cl.net.SetPartition("a", "b", false); err != nil {
				t.Error(err)
			}
		})
	}()
	// Locate is idempotent, so the runtime retries it with backoff: the
	// call must outlive the partition and succeed once the link heals.
	// Without retries the first (instantly failing) send would be final.
	loc, err := a.LocateCompletCtx(context.Background(), r.Target(), ref.WithMaxAttempts(10))
	if err != nil {
		t.Fatalf("locate through flapping partition: %v", err)
	}
	if loc != "b" {
		t.Fatalf("located at %v, want b", loc)
	}
}

func TestLocateNoRetryFailsFast(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "gone")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.net.SetPartition("a", "b", true); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = a.LocateCompletCtx(context.Background(), r.Target(), ref.WithNoRetry())
	elapsed := time.Since(start)
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InvokeError", err, err)
	}
	if ie.Cause != CauseUnreachable {
		t.Fatalf("cause = %v, want unreachable", ie.Cause)
	}
	if ie.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 with NoRetry", ie.Attempts)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("NoRetry call took %v, should fail fast", elapsed)
	}
}

func TestNonIdempotentInvokeNotRetried(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "once")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.net.SetPartition("a", "b", true); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = r.InvokeCtx(context.Background(), "Print", ref.WithMaxAttempts(10))
	elapsed := time.Since(start)
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InvokeError", err, err)
	}
	if ie.Cause != CauseUnreachable {
		t.Fatalf("cause = %v, want unreachable", ie.Cause)
	}
	// Invocations may not be idempotent: a single attempt, no backoff
	// sleeps, even when the caller raises the attempt budget.
	if ie.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 for an invocation", ie.Attempts)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("unretried invoke took %v, should fail fast", elapsed)
	}
}

func TestRemoteMethodErrorIsCauseRemote(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "failing")
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.InvokeCtx(context.Background(), "Fail")
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InvokeError", err, err)
	}
	if ie.Cause != CauseRemote {
		t.Fatalf("cause = %v, want remote error", ie.Cause)
	}
}

// --- hop budget ---------------------------------------------------------------

func TestHopBudgetTripEmitsEvent(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	fired := make(chan Event, 1)
	token, err := a.Monitor().SubscribeBuiltin(EventHopBudgetExceeded, func(ev Event) {
		select {
		case fired <- ev:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Monitor().Unsubscribe(token)

	r, err := a.NewComplet("Msg", "loop")
	if err != nil {
		t.Fatal(err)
	}
	err = a.tripHopBudget("invoke Msg.Print", r.Target())
	if !errors.Is(err, ErrTooManyHops) {
		t.Fatalf("err = %v, want ErrTooManyHops", err)
	}
	// Backward compatibility: the typed error still matches the old
	// sentinel.
	if !errors.Is(err, ErrTrackingLoop) {
		t.Fatal("ErrTooManyHops must wrap ErrTrackingLoop")
	}
	if got := classifyCause(err); got != CauseTooManyHops {
		t.Fatalf("classifyCause = %v, want too many hops", got)
	}
	select {
	case ev := <-fired:
		if ev.Name != EventHopBudgetExceeded {
			t.Fatalf("event name = %q", ev.Name)
		}
		if ev.Complet != r.Target() {
			t.Fatalf("event complet = %v, want %v", ev.Complet, r.Target())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hop budget event not delivered")
	}
}

// --- default budget -----------------------------------------------------------

func TestRequestTimeoutIsDefaultEndToEndBudget(t *testing.T) {
	// Plain context.Background gets the core's RequestTimeout as its
	// budget; a far-away peer therefore times out instead of hanging.
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "deadweight")
	if err != nil {
		t.Fatal(err)
	}
	a.opts.RequestTimeout = 60 * time.Millisecond
	if err := cl.net.SetLink("a", "b", netsim.LinkProfile{Latency: 400 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = r.InvokeCtx(context.Background(), "Print")
	elapsed := time.Since(start)
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InvokeError", err, err)
	}
	if ie.Cause != CauseTimeout {
		t.Fatalf("cause = %v, want timeout", ie.Cause)
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("default budget did not bound the call (took %v)", elapsed)
	}
}
