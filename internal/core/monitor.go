package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fargo/internal/ids"
	"fargo/internal/ref"
	"fargo/internal/stats"
	"fargo/internal/wire"
)

// Built-in (non-measurable) event names (§4.2).
const (
	// EventCompletArrived fires at a core when a complet is installed.
	EventCompletArrived = "completArrived"
	// EventCompletDeparted fires at a core when a complet moves away.
	EventCompletDeparted = "completDeparted"
	// EventCoreShutdown fires when a core announces shutdown — locally at
	// the dying core (and via notices at its peers, with Source naming
	// the dying core).
	EventCoreShutdown = "coreShutdown"
	// EventHopBudgetExceeded fires at the core where an invocation, locate
	// or move command exhausted the tracker-chain hop budget (a tracking
	// loop or a badly stale topology); Detail carries the operation.
	EventHopBudgetExceeded = "hopBudgetExceeded"
)

// Profiling service names (§4.1). Services taking arguments receive them as
// strings (complet IDs render via CompletID.String; cores by name).
const (
	// ServiceCompletLoad counts the complets residing in this core.
	ServiceCompletLoad = "completLoad"
	// ServiceMemory measures heap bytes in use by this core's process.
	ServiceMemory = "memory"
	// ServiceLatency measures the round-trip time to a peer core, in
	// milliseconds. Args: peer core name.
	ServiceLatency = "latency"
	// ServiceBandwidth estimates the transfer rate to a peer core, in
	// bytes/second. Args: peer core name.
	ServiceBandwidth = "bandwidth"
	// ServiceInvocationRate measures invocations/second observed at this
	// core. Args: target complet ID, or source + target complet IDs for
	// a single reference's rate.
	ServiceInvocationRate = "invocationRate"
	// ServiceInvocationCount counts invocations observed at this core for
	// a target complet. Args: target complet ID.
	ServiceInvocationCount = "invocationCount"
	// ServiceCompletSize measures the marshaled closure size of a local
	// complet, in bytes (expensive; instant use recommended, §4.1).
	// Args: complet ID.
	ServiceCompletSize = "completSize"
)

// defaultAlpha is the smoothing factor of continuous profiles.
const defaultAlpha = 0.3

// instantCacheTTL bounds how long cached instant measurements are served
// without re-evaluation (§4.1: "the monitor caches recent results").
const instantCacheTTL = 500 * time.Millisecond

// rateWindow is the sliding window of invocation-rate estimation.
const rateWindow = 10 * time.Second

// Event is a monitoring event delivered to listeners.
type Event struct {
	// Name is the event name: a profiling service or a built-in event.
	Name string
	// Value is the measured value for profiled events.
	Value float64
	// Source is the core that fired the event.
	Source ids.CoreID
	// Complet identifies the complet involved in layout events.
	Complet ids.CompletID
	// Detail carries event-specific extra data (e.g. movement
	// destination).
	Detail string
	// At is the fire time at the source.
	At time.Time
}

// Listener consumes events. Listeners run on dedicated goroutines; they may
// block without stalling the measurement units (§5).
type Listener func(Event)

// ServiceFunc measures one resource instantly. Applications can register
// additional services with Monitor.RegisterService.
type ServiceFunc func(args []string) (float64, error)

// profKey identifies one profiled measurement stream.
type profKey struct {
	service string
	args    string // joined with '\x00'
}

func newProfKey(service string, args []string) profKey {
	return profKey{service: service, args: strings.Join(args, "\x00")}
}

// profEntry is an interest-counted continuous profile (§4.1: the core
// monitors only resources some application has interest in).
type profEntry struct {
	sampler  *stats.Sampler
	interest int
}

// cacheEntry is one cached instant measurement.
type cacheEntry struct {
	value float64
	at    time.Time
}

// subscription is one event registration.
type subscription struct {
	token     string
	event     string
	args      []string
	threshold float64
	above     bool
	interval  time.Duration
	profiled  bool

	// Exactly one of these delivery paths is set.
	fn         Listener      // local function listener
	completRef *ref.Ref      // complet listener: delivered by invocation
	method     string        //   ... method name on the complet
	subscriber ids.CoreID    //   remote core listener (delivered by EventNotify)
	stop       chan struct{} // profiled subscriptions: checker goroutine stop
	done       chan struct{}
	// remoteEndpoint marks the local delivery end of a SubscribeAt: it
	// receives only token-routed notifications, never local fires.
	remoteEndpoint bool
}

// Monitor is the Core's monitoring facility (§4): profiling services with
// instant and continuous interfaces, threshold events, built-in layout
// events, and distributed event delivery.
type Monitor struct {
	c *Core

	mu        sync.Mutex
	services  map[string]ServiceFunc
	profiles  map[profKey]*profEntry
	cache     map[profKey]cacheEntry
	subs      map[string]*subscription
	rateByDst map[ids.CompletID]*stats.RateMeter
	pairs     map[pairKey]*pairMeter
	countBy   map[ids.CompletID]*stats.Counter
	bytesIn   stats.Counter
	seq       ids.Sequencer
	closed    bool

	// Per-method SLO instruments (methodstats.go). Guarded by their own
	// RWMutex: the invoke hot path takes only a read lock per call once a
	// meter exists, and never contends with the profiling mutex above.
	methodsMu  sync.RWMutex
	methods    map[methodKey]*methodMeter
	methodsOff bool

	wg sync.WaitGroup
}

// pairKey identifies one directed reference edge (source complet → target
// complet). Keying on complet identity — not on the observing core or any
// tracker-local state — is what lets pair accounting survive relocation: when
// the target moves, its meters travel in the movement bundle under the same
// key (exportMeters/importMeters).
type pairKey struct {
	src, dst ids.CompletID
}

// pairMeter is the per-edge accounting: a windowed invocation-rate meter and
// the cumulative argument bytes carried on the edge (the planner's cost model
// weighs both).
type pairMeter struct {
	rate  *stats.RateMeter
	bytes stats.Counter
}

func newMonitor(c *Core) *Monitor {
	m := &Monitor{
		c:         c,
		services:  make(map[string]ServiceFunc),
		profiles:  make(map[profKey]*profEntry),
		cache:     make(map[profKey]cacheEntry),
		subs:      make(map[string]*subscription),
		rateByDst: make(map[ids.CompletID]*stats.RateMeter),
		pairs:     make(map[pairKey]*pairMeter),
		countBy:   make(map[ids.CompletID]*stats.Counter),
		methods:   make(map[methodKey]*methodMeter),
	}
	m.methodsOff = c.opts.DisablePerMethodStats
	m.services[ServiceCompletLoad] = m.svcCompletLoad
	m.services[ServiceMemory] = m.svcMemory
	m.services[ServiceLatency] = m.svcLatency
	m.services[ServiceBandwidth] = m.svcBandwidth
	m.services[ServiceInvocationRate] = m.svcInvocationRate
	m.services[ServiceInvocationCount] = m.svcInvocationCount
	m.services[ServiceCompletSize] = m.svcCompletSize
	m.services[ServiceCapacityFree] = func([]string) (float64, error) {
		return float64(m.c.capacityFree()), nil
	}
	return m
}

func (m *Monitor) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	subs := make([]*subscription, 0, len(m.subs))
	for _, s := range m.subs {
		subs = append(subs, s)
	}
	m.subs = make(map[string]*subscription)
	profiles := m.profiles
	m.profiles = make(map[profKey]*profEntry)
	m.mu.Unlock()

	for _, s := range subs {
		if s.stop != nil {
			close(s.stop)
			<-s.done
		}
	}
	for _, p := range profiles {
		p.sampler.Stop()
	}
	m.wg.Wait()
}

// RegisterService adds an application-defined profiling service. Built-in
// service names cannot be replaced.
func (m *Monitor) RegisterService(name string, fn ServiceFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("monitor: service name and func required")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.services[name]; dup {
		return fmt.Errorf("monitor: service %q already registered", name)
	}
	m.services[name] = fn
	return nil
}

// Services lists the registered profiling services.
func (m *Monitor) Services() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.services))
	for s := range m.services {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// --- instant interface ------------------------------------------------------

// Instant measures a service right now, serving recent cached results without
// re-evaluation (§4.1).
func (m *Monitor) Instant(service string, args ...string) (float64, error) {
	key := newProfKey(service, args)
	m.mu.Lock()
	if e, ok := m.cache[key]; ok && time.Since(e.at) < instantCacheTTL {
		m.mu.Unlock()
		return e.value, nil
	}
	fn, ok := m.services[service]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("monitor: unknown service %q", service)
	}
	v, err := fn(args)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	m.cache[key] = cacheEntry{value: v, at: time.Now()}
	m.mu.Unlock()
	return v, nil
}

// InstantAt measures a service at a remote core.
func (m *Monitor) InstantAt(core ids.CoreID, service string, args ...string) (float64, error) {
	if core == m.c.id {
		return m.Instant(service, args...)
	}
	payload, err := wire.EncodePayload(wire.ProfileQuery{Service: service, Args: args})
	if err != nil {
		return 0, err
	}
	env, err := m.c.requestBG(core, wire.KindProfileQuery, payload)
	if err != nil {
		return 0, fmt.Errorf("monitor: query %s at %s: %w", service, core, err)
	}
	var reply wire.ProfileQueryReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return 0, err
	}
	if reply.Err != "" {
		return 0, fmt.Errorf("monitor: query %s at %s: %s", service, core, reply.Err)
	}
	return reply.Value, nil
}

func (m *Monitor) handleProfileQuery(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.ProfileQuery
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	reply := wire.ProfileQueryReply{}
	v, err := m.Instant(req.Service, req.Args...)
	if err != nil {
		reply.Err = err.Error()
	} else {
		reply.Value = v
	}
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindProfileQueryReply, out, nil
}

// --- continuous interface ----------------------------------------------------

// Start begins (or joins) continuous profiling of a service at the given
// interval, returning an exponential average through Get. Interest is
// counted: the sampler stops only when every interested party called Stop
// (§4.1).
func (m *Monitor) Start(interval time.Duration, service string, args ...string) error {
	if interval <= 0 {
		return fmt.Errorf("monitor: interval must be positive")
	}
	key := newProfKey(service, args)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if e, ok := m.profiles[key]; ok {
		e.interest++
		m.mu.Unlock()
		return nil
	}
	fn, ok := m.services[service]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("monitor: unknown service %q", service)
	}
	argsCopy := append([]string(nil), args...)
	sampler, err := stats.NewSampler(func() (float64, error) { return fn(argsCopy) }, defaultAlpha)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	entry := &profEntry{sampler: sampler, interest: 1}
	m.profiles[key] = entry
	m.mu.Unlock()

	// The sampler takes a synchronous first sample, and service functions
	// may need the monitor mutex (e.g. invocationRate) — so it must start
	// outside the lock.
	if err := sampler.Start(interval); err != nil {
		m.mu.Lock()
		if m.profiles[key] == entry {
			delete(m.profiles, key)
		}
		m.mu.Unlock()
		return err
	}
	return nil
}

// Get returns the current exponential average of a continuously profiled
// service. The service must have been started.
func (m *Monitor) Get(service string, args ...string) (float64, error) {
	key := newProfKey(service, args)
	m.mu.Lock()
	e, ok := m.profiles[key]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("monitor: service %q (args %v) is not being profiled", service, args)
	}
	v, has := e.sampler.Value()
	if !has {
		return 0, fmt.Errorf("monitor: service %q has no samples yet", service)
	}
	return v, nil
}

// Stop releases one interest in a continuous profile; the sampler terminates
// when no interest remains.
func (m *Monitor) Stop(service string, args ...string) {
	key := newProfKey(service, args)
	m.mu.Lock()
	e, ok := m.profiles[key]
	if ok {
		e.interest--
		if e.interest > 0 {
			m.mu.Unlock()
			return
		}
		delete(m.profiles, key)
	}
	m.mu.Unlock()
	if ok {
		e.sampler.Stop()
	}
}

// ProfiledCount reports how many continuous profiles are active (test
// support for interest counting).
func (m *Monitor) ProfiledCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.profiles)
}

// --- built-in service implementations ----------------------------------------

func (m *Monitor) svcCompletLoad([]string) (float64, error) {
	return float64(m.c.CompletCount()), nil
}

func (m *Monitor) svcMemory([]string) (float64, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapInuse), nil
}

func (m *Monitor) svcLatency(args []string) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("monitor: latency takes one argument (peer core)")
	}
	rtt, err := m.pingRTT(ids.CoreID(args[0]), 16)
	if err != nil {
		return 0, err
	}
	return float64(rtt.Microseconds()) / 1000.0, nil // milliseconds
}

func (m *Monitor) svcBandwidth(args []string) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("monitor: bandwidth takes one argument (peer core)")
	}
	peer := ids.CoreID(args[0])
	const (
		smallSize = 64
		largeSize = 256 << 10 // 256 KiB probe
	)
	small, err := m.pingRTT(peer, smallSize)
	if err != nil {
		return 0, err
	}
	large, err := m.pingRTT(peer, largeSize)
	if err != nil {
		return 0, err
	}
	delta := large - small
	if delta <= 0 {
		// Below measurement resolution: effectively unconstrained on
		// this probe size — report the probe moved within the small
		// RTT as a floor.
		delta = time.Microsecond
	}
	return float64(largeSize-smallSize) / delta.Seconds(), nil
}

// pingRTT measures one request/response round trip carrying n payload bytes.
func (m *Monitor) pingRTT(peer ids.CoreID, n int) (time.Duration, error) {
	payload, err := wire.EncodePayload(wire.Ping{Seq: m.seq.Next(), Payload: make([]byte, n)})
	if err != nil {
		return 0, err
	}
	// No retries here: a transparently retried probe would report the sum
	// of attempts as one RTT and corrupt the latency/bandwidth profile.
	ctx, cancel := m.c.withBudget(context.Background(), 0)
	defer cancel()
	start := time.Now()
	if _, err := m.c.requestOpts(ctx, peer, wire.KindPing, payload, ref.CallOptions{NoRetry: true}); err != nil {
		return 0, fmt.Errorf("monitor: ping %s: %w", peer, err)
	}
	return time.Since(start), nil
}

func (m *Monitor) svcInvocationRate(args []string) (float64, error) {
	switch len(args) {
	case 1:
		m.mu.Lock()
		meter, ok := m.rateByDst[mustParseComplet(args[0])]
		m.mu.Unlock()
		if !ok {
			return 0, nil
		}
		return meter.Rate(), nil
	case 2:
		// Keyed on parsed complet identity (not the raw strings), so the
		// measurement is the same edge regardless of which core hosts the
		// target right now.
		key := pairKey{src: mustParseComplet(args[0]), dst: mustParseComplet(args[1])}
		m.mu.Lock()
		pm, ok := m.pairs[key]
		m.mu.Unlock()
		if !ok {
			return 0, nil
		}
		return pm.rate.Rate(), nil
	default:
		return 0, fmt.Errorf("monitor: invocationRate takes (target) or (source, target)")
	}
}

func (m *Monitor) svcInvocationCount(args []string) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("monitor: invocationCount takes one argument (target)")
	}
	m.mu.Lock()
	ctr, ok := m.countBy[mustParseComplet(args[0])]
	m.mu.Unlock()
	if !ok {
		return 0, nil
	}
	return float64(ctr.Value()), nil
}

func (m *Monitor) svcCompletSize(args []string) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("monitor: completSize takes one argument (complet)")
	}
	id := mustParseComplet(args[0])
	entry, ok := m.c.lookup(id)
	if !ok {
		return 0, fmt.Errorf("monitor: %w: %s", ErrUnknownComplet, id)
	}
	entry.moveMu.RLock()
	defer entry.moveMu.RUnlock()
	if entry.gone {
		return 0, fmt.Errorf("monitor: %w: %s", ErrUnknownComplet, id)
	}
	data, _, err := wire.EncodeArgs([]any{entry.anchor})
	if err != nil {
		return 0, err
	}
	return float64(len(data)), nil
}

// mustParseComplet parses a CompletID rendered by CompletID.String
// ("birth/#seq"); malformed strings yield the zero ID (which matches no
// meter).
func mustParseComplet(s string) ids.CompletID {
	i := strings.LastIndex(s, "/#")
	if i < 0 {
		return ids.CompletID{}
	}
	var seq uint64
	if _, err := fmt.Sscanf(s[i+2:], "%d", &seq); err != nil {
		return ids.CompletID{}
	}
	return ids.CompletID{Birth: ids.CoreID(s[:i]), Seq: seq}
}

// recordInvocation feeds the application-profiling meters (§4.1). It is on
// the invocation hot path; meters are created lazily.
func (m *Monitor) recordInvocation(source, target ids.CompletID, typeName, method string, argBytes int) {
	m.mu.Lock()
	meter, ok := m.rateByDst[target]
	if !ok {
		meter = stats.MustRateMeter(rateWindow, 20)
		m.rateByDst[target] = meter
	}
	ctr, ok := m.countBy[target]
	if !ok {
		ctr = &stats.Counter{}
		m.countBy[target] = ctr
	}
	var pm *pairMeter
	if !source.Nil() {
		key := pairKey{src: source, dst: target}
		pm, ok = m.pairs[key]
		if !ok {
			pm = &pairMeter{rate: stats.MustRateMeter(rateWindow, 20)}
			m.pairs[key] = pm
		}
	}
	m.mu.Unlock()

	meter.Mark(1)
	ctr.Inc()
	if pm != nil {
		pm.rate.Mark(1)
		pm.bytes.Add(uint64(argBytes))
	}
	m.bytesIn.Add(uint64(argBytes))
}

// InvocationBytes returns the cumulative argument bytes received by this
// core's invocation unit.
func (m *Monitor) InvocationBytes() uint64 { return m.bytesIn.Value() }

// --- planner support ---------------------------------------------------------

// PairStats snapshots every per-reference meter observed at this core as
// directed communication-graph edges, sorted deterministically. The layout
// planner's collector aggregates these across member cores (DESIGN.md §14).
func (m *Monitor) PairStats() []wire.PairStat {
	m.mu.Lock()
	keys := make([]pairKey, 0, len(m.pairs))
	meters := make([]*pairMeter, 0, len(m.pairs))
	for k, pm := range m.pairs {
		keys = append(keys, k)
		meters = append(meters, pm)
	}
	m.mu.Unlock()
	out := make([]wire.PairStat, 0, len(keys))
	for i, k := range keys {
		pm := meters[i]
		out = append(out, wire.PairStat{
			Src:   k.src,
			Dst:   k.dst,
			Rate:  pm.rate.Rate(),
			Count: pm.rate.Count(),
			Bytes: pm.bytes.Value(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src.String() < out[j].Src.String()
		}
		return out[i].Dst.String() < out[j].Dst.String()
	})
	return out
}

// exportMeters snapshots the invocation-accounting state of the given
// complets for shipment inside a movement bundle: their lifetime counts,
// windowed counts, and the per-source pair meters whose destination is a
// departing complet. Pair meters whose *source* departs stay put — they are
// recorded at the core hosting the destination, which is not moving.
func (m *Monitor) exportMeters(targets []ids.CompletID) []wire.MeterState {
	if len(targets) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wire.MeterState, 0, len(targets))
	for _, t := range targets {
		st := wire.MeterState{Target: t}
		if ctr, ok := m.countBy[t]; ok {
			st.Count = ctr.Value()
		}
		if meter, ok := m.rateByDst[t]; ok {
			st.Window = meter.Count()
		}
		for k, pm := range m.pairs {
			if k.dst != t {
				continue
			}
			st.Pairs = append(st.Pairs, wire.PairMeterState{
				Src:    k.src,
				Window: pm.rate.Count(),
				Bytes:  pm.bytes.Value(),
			})
		}
		if st.Count == 0 && st.Window == 0 && len(st.Pairs) == 0 {
			continue
		}
		sort.Slice(st.Pairs, func(i, j int) bool {
			return st.Pairs[i].Src.String() < st.Pairs[j].Src.String()
		})
		out = append(out, st)
	}
	return out
}

// importMeters merges meter state shipped with a movement bundle into this
// core's accounting, under the complets' unchanged identities. Windowed
// counts land in the current bucket — a coarse placement within the window,
// but the window total (what rates and the planner's edge weights read) is
// exact.
func (m *Monitor) importMeters(states []wire.MeterState) {
	for _, st := range states {
		m.mu.Lock()
		meter, ok := m.rateByDst[st.Target]
		if !ok {
			meter = stats.MustRateMeter(rateWindow, 20)
			m.rateByDst[st.Target] = meter
		}
		ctr, ok := m.countBy[st.Target]
		if !ok {
			ctr = &stats.Counter{}
			m.countBy[st.Target] = ctr
		}
		pms := make([]*pairMeter, len(st.Pairs))
		for i, p := range st.Pairs {
			key := pairKey{src: p.Src, dst: st.Target}
			pm, ok := m.pairs[key]
			if !ok {
				pm = &pairMeter{rate: stats.MustRateMeter(rateWindow, 20)}
				m.pairs[key] = pm
			}
			pms[i] = pm
		}
		m.mu.Unlock()

		if st.Window > 0 {
			meter.Mark(st.Window)
		}
		ctr.Add(st.Count)
		for i, p := range st.Pairs {
			if p.Window > 0 {
				pms[i].rate.Mark(p.Window)
			}
			pms[i].bytes.Add(p.Bytes)
		}
	}
}

// dropMeters discards the accounting of complets that moved away, so the
// departed state is counted at exactly one core (its new host).
func (m *Monitor) dropMeters(targets []ids.CompletID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range targets {
		delete(m.rateByDst, t)
		delete(m.countBy, t)
		for k := range m.pairs {
			if k.dst == t {
				delete(m.pairs, k)
			}
		}
	}
}
