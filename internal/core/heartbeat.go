package core

import (
	"context"
	"fmt"
	"time"

	"fargo/internal/ids"
	"fargo/internal/wire"
)

// EventCoreUnreachable fires when a monitored peer core stops answering
// pings. The coreShutdown event (§4.2) only covers graceful exits; crash
// fault detection needs an active prober, which the paper's reliability
// policies implicitly assume. The event re-arms when the peer answers again
// (so a flapping link produces one event per outage).
const EventCoreUnreachable = "coreUnreachable"

// EventCoreReachable fires when a previously-declared-unreachable peer
// answers pings again — the recovery edge of EventCoreUnreachable, letting
// subscribers observe the end of an outage (e.g. to move evacuated complets
// back). It also fires when a peer's circuit breaker closes after being open
// (see breaker.go), with Detail "circuit closed".
const EventCoreReachable = "coreReachable"

// Heartbeat actively probes peer cores and fires EventCoreUnreachable
// through the monitor's event mechanism. Construct with Monitor.StartHeartbeat;
// stop with Stop (idempotent).
type Heartbeat struct {
	stop chan struct{}
	done chan struct{}
}

// StartHeartbeat begins probing the given peers every interval, declaring a
// peer unreachable after `misses` consecutive failed pings. Subscribers use
// SubscribeBuiltin(EventCoreUnreachable, …); the event's Source names the
// unreachable peer.
func (m *Monitor) StartHeartbeat(peers []ids.CoreID, interval time.Duration, misses int) (*Heartbeat, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("monitor: heartbeat needs at least one peer")
	}
	if interval <= 0 || misses <= 0 {
		return nil, fmt.Errorf("monitor: heartbeat interval and misses must be positive")
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.mu.Unlock()

	hb := &Heartbeat{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	peersCopy := append([]ids.CoreID(nil), peers...)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer close(hb.done)
		m.heartbeatLoop(peersCopy, interval, misses, hb.stop)
	}()
	return hb, nil
}

// Stop terminates the prober and waits for it to exit.
func (hb *Heartbeat) Stop() {
	select {
	case <-hb.stop:
		// already stopped
	default:
		close(hb.stop)
	}
	<-hb.done
}

func (m *Monitor) heartbeatLoop(peers []ids.CoreID, interval time.Duration, misses int, stop <-chan struct{}) {
	state := make(map[ids.CoreID]*peerState, len(peers))
	for _, p := range peers {
		state[p] = &peerState{}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			for _, p := range peers {
				s := state[p]
				m.c.met.hbProbes.Inc()
				if m.pingOnce(p, interval) {
					if s.down {
						s.down = false
						m.c.setSuspect(p, false)
						m.fire(Event{
							Name:   EventCoreReachable,
							Source: p,
							At:     time.Now(),
						})
					}
					s.failures = 0
					// A successful ping is the half-open probe that
					// closes the peer's circuit breaker.
					m.c.breakerReport(p, nil)
					continue
				}
				m.c.met.hbFailures.Inc()
				s.failures++
				if s.failures >= misses && !s.down {
					s.down = true
					m.c.setSuspect(p, true)
					// Open the circuit so request paths fail fast
					// without burning deadlines of their own. The trip
					// is silent: this loop owns the unreachable event.
					m.c.breakerTrip(p)
					m.fire(Event{
						Name:   EventCoreUnreachable,
						Source: p,
						At:     time.Now(),
					})
				}
			}
			down := 0
			for _, s := range state {
				if s.down {
					down++
				}
			}
			m.c.met.peersDown.Set(float64(down))
		case <-stop:
			return
		}
	}
}

type peerState struct {
	failures int
	down     bool
}

// pingOnce sends one bounded ping; false on any failure.
func (m *Monitor) pingOnce(peer ids.CoreID, timeout time.Duration) bool {
	payload, err := wire.EncodePayload(wire.Ping{Seq: m.seq.Next()})
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	_, err = m.c.tr.Request(ctx, peer, wire.KindPing, payload)
	return err == nil
}
