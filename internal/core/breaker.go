package core

import (
	"errors"
	"fmt"
	"time"

	"fargo/internal/flight"
	"fargo/internal/ids"
)

// ErrPeerSuspected is returned (wrapped) when a request is refused locally
// because the peer's circuit breaker is open: recent traffic to that peer
// failed with unreachability, so instead of burning a full deadline per call
// the core fails fast until a probe shows the peer answering again.
var ErrPeerSuspected = errors.New("core: peer suspected down (circuit open)")

// BreakerPolicy tunes the per-peer circuit breakers. A breaker counts
// consecutive operations that ended in unreachability (classifyCause ==
// CauseUnreachable); it is fed per operation, not per transport attempt, so
// one flapping-link operation that eventually succeeds counts as a success.
// Timeouts and cancellations are inconclusive — the budget may simply have
// been too small — and neither trip nor close a breaker.
type BreakerPolicy struct {
	// Threshold is the number of consecutive unreachable operations that
	// opens the circuit. Zero means the default (5).
	Threshold int
	// OpenFor is how long an open circuit rejects calls before allowing a
	// single half-open probe through. Zero means the default (2s).
	OpenFor time.Duration
	// Disable turns circuit breaking off entirely.
	Disable bool
}

// DefaultBreakerPolicy returns the policy used when Options.Breaker is zero.
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{Threshold: 5, OpenFor: 2 * time.Second}
}

// normalize fills zero fields from the default policy.
func (p BreakerPolicy) normalize() BreakerPolicy {
	def := DefaultBreakerPolicy()
	if p.Threshold <= 0 {
		p.Threshold = def.Threshold
	}
	if p.OpenFor <= 0 {
		p.OpenFor = def.OpenFor
	}
	return p
}

// breakerState is the classic three-state circuit:
//
//	closed    — traffic flows; consecutive unreachable operations counted.
//	open      — calls fail fast with ErrPeerSuspected until OpenFor elapses.
//	half-open — one probe operation is allowed through; its outcome decides
//	            between closing (answered) and re-opening (unreachable).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the per-peer circuit. Its mutex is leaf-level: nothing else is
// locked while it is held, and events are fired only after it is released.
type breaker struct {
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe slot is claimed
}

// breakerFor returns (creating if needed) the breaker for a peer.
func (c *Core) breakerFor(peer ids.CoreID) *breaker {
	c.breakerMu.Lock()
	defer c.breakerMu.Unlock()
	b, ok := c.breakers[peer]
	if !ok {
		b = &breaker{}
		c.breakers[peer] = b
	}
	return b
}

// breakerAllow gates one outgoing operation to the peer. Closed circuits let
// everything through; open circuits reject with ErrPeerSuspected until OpenFor
// has elapsed, at which point exactly one caller is admitted as the half-open
// probe. Ping requests never consult this gate (they ARE the probes).
func (c *Core) breakerAllow(peer ids.CoreID) error {
	if c.opts.Breaker.Disable || peer == c.id {
		return nil
	}
	b := c.breakerFor(peer)
	c.breakerMu.Lock()
	defer c.breakerMu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if time.Since(b.openedAt) >= c.opts.Breaker.OpenFor {
			b.state = breakerHalfOpen
			b.probing = true
			return nil
		}
	default: // half-open
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	c.met.breakerRejected.Inc()
	return fmt.Errorf("%w: %s", ErrPeerSuspected, peer)
}

// breakerReport feeds the final outcome of one operation against the peer
// into its breaker. err == nil or a remote verdict (the peer answered) closes
// the circuit; an unreachable outcome counts toward — or confirms — the open
// state; timeouts and cancellations are inconclusive. Monitor events are
// fired after the breaker lock is released.
func (c *Core) breakerReport(peer ids.CoreID, err error) {
	if c.opts.Breaker.Disable || peer == c.id {
		return
	}
	answered := err == nil || classifyCause(err) == CauseRemote
	unreachable := !answered && classifyCause(err) == CauseUnreachable

	b := c.breakerFor(peer)
	c.breakerMu.Lock()
	var opened, closed bool
	switch {
	case answered:
		closed = b.state != breakerClosed
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
	case unreachable:
		b.probing = false
		switch b.state {
		case breakerHalfOpen:
			// The probe failed: back to fully open, restart the timer.
			b.state = breakerOpen
			b.openedAt = time.Now()
		case breakerClosed:
			b.failures++
			if b.failures >= c.opts.Breaker.Threshold {
				b.state = breakerOpen
				b.openedAt = time.Now()
				opened = true
			}
		}
	default:
		// Inconclusive (timeout, cancellation): release a claimed probe
		// slot so the next caller can try, but change no counters.
		b.probing = false
	}
	c.breakerMu.Unlock()

	if opened {
		c.met.breakerOpened.Inc()
		c.flight.Record(flight.Event{Kind: flight.KindBreakerOpen, Peer: peer.String(),
			Detail: fmt.Sprintf("after %d consecutive unreachable operations", c.opts.Breaker.Threshold)})
		c.opts.Logf("fargo core %s: circuit to %s opened after %d consecutive unreachable operations",
			c.id, peer, c.opts.Breaker.Threshold)
		c.mon.fire(Event{Name: EventCoreUnreachable, Source: peer, Detail: "circuit opened", At: time.Now()})
	}
	if closed {
		c.met.breakerClosed.Inc()
		c.flight.Record(flight.Event{Kind: flight.KindBreakerClosed, Peer: peer.String()})
		c.opts.Logf("fargo core %s: circuit to %s closed (peer answering again)", c.id, peer)
		c.mon.fire(Event{Name: EventCoreReachable, Source: peer, Detail: "circuit closed", At: time.Now()})
	}
}

// breakerTrip force-opens the peer's circuit. The heartbeat prober calls it
// when it declares a peer down, so request paths start failing fast without
// having to burn Threshold deadlines of their own. No event is fired here —
// the heartbeat fires EventCoreUnreachable itself.
func (c *Core) breakerTrip(peer ids.CoreID) {
	if c.opts.Breaker.Disable || peer == c.id {
		return
	}
	b := c.breakerFor(peer)
	c.breakerMu.Lock()
	tripped := b.state != breakerOpen
	if tripped {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.probing = false
	}
	c.breakerMu.Unlock()
	if tripped {
		c.met.breakerOpened.Inc()
		c.flight.Record(flight.Event{Kind: flight.KindBreakerOpen, Peer: peer.String(),
			Detail: "tripped by heartbeat"})
	}
}

// BreakerState reports the peer's circuit as "closed", "open", or "half-open"
// (test and diagnostics support).
func (c *Core) BreakerState(peer ids.CoreID) string {
	c.breakerMu.Lock()
	defer c.breakerMu.Unlock()
	b, ok := c.breakers[peer]
	if !ok {
		return "closed"
	}
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
