package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

// newClusterOpts is newCluster with per-core options (breaker tuning etc.).
func newClusterOpts(t *testing.T, opts Options, names ...string) *cluster {
	t.Helper()
	cl := &cluster{
		t:     t,
		net:   netsim.NewNetwork(7),
		cores: make(map[ids.CoreID]*Core, len(names)),
	}
	for _, name := range names {
		tr, err := transport.NewSim(cl.net, ids.CoreID(name))
		if err != nil {
			t.Fatal(err)
		}
		reg := registry.New()
		registerTestTypes(t, reg)
		c, err := New(tr, reg, opts)
		if err != nil {
			t.Fatal(err)
		}
		cl.cores[ids.CoreID(name)] = c
	}
	t.Cleanup(func() {
		for _, c := range cl.cores {
			_ = c.Shutdown(0)
		}
		cl.net.Close()
	})
	return cl
}

// staleChain builds the canonical repair scenario: a complet born on a moves
// a→b→c, with the second hop driven by b so a's tracker still points at the
// (soon to be dead) middle core. Home tracking is on everywhere, so a — the
// birth core — knows the true location. Returns the cluster and the stale
// reference held by a.
func staleChain(t *testing.T) (*cluster, *Core, ids.CompletID) {
	t.Helper()
	cl := homeCluster(t, "a", "b", "c")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "survivor")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	// b moves it on; a is not involved, so a's tracker stays stale at b.
	if err := cl.core("b").MoveByID(r.Target(), "c"); err != nil {
		t.Fatal(err)
	}
	// Home updates are async notifies; wait for the truth to land at a.
	waitFor(t, 2*time.Second, func() bool {
		loc, err := a.LocateViaHome(r.Target())
		return err == nil && loc == "c"
	})
	if loc, ok := a.TrackerTarget(r.Target()); !ok || loc != "b" {
		t.Fatalf("precondition: a's tracker at %v (%v), want stale b", loc, ok)
	}
	return cl, a, r.Target()
}

func TestChainRepairAfterCrash(t *testing.T) {
	cl, a, id := staleChain(t)

	repaired := make(chan Event, 4)
	if _, err := a.Monitor().SubscribeBuiltin(EventChainRepaired, func(ev Event) {
		select {
		case repaired <- ev:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}

	// Kill the stale middle hop outright (host down, no shutdown protocol).
	if err := cl.net.StopHost("b"); err != nil {
		t.Fatal(err)
	}

	// The invocation through the stale reference must heal itself: dead hop
	// detected, home core consulted, tracker repointed, one retry.
	r := a.NewRefTo(id, "Msg", "b")
	res, err := r.InvokeCtx(context.Background(), "Print")
	if err != nil {
		t.Fatalf("invoke through dead chain hop: %v", err)
	}
	if res[0] != "survivor" {
		t.Fatalf("result = %v, want survivor", res[0])
	}

	select {
	case ev := <-repaired:
		if ev.Complet != id || !strings.Contains(ev.Detail, "b -> c") {
			t.Fatalf("chainRepaired event = %+v", ev)
		}
	default:
		t.Fatal("no chainRepaired event observed")
	}
	if loc, ok := a.TrackerTarget(id); !ok || loc != "c" {
		t.Fatalf("tracker after repair at %v (%v), want c", loc, ok)
	}

	// The healed path needs no further repair: subsequent calls are direct.
	if got := invoke1(t, r, "Print"); got != "survivor" {
		t.Fatalf("second invoke = %v", got)
	}
}

func TestChainRepairViaFaultyPartition(t *testing.T) {
	cl, a, id := staleChain(t)

	// Wrap a's OUTBOUND path in the fault injector and hard-partition the
	// stale hop. Unlike StopHost, b stays alive — only a's view of it dies,
	// exactly the asymmetric partition a chain cannot route around alone.
	faulty := transport.NewFaulty(a.tr, 11)
	a.tr = faulty
	faulty.Partition("b", true)
	defer faulty.Partition("b", false)

	repaired := make(chan Event, 4)
	if _, err := a.Monitor().SubscribeBuiltin(EventChainRepaired, func(ev Event) {
		select {
		case repaired <- ev:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}

	r := a.NewRefTo(id, "Msg", "b")
	res, err := r.InvokeCtx(context.Background(), "Set", "healed")
	if err != nil {
		t.Fatalf("invoke through partitioned chain hop: %v", err)
	}
	_ = res
	select {
	case <-repaired:
	default:
		t.Fatal("no chainRepaired event observed")
	}
	if got := invoke1(t, r, "Print"); got != "healed" {
		t.Fatalf("state after repaired move-target invoke = %v", got)
	}
	_ = cl
}

func TestChainRepairHealsMoveRouting(t *testing.T) {
	cl, a, id := staleChain(t)
	if err := cl.net.StopHost("b"); err != nil {
		t.Fatal(err)
	}
	// Routing a move command through the stale chain heals the same way.
	if err := a.MoveByID(id, "a"); err != nil {
		t.Fatalf("move through dead chain hop: %v", err)
	}
	if _, ok := a.lookup(id); !ok {
		t.Fatal("complet did not arrive after repaired move")
	}
}

func TestRepairFailsCleanlyWhenTargetTrulyDead(t *testing.T) {
	// When the home agrees the target lives on the dead core, repair must
	// not invent a location: the caller gets the original unreachability.
	cl := homeCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "doomed")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		loc, err := a.LocateViaHome(r.Target())
		return err == nil && loc == "b"
	})
	if err := cl.net.StopHost("b"); err != nil {
		t.Fatal(err)
	}
	_, err = r.InvokeCtx(context.Background(), "Print")
	var ie *InvokeError
	if !errors.As(err, &ie) || ie.Cause != CauseUnreachable {
		t.Fatalf("err = %v, want unreachable *InvokeError", err)
	}
}

func TestBreakerFailsFastAndRecovers(t *testing.T) {
	cl := newClusterOpts(t, Options{
		RequestTimeout: 10 * time.Second,
		Breaker:        BreakerPolicy{Threshold: 2, OpenFor: time.Minute},
	}, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "guarded")
	if err != nil {
		t.Fatal(err)
	}

	reachable := make(chan Event, 4)
	if _, err := a.Monitor().SubscribeBuiltin(EventCoreReachable, func(ev Event) {
		select {
		case reachable <- ev:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}

	if err := cl.net.StopHost("b"); err != nil {
		t.Fatal(err)
	}

	// Two unreachable operations trip the breaker (threshold 2)...
	for i := 0; i < 2; i++ {
		if _, err := r.InvokeCtx(context.Background(), "Print"); err == nil {
			t.Fatal("invoke against dead peer succeeded")
		}
	}
	if st := a.BreakerState("b"); st != "open" {
		t.Fatalf("breaker state = %s, want open", st)
	}

	// ...after which calls are rejected locally, far below the 10s deadline,
	// with the typed sentinel.
	start := time.Now()
	_, err = r.InvokeCtx(context.Background(), "Print")
	elapsed := time.Since(start)
	if !errors.Is(err, ErrPeerSuspected) {
		t.Fatalf("err = %v, want ErrPeerSuspected", err)
	}
	var ie *InvokeError
	if !errors.As(err, &ie) || ie.Cause != CauseUnreachable {
		t.Fatalf("err = %v, want unreachable *InvokeError", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("open-circuit call took %v, should fail fast", elapsed)
	}

	// The heartbeat probes through the open circuit (pings are exempt) and
	// closes it when the peer returns; OpenFor is a minute, so only the
	// heartbeat can close it within this test.
	hb, err := a.Monitor().StartHeartbeat([]ids.CoreID{"b"}, 20*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Stop()

	if err := cl.net.StartHost("b"); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-reachable:
		if ev.Source != "b" {
			t.Fatalf("coreReachable event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no coreReachable event after the peer returned")
	}
	waitFor(t, 2*time.Second, func() bool { return a.BreakerState("b") == "closed" })
	if got := invoke1(t, r, "Print"); got != "guarded" {
		t.Fatalf("invoke after recovery = %v", got)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	// Without a heartbeat, an open circuit lets one trial call through after
	// OpenFor; a successful trial closes the circuit.
	cl := newClusterOpts(t, Options{
		RequestTimeout: 10 * time.Second,
		Breaker:        BreakerPolicy{Threshold: 2, OpenFor: 100 * time.Millisecond},
	}, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "trial")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.net.StopHost("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, _ = r.InvokeCtx(context.Background(), "Print")
	}
	if st := a.BreakerState("b"); st != "open" {
		t.Fatalf("breaker state = %s, want open", st)
	}
	if err := cl.net.StartHost("b"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let OpenFor elapse
	if got := invoke1(t, r, "Print"); got != "trial" {
		t.Fatalf("half-open trial invoke = %v", got)
	}
	if st := a.BreakerState("b"); st != "closed" {
		t.Fatalf("breaker state after successful trial = %s, want closed", st)
	}
}

func TestBreakerDisabled(t *testing.T) {
	cl := newClusterOpts(t, Options{
		RequestTimeout: 5 * time.Second,
		Breaker:        BreakerPolicy{Threshold: 1, Disable: true},
	}, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "free")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.net.StopHost("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.InvokeCtx(context.Background(), "Print"); errors.Is(err, ErrPeerSuspected) {
			t.Fatal("disabled breaker rejected a call")
		}
	}
	if st := a.BreakerState("b"); st != "closed" {
		t.Fatalf("disabled breaker state = %s, want closed", st)
	}
}

// panicky is an anchor whose method panics — dispatch must contain it.
type panicky struct{ N int }

func (p *panicky) Boom() { panic("kaboom") }
func (p *panicky) Ok() int {
	p.N++
	return p.N
}

func TestMethodPanicRecoveredCoreSurvives(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a, b := cl.core("a"), cl.core("b")
	if err := b.Registry().Register("Panicky", (*panicky)(nil)); err != nil {
		t.Fatal(err)
	}
	r, err := a.NewCompletAt("b", "Panicky")
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.InvokeCtx(context.Background(), "Boom")
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InvokeError", err, err)
	}
	if ie.Cause != CauseRemote {
		t.Fatalf("cause = %v, want remote (the method ran and blew up)", ie.Cause)
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("error lacks panic diagnostics: %v", err)
	}
	// The hosting core survived: the same complet still serves calls.
	if got := invoke1(t, r, "Ok"); got != 1 {
		t.Fatalf("invoke after panic = %v", got)
	}
	if b.CompletCount() != 1 {
		t.Fatal("core lost the complet after a panicking invocation")
	}
}
