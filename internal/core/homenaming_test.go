package core

import (
	"testing"
	"time"

	"fargo/internal/ids"
)

func homeCluster(t *testing.T, names ...string) *cluster {
	t.Helper()
	cl := newCluster(t, names...)
	for _, c := range cl.cores {
		c.EnableHomeTracking()
	}
	return cl
}

func TestHomeTrackingAfterMoves(t *testing.T) {
	cl := homeCluster(t, "a", "b", "c", "d")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "homey")
	if err != nil {
		t.Fatal(err)
	}
	// Bounce the complet around.
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	if err := cl.core("b").MoveByID(r.Target(), "c"); err != nil {
		t.Fatal(err)
	}
	if err := cl.core("c").MoveByID(r.Target(), "d"); err != nil {
		t.Fatal(err)
	}
	// Home updates are async notifies; wait for the record to land.
	waitFor(t, 2*time.Second, func() bool {
		loc, err := a.LocateViaHome(r.Target())
		return err == nil && loc == "d"
	})
	// A third party resolves via the home in one query.
	loc, err := cl.core("b").LocateViaHome(r.Target())
	if err != nil {
		t.Fatal(err)
	}
	if loc != "d" {
		t.Fatalf("home says %v, want d", loc)
	}
}

func TestHomeLocateNeverMoved(t *testing.T) {
	cl := homeCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "stay")
	if err != nil {
		t.Fatal(err)
	}
	loc, err := cl.core("b").LocateViaHome(r.Target())
	if err != nil {
		t.Fatal(err)
	}
	if loc != "a" {
		t.Fatalf("loc = %v, want a (birth core)", loc)
	}
}

func TestHomeLocateUnknown(t *testing.T) {
	cl := homeCluster(t, "a", "b")
	ghost := ids.CompletID{Birth: "a", Seq: 404}
	if _, err := cl.core("b").LocateViaHome(ghost); err == nil {
		t.Fatal("unknown complet should fail home lookup")
	}
	if _, err := cl.core("a").LocateViaHome(ghost); err == nil {
		t.Fatal("unknown complet should fail local home lookup")
	}
}

func TestInvokeViaHome(t *testing.T) {
	cl := homeCluster(t, "a", "b", "c")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "via-home")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	if err := cl.core("b").MoveByID(r.Target(), "c"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		loc, err := a.LocateViaHome(r.Target())
		return err == nil && loc == "c"
	})
	// A core that never saw the complet invokes through the home — no
	// chain walk.
	res, err := cl.core("a").InvokeViaHome(r.Target(), "Print")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "via-home" {
		t.Fatalf("Print = %v", res[0])
	}
	// Local-path invoke via home (complet at home-queried core itself).
	res2, err := cl.core("c").InvokeViaHome(r.Target(), "Print")
	if err != nil {
		t.Fatal(err)
	}
	if res2[0] != "via-home" {
		t.Fatalf("local Print = %v", res2[0])
	}
}
