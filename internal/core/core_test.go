package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/ref"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

// --- test anchors -----------------------------------------------------------

// msg mirrors Figure 3's Message complet.
type msg struct {
	Text  string
	Count int
}

func (m *msg) Init(text string) { m.Text = text }
func (m *msg) Print() string    { m.Count++; return m.Text }
func (m *msg) Set(text string)  { m.Text = text }
func (m *msg) Calls() int       { return m.Count }
func (m *msg) Fail() error      { return errors.New("deliberate failure") }
func (m *msg) Echo(v int) int   { return v }
func (m *msg) Concat(a, b string) string {
	return a + b
}

// holder is a complet with one outgoing complet reference.
type holder struct {
	Label string
	Out   *ref.Ref
}

func (h *holder) Init(label string) { h.Label = label }
func (h *holder) SetOut(r *ref.Ref) { h.Out = r }
func (h *holder) GetOut() *ref.Ref  { return h.Out }
func (h *holder) CallOut() (string, error) {
	if h.Out == nil {
		return "", errors.New("no outgoing reference")
	}
	res, err := h.Out.Invoke("Print")
	if err != nil {
		return "", err
	}
	s, _ := res[0].(string)
	return s, nil
}

// witness records movement callbacks in order.
type witness struct {
	Name   string
	Events []string
}

func (w *witness) Init(name string) { w.Name = name }
func (w *witness) Log() []string    { return w.Events }
func (w *witness) PreDeparture(dest ids.CoreID) {
	w.Events = append(w.Events, "preDeparture:"+dest.String())
}
func (w *witness) PostDeparture(dest ids.CoreID) {
	w.Events = append(w.Events, "postDeparture:"+dest.String())
}
func (w *witness) PreArrival(from ids.CoreID) {
	w.Events = append(w.Events, "preArrival:"+from.String())
}
func (w *witness) PostArrival(from ids.CoreID) {
	w.Events = append(w.Events, "postArrival:"+from.String())
}

// agent is a self-moving complet exercising continuations.
type agent struct {
	Visited []string
}

func (a *agent) Note(core string) { a.Visited = append(a.Visited, core) }
func (a *agent) Trail() []string  { return a.Visited }

// eventSink is a complet that counts events delivered to it (distributed
// event listener tests).
type eventSink struct {
	N int
}

func (s *eventSink) OnEvent(event string, value float64, source, complet, detail string) {
	s.N++
}
func (s *eventSink) Count() int { return s.N }

// printerLike is used for stamp-reference tests.
type printerLike struct {
	Site string
}

func (p *printerLike) Init(site string) { p.Site = site }
func (p *printerLike) Where() string    { return p.Site }

// registerTestTypes registers all test anchor types into a registry.
func registerTestTypes(t *testing.T, reg *registry.Registry) {
	t.Helper()
	for name, proto := range map[string]any{
		"Msg":     (*msg)(nil),
		"Holder":  (*holder)(nil),
		"Witness": (*witness)(nil),
		"Agent":   (*agent)(nil),
		"Printer": (*printerLike)(nil),
		"Sink":    (*eventSink)(nil),
	} {
		if err := reg.Register(name, proto); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
}

// --- cluster helper ----------------------------------------------------------

type cluster struct {
	t     *testing.T
	net   *netsim.Network
	cores map[ids.CoreID]*Core
}

// newCluster builds named cores over one simulated network.
func newCluster(t *testing.T, names ...string) *cluster {
	t.Helper()
	cl := &cluster{
		t:     t,
		net:   netsim.NewNetwork(7),
		cores: make(map[ids.CoreID]*Core, len(names)),
	}
	for _, name := range names {
		tr, err := transport.NewSim(cl.net, ids.CoreID(name))
		if err != nil {
			t.Fatal(err)
		}
		reg := registry.New()
		registerTestTypes(t, reg)
		c, err := New(tr, reg, Options{RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		cl.cores[ids.CoreID(name)] = c
	}
	t.Cleanup(func() {
		for _, c := range cl.cores {
			_ = c.Shutdown(0)
		}
		cl.net.Close()
	})
	return cl
}

func (cl *cluster) core(name string) *Core {
	c, ok := cl.cores[ids.CoreID(name)]
	if !ok {
		cl.t.Fatalf("no core %q in cluster", name)
	}
	return c
}

// invoke1 performs an invocation expecting one result.
func invoke1(t *testing.T, r *ref.Ref, method string, args ...any) any {
	t.Helper()
	res, err := r.Invoke(method, args...)
	if err != nil {
		t.Fatalf("invoke %s: %v", method, err)
	}
	if len(res) != 1 {
		t.Fatalf("invoke %s: %d results", method, len(res))
	}
	return res[0]
}

// --- basic lifecycle ----------------------------------------------------------

func TestNewCompletAndLocalInvoke(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if got := invoke1(t, r, "Print"); got != "hello" {
		t.Fatalf("Print = %v", got)
	}
	if a.CompletCount() != 1 {
		t.Fatalf("CompletCount = %d", a.CompletCount())
	}
	if loc, err := r.Meta().Location(); err != nil || loc != "a" {
		t.Fatalf("Location = %v, %v", loc, err)
	}
}

func TestRemoteInstantiationAndInvoke(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "remote")
	if err != nil {
		t.Fatal(err)
	}
	if cl.core("b").CompletCount() != 1 {
		t.Fatal("complet not installed on b")
	}
	if got := invoke1(t, r, "Print"); got != "remote" {
		t.Fatalf("Print = %v", got)
	}
	if loc, err := r.Meta().Location(); err != nil || loc != "b" {
		t.Fatalf("Location = %v, %v", loc, err)
	}
}

func TestInvocationByValueSemantics(t *testing.T) {
	// Complets are always remote to each other w.r.t. parameter passing:
	// even a co-located invocation must deep-copy its arguments (§2).
	cl := newCluster(t, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "x")
	if err != nil {
		t.Fatal(err)
	}
	s := "original"
	if got := invoke1(t, r, "Concat", s, "!"); got != "original!" {
		t.Fatalf("Concat = %v", got)
	}
	// State mutations persist across invocations (same anchor instance).
	invoke1(t, r, "Print")
	invoke1(t, r, "Print")
	if got := invoke1(t, r, "Calls"); got != 2 {
		t.Fatalf("Calls = %v, want 2", got)
	}
}

func TestInvocationErrorsPropagate(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	for _, dest := range []ids.CoreID{"a", "b"} {
		r, err := a.NewCompletAt(dest, "Msg", "e")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Invoke("Fail"); err == nil {
			t.Fatalf("dest %s: error did not propagate", dest)
		}
		if _, err := r.Invoke("NoSuchMethod"); err == nil {
			t.Fatalf("dest %s: missing method did not error", dest)
		}
	}
}

func TestRefArgumentPassing(t *testing.T) {
	// Passing a complet reference as an argument: the receiver can invoke
	// through it (complets passed by reference, §2).
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	target, err := a.NewComplet("Msg", "shared-target")
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.NewCompletAt("b", "Holder", "h")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Invoke("SetOut", target); err != nil {
		t.Fatal(err)
	}
	if got := invoke1(t, h, "CallOut"); got != "shared-target" {
		t.Fatalf("CallOut = %v", got)
	}
	// The target's call count incremented exactly once, on the original.
	if got := invoke1(t, target, "Calls"); got != 1 {
		t.Fatalf("Calls = %v, want 1 (no copy of the complet)", got)
	}
}

func TestAnchorArgumentBecomesRef(t *testing.T) {
	// Passing a raw local anchor converts to a reference automatically.
	cl := newCluster(t, "a")
	a := cl.core("a")
	target, err := a.NewComplet("Msg", "anchor-pass")
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.NewComplet("Holder", "h")
	if err != nil {
		t.Fatal(err)
	}
	// Dig out the raw anchor (test-only) and pass it.
	entry, ok := a.lookup(target.Target())
	if !ok {
		t.Fatal("target not found")
	}
	if _, err := h.Invoke("SetOut", entry.anchor); err != nil {
		t.Fatal(err)
	}
	if got := invoke1(t, h, "CallOut"); got != "anchor-pass" {
		t.Fatalf("CallOut = %v", got)
	}
}

func TestRefOf(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "self")
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := a.lookup(r.Target())
	self, err := a.RefOf(entry.anchor)
	if err != nil {
		t.Fatal(err)
	}
	if self.Target() != r.Target() {
		t.Fatalf("RefOf target %v, want %v", self.Target(), r.Target())
	}
	if _, err := a.RefOf(&msg{}); err == nil {
		t.Fatal("RefOf of unhosted anchor should fail")
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	if _, err := a.NewComplet("Ghost"); err == nil {
		t.Fatal("unknown type should fail locally")
	}
	if _, err := a.NewCompletAt("b", "Ghost"); err == nil {
		t.Fatal("unknown type should fail remotely")
	}
}

func TestCoreInfo(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	if _, err := a.NewCompletAt("b", "Msg", "x"); err != nil {
		t.Fatal(err)
	}
	info, err := a.CoreInfo("b")
	if err != nil {
		t.Fatal(err)
	}
	if info.Core != "b" || len(info.Complets) != 1 || info.Complets[0].TypeName != "Msg" {
		t.Fatalf("info = %+v", info)
	}
	// Self-info works without the network.
	selfInfo, err := a.CoreInfo("a")
	if err != nil {
		t.Fatal(err)
	}
	if selfInfo.Core != "a" {
		t.Fatalf("self info = %+v", selfInfo)
	}
}

func TestShutdownRejectsFurtherUse(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	if err := a.Shutdown(0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewComplet("Msg", "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewComplet after shutdown: %v", err)
	}
	if err := a.Shutdown(0); err != nil {
		t.Fatalf("double shutdown: %v", err)
	}
}

func TestTrackerSharing(t *testing.T) {
	// Many refs to one target share a single tracker per core (§3.1).
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	target, err := a.NewCompletAt("b", "Msg", "shared")
	if err != nil {
		t.Fatal(err)
	}
	// First use materializes the single shared tracker.
	if _, err := target.Invoke("Print"); err != nil {
		t.Fatal(err)
	}
	before := a.TrackerCount()
	for i := 0; i < 10; i++ {
		r := ref.New(target.Target(), "Msg", "b", nil)
		r.Bind(a.binder())
		if _, err := r.Invoke("Print"); err != nil {
			t.Fatal(err)
		}
	}
	if after := a.TrackerCount(); after != before {
		t.Fatalf("tracker count grew from %d to %d; refs must share trackers", before, after)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "c")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := r.Invoke("Echo", i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPeersTracked(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	if _, err := a.NewCompletAt("b", "Msg", "x"); err != nil {
		t.Fatal(err)
	}
	peers := a.Peers()
	if len(peers) != 1 || peers[0] != "b" {
		t.Fatalf("peers = %v", peers)
	}
}

func TestCompletsListing(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Name("the-msg", r); err != nil {
		t.Fatal(err)
	}
	infos := a.Complets()
	if len(infos) != 1 {
		t.Fatalf("Complets = %+v", infos)
	}
	if infos[0].TypeName != "Msg" || len(infos[0].Names) != 1 || infos[0].Names[0] != "the-msg" {
		t.Fatalf("info = %+v", infos[0])
	}
}

func fmtTrail(vals []any) string {
	return fmt.Sprint(vals...)
}
