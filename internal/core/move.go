package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"fargo/internal/flight"
	"fargo/internal/ids"
	"fargo/internal/journal"
	"fargo/internal/ref"
	"fargo/internal/wire"
)

// Movement callbacks (§3.3): anchors may implement any subset of these
// optional interfaces; the movement protocol invokes them at the
// corresponding phase.

// PreDeparture is invoked before the movement at the sending core.
type PreDeparture interface {
	PreDeparture(dest ids.CoreID)
}

// PreArrival is invoked at the receiving core after the closure is decoded
// but before its references are re-linked (i.e. "before finishing
// unmarshaling").
type PreArrival interface {
	PreArrival(from ids.CoreID)
}

// PostArrival is invoked at the receiving core after the complet is fully
// installed.
type PostArrival interface {
	PostArrival(from ids.CoreID)
}

// PostDeparture is invoked at the sending core right before the old copy of
// the complet is released for garbage collection.
type PostDeparture interface {
	PostDeparture(dest ids.CoreID)
}

// Move relocates the referenced complet (and, per its outgoing references'
// relocators, related complets) to the destination core. The reference may
// point anywhere: if the complet is hosted elsewhere, the command is routed
// to its owner (Figure 3: Carrier.move semantics without continuation). The
// operation is bounded by the core's default request budget; use MoveCtx to
// supply a deadline or cancellation of your own.
func (c *Core) Move(r *ref.Ref, dest ids.CoreID) error {
	return c.MoveWithContinuationCtx(context.Background(), r, dest, "", nil)
}

// MoveCtx is Move bounded by the caller's context. The deadline covers the
// whole operation — routing the command along the tracker chain, marshaling,
// shipping the bundle, and the receiver's installation all deduct from one
// budget that travels on the wire. Cancelling the context abandons the wait;
// note that a bundle already in flight may still install at the destination
// (the moved complet remains reachable through its trackers either way — see
// DESIGN.md on movement atomicity).
func (c *Core) MoveCtx(ctx context.Context, r *ref.Ref, dest ids.CoreID, opts ...ref.InvokeOption) error {
	return c.MoveWithContinuationCtx(ctx, r, dest, "", nil, opts...)
}

// MoveWithContinuation relocates the complet and, after arrival, invokes the
// named continuation method on it with the given arguments (§3.3: weak
// mobility's "call with continuation" style). An empty method means no
// continuation.
func (c *Core) MoveWithContinuation(r *ref.Ref, dest ids.CoreID, method string, args []any) error {
	return c.MoveWithContinuationCtx(context.Background(), r, dest, method, args)
}

// MoveWithContinuationCtx is MoveWithContinuation bounded by the caller's
// context. Movement is not idempotent and is never retried by the runtime;
// on failure the *InvokeError cause distinguishes a destination that
// answered with an error from one that never answered.
func (c *Core) MoveWithContinuationCtx(ctx context.Context, r *ref.Ref, dest ids.CoreID, method string, args []any, opts ...ref.InvokeOption) error {
	if c.isClosed() {
		return ErrClosed
	}
	o := ref.BuildCallOptions(opts)
	op := fmt.Sprintf("move %s to %s", r.Target(), dest)
	ctx, cancel := c.withBudget(ctx, o.Timeout)
	defer cancel()
	ctx, sp := c.tracer.StartSpan(ctx, op)
	defer sp.Finish()
	start := time.Now()
	var contArgs []byte
	if method != "" {
		var err error
		contArgs, _, err = wire.EncodeArgs(c.anchorsToRefs(args))
		if err != nil {
			err = fmt.Errorf("core: encode continuation args of %s: %w", op, err)
			sp.SetError(err)
			c.met.moveErrs.Inc()
			return err
		}
	}
	if err := c.moveCommand(ctx, r.Target(), r.Hint(), dest, method, contArgs, 0, o); err != nil {
		sp.SetError(err)
		c.met.moveErrs.Inc()
		return invokeErr(op, r.Target(), "", err)
	}
	c.met.moves.Inc()
	c.met.moveLatency.Observe(float64(time.Since(start).Nanoseconds()))
	r.SetHint(dest)
	return nil
}

// MoveSelf schedules a complet's own relocation: called from WITHIN one of
// the complet's methods (weak mobility, §3.3), it returns immediately and
// performs the move once the current invocation — which holds the complet's
// invocation lock — has returned. The continuation method (if any) then runs
// at the destination. Errors are reported to the core's logger (the initiating
// stack frame is gone by the time they can occur).
func (c *Core) MoveSelf(anchor any, dest ids.CoreID, contMethod string, args []any) error {
	if c.isClosed() {
		return ErrClosed
	}
	self, err := c.RefOf(anchor)
	if err != nil {
		return err
	}
	var contArgs []byte
	if contMethod != "" {
		contArgs, _, err = wire.EncodeArgs(c.anchorsToRefs(args))
		if err != nil {
			return err
		}
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ctx, cancel := c.withBudget(context.Background(), 0)
		defer cancel()
		ctx, sp := c.tracer.StartSpan(ctx, fmt.Sprintf("move-self %s to %s", self.Target(), dest))
		defer sp.Finish()
		start := time.Now()
		if err := c.moveCommand(ctx, self.Target(), self.Hint(), dest, contMethod, contArgs, 0, ref.CallOptions{}); err != nil {
			sp.SetError(err)
			c.met.moveErrs.Inc()
			c.opts.Logf("fargo core %s: self-move of %s to %s: %v", c.id, self.Target(), dest, err)
			return
		}
		c.met.moves.Inc()
		c.met.moveLatency.Observe(float64(time.Since(start).Nanoseconds()))
	}()
	return nil
}

// MoveByID relocates a complet identified by ID (used by the shell, scripts
// and event-driven policies, which hold IDs rather than stubs).
func (c *Core) MoveByID(target ids.CompletID, dest ids.CoreID) error {
	return c.MoveByIDCtx(context.Background(), target, dest)
}

// MoveByIDCtx is MoveByID bounded by the caller's context.
func (c *Core) MoveByIDCtx(ctx context.Context, target ids.CompletID, dest ids.CoreID, opts ...ref.InvokeOption) error {
	if c.isClosed() {
		return ErrClosed
	}
	o := ref.BuildCallOptions(opts)
	ctx, cancel := c.withBudget(ctx, o.Timeout)
	defer cancel()
	ctx, sp := c.tracer.StartSpan(ctx, fmt.Sprintf("move %s to %s", target, dest))
	defer sp.Finish()
	start := time.Now()
	if err := c.moveCommand(ctx, target, "", dest, "", nil, 0, o); err != nil {
		sp.SetError(err)
		c.met.moveErrs.Inc()
		return invokeErr(fmt.Sprintf("move %s to %s", target, dest), target, "", err)
	}
	c.met.moves.Inc()
	c.met.moveLatency.Observe(float64(time.Since(start).Nanoseconds()))
	return nil
}

// moveCommand executes the move if the complet is local, or routes the
// command along the tracker chain to its owner. The context's remaining
// deadline travels with the routed command, so every chain hop and the final
// owner-side bundle shipment deduct from the caller's single budget.
func (c *Core) moveCommand(ctx context.Context, target ids.CompletID, hint ids.CoreID, dest ids.CoreID, contMethod string, contArgs []byte, hops int, opts ref.CallOptions) error {
	repaired := false
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: moving %s: %w", target, err)
		}
		if hops+attempt > maxHops {
			return c.tripHopBudget(fmt.Sprintf("move %s", target), target)
		}
		t := c.trackerFor(target, hint)
		local, next := t.point()
		if local {
			err := c.moveLocal(ctx, target, dest, contMethod, contArgs, opts)
			if err == errStaleLocal {
				continue
			}
			return err
		}
		if next == c.id {
			return fmt.Errorf("%w: %s (self-referential tracker)", ErrUnknownComplet, target)
		}
		payload, err := wire.EncodePayload(wire.MoveCommand{
			Target:             target,
			Dest:               dest,
			ContinuationMethod: contMethod,
			ContinuationArgs:   contArgs,
			Hops:               hops + attempt + 1,
		})
		if err != nil {
			return err
		}
		env, err := c.requestOpts(ctx, next, wire.KindMoveCmd, payload, opts)
		if err != nil {
			// Self-healing (repair.go): route around a dead chain hop by
			// re-resolving through the target's home core, once.
			if !repaired && repairable(err) {
				if _, ok := c.repairChain(ctx, target, next, fmt.Sprintf("move %s", target)); ok {
					repaired = true
					continue
				}
			}
			return fmt.Errorf("core: route move of %s via %s: %w", target, next, err)
		}
		var reply wire.MoveCommandReply
		if err := wire.DecodePayload(env.Payload, &reply); err != nil {
			return err
		}
		if reply.Err != "" {
			if strings.Contains(reply.Err, ErrMoveInFlight.Error()) {
				// Resurface the owner's sentinel across the wire so
				// errors.Is(err, ErrMoveInFlight) holds for routed moves too.
				return fmt.Errorf("core: move %s: %w", target, ErrMoveInFlight)
			}
			return &peerError{msg: fmt.Sprintf("core: move %s: %s", target, reply.Err)}
		}
		// Refresh our tracker toward the destination (shorten refuses
		// conflicting updates: if the complet has already bounced back
		// here, the local repository state wins).
		t.shorten(dest, c.id)
		return nil
	}
}

// handleMoveCmd serves a routed movement command under the remaining budget
// the envelope carried.
func (c *Core) handleMoveCmd(ctx context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.MoveCommand
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	ctx, sp := c.tracer.ChildSpan(ctx, "serve move-cmd")
	if sp != nil {
		sp.SetAttr("target", req.Target.String())
		sp.SetAttr("dest", req.Dest.String())
		sp.SetAttr("hops", strconv.Itoa(req.Hops))
	}
	defer sp.Finish()
	reply := wire.MoveCommandReply{}
	if err := c.moveCommand(ctx, req.Target, "", req.Dest, req.ContinuationMethod, req.ContinuationArgs, req.Hops, ref.CallOptions{}); err != nil {
		sp.SetError(err)
		reply.Err = err.Error()
	}
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindMoveCmdReply, out, nil
}

// moveLocal performs the owner-side movement protocol (§3.3):
//
//  1. Serialize against other outgoing moves, then W-lock every complet that
//     will travel, blocking invocations for the duration.
//  2. Marshal each closure under a ModeMove collector; relocators schedule
//     pull targets (which join the bundle) and duplicate targets (copies join
//     the bundle; remote ones are cloned ahead via their owners).
//  3. Ship the whole bundle in ONE inter-core message.
//  4. On acknowledgement, flip local trackers to forwarders, fire callbacks
//     and events, and release the old copies.
//
// Remote pull targets (not hosted here) cannot join this bundle; they are
// moved to the same destination with follow-up commands (documented deviation
// — the single-message property holds for co-located closures, the common
// case the paper describes).
func (c *Core) moveLocal(ctx context.Context, rootID ids.CompletID, dest ids.CoreID, contMethod string, contArgs []byte, opts ref.CallOptions) error {
	if dest == c.id {
		// Already here; run the continuation (if any) for uniformity.
		entry, ok := c.lookup(rootID)
		if !ok {
			return errStaleLocal
		}
		if contMethod != "" {
			c.runContinuation(entry, contMethod, contArgs)
		}
		return nil
	}
	if dest.Nil() {
		return fmt.Errorf("core: move %s: empty destination", rootID)
	}

	c.moveOpMu.Lock()
	defer c.moveOpMu.Unlock()
	if err := ctx.Err(); err != nil {
		// The budget ran out while waiting for a concurrent move to
		// finish; give up before locking anything.
		return fmt.Errorf("core: moving %s: %w", rootID, err)
	}
	// The readiness verdict (health.go) reports a move in flight from here
	// until the protocol finishes either way.
	c.moveStarted()
	defer c.moveFinished()
	protoStart := time.Now()

	// The bundle span covers marshaling, pre-cloning of remote duplicate
	// targets, and the single-message shipment; the receiver's installation
	// span parents under it via the envelope's trace context.
	ctx, bsp := c.tracer.ChildSpan(ctx, "move.bundle")
	defer bsp.Finish()

	var (
		locked      []*complet
		entries     []wire.BundleEntry
		remotePulls []ids.CompletID
		remoteDups  []ids.CompletID
		preDup      = map[ids.CompletID]ids.CompletID{}
		visited     = map[ids.CompletID]bool{rootID: true}
		dupDone     = map[ids.CompletID]bool{}
		queue       = []ids.CompletID{rootID}
	)
	unlock := func() {
		for _, e := range locked {
			e.moveMu.Unlock()
		}
	}
	fail := func(err error) error {
		unlock()
		bsp.SetError(err)
		c.flight.Record(flight.Event{
			Kind:          flight.KindMoveFailed,
			Complet:       rootID.String(),
			Peer:          dest.String(),
			DurationNanos: time.Since(protoStart).Nanoseconds(),
			Err:           err.Error(),
		})
		return err
	}

	targetLocal := func(id ids.CompletID) bool {
		_, ok := c.lookup(id)
		return ok
	}

	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		entry, ok := c.lookup(id)
		if !ok {
			if id == rootID {
				unlock()
				return errStaleLocal
			}
			// A pull target raced away; it will be chased with a
			// follow-up command.
			remotePulls = append(remotePulls, id)
			continue
		}
		entry.moveMu.Lock()
		if entry.gone {
			entry.moveMu.Unlock()
			if id == rootID {
				unlock()
				return errStaleLocal
			}
			remotePulls = append(remotePulls, id)
			continue
		}
		locked = append(locked, entry)

		if cb, ok := entry.anchor.(PreDeparture); ok {
			cb.PreDeparture(dest)
		}

		payload, coll, err := wire.EncodeClosure(entry.anchor, ref.MoveContext{
			Source: id,
			From:   c.id,
			To:     dest,
		}, targetLocal)
		if err != nil {
			return fail(fmt.Errorf("core: marshal %s for move: %w", id, err))
		}
		entries = append(entries, wire.BundleEntry{
			ID:       id,
			TypeName: entry.typeName,
			Payload:  payload,
		})

		for _, p := range coll.Pulls {
			if visited[p] {
				continue
			}
			visited[p] = true
			if targetLocal(p) {
				queue = append(queue, p)
			} else {
				remotePulls = append(remotePulls, p)
			}
		}
		for _, d := range coll.Duplicates {
			if dupDone[d] {
				continue
			}
			dupDone[d] = true
			if dupEntry, ok := c.lookup(d); ok {
				dupPayload, err := c.encodeDuplicate(dupEntry)
				if err != nil {
					return fail(fmt.Errorf("core: marshal duplicate %s: %w", d, err))
				}
				entries = append(entries, wire.BundleEntry{
					ID:       d,
					TypeName: dupEntry.typeName,
					Payload:  dupPayload,
					Dup:      true,
				})
			} else {
				remoteDups = append(remoteDups, d)
			}
		}
	}

	// Clone remote duplicate targets ahead of the bundle so the receiver
	// can bind Dup-flagged references to the copies.
	for _, d := range remoteDups {
		newID, err := c.cloneCommand(ctx, d, dest, 0, opts)
		if err != nil {
			c.opts.Logf("fargo core %s: duplicate of remote %s at %s failed (reference degrades to link): %v", c.id, d, dest, err)
			continue
		}
		preDup[d] = newID
	}

	// Carry naming entries for the moved complets.
	names := map[string]int{}
	c.mu.Lock()
	for name, r := range c.names {
		for i, e := range entries {
			if !e.Dup && e.ID == r.Target() {
				names[name] = i
			}
		}
	}
	c.mu.Unlock()

	// One inter-core message for the whole bundle (§3.3). The remaining
	// budget rides the envelope, so the receiver can refuse to start an
	// installation it cannot finish in time. The bundle carries a move
	// epoch: the destination journals and installs at most once per epoch,
	// and the two-phase records below (PREPARE before shipping, COMMIT after
	// acknowledgement — DESIGN.md §13) let a crashed source converge to
	// exactly one live copy on recovery.
	pm := &pendingMove{epoch: c.moveEpochs.Next(), dest: dest, root: rootID}
	for _, e := range entries {
		if !e.Dup {
			pm.complets = append(pm.complets, e.ID)
		}
	}
	payload, err := wire.EncodePayload(wire.MoveRequest{
		Entries:            entries,
		ContinuationMethod: contMethod,
		ContinuationArgs:   contArgs,
		Names:              names,
		PreDup:             preDup,
		Epoch:              pm.epoch,
		// Invocation accounting travels with the complets (meters key on
		// complet identity, so rates survive relocation); the departing
		// copies are captured while their W-locks block new invocations.
		Meters: c.mon.exportMeters(pm.complets),
		// Per-method SLO telemetry travels the same way (DESIGN.md §16).
		MethodMeters: c.mon.exportMethodMeters(pm.complets),
	})
	if err != nil {
		return fail(err)
	}
	if c.stepCrash(StepBeforePrepare, rootID) {
		return fail(errSimulatedCrash)
	}
	if err := c.prepareMove(pm); err != nil {
		return fail(fmt.Errorf("core: move %s to %s: %w", rootID, dest, err))
	}
	if c.stepCrash(StepAfterPrepare, rootID) {
		// A crash between PREPARE and the shipment leaves the move pending;
		// recovery probes the destination and rolls it back.
		return fail(errSimulatedCrash)
	}
	if bsp != nil {
		bsp.SetAttr("dest", dest.String())
		bsp.SetAttr("complets", strconv.Itoa(len(entries)))
		bsp.SetAttr("bytes", strconv.Itoa(len(payload)))
	}
	env, err := c.requestOpts(ctx, dest, wire.KindMove, payload, opts)
	var reply wire.MoveReply
	if err == nil {
		if derr := wire.DecodePayload(env.Payload, &reply); derr != nil {
			err = derr
		}
	}
	if err != nil {
		if ctx.Err() != nil {
			// The caller's budget died mid-shipment; it cannot wait for an
			// outcome probe. Resolve in the background: the move stays
			// pending (re-moves fail with ErrMoveInFlight) until the probe
			// settles it — commit-and-release if the bundle installed,
			// rollback if the destination durably refuses.
			c.resolveAsync(pm)
			return fail(fmt.Errorf("core: move bundle to %s: %w", dest, err))
		}
		// The outcome is unknown — the bundle (or its acknowledgement) was
		// lost. Ask the destination directly before giving up.
		committed, stillPending := c.resolveUnknownOutcome(dest, pm.epoch, rootID)
		switch {
		case committed:
			// It installed; proceed exactly as if the ack had arrived.
			if _, serr := c.settleMove(pm.epoch, journal.OpCommit); serr != nil {
				return fail(fmt.Errorf("core: move %s to %s: commit: %w", rootID, dest, serr))
			}
		case stillPending:
			// Unresolvable right now: the move stays pending (further moves
			// of these complets fail with ErrMoveInFlight) until Recover
			// reaches the destination.
			return fail(fmt.Errorf("core: move bundle to %s: %w (outcome unknown; move left pending for recovery)", dest, err))
		default:
			// The destination durably refused the epoch: safe rollback.
			if _, serr := c.settleMove(pm.epoch, journal.OpAbort); serr != nil {
				return fail(fmt.Errorf("core: move %s to %s: abort: %w", rootID, dest, serr))
			}
			return fail(fmt.Errorf("core: move bundle to %s: %w", dest, err))
		}
	} else if reply.Err != "" {
		// The destination answered with a verdict: it did not install.
		if _, serr := c.settleMove(pm.epoch, journal.OpAbort); serr != nil {
			return fail(fmt.Errorf("core: move %s to %s: abort: %w", rootID, dest, serr))
		}
		return fail(&peerError{msg: fmt.Sprintf("core: move bundle to %s: %s", dest, reply.Err)})
	} else {
		if c.stepCrash(StepAfterSend, rootID) {
			// Crash between the ack and COMMIT: both sides hold a copy until
			// recovery probes the destination and completes the move.
			return fail(errSimulatedCrash)
		}
		if _, serr := c.settleMove(pm.epoch, journal.OpCommit); serr != nil {
			return fail(fmt.Errorf("core: move %s to %s: commit: %w", rootID, dest, serr))
		}
	}
	if c.stepCrash(StepAfterCommit, rootID) {
		// Crash after COMMIT but before release: replaying the journal makes
		// recovery release the stale local copies.
		return fail(errSimulatedCrash)
	}

	// Success: flip trackers, mark entries gone, fire callbacks/events.
	c.flight.Record(flight.Event{
		Kind:          flight.KindMove,
		Complet:       rootID.String(),
		Peer:          dest.String(),
		Bytes:         len(payload),
		DurationNanos: time.Since(protoStart).Nanoseconds(),
		Detail:        fmt.Sprintf("%d complet(s)", len(entries)),
	})
	for _, e := range locked {
		e.gone = true
	}
	unlock()
	// The departed complets' accounting now lives at the destination
	// (shipped with the bundle); dropping it here keeps every meter counted
	// at exactly one core.
	c.mon.dropMeters(pm.complets)
	c.mon.dropMethodMeters(pm.complets)
	for _, e := range locked {
		c.remove(e.id, dest)
		if cb, ok := e.anchor.(PostDeparture); ok {
			cb.PostDeparture(dest)
		}
		c.mon.fireBuiltin(EventCompletDeparted, e.id, dest.String())
	}

	// Chase pull targets that were not co-located.
	for _, p := range remotePulls {
		if err := c.moveCommand(ctx, p, "", dest, "", nil, 0, opts); err != nil {
			c.opts.Logf("fargo core %s: pull of remote %s to %s failed: %v", c.id, p, dest, err)
		}
	}
	return nil
}

// encodeDuplicate marshals a copy of a complet's closure for a duplicate
// reference. The copy's own outgoing references are degraded to link
// (ModeParam): a replica does not drag further complets around.
func (c *Core) encodeDuplicate(entry *complet) ([]byte, error) {
	entry.moveMu.RLock()
	defer entry.moveMu.RUnlock()
	if entry.gone {
		return nil, errStaleLocal
	}
	data, _, err := wire.EncodeArgs([]any{entry.anchor})
	return data, err
}

// cloneCommand asks the owner of target to install a copy at dest.
func (c *Core) cloneCommand(ctx context.Context, target ids.CompletID, dest ids.CoreID, hops int, opts ref.CallOptions) (ids.CompletID, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return ids.CompletID{}, fmt.Errorf("core: cloning %s: %w", target, err)
		}
		if hops+attempt > maxHops {
			return ids.CompletID{}, c.tripHopBudget(fmt.Sprintf("clone %s", target), target)
		}
		t := c.trackerFor(target, "")
		local, next := t.point()
		if local {
			newID, err := c.cloneLocal(ctx, target, dest, opts)
			if err == errStaleLocal {
				continue
			}
			return newID, err
		}
		if next == c.id {
			return ids.CompletID{}, fmt.Errorf("%w: %s (self-referential tracker)", ErrUnknownComplet, target)
		}
		payload, err := wire.EncodePayload(wire.CloneCommand{Target: target, Dest: dest, Hops: hops + attempt + 1})
		if err != nil {
			return ids.CompletID{}, err
		}
		env, err := c.requestOpts(ctx, next, wire.KindClone, payload, opts)
		if err != nil {
			return ids.CompletID{}, fmt.Errorf("core: route clone of %s via %s: %w", target, next, err)
		}
		var reply wire.CloneCommandReply
		if err := wire.DecodePayload(env.Payload, &reply); err != nil {
			return ids.CompletID{}, err
		}
		if reply.Err != "" {
			return ids.CompletID{}, &peerError{msg: fmt.Sprintf("core: clone %s: %s", target, reply.Err)}
		}
		return reply.NewID, nil
	}
}

// cloneLocal ships a copy of a locally hosted complet to dest as a
// single-entry Dup bundle and returns the copy's identity.
func (c *Core) cloneLocal(ctx context.Context, target ids.CompletID, dest ids.CoreID, opts ref.CallOptions) (ids.CompletID, error) {
	entry, ok := c.lookup(target)
	if !ok {
		return ids.CompletID{}, errStaleLocal
	}
	data, err := c.encodeDuplicate(entry)
	if err != nil {
		return ids.CompletID{}, err
	}
	if dest == c.id {
		// Local clone: install directly.
		return c.installDuplicate(entry.typeName, data)
	}
	payload, err := wire.EncodePayload(wire.MoveRequest{
		Entries: []wire.BundleEntry{{
			ID:       target,
			TypeName: entry.typeName,
			Payload:  data,
			Dup:      true,
		}},
	})
	if err != nil {
		return ids.CompletID{}, err
	}
	env, err := c.requestOpts(ctx, dest, wire.KindMove, payload, opts)
	if err != nil {
		return ids.CompletID{}, fmt.Errorf("core: clone bundle to %s: %w", dest, err)
	}
	var reply wire.MoveReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return ids.CompletID{}, err
	}
	if reply.Err != "" {
		return ids.CompletID{}, &peerError{msg: fmt.Sprintf("core: clone to %s: %s", dest, reply.Err)}
	}
	newID, ok := reply.DupMap[target]
	if !ok {
		return ids.CompletID{}, fmt.Errorf("core: clone to %s: no copy identity returned", dest)
	}
	return newID, nil
}

// handleClone serves a routed clone command.
func (c *Core) handleClone(ctx context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.CloneCommand
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	reply := wire.CloneCommandReply{}
	newID, err := c.cloneCommand(ctx, req.Target, req.Dest, req.Hops, ref.CallOptions{})
	if err != nil {
		reply.Err = err.Error()
	} else {
		reply.NewID = newID
	}
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindCloneReply, out, nil
}

// installDuplicate decodes a duplicate payload (encoded by encodeDuplicate)
// and installs it under a fresh identity.
func (c *Core) installDuplicate(typeName string, data []byte) (ids.CompletID, error) {
	vals, decoded, err := wire.DecodeArgs(data)
	if err != nil {
		return ids.CompletID{}, err
	}
	if len(vals) != 1 {
		return ids.CompletID{}, fmt.Errorf("core: duplicate payload holds %d values", len(vals))
	}
	c.bindDecoded(decoded)
	newID := c.mint.Next()
	c.install(newID, typeName, vals[0])
	c.mon.fireBuiltin(EventCompletArrived, newID, "duplicate")
	return newID, nil
}

// arrivedComplet is the receiver-side record of one bundle entry during
// installation.
type arrivedComplet struct {
	id       ids.CompletID
	typeName string
	anchor   any
	refs     []*ref.Ref
	dup      bool
}

// handleMove installs an arriving movement bundle (§3.3, receiver side):
// decode every closure, assign fresh identities to duplicates, re-bind
// references (dup → copies, stamp → equivalent local complets), install
// complets and trackers, fire callbacks/events, then run the continuation.
// The context carries the sender's remaining budget: an installation that
// cannot start before the deadline is refused outright, so the sender keeps
// the complets instead of racing a timed-out reply.
func (c *Core) handleMove(ctx context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.MoveRequest
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	_, sp := c.tracer.ChildSpan(ctx, "move.install")
	if sp != nil {
		sp.SetAttr("from", env.From.String())
		sp.SetAttr("complets", strconv.Itoa(len(req.Entries)))
	}
	defer sp.Finish()
	var reply wire.MoveReply
	if err := ctx.Err(); err != nil {
		reply.Err = fmt.Sprintf("bundle refused: %v", err)
		sp.SetError(err)
	} else {
		reply = c.installBundle(env.From, req, env.Payload)
		if reply.Err != "" {
			sp.SetAttr("error", reply.Err)
		}
	}
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindMoveReply, out, nil
}

// installBundle installs an arriving bundle. raw is the encoded MoveRequest
// exactly as it travelled (journaled with the INSTALL record so recovery can
// re-install after a crash). Epoch-stamped bundles install at most once: a
// duplicate delivery gets the original reply, a delivery racing a recovery
// probe's durable refusal is rejected.
func (c *Core) installBundle(from ids.CoreID, req wire.MoveRequest, raw []byte) wire.MoveReply {
	if req.Epoch != 0 {
		key := moveKey{source: from, epoch: req.Epoch}
		cached, claim := c.beginInstall(key)
		if claim != claimRun {
			return cached
		}
		reply := c.installBundleLocked(from, req, raw)
		c.finishInstall(key, reply)
		return reply
	}
	return c.installBundleLocked(from, req, raw)
}

func (c *Core) installBundleLocked(from ids.CoreID, req wire.MoveRequest, raw []byte) wire.MoveReply {
	// Admission control (resource allocation, §7 future work): refuse the
	// whole bundle when it does not fit; the sender keeps the complets.
	if err := c.admit(len(req.Entries)); err != nil {
		return wire.MoveReply{Err: err.Error()}
	}
	dupMap := make(map[ids.CompletID]ids.CompletID, len(req.PreDup))
	for old, copyID := range req.PreDup {
		dupMap[old] = copyID
	}

	arrived := make([]arrivedComplet, 0, len(req.Entries))
	for _, e := range req.Entries {
		var (
			a    arrivedComplet
			err  error
			vals []any
		)
		a.id, a.typeName, a.dup = e.ID, e.TypeName, e.Dup
		if e.Dup {
			vals, a.refs, err = wire.DecodeArgs(e.Payload)
			if err == nil && len(vals) == 1 {
				a.anchor = vals[0]
			} else if err == nil {
				err = fmt.Errorf("duplicate payload holds %d values", len(vals))
			}
			if err == nil {
				a.id = c.mint.Next()
				dupMap[e.ID] = a.id
			}
		} else {
			a.anchor, a.refs, err = wire.DecodeClosure(e.Payload)
		}
		if err != nil {
			return wire.MoveReply{Err: fmt.Sprintf("decode %s (%s): %v", e.ID, e.TypeName, err)}
		}
		// preArrival runs after decoding but before reference linking
		// ("before finishing unmarshaling").
		if cb, ok := a.anchor.(PreArrival); ok {
			cb.PreArrival(from)
		}
		arrived = append(arrived, a)
	}

	// Re-bind references: duplicates to their copies, stamps to local
	// equivalents; everything gets attached to this core. References in a
	// complet's closure are owned by that complet (per-reference
	// invocation profiling keys on this).
	for i := range arrived {
		for _, r := range arrived[i].refs {
			r.SetOwner(arrived[i].id)
			switch {
			case r.DecodedDup():
				if copyID, ok := dupMap[r.Target()]; ok {
					r.Retarget(copyID, r.AnchorType(), c.id)
				}
				// No copy (clone failed): the reference keeps
				// tracking the original, degraded to a plain
				// link in behaviour.
			case r.DecodedStamp():
				if localID, ok := c.findLocalByType(r.AnchorType()); ok {
					r.Retarget(localID, r.AnchorType(), c.id)
				} else {
					c.opts.Logf("fargo core %s: stamp re-binding: no local complet of type %q; reference keeps tracking the original", c.id, r.AnchorType())
				}
			}
		}
		c.bindDecoded(arrived[i].refs)
	}

	// Durability point (DESIGN.md §13): journal the INSTALL record — raw
	// bundle included — before any complet activates, so a crash from here
	// on can re-install the arrivals even from a checkpoint that predates
	// them. A journal failure refuses the whole bundle; the sender keeps
	// the complets.
	if req.Epoch != 0 {
		moved := make([]ids.CompletID, 0, len(arrived))
		for _, a := range arrived {
			if !a.dup {
				moved = append(moved, a.id)
			}
		}
		if err := c.journalInstall(from, req.Epoch, moved, raw); err != nil {
			return wire.MoveReply{Err: fmt.Sprintf("journal install: %v", err)}
		}
		if len(moved) > 0 {
			// Chaos crash point: INSTALL is durable, activation and the
			// acknowledgement are not. The harness cuts the network here;
			// installation proceeds (the reply dies in flight) and the
			// restarted core re-installs from the journal.
			c.stepCrash(StepAfterInstall, moved[0])
		}
	}

	// Install complets and trackers.
	installed := make([]ids.CompletID, 0, len(arrived))
	homeTracking := c.homeTrackingEnabled()
	for _, a := range arrived {
		c.install(a.id, a.typeName, a.anchor)
		installed = append(installed, a.id)
		if homeTracking {
			c.reportHome(a.id)
		}
	}

	// Merge the shipped invocation accounting under the complets' unchanged
	// identities, so rates observed before the move keep informing the
	// layout planner here.
	c.mon.importMeters(req.Meters)
	c.mon.importMethodMeters(req.MethodMeters)

	// Register carried names against the (tracking) references.
	for name, idx := range req.Names {
		if idx >= 0 && idx < len(arrived) {
			a := arrived[idx]
			c.setLocalName(name, ref.New(a.id, a.typeName, c.id, c.binder()))
		}
	}

	// postArrival + events once everything is linked.
	for _, a := range arrived {
		if cb, ok := a.anchor.(PostArrival); ok {
			cb.PostArrival(from)
		}
		c.mon.fireBuiltin(EventCompletArrived, a.id, from.String())
	}

	// Continuation: resume the computation on the first entry's anchor.
	if req.ContinuationMethod != "" && len(arrived) > 0 {
		root, ok := c.lookup(arrived[0].id)
		if ok {
			c.runContinuation(root, req.ContinuationMethod, req.ContinuationArgs)
		}
	}
	c.notePeer(from)
	return wire.MoveReply{Installed: installed, DupMap: dupMap}
}

// findLocalByType returns some locally hosted complet of the given type
// (stamp re-binding, §3.3).
func (c *Core) findLocalByType(typeName string) (ids.CompletID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var (
		best  ids.CompletID
		found bool
	)
	for id, entry := range c.complets {
		if entry.typeName != typeName {
			continue
		}
		// Deterministic choice: smallest ID string.
		if !found || id.String() < best.String() {
			best, found = id, true
		}
	}
	return best, found
}

// runContinuation invokes the continuation method on a freshly arrived
// complet on its own goroutine (the movement reply must not wait for it).
func (c *Core) runContinuation(entry *complet, method string, argBytes []byte) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		resBytes := argBytes
		if resBytes == nil {
			var err error
			resBytes, _, err = wire.EncodeArgs(nil)
			if err != nil {
				c.opts.Logf("fargo core %s: continuation %s.%s: encode empty args: %v", c.id, entry.typeName, method, err)
				return
			}
		}
		ctx, cancel := c.withBudget(context.Background(), 0)
		defer cancel()
		if _, err := c.invokeLocal(ctx, entry.id, method, resBytes); err != nil {
			c.opts.Logf("fargo core %s: continuation %s.%s: %v", c.id, entry.typeName, method, err)
		}
	}()
}
