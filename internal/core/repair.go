package core

import (
	"context"
	"fmt"

	"fargo/internal/flight"
	"fargo/internal/ids"
	"fargo/internal/ref"
	"fargo/internal/wire"
)

// Self-healing references. A tracker chain (§3.1) is only as alive as its
// weakest hop: one crashed or partitioned core in the middle leaves every
// reference routed through it permanently dead, even though the home-based
// location service (homenaming.go) knows exactly where the target lives. When
// an invocation or move fails with an unreachability cause, the routing loops
// fall back to a home-core location query, repoint the local tracker at the
// fresh answer, and retry once — bypassing the dead hop entirely. Surviving
// cores with stale trackers heal the same way on their own next forwarding
// failure, so the chain erodes into direct edges as it is exercised.
//
// Repair is attempted at most once per operation and the fallback query is
// not retried, so a failed repair adds one cheap round trip (or a fail-fast
// breaker rejection) to the original error, never a second full deadline.

// EventChainRepaired fires at a core that healed its tracker for a complet by
// re-resolving the location through the complet's home core after a chain hop
// became unreachable. Detail is "<dead core> -> <new location>".
const EventChainRepaired = "chainRepaired"

// repairable reports whether an error is the kind chain repair can route
// around: the next hop never answered. Remote verdicts, timeouts, and
// cancellations are not repairable — the budget is spent or the answer is
// final.
func repairable(err error) bool {
	return classifyCause(err) == CauseUnreachable
}

// repairChain attempts to heal this core's tracker for target after the hop
// via dead failed unreachably. It resolves the target through its home core
// (one round trip, no retries), repoints the tracker when the answer differs
// from the dead hop, and fires EventChainRepaired. It returns the fresh
// location and whether the caller should retry through it.
func (c *Core) repairChain(ctx context.Context, target ids.CompletID, dead ids.CoreID, op string) (ids.CoreID, bool) {
	if ctx.Err() != nil {
		return "", false
	}
	ctx, sp := c.tracer.ChildSpan(ctx, "repair "+target.String())
	if sp != nil {
		sp.SetAttr("dead", dead.String())
		sp.SetAttr("op", op)
	}
	defer sp.Finish()
	repairFailed := func(why string, err error) {
		c.met.repairFails.Inc()
		ev := flight.Event{Kind: flight.KindRepairFailed, Complet: target.String(), Peer: dead.String(), Detail: why}
		if err != nil {
			ev.Err = err.Error()
		}
		c.flight.Record(ev)
	}
	loc, err := c.locateViaHomeCtx(ctx, target, ref.CallOptions{NoRetry: true})
	if err != nil {
		c.opts.Logf("fargo core %s: chain repair for %s after %s failed: home query: %v", c.id, target, dead, err)
		sp.SetError(err)
		repairFailed("home query failed", err)
		return "", false
	}
	if loc == dead {
		// The home agrees with the tracker: the target really lives on the
		// unreachable core. Nothing to route around.
		sp.SetAttr("verdict", "home agrees with dead hop")
		repairFailed("home agrees with dead hop", nil)
		return "", false
	}
	if !c.repointTracker(target, loc) {
		sp.SetAttr("verdict", "tracker kept authoritative state")
		repairFailed("tracker kept authoritative state", nil)
		return "", false
	}
	sp.SetAttr("repointed", loc.String())
	c.met.repairs.Inc()
	c.flight.Record(flight.Event{
		Kind:    flight.KindRepair,
		Complet: target.String(),
		Peer:    dead.String(),
		Detail:  fmt.Sprintf("%s -> %s", dead, loc),
	})
	c.opts.Logf("fargo core %s: chain repaired for %s: %s -> %s (%s)", c.id, target, dead, loc, op)
	c.mon.fireBuiltin(EventChainRepaired, target, fmt.Sprintf("%s -> %s", dead, loc))
	return loc, true
}

// repointTracker rewrites this core's tracker for the complet to point at
// loc. Authoritative local state is never overwritten: a tracker that says
// "hosted here" while the repository agrees stays local (the home record was
// the stale party). Returns whether the tracker now points at loc.
func (c *Core) repointTracker(target ids.CompletID, loc ids.CoreID) bool {
	// Lock order: c.mu (inside lookup / trackerFor) strictly before the
	// tracker's own mutex, matching install/remove.
	_, hostedHere := c.lookup(target)
	t := c.trackerFor(target, loc)
	if loc == c.id {
		if hostedHere {
			t.setLocal()
			return true
		}
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.local && hostedHere {
		return false
	}
	t.local, t.next = false, loc
	return true
}

// locateViaHomeCtx resolves a complet's location through its home core in a
// single round trip, under the caller's context and call options (the
// context-first core of LocateViaHome).
func (c *Core) locateViaHomeCtx(ctx context.Context, id ids.CompletID, opts ref.CallOptions) (ids.CoreID, error) {
	if id.Birth == c.id {
		if loc, ok := c.homes.get(id); ok {
			return loc, nil
		}
		// Never reported: if it is still here, that is the answer.
		if _, ok := c.lookup(id); ok {
			return c.id, nil
		}
		return "", fmt.Errorf("%w: %s (no home record)", ErrUnknownComplet, id)
	}
	payload, err := wire.EncodePayload(wire.HomeQuery{Target: id})
	if err != nil {
		return "", err
	}
	env, err := c.requestOpts(ctx, id.Birth, wire.KindHomeQuery, payload, opts)
	if err != nil {
		return "", fmt.Errorf("core: home query for %s: %w", id, err)
	}
	var reply wire.HomeQueryReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return "", err
	}
	if reply.Err != "" {
		return "", fmt.Errorf("core: home query for %s: %s", id, reply.Err)
	}
	if !reply.Found {
		return "", fmt.Errorf("%w: %s (home has no record)", ErrUnknownComplet, id)
	}
	return reply.Location, nil
}
