package core

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fargo/internal/ref"
	"fargo/internal/registry"
	"fargo/internal/transport"
)

// restartCore simulates a crash/restart: shut the core down and bring up a
// fresh one with the same name on the same simulated network.
func restartCore(t *testing.T, cl *cluster, name string) *Core {
	t.Helper()
	old := cl.core(name)
	if err := old.Shutdown(0); err != nil {
		t.Fatal(err)
	}
	tr, err := transport.NewSim(cl.net, old.ID())
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	registerTestTypes(t, reg)
	fresh, err := New(tr, reg, Options{RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cl.cores[old.ID()] = fresh // cluster cleanup shuts it down
	return fresh
}

func TestCheckpointRestoreRoundtrip(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")

	// State: a message (invoked once), a holder with a PULL reference to
	// it, and a name binding.
	msgRef, err := a.NewComplet("Msg", "persisted")
	if err != nil {
		t.Fatal(err)
	}
	invoke1(t, msgRef, "Print") // Count = 1
	h, err := a.NewComplet("Holder", "h")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Invoke("SetOut", msgRef); err != nil {
		t.Fatal(err)
	}
	entry, _ := a.lookup(h.Target())
	if err := entry.anchor.(*holder).Out.Meta().SetRelocator(ref.Pull{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Name("the-msg", msgRef); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := a.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	a2 := restartCore(t, cl, "a")
	n, err := a2.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d complets, want 2", n)
	}

	// State survived: counter continues from 1.
	restored, ok := a2.Lookup("the-msg")
	if !ok {
		t.Fatal("name binding lost")
	}
	if got := invoke1(t, restored, "Calls"); got != 1 {
		t.Fatalf("Calls = %v, want 1 (state lost)", got)
	}
	// Identity survived: the old stub (rebuilt against the new core via
	// ID) reaches the same complet.
	viaID := a2.NewRefTo(msgRef.Target(), "Msg", "a")
	if got := invoke1(t, viaID, "Print"); got != "persisted" {
		t.Fatalf("Print = %v", got)
	}
	// Relocator semantics survived: moving the holder pulls the message.
	h2 := a2.NewRefTo(h.Target(), "Holder", "a")
	if err := a2.Move(h2, "b"); err != nil {
		t.Fatal(err)
	}
	if got := cl.core("b").CompletCount(); got != 2 {
		t.Fatalf("b hosts %d complets, want 2 (pull preserved across restore)", got)
	}
	// Fresh IDs don't collide with restored ones.
	fresh, err := a2.NewComplet("Msg", "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Target() == msgRef.Target() || fresh.Target() == h.Target() {
		t.Fatalf("fresh ID %v collides with a restored identity", fresh.Target())
	}
}

func TestCheckpointFileRoundtrip(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	if _, err := a.NewComplet("Msg", "on-disk"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "core-a.ckpt")
	if err := a.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	a2 := restartCore(t, cl, "a")
	n, err := a2.RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || a2.CompletCount() != 1 {
		t.Fatalf("restored %d, hosting %d", n, a2.CompletCount())
	}
}

func TestRestoreValidation(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a, b := cl.core("a"), cl.core("b")
	if _, err := a.NewComplet("Msg", "x"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong core name.
	if _, err := b.Restore(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "belongs to core") {
		t.Fatalf("cross-core restore: %v", err)
	}
	// Garbage.
	if _, err := a.Restore(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage restore should fail")
	}
	// Duplicate restore into the SAME live core (complets still hosted).
	if _, err := a.Restore(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "already hosted") {
		t.Fatalf("duplicate restore: %v", err)
	}
}

func TestCheckpointRemote(t *testing.T) {
	cl := newCluster(t, "admin", "worker")
	admin := cl.core("admin")
	if _, err := admin.NewCompletAt("worker", "Msg", "remote-persisted"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "worker.ckpt")
	n, err := admin.CheckpointRemote("worker", path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("checkpointed %d complets, want 1", n)
	}
	// The file is readable and restores into a restarted worker.
	w2 := restartCore(t, cl, "worker")
	restored, err := w2.RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored %d", restored)
	}
	// Self-targeted remote checkpoint takes the local path.
	path2 := filepath.Join(t.TempDir(), "self.ckpt")
	if _, err := admin.CheckpointRemote("admin", path2); err != nil {
		t.Fatal(err)
	}
	// Error path: bad remote path.
	if _, err := admin.CheckpointRemote("worker", ""); err == nil {
		t.Fatal("empty remote path should fail")
	}
}

func TestRestoredRefsAreOwnedAndBound(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	target, err := a.NewComplet("Msg", "t")
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.NewComplet("Holder", "h")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Invoke("SetOut", target); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	a2 := restartCore(t, cl, "a")
	if _, err := a2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	// The holder's restored outgoing ref must be bound: CallOut works.
	h2 := a2.NewRefTo(h.Target(), "Holder", "a")
	if got := invoke1(t, h2, "CallOut"); got != "t" {
		t.Fatalf("CallOut after restore = %v", got)
	}
	// And owned by the holder (per-reference profiling key).
	entry, okE := a2.lookup(h.Target())
	if !okE {
		t.Fatal("holder not restored")
	}
	if owner := entry.anchor.(*holder).Out.Owner(); owner != h.Target() {
		t.Fatalf("restored ref owner = %v, want %v", owner, h.Target())
	}
}

// TestRestoreCorruptedCheckpoint feeds Restore broken inputs: a truncated
// stream (crash mid-write), pure garbage, and byte-flipped content. Every case
// must return an error — never panic — and must leave the core empty, so a
// later restore from the pristine checkpoint still works.
func TestRestoreCorruptedCheckpoint(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	for _, text := range []string{"one", "two"} {
		if _, err := a.NewComplet("Msg", text); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := a.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flipped := append([]byte(nil), good...)
	for i := len(flipped) / 2; i < len(flipped)/2+16 && i < len(flipped); i++ {
		flipped[i] ^= 0xff
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated early", good[:8]},
		{"truncated midway", good[:len(good)/2]},
		{"garbage", []byte("this is definitely not a fargo checkpoint")},
		{"byte-flipped", flipped},
	}

	a2 := restartCore(t, cl, "a")
	for _, tc := range cases {
		n, err := a2.Restore(bytes.NewReader(tc.data))
		if err == nil {
			t.Fatalf("%s: Restore accepted corrupted input", tc.name)
		}
		if n != 0 {
			t.Fatalf("%s: Restore reported %d complets on error", tc.name, n)
		}
		if got := a2.CompletCount(); got != 0 {
			t.Fatalf("%s: %d complets partially registered after failed restore", tc.name, got)
		}
	}

	// The failures left no residue: the pristine checkpoint still restores.
	n, err := a2.Restore(bytes.NewReader(good))
	if err != nil {
		t.Fatalf("pristine restore after failed attempts: %v", err)
	}
	if n != 2 {
		t.Fatalf("restored %d complets, want 2", n)
	}
}

// TestRestoreBadEntryIsAtomic builds a checkpoint whose outer structure is
// valid (magic, core, names) but whose SECOND entry carries an undecodable
// closure. Restore must reject the whole file and install nothing — a half
// restored core would serve calls on complets its checkpoint never finished
// validating.
func TestRestoreBadEntryIsAtomic(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	for _, text := range []string{"one", "two"} {
		if _, err := a.NewComplet("Msg", text); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := a.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	var file checkpointFile
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&file); err != nil {
		t.Fatal(err)
	}
	if len(file.Entries) != 2 {
		t.Fatalf("checkpoint has %d entries, want 2", len(file.Entries))
	}
	file.Entries[1].Payload = []byte("corrupted closure bytes")
	var bad bytes.Buffer
	if err := gob.NewEncoder(&bad).Encode(file); err != nil {
		t.Fatal(err)
	}

	a2 := restartCore(t, cl, "a")
	n, err := a2.Restore(&bad)
	if err == nil {
		t.Fatal("Restore accepted a checkpoint with an undecodable entry")
	}
	if n != 0 {
		t.Fatalf("Restore reported %d complets on error", n)
	}
	if got := a2.CompletCount(); got != 0 {
		t.Fatalf("%d complets installed from a rejected checkpoint (not atomic)", got)
	}
	if _, ok := a2.Lookup("the-msg"); ok {
		t.Fatal("name binding installed from a rejected checkpoint")
	}
}
