package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"fargo/internal/flight"
	"fargo/internal/ids"
	"fargo/internal/journal"
	"fargo/internal/ref"
	"fargo/internal/wire"
)

// The recovery manager: crash-safety for the movement protocol (DESIGN.md
// §13). With a journal attached (Options.JournalPath), every move is
// two-phase — the source journals PREPARE before shipping and COMMIT/ABORT
// after the outcome is known; the destination journals INSTALL (with the
// full bundle payload) before activating. Construction replays the journal
// into the protocol tables; Recover then reconciles the repository with the
// journal's final word and resolves still-pending moves by probing their
// destinations, so that after any crash exactly one live copy of each
// complet survives, reachable through repaired trackers and home entries.

// errSimulatedCrash is returned up the move path when a chaos hook
// (SetMoveStepHook) simulates a crash at a protocol step.
var errSimulatedCrash = errors.New("core: simulated crash (chaos hook)")

// probeRecoveryBudget bounds the inline destination probe the source runs
// when a bundle shipment fails with an unknown outcome (the caller's context
// is usually already spent by then).
const probeRecoveryBudget = 2 * time.Second

// maxInstallMemory bounds the idempotence table of installed move epochs
// (FIFO). A duplicate delivery older than the window re-installs — epochs
// that old can only come from a partition longer than any sane retry policy.
const maxInstallMemory = 4096

// MoveStep identifies a movement-protocol step for the chaos crash hook.
type MoveStep string

const (
	// StepBeforePrepare: source side, before the PREPARE record is
	// journaled. A crash here loses nothing — the move never started.
	StepBeforePrepare MoveStep = "beforePrepare"
	// StepAfterPrepare: source side, PREPARE journaled, bundle not yet
	// shipped. Recovery probes the destination and rolls back.
	StepAfterPrepare MoveStep = "afterPrepare"
	// StepAfterSend: source side, destination acknowledged installation,
	// COMMIT not yet journaled. Recovery probes and completes.
	StepAfterSend MoveStep = "afterSend"
	// StepAfterInstall: destination side, bundle journaled and activated,
	// acknowledgement not yet delivered. The source's recovery probes the
	// restarted destination and completes.
	StepAfterInstall MoveStep = "afterInstall"
	// StepAfterCommit: source side, COMMIT journaled, local copies not yet
	// released. Recovery releases them from the journal's final word.
	StepAfterCommit MoveStep = "afterCommit"
)

// SetMoveStepHook installs a test hook invoked at each movement-protocol
// step with the step and the moved root. Returning true simulates a crash at
// that point: the core stops journaling (as a dead process would) and the
// protocol path aborts with an error. Chaos-harness support (internal/chaos);
// nil removes the hook.
func (c *Core) SetMoveStepHook(fn func(step MoveStep, root ids.CompletID) bool) {
	c.recMu.Lock()
	c.moveHook = fn
	c.recMu.Unlock()
}

// stepCrash runs the chaos hook for one protocol step, marking the core
// crashed when the hook says so.
func (c *Core) stepCrash(step MoveStep, root ids.CompletID) bool {
	c.recMu.Lock()
	fn := c.moveHook
	c.recMu.Unlock()
	if fn == nil || !fn(step, root) {
		return false
	}
	c.recMu.Lock()
	c.crashed = true
	c.recMu.Unlock()
	return true
}

// journalAppendLocked appends a record under recMu. A nil journal (journaling
// disabled) and a chaos-crashed core both accept silently — the former has
// nothing to persist to, the latter must behave like a dead process.
func (c *Core) journalAppendLocked(rec journal.Record) error {
	if c.jn == nil || c.crashed {
		return nil
	}
	return c.jn.Append(rec)
}

// closeJournal closes the journal file on shutdown.
func (c *Core) closeJournal() {
	c.recMu.Lock()
	jn := c.jn
	c.recMu.Unlock()
	if jn != nil {
		if err := jn.Close(); err != nil {
			c.opts.Logf("fargo core %s: close move journal: %v", c.id, err)
		}
	}
}

// replayJournal rebuilds the protocol tables from the journal's records at
// construction time (before the transport handler is attached, so no
// concurrency). The tables answer three questions: which source-side moves
// are still pending (pendingOut), which epochs installed or were refused
// here (installedIn/refusedIn), and what the journal's final word on each
// complet's disposition is (installRecs: it lives here, payload available;
// departedTo: it committed away).
func (c *Core) replayJournal(records []journal.Record) {
	var maxEpoch uint64
	for i := range records {
		rec := &records[i]
		switch rec.Op {
		case journal.OpPrepare:
			if rec.Epoch > maxEpoch {
				maxEpoch = rec.Epoch
			}
			c.pendingOut[rec.Epoch] = &pendingMove{
				epoch:    rec.Epoch,
				dest:     rec.Dest,
				root:     rec.Root,
				complets: rec.Complets,
			}
		case journal.OpCommit:
			pm, ok := c.pendingOut[rec.Epoch]
			if !ok {
				// COMMIT without a live PREPARE (already settled in a
				// previous incarnation's tables): apply the disposition
				// from the record itself.
				pm = &pendingMove{dest: rec.Dest, complets: rec.Complets}
			}
			for _, id := range pm.complets {
				c.departedTo[id] = pm.dest
				delete(c.installRecs, id)
			}
			delete(c.pendingOut, rec.Epoch)
		case journal.OpAbort:
			delete(c.pendingOut, rec.Epoch)
		case journal.OpInstall:
			key := moveKey{source: rec.Source, epoch: rec.Epoch}
			c.installedIn[key] = wire.MoveReply{Installed: rec.Complets}
			c.installOrder = append(c.installOrder, key)
			for _, id := range rec.Complets {
				c.installRecs[id] = installRec{rec: rec, at: uint64(i)}
				delete(c.departedTo, id)
			}
		case journal.OpRefuse:
			c.refusedIn[moveKey{source: rec.Source, epoch: rec.Epoch}] = struct{}{}
		}
	}
	for epoch, pm := range c.pendingOut {
		for _, id := range pm.complets {
			c.pendingByComplet[id] = epoch
		}
	}
	for len(c.installOrder) > maxInstallMemory {
		delete(c.installedIn, c.installOrder[0])
		c.installOrder = c.installOrder[1:]
	}
	// Never reuse an epoch a previous incarnation may have put on the wire.
	c.moveEpochs.Advance(maxEpoch)
}

// --- source side ------------------------------------------------------------

// prepareMove registers a move as in flight: it refuses when any travelling
// complet already has an unresolved move (ErrMoveInFlight), journals PREPARE,
// and indexes the pending move. Called with the bundle's complets W-locked.
func (c *Core) prepareMove(pm *pendingMove) error {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	for _, id := range pm.complets {
		if other, busy := c.pendingByComplet[id]; busy {
			prev := c.pendingOut[other]
			return fmt.Errorf("%w: %s (epoch %d to %s unresolved)", ErrMoveInFlight, id, other, prev.dest)
		}
	}
	if err := c.journalAppendLocked(journal.Record{
		Op:       journal.OpPrepare,
		Epoch:    pm.epoch,
		Source:   c.id,
		Dest:     pm.dest,
		Root:     pm.root,
		Complets: pm.complets,
	}); err != nil {
		return err
	}
	c.pendingOut[pm.epoch] = pm
	for _, id := range pm.complets {
		c.pendingByComplet[id] = pm.epoch
	}
	return nil
}

// settleMove resolves a pending move with OpCommit or OpAbort: the verdict is
// journaled, then the pending indexes clear. A missing epoch (already
// settled, e.g. by a concurrent resolver) reports settled=false with no
// error, so racing resolvers apply the verdict's side effects exactly once.
func (c *Core) settleMove(epoch uint64, op journal.Op) (bool, error) {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	pm, ok := c.pendingOut[epoch]
	if !ok {
		return false, nil
	}
	if err := c.journalAppendLocked(journal.Record{
		Op:       op,
		Epoch:    epoch,
		Source:   c.id,
		Dest:     pm.dest,
		Root:     pm.root,
		Complets: pm.complets,
	}); err != nil {
		return false, err
	}
	delete(c.pendingOut, epoch)
	for _, id := range pm.complets {
		if c.pendingByComplet[id] == epoch {
			delete(c.pendingByComplet, id)
		}
		if op == journal.OpCommit {
			// The journal's final word on these complets is now "committed
			// away": drop any INSTALL disposition so a later Recover can
			// never resurrect the local copy, and record the departure so a
			// stale pre-move checkpoint restored afterwards gets released.
			delete(c.installRecs, id)
			c.departedTo[id] = pm.dest
		}
	}
	return true, nil
}

// probeMoveOutcome asks dest whether the (source, epoch) move installed.
// known is false when the destination could not be reached, answered with an
// error, or is still installing — the move stays pending then.
func (c *Core) probeMoveOutcome(ctx context.Context, dest ids.CoreID, source ids.CoreID, epoch uint64, root ids.CompletID, opts ref.CallOptions) (installed, known bool) {
	payload, err := wire.EncodePayload(wire.MoveProbe{Source: source, Epoch: epoch, Root: root})
	if err != nil {
		return false, false
	}
	env, err := c.requestOpts(ctx, dest, wire.KindMoveProbe, payload, opts)
	if err != nil {
		return false, false
	}
	var reply wire.MoveProbeReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return false, false
	}
	if reply.Err != "" || reply.InProgress {
		return false, false
	}
	return reply.Installed, true
}

// resolveUnknownOutcome handles a bundle shipment whose acknowledgement was
// lost: it probes the destination once on a fresh short budget (the caller's
// context is typically spent). The returned disposition is one of: committed
// (the bundle installed — proceed as acknowledged), aborted (the destination
// durably refused — the copies stay), or pending (unreachable — the move
// stays in flight until Recover resolves it; further moves of these complets
// fail with ErrMoveInFlight).
func (c *Core) resolveUnknownOutcome(dest ids.CoreID, epoch uint64, root ids.CompletID) (committed bool, pending bool) {
	ctx, cancel := context.WithTimeout(context.Background(), probeRecoveryBudget)
	defer cancel()
	installed, known := c.probeMoveOutcome(ctx, dest, c.id, epoch, root, ref.CallOptions{NoRetry: true})
	if !known {
		return false, true
	}
	return installed, false
}

// finishResolvedMove enforces a pending move's now-known outcome: installed
// means COMMIT — release the local copies, repoint trackers and home entries
// at the destination; not installed means ABORT — the local copies stay
// authoritative and re-assert their location.
func (c *Core) finishResolvedMove(pm *pendingMove, installed bool) error {
	homeTracking := c.homeTrackingEnabled()
	if installed {
		settled, err := c.settleMove(pm.epoch, journal.OpCommit)
		if err != nil || !settled {
			return err
		}
		for _, id := range pm.complets {
			c.releaseRecovered(id, pm.dest)
			if homeTracking && id.Birth == c.id {
				c.homes.set(id, pm.dest)
			}
		}
		c.flight.Record(flight.Event{
			Kind:    flight.KindMoveRecovered,
			Complet: pm.root.String(),
			Peer:    pm.dest.String(),
			Detail:  fmt.Sprintf("epoch %d completed after lost acknowledgement", pm.epoch),
		})
		c.bumpRecovered(1, 0)
		return nil
	}
	settled, err := c.settleMove(pm.epoch, journal.OpAbort)
	if err != nil || !settled {
		return err
	}
	if homeTracking {
		for _, id := range pm.complets {
			if _, hosted := c.lookup(id); hosted {
				c.reportHome(id)
			}
		}
	}
	c.flight.Record(flight.Event{
		Kind:    flight.KindMoveRolledBack,
		Complet: pm.root.String(),
		Peer:    pm.dest.String(),
		Detail:  fmt.Sprintf("epoch %d never installed; rolled back", pm.epoch),
	})
	c.bumpRecovered(0, 1)
	return nil
}

// resolveAsync resolves a pending move's outcome off the caller's goroutine —
// the path taken when the caller's context died mid-shipment and cannot wait
// for a probe. The destination is probed a few times (an installation still
// in progress answers InProgress); a move still unknown after that stays
// pending for an explicit Recover.
func (c *Core) resolveAsync(pm *pendingMove) {
	const (
		attempts = 8
		pause    = 120 * time.Millisecond
	)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for attempt := 0; attempt < attempts && !c.isClosed(); attempt++ {
			if attempt > 0 {
				time.Sleep(pause)
			}
			ctx, cancel := context.WithTimeout(context.Background(), probeRecoveryBudget)
			installed, known := c.probeMoveOutcome(ctx, pm.dest, c.id, pm.epoch, pm.root, ref.CallOptions{NoRetry: true})
			cancel()
			if !known {
				continue
			}
			if err := c.finishResolvedMove(pm, installed); err != nil {
				c.opts.Logf("fargo core %s: resolving move epoch %d of %s: %v", c.id, pm.epoch, pm.root, err)
			}
			return
		}
	}()
}

// --- destination side -------------------------------------------------------

// installClaim is beginInstall's verdict on an epoch-stamped bundle.
type installClaim int

const (
	claimRun     installClaim = iota // install it; call finishInstall after
	claimDone                        // already installed; reply returned
	claimRefused                     // epoch durably refused; never install
)

// beginInstall claims the installation of one epoch-stamped bundle. A
// duplicate delivery of an epoch that already installed gets the original
// reply (idempotence); one racing a live installation waits for its verdict;
// one whose epoch was refused to a recovery probe is rejected for good.
func (c *Core) beginInstall(key moveKey) (wire.MoveReply, installClaim) {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	for {
		if reply, ok := c.installedIn[key]; ok {
			return reply, claimDone
		}
		if _, ok := c.refusedIn[key]; ok {
			return wire.MoveReply{Err: fmt.Sprintf("move epoch %d from %s was refused during recovery", key.epoch, key.source)}, claimRefused
		}
		if !c.installing[key] {
			c.installing[key] = true
			return wire.MoveReply{}, claimRun
		}
		c.installCond.Wait()
	}
}

// finishInstall releases an installation claim: a successful reply is cached
// for duplicate deliveries, a failed one is not (a retry may succeed).
func (c *Core) finishInstall(key moveKey, reply wire.MoveReply) {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	delete(c.installing, key)
	if reply.Err == "" {
		c.installedIn[key] = reply
		c.installOrder = append(c.installOrder, key)
		for len(c.installOrder) > maxInstallMemory {
			delete(c.installedIn, c.installOrder[0])
			c.installOrder = c.installOrder[1:]
		}
	}
	c.installCond.Broadcast()
}

// journalInstall durably records an arriving bundle — raw payload included —
// before it activates, so a crash after this point can re-install the
// complets even when the last checkpoint predates the arrival. Epoch-less
// bundles (clones, pre-journal senders) are not journaled: copies get fresh
// identities and are never the last live copy.
func (c *Core) journalInstall(from ids.CoreID, epoch uint64, moved []ids.CompletID, raw []byte) error {
	if epoch == 0 || len(moved) == 0 {
		return nil
	}
	rec := journal.Record{
		Op:       journal.OpInstall,
		Epoch:    epoch,
		Source:   from,
		Dest:     c.id,
		Root:     moved[0],
		Complets: moved,
		Payload:  raw,
	}
	c.recMu.Lock()
	defer c.recMu.Unlock()
	if err := c.journalAppendLocked(rec); err != nil {
		return err
	}
	if c.jn != nil && !c.crashed {
		// Keep the runtime disposition maps consistent with what a replay
		// of the journal would now produce: these complets live here.
		ir := installRec{rec: &rec, at: c.jn.Records() - 1}
		for _, id := range moved {
			c.installRecs[id] = ir
			delete(c.departedTo, id)
		}
	}
	return nil
}

// handleMoveProbe serves a recovery probe: has the (Source, Epoch) move
// installed here? Answering "no" appends a durable REFUSE record first, so
// the answer is a promise — a late bundle for that epoch can never install
// after the source rolled back on our word.
func (c *Core) handleMoveProbe(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.MoveProbe
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	reply := c.moveProbeVerdict(req)
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindMoveProbeReply, out, nil
}

func (c *Core) moveProbeVerdict(req wire.MoveProbe) wire.MoveProbeReply {
	key := moveKey{source: req.Source, epoch: req.Epoch}
	var reply wire.MoveProbeReply

	c.recMu.Lock()
	_, installedHere := c.installedIn[key]
	switch {
	case c.installing[key]:
		reply.InProgress = true
	case installedHere:
		// Affirming "installed" makes the source release its copy — make
		// sure the journal-final arrivals are actually live first (the
		// probe may arrive before Recover has re-installed them).
		if _, err := c.reinstallMissingLocked(); err != nil {
			reply.Err = err.Error()
		} else {
			reply.Installed = true
		}
	default:
		// Durably promise the epoch will never install here. If the
		// promise cannot be made durable, answer unknown — the source
		// keeps the move pending rather than acting on a weak word.
		if err := c.journalAppendLocked(journal.Record{
			Op:     journal.OpRefuse,
			Epoch:  req.Epoch,
			Source: req.Source,
			Root:   req.Root,
		}); err != nil {
			reply.Err = fmt.Sprintf("refuse not durable: %v", err)
		} else {
			c.refusedIn[key] = struct{}{}
		}
	}
	c.recMu.Unlock()

	_, reply.Hosted = c.lookup(req.Root)
	return reply
}

// reinstallMissingLocked re-installs, from their INSTALL records' payloads,
// every complet whose journal-final disposition is "lives here" but which is
// absent from the repository — the state after a destination-side crash
// whose checkpoint predates the arrival. Called under recMu.
func (c *Core) reinstallMissingLocked() ([]ids.CompletID, error) {
	var (
		done        = make(map[*journal.Record]bool)
		reinstalled []ids.CompletID
		firstErr    error
	)
	// Deterministic order for tests and logs.
	idsHere := make([]ids.CompletID, 0, len(c.installRecs))
	for id := range c.installRecs {
		idsHere = append(idsHere, id)
	}
	sort.Slice(idsHere, func(i, j int) bool { return idsHere[i].String() < idsHere[j].String() })
	for _, id := range idsHere {
		rec := c.installRecs[id].rec
		if done[rec] {
			continue
		}
		// A bundle mid-installation is the installer's to finish — the
		// journal record exists but the repository entries are seconds away.
		if c.installing[moveKey{source: rec.Source, epoch: rec.Epoch}] {
			continue
		}
		if _, hosted := c.lookup(id); hosted {
			continue
		}
		done[rec] = true
		got, err := c.reinstallFromRecord(rec)
		if err != nil {
			c.opts.Logf("fargo core %s: recovery re-install of %s (epoch %d from %s): %v", c.id, rec.Root, rec.Epoch, rec.Source, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		reinstalled = append(reinstalled, got...)
	}
	return reinstalled, firstErr
}

// reinstallFromRecord re-activates the non-duplicate complets of one INSTALL
// record from its journaled bundle payload. Complets already hosted (e.g.
// restored from a newer checkpoint) are left untouched — their state is
// fresher than the bundle's. References decoded as duplicate or stamp
// degrade to plain links (the original install's fresh copy identities are
// gone); continuations do not re-run.
func (c *Core) reinstallFromRecord(rec *journal.Record) ([]ids.CompletID, error) {
	var req wire.MoveRequest
	if err := wire.DecodePayload(rec.Payload, &req); err != nil {
		return nil, fmt.Errorf("decode journaled bundle: %w", err)
	}
	moved := make(map[ids.CompletID]bool, len(rec.Complets))
	for _, id := range rec.Complets {
		moved[id] = true
	}
	homeTracking := c.homeTrackingEnabled()
	var installed []ids.CompletID
	byIndex := make(map[int]ids.CompletID, len(req.Entries))
	for i, e := range req.Entries {
		if e.Dup || !moved[e.ID] {
			continue
		}
		byIndex[i] = e.ID
		if _, hosted := c.lookup(e.ID); hosted {
			continue
		}
		anchor, refs, err := wire.DecodeClosure(e.Payload)
		if err != nil {
			return installed, fmt.Errorf("decode %s (%s): %w", e.ID, e.TypeName, err)
		}
		for _, r := range refs {
			r.SetOwner(e.ID)
		}
		c.bindDecoded(refs)
		c.install(e.ID, e.TypeName, anchor)
		installed = append(installed, e.ID)
		if homeTracking {
			c.reportHome(e.ID)
		}
		c.flight.Record(flight.Event{
			Kind:    flight.KindMoveRecovered,
			Complet: e.ID.String(),
			Peer:    rec.Source.String(),
			Detail:  fmt.Sprintf("re-installed from journal (epoch %d)", rec.Epoch),
		})
		c.mon.fireBuiltin(EventCompletArrived, e.ID, "recovery")
	}
	// Re-register the bundle's carried names for entries that live here.
	for name, idx := range req.Names {
		id, ok := byIndex[idx]
		if !ok {
			continue
		}
		if _, hosted := c.lookup(id); !hosted {
			continue
		}
		typeName := req.Entries[idx].TypeName
		c.setLocalName(name, ref.New(id, typeName, c.id, c.binder()))
	}
	return installed, nil
}

// --- recovery ---------------------------------------------------------------

// RecoveryReport summarizes one Recover run.
type RecoveryReport struct {
	// Completed lists the roots of pending moves whose destination
	// confirmed installation: the move was committed after the fact and the
	// local copies released.
	Completed []ids.CompletID
	// RolledBack lists the roots of pending moves whose destination durably
	// refused: the local copies remain authoritative.
	RolledBack []ids.CompletID
	// Released lists complets removed locally because the journal already
	// held their COMMIT — the copy restored from a pre-move checkpoint was
	// stale.
	Released []ids.CompletID
	// Reinstalled lists complets re-activated from journaled INSTALL
	// payloads (destination-side crash after INSTALL, checkpoint older than
	// the arrival).
	Reinstalled []ids.CompletID
	// Unresolved lists the roots of pending moves whose destination could
	// not be reached; they stay pending (and block further moves of their
	// complets) until a later Recover resolves them.
	Unresolved []ids.CompletID
}

// Empty reports whether recovery had nothing to do.
func (r RecoveryReport) Empty() bool {
	return len(r.Completed) == 0 && len(r.RolledBack) == 0 &&
		len(r.Released) == 0 && len(r.Reinstalled) == 0 && len(r.Unresolved) == 0
}

// String renders a one-line summary.
func (r RecoveryReport) String() string {
	return fmt.Sprintf("completed=%d rolledBack=%d released=%d reinstalled=%d unresolved=%d",
		len(r.Completed), len(r.RolledBack), len(r.Released), len(r.Reinstalled), len(r.Unresolved))
}

// Recover reconciles the repository with the move journal and resolves
// in-flight moves. It is safe to call repeatedly (each run only acts on what
// is still unresolved) and on cores without a journal (it then resolves
// in-memory pending moves, e.g. after a destination came back). Restore runs
// it automatically when a journal is attached; call it directly after
// starting a journal-enabled core without a checkpoint, or to retry
// unresolved moves once a destination returns.
func (c *Core) Recover(ctx context.Context) (RecoveryReport, error) {
	var rep RecoveryReport
	if c.isClosed() {
		return rep, ErrClosed
	}
	ctx, cancel := c.withBudget(ctx, 0)
	defer cancel()

	// Phase A: enforce the journal's final word locally — no network needed.
	// Re-install arrivals the checkpoint missed, release copies whose move
	// already committed.
	c.recMu.Lock()
	reinstalled, _ := c.reinstallMissingLocked()
	rep.Reinstalled = reinstalled
	departed := make(map[ids.CompletID]ids.CoreID, len(c.departedTo))
	for id, dest := range c.departedTo {
		departed[id] = dest
	}
	pending := make([]*pendingMove, 0, len(c.pendingOut))
	for _, pm := range c.pendingOut {
		pending = append(pending, pm)
	}
	c.recMu.Unlock()

	homeTracking := c.homeTrackingEnabled()
	departedIDs := make([]ids.CompletID, 0, len(departed))
	for id := range departed {
		departedIDs = append(departedIDs, id)
	}
	sort.Slice(departedIDs, func(i, j int) bool { return departedIDs[i].String() < departedIDs[j].String() })
	for _, id := range departedIDs {
		dest := departed[id]
		if released := c.releaseRecovered(id, dest); released {
			rep.Released = append(rep.Released, id)
			c.flight.Record(flight.Event{
				Kind:    flight.KindMoveRecovered,
				Complet: id.String(),
				Peer:    dest.String(),
				Detail:  "journal committed; stale local copy released",
			})
			c.bumpRecovered(1, 0)
		}
		if homeTracking && id.Birth == c.id {
			c.homes.set(id, dest)
		}
	}

	// Phase B: resolve pending source-side moves by probing destinations.
	sort.Slice(pending, func(i, j int) bool { return pending[i].epoch < pending[j].epoch })
	for _, pm := range pending {
		installed, known := c.probeMoveOutcome(ctx, pm.dest, c.id, pm.epoch, pm.root, ref.CallOptions{})
		if !known {
			rep.Unresolved = append(rep.Unresolved, pm.root)
			continue
		}
		if err := c.finishResolvedMove(pm, installed); err != nil {
			c.opts.Logf("fargo core %s: recovery settling epoch %d: %v", c.id, pm.epoch, err)
			rep.Unresolved = append(rep.Unresolved, pm.root)
			continue
		}
		if installed {
			rep.Completed = append(rep.Completed, pm.root)
		} else {
			rep.RolledBack = append(rep.RolledBack, pm.root)
		}
	}
	return rep, nil
}

// releaseRecovered removes a complet whose move the journal (or a probe)
// proved committed: the local copy — if any — is released and the tracker
// repointed at the destination. Reports whether a live local copy was
// actually released.
func (c *Core) releaseRecovered(id ids.CompletID, dest ids.CoreID) bool {
	entry, ok := c.lookup(id)
	if !ok {
		// No local copy; still repair the chain to point at the survivor.
		t := c.trackerFor(id, dest)
		if local, _ := t.point(); !local {
			t.setForward(dest)
		}
		return false
	}
	entry.moveMu.Lock()
	if entry.gone {
		entry.moveMu.Unlock()
		return false
	}
	entry.gone = true
	entry.moveMu.Unlock()
	c.remove(id, dest)
	if cb, ok := entry.anchor.(PostDeparture); ok {
		cb.PostDeparture(dest)
	}
	c.mon.fireBuiltin(EventCompletDeparted, id, dest.String())
	return true
}

// bumpRecovered adjusts the recovery counters surfaced in Health.
func (c *Core) bumpRecovered(completed, rolledBack uint64) {
	c.recMu.Lock()
	c.recovered += completed
	c.rolledBack += rolledBack
	c.recMu.Unlock()
}

// recoverySnapshot reports the journal/recovery state for the health verdict.
func (c *Core) recoverySnapshot() (enabled bool, records uint64, pending int, recovered, rolledBack uint64) {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	if c.jn != nil {
		enabled, records = true, c.jn.Records()
	}
	return enabled, records, len(c.pendingOut), c.recovered, c.rolledBack
}

// PendingMoves reports how many journaled moves are awaiting resolution
// (PREPARE without COMMIT/ABORT).
func (c *Core) PendingMoves() int {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	return len(c.pendingOut)
}

// hasInstallRec reports whether the journal's final word is that the complet
// arrived here (Restore uses it to reconcile with recovery re-installs).
func (c *Core) hasInstallRec(id ids.CompletID) bool {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	_, ok := c.installRecs[id]
	return ok
}

// installRecSupersedes reports whether the journal holds an INSTALL
// disposition for the complet that was appended at or after a checkpoint's
// JournalSeq — i.e. the complet arrived here AFTER the checkpoint was taken,
// so the journaled bundle payload, not the (older) checkpoint entry, carries
// its freshest state. Restore skips such entries and lets Recover re-install
// them from the journal.
func (c *Core) installRecSupersedes(id ids.CompletID, ckptSeq uint64) bool {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	ir, ok := c.installRecs[id]
	return ok && ir.at >= ckptSeq
}
