package core

import (
	"context"
	"fmt"
	"sync"

	"fargo/internal/ids"
	"fargo/internal/ref"
	"fargo/internal/wire"
)

// Home-based, location-independent naming — the alternative to tracker
// chains that the paper names as future work (§7). Every complet's birth
// core doubles as its "home": whenever the complet arrives somewhere, the
// destination reports the new location to the home; anyone can then resolve
// the complet in exactly two messages (home query + direct access),
// regardless of how many times it moved.
//
// The trade-off against chains (experiment E9): home tracking costs one
// extra message per MOVE and two messages per cold LOOKUP, while chains cost
// nothing extra per move but one message per chain hop on the first use of a
// stale reference (and the chain grows with moves). Chains win when moves
// vastly outnumber fresh lookups; home naming wins when stale references are
// exercised often.

// homeTable is the per-core record of last-reported locations for complets
// born here. It is updated by HomeUpdate messages and by local
// installs/removes.
type homeTable struct {
	mu  sync.Mutex
	loc map[ids.CompletID]ids.CoreID
}

func (h *homeTable) set(id ids.CompletID, loc ids.CoreID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.loc == nil {
		h.loc = make(map[ids.CompletID]ids.CoreID)
	}
	h.loc[id] = loc
}

func (h *homeTable) get(id ids.CompletID) (ids.CoreID, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	loc, ok := h.loc[id]
	return loc, ok
}

// EnableHomeTracking turns on the home-based location service on this core:
// complets arriving here will report their location to their birth cores,
// and this core will answer location queries for complets born here. All
// cores participating in an application should enable it together.
func (c *Core) EnableHomeTracking() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.homeTracking = true
}

// homeTrackingEnabled reports whether home tracking is on.
func (c *Core) homeTrackingEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.homeTracking
}

// reportHome tells a complet's home core where it now lives. Failures are
// logged, not fatal: the tracker chain remains a correct fallback.
func (c *Core) reportHome(id ids.CompletID) {
	if id.Birth == c.id {
		c.homes.set(id, c.id)
		return
	}
	payload, err := wire.EncodePayload(wire.HomeUpdate{Target: id, Location: c.id})
	if err != nil {
		return
	}
	if err := c.tr.Notify(id.Birth, wire.KindHomeUpdate, payload); err != nil {
		c.opts.Logf("fargo core %s: home update for %s: %v", c.id, id, err)
	}
}

// LocateViaHome resolves a complet's location through its home core in a
// single round trip, bypassing tracker chains. It is a thin
// context.Background wrapper over LocateViaHomeCtx; prefer the ctx form.
func (c *Core) LocateViaHome(id ids.CompletID) (ids.CoreID, error) {
	return c.LocateViaHomeCtx(context.Background(), id)
}

// LocateViaHomeCtx resolves a complet's location through its home core under
// the caller's context. See locateViaHomeCtx (repair.go) for the internal
// core, which chain repair also uses.
func (c *Core) LocateViaHomeCtx(ctx context.Context, id ids.CompletID) (ids.CoreID, error) {
	ctx, cancel := c.withBudget(ctx, 0)
	defer cancel()
	return c.locateViaHomeCtx(ctx, id, ref.CallOptions{})
}

// InvokeViaHome invokes a method resolving the target through its home core
// instead of tracker chains (E9's alternative invocation path for stale
// references). It is a thin context.Background wrapper over
// InvokeViaHomeCtx; prefer the ctx form.
func (c *Core) InvokeViaHome(target ids.CompletID, method string, args ...any) ([]any, error) {
	return c.InvokeViaHomeCtx(context.Background(), target, method, args...)
}

// InvokeViaHomeCtx invokes a method resolving the target through its home
// core under the caller's context: the home lookup and the invocation share
// one end-to-end budget.
func (c *Core) InvokeViaHomeCtx(ctx context.Context, target ids.CompletID, method string, args ...any) ([]any, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	ctx, cancel := c.withBudget(ctx, 0)
	defer cancel()
	loc, err := c.locateViaHomeCtx(ctx, target, ref.CallOptions{})
	if err != nil {
		return nil, err
	}
	argBytes, _, err := wire.EncodeArgs(c.anchorsToRefs(args))
	if err != nil {
		return nil, err
	}
	var resBytes []byte
	if loc == c.id {
		resBytes, err = c.invokeLocal(ctx, target, method, argBytes)
	} else {
		resBytes, _, err = c.forwardInvoke(ctx, loc, target, ids.CompletID{}, method, argBytes, 0, ref.CallOptions{})
	}
	if err != nil {
		return nil, err
	}
	results, decoded, err := wire.DecodeArgs(resBytes)
	if err != nil {
		return nil, err
	}
	c.bindDecoded(decoded)
	return results, nil
}

// handleHomeUpdate records a reported location for a complet born here.
func (c *Core) handleHomeUpdate(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.HomeUpdate
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	if req.Target.Birth != c.id {
		return 0, nil, fmt.Errorf("core %s: home update for %s, which was not born here", c.id, req.Target)
	}
	c.homes.set(req.Target, req.Location)
	return wire.KindHomeUpdate, nil, nil
}

// handleHomeQuery answers a location query for a complet born here.
func (c *Core) handleHomeQuery(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.HomeQuery
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	reply := wire.HomeQueryReply{}
	if loc, ok := c.homes.get(req.Target); ok {
		reply.Location, reply.Found = loc, true
	} else if _, ok := c.lookup(req.Target); ok {
		reply.Location, reply.Found = c.id, true
	}
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindHomeQueryReply, out, nil
}
