package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fargo/internal/ids"
	"fargo/internal/ref"
	"fargo/internal/wire"
)

// Checkpoint/Restore implement core persistence — the first of the paper's
// future-work directions ("we plan to develop persistence and mobility-aware
// transactional models", §7). A checkpoint captures every complet hosted by
// this core — closures with their outgoing references' relocation semantics
// preserved — plus the core's name bindings. Restoring into a fresh core of
// the SAME name brings the complets back under their original identities, so
// references held elsewhere keep resolving (their trackers still point at
// this core's name).

// checkpointMagic guards against restoring garbage.
const checkpointMagic = "fargo-checkpoint-v1"

// checkpointEntry is one persisted complet.
type checkpointEntry struct {
	ID       ids.CompletID
	TypeName string
	Payload  []byte // closure encoded under ModeSnapshot
}

// checkpointFile is the on-disk format.
type checkpointFile struct {
	Magic string
	Core  ids.CoreID
	// MaxSeq is the highest complet sequence number minted by this core,
	// so a restored core never re-issues an ID.
	MaxSeq  uint64
	Entries []checkpointEntry
	Names   map[string]ref.Descriptor
	// JournalSeq is the move journal's record count when the checkpoint was
	// taken (0 with journaling off). Restore uses it to order the
	// checkpoint against journaled INSTALL records: an arrival journaled at
	// or after this count is newer than the checkpoint, so the journal's
	// payload — not the checkpoint entry — re-creates the complet.
	JournalSeq uint64
}

// Checkpoint serializes all hosted complets and name bindings to w. Each
// complet is briefly read-locked, so a checkpoint taken during live traffic
// is internally consistent per complet (not globally transactional — the
// transactional model remains future work here too).
func (c *Core) Checkpoint(w io.Writer) error {
	if c.isClosed() {
		return ErrClosed
	}
	c.mu.Lock()
	entries := make([]*complet, 0, len(c.complets))
	for _, e := range c.complets {
		entries = append(entries, e)
	}
	names := make(map[string]ref.Descriptor, len(c.names))
	for name, r := range c.names {
		desc, err := r.Descriptor()
		if err != nil {
			c.mu.Unlock()
			return fmt.Errorf("core: checkpoint name %q: %w", name, err)
		}
		names[name] = desc
	}
	c.mu.Unlock()

	file := checkpointFile{
		Magic: checkpointMagic,
		Core:  c.id,
		Names: names,
	}
	if enabled, records, _, _, _ := c.recoverySnapshot(); enabled {
		file.JournalSeq = records
	}
	for _, e := range entries {
		payload, err := c.snapshotComplet(e)
		if err != nil {
			return fmt.Errorf("core: checkpoint %s: %w", e.id, err)
		}
		if payload == nil {
			continue // moved away mid-checkpoint
		}
		file.Entries = append(file.Entries, checkpointEntry{
			ID:       e.id,
			TypeName: e.typeName,
			Payload:  payload,
		})
		if e.id.Birth == c.id && e.id.Seq > file.MaxSeq {
			file.MaxSeq = e.id.Seq
		}
	}
	c.mu.Lock()
	if minted := c.mint.Current(); minted > file.MaxSeq {
		file.MaxSeq = minted
	}
	c.mu.Unlock()

	if err := gob.NewEncoder(w).Encode(file); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// snapshotComplet encodes one complet's closure under ModeSnapshot.
func (c *Core) snapshotComplet(e *complet) ([]byte, error) {
	e.moveMu.RLock()
	defer e.moveMu.RUnlock()
	if e.gone {
		return nil, nil
	}
	wire.RegisterWireTypes()
	coll := &ref.Collector{Mode: ref.ModeSnapshot}
	var buf bytes.Buffer
	err := ref.WithCollector(coll, func() error {
		return gob.NewEncoder(&buf).Encode(snapshotBox{Anchor: e.anchor})
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// snapshotBox wraps the anchor so gob records its dynamic type.
type snapshotBox struct {
	Anchor any
}

// CheckpointFile checkpoints to a file path, atomically: the checkpoint is
// written to a temp file in the same directory, fsync'd, and renamed over the
// target. A crash mid-checkpoint therefore leaves the previous checkpoint
// intact — there is never a moment where path holds a torn file.
func (c *Core) CheckpointFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint file: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := c.Checkpoint(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("core: sync checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("core: close checkpoint: %w", err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: publish checkpoint: %w", err)
	}
	// Persist the rename itself (the directory entry).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Restore installs the complets and names of a checkpoint into this core.
// The core must have the same name the checkpoint was taken on (identities
// embed the birth core) and must not already host complets with the same
// IDs. Returns the number of complets restored.
//
// Restore is all-or-nothing: every entry and name binding is decoded and
// validated before anything is installed, so a truncated or corrupted
// checkpoint (a bad body after a valid header included) leaves the core
// exactly as it was.
func (c *Core) Restore(r io.Reader) (int, error) {
	if c.isClosed() {
		return 0, ErrClosed
	}
	var file checkpointFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return 0, fmt.Errorf("core: read checkpoint: %w", err)
	}
	if file.Magic != checkpointMagic {
		return 0, fmt.Errorf("core: not a fargo checkpoint")
	}
	if file.Core != c.id {
		return 0, fmt.Errorf("core: checkpoint belongs to core %q, this core is %q", file.Core, c.id)
	}

	// Phase 1: decode everything without touching the repository.
	type restoredComplet struct {
		entry   checkpointEntry
		anchor  any
		decoded []*ref.Ref
	}
	pending := make([]restoredComplet, 0, len(file.Entries))
	for _, entry := range file.Entries {
		if _, exists := c.lookup(entry.ID); exists {
			// A recovery probe (or the runtime protocol) may have installed
			// this complet from a journaled INSTALL record before the
			// checkpoint was restored (recovery.go); that live copy stays,
			// the checkpoint entry is skipped. Anything else hosted under
			// the same ID is a real conflict.
			if c.hasInstallRec(entry.ID) {
				continue
			}
			return 0, fmt.Errorf("core: restore: complet %s already hosted", entry.ID)
		}
		// The complet is absent, but if the journal recorded its arrival
		// AFTER this checkpoint was taken, the journaled bundle is the
		// fresher state: skip the entry and let Recover re-install it.
		if c.installRecSupersedes(entry.ID, file.JournalSeq) {
			continue
		}
		anchor, decoded, err := decodeSnapshot(entry.Payload)
		if err != nil {
			return 0, fmt.Errorf("core: restore %s: %w", entry.ID, err)
		}
		pending = append(pending, restoredComplet{entry: entry, anchor: anchor, decoded: decoded})
	}
	names := make(map[string]*ref.Ref, len(file.Names))
	for name, desc := range file.Names {
		nr, err := ref.FromDescriptor(desc)
		if err != nil {
			return 0, fmt.Errorf("core: restore name %q: %w", name, err)
		}
		names[name] = nr
	}

	// Phase 2: the checkpoint is sound; install it.
	// Never mint an ID the checkpointed core may have issued.
	c.mint.Advance(file.MaxSeq)
	for _, rc := range pending {
		for _, dr := range rc.decoded {
			dr.SetOwner(rc.entry.ID)
		}
		c.bindDecoded(rc.decoded)
		c.install(rc.entry.ID, rc.entry.TypeName, rc.anchor)
		c.mon.fireBuiltin(EventCompletArrived, rc.entry.ID, "restore")
	}
	for name, nr := range names {
		nr.Bind(c.binder())
		c.setLocalName(name, nr)
	}

	// With a move journal attached, reconcile the restored repository with
	// the journal's more recent word — re-install arrivals the checkpoint
	// missed, release copies whose move already committed, and try to
	// resolve moves that were in flight when the core died. Unresolved moves
	// (destination unreachable) stay pending; a later Recover call can
	// finish them.
	if c.jn != nil {
		rep, err := c.Recover(context.Background())
		if err != nil {
			c.opts.Logf("fargo core %s: post-restore recovery: %v", c.id, err)
		} else if !rep.Empty() {
			c.opts.Logf("fargo core %s: post-restore recovery: %s", c.id, rep)
		}
	}
	return len(pending), nil
}

// RestoreFile restores from a file path.
func (c *Core) RestoreFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("core: restore file: %w", err)
	}
	defer f.Close()
	return c.Restore(f)
}

// CheckpointRemote asks a peer core to checkpoint itself to a file path on
// ITS host, returning the number of complets captured. It is a thin
// context.Background wrapper over CheckpointRemoteCtx, running under the
// core's default request budget; prefer the ctx form.
func (c *Core) CheckpointRemote(dest ids.CoreID, path string) (int, error) {
	return c.CheckpointRemoteCtx(context.Background(), dest, path)
}

// CheckpointRemoteCtx asks a peer core to checkpoint itself under the
// caller's context.
func (c *Core) CheckpointRemoteCtx(ctx context.Context, dest ids.CoreID, path string) (int, error) {
	if dest == c.id {
		if err := c.CheckpointFile(path); err != nil {
			return 0, err
		}
		return c.CompletCount(), nil
	}
	if c.isClosed() {
		return 0, ErrClosed
	}
	payload, err := wire.EncodePayload(wire.CheckpointRequest{Path: path})
	if err != nil {
		return 0, err
	}
	ctx, cancel := c.withBudget(ctx, 0)
	defer cancel()
	env, err := c.request(ctx, dest, wire.KindCheckpoint, payload)
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint %s: %w", dest, err)
	}
	var reply wire.CheckpointReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return 0, err
	}
	if reply.Err != "" {
		return 0, fmt.Errorf("core: checkpoint %s: %s", dest, reply.Err)
	}
	return reply.Complets, nil
}

// handleCheckpoint serves a routed checkpoint command.
func (c *Core) handleCheckpoint(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.CheckpointRequest
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	reply := wire.CheckpointReply{}
	if req.Path == "" {
		reply.Err = "empty checkpoint path"
	} else if err := c.CheckpointFile(req.Path); err != nil {
		reply.Err = err.Error()
	} else {
		reply.Complets = c.CompletCount()
	}
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindCheckpointReply, out, nil
}

// decodeSnapshot decodes a ModeSnapshot closure.
func decodeSnapshot(data []byte) (any, []*ref.Ref, error) {
	wire.RegisterWireTypes()
	coll := &ref.Collector{Mode: ref.ModeSnapshot}
	var box snapshotBox
	err := ref.WithCollector(coll, func() error {
		return gob.NewDecoder(bytes.NewReader(data)).Decode(&box)
	})
	if err != nil {
		return nil, nil, err
	}
	return box.Anchor, coll.Decoded, nil
}
