package core

import (
	"context"
	"fmt"
	"time"

	"fargo/internal/ids"
	"fargo/internal/wire"
)

// Planner statistics: the per-core snapshot consumed by the autonomic layout
// planner's communication-graph collector (internal/plan, DESIGN.md §14).
// Each core reports the complets it hosts, the per-pair invocation meters it
// observed (recorded at the core hosting each pair's destination), its load
// and its free capacity; the collector aggregates the snapshots into one
// weighted graph keyed on complet identity.

// PlannerConfig enables the autonomic layout planner on a core built through
// the facade (fargo.Options.Planner). It is plain data — core cannot import
// internal/plan — and mirrors plan.Options; see there for field semantics.
type PlannerConfig struct {
	// Cores lists the member cores of the planning domain. Empty means the
	// facade fills in this core plus its seeded peers.
	Cores []ids.CoreID
	// Interval is the closed-loop period (0 = manual rounds only).
	Interval time.Duration
	// DryRun records proposals without moving anything.
	DryRun bool
	// MinGain is the minimum estimated cross-core invocations/second a move
	// must eliminate to be worth actuating (oscillation damping).
	MinGain float64
	// Cooldown is how long a moved complet is exempt from further planning.
	Cooldown time.Duration
	// MaxMovesPerRound caps the actuations of one planning round.
	MaxMovesPerRound int
}

// PlanStats snapshots this core for the planner's collector.
func (c *Core) PlanStats() wire.PlanStatsQueryReply {
	infos := c.Complets()
	complets := make([]ids.CompletID, len(infos))
	for i, info := range infos {
		complets[i] = info.ID
	}
	return wire.PlanStatsQueryReply{
		Core:         c.id,
		Complets:     complets,
		Pairs:        c.mon.PairStats(),
		Load:         len(infos),
		CapacityFree: c.capacityFree(),
	}
}

// PlanStatsAt fetches a member core's planner snapshot. It is a thin
// context.Background wrapper over PlanStatsAtCtx; prefer the ctx form.
func (c *Core) PlanStatsAt(dest ids.CoreID) (wire.PlanStatsQueryReply, error) {
	return c.PlanStatsAtCtx(context.Background(), dest)
}

// PlanStatsAtCtx fetches a member core's planner snapshot under the caller's
// context.
func (c *Core) PlanStatsAtCtx(ctx context.Context, dest ids.CoreID) (wire.PlanStatsQueryReply, error) {
	if dest == c.id {
		return c.PlanStats(), nil
	}
	if c.isClosed() {
		return wire.PlanStatsQueryReply{}, ErrClosed
	}
	ctx, cancel := c.withBudget(ctx, 0)
	defer cancel()
	env, err := c.request(ctx, dest, wire.KindPlanStatsQuery, nil)
	if err != nil {
		return wire.PlanStatsQueryReply{}, fmt.Errorf("core: plan stats of %s: %w", dest, err)
	}
	var reply wire.PlanStatsQueryReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return wire.PlanStatsQueryReply{}, err
	}
	if reply.Err != "" {
		return reply, fmt.Errorf("core: plan stats of %s: %s", dest, reply.Err)
	}
	return reply, nil
}

// handlePlanStats serves a planner-collector query.
func (c *Core) handlePlanStats(wire.Envelope) (wire.Kind, []byte, error) {
	out, err := wire.EncodePayload(c.PlanStats())
	if err != nil {
		return 0, nil, err
	}
	return wire.KindPlanStatsQueryReply, out, nil
}
