package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"fargo/internal/ids"
	"fargo/internal/metrics"
	"fargo/internal/trace"
	"fargo/internal/wire"
)

func mustParseTraceID(t *testing.T, s string) trace.TraceID {
	t.Helper()
	id, err := trace.ParseTraceID(s)
	if err != nil {
		t.Fatalf("bad trace ID %q: %v", s, err)
	}
	return id
}

func methodRow(rows []wire.MethodStat, complet ids.CompletID, method string) (wire.MethodStat, bool) {
	for _, r := range rows {
		if r.Complet == complet && r.Method == method {
			return r, true
		}
	}
	return wire.MethodStat{}, false
}

// Per-method instruments: calls, errors, and latency accrue per (complet,
// method); the rows surface through ObsQuery and the labeled series through
// the registry snapshot.
func TestPerMethodTelemetry(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "hello")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		invoke1(t, r, "Print")
	}
	if _, err := r.Invoke("Fail"); err == nil {
		t.Fatal("Fail should fail")
	}

	rows, err := a.MethodStatsAt(context.Background(), a.ID())
	if err != nil {
		t.Fatal(err)
	}
	pr, ok := methodRow(rows, r.Target(), "Print")
	if !ok {
		t.Fatalf("no Print row in %+v", rows)
	}
	if pr.Calls != 7 || pr.Errors != 0 || pr.TypeName != "Msg" {
		t.Fatalf("Print row = %+v, want 7 calls, 0 errors, type Msg", pr)
	}
	if pr.Latency.Count != 7 || pr.Latency.P95 <= 0 {
		t.Fatalf("Print latency = %+v, want count 7 and positive quantiles", pr.Latency)
	}
	if pr.InFlight != 0 {
		t.Fatalf("Print in-flight = %d at rest, want 0", pr.InFlight)
	}
	fr, ok := methodRow(rows, r.Target(), "Fail")
	if !ok {
		t.Fatalf("no Fail row in %+v", rows)
	}
	if fr.Calls != 1 || fr.Errors != 1 {
		t.Fatalf("Fail row = %+v, want 1 call, 1 error", fr)
	}
	// Rows are sorted hottest-first.
	if rows[0].Method != "Print" {
		t.Fatalf("rows not sorted by calls: first is %s", rows[0].Method)
	}

	// The same telemetry is labeled registry series (and thus on /metrics).
	labels := methodLabels(r.Target(), "Msg", "Print")
	snap := a.Metrics().Snapshot()
	if got := snap.Counters[metrics.JoinLabels("method_calls_total", labels)]; got != 7 {
		t.Fatalf("method_calls_total series = %d, want 7", got)
	}
	if h, ok := snap.Histograms[metrics.JoinLabels("method_latency_ns", labels)]; !ok || h.Count != 7 {
		t.Fatalf("method_latency_ns series missing or wrong: %+v", h)
	}
}

// Method meters travel with the complet: exported into the bundle, imported
// at the destination, removed (rows AND registry series) at the source.
func TestMethodTelemetrySurvivesMove(t *testing.T) {
	cl := newCluster(t, "a", "b", "c")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "hi")
	if err != nil {
		t.Fatal(err)
	}
	const n = 9
	for i := 0; i < n; i++ {
		invoke1(t, r, "Print")
	}
	if err := a.Move(r, "c"); err != nil {
		t.Fatal(err)
	}

	// The new host serves the full history under the unchanged identity.
	rows, err := a.MethodStatsAt(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	row, ok := methodRow(rows, r.Target(), "Print")
	if !ok {
		t.Fatalf("no Print row at new host: %+v", rows)
	}
	if row.Calls != n || row.Latency.Count != n {
		t.Fatalf("imported row = %+v, want %d calls with full latency history", row, n)
	}

	// The old host dropped both the row and the labeled series.
	oldRows, err := a.MethodStatsAt(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, still := methodRow(oldRows, r.Target(), "Print"); still {
		t.Fatalf("old host still serves the departed row: %+v", oldRows)
	}
	for name := range cl.core("b").Metrics().Snapshot().Counters {
		if strings.HasPrefix(name, "method_calls_total{") && strings.Contains(name, r.Target().String()) {
			t.Fatalf("old host still scrapes departed series %s", name)
		}
	}

	// Post-move invocations accrue on the same identity-keyed row.
	for i := 0; i < 4; i++ {
		invoke1(t, r, "Print")
	}
	rows, err = a.MethodStatsAt(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	row, _ = methodRow(rows, r.Target(), "Print")
	if row.Calls != n+4 {
		t.Fatalf("post-move calls = %d, want %d", row.Calls, n+4)
	}
}

// Sampled invocations stamp the method's latency bucket with the trace ID, so
// /metrics exemplars point at resolvable traces.
func TestMethodExemplarCapturesTraceID(t *testing.T) {
	cl := newClusterOpts(t, Options{RequestTimeout: 10 * time.Second, TraceSampleRate: 1}, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "hello")
	if err != nil {
		t.Fatal(err)
	}
	invoke1(t, r, "Print")

	labels := methodLabels(r.Target(), "Msg", "Print")
	h := a.Metrics().Snapshot().Histograms[metrics.JoinLabels("method_latency_ns", labels)]
	var traceID string
	for _, e := range h.Exemplars {
		if e.TraceID != "" {
			traceID = e.TraceID
		}
	}
	if traceID == "" {
		t.Fatalf("sampled invocation left no exemplar: %+v", h)
	}
	// The exemplar resolves against the core's own span collector.
	spans, err := a.TraceAt(a.ID(), mustParseTraceID(t, traceID))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatalf("exemplar trace %s resolves to no spans", traceID)
	}
}

// DisablePerMethodStats turns the instruments off completely: no rows, no
// labeled series.
func TestPerMethodStatsDisabled(t *testing.T) {
	cl := newClusterOpts(t, Options{RequestTimeout: 10 * time.Second, DisablePerMethodStats: true}, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "hello")
	if err != nil {
		t.Fatal(err)
	}
	invoke1(t, r, "Print")
	rows, err := a.MethodStatsAt(context.Background(), a.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("instruments disabled but rows exist: %+v", rows)
	}
	for name := range a.Metrics().Snapshot().Counters {
		if strings.HasPrefix(name, "method_") {
			t.Fatalf("instruments disabled but series %s registered", name)
		}
	}
}
