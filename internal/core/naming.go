package core

import (
	"context"
	"fmt"
	"sort"

	"fargo/internal/ids"
	"fargo/internal/ref"
	"fargo/internal/wire"
)

// The naming service (§3, Figure 1) maps logical names to complet references
// per core. Because the stored values are tracking references, names keep
// resolving as their targets migrate.

// Name binds a logical name to the referenced complet in this core's naming
// service. Rebinding an existing name replaces it.
func (c *Core) Name(name string, r *ref.Ref) error {
	if c.isClosed() {
		return ErrClosed
	}
	if name == "" {
		return fmt.Errorf("core: empty name")
	}
	if r == nil {
		return fmt.Errorf("core: nil reference for name %q", name)
	}
	// Store a private tracking copy so later relocator changes on the
	// caller's stub don't alter naming behaviour.
	stored := ref.New(r.Target(), r.AnchorType(), r.Hint(), c.binder())
	c.enrichAnchorType(stored)
	c.setLocalName(name, stored)
	return nil
}

// enrichAnchorType fills in a reference's anchor type from the local
// repository when the caller did not know it (e.g. shell-made references
// built from bare IDs).
func (c *Core) enrichAnchorType(r *ref.Ref) {
	if r.AnchorType() != "" {
		return
	}
	if entry, ok := c.lookup(r.Target()); ok {
		r.Retarget(r.Target(), entry.typeName, r.Hint())
	}
}

func (c *Core) setLocalName(name string, r *ref.Ref) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.names[name] = r
}

// Unname removes a name binding.
func (c *Core) Unname(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.names, name)
}

// Lookup resolves a name in this core's naming service, returning a fresh
// reference for the caller.
func (c *Core) Lookup(name string) (*ref.Ref, bool) {
	c.mu.Lock()
	r, ok := c.names[name]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return ref.New(r.Target(), r.AnchorType(), r.Hint(), c.binder()), true
}

// Names lists this core's name bindings in sorted order.
func (c *Core) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.names))
	for n := range c.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NameAt binds a name in a remote core's naming service.
func (c *Core) NameAt(dest ids.CoreID, name string, r *ref.Ref) error {
	return c.NameAtCtx(context.Background(), dest, name, r)
}

// NameAtCtx is NameAt bounded by the caller's context. Name registration
// replaces any previous binding, so a retry could not double-apply an
// effect; it is still excluded from transparent retries because a replayed
// stale registration can overwrite a newer one.
func (c *Core) NameAtCtx(ctx context.Context, dest ids.CoreID, name string, r *ref.Ref, opts ...ref.InvokeOption) error {
	if dest == c.id {
		return c.Name(name, r)
	}
	if c.isClosed() {
		return ErrClosed
	}
	o := ref.BuildCallOptions(opts)
	ctx, cancel := c.withBudget(ctx, o.Timeout)
	defer cancel()
	desc, err := r.Descriptor()
	if err != nil {
		return err
	}
	payload, err := wire.EncodePayload(wire.NameSet{Name: name, Desc: desc})
	if err != nil {
		return err
	}
	env, err := c.requestOpts(ctx, dest, wire.KindNameSet, payload, o)
	if err != nil {
		return invokeErr(fmt.Sprintf("name %q at %s", name, dest), r.Target(), dest,
			fmt.Errorf("core: name %q at %s: %w", name, dest, err))
	}
	var reply wire.NameSetReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return err
	}
	if reply.Err != "" {
		return &peerError{msg: fmt.Sprintf("core: name %q at %s: %s", name, dest, reply.Err)}
	}
	return nil
}

// LookupAt resolves a name in a remote core's naming service.
func (c *Core) LookupAt(dest ids.CoreID, name string) (*ref.Ref, bool, error) {
	return c.LookupAtCtx(context.Background(), dest, name)
}

// LookupAtCtx is LookupAt bounded by the caller's context. Lookups are
// idempotent and retried per the core's retry policy on transient transport
// failures.
func (c *Core) LookupAtCtx(ctx context.Context, dest ids.CoreID, name string, opts ...ref.InvokeOption) (*ref.Ref, bool, error) {
	if dest == c.id {
		r, ok := c.Lookup(name)
		return r, ok, nil
	}
	if c.isClosed() {
		return nil, false, ErrClosed
	}
	o := ref.BuildCallOptions(opts)
	ctx, cancel := c.withBudget(ctx, o.Timeout)
	defer cancel()
	payload, err := wire.EncodePayload(wire.NameLookup{Name: name})
	if err != nil {
		return nil, false, err
	}
	env, err := c.requestOpts(ctx, dest, wire.KindNameLookup, payload, o)
	if err != nil {
		return nil, false, invokeErr(fmt.Sprintf("lookup %q at %s", name, dest), ids.CompletID{}, dest,
			fmt.Errorf("core: lookup %q at %s: %w", name, dest, err))
	}
	var reply wire.NameLookupReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return nil, false, err
	}
	if reply.Err != "" {
		return nil, false, &peerError{msg: fmt.Sprintf("core: lookup %q at %s: %s", name, dest, reply.Err)}
	}
	if !reply.Found {
		return nil, false, nil
	}
	r, err := ref.FromDescriptor(reply.Desc)
	if err != nil {
		return nil, false, err
	}
	r.Bind(c.binder())
	c.trackerFor(r.Target(), r.Hint())
	return r, true, nil
}

func (c *Core) handleNameSet(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.NameSet
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	reply := wire.NameSetReply{}
	r, err := ref.FromDescriptor(req.Desc)
	if err != nil {
		reply.Err = err.Error()
	} else if req.Name == "" {
		reply.Err = "empty name"
	} else {
		r.Bind(c.binder())
		c.enrichAnchorType(r)
		c.setLocalName(req.Name, r)
	}
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindNameSetReply, out, nil
}

func (c *Core) handleNameLookup(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.NameLookup
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	reply := wire.NameLookupReply{}
	if r, ok := c.Lookup(req.Name); ok {
		desc, err := r.Descriptor()
		if err != nil {
			reply.Err = err.Error()
		} else {
			reply.Desc, reply.Found = desc, true
		}
	}
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindNameLookupReply, out, nil
}
