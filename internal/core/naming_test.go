package core

import (
	"testing"
)

func TestNameLookupLocal(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "named")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Name("msg", r); err != nil {
		t.Fatal(err)
	}
	got, ok := a.Lookup("msg")
	if !ok {
		t.Fatal("name not found")
	}
	if v := invoke1(t, got, "Print"); v != "named" {
		t.Fatalf("Print via name = %v", v)
	}
	if _, ok := a.Lookup("ghost"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestNameValidation(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Name("", r); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := a.Name("n", nil); err == nil {
		t.Fatal("nil ref should fail")
	}
}

func TestNameRebindAndUnname(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	r1, err := a.NewComplet("Msg", "one")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.NewComplet("Msg", "two")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Name("n", r1); err != nil {
		t.Fatal(err)
	}
	if err := a.Name("n", r2); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Lookup("n")
	if v := invoke1(t, got, "Print"); v != "two" {
		t.Fatalf("rebound name resolves to %v", v)
	}
	a.Unname("n")
	if _, ok := a.Lookup("n"); ok {
		t.Fatal("name survived Unname")
	}
}

func TestNamesSorted(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "x")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := a.Name(n, r); err != nil {
			t.Fatal(err)
		}
	}
	names := a.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRemoteNaming(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "remote-named")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.NameAt("b", "svc", r); err != nil {
		t.Fatal(err)
	}
	got, ok, err := a.LookupAt("b", "svc")
	if err != nil || !ok {
		t.Fatalf("LookupAt: %v, %v", ok, err)
	}
	if v := invoke1(t, got, "Print"); v != "remote-named" {
		t.Fatalf("Print via remote name = %v", v)
	}
	_, ok, err = a.LookupAt("b", "ghost")
	if err != nil || ok {
		t.Fatalf("ghost lookup: %v, %v", ok, err)
	}
}

func TestNameTracksMovement(t *testing.T) {
	// A name bound at core a keeps resolving after its target moves away.
	cl := newCluster(t, "a", "b", "c")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "wanderer")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Name("w", r); err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	if err := cl.core("b").MoveByID(r.Target(), "c"); err != nil {
		t.Fatal(err)
	}
	got, ok := a.Lookup("w")
	if !ok {
		t.Fatal("name lost")
	}
	if v := invoke1(t, got, "Print"); v != "wanderer" {
		t.Fatalf("Print = %v", v)
	}
	if loc, err := got.Meta().Location(); err != nil || loc != "c" {
		t.Fatalf("location via name = %v, %v", loc, err)
	}
}
