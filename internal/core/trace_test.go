package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"fargo/internal/trace"
)

// traceCluster builds named cores with sampling fully on, so every pipeline
// entry point roots a trace.
func traceCluster(t *testing.T, names ...string) *cluster {
	t.Helper()
	return newClusterOpts(t, Options{
		RequestTimeout:  10 * time.Second,
		TraceSampleRate: 1,
	}, names...)
}

// mergedTrace gathers one trace's spans from every named core through the
// wire query path (the same path the shell's `trace <core> <id> ...` uses).
func mergedTrace(t *testing.T, cl *cluster, via *Core, id trace.TraceID, cores ...string) []trace.Span {
	t.Helper()
	var spans []trace.Span
	for _, name := range cores {
		wireSpans, err := via.TraceAt(cl.core(name).ID(), id)
		if err != nil {
			t.Fatalf("TraceAt(%s): %v", name, err)
		}
		spans = append(spans, SpansFromWire(wireSpans)...)
	}
	return spans
}

// rootOf finds the single parentless span of a merged trace.
func rootOf(t *testing.T, spans []trace.Span) trace.Span {
	t.Helper()
	var root trace.Span
	n := 0
	for _, sp := range spans {
		if sp.Parent == 0 {
			root = sp
			n++
		}
	}
	if n != 1 {
		t.Fatalf("trace has %d parentless spans, want exactly 1:\n%s", n, dumpSpans(spans))
	}
	return root
}

// findSpan returns the first span whose name has the given prefix.
func findSpan(t *testing.T, spans []trace.Span, prefix string) trace.Span {
	t.Helper()
	for _, sp := range spans {
		if strings.HasPrefix(sp.Name, prefix) {
			return sp
		}
	}
	t.Fatalf("no span named %q* in trace:\n%s", prefix, dumpSpans(spans))
	return trace.Span{}
}

func dumpSpans(spans []trace.Span) string {
	var b strings.Builder
	trace.FormatTree(&b, spans)
	return b.String()
}

// parentedUnder reports whether child's Parent links (directly or through
// intermediate spans) to ancestor's ID.
func parentedUnder(spans []trace.Span, child, ancestor trace.Span) bool {
	byID := make(map[trace.SpanID]trace.Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	for cur := child; cur.Parent != 0; {
		if cur.Parent == ancestor.ID {
			return true
		}
		next, ok := byID[cur.Parent]
		if !ok {
			return false
		}
		cur = next
	}
	return false
}

// TestTraceInvokeAcrossChain asserts a single causally-linked trace for an
// invocation that traverses a two-hop tracker chain: a's stale tracker routes
// via b, which forwards to the owner c (and chain shortening then repoints a).
func TestTraceInvokeAcrossChain(t *testing.T) {
	cl := traceCluster(t, "a", "b", "c")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "chained")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	// b drives the second hop so a's tracker stays stale at b.
	if err := cl.core("b").MoveByID(r.Target(), "c"); err != nil {
		t.Fatal(err)
	}

	stale := a.NewRefTo(r.Target(), "Msg", "b")
	res, err := stale.InvokeCtx(context.Background(), "Print")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "chained" {
		t.Fatalf("result = %v", res[0])
	}

	// The invocation rooted exactly one trace at a; pick the invoke root.
	var id trace.TraceID
	for _, sp := range a.Tracer().Collector().Snapshot() {
		if sp.Name == "invoke Msg.Print" && sp.Parent == 0 {
			id = sp.Trace
		}
	}
	if id == 0 {
		t.Fatal("no invoke root span recorded at a")
	}

	spans := mergedTrace(t, cl, a, id, "a", "b", "c")
	root := rootOf(t, spans)
	if root.Core != "a" || root.Name != "invoke Msg.Print" {
		t.Fatalf("root = %q on %s, want invoke Msg.Print on a", root.Name, root.Core)
	}
	for _, sp := range spans {
		if sp.Trace != id {
			t.Fatalf("span %q carries trace %s, want %s", sp.Name, sp.Trace, id)
		}
	}

	// Every hop contributed: b served and forwarded, c served and executed.
	var serveB, serveC, execC trace.Span
	for _, sp := range spans {
		switch {
		case sp.Name == "serve invoke Print" && sp.Core == "b":
			serveB = sp
		case sp.Name == "serve invoke Print" && sp.Core == "c":
			serveC = sp
		case sp.Name == "exec Msg.Print" && sp.Core == "c":
			execC = sp
		}
	}
	if serveB.ID == 0 || serveC.ID == 0 || execC.ID == 0 {
		t.Fatalf("missing hop spans in trace:\n%s", dumpSpans(spans))
	}
	if serveB.Parent != root.ID {
		t.Fatalf("b's serve span parents %x, want root %x", serveB.Parent, root.ID)
	}
	if serveC.Parent != serveB.ID {
		t.Fatalf("c's serve span parents %x, want b's serve %x", serveC.Parent, serveB.ID)
	}
	if execC.Parent != serveC.ID {
		t.Fatalf("c's exec span parents %x, want c's serve %x", execC.Parent, serveC.ID)
	}

	// The merged spans must export as loadable Chrome trace_event JSON.
	data, err := trace.ExportChromeJSON(spans)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("exported JSON invalid: %v", err)
	}
	// One complete event per span plus one metadata event per core.
	if got, want := len(doc.TraceEvents), len(spans)+3; got != want {
		t.Fatalf("export has %d events, want %d", got, want)
	}
}

// TestTraceMoveSpans asserts a MoveCtx produces one trace whose bundle span
// (sender) parents the install span (receiver).
func TestTraceMoveSpans(t *testing.T) {
	cl := traceCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "mover")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MoveCtx(context.Background(), r, "b"); err != nil {
		t.Fatal(err)
	}

	var id trace.TraceID
	for _, sp := range a.Tracer().Collector().Snapshot() {
		if strings.HasPrefix(sp.Name, "move ") && sp.Parent == 0 {
			id = sp.Trace
		}
	}
	if id == 0 {
		t.Fatal("no move root span recorded at a")
	}

	spans := mergedTrace(t, cl, a, id, "a", "b")
	root := rootOf(t, spans)
	if !strings.HasPrefix(root.Name, "move ") || root.Core != "a" {
		t.Fatalf("root = %q on %s", root.Name, root.Core)
	}
	bundle := findSpan(t, spans, "move.bundle")
	if bundle.Core != "a" || bundle.Parent != root.ID {
		t.Fatalf("bundle span on %s parents %x, want a under root %x", bundle.Core, bundle.Parent, root.ID)
	}
	install := findSpan(t, spans, "move.install")
	if install.Core != "b" || install.Parent != bundle.ID {
		t.Fatalf("install span on %s parents %x, want b under bundle %x", install.Core, install.Parent, bundle.ID)
	}
}

// TestTraceRepairRetry asserts the self-healing path shows up in the trace: an
// invocation through a dead chain hop records the repair span and the retried
// serve/exec spans at the true owner, all under the original root.
func TestTraceRepairRetry(t *testing.T) {
	cl := traceCluster(t, "a", "b", "c")
	for _, c := range cl.cores {
		c.EnableHomeTracking()
	}
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "survivor")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	if err := cl.core("b").MoveByID(r.Target(), "c"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		loc, err := a.LocateViaHome(r.Target())
		return err == nil && loc == "c"
	})
	if err := cl.net.StopHost("b"); err != nil {
		t.Fatal(err)
	}

	stale := a.NewRefTo(r.Target(), "Msg", "b")
	res, err := stale.InvokeCtx(context.Background(), "Print")
	if err != nil {
		t.Fatalf("invoke through dead hop: %v", err)
	}
	if res[0] != "survivor" {
		t.Fatalf("result = %v", res[0])
	}

	// Collector at a holds the root and the repair span; c holds the
	// post-repair serve/exec spans. b is dead and cannot be queried.
	var id trace.TraceID
	for _, sp := range a.Tracer().Collector().Snapshot() {
		if sp.Name == "invoke Msg.Print" && sp.Parent == 0 && sp.Err == "" {
			id = sp.Trace
		}
	}
	if id == 0 {
		t.Fatal("no successful invoke root recorded at a")
	}
	spans := mergedTrace(t, cl, a, id, "a", "c")
	root := rootOf(t, spans)

	repair := findSpan(t, spans, "repair ")
	if repair.Core != "a" {
		t.Fatalf("repair span recorded on %s, want a", repair.Core)
	}
	if !parentedUnder(spans, repair, root) {
		t.Fatalf("repair span not causally under the invoke root:\n%s", dumpSpans(spans))
	}
	execC := findSpan(t, spans, "exec Msg.Print")
	if execC.Core != "c" {
		t.Fatalf("exec span on %s, want c", execC.Core)
	}
	if !parentedUnder(spans, execC, root) {
		t.Fatalf("retried exec not causally under the invoke root:\n%s", dumpSpans(spans))
	}

	// The repair also shows in the metrics: one chain repair, zero failures.
	snap, err := a.StatsAt(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["chain_repairs_total"] != 1 {
		t.Fatalf("chain_repairs_total = %d, want 1", snap.Counters["chain_repairs_total"])
	}
}

// TestTraceSamplingOffRecordsNothing pins the zero-overhead contract: with
// the default sample rate (0) no spans are retained anywhere, while the
// metrics counters still tick.
func TestTraceSamplingOffRecordsNothing(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "dark")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	if got := invoke1(t, r, "Print"); got != "dark" {
		t.Fatalf("Print = %v", got)
	}
	for name, c := range cl.cores {
		if n := len(c.Tracer().Collector().Snapshot()); n != 0 {
			t.Fatalf("core %s retained %d spans with sampling off", name, n)
		}
	}
	snap, err := a.StatsAt(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["moves_total"] != 1 {
		t.Fatalf("moves_total = %d, want 1", snap.Counters["moves_total"])
	}
	if snap.Counters["invoke_forwarded_total"] == 0 {
		t.Fatal("invoke_forwarded_total = 0, want > 0")
	}
}
