package core

import (
	"sort"
	"time"

	"fargo/internal/ids"
	"fargo/internal/metrics"
	"fargo/internal/stats"
	"fargo/internal/wire"
)

// Per-method SLO instruments (DESIGN.md §16). The paper's monitoring unit
// profiles per-reference invocation rates (§4.1); this file extends that to
// complet-granular service-level telemetry: for every (hosted complet,
// method) the serving core keeps a latency histogram, call and error
// counters, and an in-flight gauge. The instruments are labeled series in the
// core's metrics registry — method_latency_ns{complet=...,method=...,type=...}
// — so they appear on /metrics, federate into cluster_ families through the
// observatory, and can carry exemplars linking a slow bucket to the trace
// that filled it.
//
// Like the pair meters, the instruments are keyed on complet identity, not on
// the hosting core: when a complet moves, its method meters are exported into
// the movement bundle (wire.MoveRequest.MethodMeters), imported into the
// destination's live instruments at install time, and removed from the source
// registry — the complet's latency history follows it around the deployment
// and is counted at exactly one core.

// Per-method series base names.
const (
	methodLatencyName  = "method_latency_ns"
	methodCallsName    = "method_calls_total"
	methodErrorsName   = "method_errors_total"
	methodInflightName = "method_inflight"
)

// methodKey identifies one (complet, method) instrument row.
type methodKey struct {
	target ids.CompletID
	method string
}

// methodMeter is the live instrument set of one (complet, method). The
// instruments are shared with the metrics registry (same pointers), so the
// hot path touches only lock-free kernels after the map lookup.
type methodMeter struct {
	typeName string
	lat      *stats.Histogram
	calls    *stats.Counter
	errs     *stats.Counter
	inflight *stats.Gauge
}

// methodLabels builds the canonical label set of one instrument row.
func methodLabels(target ids.CompletID, typeName, method string) metrics.Labels {
	return metrics.Labels{"complet": target.String(), "method": method, "type": typeName}
}

// methodMeterFor returns the meter for (target, method), creating its
// registry series on first use. Returns nil when per-method instruments are
// disabled.
func (m *Monitor) methodMeterFor(target ids.CompletID, typeName, method string) *methodMeter {
	if m.methodsOff {
		return nil
	}
	key := methodKey{target: target, method: method}
	m.methodsMu.RLock()
	mm, ok := m.methods[key]
	m.methodsMu.RUnlock()
	if ok {
		return mm
	}
	m.methodsMu.Lock()
	defer m.methodsMu.Unlock()
	if mm, ok := m.methods[key]; ok {
		return mm
	}
	labels := methodLabels(target, typeName, method)
	reg := m.c.metrics
	mm = &methodMeter{
		typeName: typeName,
		lat:      reg.HistogramWith(methodLatencyName, labels),
		calls:    reg.CounterWith(methodCallsName, labels),
		errs:     reg.CounterWith(methodErrorsName, labels),
		inflight: reg.GaugeWith(methodInflightName, labels),
	}
	m.methods[key] = mm
	return mm
}

// begin marks an invocation entering the method.
func (mm *methodMeter) begin() {
	if mm == nil {
		return
	}
	mm.inflight.Add(1)
}

// end marks an invocation leaving the method: duration observed (with the
// trace exemplar when the call was sampled), call counted, error counted.
func (mm *methodMeter) end(d time.Duration, traceID string, errored bool) {
	if mm == nil {
		return
	}
	mm.inflight.Add(-1)
	mm.lat.ObserveExemplar(float64(d.Nanoseconds()), traceID)
	mm.calls.Inc()
	if errored {
		mm.errs.Inc()
	}
}

// MethodStats snapshots the per-method telemetry table, hottest rows first
// (descending call count, then deterministic key order).
func (m *Monitor) MethodStats() []wire.MethodStat {
	m.methodsMu.RLock()
	keys := make([]methodKey, 0, len(m.methods))
	meters := make([]*methodMeter, 0, len(m.methods))
	for k, mm := range m.methods {
		keys = append(keys, k)
		meters = append(meters, mm)
	}
	m.methodsMu.RUnlock()
	out := make([]wire.MethodStat, 0, len(keys))
	for i, k := range keys {
		mm := meters[i]
		row := wire.MethodStat{
			Complet:  k.target,
			TypeName: mm.typeName,
			Method:   k.method,
			Calls:    mm.calls.Value(),
			Errors:   mm.errs.Value(),
			Latency:  HistStatFromSnapshot(mm.lat.Snapshot()),
		}
		if v, _, ok := mm.inflight.Value(); ok {
			row.InFlight = int64(v)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Calls != out[j].Calls {
			return out[i].Calls > out[j].Calls
		}
		if out[i].Complet != out[j].Complet {
			return out[i].Complet.String() < out[j].Complet.String()
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// exportMethodMeters snapshots the per-method telemetry of departing complets
// for shipment inside a movement bundle (the method-level counterpart of
// exportMeters). The in-flight gauge stays behind: the move lock guarantees
// no invocation is running on a departing complet.
func (m *Monitor) exportMethodMeters(targets []ids.CompletID) []wire.MethodMeterState {
	if len(targets) == 0 || m.methodsOff {
		return nil
	}
	moving := make(map[ids.CompletID]bool, len(targets))
	for _, t := range targets {
		moving[t] = true
	}
	m.methodsMu.RLock()
	keys := make([]methodKey, 0)
	meters := make([]*methodMeter, 0)
	for k, mm := range m.methods {
		if moving[k.target] {
			keys = append(keys, k)
			meters = append(meters, mm)
		}
	}
	m.methodsMu.RUnlock()
	out := make([]wire.MethodMeterState, 0, len(keys))
	for i, k := range keys {
		mm := meters[i]
		out = append(out, wire.MethodMeterState{
			Target:   k.target,
			TypeName: mm.typeName,
			Method:   k.method,
			Calls:    mm.calls.Value(),
			Errors:   mm.errs.Value(),
			Latency:  HistStatFromSnapshot(mm.lat.Snapshot()),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Target != out[j].Target {
			return out[i].Target.String() < out[j].Target.String()
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// importMethodMeters merges method meter state shipped with a movement bundle
// into this core's live instruments, under the complets' unchanged
// identities: counts add, latency buckets add, newer exemplars win.
func (m *Monitor) importMethodMeters(states []wire.MethodMeterState) {
	if m.methodsOff {
		return
	}
	for _, st := range states {
		mm := m.methodMeterFor(st.Target, st.TypeName, st.Method)
		if mm == nil {
			continue
		}
		mm.calls.Add(st.Calls)
		mm.errs.Add(st.Errors)
		mm.lat.AddSnapshot(HistStatToSnapshot(st.Latency))
	}
}

// dropMethodMeters discards the per-method instruments of complets that moved
// away — both the meter rows and their registry series, so the departed
// telemetry is scraped (and federated) at exactly one core.
func (m *Monitor) dropMethodMeters(targets []ids.CompletID) {
	if len(targets) == 0 || m.methodsOff {
		return
	}
	moving := make(map[ids.CompletID]bool, len(targets))
	for _, t := range targets {
		moving[t] = true
	}
	m.methodsMu.Lock()
	defer m.methodsMu.Unlock()
	for k, mm := range m.methods {
		if !moving[k.target] {
			continue
		}
		delete(m.methods, k)
		labels := methodLabels(k.target, mm.typeName, k.method)
		m.c.metrics.Remove(metrics.JoinLabels(methodLatencyName, labels))
		m.c.metrics.Remove(metrics.JoinLabels(methodCallsName, labels))
		m.c.metrics.Remove(metrics.JoinLabels(methodErrorsName, labels))
		m.c.metrics.Remove(metrics.JoinLabels(methodInflightName, labels))
	}
}
