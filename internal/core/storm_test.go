package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fargo/internal/ids"
)

// counterAnchor is a complet whose state must survive any sequence of moves.
// Invocations on one complet may run concurrently (the paper's
// thread-per-invocation model, §5), so the anchor synchronizes its own state;
// the unexported mutex is not serialized and arrives zero-valued (unlocked)
// after each move.
type counterAnchor struct {
	mu sync.Mutex
	N  int
}

func (c *counterAnchor) Add(d int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.N += d
	return c.N
}

func (c *counterAnchor) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.N
}

// TestLayoutStormSequential drives a deterministic random workload of moves
// and invocations across a cluster and asserts the model invariants:
// every invocation lands exactly once on the live instance, state follows
// the complet wherever it goes, and location queries agree with reality.
func TestLayoutStormSequential(t *testing.T) {
	const (
		nCores    = 5
		nComplets = 8
		nOps      = 400
	)
	names := make([]string, nCores)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	cl := newCluster(t, names...)
	for _, c := range cl.cores {
		if err := c.Registry().Register("StormCounter", (*counterAnchor)(nil)); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(2026))
	type tracked struct {
		id       ids.CompletID
		expected int
	}
	complets := make([]*tracked, nComplets)
	for i := range complets {
		birth := cl.core(names[rng.Intn(nCores)])
		r, err := birth.NewComplet("StormCounter")
		if err != nil {
			t.Fatal(err)
		}
		complets[i] = &tracked{id: r.Target()}
	}

	for op := 0; op < nOps; op++ {
		c := complets[rng.Intn(nComplets)]
		actor := cl.core(names[rng.Intn(nCores)])
		switch rng.Intn(3) {
		case 0: // move to a random core
			dest := ids.CoreID(names[rng.Intn(nCores)])
			if err := actor.MoveByID(c.id, dest); err != nil {
				t.Fatalf("op %d: move %s to %s: %v", op, c.id, dest, err)
			}
		default: // invoke from a random core through a stale-hinted ref
			hint := ids.CoreID(names[rng.Intn(nCores)])
			r := actor.NewRefTo(c.id, "StormCounter", hint)
			res, err := r.Invoke("Add", 1)
			if err != nil {
				t.Fatalf("op %d: invoke %s from %s: %v", op, c.id, actor.ID(), err)
			}
			c.expected++
			if got := res[0].(int); got != c.expected {
				t.Fatalf("op %d: counter %s = %d, want %d (lost or duplicated update)",
					op, c.id, got, c.expected)
			}
		}
	}

	// Final audit: values, locations, and repository consistency.
	total := 0
	for _, c := range complets {
		observer := cl.core(names[0])
		r := observer.NewRefTo(c.id, "StormCounter", ids.CoreID(names[0]))
		res, err := r.Invoke("Value")
		if err != nil {
			t.Fatalf("audit %s: %v", c.id, err)
		}
		if got := res[0].(int); got != c.expected {
			t.Fatalf("audit %s: value %d, want %d", c.id, got, c.expected)
		}
		total += c.expected

		loc, err := observer.LocateComplet(c.id)
		if err != nil {
			t.Fatalf("audit locate %s: %v", c.id, err)
		}
		if _, hosted := cl.core(loc.String()).lookup(c.id); !hosted {
			t.Fatalf("audit %s: reported at %s but not hosted there", c.id, loc)
		}
	}
	hosted := 0
	for _, c := range cl.cores {
		hosted += c.CompletCount()
	}
	if hosted != nComplets {
		t.Fatalf("repositories hold %d complets, want %d (lost or duplicated complets)", hosted, nComplets)
	}
	if total == 0 {
		t.Fatal("workload made no invocations — test is vacuous")
	}
}

// TestLayoutStormConcurrent runs movers and invokers in parallel against one
// hot complet and checks that no update is lost and the final location is
// coherent.
func TestLayoutStormConcurrent(t *testing.T) {
	names := []string{"p0", "p1", "p2"}
	cl := newCluster(t, names...)
	for _, c := range cl.cores {
		if err := c.Registry().Register("StormCounter", (*counterAnchor)(nil)); err != nil {
			t.Fatal(err)
		}
	}
	origin := cl.core("p0")
	r, err := origin.NewComplet("StormCounter")
	if err != nil {
		t.Fatal(err)
	}
	id := r.Target()

	const (
		invokers  = 4
		perWorker = 30
		moves     = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, invokers+1)
	for w := 0; w < invokers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			actor := cl.core(names[w%len(names)])
			ref := actor.NewRefTo(id, "StormCounter", "p0")
			for i := 0; i < perWorker; i++ {
				if _, err := ref.Invoke("Add", 1); err != nil {
					errs <- fmt.Errorf("invoker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < moves; i++ {
			actor := cl.core(names[rng.Intn(len(names))])
			dest := ids.CoreID(names[rng.Intn(len(names))])
			if err := actor.MoveByID(id, dest); err != nil {
				errs <- fmt.Errorf("mover: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	res, err := origin.NewRefTo(id, "StormCounter", "p0").Invoke("Value")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int); got != invokers*perWorker {
		t.Fatalf("final value %d, want %d (updates lost during movement)", got, invokers*perWorker)
	}
}
