// Package core implements the FarGo Core (§3, Figure 1): the stationary
// runtime that hosts complets and realizes complet references, invocation,
// movement, naming and monitoring. One Core runs per (real or simulated)
// process; complets migrate between Cores while the Cores themselves stay
// put.
package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"fargo/internal/flight"
	"fargo/internal/ids"
	"fargo/internal/journal"
	"fargo/internal/metrics"
	"fargo/internal/ref"
	"fargo/internal/registry"
	"fargo/internal/trace"
	"fargo/internal/transport"
	"fargo/internal/wire"
)

var (
	// ErrClosed is returned when using a core after Shutdown.
	ErrClosed = errors.New("core: shut down")
	// ErrUnknownComplet is returned when a complet cannot be located:
	// neither hosted here nor known to any tracker.
	ErrUnknownComplet = errors.New("core: unknown complet")
	// ErrTrackingLoop is returned when a tracker chain exceeds the hop
	// budget (a cycle or a very stale topology).
	ErrTrackingLoop = errors.New("core: tracking loop or chain too long")
)

// maxHops bounds tracker-chain traversal.
const maxHops = 64

// defaultRequestTimeout bounds inter-core requests issued on behalf of
// application calls.
const defaultRequestTimeout = 30 * time.Second

// complet is the repository entry for one hosted complet instance.
type complet struct {
	id       ids.CompletID
	typeName string
	anchor   any
	// moveMu orders invocation against movement: invocations hold R for
	// their whole execution, movement holds W. An invocation therefore
	// never observes a half-moved complet.
	moveMu sync.RWMutex
	// gone is set (under W) once the complet has moved away; readers that
	// were blocked on moveMu re-route through the tracker.
	gone bool
}

// tracker is the per-core tracking record for one complet (§3.1). At most one
// tracker per complet exists per core, no matter how many references point to
// it — the scalability property of the stub/tracker split.
type tracker struct {
	mu    sync.Mutex
	local bool
	next  ids.CoreID // valid when !local
}

func (t *tracker) point() (local bool, next ids.CoreID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.local, t.next
}

func (t *tracker) setLocal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.local, t.next = true, ""
}

func (t *tracker) setForward(next ids.CoreID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.local, t.next = false, next
}

// shorten repoints a forwarding tracker at loc (chain shortening, §3.1). It
// deliberately never downgrades a local tracker: "local" is authoritative
// repository state (set by install, cleared only by remove), while shorten
// carries possibly stale information from an invocation reply — overwriting
// local state with it can weave a cycle between two cores that are moving a
// complet back and forth.
func (t *tracker) shorten(loc, self ids.CoreID) {
	if loc == self {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.local {
		return
	}
	t.next = loc
}

// Options configures a Core.
type Options struct {
	// RequestTimeout is the default end-to-end budget for pipeline
	// operations whose caller supplies no deadline of its own (the
	// context-free entry points, and ctx entry points called with a
	// deadline-free context). It bounds the whole operation — every
	// tracker-chain hop and movement stage deducts from it. Zero means a
	// 30s default.
	RequestTimeout time.Duration
	// Retry tunes transparent retries of idempotent inter-core requests;
	// zero fields take the DefaultRetryPolicy values.
	Retry RetryPolicy
	// Breaker tunes the per-peer circuit breakers that make calls to a
	// suspected-down peer fail fast with ErrPeerSuspected; zero fields take
	// the DefaultBreakerPolicy values. Set Breaker.Disable to turn circuit
	// breaking off.
	Breaker BreakerPolicy
	// Logf receives diagnostic output; nil means log.Printf. The logger is
	// also threaded into the transport when it supports redirection
	// (transport.LogfSetter).
	Logf func(format string, args ...any)
	// TraceSampleRate is the probability (0..1) that an operation entering
	// the pipeline at this core (InvokeCtx, MoveCtx, ...) starts a
	// distributed trace. Zero disables root sampling; the core still
	// records spans for traces sampled by peers, so chains stay intact.
	// Adjustable at runtime via Tracer().SetSampleRate.
	TraceSampleRate float64
	// TraceBufferSize caps completed spans retained by this core's
	// collector (0 = trace.DefaultBufferSize).
	TraceBufferSize int
	// HTTPAddr, when non-empty, asks the embedding layer (fargo.ListenTCP,
	// cmd/fargo-core) to serve the ops plane — /metrics, /healthz, pprof,
	// /layout, /flight — on this address. The core itself never opens the
	// listener (internal/obs does), so simulated cores pay nothing.
	HTTPAddr string
	// FlightRecorderSize caps the layout flight recorder's ring (0 =
	// flight.DefaultCapacity).
	FlightRecorderSize int
	// Codec selects the wire serialization of the core's transport
	// (wire.Codec); nil means the default streaming gob codec. The core
	// itself never reads it — the embedding layer (fargo.ListenTCP,
	// Universe.NewCore) threads it into the transport constructor via
	// transport.WithCodec.
	Codec wire.Codec
	// JournalPath, when non-empty, enables the durable move journal
	// (internal/journal) at that file path: the movement protocol becomes
	// two-phase (PREPARE/INSTALL/COMMIT, DESIGN.md §13) with every phase
	// fsync'd before it takes effect, and the recovery manager replays the
	// journal on construction so Recover can converge in-flight moves
	// after a crash. Empty disables journaling; the epoch-idempotence of
	// installs remains active either way.
	JournalPath string
	// Planner, when non-nil, asks the embedding layer (fargo.ListenTCP,
	// Universe.NewCore) to start the autonomic layout planner
	// (internal/plan) on this core with the given configuration. The core
	// itself never reads it — plan.Start does — so cores without a planner
	// pay nothing.
	Planner *PlannerConfig
	// Observatory, when non-nil, asks the embedding layer (fargo.ListenTCP)
	// to start the deployment observatory (internal/observatory) on this
	// core: metrics federation, cluster-wide trace stitching, and the merged
	// layout timeline served under /cluster/ on the ops plane. Plain data for
	// the same reason as Planner — core cannot import internal/observatory.
	Observatory *ObservatoryConfig
	// DisablePerMethodStats turns off the complet-granular per-method SLO
	// instruments (latency histogram, call/error counters, in-flight gauge
	// per hosted (complet, method)). They are on by default; the overhead
	// benchmark (BenchmarkPerMethodInstrumentOverhead) uses this switch to
	// measure their cost on the invoke hot path.
	DisablePerMethodStats bool
}

// ObservatoryConfig enables the deployment observatory on a core built
// through the facade (fargo.Options.Observatory). Mirrors observatory.Options;
// see there for field semantics.
type ObservatoryConfig struct {
	// Cores lists the member cores to observe. Empty means dynamic
	// membership: this core plus whatever peers it knows.
	Cores []ids.CoreID
	// Interval is the background refresh period (0 = refresh on demand only,
	// driven by HTTP reads).
	Interval time.Duration
}

// Core is a FarGo runtime instance.
type Core struct {
	id   ids.CoreID
	tr   transport.Transport
	reg  *registry.Registry
	mint *ids.CompletIDs
	opts Options

	mu       sync.Mutex
	complets map[ids.CompletID]*complet
	trackers map[ids.CompletID]*tracker
	byAnchor map[any]ids.CompletID
	names    map[string]*ref.Ref
	peers    map[ids.CoreID]struct{} // cores seen on the wire
	closed   bool
	// homeTracking enables the home-based location service (§7 future
	// work; E9 ablation).
	homeTracking bool
	// capacity is the admission-control complet budget (0 = unlimited;
	// see capacity.go).
	capacity int

	// moveOpMu serializes outgoing movement operations on this core,
	// which keeps multi-complet lock acquisition deadlock-free.
	moveOpMu sync.Mutex

	// breakerMu guards breakers and every breaker's fields. It is a leaf
	// lock: nothing else is acquired while it is held.
	breakerMu sync.Mutex
	breakers  map[ids.CoreID]*breaker

	mon   *Monitor
	homes homeTable

	// Observability (observe.go): the tracer owns sampling and the span
	// collector; the registry owns named instruments; met caches the
	// hot-path instruments so request paths never hit the registry map.
	tracer  *trace.Tracer
	metrics *metrics.Registry
	met     *coreMetrics

	// Ops plane state (health.go): the flight recorder rings recent layout
	// occurrences; suspects mirrors the heartbeat prober's down verdicts;
	// movesInFlight counts owner-side bundles currently being shipped; and
	// shutdownHooks run once when the core stops (obs server teardown).
	flight        *flight.Recorder
	healthMu      sync.Mutex
	suspects      map[ids.CoreID]bool
	movesInFlight int
	shutdownHooks []func()

	// Crash-safe movement state (recovery.go). jn is the durable move
	// journal (nil = journaling disabled). moveEpochs mints source-side
	// move epochs; recMu guards every protocol table below it. recMu is a
	// leaf-ish lock: journal appends happen under it (ordering protocol
	// bookkeeping with durability), but no other Core lock is taken while
	// it is held.
	jn         *journal.Journal
	moveEpochs ids.Sequencer
	recMu      sync.Mutex
	// pendingOut tracks source-side moves between PREPARE and
	// COMMIT/ABORT, by epoch; pendingByComplet indexes them by travelling
	// complet for the ErrMoveInFlight check.
	pendingOut       map[uint64]*pendingMove
	pendingByComplet map[ids.CompletID]uint64
	// installedIn caches the reply of every epoch-stamped bundle this core
	// installed (idempotent re-install); installOrder bounds it FIFO.
	// installing marks epochs mid-installation (duplicate deliveries wait
	// on installCond for the first delivery's verdict); refusedIn records
	// epochs durably refused to a recovery probe.
	installedIn  map[moveKey]wire.MoveReply
	installOrder []moveKey
	installing   map[moveKey]bool
	installCond  *sync.Cond
	refusedIn    map[moveKey]struct{}
	// installRecs / departedTo carry each complet's journal-final
	// disposition: the INSTALL record that last delivered it here (payload
	// included, for re-installation), or the destination its last COMMIT
	// shipped it to. Both are built at construction-time replay AND kept
	// current by the runtime protocol (journalInstall, settleMove), so a
	// Recover run at any time sees the journal's actual final word and
	// never resurrects a copy that has since committed away.
	installRecs map[ids.CompletID]installRec
	departedTo  map[ids.CompletID]ids.CoreID
	recovered   uint64 // moves completed by recovery
	rolledBack  uint64 // moves rolled back by recovery
	// moveHook is the chaos-test crash hook (SetMoveStepHook); crashed is
	// set when the hook simulates a crash, silencing further journaling.
	moveHook func(MoveStep, ids.CompletID) bool
	crashed  bool

	wg sync.WaitGroup
}

// pendingMove is one source-side move between PREPARE and COMMIT/ABORT.
type pendingMove struct {
	epoch    uint64
	dest     ids.CoreID
	root     ids.CompletID
	complets []ids.CompletID
}

// moveKey identifies one movement attempt globally.
type moveKey struct {
	source ids.CoreID
	epoch  uint64
}

// installRec pairs a journaled INSTALL record with its position in the
// journal, so Restore can order the arrival against a checkpoint's
// JournalSeq: whichever was written later holds the complet's fresher state.
type installRec struct {
	rec *journal.Record
	at  uint64 // 0-based index of the record in the journal
}

// New constructs a core on the given transport. The registry holds the anchor
// types this core can instantiate and receive.
func New(tr transport.Transport, reg *registry.Registry, opts Options) (*Core, error) {
	if tr == nil || reg == nil {
		return nil, fmt.Errorf("core: transport and registry are required")
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = defaultRequestTimeout
	}
	opts.Retry = opts.Retry.normalize()
	opts.Breaker = opts.Breaker.normalize()
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	wire.RegisterWireTypes()
	c := &Core{
		id:       tr.Self(),
		tr:       tr,
		reg:      reg,
		mint:     ids.NewCompletIDs(tr.Self()),
		opts:     opts,
		complets: make(map[ids.CompletID]*complet),
		trackers: make(map[ids.CompletID]*tracker),
		byAnchor: make(map[any]ids.CompletID),
		names:    make(map[string]*ref.Ref),
		peers:    make(map[ids.CoreID]struct{}),
		breakers: make(map[ids.CoreID]*breaker),
		flight:   flight.New(opts.FlightRecorderSize),
		suspects: make(map[ids.CoreID]bool),

		pendingOut:       make(map[uint64]*pendingMove),
		pendingByComplet: make(map[ids.CompletID]uint64),
		installedIn:      make(map[moveKey]wire.MoveReply),
		installing:       make(map[moveKey]bool),
		refusedIn:        make(map[moveKey]struct{}),
		installRecs:      make(map[ids.CompletID]installRec),
		departedTo:       make(map[ids.CompletID]ids.CoreID),
	}
	c.installCond = sync.NewCond(&c.recMu)
	c.mon = newMonitor(c)
	c.tracer = trace.New(c.id.String(), trace.Options{
		SampleRate: opts.TraceSampleRate,
		BufferSize: opts.TraceBufferSize,
	})
	c.metrics = metrics.NewRegistry()
	c.met = newCoreMetrics(c.metrics)
	if ls, ok := tr.(transport.LogfSetter); ok {
		ls.SetLogf(opts.Logf)
	}
	if ms, ok := tr.(transport.MetricsSetter); ok {
		ms.SetMetrics(c.metrics)
	}
	if opts.JournalPath != "" {
		jn, records, err := journal.Open(opts.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("core: move journal: %w", err)
		}
		c.jn = jn
		c.replayJournal(records)
	}
	tr.SetHandler(c.handle)
	return c, nil
}

// ID returns the core's identity.
func (c *Core) ID() ids.CoreID { return c.id }

// Registry returns the core's anchor type registry.
func (c *Core) Registry() *registry.Registry { return c.reg }

// Monitor returns the core's monitoring facility (profiling and events).
func (c *Core) Monitor() *Monitor { return c.mon }

// Tracer returns the core's distributed tracer (sampling control and the
// completed-span collector).
func (c *Core) Tracer() *trace.Tracer { return c.tracer }

// Metrics returns the core's metrics registry.
func (c *Core) Metrics() *metrics.Registry { return c.metrics }

// Shutdown announces the shutdown to peers (firing the coreShutdown event so
// relocation policies can evacuate complets), waits grace time for resulting
// movement, then stops the core and its transport.
func (c *Core) Shutdown(grace time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	peers := make([]ids.CoreID, 0, len(c.peers))
	for p := range c.peers {
		peers = append(peers, p)
	}
	c.mu.Unlock()

	// Fire the local built-in event and notify peers, so listeners (e.g.
	// the reliability rule of the example script) can evacuate complets
	// during the grace period. Notices are best-effort: peers that are
	// already gone themselves simply miss the news.
	c.mon.fireBuiltin(EventCoreShutdown, ids.CompletID{}, "")
	for _, p := range peers {
		_ = c.tr.Notify(p, wire.KindShutdownNotice, nil)
	}
	if grace > 0 {
		time.Sleep(grace)
	}

	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()

	c.mon.close()
	err := c.tr.Close()
	c.wg.Wait()
	c.runShutdownHooks()
	c.closeJournal()
	return err
}

// ShutdownAbrupt stops the core immediately — no shutdown event, no notices,
// no grace. It simulates a crash for failure-detection tests and experiments
// (peers find out through heartbeats, not announcements).
func (c *Core) ShutdownAbrupt() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.mon.close()
	err := c.tr.Close()
	c.wg.Wait()
	c.runShutdownHooks()
	c.closeJournal()
	return err
}

// isClosed reports whether the core has shut down.
func (c *Core) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// notePeer records a core seen on the wire (for shutdown notices and the
// monitor's peer list).
func (c *Core) notePeer(p ids.CoreID) {
	if p == c.id || p.Nil() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peers[p] = struct{}{}
}

// SeedPeers records cores known from configuration (an address book) before
// any wire contact, so surfaces that enumerate the deployment — the monitor's
// peer list, the planner's dynamic membership — span it from startup.
func (c *Core) SeedPeers(peers ...ids.CoreID) {
	for _, p := range peers {
		c.notePeer(p)
	}
}

// Peers lists cores this core has communicated with.
func (c *Core) Peers() []ids.CoreID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ids.CoreID, 0, len(c.peers))
	for p := range c.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CoreAware is implemented by anchors that need access to their hosting
// core — e.g. to move themselves (§3.3) or to use the monitoring API. The
// runtime calls SetCore when the complet is installed, and again on every
// core it migrates to. SetCore must only store the pointer.
type CoreAware interface {
	SetCore(c *Core)
}

// --- repository ------------------------------------------------------------

// install registers a complet hosted by this core and marks its tracker
// local.
func (c *Core) install(id ids.CompletID, typeName string, anchor any) *complet {
	if ca, ok := anchor.(CoreAware); ok {
		ca.SetCore(c)
	}
	entry := &complet{id: id, typeName: typeName, anchor: anchor}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.complets[id] = entry
	c.byAnchor[anchor] = id
	t, ok := c.trackers[id]
	if !ok {
		t = &tracker{}
		c.trackers[id] = t
	}
	t.setLocal()
	return entry
}

// lookup returns the repository entry for a locally hosted complet.
func (c *Core) lookup(id ids.CompletID) (*complet, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entry, ok := c.complets[id]
	return entry, ok
}

// remove unregisters a complet after it moved away, pointing its tracker at
// the destination.
func (c *Core) remove(id ids.CompletID, movedTo ids.CoreID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if entry, ok := c.complets[id]; ok {
		delete(c.byAnchor, entry.anchor)
		delete(c.complets, id)
	}
	t, ok := c.trackers[id]
	if !ok {
		t = &tracker{}
		c.trackers[id] = t
	}
	t.setForward(movedTo)
}

// trackerFor returns the core's tracker for the complet, creating one that
// points at hint when absent. There is at most one tracker per complet per
// core (§3.1).
func (c *Core) trackerFor(id ids.CompletID, hint ids.CoreID) *tracker {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.trackers[id]
	if !ok {
		t = &tracker{}
		if hint == c.id || hint.Nil() {
			// No better information: fall back to the birth core,
			// which keeps a tracker for every complet born there.
			t.setForward(id.Birth)
		} else {
			t.setForward(hint)
		}
		c.trackers[id] = t
	}
	return t
}

// TrackerCount returns the number of trackers in this core (test and
// experiment support: verifies tracker sharing per target).
func (c *Core) TrackerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.trackers)
}

// TrackerTarget reports where this core's tracker for the complet points:
// this core itself (local) or the next core in the chain.
func (c *Core) TrackerTarget(id ids.CompletID) (ids.CoreID, bool) {
	c.mu.Lock()
	t, ok := c.trackers[id]
	c.mu.Unlock()
	if !ok {
		return "", false
	}
	local, next := t.point()
	if local {
		return c.id, true
	}
	return next, true
}

// TrackerInfo describes one entry of the core's tracker table for layout
// introspection (the ops plane's /layout endpoint): where this core would
// route a request for the complet next.
type TrackerInfo struct {
	Complet ids.CompletID
	// Local is true when the complet is hosted here; Next is the chain's
	// next hop otherwise.
	Local bool
	Next  ids.CoreID
}

// Trackers lists the core's tracker table, sorted by complet ID.
func (c *Core) Trackers() []TrackerInfo {
	c.mu.Lock()
	out := make([]TrackerInfo, 0, len(c.trackers))
	for id, t := range c.trackers {
		local, next := t.point()
		ti := TrackerInfo{Complet: id, Local: local}
		if !local {
			ti.Next = next
		}
		out = append(out, ti)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Complet.String() < out[j].Complet.String() })
	return out
}

// CompletCount returns the number of complets hosted by this core (the
// completLoad profiling measure, §4.1).
func (c *Core) CompletCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.complets)
}

// Complets lists the complets hosted by this core.
func (c *Core) Complets() []wire.CompletInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.CompletInfo, 0, len(c.complets))
	for id, entry := range c.complets {
		info := wire.CompletInfo{ID: id, TypeName: entry.typeName}
		for name, r := range c.names {
			if r.Target() == id {
				info.Names = append(info.Names, name)
			}
		}
		sort.Strings(info.Names)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.String() < out[j].ID.String() })
	return out
}

// --- instantiation ---------------------------------------------------------

// NewComplet instantiates a complet of a registered type on this core and
// returns a reference to it. Mirrors Figure 3's `msg = new Message_(...)`.
func (c *Core) NewComplet(typeName string, args ...any) (*ref.Ref, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	if err := c.admit(1); err != nil {
		return nil, fmt.Errorf("core: new %s: %w", typeName, err)
	}
	anchor, err := c.reg.Instantiate(typeName, args)
	if err != nil {
		return nil, err
	}
	id := c.mint.Next()
	c.install(id, typeName, anchor)
	return ref.New(id, typeName, c.id, c.binder()), nil
}

// NewCompletAt instantiates a complet on the named core (remote complet
// instantiation, §3). Arguments are passed by value, like invocation
// parameters. The call is bounded by the core's default request budget; use
// NewCompletAtCtx to supply a deadline or cancellation of your own.
func (c *Core) NewCompletAt(dest ids.CoreID, typeName string, args ...any) (*ref.Ref, error) {
	return c.NewCompletAtCtx(context.Background(), dest, typeName, args...)
}

// NewCompletAtCtx is NewCompletAt bounded by the caller's context. Trailing
// ref.InvokeOption values may ride args; they tune the call and are not
// passed to the constructor. Instantiation is not idempotent, so it is never
// retried: on failure the returned *InvokeError cause tells the caller
// whether the constructor may have run (remote error: yes, it did and
// failed; unreachable: unknown).
func (c *Core) NewCompletAtCtx(ctx context.Context, dest ids.CoreID, typeName string, args ...any) (*ref.Ref, error) {
	args, opts := ref.SplitOptions(args)
	if dest == c.id {
		return c.NewComplet(typeName, args...)
	}
	if c.isClosed() {
		return nil, ErrClosed
	}
	op := fmt.Sprintf("new %s at %s", typeName, dest)
	ctx, cancel := c.withBudget(ctx, opts.Timeout)
	defer cancel()
	argBytes, _, err := wire.EncodeArgs(args)
	if err != nil {
		return nil, err
	}
	payload, err := wire.EncodePayload(wire.NewRequest{TypeName: typeName, Args: argBytes})
	if err != nil {
		return nil, err
	}
	env, err := c.requestOpts(ctx, dest, wire.KindNew, payload, opts)
	if err != nil {
		return nil, invokeErr(op, ids.CompletID{}, dest, fmt.Errorf("core: new %s at %s: %w", typeName, dest, err))
	}
	var reply wire.NewReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return nil, err
	}
	if reply.Err != "" {
		return nil, &peerError{msg: fmt.Sprintf("core: new %s at %s: %s", typeName, dest, reply.Err)}
	}
	r, err := ref.FromDescriptor(reply.Desc)
	if err != nil {
		return nil, err
	}
	r.Bind(c.binder())
	return r, nil
}

// RefOf returns a reference to a locally hosted complet given its anchor.
// Complets use it to refer to themselves — e.g. to pass themselves to Move
// (§3.3: "a complet can move itself simply by passing its anchor").
func (c *Core) RefOf(anchor any) (*ref.Ref, error) {
	c.mu.Lock()
	id, ok := c.byAnchor[anchor]
	var typeName string
	if ok {
		if entry, have := c.complets[id]; have {
			typeName = entry.typeName
		}
	}
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: %w: anchor %T not hosted here", ErrUnknownComplet, anchor)
	}
	return ref.New(id, typeName, c.id, c.binder()), nil
}

// NewRefTo constructs a bound reference to a complet from its identity and a
// location hint (used by shells, scripts and experiments that hold raw IDs;
// stale hints are corrected by the tracker machinery on first use).
func (c *Core) NewRefTo(id ids.CompletID, anchorType string, hint ids.CoreID) *ref.Ref {
	r := ref.New(id, anchorType, hint, c.binder())
	c.trackerFor(id, hint)
	return r
}

// LocateComplet resolves the core currently hosting a complet, following and
// shortening tracker chains (the ID-based counterpart of MetaRef.Location).
func (c *Core) LocateComplet(id ids.CompletID) (ids.CoreID, error) {
	return c.LocateCompletCtx(context.Background(), id)
}

// LocateCompletCtx is LocateComplet bounded by the caller's context.
// Location queries are idempotent and retried per the core's retry policy
// (overridable via opts) on transient transport failures.
func (c *Core) LocateCompletCtx(ctx context.Context, id ids.CompletID, opts ...ref.InvokeOption) (ids.CoreID, error) {
	if c.isClosed() {
		return "", ErrClosed
	}
	o := ref.BuildCallOptions(opts)
	ctx, cancel := c.withBudget(ctx, o.Timeout)
	defer cancel()
	loc, err := c.locate(ctx, id, "", o)
	if err != nil {
		return "", invokeErr(fmt.Sprintf("locate %s", id), id, "", err)
	}
	return loc, nil
}
