package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"fargo/internal/ids"
	"fargo/internal/metrics"
	"fargo/internal/stats"
	"fargo/internal/trace"
	"fargo/internal/wire"
)

// coreMetrics caches the registry instruments touched on request paths, so
// the pipeline bumps lock-free counters instead of taking the registry lock
// per operation. Names follow the _total/_ns conventions the text dump
// renders by.
type coreMetrics struct {
	invokeLocal   *stats.Counter
	invokeFwd     *stats.Counter
	invokeErrs    *stats.Counter
	invokeLatency *stats.Histogram

	moves       *stats.Counter
	moveErrs    *stats.Counter
	moveLatency *stats.Histogram

	repairs     *stats.Counter
	repairFails *stats.Counter

	retries         *stats.Counter
	breakerOpened   *stats.Counter
	breakerClosed   *stats.Counter
	breakerRejected *stats.Counter

	hbProbes   *stats.Counter
	hbFailures *stats.Counter
	peersDown  *stats.Gauge
}

func newCoreMetrics(reg *metrics.Registry) *coreMetrics {
	return &coreMetrics{
		invokeLocal:   reg.Counter("invoke_local_total"),
		invokeFwd:     reg.Counter("invoke_forwarded_total"),
		invokeErrs:    reg.Counter("invoke_errors_total"),
		invokeLatency: reg.Histogram("invoke_latency_ns"),

		moves:       reg.Counter("moves_total"),
		moveErrs:    reg.Counter("move_errors_total"),
		moveLatency: reg.Histogram("move_latency_ns"),

		repairs:     reg.Counter("chain_repairs_total"),
		repairFails: reg.Counter("chain_repair_failures_total"),

		retries:         reg.Counter("request_retries_total"),
		breakerOpened:   reg.Counter("breaker_opened_total"),
		breakerClosed:   reg.Counter("breaker_closed_total"),
		breakerRejected: reg.Counter("breaker_rejected_total"),

		hbProbes:   reg.Counter("heartbeat_probes_total"),
		hbFailures: reg.Counter("heartbeat_failures_total"),
		peersDown:  reg.Gauge("peers_down"),
	}
}

// --- stats query ------------------------------------------------------------

// HistStatFromSnapshot mirrors a stats snapshot into the wire form, exemplars
// included (wire stays free of stats types, so the mirror lives here).
func HistStatFromSnapshot(h stats.HistogramSnapshot) wire.HistogramStat {
	out := wire.HistogramStat{
		Count: h.Count, Sum: h.Sum, P50: h.P50, P95: h.P95, P99: h.P99,
		Bounds: h.Bounds, Buckets: h.Buckets,
	}
	if h.HasExemplars() {
		out.ExemplarValues = make([]float64, len(h.Exemplars))
		out.ExemplarTraces = make([]string, len(h.Exemplars))
		out.ExemplarNanos = make([]int64, len(h.Exemplars))
		for i, e := range h.Exemplars {
			out.ExemplarValues[i] = e.Value
			out.ExemplarTraces[i] = e.TraceID
			out.ExemplarNanos[i] = e.UnixNanos
		}
	}
	return out
}

// HistStatToSnapshot converts a wire histogram back to the stats form,
// restoring any shipped exemplars.
func HistStatToSnapshot(h wire.HistogramStat) stats.HistogramSnapshot {
	out := stats.HistogramSnapshot{
		Count: h.Count, Sum: h.Sum, P50: h.P50, P95: h.P95, P99: h.P99,
		Bounds: h.Bounds, Buckets: h.Buckets,
	}
	if len(h.ExemplarTraces) == len(h.Buckets) && len(h.Buckets) > 0 {
		out.Exemplars = make([]stats.Exemplar, len(h.ExemplarTraces))
		for i, id := range h.ExemplarTraces {
			if id == "" {
				continue
			}
			out.Exemplars[i] = stats.Exemplar{TraceID: id}
			if i < len(h.ExemplarValues) {
				out.Exemplars[i].Value = h.ExemplarValues[i]
			}
			if i < len(h.ExemplarNanos) {
				out.Exemplars[i].UnixNanos = h.ExemplarNanos[i]
			}
		}
	}
	return out
}

// statsReply snapshots this core's registry into the wire form.
func (c *Core) statsReply() wire.StatsQueryReply {
	snap := c.metrics.Snapshot()
	reply := wire.StatsQueryReply{
		Core:       c.id,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: make(map[string]wire.HistogramStat, len(snap.Histograms)),
	}
	for name, h := range snap.Histograms {
		reply.Histograms[name] = HistStatFromSnapshot(h)
	}
	return reply
}

// handleStatsQuery serves a metrics snapshot to a peer (shell, monitor).
func (c *Core) handleStatsQuery(env wire.Envelope) (wire.Kind, []byte, error) {
	out, err := wire.EncodePayload(c.statsReply())
	if err != nil {
		return 0, nil, err
	}
	return wire.KindStatsQueryReply, out, nil
}

// StatsAt fetches a core's metrics snapshot (this core's own when dest is
// self). It is a thin context.Background wrapper over StatsAtCtx, running
// under the core's default request budget; prefer the ctx form.
func (c *Core) StatsAt(dest ids.CoreID) (wire.StatsQueryReply, error) {
	return c.StatsAtCtx(context.Background(), dest)
}

// StatsAtCtx fetches a core's metrics snapshot under the caller's context.
func (c *Core) StatsAtCtx(ctx context.Context, dest ids.CoreID) (wire.StatsQueryReply, error) {
	if dest == c.id || dest.Nil() {
		return c.statsReply(), nil
	}
	if c.isClosed() {
		return wire.StatsQueryReply{}, ErrClosed
	}
	payload, err := wire.EncodePayload(wire.StatsQuery{})
	if err != nil {
		return wire.StatsQueryReply{}, err
	}
	ctx, cancel := c.withBudget(ctx, 0)
	defer cancel()
	env, err := c.request(ctx, dest, wire.KindStatsQuery, payload)
	if err != nil {
		return wire.StatsQueryReply{}, fmt.Errorf("core: stats of %s: %w", dest, err)
	}
	var reply wire.StatsQueryReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return wire.StatsQueryReply{}, err
	}
	if reply.Err != "" {
		return wire.StatsQueryReply{}, &peerError{msg: fmt.Sprintf("core: stats of %s: %s", dest, reply.Err)}
	}
	return reply, nil
}

// FormatStats renders a stats reply as the plain-text dump the shell and
// monitor print.
func FormatStats(w io.Writer, reply wire.StatsQueryReply) {
	snap := metrics.Snapshot{
		Counters:   reply.Counters,
		Gauges:     reply.Gauges,
		Histograms: make(map[string]stats.HistogramSnapshot, len(reply.Histograms)),
	}
	for name, h := range reply.Histograms {
		snap.Histograms[name] = HistStatToSnapshot(h)
	}
	snap.WriteText(w)
}

// --- trace query ------------------------------------------------------------

// maxTraceSummaries bounds a trace listing reply.
const maxTraceSummaries = 32

// handleTraceQuery serves either recent trace summaries (Trace == 0) or the
// retained spans of one trace from this core's collector.
func (c *Core) handleTraceQuery(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.TraceQuery
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	reply := c.traceReply(req)
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindTraceQueryReply, out, nil
}

func (c *Core) traceReply(req wire.TraceQuery) wire.TraceQueryReply {
	col := c.tracer.Collector()
	if req.Trace == 0 {
		max := req.Max
		if max <= 0 {
			max = maxTraceSummaries
		}
		sums := trace.Summarize(col.Snapshot(), max)
		reply := wire.TraceQueryReply{Summaries: make([]wire.TraceSummary, 0, len(sums))}
		for _, s := range sums {
			reply.Summaries = append(reply.Summaries, wire.TraceSummary{
				Trace:          uint64(s.Trace),
				Root:           s.Root,
				Spans:          s.Spans,
				StartUnixNanos: s.Start.UnixNano(),
				DurationNanos:  int64(s.Duration),
			})
		}
		return reply
	}
	spans := col.TraceSpans(trace.TraceID(req.Trace))
	reply := wire.TraceQueryReply{Spans: make([]wire.TraceSpan, 0, len(spans))}
	for _, sp := range spans {
		reply.Spans = append(reply.Spans, spanToWire(sp))
	}
	return reply
}

func spanToWire(sp trace.Span) wire.TraceSpan {
	out := wire.TraceSpan{
		Trace:          uint64(sp.Trace),
		Span:           uint64(sp.ID),
		Parent:         uint64(sp.Parent),
		Name:           sp.Name,
		Core:           ids.CoreID(sp.Core),
		StartUnixNanos: sp.Start.UnixNano(),
		DurationNanos:  int64(sp.Duration),
		Err:            sp.Err,
	}
	for _, a := range sp.Attrs {
		out.AttrKeys = append(out.AttrKeys, a.Key)
		out.AttrVals = append(out.AttrVals, a.Value)
	}
	return out
}

// SpansFromWire converts shipped spans back to trace.Span for tree building
// and export (merging replies from several cores is just appending slices).
func SpansFromWire(in []wire.TraceSpan) []trace.Span {
	out := make([]trace.Span, 0, len(in))
	for _, w := range in {
		sp := trace.Span{
			Trace:    trace.TraceID(w.Trace),
			ID:       trace.SpanID(w.Span),
			Parent:   trace.SpanID(w.Parent),
			Name:     w.Name,
			Core:     w.Core.String(),
			Start:    time.Unix(0, w.StartUnixNanos),
			Duration: time.Duration(w.DurationNanos),
			Err:      w.Err,
		}
		for i := range w.AttrKeys {
			v := ""
			if i < len(w.AttrVals) {
				v = w.AttrVals[i]
			}
			sp.Attrs = append(sp.Attrs, trace.Attr{Key: w.AttrKeys[i], Value: v})
		}
		out = append(out, sp)
	}
	return out
}

// TracesAt lists recent traces retained at a core (max 0 = server default).
// Thin context.Background wrapper over TracesAtCtx; prefer the ctx form.
func (c *Core) TracesAt(dest ids.CoreID, max int) ([]wire.TraceSummary, error) {
	return c.TracesAtCtx(context.Background(), dest, max)
}

// TracesAtCtx lists recent traces retained at a core under the caller's
// context.
func (c *Core) TracesAtCtx(ctx context.Context, dest ids.CoreID, max int) ([]wire.TraceSummary, error) {
	reply, err := c.traceQuery(ctx, dest, wire.TraceQuery{Max: max})
	if err != nil {
		return nil, err
	}
	return reply.Summaries, nil
}

// TraceAt fetches one trace's spans retained at a core. A full cross-core
// view merges TraceAt results from every involved core (each collector only
// holds the spans recorded there). Thin context.Background wrapper over
// TraceAtCtx; prefer the ctx form.
func (c *Core) TraceAt(dest ids.CoreID, id trace.TraceID) ([]wire.TraceSpan, error) {
	return c.TraceAtCtx(context.Background(), dest, id)
}

// TraceAtCtx fetches one trace's spans retained at a core under the
// caller's context.
func (c *Core) TraceAtCtx(ctx context.Context, dest ids.CoreID, id trace.TraceID) ([]wire.TraceSpan, error) {
	reply, err := c.traceQuery(ctx, dest, wire.TraceQuery{Trace: uint64(id)})
	if err != nil {
		return nil, err
	}
	return reply.Spans, nil
}

func (c *Core) traceQuery(ctx context.Context, dest ids.CoreID, req wire.TraceQuery) (wire.TraceQueryReply, error) {
	if dest == c.id || dest.Nil() {
		return c.traceReply(req), nil
	}
	if c.isClosed() {
		return wire.TraceQueryReply{}, ErrClosed
	}
	payload, err := wire.EncodePayload(req)
	if err != nil {
		return wire.TraceQueryReply{}, err
	}
	ctx, cancel := c.withBudget(ctx, 0)
	defer cancel()
	env, err := c.request(ctx, dest, wire.KindTraceQuery, payload)
	if err != nil {
		return wire.TraceQueryReply{}, fmt.Errorf("core: traces of %s: %w", dest, err)
	}
	var reply wire.TraceQueryReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return wire.TraceQueryReply{}, err
	}
	if reply.Err != "" {
		return wire.TraceQueryReply{}, &peerError{msg: fmt.Sprintf("core: traces of %s: %s", dest, reply.Err)}
	}
	return reply, nil
}

// --- batched observability query --------------------------------------------

// obsReply composes the selected per-core observability slices into one
// reply. It reuses the single-query builders, so the batched form can never
// drift from the individual endpoints.
func (c *Core) obsReply(req wire.ObsQuery) wire.ObsQueryReply {
	reply := wire.ObsQueryReply{Core: c.id}
	if req.Stats {
		s := c.statsReply()
		reply.Stats = &s
	}
	if req.Health {
		h := c.healthReply()
		reply.Health = &h
	}
	if req.Info {
		reply.Info = &wire.CoreInfoReply{Core: c.id, Complets: c.Complets(), Peers: c.Peers()}
	}
	if req.Flight {
		f := c.flightReply(req.FlightMax, req.FlightAfterSeq)
		reply.Flight = &f
	}
	if req.Traces {
		t := c.traceReply(wire.TraceQuery{Max: req.TraceMax})
		reply.Traces = &t
	}
	if req.Trace != 0 {
		reply.Spans = c.traceReply(wire.TraceQuery{Trace: req.Trace}).Spans
	}
	if req.Methods {
		reply.Methods = c.mon.MethodStats()
	}
	return reply
}

// MethodStatsAt fetches a core's per-method telemetry table (this core's own
// when dest is self), sorted by descending call count.
func (c *Core) MethodStatsAt(ctx context.Context, dest ids.CoreID) ([]wire.MethodStat, error) {
	reply, err := c.ObsAtCtx(ctx, dest, wire.ObsQuery{Methods: true})
	if err != nil {
		return nil, err
	}
	return reply.Methods, nil
}

// FormatMethodStats renders a per-method telemetry table for the shell's
// `top` command: hottest rows first.
func FormatMethodStats(w io.Writer, rows []wire.MethodStat, max int) {
	if len(rows) == 0 {
		fmt.Fprintln(w, "(no per-method telemetry yet)")
		return
	}
	if max > 0 && max < len(rows) {
		rows = rows[:max]
	}
	fmt.Fprintf(w, "%-14s %-24s %8s %6s %5s %10s %10s %10s\n",
		"COMPLET", "METHOD", "CALLS", "ERRS", "INFL", "P50", "P95", "P99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-24s %8d %6d %5d %10v %10v %10v\n",
			r.Complet, r.TypeName+"."+r.Method, r.Calls, r.Errors, r.InFlight,
			time.Duration(r.Latency.P50).Round(time.Microsecond),
			time.Duration(r.Latency.P95).Round(time.Microsecond),
			time.Duration(r.Latency.P99).Round(time.Microsecond))
	}
}

// handleObsQuery serves the batched observability query (the observatory's
// one-round-trip-per-member refresh).
func (c *Core) handleObsQuery(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.ObsQuery
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	out, err := wire.EncodePayload(c.obsReply(req))
	if err != nil {
		return 0, nil, err
	}
	return wire.KindObsQueryReply, out, nil
}

// ObsAtCtx fetches the selected observability slices of a core in a single
// round-trip (this core's own state when dest is self).
func (c *Core) ObsAtCtx(ctx context.Context, dest ids.CoreID, req wire.ObsQuery) (wire.ObsQueryReply, error) {
	if dest == c.id || dest.Nil() {
		return c.obsReply(req), nil
	}
	if c.isClosed() {
		return wire.ObsQueryReply{}, ErrClosed
	}
	payload, err := wire.EncodePayload(req)
	if err != nil {
		return wire.ObsQueryReply{}, err
	}
	ctx, cancel := c.withBudget(ctx, 0)
	defer cancel()
	env, err := c.request(ctx, dest, wire.KindObsQuery, payload)
	if err != nil {
		return wire.ObsQueryReply{}, fmt.Errorf("core: obs of %s: %w", dest, err)
	}
	var reply wire.ObsQueryReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return wire.ObsQueryReply{}, err
	}
	if reply.Err != "" {
		return wire.ObsQueryReply{}, &peerError{msg: fmt.Sprintf("core: obs of %s: %s", dest, reply.Err)}
	}
	return reply, nil
}

// ExportChromeTrace renders this core's retained spans as Chrome trace_event
// JSON (cmd/fargo-core --trace-out writes this at shutdown).
func (c *Core) ExportChromeTrace() ([]byte, error) {
	return trace.ExportChromeJSON(c.tracer.Collector().Snapshot())
}

// FormatTraceSummaries renders a trace listing for the shell.
func FormatTraceSummaries(w io.Writer, sums []wire.TraceSummary) {
	sorted := append([]wire.TraceSummary(nil), sums...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].StartUnixNanos > sorted[j].StartUnixNanos
	})
	for _, s := range sorted {
		root := s.Root
		if root == "" {
			root = "(rooted elsewhere)"
		}
		fmt.Fprintf(w, "%s  %-40s %2d spans  %v  %s\n",
			trace.TraceID(s.Trace), root, s.Spans,
			time.Duration(s.DurationNanos).Round(time.Microsecond),
			time.Unix(0, s.StartUnixNanos).Format("15:04:05.000"))
	}
}
