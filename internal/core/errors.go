package core

import (
	"context"
	"errors"
	"fmt"

	"fargo/internal/flight"
	"fargo/internal/ids"
	"fargo/internal/transport"
)

// ErrTooManyHops is returned when an invocation, locate, or move command
// exhausts the tracker-chain hop budget. It wraps ErrTrackingLoop, so
// errors.Is(err, ErrTrackingLoop) continues to hold for callers that predate
// the typed error.
var ErrTooManyHops = fmt.Errorf("core: hop budget exceeded: %w", ErrTrackingLoop)

// ErrMoveInFlight is returned when a move of a complet is requested while a
// previous move of the same complet has not committed or aborted yet — either
// still shipping, or stranded by an unreachable destination until the
// recovery manager resolves its outcome. Matched via errors.Is through the
// returned *InvokeError.
var ErrMoveInFlight = errors.New("core: move already in flight")

// Cause classifies why a context-first pipeline operation failed.
type Cause int

const (
	// CauseUnknown is the zero Cause; it never appears on a returned
	// *InvokeError.
	CauseUnknown Cause = iota
	// CauseTimeout: the end-to-end deadline expired (locally or at a hop).
	CauseTimeout
	// CauseCanceled: the caller's context was canceled.
	CauseCanceled
	// CauseRemote: a peer's handler executed and reported an error.
	CauseRemote
	// CauseUnreachable: the peer could not be reached (host down, network
	// partition, transport closed, dial failure) and retries — if the
	// request kind was eligible for them — were exhausted.
	CauseUnreachable
	// CauseTooManyHops: the tracker-chain hop budget was exceeded.
	CauseTooManyHops
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseTimeout:
		return "timeout"
	case CauseCanceled:
		return "canceled"
	case CauseRemote:
		return "remote error"
	case CauseUnreachable:
		return "unreachable"
	case CauseTooManyHops:
		return "too many hops"
	default:
		return "unknown"
	}
}

// InvokeError is the typed failure of a context-first pipeline operation
// (invoke, move, locate, remote instantiation, naming). It distinguishes a
// deadline that expired from a caller that canceled from a peer that answered
// with an application error from a peer that never answered at all — the
// distinctions a retrying or failing-over caller needs.
type InvokeError struct {
	// Op names the failed operation ("invoke Message.Print", "move", …).
	Op string
	// Target is the complet the operation addressed (zero when the
	// operation addressed a core, e.g. remote instantiation).
	Target ids.CompletID
	// Peer is the core the failing request was sent to (empty for
	// failures local to the calling core).
	Peer ids.CoreID
	// Cause classifies the failure.
	Cause Cause
	// Attempts counts transport attempts made (≥1; >1 only after retries).
	Attempts int
	// Err is the underlying error.
	Err error
}

// Error implements error.
func (e *InvokeError) Error() string {
	if e.Peer != "" {
		return fmt.Sprintf("fargo: %s via %s: %s (%s, %d attempt(s))", e.Op, e.Peer, e.Err, e.Cause, e.Attempts)
	}
	return fmt.Sprintf("fargo: %s: %s (%s)", e.Op, e.Err, e.Cause)
}

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *InvokeError) Unwrap() error { return e.Err }

// Timeout reports whether the failure was a deadline expiry (net.Error
// convention).
func (e *InvokeError) Timeout() bool { return e.Cause == CauseTimeout }

// methodError marks an error returned by the application method itself: the
// invocation did execute, the verdict came from the complet, not from the
// pipeline. It unwraps to the method's error so application sentinels stay
// matchable with errors.Is through the *InvokeError.
type methodError struct{ err error }

func (e *methodError) Error() string { return e.err.Error() }
func (e *methodError) Unwrap() error { return e.err }

// peerError is an error a peer reported in a reply payload after it served
// (part of) the request. The peer did answer, so by default this classifies
// as CauseRemote; when the peer also shipped its own classification (the
// invoke path does, so a chain hop's timeout or unreachable tail is not
// mistaken for an application error), that cause wins.
type peerError struct {
	msg   string
	cause Cause
}

func (e *peerError) Error() string { return e.msg }

// classifyCause maps an underlying error to its Cause.
func classifyCause(err error) Cause {
	if err == nil {
		return CauseUnknown
	}
	// A method's own error return is checked first: whatever it wraps
	// (even a context error) is the application's verdict, not the
	// pipeline's.
	var me *methodError
	if errors.As(err, &me) {
		return CauseRemote
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CauseTimeout
	case errors.Is(err, context.Canceled):
		return CauseCanceled
	case errors.Is(err, ErrTooManyHops):
		return CauseTooManyHops
	case errors.Is(err, ErrMoveInFlight):
		// The owning core refused to start a second move; the request was
		// served and answered, so this is a verdict, not unreachability.
		return CauseRemote
	}
	var pe *peerError
	if errors.As(err, &pe) {
		if pe.cause != CauseUnknown {
			return pe.cause
		}
		return CauseRemote
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		// A lost connection means the peer may never have seen the
		// request: that is unreachability, not a remote verdict.
		if errors.Is(err, transport.ErrConnLost) {
			return CauseUnreachable
		}
		return CauseRemote
	}
	return CauseUnreachable
}

// tripHopBudget reports one hop-budget exhaustion: it fires the
// EventHopBudgetExceeded monitor event at this core and returns the typed
// error.
func (c *Core) tripHopBudget(op string, target ids.CompletID) error {
	c.flight.Record(flight.Event{Kind: flight.KindHopBudget, Complet: target.String(), Detail: op})
	c.mon.fireBuiltin(EventHopBudgetExceeded, target, op)
	return fmt.Errorf("%w: %s", ErrTooManyHops, op)
}

// invokeErr wraps err as a *InvokeError unless it already is one (the inner
// classification from a deeper pipeline stage wins — it is closer to the
// fault). The attempt count, when the retry layer recorded one, is surfaced.
func invokeErr(op string, target ids.CompletID, peer ids.CoreID, err error) error {
	if err == nil {
		return nil
	}
	var ie *InvokeError
	if errors.As(err, &ie) {
		return err
	}
	attempts := 1
	var ae *attemptsErr
	if errors.As(err, &ae) {
		attempts = ae.n
	}
	return &InvokeError{Op: op, Target: target, Peer: peer, Cause: classifyCause(err), Attempts: attempts, Err: err}
}
