package core

import (
	"sync"
	"testing"
	"time"
)

// TestPairAccountingSurvivesMove is the regression test for the planner's
// accounting substrate: per-pair invocation meters are keyed on complet
// identity and travel with the complet, so invocationRate(source, target)
// keeps answering — at the NEW host — after the target relocates, and the old
// host stops reporting the pair.
func TestPairAccountingSurvivesMove(t *testing.T) {
	cl := newCluster(t, "a", "b", "c")
	a := cl.core("a")
	target, err := a.NewCompletAt("b", "Msg", "t")
	if err != nil {
		t.Fatal(err)
	}
	caller, err := a.NewComplet("Holder", "caller")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Invoke("SetOut", target); err != nil {
		t.Fatal(err)
	}
	entry, _ := a.lookup(caller.Target())
	entry.anchor.(*holder).Out.SetOwner(caller.Target())

	const n = 20
	for i := 0; i < n; i++ {
		invoke1(t, caller, "CallOut")
	}
	src, dst := caller.Target().String(), target.Target().String()
	rateB, err := cl.core("b").Monitor().Instant(ServiceInvocationRate, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rateB <= 0 {
		t.Fatalf("pre-move pair rate at b = %v, want > 0", rateB)
	}

	// Relocate the target; its meters must travel in the movement bundle.
	if err := a.Move(target, "c"); err != nil {
		t.Fatal(err)
	}

	rateC, err := cl.core("c").Monitor().Instant(ServiceInvocationRate, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rateC <= 0 {
		t.Fatalf("pair rate at new host = %v, want > 0 (accounting lost across relocation)", rateC)
	}
	count, err := cl.core("c").Monitor().Instant(ServiceInvocationCount, dst)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("windowed count at new host = %v, want %d", count, n)
	}
	// The old host drops its meters on successful departure; wait out the
	// instant cache TTL for the stale positive reading to age out.
	waitFor(t, 2*time.Second, func() bool {
		v, err := cl.core("b").Monitor().Instant(ServiceInvocationRate, src, dst)
		return err == nil && v == 0
	})

	// Invocations after the move accrue on the same identity-keyed meters
	// (wait out the instant cache TTL for the fresh total).
	for i := 0; i < 5; i++ {
		invoke1(t, caller, "CallOut")
	}
	waitFor(t, 2*time.Second, func() bool {
		v, err := cl.core("c").Monitor().Instant(ServiceInvocationCount, dst)
		return err == nil && v == n+5
	})
}

// TestProfileInterestChurn hammers the interest-counted Start/Get/Stop
// surface from many goroutines: each holds its own interest while reading, so
// Get must never miss, and when the dust settles the shared sampler is gone.
func TestProfileInterestChurn(t *testing.T) {
	cl := newCluster(t, "a")
	m := cl.core("a").Monitor()
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := m.Start(time.Millisecond, ServiceCompletLoad); err != nil {
					errs <- err
					return
				}
				if _, err := m.Get(ServiceCompletLoad); err != nil {
					errs <- err
					return
				}
				m.Stop(ServiceCompletLoad)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("churn worker: %v", err)
	}
	if got := m.ProfiledCount(); got != 0 {
		t.Fatalf("ProfiledCount after churn = %d, want 0 (interest leaked)", got)
	}
	// A final interested party still works: the sampler is recreated.
	if err := m.Start(time.Millisecond, ServiceCompletLoad); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(ServiceCompletLoad); err != nil {
		t.Fatal(err)
	}
	m.Stop(ServiceCompletLoad)
	if got := m.ProfiledCount(); got != 0 {
		t.Fatalf("ProfiledCount = %d, want 0", got)
	}
}
