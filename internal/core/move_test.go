package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"fargo/internal/ids"
	"fargo/internal/ref"
)

func TestBasicMove(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "mover")
	if err != nil {
		t.Fatal(err)
	}
	invoke1(t, r, "Print")
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	if a.CompletCount() != 0 || cl.core("b").CompletCount() != 1 {
		t.Fatalf("counts a=%d b=%d", a.CompletCount(), cl.core("b").CompletCount())
	}
	// State survived the move; invocation still works through the ref.
	if got := invoke1(t, r, "Calls"); got != 1 {
		t.Fatalf("Calls after move = %v, want 1", got)
	}
	if got := invoke1(t, r, "Print"); got != "mover" {
		t.Fatalf("Print after move = %v", got)
	}
	if loc, err := r.Meta().Location(); err != nil || loc != "b" {
		t.Fatalf("Location = %v, %v", loc, err)
	}
}

func TestMoveToSelfIsNoop(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "stay")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "a"); err != nil {
		t.Fatal(err)
	}
	if a.CompletCount() != 1 {
		t.Fatal("complet vanished on self-move")
	}
}

func TestMoveRoutedToOwner(t *testing.T) {
	// Moving through a ref whose target lives elsewhere: the command is
	// routed to the owner.
	cl := newCluster(t, "a", "b", "c")
	a := cl.core("a")
	r, err := a.NewCompletAt("b", "Msg", "routed")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "c"); err != nil {
		t.Fatal(err)
	}
	if cl.core("c").CompletCount() != 1 {
		t.Fatal("complet did not arrive at c")
	}
	if got := invoke1(t, r, "Print"); got != "routed" {
		t.Fatalf("Print = %v", got)
	}
}

func TestTrackerChainAndInvocation(t *testing.T) {
	// Move a complet along a chain of cores; a referrer holding a stale
	// ref still reaches it, and chain shortening repoints trackers.
	names := []string{"c0", "c1", "c2", "c3", "c4"}
	cl := newCluster(t, names...)
	origin := cl.core("c0")
	r, err := origin.NewComplet("Msg", "nomad")
	if err != nil {
		t.Fatal(err)
	}
	// A stale referrer on c0 that knows only the birth location.
	stale := ref.New(r.Target(), "Msg", "c0", nil)
	stale.Bind(origin.binder())

	// Walk the complet down the chain; each hop leaves a forwarding
	// tracker behind.
	mover := r
	for i := 1; i < len(names); i++ {
		if err := cl.core(names[i-1]).Move(mover, ids.CoreID(names[i])); err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
	}
	last := ids.CoreID(names[len(names)-1])

	// Before the stale ref is used, c0's tracker points at c1 (one hop).
	if tgt, ok := origin.TrackerTarget(r.Target()); !ok || tgt != "c1" {
		t.Fatalf("c0 tracker points at %v, want c1 (chain intact)", tgt)
	}
	// Invocation follows the chain...
	if got := invoke1(t, stale, "Print"); got != "nomad" {
		t.Fatalf("Print via chain = %v", got)
	}
	// ...and shortens it: c0's tracker now points directly at the end.
	if tgt, ok := origin.TrackerTarget(r.Target()); !ok || tgt != last {
		t.Fatalf("after shortening, c0 tracker points at %v, want %v", tgt, last)
	}
	// Intermediate cores shortened too (§3.1: all trackers in the chain).
	for _, mid := range names[1 : len(names)-1] {
		if tgt, ok := cl.core(mid).TrackerTarget(r.Target()); ok && tgt != last {
			t.Fatalf("tracker at %s points at %v, want %v", mid, tgt, last)
		}
	}
	// The stale stub's hint was refreshed.
	if stale.Hint() != last {
		t.Fatalf("stale hint = %v, want %v", stale.Hint(), last)
	}
}

func TestPullReference(t *testing.T) {
	// α --pull--> β: moving α moves β along in the same bundle (§2).
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	alpha, err := a.NewComplet("Holder", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := a.NewComplet("Msg", "beta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Invoke("SetOut", beta); err != nil {
		t.Fatal(err)
	}
	// Reaching into the anchor to set the relocator on ITS reference (the
	// copy stored inside the complet, not our stub).
	entry, _ := a.lookup(alpha.Target())
	inner := entry.anchor.(*holder).Out
	if err := inner.Meta().SetRelocator(ref.Pull{}); err != nil {
		t.Fatal(err)
	}

	if err := a.Move(alpha, "b"); err != nil {
		t.Fatal(err)
	}
	// Both complets moved.
	if a.CompletCount() != 0 {
		t.Fatalf("a still hosts %d complets", a.CompletCount())
	}
	if cl.core("b").CompletCount() != 2 {
		t.Fatalf("b hosts %d complets, want 2", cl.core("b").CompletCount())
	}
	// And the pulled complet is the same instance (identity preserved).
	if got := invoke1(t, alpha, "CallOut"); got != "beta" {
		t.Fatalf("CallOut = %v", got)
	}
	if loc, err := beta.Meta().Location(); err != nil || loc != "b" {
		t.Fatalf("beta location = %v, %v", loc, err)
	}
}

func TestPullChainSingleMessage(t *testing.T) {
	// α pulls β pulls γ: one movement request moves all three.
	cl := newCluster(t, "a", "b")
	a := cl.core("a")

	gamma, err := a.NewComplet("Msg", "gamma")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := a.NewComplet("Holder", "beta")
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := a.NewComplet("Holder", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := beta.Invoke("SetOut", gamma); err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Invoke("SetOut", beta); err != nil {
		t.Fatal(err)
	}
	for _, h := range []*ref.Ref{alpha, beta} {
		entry, _ := a.lookup(h.Target())
		if err := entry.anchor.(*holder).Out.Meta().SetRelocator(ref.Pull{}); err != nil {
			t.Fatal(err)
		}
	}

	cl.net.ResetStats()
	if err := a.Move(alpha, "b"); err != nil {
		t.Fatal(err)
	}
	if cl.core("b").CompletCount() != 3 {
		t.Fatalf("b hosts %d complets, want 3", cl.core("b").CompletCount())
	}
	// §3.3: a single inter-core message carries the whole group.
	if s := cl.net.Stats("a", "b"); s.Messages != 1 {
		t.Fatalf("a->b messages = %d, want 1 (single-stream group move)", s.Messages)
	}
}

func TestPullCycleTerminates(t *testing.T) {
	// α pulls β and β pulls α: the closure walk must terminate and move
	// both exactly once.
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	alpha, err := a.NewComplet("Holder", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := a.NewComplet("Holder", "beta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Invoke("SetOut", beta); err != nil {
		t.Fatal(err)
	}
	if _, err := beta.Invoke("SetOut", alpha); err != nil {
		t.Fatal(err)
	}
	for _, h := range []*ref.Ref{alpha, beta} {
		entry, _ := a.lookup(h.Target())
		if err := entry.anchor.(*holder).Out.Meta().SetRelocator(ref.Pull{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Move(alpha, "b"); err != nil {
		t.Fatal(err)
	}
	if got := cl.core("b").CompletCount(); got != 2 {
		t.Fatalf("b hosts %d, want 2", got)
	}
	// The cycle stays intact: α's outgoing ref still reaches β.
	res, err := alpha.Invoke("GetOut")
	if err != nil {
		t.Fatal(err)
	}
	out, ok := res[0].(*ref.Ref)
	if !ok || out.Target() != beta.Target() {
		t.Fatalf("cycle broken: GetOut = %v", res[0])
	}
}

func TestDuplicateReference(t *testing.T) {
	// α --duplicate--> β: moving α ships a COPY of β; the original stays.
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	alpha, err := a.NewComplet("Holder", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := a.NewComplet("Msg", "replica-source")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Invoke("SetOut", beta); err != nil {
		t.Fatal(err)
	}
	entry, _ := a.lookup(alpha.Target())
	if err := entry.anchor.(*holder).Out.Meta().SetRelocator(ref.Duplicate{}); err != nil {
		t.Fatal(err)
	}

	if err := a.Move(alpha, "b"); err != nil {
		t.Fatal(err)
	}
	// Original β still on a; α and β' on b.
	if a.CompletCount() != 1 {
		t.Fatalf("a hosts %d, want 1 (original β)", a.CompletCount())
	}
	if cl.core("b").CompletCount() != 2 {
		t.Fatalf("b hosts %d, want 2 (α + copy)", cl.core("b").CompletCount())
	}
	// α's reference reaches the copy: bump the copy, original untouched.
	if got := invoke1(t, alpha, "CallOut"); got != "replica-source" {
		t.Fatalf("CallOut = %v", got)
	}
	if got := invoke1(t, beta, "Calls"); got != 0 {
		t.Fatalf("original Calls = %v, want 0 (copy served the call)", got)
	}
}

func TestStampReference(t *testing.T) {
	// α --stamp--> printer: after moving, α is re-bound to a local printer
	// at the destination (§2's printer example).
	cl := newCluster(t, "a", "b")
	a, b := cl.core("a"), cl.core("b")
	printerA, err := a.NewComplet("Printer", "site-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.NewComplet("Printer", "site-b"); err != nil {
		t.Fatal(err)
	}
	alpha, err := a.NewComplet("Holder", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Invoke("SetOut", printerA); err != nil {
		t.Fatal(err)
	}
	entry, _ := a.lookup(alpha.Target())
	if err := entry.anchor.(*holder).Out.Meta().SetRelocator(ref.Stamp{}); err != nil {
		t.Fatal(err)
	}

	if err := a.Move(alpha, "b"); err != nil {
		t.Fatal(err)
	}
	// α's outgoing ref must now point at b's printer.
	res, err := alpha.Invoke("GetOut")
	if err != nil {
		t.Fatal(err)
	}
	out, ok := res[0].(*ref.Ref)
	if !ok || out == nil {
		t.Fatalf("GetOut = %v", res)
	}
	where, err := out.Invoke("Where")
	if err != nil {
		t.Fatal(err)
	}
	if where[0] != "site-b" {
		t.Fatalf("stamp re-bound to %v, want site-b", where[0])
	}
}

func TestStampWithoutLocalInstanceKeepsTracking(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	printerA, err := a.NewComplet("Printer", "site-a")
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := a.NewComplet("Holder", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Invoke("SetOut", printerA); err != nil {
		t.Fatal(err)
	}
	entry, _ := a.lookup(alpha.Target())
	if err := entry.anchor.(*holder).Out.Meta().SetRelocator(ref.Stamp{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Move(alpha, "b"); err != nil {
		t.Fatal(err)
	}
	// No printer on b: the reference falls back to tracking the original.
	res, err := alpha.Invoke("GetOut")
	if err != nil {
		t.Fatal(err)
	}
	out := res[0].(*ref.Ref)
	where, err := out.Invoke("Where")
	if err != nil {
		t.Fatal(err)
	}
	if where[0] != "site-a" {
		t.Fatalf("fallback binding reached %v, want site-a", where[0])
	}
}

func TestRemoteDuplicateCloned(t *testing.T) {
	// α on a, β on c, α --duplicate--> β; moving α to b installs a copy
	// of β at b (cloned via its owner).
	cl := newCluster(t, "a", "b", "c")
	a := cl.core("a")
	beta, err := a.NewCompletAt("c", "Msg", "remote-replica")
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := a.NewComplet("Holder", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Invoke("SetOut", beta); err != nil {
		t.Fatal(err)
	}
	entry, _ := a.lookup(alpha.Target())
	if err := entry.anchor.(*holder).Out.Meta().SetRelocator(ref.Duplicate{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Move(alpha, "b"); err != nil {
		t.Fatal(err)
	}
	if got := cl.core("b").CompletCount(); got != 2 {
		t.Fatalf("b hosts %d, want 2 (α + clone of β)", got)
	}
	if got := cl.core("c").CompletCount(); got != 1 {
		t.Fatalf("c hosts %d, want 1 (original β stays)", got)
	}
	if got := invoke1(t, alpha, "CallOut"); got != "remote-replica" {
		t.Fatalf("CallOut = %v", got)
	}
	if got := invoke1(t, beta, "Calls"); got != 0 {
		t.Fatalf("original touched: Calls = %v", got)
	}
}

func TestRemotePullChased(t *testing.T) {
	// α on a, β on c, α --pull--> β; moving α to b also brings β to b
	// (follow-up move, documented deviation from single-message).
	cl := newCluster(t, "a", "b", "c")
	a := cl.core("a")
	beta, err := a.NewCompletAt("c", "Msg", "chased")
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := a.NewComplet("Holder", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Invoke("SetOut", beta); err != nil {
		t.Fatal(err)
	}
	entry, _ := a.lookup(alpha.Target())
	if err := entry.anchor.(*holder).Out.Meta().SetRelocator(ref.Pull{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Move(alpha, "b"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return cl.core("b").CompletCount() == 2 })
	if got := cl.core("c").CompletCount(); got != 0 {
		t.Fatalf("c still hosts %d", got)
	}
	if got := invoke1(t, alpha, "CallOut"); got != "chased" {
		t.Fatalf("CallOut = %v", got)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMovementCallbacksOrder(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Witness", "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	res, err := r.Invoke("Log")
	if err != nil {
		t.Fatal(err)
	}
	logs, ok := res[0].([]string)
	if !ok {
		t.Fatalf("Log = %T", res[0])
	}
	// The arrived copy saw preDeparture (recorded before marshal), then
	// preArrival and postArrival. postDeparture ran on the ABANDONED old
	// copy, so it must NOT appear in the moved state.
	want := []string{"preDeparture:b", "preArrival:a", "postArrival:a"}
	if strings.Join(logs, ",") != strings.Join(want, ",") {
		t.Fatalf("callback order = %v, want %v", logs, want)
	}
}

func TestContinuation(t *testing.T) {
	// Weak mobility: the computation resumes via the continuation method
	// at the destination (§3.3).
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Agent")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MoveWithContinuation(r, "b", "Note", []any{"arrived-at-b"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		res, err := r.Invoke("Trail")
		if err != nil {
			return false
		}
		trail, _ := res[0].([]string)
		return len(trail) == 1 && trail[0] == "arrived-at-b"
	})
}

func TestMoveByID(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "by-id")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MoveByID(r.Target(), "b"); err != nil {
		t.Fatal(err)
	}
	if cl.core("b").CompletCount() != 1 {
		t.Fatal("complet did not move")
	}
}

func TestMoveNonexistent(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	ghost := ids.CompletID{Birth: "a", Seq: 999}
	if err := a.MoveByID(ghost, "b"); err == nil {
		t.Fatal("moving a nonexistent complet should fail")
	}
}

func TestMoveToUnknownCore(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "ghost-core"); err == nil {
		t.Fatal("moving to an unknown core should fail")
	}
	// The complet must still be usable after the failed move.
	if got := invoke1(t, r, "Print"); got != "x" {
		t.Fatalf("Print after failed move = %v", got)
	}
	if a.CompletCount() != 1 {
		t.Fatal("complet lost after failed move")
	}
}

func TestInvocationDuringMove(t *testing.T) {
	// Hammer a complet with invocations while it bounces between cores;
	// every invocation must either complete against the pre- or post-move
	// state, never fail or observe a half-moved complet.
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	r, err := a.NewComplet("Msg", "busy")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				errCh <- nil
				return
			default:
				if _, err := r.Invoke("Print"); err != nil {
					errCh <- fmt.Errorf("invoke during move: %w", err)
					return
				}
			}
		}
	}()
	cores := []ids.CoreID{"b", "a", "b", "a"}
	from := []string{"a", "b", "a", "b"}
	for i, dest := range cores {
		if err := cl.core(from[i]).Move(r, dest); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
	close(stop)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	// All Print calls counted: none lost, none double-applied on a stale
	// copy (the count only ever grows on the live instance).
	n1 := invoke1(t, r, "Calls").(int)
	invoke1(t, r, "Print")
	n2 := invoke1(t, r, "Calls").(int)
	if n2 != n1+1 {
		t.Fatalf("counter on live instance: %d then %d", n1, n2)
	}
}

func TestNamesCarriedOnMove(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a, b := cl.core("a"), cl.core("b")
	r, err := a.NewComplet("Msg", "named")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Name("svc", r); err != nil {
		t.Fatal(err)
	}
	if err := a.Move(r, "b"); err != nil {
		t.Fatal(err)
	}
	// The name resolves at the origin (tracking ref)...
	got, ok := a.Lookup("svc")
	if !ok {
		t.Fatal("name lost at origin")
	}
	if v := invoke1(t, got, "Print"); v != "named" {
		t.Fatalf("Print via origin name = %v", v)
	}
	// ...and was carried to the destination's naming service.
	got2, ok := b.Lookup("svc")
	if !ok {
		t.Fatal("name not carried to destination")
	}
	if v := invoke1(t, got2, "Print"); v != "named" {
		t.Fatalf("Print via carried name = %v", v)
	}
}
