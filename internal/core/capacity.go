package core

import (
	"fmt"
	"sort"

	"fargo/internal/ids"
	"fargo/internal/ref"
)

// Resource negotiation and allocation — the last future-work direction the
// paper names (§7, "we are working on a security and resource negotiation
// models"; the acknowledgements credit adaptive resource negotiation and
// allocation schemes). The model implemented here is deliberately simple but
// end-to-end real:
//
//   - every core can declare a complet capacity; arrivals beyond it are
//     refused (admission control), and a refused move leaves the complet
//     fully usable at its source;
//   - free capacity is a profiling service, so policies and scripts can
//     measure it like any other resource;
//   - Negotiate queries a candidate set and picks the best destination
//     (most free capacity, ties broken by lowest latency), and MoveToBest
//     combines negotiation with movement.

// ServiceCapacityFree measures the remaining complet capacity of a core
// (+Inf is reported as a large sentinel when the core is uncapped).
const ServiceCapacityFree = "capacityFree"

// uncappedSentinel is the capacityFree value reported by cores without a
// configured capacity.
const uncappedSentinel = 1 << 30

// ErrAtCapacity is returned when an instantiation or arrival would exceed
// the core's declared complet capacity.
var ErrAtCapacity = fmt.Errorf("core: at capacity")

// SetCapacity declares how many complets this core accepts (0 = unlimited).
// Lowering the capacity below the current population does not evict anyone;
// it only blocks further arrivals.
func (c *Core) SetCapacity(maxComplets int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = maxComplets
}

// Capacity returns the declared capacity (0 = unlimited).
func (c *Core) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// capacityFree returns the free slots (uncappedSentinel when unlimited).
func (c *Core) capacityFree() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return uncappedSentinel
	}
	free := c.capacity - len(c.complets)
	if free < 0 {
		free = 0
	}
	return free
}

// admit checks whether n more complets fit.
func (c *Core) admit(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return nil
	}
	if len(c.complets)+n > c.capacity {
		return fmt.Errorf("%w: %d/%d used, %d arriving", ErrAtCapacity, len(c.complets), c.capacity, n)
	}
	return nil
}

// Candidate is one negotiation result.
type Candidate struct {
	Core ids.CoreID
	// Free is the candidate's free complet capacity.
	Free float64
	// LatencyMillis is the measured round-trip time to the candidate.
	LatencyMillis float64
	// Err records why a candidate was disqualified (nil when usable).
	Err error
}

// Negotiate queries the candidate cores for free capacity and latency, and
// returns them ranked: most free capacity first, latency as the tie-break.
// Candidates that cannot be measured are ranked last with their error
// recorded. need is the number of complets to place; candidates with less
// free capacity are disqualified.
func (c *Core) Negotiate(candidates []ids.CoreID, need int) ([]Candidate, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: negotiate: no candidates")
	}
	if need <= 0 {
		need = 1
	}
	out := make([]Candidate, 0, len(candidates))
	for _, cand := range candidates {
		entry := Candidate{Core: cand}
		free, err := c.mon.InstantAt(cand, ServiceCapacityFree)
		if err != nil {
			entry.Err = err
			out = append(out, entry)
			continue
		}
		entry.Free = free
		if free < float64(need) {
			entry.Err = fmt.Errorf("%w: %v free, need %d", ErrAtCapacity, free, need)
			out = append(out, entry)
			continue
		}
		if cand == c.id {
			entry.LatencyMillis = 0
		} else {
			lat, err := c.mon.InstantAt(c.id, ServiceLatency, cand.String())
			if err != nil {
				entry.Err = err
				out = append(out, entry)
				continue
			}
			entry.LatencyMillis = lat
		}
		out = append(out, entry)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case (a.Err == nil) != (b.Err == nil):
			return a.Err == nil
		case a.Free != b.Free:
			return a.Free > b.Free
		default:
			return a.LatencyMillis < b.LatencyMillis
		}
	})
	if out[0].Err != nil {
		return out, fmt.Errorf("core: negotiate: no candidate can host %d complet(s); best error: %v", need, out[0].Err)
	}
	return out, nil
}

// MoveToBest negotiates among the candidates and moves the complet to the
// winner, falling through the ranking when a move is refused (capacity can
// change between negotiation and arrival). It returns the chosen core.
func (c *Core) MoveToBest(r *ref.Ref, candidates []ids.CoreID) (ids.CoreID, error) {
	ranked, err := c.Negotiate(candidates, 1)
	if err != nil {
		return "", err
	}
	var lastErr error
	for _, cand := range ranked {
		if cand.Err != nil {
			break // disqualified candidates are sorted last
		}
		if err := c.Move(r, cand.Core); err != nil {
			lastErr = err
			continue
		}
		return cand.Core, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: no usable candidate")
	}
	return "", fmt.Errorf("core: move to best of %v: %w", candidates, lastErr)
}
