package core

import (
	"errors"
	"testing"
	"time"

	"fargo/internal/ids"
	"fargo/internal/netsim"
	"fargo/internal/ref"
)

func TestCapacityBlocksInstantiation(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	a.SetCapacity(2)
	if _, err := a.NewComplet("Msg", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewComplet("Msg", "2"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewComplet("Msg", "3"); !errors.Is(err, ErrAtCapacity) {
		t.Fatalf("third complet: %v, want ErrAtCapacity", err)
	}
	if a.Capacity() != 2 {
		t.Fatalf("Capacity = %d", a.Capacity())
	}
}

func TestCapacityRefusesArrivals(t *testing.T) {
	cl := newCluster(t, "src", "dst")
	src, dst := cl.core("src"), cl.core("dst")
	dst.SetCapacity(1)
	if _, err := src.NewCompletAt("dst", "Msg", "occupant"); err != nil {
		t.Fatal(err)
	}
	mover, err := src.NewComplet("Msg", "refused")
	if err != nil {
		t.Fatal(err)
	}
	err = src.Move(mover, "dst")
	if err == nil {
		t.Fatal("move into a full core should fail")
	}
	// The refused complet is intact and usable at the source.
	if src.CompletCount() != 1 {
		t.Fatalf("src hosts %d complets, want 1", src.CompletCount())
	}
	if got := invoke1(t, mover, "Print"); got != "refused" {
		t.Fatalf("Print after refused move = %v", got)
	}
	if loc, err := mover.Meta().Location(); err != nil || loc != "src" {
		t.Fatalf("location = %v, %v", loc, err)
	}
}

func TestCapacityRefusesWholeBundle(t *testing.T) {
	// A pull group that does not fit is refused atomically.
	cl := newCluster(t, "src", "dst")
	src, dst := cl.core("src"), cl.core("dst")
	dst.SetCapacity(1) // the group needs 2 slots

	root, err := src.NewComplet("Holder", "root")
	if err != nil {
		t.Fatal(err)
	}
	child, err := src.NewComplet("Msg", "child")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Invoke("SetOut", child); err != nil {
		t.Fatal(err)
	}
	entry, _ := src.lookup(root.Target())
	if err := entry.anchor.(*holder).Out.Meta().SetRelocator(ref.Pull{}); err != nil {
		t.Fatal(err)
	}
	if err := src.Move(root, "dst"); err == nil {
		t.Fatal("oversized bundle should be refused")
	}
	if src.CompletCount() != 2 || dst.CompletCount() != 0 {
		t.Fatalf("counts src=%d dst=%d, want 2/0 (atomic refusal)", src.CompletCount(), dst.CompletCount())
	}
	if got := invoke1(t, root, "CallOut"); got != "child" {
		t.Fatalf("group unusable after refusal: %v", got)
	}
}

func TestCapacityFreeService(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	free, err := a.Monitor().Instant(ServiceCapacityFree)
	if err != nil {
		t.Fatal(err)
	}
	if free != uncappedSentinel {
		t.Fatalf("uncapped free = %v", free)
	}
	a.SetCapacity(3)
	if _, err := a.NewComplet("Msg", "x"); err != nil {
		t.Fatal(err)
	}
	// The instant cache may serve the uncapped value briefly; read the
	// internal value directly for determinism.
	if got := a.capacityFree(); got != 2 {
		t.Fatalf("capacityFree = %d, want 2", got)
	}
}

func TestNegotiateRanksByFreeThenLatency(t *testing.T) {
	cl := newCluster(t, "origin", "big", "small", "far")
	// big: capacity 10 (9 free after one occupant); small: capacity 2;
	// far: uncapped but behind a slow link.
	cl.core("big").SetCapacity(10)
	cl.core("small").SetCapacity(2)
	if _, err := cl.core("origin").NewCompletAt("big", "Msg", "x"); err != nil {
		t.Fatal(err)
	}
	if err := cl.net.SetLink("origin", "far", netsim.LinkProfile{Latency: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ranked, err := cl.core("origin").Negotiate([]ids.CoreID{"small", "big", "far"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %+v", ranked)
	}
	// far is uncapped -> most free; big next; small last.
	if ranked[0].Core != "far" || ranked[1].Core != "big" || ranked[2].Core != "small" {
		t.Fatalf("ranking = %v %v %v", ranked[0].Core, ranked[1].Core, ranked[2].Core)
	}
}

func TestNegotiateDisqualifiesFullCores(t *testing.T) {
	cl := newCluster(t, "origin", "full", "open")
	cl.core("full").SetCapacity(1)
	if _, err := cl.core("origin").NewCompletAt("full", "Msg", "x"); err != nil {
		t.Fatal(err)
	}
	cl.core("open").SetCapacity(5)
	ranked, err := cl.core("origin").Negotiate([]ids.CoreID{"full", "open"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Core != "open" || ranked[0].Err != nil {
		t.Fatalf("winner = %+v", ranked[0])
	}
	if ranked[1].Core != "full" || !errors.Is(ranked[1].Err, ErrAtCapacity) {
		t.Fatalf("loser = %+v", ranked[1])
	}
}

func TestNegotiateAllFull(t *testing.T) {
	cl := newCluster(t, "origin", "f1", "f2")
	for _, n := range []string{"f1", "f2"} {
		cl.core(n).SetCapacity(1)
		if _, err := cl.core("origin").NewCompletAt(ids.CoreID(n), "Msg", "x"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.core("origin").Negotiate([]ids.CoreID{"f1", "f2"}, 1); err == nil {
		t.Fatal("negotiation with no viable candidate should fail")
	}
	if _, err := cl.core("origin").Negotiate(nil, 1); err == nil {
		t.Fatal("empty candidate set should fail")
	}
}

func TestMoveToBest(t *testing.T) {
	cl := newCluster(t, "origin", "busy", "idle")
	cl.core("busy").SetCapacity(1)
	if _, err := cl.core("origin").NewCompletAt("busy", "Msg", "occupant"); err != nil {
		t.Fatal(err)
	}
	r, err := cl.core("origin").NewComplet("Msg", "placed")
	if err != nil {
		t.Fatal(err)
	}
	chosen, err := cl.core("origin").MoveToBest(r, []ids.CoreID{"busy", "idle"})
	if err != nil {
		t.Fatal(err)
	}
	if chosen != "idle" {
		t.Fatalf("chosen = %v, want idle", chosen)
	}
	if cl.core("idle").CompletCount() != 1 {
		t.Fatal("complet did not arrive at the chosen core")
	}
	if got := invoke1(t, r, "Print"); got != "placed" {
		t.Fatalf("Print = %v", got)
	}
}
