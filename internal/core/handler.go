package core

import (
	"context"
	"fmt"

	"fargo/internal/ids"
	"fargo/internal/wire"
)

// handle is the transport request handler: it dispatches incoming envelopes
// to the owning unit. Each request runs on its own goroutine (the transport
// spawns one per request, mirroring the original's thread-per-invocation
// model, §5). The context carries the requester's remaining end-to-end
// budget (reconstructed by the transport from the envelope's wire deadline);
// handlers that issue further requests — forwarding along a tracker chain,
// routing a move — pass it on, so the clock never restarts mid-pipeline.
func (c *Core) handle(ctx context.Context, env wire.Envelope) (wire.Kind, []byte, error) {
	c.notePeer(env.From)
	switch env.Kind {
	case wire.KindInvoke:
		return c.handleInvoke(ctx, env)
	case wire.KindLocate:
		return c.handleLocate(ctx, env)
	case wire.KindMove:
		return c.handleMove(ctx, env)
	case wire.KindMoveCmd:
		return c.handleMoveCmd(ctx, env)
	case wire.KindMoveProbe:
		return c.handleMoveProbe(env)
	case wire.KindClone:
		return c.handleClone(ctx, env)
	case wire.KindNew:
		return c.handleNew(env)
	case wire.KindNameSet:
		return c.handleNameSet(env)
	case wire.KindNameLookup:
		return c.handleNameLookup(env)
	case wire.KindPing:
		return c.handlePing(env)
	case wire.KindCoreInfo:
		return c.handleCoreInfo(env)
	case wire.KindSubscribe:
		return c.mon.handleSubscribe(env)
	case wire.KindUnsubscribe:
		return c.mon.handleUnsubscribe(env)
	case wire.KindEventNotify:
		c.mon.handleEventNotify(env)
		return wire.KindEventNotify, nil, nil
	case wire.KindShutdownNotice:
		c.mon.handleRemoteShutdown(env.From)
		return wire.KindShutdownNotice, nil, nil
	case wire.KindProfileQuery:
		return c.mon.handleProfileQuery(env)
	case wire.KindHomeUpdate:
		return c.handleHomeUpdate(env)
	case wire.KindHomeQuery:
		return c.handleHomeQuery(env)
	case wire.KindCheckpoint:
		return c.handleCheckpoint(env)
	case wire.KindStatsQuery:
		return c.handleStatsQuery(env)
	case wire.KindTraceQuery:
		return c.handleTraceQuery(env)
	case wire.KindHealthQuery:
		return c.handleHealthQuery(env)
	case wire.KindFlightQuery:
		return c.handleFlightQuery(env)
	case wire.KindPlanStatsQuery:
		return c.handlePlanStats(env)
	case wire.KindObsQuery:
		return c.handleObsQuery(env)
	default:
		return 0, nil, fmt.Errorf("core %s: unhandled envelope kind %s", c.id, env.Kind)
	}
}

// handleNew serves remote complet instantiation.
func (c *Core) handleNew(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.NewRequest
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	reply := wire.NewReply{}
	args, decoded, err := wire.DecodeArgs(req.Args)
	if err != nil {
		reply.Err = err.Error()
	} else {
		c.bindDecoded(decoded)
		r, err := c.NewComplet(req.TypeName, args...)
		if err != nil {
			reply.Err = err.Error()
		} else {
			desc, err := r.Descriptor()
			if err != nil {
				reply.Err = err.Error()
			} else {
				reply.Desc = desc
			}
		}
	}
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindNewReply, out, nil
}

// handlePing answers liveness and bandwidth probes.
func (c *Core) handlePing(env wire.Envelope) (wire.Kind, []byte, error) {
	var req wire.Ping
	if err := wire.DecodePayload(env.Payload, &req); err != nil {
		return 0, nil, err
	}
	out, err := wire.EncodePayload(wire.Pong{Seq: req.Seq})
	if err != nil {
		return 0, nil, err
	}
	return wire.KindPong, out, nil
}

// handleCoreInfo describes this core to the shell/monitor.
func (c *Core) handleCoreInfo(env wire.Envelope) (wire.Kind, []byte, error) {
	reply := wire.CoreInfoReply{
		Core:     c.id,
		Complets: c.Complets(),
		Peers:    c.Peers(),
	}
	out, err := wire.EncodePayload(reply)
	if err != nil {
		return 0, nil, err
	}
	return wire.KindCoreInfoReply, out, nil
}

// CoreInfo fetches a peer core's description (shell and layout monitor
// support). It is a thin context.Background wrapper over CoreInfoCtx,
// running under the core's default request budget; prefer the ctx form.
func (c *Core) CoreInfo(dest ids.CoreID) (wire.CoreInfoReply, error) {
	return c.CoreInfoCtx(context.Background(), dest)
}

// CoreInfoCtx fetches a peer core's description under the caller's context.
func (c *Core) CoreInfoCtx(ctx context.Context, dest ids.CoreID) (wire.CoreInfoReply, error) {
	if dest == c.id {
		return wire.CoreInfoReply{Core: c.id, Complets: c.Complets(), Peers: c.Peers()}, nil
	}
	if c.isClosed() {
		return wire.CoreInfoReply{}, ErrClosed
	}
	ctx, cancel := c.withBudget(ctx, 0)
	defer cancel()
	env, err := c.request(ctx, dest, wire.KindCoreInfo, nil)
	if err != nil {
		return wire.CoreInfoReply{}, fmt.Errorf("core: info of %s: %w", dest, err)
	}
	var reply wire.CoreInfoReply
	if err := wire.DecodePayload(env.Payload, &reply); err != nil {
		return wire.CoreInfoReply{}, err
	}
	return reply, nil
}
