package core

import (
	"testing"
	"time"

	"fargo/internal/ids"
)

func TestHeartbeatDetectsPartition(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")

	events := make(chan Event, 4)
	if _, err := a.Monitor().SubscribeBuiltin(EventCoreUnreachable, func(ev Event) {
		select {
		case events <- ev:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	hb, err := a.Monitor().StartHeartbeat([]ids.CoreID{"b"}, 10*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Stop()

	// Healthy: no event.
	select {
	case ev := <-events:
		t.Fatalf("spurious unreachable event: %+v", ev)
	case <-time.After(80 * time.Millisecond):
	}

	// Partition a from b.
	if err := cl.net.SetPartition("a", "b", true); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Name != EventCoreUnreachable || ev.Source != "b" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("partition not detected")
	}

	// No repeat while the outage lasts.
	select {
	case ev := <-events:
		t.Fatalf("duplicate event during one outage: %+v", ev)
	case <-time.After(100 * time.Millisecond):
	}

	// Heal and cut again: the detector re-arms and fires once more.
	if err := cl.net.SetPartition("a", "b", false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let pings succeed
	if err := cl.net.SetPartition("a", "b", true); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Source != "b" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("second outage not detected")
	}
}

func TestHeartbeatValidation(t *testing.T) {
	cl := newCluster(t, "a")
	m := cl.core("a").Monitor()
	if _, err := m.StartHeartbeat(nil, time.Millisecond, 1); err == nil {
		t.Error("no peers should fail")
	}
	if _, err := m.StartHeartbeat([]ids.CoreID{"b"}, 0, 1); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := m.StartHeartbeat([]ids.CoreID{"b"}, time.Millisecond, 0); err == nil {
		t.Error("zero misses should fail")
	}
}

func TestHeartbeatStopIdempotent(t *testing.T) {
	cl := newCluster(t, "a", "b")
	hb, err := cl.core("a").Monitor().StartHeartbeat([]ids.CoreID{"b"}, 5*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	hb.Stop()
	hb.Stop()
}

func TestHeartbeatPolicyEvacuation(t *testing.T) {
	// The reliability use case end-to-end with a CRASH (not a graceful
	// shutdown): a watchdog core detects the silence of a core hosting a
	// replica and re-instantiates the service elsewhere. This is what the
	// coreUnreachable event enables beyond the paper's coreShutdown.
	cl := newCluster(t, "primary", "standby", "watchdog")
	w := cl.core("watchdog")
	if _, err := w.NewCompletAt("primary", "Msg", "service-state"); err != nil {
		t.Fatal(err)
	}
	recovered := make(chan struct{}, 1)
	if _, err := w.Monitor().SubscribeBuiltin(EventCoreUnreachable, func(ev Event) {
		if ev.Source != "primary" {
			return
		}
		// Cold recovery: start a fresh instance on the standby.
		if _, err := w.NewCompletAt("standby", "Msg", "service-state"); err == nil {
			select {
			case recovered <- struct{}{}:
			default:
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	hb, err := w.Monitor().StartHeartbeat([]ids.CoreID{"primary"}, 10*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Stop()

	// Crash the primary (host down, no shutdown protocol).
	if err := cl.net.StopHost("primary"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-recovered:
	case <-time.After(3 * time.Second):
		t.Fatal("watchdog never recovered the service")
	}
	if cl.core("standby").CompletCount() != 1 {
		t.Fatal("standby has no replacement instance")
	}
}
