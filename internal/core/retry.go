package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"fargo/internal/flight"
	"fargo/internal/ids"
	"fargo/internal/ref"
	"fargo/internal/transport"
	"fargo/internal/wire"
)

// RetryPolicy tunes transparent retries of idempotent inter-core requests
// (location queries, name lookups, monitor queries, liveness probes). Retries
// use jittered exponential backoff and always respect the caller's context:
// the end-to-end deadline bounds the attempts plus their backoff sleeps, it
// is never reset between attempts. Non-idempotent kinds — invocations,
// movement bundles, complet instantiation — are never retried by the runtime;
// the application decides, armed with the *InvokeError cause.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first try.
	// Zero or one disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff.
	MaxDelay time.Duration
	// Multiplier grows the backoff between attempts (≥1).
	Multiplier float64
	// Jitter is the fraction of each backoff randomized away (0..1), so
	// a flapping link does not see synchronized retry storms.
	Jitter float64
}

// DefaultRetryPolicy returns the policy used when Options.Retry is zero.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// normalize fills zero fields from the default policy.
func (p RetryPolicy) normalize() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = def.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = def.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = def.Multiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = def.Jitter
	}
	return p
}

// idempotentKind reports whether a request kind is safe to retry: re-sending
// it cannot double-apply an effect. Invocations, moves, clones, remote
// instantiation and name registration mutate state at the peer and are
// excluded — a retry after a lost reply could execute them twice.
func idempotentKind(kind wire.Kind) bool {
	switch kind {
	case wire.KindLocate, wire.KindNameLookup, wire.KindCoreInfo,
		wire.KindProfileQuery, wire.KindPing, wire.KindHomeQuery,
		wire.KindStatsQuery, wire.KindTraceQuery,
		wire.KindHealthQuery, wire.KindFlightQuery, wire.KindMoveProbe:
		return true
	}
	return false
}

// transientFailure reports whether a request failure may heal on retry.
// Context expiry/cancellation is final (the budget is gone), a transport
// closed locally is final, and a peer handler that executed and answered
// with an error is a verdict, not a glitch. Everything else — host down,
// network partition, dial failure, connection lost before the reply — is
// the kind of fault a flapping network produces, and is worth retrying.
func transientFailure(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return false
	case errors.Is(err, transport.ErrClosed):
		return false
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return errors.Is(err, transport.ErrConnLost)
	}
	return true
}

// attemptsErr annotates a failure with how many transport attempts were made,
// so the *InvokeError built further up reports it.
type attemptsErr struct {
	n   int
	err error
}

func (e *attemptsErr) Error() string {
	return fmt.Sprintf("%v (after %d attempts)", e.err, e.n)
}

func (e *attemptsErr) Unwrap() error { return e.err }

// sleepCtx sleeps for d or until the context ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jittered randomizes a backoff delay by the policy's jitter fraction.
func jittered(d time.Duration, jitter float64) time.Duration {
	if jitter <= 0 || d <= 0 {
		return d
	}
	spread := float64(d) * jitter
	return time.Duration(float64(d) - spread/2 + rand.Float64()*spread)
}

// request issues one inter-core request under the caller's context with the
// core's default call options. The context's deadline is stamped on the wire
// envelope, so the peer serves the request under the same remaining budget.
func (c *Core) request(ctx context.Context, to ids.CoreID, kind wire.Kind, payload []byte) (wire.Envelope, error) {
	return c.requestOpts(ctx, to, kind, payload, ref.CallOptions{})
}

// requestOpts is request with per-call retry overrides. Idempotent kinds are
// retried on transient failures with jittered exponential backoff; all other
// kinds get exactly one attempt.
func (c *Core) requestOpts(ctx context.Context, to ids.CoreID, kind wire.Kind, payload []byte, opts ref.CallOptions) (wire.Envelope, error) {
	// Circuit breaker: fail fast when the peer is suspected down. Pings are
	// exempt — they are the probes that close the circuit again — and so are
	// move probes: recovery must be able to ask a just-restarted destination
	// for a move's outcome while the breaker still remembers it as down. The
	// breaker is fed the operation's final outcome (below), not per-attempt
	// results, so one flapping-link operation that retries its way to success
	// counts as a single success.
	if kind != wire.KindPing && kind != wire.KindMoveProbe {
		if err := c.breakerAllow(to); err != nil {
			return wire.Envelope{}, err
		}
	}
	pol := c.opts.Retry
	budget := 1
	if idempotentKind(kind) && !opts.NoRetry {
		budget = pol.MaxAttempts
		if opts.MaxAttempts > 0 {
			budget = opts.MaxAttempts
		}
	}
	if budget < 1 {
		budget = 1
	}
	delay := pol.BaseDelay
	var lastErr error
	attempts := 0
	for attempt := 0; attempt < budget; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, jittered(delay, pol.Jitter)); err != nil {
				// The budget ran out while backing off; report the
				// transient fault that put us here, not the sleep.
				break
			}
			c.met.retries.Inc()
			c.flight.Record(flight.Event{
				Kind:   flight.KindRetry,
				Peer:   to.String(),
				Detail: fmt.Sprintf("%s attempt %d", kind, attempt+1),
			})
			delay = time.Duration(float64(delay) * pol.Multiplier)
			if delay > pol.MaxDelay {
				delay = pol.MaxDelay
			}
		}
		attempts++
		env, err := c.tr.Request(ctx, to, kind, payload)
		if err == nil {
			c.notePeer(to)
			c.breakerReport(to, nil)
			return env, nil
		}
		lastErr = err
		if !transientFailure(err) {
			break
		}
	}
	c.breakerReport(to, lastErr)
	if attempts > 1 {
		lastErr = &attemptsErr{n: attempts, err: lastErr}
	}
	return wire.Envelope{}, lastErr
}

// requestBG issues a request under a fresh default budget — for context-free
// legacy surfaces and internal background work that has no caller deadline
// to inherit.
func (c *Core) requestBG(to ids.CoreID, kind wire.Kind, payload []byte) (wire.Envelope, error) {
	ctx, cancel := c.withBudget(context.Background(), 0)
	defer cancel()
	return c.request(ctx, to, kind, payload)
}

// withBudget derives the working context for one pipeline entry point: an
// explicit per-call timeout always applies (tightening any caller deadline);
// otherwise a context that carries no deadline of its own gets the core's
// RequestTimeout as the end-to-end default. The resulting deadline travels on
// the wire, so tracker-chain hops and movement stages deduct elapsed time
// from one shared budget instead of restarting the clock per hop.
func (c *Core) withBudget(ctx context.Context, override time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if override > 0 {
		return context.WithTimeout(ctx, override)
	}
	if _, ok := ctx.Deadline(); !ok {
		return context.WithTimeout(ctx, c.opts.RequestTimeout)
	}
	return context.WithCancel(ctx)
}
