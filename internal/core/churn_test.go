package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"fargo/internal/ids"
)

// TestMonitorChurn hammers the monitoring layer with concurrent
// subscribe/unsubscribe/fire/profile traffic: no deadlocks, no panics, and a
// clean shutdown with zero leaked subscriptions or samplers.
func TestMonitorChurn(t *testing.T) {
	cl := newCluster(t, "a", "b")
	a := cl.core("a")
	m := a.Monitor()

	if _, err := a.NewComplet("Msg", "churn"); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 6
		rounds  = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				switch rng.Intn(4) {
				case 0: // threshold subscription churn
					token, err := m.Subscribe(SubscribeOptions{
						Service:   ServiceCompletLoad,
						Threshold: float64(rng.Intn(5)),
						Above:     true,
						Interval:  time.Millisecond,
					}, func(Event) {})
					if err != nil {
						errs <- err
						return
					}
					m.Unsubscribe(token)
				case 1: // built-in subscription churn
					token, err := m.SubscribeBuiltin(EventCompletArrived, func(Event) {})
					if err != nil {
						errs <- err
						return
					}
					m.fireBuiltin(EventCompletArrived, ids.CompletID{Birth: "a", Seq: 1}, "")
					m.Unsubscribe(token)
				case 2: // instant profiling
					if _, err := m.Instant(ServiceCompletLoad); err != nil {
						errs <- err
						return
					}
				case 3: // continuous profiling churn
					if err := m.Start(time.Millisecond, ServiceMemory); err != nil {
						errs <- err
						return
					}
					_, _ = m.Get(ServiceMemory)
					m.Stop(ServiceMemory)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := m.SubscriptionCount(); n != 0 {
		t.Fatalf("%d subscriptions leaked", n)
	}
	if n := m.ProfiledCount(); n != 0 {
		t.Fatalf("%d samplers leaked", n)
	}
}

// TestMonitorChurnDuringShutdown closes the core while subscriptions are
// being added and events fired: Shutdown must not deadlock or panic.
func TestMonitorChurnDuringShutdown(t *testing.T) {
	cl := newCluster(t, "a")
	a := cl.core("a")
	m := a.Monitor()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			token, err := m.SubscribeBuiltin(EventCompletArrived, func(Event) {})
			if err != nil {
				return // ErrClosed once shutdown lands
			}
			m.fireBuiltin(EventCompletArrived, ids.CompletID{Birth: "a", Seq: 9}, "")
			m.Unsubscribe(token)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- a.Shutdown(0) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown deadlocked under churn")
	}
	close(stop)
	wg.Wait()
}
